package repro

// This file regenerates every table and figure of the SMARTS paper's
// evaluation, one benchmark per artifact:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the paper-shaped table to the test log and
// reports its headline quantities as custom metrics. References (the
// full-stream detailed ground truth) are cached in a shared context so
// the suite pays for each one once. Run with -scale via
// cmd/smartsweep for other scales.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/sim"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

// ctx returns the shared small-scale experiment context, preloading the
// 8-way references in parallel on first use.
func ctx(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.Small)
		if err := benchCtx.Preload(context.Background(), uarch.Config8Way(), 8); err != nil {
			b.Fatalf("preload references: %v", err)
		}
	})
	return benchCtx
}

func BenchmarkFig2CoeffVariation(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(context.Background(), c, uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			// Headline: CV at U=1000, averaged over the suite (the paper
			// observes values clustering near 1.0).
			var sum float64
			var n int
			for bi := range r.Benches {
				for ui, u := range r.Us {
					if u == 1000 && r.CV[bi][ui] >= 0 {
						sum += r.CV[bi][ui]
						n++
					}
				}
			}
			if n > 0 {
				b.ReportMetric(sum/float64(n), "meanCV@U=1000")
			}
		}
	}
}

func BenchmarkFig3MinInstructions(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(context.Background(), c, uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			var worst uint64
			for _, row := range r.Rows {
				if row.MinInsts[0] > worst {
					worst = row.MinInsts[0]
				}
			}
			b.ReportMetric(float64(worst), "worstMinInsts±3%@99.7%")
		}
	}
}

func BenchmarkFig4PerfModel(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(context.Background(), c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			b.ReportMetric(r.Points[0].FW, "rateFW@W=0")
		}
	}
}

func BenchmarkFig5OptimalU(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(context.Background(), c, uarch.Config8Way(), nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
		}
	}
}

func BenchmarkTable4DetailedWarming(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(context.Background(), c, uarch.Config8Way(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			// Headline: how many benchmarks remain biased at the largest
			// swept W (the paper's ">500k" bucket).
			unfixed := 0
			for _, row := range r.Rows {
				if row.RequiredW == 0 {
					unfixed++
				}
			}
			b.ReportMetric(float64(unfixed), "benchesNeedingW>max")
		}
	}
}

func BenchmarkTable5FunctionalWarmingBias(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(context.Background(), c, uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			b.ReportMetric(r.WorstBias()*100, "worstBias%")
		}
	}
}

func BenchmarkFig6CPIEstimation(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(context.Background(), c, uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			b.ReportMetric(r.MeanAbsErr*100, "meanAbsCPIErr%")
		}
	}
}

func BenchmarkFig7EPIEstimation(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(context.Background(), c, uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			b.ReportMetric(r.MeanAbsErr*100, "meanAbsEPIErr%")
			b.ReportMetric(r.MeanCIRatio, "EPIvsCPICIRatio")
		}
	}
}

func BenchmarkTable6Runtimes(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table6(context.Background(), c, uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			b.ReportMetric(r.AvgSpeedup, "avgSpeedupX")
		}
	}
}

func BenchmarkFig8SimPointComparison(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(context.Background(), c, uarch.Config8Way(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			b.ReportMetric(r.MeanSimPointErr*100, "meanSimPointErr%")
			b.ReportMetric(r.MeanSMARTSErr*100, "meanSMARTSErr%")
		}
	}
}

// BenchmarkAblationWarming runs the warming-component ablation (an
// extension beyond the paper: which warmed structure carries functional
// warming's benefit).
func BenchmarkAblationWarming(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationWarming(context.Background(), c, uarch.Config8Way(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
		}
	}
}

// BenchmarkEngineSerialVsParallel tracks the checkpointed parallel
// engine's scaling: the same ≥1M-instruction sampling plan runs once on
// one worker and once on four, reporting wall-clock speedup and
// sampled units per second. The two runs must agree bit-for-bit — the
// engine's determinism guarantee — so the benchmark doubles as a
// cross-worker-count consistency check. Note the speedup metric is
// bounded by the machine's core count (1.0x on a single-core runner).
func BenchmarkEngineSerialVsParallel(b *testing.B) {
	spec, err := program.ByName("gccx")
	if err != nil {
		b.Fatal(err)
	}
	p, err := program.Generate(spec, 2_000_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 400,
		smarts.FunctionalWarming, 0)
	for i := 0; i < b.N; i++ {
		plan.Parallelism = 1
		start := time.Now()
		serial, err := smarts.Run(p, cfg, plan)
		if err != nil {
			b.Fatal(err)
		}
		serialTime := time.Since(start)

		plan.Parallelism = 4
		start = time.Now()
		par, err := smarts.Run(p, cfg, plan)
		if err != nil {
			b.Fatal(err)
		}
		parTime := time.Since(start)

		if i == 0 {
			sCPI := serial.CPIEstimate(stats.Alpha997)
			pCPI := par.CPIEstimate(stats.Alpha997)
			if sCPI != pCPI {
				b.Fatalf("worker counts disagree: %v vs %v", sCPI, pCPI)
			}
			b.ReportMetric(float64(serialTime)/float64(parTime), "speedupX@4workers")
			b.ReportMetric(float64(len(par.Units))/parTime.Seconds(), "units/s")
			b.ReportMetric(float64(len(serial.Units))/serialTime.Seconds(), "serialUnits/s")
		}
	}
}

// BenchmarkEnginePipelined tracks the streaming capture→replay
// pipeline against PR 1's capture-then-replay schedule on the same
// ≥1M-instruction sampling plan at 4 workers: pipelineSpeedupX is
// two-phase wall clock over streamed wall clock (≥1 on multi-core —
// replay overlaps the sweep — and ~1 on a single-core runner), and
// storeSpeedupX is the cold (sweep + save) wall clock over a
// warm-checkpoint-store run that skips the sweep entirely. The store
// comparison runs at a sparser sampling interval (k≈40, still ~100×
// denser than the paper's k≈5000): the store's advantage is the ratio
// of swept instructions to snapshot bytes, so it grows linearly with k
// and the dense pipeline plan would understate it. All runs of each
// plan must agree bit for bit.
func BenchmarkEnginePipelined(b *testing.B) {
	spec, err := program.ByName("gccx")
	if err != nil {
		b.Fatal(err)
	}
	p, err := program.Generate(spec, 2_000_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 400,
		smarts.FunctionalWarming, 0)
	opt := func() smarts.EngineOptions { return smarts.EngineOptions{Workers: 4} }
	for i := 0; i < b.N; i++ {
		o := opt()
		o.TwoPhase = true
		start := time.Now()
		twoPhase, err := smarts.RunSampled(p, cfg, plan, o)
		if err != nil {
			b.Fatal(err)
		}
		twoPhaseTime := time.Since(start)

		start = time.Now()
		streamed, err := smarts.RunSampled(p, cfg, plan, opt())
		if err != nil {
			b.Fatal(err)
		}
		streamedTime := time.Since(start)

		// Store cycle on the sparse plan: one cold run (sweep + save),
		// one warm run (load, no sweep).
		sparse := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 50,
			smarts.FunctionalWarming, 0)
		store, err := checkpoint.OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		o = opt()
		o.Store = store
		start = time.Now()
		cold, err := smarts.RunSampled(p, cfg, sparse, o)
		if err != nil {
			b.Fatal(err)
		}
		coldTime := time.Since(start)
		start = time.Now()
		cached, err := smarts.RunSampled(p, cfg, sparse, o)
		if err != nil {
			b.Fatal(err)
		}
		cachedTime := time.Since(start)
		if !cached.SweepCached {
			b.Fatal("warm store run did not skip the sweep")
		}

		if i == 0 {
			tCPI := twoPhase.CPIEstimate(stats.Alpha997)
			if got := streamed.CPIEstimate(stats.Alpha997); got != tCPI {
				b.Fatalf("streamed schedule disagrees: %v vs %v", got, tCPI)
			}
			if cc, wc := cold.CPIEstimate(stats.Alpha997), cached.CPIEstimate(stats.Alpha997); cc != wc {
				b.Fatalf("store cycle disagrees: %v vs %v", wc, cc)
			}
			b.ReportMetric(float64(twoPhaseTime)/float64(streamedTime), "pipelineSpeedupX")
			b.ReportMetric(float64(coldTime)/float64(cachedTime), "storeSpeedupX")
			b.ReportMetric(float64(len(streamed.Units))/streamedTime.Seconds(), "units/s")
		}
	}
}

// BenchmarkDistributedLoopback tracks the distributed sampling service
// against the in-process engine it must reproduce: a loopback
// coordinator with two workers (two replay workers each, matching
// BenchmarkEnginePipelined's 4) runs the same ≥1M-instruction plan as
// BenchmarkEnginePipelined. shardedUnits/s is distributed replay
// throughput on a warm sweep cache, and mergeOverheadX is distributed
// wall clock over local engine wall clock — the HTTP/JSON shard
// round-trip cost, since both sides replay identical snapshot sets.
// Both runs must agree bit for bit.
func BenchmarkDistributedLoopback(b *testing.B) {
	spec, err := program.ByName("gccx")
	if err != nil {
		b.Fatal(err)
	}
	p, err := program.Generate(spec, 2_000_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), 400,
		smarts.FunctionalWarming, 0)

	coord, err := dist.NewCoordinator(dist.Options{})
	if err != nil {
		b.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()
	for i := 0; i < 2; i++ {
		var w *dist.Worker
		var h http.Handler
		srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			h.ServeHTTP(rw, r)
		}))
		defer srv.Close()
		w = dist.NewWorker(dist.WorkerOptions{
			Coordinator:  coordSrv.URL,
			Self:         srv.URL,
			Workers:      2,
			PollInterval: 5 * time.Millisecond,
		})
		h = w.Handler()
		coord.AddWorker(srv.URL)
	}
	client := dist.NewClient(coordSrv.URL)
	req := func() *sim.Request {
		return sim.NewRequest("gccx", sim.Length(2_000_000),
			sim.UnitSize(plan.U), sim.Warmup(plan.W), sim.Interval(plan.K),
			sim.Phase(plan.J), sim.Warming(sim.FunctionalWarming))
	}

	cache := checkpoint.NewMemCache()
	local := func() (*smarts.Result, time.Duration) {
		start := time.Now()
		res, err := smarts.RunSampled(p, cfg, plan, smarts.EngineOptions{Workers: 4, Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		return res, time.Since(start)
	}
	// Warm both sides' sweep caches so the measured loop compares replay
	// and merge, not sweep scheduling.
	localRes, _ := local()
	if _, err := client.Run(context.Background(), req()); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rep, err := client.Run(context.Background(), req())
		if err != nil {
			b.Fatal(err)
		}
		distTime := time.Since(start)

		b.StopTimer()
		_, localTime := local()
		if i == 0 {
			res := rep.Result()
			if got, want := res.CPIEstimate(stats.Alpha997), localRes.CPIEstimate(stats.Alpha997); got != want {
				b.Fatalf("distributed estimate disagrees: %v vs %v", got, want)
			}
			b.ReportMetric(float64(len(res.Units))/distTime.Seconds(), "shardedUnits/s")
			b.ReportMetric(float64(distTime)/float64(localTime), "mergeOverheadX")
		}
		b.StartTimer()
	}
}

// BenchmarkSixteenWay exercises the 16-way configuration on the bias
// experiment (the paper reports Table 5 for both machines).
func BenchmarkSixteenWayTable5(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(context.Background(), c, uarch.Config16Way())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r.Format(os.Stdout)
			b.ReportMetric(r.WorstBias()*100, "worstBias%")
		}
	}
}
