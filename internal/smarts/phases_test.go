package smarts_test

import (
	"math"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// TestRunSampledPhasesBitIdentical verifies the shared-sweep phase
// helper: each phase's result must match a dedicated RunSampled at that
// offset bit for bit, with the sweep paid once.
func TestRunSampledPhasesBitIdentical(t *testing.T) {
	p := genBench(t, "gccx", 400_000)
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, 1000, 50, smarts.FunctionalWarming, 0)
	js := []uint64{0, 1, 3}

	runs, err := smarts.RunSampledPhases(p, cfg, plan, js, smarts.EngineOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(js) {
		t.Fatalf("got %d results for %d phases", len(runs), len(js))
	}
	for i, j := range js {
		single := plan
		single.J = j
		want, err := smarts.RunSampled(p, cfg, single, smarts.EngineOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got := runs[i]
		if got.Plan.J != j {
			t.Fatalf("result %d echoes phase %d, want %d", i, got.Plan.J, j)
		}
		if len(got.Units) != len(want.Units) || len(got.Units) == 0 {
			t.Fatalf("phase %d: %d units vs %d dedicated", j, len(got.Units), len(want.Units))
		}
		wc, gc := want.CPIEstimate(stats.Alpha997), got.CPIEstimate(stats.Alpha997)
		if math.Float64bits(wc.Mean) != math.Float64bits(gc.Mean) ||
			math.Float64bits(wc.RelCI) != math.Float64bits(gc.RelCI) {
			t.Fatalf("phase %d: estimates differ: %v vs %v", j, gc, wc)
		}
		for u := range got.Units {
			if got.Units[u].Cycles != want.Units[u].Cycles || got.Units[u].Index != want.Units[u].Index {
				t.Fatalf("phase %d unit %d differs", j, u)
			}
		}
	}
}

// TestRunSampledPhasesStore verifies the multi-offset set round-trips
// through the store: a second phase sweep loads the shared entry and
// reproduces every phase bit for bit.
func TestRunSampledPhasesStore(t *testing.T) {
	p := genBench(t, "mcfx", 300_000)
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, 1000, 30, smarts.FunctionalWarming, 0)
	js := []uint64{0, 2}
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := smarts.EngineOptions{Workers: 2, Store: store}

	first, err := smarts.RunSampledPhases(p, cfg, plan, js, opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := smarts.RunSampledPhases(p, cfg, plan, js, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := store.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("store stats %d/%d, want 1 hit 1 miss", hits, misses)
	}
	for i := range js {
		a, b := first[i], second[i]
		if len(a.Units) != len(b.Units) {
			t.Fatalf("phase %d: unit counts differ after store reload", js[i])
		}
		for u := range a.Units {
			if a.Units[u] != b.Units[u] {
				t.Fatalf("phase %d unit %d differs after store reload", js[i], u)
			}
		}
	}
}

// TestPlanStoreThroughRun verifies the Plan.Store plumbing smartsim and
// the experiments use: two identical Runs with a store share one sweep.
func TestPlanStoreThroughRun(t *testing.T) {
	p := genBench(t, "gzipx", 200_000)
	cfg := uarch.Config8Way()
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan := smarts.PlanForN(p.Length, 1000, 1000, 40, smarts.FunctionalWarming, 0)
	plan.Parallelism = 2
	plan.Store = store

	first, err := smarts.Run(p, cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if first.SweepCached {
		t.Fatal("first run claims cached sweep")
	}
	second, err := smarts.Run(p, cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !second.SweepCached {
		t.Fatal("second run did not reuse the sweep")
	}
	a, b := first.CPIEstimate(stats.Alpha997), second.CPIEstimate(stats.Alpha997)
	if math.Float64bits(a.Mean) != math.Float64bits(b.Mean) {
		t.Fatalf("estimates differ across store reuse: %v vs %v", a, b)
	}
}
