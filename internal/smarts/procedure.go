package smarts

import (
	"context"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// ProcedureConfig parameterizes the paper's exact estimation procedure
// (Section 5.1): pick W and U, run once with a generic n_init, check the
// achieved confidence, and if insufficient rerun with n_tuned derived
// from the measured coefficient of variation.
type ProcedureConfig struct {
	// U is the sampling unit size; the paper recommends 1000.
	U uint64
	// W is the detailed-warming length; zero selects RecommendedW.
	W uint64
	// Warming is the fast-forward mode; the paper recommends functional
	// warming whenever possible.
	Warming WarmingMode
	// NInit is the initial sample size (the paper uses 10,000; scaled
	// studies use less).
	NInit uint64
	// Alpha sets the confidence level 1-Alpha (paper: 0.003).
	Alpha float64
	// Eps is the target relative confidence interval (paper: ±3%).
	Eps float64
	// Overshoot inflates n_tuned slightly, as the paper suggests when
	// the initial run misses badly. 1 disables.
	Overshoot float64
	// J is the systematic phase offset in units.
	J uint64
	// Parallelism is forwarded to both sampling runs' plans: 0 keeps the
	// classic serial loop, n >= 1 uses the checkpointed parallel engine
	// with n workers, negative uses one worker per core (see
	// Plan.Parallelism).
	Parallelism int
	// Store is forwarded to both sampling runs' plans (see Plan.Store).
	// The two steps usually sample at different intervals k and so key
	// separate sweeps; the payoff is across repeated procedures.
	Store *checkpoint.Store
}

// DefaultProcedure returns the paper's recommended settings, with n_init
// scaled to the benchmark population (10,000 at full SPEC2K scale).
func DefaultProcedure(cfg uarch.Config, nInit uint64) ProcedureConfig {
	return ProcedureConfig{
		U:         1000,
		W:         RecommendedW(cfg),
		Warming:   FunctionalWarming,
		NInit:     nInit,
		Alpha:     stats.Alpha997,
		Eps:       0.03,
		Overshoot: 1.2,
	}
}

// ProcedureResult reports both steps of the procedure.
type ProcedureResult struct {
	// Initial is the n_init sampling run.
	Initial *Result
	// InitialCPI is its CPI estimate.
	InitialCPI stats.Estimate
	// Tuned is the second run, nil when the initial run met the target.
	Tuned *Result
	// TunedCPI is the second run's estimate (zero value when unused).
	TunedCPI stats.Estimate
	// NTuned is the sample size computed for the second run (0 if none).
	NTuned uint64
}

// Final returns the estimate the procedure ends with.
func (pr *ProcedureResult) Final() stats.Estimate {
	if pr.Tuned != nil {
		return pr.TunedCPI
	}
	return pr.InitialCPI
}

// FinalResult returns the sampling run the final estimate came from.
func (pr *ProcedureResult) FinalResult() *Result {
	if pr.Tuned != nil {
		return pr.Tuned
	}
	return pr.Initial
}

// RunProcedure executes the two-step SMARTS procedure on prog/cfg.
//
// Deprecated: new code should go through the sim package (a Request
// with a Procedure spec); this shim is kept so existing callers and
// result-pinning tests keep working.
func RunProcedure(prog *program.Program, cfg uarch.Config, pc ProcedureConfig) (*ProcedureResult, error) {
	return RunProcedureContext(context.Background(), prog, cfg, pc)
}

// RunProcedureContext is RunProcedure with context support: the context
// is honored inside both sampling runs and checked between them, so a
// cancelled procedure stops mid-calibration and returns ctx.Err().
func RunProcedureContext(ctx context.Context, prog *program.Program, cfg uarch.Config, pc ProcedureConfig) (*ProcedureResult, error) {
	return RunProcedureWith(ctx, prog, cfg, pc, nil)
}

// ProcedureRunner executes one sampling step of the two-step procedure.
// stage is "initial" for the n_init run and "tuned" for the
// recalibrated second run; plan carries the procedure's Parallelism and
// Store settings. The sim session supplies a runner that layers sweep
// deduplication and progress events over the same execution.
type ProcedureRunner func(ctx context.Context, stage string, plan Plan) (*Result, error)

// RunProcedureWith executes the two-step procedure with a custom runner
// for its sampling steps; a nil runner uses RunContext directly. The
// n-calibration logic — n_init run, confidence check, n_tuned sizing,
// rerun — lives only here, whichever runner executes the steps.
func RunProcedureWith(ctx context.Context, prog *program.Program, cfg uarch.Config, pc ProcedureConfig, run ProcedureRunner) (*ProcedureResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if run == nil {
		run = func(ctx context.Context, stage string, plan Plan) (*Result, error) {
			return RunContext(ctx, prog, cfg, plan)
		}
	}
	if pc.U == 0 {
		pc.U = 1000
	}
	if pc.W == 0 {
		pc.W = RecommendedW(cfg)
	}
	if pc.NInit == 0 {
		return nil, fmt.Errorf("smarts: procedure requires NInit")
	}
	if pc.Alpha == 0 {
		pc.Alpha = stats.Alpha997
	}
	if pc.Eps == 0 {
		pc.Eps = 0.03
	}

	plan := PlanForN(prog.Length, pc.U, pc.W, pc.NInit, pc.Warming, pc.J)
	plan.Parallelism = pc.Parallelism
	plan.Store = pc.Store
	initial, err := run(ctx, "initial", plan)
	if err != nil {
		if ctx.Err() != nil && err == ctx.Err() {
			return nil, err
		}
		return nil, fmt.Errorf("smarts: initial run: %w", err)
	}
	pr := &ProcedureResult{
		Initial:    initial,
		InitialCPI: initial.CPIEstimate(pc.Alpha),
	}
	if pr.InitialCPI.Meets(pc.Eps) {
		return pr, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Second step: size the sample from the measured V̂ and rerun.
	pr.NTuned = stats.TunedN(pr.InitialCPI.CV, pc.Alpha, pc.Eps, pc.Overshoot)
	units := prog.Length / pc.U
	if pr.NTuned > units {
		pr.NTuned = units // cannot sample more units than exist
	}
	plan2 := PlanForN(prog.Length, pc.U, pc.W, pr.NTuned, pc.Warming, pc.J)
	plan2.Parallelism = pc.Parallelism
	plan2.Store = pc.Store
	tuned, err := run(ctx, "tuned", plan2)
	if err != nil {
		if ctx.Err() != nil && err == ctx.Err() {
			return nil, err
		}
		return nil, fmt.Errorf("smarts: tuned run: %w", err)
	}
	pr.Tuned = tuned
	pr.TunedCPI = tuned.CPIEstimate(pc.Alpha)
	return pr, nil
}
