package smarts_test

import (
	"math"
	"testing"

	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

func genBench(t testing.TB, name string, length uint64) *program.Program {
	t.Helper()
	spec, err := program.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return program.MustGenerate(spec, length)
}

// TestSamplingMatchesTruth is the core end-to-end check: a SMARTS run
// with functional warming estimates the full-stream CPI and EPI within a
// few percent.
func TestSamplingMatchesTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("full reference run is slow")
	}
	cfg := uarch.Config8Way()
	for _, bench := range []string{"gzipx", "twolfx", "gccx"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			p := genBench(t, bench, 1_200_000)
			ref, err := smarts.FullRun(p, cfg, 1000)
			if err != nil {
				t.Fatalf("FullRun: %v", err)
			}
			plan := smarts.PlanForN(p.Length, 1000, 2000, 250, smarts.FunctionalWarming, 0)
			res, err := smarts.Run(p, cfg, plan)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			est := res.CPIEstimate(stats.Alpha997)
			errRel := math.Abs(est.Mean-ref.TrueCPI()) / ref.TrueCPI()
			t.Logf("%s: true CPI %.4f, est %.4f (err %.2f%%, CI ±%.2f%%, n=%d)",
				bench, ref.TrueCPI(), est.Mean, errRel*100, est.RelCI*100, est.N)
			// The error must be within the predicted CI plus a warming
			// bias allowance of 2% (paper Section 5.2).
			if errRel > est.RelCI+0.02 {
				t.Errorf("CPI error %.2f%% exceeds CI %.2f%% + 2%% bias bound",
					errRel*100, est.RelCI*100)
			}
			epi := res.EPIEstimate(stats.Alpha997)
			epiErr := math.Abs(epi.Mean-ref.TrueEPI()) / ref.TrueEPI()
			if epiErr > epi.RelCI+0.02 {
				t.Errorf("EPI error %.2f%% exceeds CI %.2f%% + 2%% bias bound",
					epiErr*100, epi.RelCI*100)
			}
		})
	}
}

// TestWarmingReducesBias checks the paper's central qualitative claim:
// no-warming sampling is more biased than functional-warming sampling.
func TestWarmingReducesBias(t *testing.T) {
	if testing.Short() {
		t.Skip("full reference run is slow")
	}
	cfg := uarch.Config8Way()
	p := genBench(t, "parserx", 1_000_000)
	ref, err := smarts.FullRun(p, cfg, 1000)
	if err != nil {
		t.Fatalf("FullRun: %v", err)
	}
	truth := ref.TrueCPI()

	errAt := func(mode smarts.WarmingMode, w uint64) float64 {
		plan := smarts.PlanForN(p.Length, 1000, w, 200, mode, 0)
		res, err := smarts.Run(p, cfg, plan)
		if err != nil {
			t.Fatalf("Run(%v): %v", mode, err)
		}
		return math.Abs(res.CPIEstimate(stats.Alpha997).Mean-truth) / truth
	}

	cold := errAt(smarts.NoWarming, 0)
	warm := errAt(smarts.FunctionalWarming, 2000)
	t.Logf("parserx: cold error %.2f%%, functional-warming error %.2f%%", cold*100, warm*100)
	if warm >= cold {
		t.Errorf("functional warming (%.2f%%) did not beat cold sampling (%.2f%%)", warm*100, cold*100)
	}
}

// TestPlanForN checks interval derivation.
func TestPlanForN(t *testing.T) {
	plan := smarts.PlanForN(10_000_000, 1000, 2000, 100, smarts.FunctionalWarming, 0)
	if plan.K != 100 {
		t.Errorf("K = %d, want 100", plan.K)
	}
	// More units requested than exist: every unit is sampled.
	plan = smarts.PlanForN(50_000, 1000, 2000, 100, smarts.NoWarming, 0)
	if plan.K != 1 {
		t.Errorf("K = %d, want 1", plan.K)
	}
}

// TestRunDeterministic checks two identical sampling runs agree exactly.
func TestRunDeterministic(t *testing.T) {
	p := genBench(t, "craftyx", 300_000)
	cfg := uarch.Config8Way()
	plan := smarts.PlanForN(p.Length, 1000, 1000, 50, smarts.FunctionalWarming, 0)
	r1, err := smarts.Run(p, cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := smarts.Run(p, cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Units) != len(r2.Units) {
		t.Fatalf("unit counts differ: %d vs %d", len(r1.Units), len(r2.Units))
	}
	for i := range r1.Units {
		if r1.Units[i] != r2.Units[i] {
			t.Fatalf("unit %d differs: %+v vs %+v", i, r1.Units[i], r2.Units[i])
		}
	}
}

// TestPhaseOffsetsDiffer checks that different systematic phases measure
// different units (the mechanism behind bias estimation).
func TestPhaseOffsetsDiffer(t *testing.T) {
	p := genBench(t, "gzipx", 300_000)
	cfg := uarch.Config8Way()
	base := smarts.PlanForN(p.Length, 1000, 1000, 30, smarts.FunctionalWarming, 0)
	if base.K < 2 {
		t.Skip("population too small for phases")
	}
	r0, err := smarts.Run(p, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	base.J = base.K / 2
	r1, err := smarts.Run(p, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Units[0].Index == r1.Units[0].Index {
		t.Error("phase offset did not shift sampled units")
	}
}

// TestWorstCaseW checks the Section 4.4 bound for the paper's 8-way
// machine: 16 × 100 × 8 = 12800.
func TestWorstCaseW(t *testing.T) {
	if w := smarts.WorstCaseW(uarch.Config8Way()); w != 12800 {
		t.Errorf("WorstCaseW(8-way) = %d, want 12800", w)
	}
	if w := smarts.RecommendedW(uarch.Config8Way()); w != 2000 {
		t.Errorf("RecommendedW(8-way) = %d, want 2000", w)
	}
	if w := smarts.RecommendedW(uarch.Config16Way()); w != 4000 {
		t.Errorf("RecommendedW(16-way) = %d, want 4000", w)
	}
}
