// Package smarts implements the paper's primary contribution: the
// Sampling Microarchitecture Simulation (SMARTS) framework.
//
// A SMARTS run systematically samples a benchmark's dynamic instruction
// stream: it divides the stream into N/U sampling units of U consecutive
// instructions, selects every k'th unit starting at phase offset j, and
// for each selected unit fast-forwards to W instructions before the
// unit, simulates those W instructions in detail without measuring
// (detailed warming), then simulates and measures the U unit
// instructions in detail. Between units the stream is fast-forwarded
// either purely functionally or with functional warming — replaying
// loads, stores, fetch blocks, and control outcomes into the caches,
// TLBs, and branch predictor so that large microarchitectural state is
// always current (paper Sections 3.1 and 4).
//
// The two-step sizing procedure of Section 5.1 (n_init = 10,000, then
// n_tuned from the measured coefficient of variation) is implemented by
// RunProcedure.
//
// # Execution engines
//
// Two executions of a Plan are available. The classic serial loop
// (Run with Plan.Parallelism == 0) interleaves fast-forwarding and
// per-unit detailed simulation on one goroutine, each unit observing
// whatever state the previous unit's detailed run left behind. The
// checkpointed parallel engine (Plan.Parallelism >= 1, or RunSampled
// directly) exploits the statistical independence of sampling units:
// one functional sweep captures a per-unit launch snapshot —
// architectural registers, a copy-on-write memory image, and, under
// functional warming, the cache/TLB/branch-predictor state — and a
// worker pool replays detailed warming plus measurement for every unit
// from its snapshot, merging CPI/EPI through a deterministic
// stream-order aggregator (optionally terminating early at a target
// confidence interval). Engine results are bit-identical for every
// worker count; see RunSampled for how they relate to the serial loop.
package smarts

import (
	"context"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/functional"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// WarmingMode selects how microarchitectural state is treated between
// sampling units.
type WarmingMode int

// Warming modes.
const (
	// NoWarming leaves all microarchitectural state stale across
	// fast-forward gaps (maximum bias; the paper's motivating problem).
	NoWarming WarmingMode = iota
	// DetailedWarming relies only on the W detailed-warming instructions
	// before each unit to rebuild state (paper Section 4.3).
	DetailedWarming
	// FunctionalWarming keeps caches, TLBs, and the branch predictor
	// continuously warm during fast-forwarding, bounding the required W
	// to pipeline-lifetime effects only (paper Sections 3.1, 4.4, 4.5).
	FunctionalWarming
)

// String implements fmt.Stringer.
func (w WarmingMode) String() string {
	switch w {
	case NoWarming:
		return "none"
	case DetailedWarming:
		return "detailed"
	case FunctionalWarming:
		return "functional"
	}
	return "unknown"
}

// Plan configures one sampling simulation run.
type Plan struct {
	// U is the sampling unit size in instructions (paper recommends 1000).
	U uint64
	// W is the detailed-warming length in instructions.
	W uint64
	// K is the systematic sampling interval in units.
	K uint64
	// J is the systematic sample phase offset in units (0 ≤ J < K).
	J uint64
	// Warming selects the fast-forward warming mode.
	Warming WarmingMode
	// Components restricts which structures functional warming maintains
	// (nil = all). Used by the warming-component ablation.
	Components *WarmComponents
	// MaxUnits, when nonzero, caps the number of measured units.
	MaxUnits int
	// Parallelism selects the execution engine: 0 runs the classic
	// in-place serial loop; n >= 1 runs the checkpointed parallel engine
	// (internal/engine) with n workers; negative values run the engine
	// with one worker per core (GOMAXPROCS). Engine results are
	// bit-identical for every worker count — the units are replayed from
	// per-unit snapshots, so scheduling cannot affect the estimate — but
	// differ slightly from the in-place serial loop, whose units observe
	// state carried out of earlier units' detailed simulation instead of
	// snapshot state (see RunSampled).
	Parallelism int
	// SweepParallelism, when above 1 on the engine path, runs the
	// capture sweep as that many concurrent stream segments (the
	// speculative parallel sweep; see checkpoint.Params.SweepParallelism
	// for the exactness and cold-start-bias semantics). Ignored by the
	// classic serial loop, which has no capture sweep.
	SweepParallelism int
	// SweepOverlap is the per-segment warm-up length of a parallel
	// sweep (0 = checkpoint.DefaultSweepOverlap, negative = none).
	SweepOverlap int64
	// Store, when non-nil and the engine is selected, reuses functional
	// sweeps across runs through the on-disk checkpoint store: a run
	// whose (workload, plan, warm geometry) was swept before loads the
	// launch states from disk and skips fast-forwarding entirely.
	// Results are bit-identical with or without the store. Ignored by
	// the classic serial loop.
	Store *checkpoint.Store
}

// Validate reports plan errors.
func (pl Plan) Validate() error {
	if pl.U == 0 {
		return fmt.Errorf("smarts: zero sampling unit size")
	}
	if pl.K == 0 {
		return fmt.Errorf("smarts: zero sampling interval")
	}
	if pl.J >= pl.K {
		return fmt.Errorf("smarts: phase offset %d must be below interval %d", pl.J, pl.K)
	}
	return nil
}

// PlanForN builds a systematic plan measuring approximately n units of a
// benchmark with the given dynamic length: k = floor(N_units/n), clamped
// to at least 1 (every unit measured).
func PlanForN(benchLength, u, w, n uint64, mode WarmingMode, j uint64) Plan {
	units := benchLength / u
	k := uint64(1)
	if n > 0 && units > n {
		k = units / n
	}
	if j >= k {
		j = j % k
	}
	return Plan{U: u, W: w, K: k, J: j, Warming: mode}
}

// UnitResult is the measurement of one sampling unit.
type UnitResult struct {
	// Index is the unit's position in the population (unit number).
	Index uint64
	// Cycles is the number of cycles the unit's U instructions took to
	// commit.
	Cycles uint64
	// EnergyNJ is the energy accumulated while the unit committed.
	EnergyNJ float64
	// CPI and EPI are the unit's per-instruction metrics.
	CPI, EPI float64
}

// Result collects a full sampling run.
type Result struct {
	// Plan echoes the run configuration.
	Plan Plan
	// Units holds the per-unit measurements in stream order.
	Units []UnitResult
	// PopulationUnits is the benchmark length in units (the paper's N).
	PopulationUnits uint64

	// Instruction accounting across modes.
	MeasuredInsts uint64 // detailed, measured (n·U)
	WarmingInsts  uint64 // detailed, unmeasured (n·W)
	FastFwdInsts  uint64 // functionally simulated

	// Wall-clock accounting for the speedup experiments.
	FastFwdTime  time.Duration
	DetailedTime time.Duration

	// SweepCached reports that the engine loaded this run's launch
	// states from the on-disk checkpoint store instead of sweeping; the
	// FastFwd accounting then echoes the original (reused) sweep's cost
	// rather than time spent in this run.
	SweepCached bool
	// FastFwdResumedInsts is the journaled stream position this run's
	// sweep resumed from (0 when the sweep ran cold or was loaded
	// whole): FastFwdInsts - FastFwdResumedInsts is the functional work
	// the run actually executed. The FastFwd totals still echo the whole
	// sweep, so speedup accounting is unchanged by a resume.
	FastFwdResumedInsts uint64
}

// CPISample returns the per-unit CPI observations as a stats.Sample.
func (r *Result) CPISample() *stats.Sample {
	var s stats.Sample
	for _, u := range r.Units {
		s.Add(u.CPI)
	}
	return &s
}

// EPISample returns the per-unit EPI observations as a stats.Sample.
func (r *Result) EPISample() *stats.Sample {
	var s stats.Sample
	for _, u := range r.Units {
		s.Add(u.EPI)
	}
	return &s
}

// CPIEstimate returns the CPI estimate at confidence 1-alpha.
func (r *Result) CPIEstimate(alpha float64) stats.Estimate {
	return r.CPISample().Estimate(alpha)
}

// EPIEstimate returns the EPI estimate at confidence 1-alpha.
func (r *Result) EPIEstimate(alpha float64) stats.Estimate {
	return r.EPISample().Estimate(alpha)
}

// Run executes one sampling simulation of prog on the machine described
// by cfg. With plan.Parallelism != 0 the run is delegated to the
// checkpointed parallel engine (see RunSampled); otherwise the classic
// in-place serial loop executes.
//
// Deprecated: new code should go through the sim package
// (sim.Open / Session.Run), which adds context cancellation, sweep
// deduplication, and progress events on top of the same mechanisms.
// This entry point is kept as a thin shim so existing callers and the
// result-pinning tests keep working bit-identically.
func Run(prog *program.Program, cfg uarch.Config, plan Plan) (*Result, error) {
	return RunContext(context.Background(), prog, cfg, plan)
}

// RunContext is Run with context support: cancellation or deadline
// expiry stops the run — between units and, within long fast-forward
// gaps, every checkpoint.FFChunk instructions — and returns ctx.Err().
func RunContext(ctx context.Context, prog *program.Program, cfg uarch.Config, plan Plan) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plan.Parallelism != 0 {
		return RunSampledContext(ctx, prog, cfg, plan, EngineOptions{Workers: plan.Parallelism, Store: plan.Store})
	}

	cpu := functional.New(prog)
	machine := uarch.NewMachine(cfg)
	core := uarch.NewCore(machine)
	src := &uarch.Source{CPU: cpu}
	warmer := NewWarmer(machine, cfg)
	if plan.Components != nil {
		warmer.Components = *plan.Components
	}

	res := &Result{
		Plan:            plan,
		PopulationUnits: prog.Length / plan.U,
	}

	var pos uint64 // instructions consumed from the stream so far
	marks := make([]uarch.Mark, 2)

	for unit := plan.J; unit < res.PopulationUnits; unit += plan.K {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if plan.MaxUnits > 0 && len(res.Units) >= plan.MaxUnits {
			break
		}
		unitStart := unit * plan.U
		warmStart := unitStart
		if plan.Warming != NoWarming && plan.W > 0 {
			if plan.W > unitStart {
				warmStart = 0
			} else {
				warmStart = unitStart - plan.W
			}
		}
		if warmStart < pos {
			warmStart = pos // overlapping with previous unit's tail
		}

		// Fast-forward to the warming start, in context-checked chunks.
		ffStart := time.Now()
		ff := warmStart - pos
		for pos < warmStart {
			step := warmStart - pos
			if step > checkpoint.FFChunk {
				step = checkpoint.FFChunk
			}
			var err error
			if plan.Warming == FunctionalWarming {
				err = warmer.Forward(cpu, step)
			} else {
				_, err = cpu.Run(step)
			}
			if err != nil {
				return nil, fmt.Errorf("smarts: fast-forward at unit %d: %w", unit, err)
			}
			pos += step
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.FastFwdInsts += ff
		res.FastFwdTime += time.Since(ffStart)

		// Detailed warming + measured unit in one pipeline-continuous run.
		w := unitStart - pos
		detStart := time.Now()
		core.ResetPipeline()
		marks[0] = uarch.Mark{At: w}
		marks[1] = uarch.Mark{At: w + plan.U}
		runStats, err := core.Run(src, w+plan.U, marks)
		if err != nil {
			return nil, fmt.Errorf("smarts: detailed run at unit %d: %w", unit, err)
		}
		res.DetailedTime += time.Since(detStart)
		pos += runStats.Insts
		if runStats.Insts < w+plan.U {
			// The program ended inside this unit; drop the partial unit.
			break
		}
		res.WarmingInsts += w
		res.MeasuredInsts += plan.U

		cycles := marks[1].Cycle - marks[0].Cycle
		energy := marks[1].EnergyNJ - marks[0].EnergyNJ
		res.Units = append(res.Units, UnitResult{
			Index:    unit,
			Cycles:   cycles,
			EnergyNJ: energy,
			CPI:      float64(cycles) / float64(plan.U),
			EPI:      energy / float64(plan.U),
		})
	}
	return res, nil
}

// WarmComponents selects which microarchitectural structures functional
// warming maintains. It is an alias for uarch.WarmComponents, which
// lives beside the Machine so the checkpoint capture sweep can share the
// exact warming semantics without importing this package.
type WarmComponents = uarch.WarmComponents

// AllComponents is the paper's full functional warming.
var AllComponents = uarch.AllComponents

// Warmer replays the committed instruction stream into a machine's
// warmable structures (caches, TLBs, branch predictor) — the functional
// warming mode. It is an alias for uarch.Warmer; other estimators (e.g.
// the SimPoint baseline's warmed variant) reuse it through either name.
type Warmer = uarch.Warmer

// NewWarmer builds a full warmer bound to m's structures.
func NewWarmer(m *uarch.Machine, cfg uarch.Config) *Warmer {
	return uarch.NewWarmer(m, cfg)
}

// RecommendedW returns the detailed-warming length the paper uses with
// functional warming: a safe bound on pipeline-lifetime state, derived
// in Section 4.4 from store-buffer depth × memory latency × peak IPC and
// empirically validated as 2000 (8-way) and 4000 (16-way).
func RecommendedW(cfg uarch.Config) uint64 {
	if cfg.FetchWidth >= 16 {
		return 4000
	}
	return 2000
}

// WorstCaseW returns the analytical upper bound on W of Section 4.4:
// store-buffer depth × memory latency × maximum IPC.
func WorstCaseW(cfg uarch.Config) uint64 {
	return uint64(cfg.StoreBufEntries) * uint64(cfg.Lat.Mem) * uint64(cfg.CommitWidth)
}
