package smarts

import (
	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/program"
	"repro/internal/uarch"
)

// EngineOptions configures the checkpointed parallel engine behind
// RunSampled.
type EngineOptions struct {
	// Workers is the worker-pool size; values <= 0 select GOMAXPROCS.
	Workers int
	// Alpha is the confidence parameter for early termination (zero
	// selects stats.Alpha997).
	Alpha float64
	// TargetEps, when positive, stops measuring units once the CPI
	// estimate's relative confidence interval is within ±TargetEps. The
	// cutoff is decided on stream-order prefixes, so enabling it keeps
	// results deterministic across worker counts.
	TargetEps float64
	// MinUnits is the minimum measured-unit count before early
	// termination may trigger.
	MinUnits uint64
}

// RunSampled executes the plan on the checkpointed parallel engine: one
// functional sweep captures a launch snapshot per selected unit
// (architectural registers and PC, a copy-on-write memory image, and —
// under functional warming — the cache/TLB/predictor state), then a
// worker pool replays detailed warming plus measurement for every unit
// from its snapshot and a deterministic stream-order aggregator merges
// the results.
//
// Semantics versus the in-place serial loop of Run: each unit launches
// from sweep state rather than from state carried out of the previous
// unit's detailed simulation. Under functional warming the difference
// is the in-order-versus-out-of-order update gap the paper already
// treats as residual bias (Section 4.5); under detailed or no warming,
// units launch microarchitecturally cold instead of stale. In exchange,
// units become fully independent: results are bit-identical for every
// worker count, and the detailed phase scales with cores.
func RunSampled(prog *program.Program, cfg uarch.Config, plan Plan, opt EngineOptions) (*Result, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	params := checkpoint.Params{
		U:              plan.U,
		K:              plan.K,
		J:              plan.J,
		FunctionalWarm: plan.Warming == FunctionalWarming,
		Components:     plan.Components,
		MaxUnits:       plan.MaxUnits,
	}
	if plan.Warming != NoWarming {
		params.W = plan.W
	}
	er, err := engine.Run(prog, cfg, params, engine.Options{
		Workers:   opt.Workers,
		Alpha:     opt.Alpha,
		TargetEps: opt.TargetEps,
		MinUnits:  opt.MinUnits,
	})
	if err != nil {
		return nil, err
	}

	// Wall-clock accounting: FastFwdTime is the serial capture sweep and
	// DetailedTime the elapsed parallel replay phase, so the two sum to
	// the run's elapsed time just as on the serial path. (The engine's
	// per-worker CPU total, er.DetailedTime, would overstate elapsed
	// time by up to the worker count.)
	detailedWall := er.WallTime - er.SweepTime
	if detailedWall < 0 {
		detailedWall = 0
	}
	res := &Result{
		Plan:            plan,
		PopulationUnits: er.PopulationUnits,
		MeasuredInsts:   er.MeasuredInsts,
		WarmingInsts:    er.WarmingInsts,
		FastFwdInsts:    er.SweepInsts,
		FastFwdTime:     er.SweepTime,
		DetailedTime:    detailedWall,
		Units:           make([]UnitResult, len(er.Units)),
	}
	for i, u := range er.Units {
		res.Units[i] = UnitResult{
			Index:    u.Index,
			Cycles:   u.Cycles,
			EnergyNJ: u.EnergyNJ,
			CPI:      u.CPI,
			EPI:      u.EPI,
		}
	}
	return res, nil
}
