package smarts

import (
	"context"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// EngineOptions configures the checkpointed parallel engine behind
// RunSampled.
type EngineOptions struct {
	// Workers is the worker-pool size; values <= 0 select GOMAXPROCS.
	Workers int
	// Alpha is the confidence parameter for early termination (zero
	// selects stats.Alpha997).
	Alpha float64
	// TargetEps, when positive, stops measuring units once the CPI
	// estimate's relative confidence interval is within ±TargetEps. The
	// cutoff is decided on stream-order prefixes, so enabling it keeps
	// results deterministic across worker counts.
	TargetEps float64
	// MinUnits is the minimum measured-unit count before early
	// termination may trigger.
	MinUnits uint64
	// Store, when non-nil, persists and reuses capture sweeps on disk
	// (see checkpoint.Store). Plan.Store is used when this is nil.
	Store *checkpoint.Store
	// Cache, when non-nil, reuses capture sweeps in memory (checked
	// after the store); the sim session attaches one to storeless
	// sessions.
	Cache *checkpoint.MemCache
	// Keyframe overrides the delta-encoded capture's full-snapshot
	// interval when positive (see checkpoint.Params.Keyframe). Encoding
	// only — materialized launch states, and therefore results, are
	// unchanged.
	Keyframe int
	// SweepParallelism, when above 1, runs the capture sweep as that
	// many concurrent stream segments (the speculative parallel sweep;
	// see checkpoint.Params.SweepParallelism). Architectural state stays
	// exact; warm state in segments after the first starts cold plus
	// SweepOverlap warm-up instructions, a measured bias.
	SweepParallelism int
	// SweepOverlap is the per-segment warm-up length of a parallel
	// sweep (0 = checkpoint.DefaultSweepOverlap, negative = none).
	SweepOverlap int64
	// ResumeInterval sets the crash-safe sweep journal cadence in
	// keyframes (see engine.Options.ResumeInterval): 0 = default,
	// negative disables partial-sweep journaling and resume.
	ResumeInterval int
	// TwoPhase runs the engine's capture-then-replay schedule instead of
	// the streaming pipeline; results are bit-identical either way.
	TwoPhase bool
	// OnCaptured and OnReplayed observe pipeline progress; see
	// engine.Options. The sim package uses them to emit typed progress
	// events.
	OnCaptured func(captured int)
	OnReplayed func(replayed int, est stats.Estimate)
	// OnPhaseReplayed, when non-nil, observes multi-offset replay
	// progress with the phase offset attached; RunSampledPhases then
	// invokes it instead of OnReplayed for each offset's replay.
	OnPhaseReplayed func(j uint64, replayed int, est stats.Estimate)
}

// engineOptions translates EngineOptions to the engine's option struct.
func (opt EngineOptions) engineOptions() engine.Options {
	return engine.Options{
		Workers:          opt.Workers,
		Alpha:            opt.Alpha,
		TargetEps:        opt.TargetEps,
		MinUnits:         opt.MinUnits,
		Store:            opt.Store,
		Cache:            opt.Cache,
		Keyframe:         opt.Keyframe,
		SweepParallelism: opt.SweepParallelism,
		SweepOverlap:     opt.SweepOverlap,
		ResumeInterval:   opt.ResumeInterval,
		TwoPhase:         opt.TwoPhase,
		OnCaptured:       opt.OnCaptured,
		OnReplayed:       opt.OnReplayed,
	}
}

// CheckpointParams translates the plan into checkpoint capture
// parameters — the quantity the checkpoint store keys sweeps by. The
// sim session uses it to deduplicate concurrent sweeps for one key.
func (pl Plan) CheckpointParams() checkpoint.Params { return pl.params() }

// params translates a validated Plan into checkpoint capture parameters.
func (pl Plan) params() checkpoint.Params {
	p := checkpoint.Params{
		U:                pl.U,
		K:                pl.K,
		J:                pl.J,
		FunctionalWarm:   pl.Warming == FunctionalWarming,
		Components:       pl.Components,
		MaxUnits:         pl.MaxUnits,
		SweepParallelism: pl.SweepParallelism,
		SweepOverlap:     pl.SweepOverlap,
	}
	if pl.Warming != NoWarming {
		p.W = pl.W
	}
	return p
}

// RunSampled executes the plan on the checkpointed parallel engine: a
// functional sweep captures a launch snapshot per selected unit
// (architectural registers and PC, a copy-on-write memory image, and —
// under functional warming — the cache/TLB/predictor state) and streams
// each snapshot straight into a worker pool that replays detailed
// warming plus measurement, while a deterministic stream-order
// aggregator merges the results. Capture and replay overlap, so wall
// clock approaches max(sweep, replay/workers); with a checkpoint store
// attached, a previously swept (workload, plan, warm geometry) skips
// the sweep entirely.
//
// Semantics versus the in-place serial loop of Run: each unit launches
// from sweep state rather than from state carried out of the previous
// unit's detailed simulation. Under functional warming the difference
// is the in-order-versus-out-of-order update gap the paper already
// treats as residual bias (Section 4.5); under detailed or no warming,
// units launch microarchitecturally cold instead of stale. In exchange,
// units become fully independent: results are bit-identical for every
// worker count, every schedule, and every sweep source (fresh or
// stored), and the detailed phase scales with cores.
//
// Deprecated: new code should go through the sim package; this shim is
// kept so existing callers and result-pinning tests keep working.
func RunSampled(prog *program.Program, cfg uarch.Config, plan Plan, opt EngineOptions) (*Result, error) {
	return RunSampledContext(context.Background(), prog, cfg, plan, opt)
}

// RunSampledContext is RunSampled with context support: cancellation
// stops the sweep and the worker pool, aborts any staged store entry,
// and returns ctx.Err() (see engine.Run).
func RunSampledContext(ctx context.Context, prog *program.Program, cfg uarch.Config, plan Plan, opt EngineOptions) (*Result, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Store == nil {
		opt.Store = plan.Store
	}
	er, err := engine.Run(ctx, prog, cfg, plan.params(), opt.engineOptions())
	if err != nil {
		return nil, err
	}
	return engineResult(plan, er, !er.SweepCached), nil
}

// RunSampledPhases executes the same plan at several systematic phase
// offsets, paying one functional sweep for all of them: a multi-offset
// capture records every offset's launch boundaries in a single pass
// (checkpoint.Params.Offsets), and the engine replays each offset's
// units from the shared snapshots. Each returned Result is bit-identical
// to a dedicated RunSampled at that offset; results[i] corresponds to
// js[i]. With a store attached the combined multi-offset set is
// persisted and reused as one entry.
//
// The sweep accounting (FastFwdInsts/FastFwdTime) on every result
// echoes the one shared sweep; callers summing costs across phases
// should count it once.
//
// Deprecated: new code should go through the sim package (a Request
// with Offsets); this shim is kept so existing callers and
// result-pinning tests keep working.
func RunSampledPhases(prog *program.Program, cfg uarch.Config, plan Plan, js []uint64, opt EngineOptions) ([]*Result, error) {
	return RunSampledPhasesContext(context.Background(), prog, cfg, plan, js, opt)
}

// RunSampledPhasesContext is RunSampledPhases with context support:
// cancellation stops the shared sweep (or whichever offset's replay is
// in flight) and returns ctx.Err().
func RunSampledPhasesContext(ctx context.Context, prog *program.Program, cfg uarch.Config, plan Plan, js []uint64, opt EngineOptions) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Store == nil {
		opt.Store = plan.Store
	}
	params := plan.params()
	params.J = 0
	params.Offsets = js
	if opt.Keyframe > 0 {
		params.Keyframe = opt.Keyframe
	}
	if opt.SweepParallelism > 1 {
		params.SweepParallelism = opt.SweepParallelism
	}
	if opt.SweepOverlap != 0 {
		params.SweepOverlap = opt.SweepOverlap
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	var set *checkpoint.Set
	sweepCached := false
	var key checkpoint.Key
	if opt.Store != nil || opt.Cache != nil {
		key = checkpoint.KeyFor(prog, cfg, params)
	}
	if opt.Store != nil {
		cached, err := opt.Store.Load(key)
		if err != nil {
			return nil, err
		}
		if cached != nil {
			set = cached
			sweepCached = true
		}
	}
	if set == nil && opt.Cache != nil {
		if cached := opt.Cache.Get(key); cached != nil {
			set = cached
			sweepCached = true
		}
	}
	if set == nil {
		var err error
		set, err = checkpoint.Capture(ctx, prog, cfg, params)
		if err != nil {
			return nil, err
		}
		if opt.Store != nil {
			if serr := opt.Store.Save(key, set); serr != nil {
				opt.Store.Log("checkpoint store: save failed: %v", serr)
			}
		}
		if opt.Cache != nil {
			opt.Cache.Put(key, set)
		}
	}
	if opt.OnCaptured != nil {
		opt.OnCaptured(len(set.Units))
	}

	results := make([]*Result, len(js))
	for i, j := range js {
		onReplayed := opt.OnReplayed
		if opt.OnPhaseReplayed != nil {
			j := j
			onReplayed = func(replayed int, est stats.Estimate) {
				opt.OnPhaseReplayed(j, replayed, est)
			}
		}
		er, err := engine.RunSet(ctx, prog, cfg, plan.U, set.Offset(j), engine.Options{
			Workers:    opt.Workers,
			Alpha:      opt.Alpha,
			TargetEps:  opt.TargetEps,
			MinUnits:   opt.MinUnits,
			OnReplayed: onReplayed,
		})
		if err != nil {
			return nil, err
		}
		phasePlan := plan
		phasePlan.J = j
		r := engineResult(phasePlan, er, false)
		r.FastFwdInsts = set.SweepInsts
		r.FastFwdTime = set.SweepTime
		r.SweepCached = sweepCached
		results[i] = r
	}
	return results, nil
}

// engineResult converts an engine result into the smarts Result shape.
// sweepInRun says the sweep's wall clock was part of this run's
// WallTime (a fresh streamed or two-phase sweep); when false (store
// hit, or replaying a shared pre-captured set) er.SweepTime merely
// echoes a sweep paid elsewhere and the whole elapsed time is detailed
// work.
func engineResult(plan Plan, er *engine.Result, sweepInRun bool) *Result {
	// Wall-clock accounting: FastFwdTime is the capture sweep and
	// DetailedTime the remaining elapsed time, so the two sum to the
	// run's elapsed time just as on the serial path. (The engine's
	// per-worker CPU total, er.DetailedTime, would overstate elapsed
	// time by up to the worker count; under the streaming schedule the
	// sweep overlaps replay, so the split is attribution, not a
	// timeline.)
	detailedWall := er.WallTime
	if sweepInRun {
		detailedWall -= er.SweepTime
		if detailedWall < 0 {
			detailedWall = 0
		}
	}
	res := &Result{
		Plan:                plan,
		PopulationUnits:     er.PopulationUnits,
		MeasuredInsts:       er.MeasuredInsts,
		WarmingInsts:        er.WarmingInsts,
		FastFwdInsts:        er.SweepInsts,
		FastFwdTime:         er.SweepTime,
		DetailedTime:        detailedWall,
		SweepCached:         er.SweepCached,
		FastFwdResumedInsts: er.SweepResumedInsts,
		Units:               make([]UnitResult, len(er.Units)),
	}
	for i, u := range er.Units {
		res.Units[i] = UnitResult{
			Index:    u.Index,
			Cycles:   u.Cycles,
			EnergyNJ: u.EnergyNJ,
			CPI:      u.CPI,
			EPI:      u.EPI,
		}
	}
	return res
}
