package smarts

import (
	"fmt"
	"time"

	"repro/internal/functional"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// Reference is the ground truth for one benchmark/configuration pair: a
// full-stream detailed simulation with cycle and energy readings at
// fixed chunk boundaries. It plays the role of the paper's
// full-benchmark cycle-by-cycle commit traces (Section 3.2), from which
// both true CPI/EPI and the coefficient-of-variation curves of Figure 2
// are derived.
type Reference struct {
	// Bench and Config identify the pair.
	Bench, Config string
	// Insts is the simulated instruction count.
	Insts uint64
	// Cycles and EnergyNJ are the full-run totals.
	Cycles   uint64
	EnergyNJ float64
	// Chunk is the boundary granularity in instructions.
	Chunk uint64
	// CumCycles[i] is the cycle count after (i+1)*Chunk instructions
	// committed; CumEnergy likewise.
	CumCycles []uint64
	CumEnergy []float64
	// DetailedTime is the wall-clock cost of the run.
	DetailedTime time.Duration
}

// TrueCPI returns the full-stream CPI.
func (r *Reference) TrueCPI() float64 { return float64(r.Cycles) / float64(r.Insts) }

// TrueEPI returns the full-stream EPI in nJ.
func (r *Reference) TrueEPI() float64 { return r.EnergyNJ / float64(r.Insts) }

// UnitCPIs returns the per-unit CPI population at sampling-unit size u,
// which must be a multiple of the chunk size. The ragged tail is
// dropped.
func (r *Reference) UnitCPIs(u uint64) ([]float64, error) {
	if u == 0 || u%r.Chunk != 0 {
		return nil, fmt.Errorf("smarts: unit size %d not a multiple of chunk %d", u, r.Chunk)
	}
	stride := int(u / r.Chunk)
	n := len(r.CumCycles) / stride
	if n == 0 {
		return nil, fmt.Errorf("smarts: unit size %d exceeds reference length", u)
	}
	out := make([]float64, n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		c := r.CumCycles[(i+1)*stride-1]
		out[i] = float64(c-prev) / float64(u)
		prev = c
	}
	return out, nil
}

// UnitEPIs returns the per-unit EPI population at unit size u.
func (r *Reference) UnitEPIs(u uint64) ([]float64, error) {
	if u == 0 || u%r.Chunk != 0 {
		return nil, fmt.Errorf("smarts: unit size %d not a multiple of chunk %d", u, r.Chunk)
	}
	stride := int(u / r.Chunk)
	n := len(r.CumEnergy) / stride
	if n == 0 {
		return nil, fmt.Errorf("smarts: unit size %d exceeds reference length", u)
	}
	out := make([]float64, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		e := r.CumEnergy[(i+1)*stride-1]
		out[i] = (e - prev) / float64(u)
		prev = e
	}
	return out, nil
}

// CVAtU returns the coefficient of variation of per-unit CPI at unit
// size u — one point of the paper's Figure 2.
func (r *Reference) CVAtU(u uint64) (float64, error) {
	pop, err := r.UnitCPIs(u)
	if err != nil {
		return 0, err
	}
	return stats.CVOf(pop), nil
}

// FullRun performs the full-stream detailed simulation of prog on cfg,
// recording chunk-boundary marks.
func FullRun(prog *program.Program, cfg uarch.Config, chunk uint64) (*Reference, error) {
	if chunk == 0 {
		chunk = 10
	}
	cpu := functional.New(prog)
	machine := uarch.NewMachine(cfg)
	core := uarch.NewCore(machine)
	src := &uarch.Source{CPU: cpu}

	nChunks := prog.Length / chunk
	marks := make([]uarch.Mark, nChunks)
	for i := range marks {
		marks[i].At = uint64(i+1) * chunk
	}
	start := time.Now()
	runStats, err := core.Run(src, prog.Length, marks)
	if err != nil {
		return nil, fmt.Errorf("smarts: full run: %w", err)
	}
	ref := &Reference{
		Bench:        prog.Name,
		Config:       cfg.Name,
		Insts:        runStats.Insts,
		Cycles:       runStats.Cycles,
		EnergyNJ:     runStats.EnergyNJ,
		Chunk:        chunk,
		CumCycles:    make([]uint64, len(marks)),
		CumEnergy:    make([]float64, len(marks)),
		DetailedTime: time.Since(start),
	}
	// The machine and core are fresh, so the meter and cycle counter both
	// started at zero: mark readings are already run-relative.
	for i, m := range marks {
		ref.CumCycles[i] = m.Cycle
		ref.CumEnergy[i] = m.EnergyNJ
	}
	return ref, nil
}

// FunctionalRunTime measures the wall-clock time of a pure functional
// simulation of prog (the paper's sim-fast baseline in Table 6).
func FunctionalRunTime(prog *program.Program) (time.Duration, uint64, error) {
	cpu := functional.New(prog)
	start := time.Now()
	n, err := cpu.RunToCompletion()
	return time.Since(start), n, err
}

// FunctionalWarmingRunTime measures the wall-clock time of functional
// simulation with warming of prog on cfg's structures (the S_FW rate of
// the paper's Section 3.4).
func FunctionalWarmingRunTime(prog *program.Program, cfg uarch.Config) (time.Duration, uint64, error) {
	cpu := functional.New(prog)
	machine := uarch.NewMachine(cfg)
	w := NewWarmer(machine, cfg)
	start := time.Now()
	err := w.Forward(cpu, prog.Length)
	return time.Since(start), cpu.Count, err
}
