package bpred_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
)

func smallCfg() bpred.Config {
	return bpred.Config{
		TableEntries: 256,
		HistoryBits:  8,
		BTBSets:      32,
		BTBWays:      2,
		RASEntries:   4,
	}
}

// randomOutcome produces one plausible control-flow outcome for warm
// traffic: conditional branches, direct jumps/calls, returns, and
// indirect jumps all occur, exercising every table the delta covers.
func randomOutcome(rng *rand.Rand) bpred.Outcome {
	pc := uint64(rng.Intn(4096))
	tgt := uint64(rng.Intn(4096))
	switch rng.Intn(5) {
	case 0, 1:
		return bpred.Outcome{Op: isa.OpBeq, PC: pc, Taken: rng.Intn(2) == 0, Target: tgt, NextPC: pc + 1}
	case 2:
		return bpred.Outcome{Op: isa.OpCall, PC: pc, Taken: true, Target: tgt, NextPC: pc + 1}
	case 3:
		return bpred.Outcome{Op: isa.OpRet, PC: pc, Taken: true, Target: tgt, NextPC: pc + 1}
	}
	return bpred.Outcome{Op: isa.OpJmp, PC: pc, Taken: true, Target: tgt, NextPC: pc + 1}
}

// TestPredDeltaMatchesSnapshot is the predictor's delta correctness
// property: after randomized warm traffic (full Warm passes, so
// Predict-side BTB LRU updates are covered too), applying a chain of
// Deltas over the previous snapshot reproduces a fresh full Snapshot
// exactly.
func TestPredDeltaMatchesSnapshot(t *testing.T) {
	u := bpred.New(smallCfg())
	rng := rand.New(rand.NewSource(23))
	// The keyframe snapshot resets dirty tracking and starts the chain.
	tracked := u.Snapshot()
	for round := 0; round < 60; round++ {
		for i := 0; i < rng.Intn(400); i++ {
			u.Warm(randomOutcome(rng))
		}
		if round == 30 {
			u.Flush() // must mark everything
		}
		d, err := u.Delta(u.Seq())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := tracked.Apply(d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if full := u.Snapshot(); !reflect.DeepEqual(tracked, full) {
			t.Fatalf("round %d: delta-tracked predictor state diverged", round)
		}
	}
	// Chain discipline: stale or pre-snapshot baselines fail.
	if _, err := u.Delta(u.Seq() - 1); err == nil {
		t.Fatal("stale baseline must fail")
	}
	if _, err := bpred.New(smallCfg()).Delta(0); err == nil {
		t.Fatal("delta before first snapshot must fail")
	}
}

// TestPredDeltaApplyRejectsCorrupt verifies geometry and segment
// validation on Apply.
func TestPredDeltaApplyRejectsCorrupt(t *testing.T) {
	u := bpred.New(smallCfg())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		u.Warm(randomOutcome(rng))
	}
	s := u.Snapshot()
	mk := func() *bpred.Delta {
		v := bpred.New(smallCfg())
		r2 := rand.New(rand.NewSource(3))
		v.Snapshot()
		for i := 0; i < 100; i++ {
			v.Warm(randomOutcome(r2))
		}
		d, err := v.Delta(v.Seq())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	for name, corrupt := range map[string]func(*bpred.Delta){
		"geometry":     func(d *bpred.Delta) { d.N = 7 },
		"btb-geometry": func(d *bpred.Delta) { d.BTBN = 1 << 20 },
		"tbl-grain":    func(d *bpred.Delta) { d.TblGrain = 40 },
		"ras":          func(d *bpred.Delta) { d.RAS = d.RAS[:1] },
		"ras-top":      func(d *bpred.Delta) { d.RASTop = 99 },
		"ras-top-neg":  func(d *bpred.Delta) { d.RASTop = -1 },
		"tbl-range":    func(d *bpred.Delta) { d.TblBlocks[0] = 1 << 30 },
		"btb-segment":  func(d *bpred.Delta) { d.BTBTags = d.BTBTags[:0] },
	} {
		d := mk()
		corrupt(d)
		if err := s.Clone().Apply(d); err == nil {
			t.Errorf("%s: corrupt delta applied without error", name)
		}
	}
}

// TestPredDirtyTrackingZeroAllocs pins the Update/Warm path with dirty
// marking to zero heap allocations.
func TestPredDirtyTrackingZeroAllocs(t *testing.T) {
	u := bpred.New(smallCfg())
	o := bpred.Outcome{Op: isa.OpBeq, PC: 100, Taken: true, Target: 50, NextPC: 101}
	u.Warm(o)
	if allocs := testing.AllocsPerRun(1000, func() { u.Warm(o) }); allocs != 0 {
		t.Fatalf("Warm with dirty tracking allocates %.1f objects/op; want 0", allocs)
	}
}
