// Package bpred implements the branch prediction structures of the
// simulated machines: a combining predictor (bimodal + gshare with a
// chooser, SimpleScalar's "comb"), a branch target buffer, and a return
// address stack.
//
// Prediction and update are separate operations on shared state so that
// functional warming (which only updates) and the detailed core (which
// predicts, then updates) drive the same tables — the mechanism SMARTS's
// functional warming depends on.
package bpred

import (
	"fmt"

	"repro/internal/delta"
	"repro/internal/isa"
)

// Config sizes the predictor per the paper's Table 3. Every field
// changes what functional warming trains, so every field is folded
// into checkpoint.WarmSignature.
//
//simlint:keystruct WarmSignature
type Config struct {
	// TableEntries is the size of the bimodal, gshare, and chooser tables
	// (power of two). 2048 for the 8-way machine, 8192 for the 16-way.
	TableEntries int
	// HistoryBits is the global history length for the gshare component.
	HistoryBits uint
	// BTBSets and BTBWays size the branch target buffer.
	BTBSets, BTBWays int
	// RASEntries sizes the return address stack.
	RASEntries int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TableEntries <= 0 || c.TableEntries&(c.TableEntries-1) != 0 {
		return fmt.Errorf("bpred: table entries %d must be a power of two", c.TableEntries)
	}
	if c.HistoryBits == 0 || c.HistoryBits > 16 {
		return fmt.Errorf("bpred: history bits %d out of range", c.HistoryBits)
	}
	if c.BTBSets <= 0 || c.BTBSets&(c.BTBSets-1) != 0 {
		return fmt.Errorf("bpred: BTB sets %d must be a power of two", c.BTBSets)
	}
	if c.BTBWays <= 0 || c.RASEntries <= 0 {
		return fmt.Errorf("bpred: BTB ways / RAS entries must be positive")
	}
	return nil
}

// Stats counts prediction outcomes, split by cause.
type Stats struct {
	Branches   uint64 // conditional branches seen
	DirMispred uint64 // conditional direction mispredictions
	TargetMiss uint64 // taken control flow with wrong/unknown target
	RASMispred uint64 // return address mispredictions
	Indirect   uint64 // indirect jumps seen
	Lookups    uint64 // total predictor consultations
}

// MispredRate returns direction mispredictions per conditional branch.
func (s Stats) MispredRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.DirMispred) / float64(s.Branches)
}

// Unit is the complete prediction unit of one simulated core.
type Unit struct {
	cfg     Config
	bimodal []uint8 // 2-bit counters
	gshare  []uint8 // 2-bit counters
	chooser []uint8 // 2-bit counters: >=2 selects gshare
	history uint64  // global history register

	btbTags  []uint64
	btbTgts  []uint64
	btbValid []bool
	btbLRU   []uint64
	btbStamp uint64

	ras    []uint64
	rasTop int

	// tblDirty and btbDirty are snapshot dirty-tracking bitmaps (see
	// delta.go): one bit per block of direction-table entries (bimodal,
	// gshare, and chooser share indices and one bitmap) and per block of
	// BTB entries. Update and the BTB paths mark them; Delta consumes
	// and clears them, and chain numbers the snapshot points.
	tblDirty delta.Bitmap
	btbDirty delta.Bitmap
	chain    delta.Chain

	// Stats accumulate over the unit's lifetime; callers snapshot/diff.
	Stats Stats
}

// New builds a prediction unit.
func New(cfg Config) *Unit {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.TableEntries
	u := &Unit{
		cfg:      cfg,
		bimodal:  make([]uint8, n),
		gshare:   make([]uint8, n),
		chooser:  make([]uint8, n),
		btbTags:  make([]uint64, cfg.BTBSets*cfg.BTBWays),
		btbTgts:  make([]uint64, cfg.BTBSets*cfg.BTBWays),
		btbValid: make([]bool, cfg.BTBSets*cfg.BTBWays),
		btbLRU:   make([]uint64, cfg.BTBSets*cfg.BTBWays),
		ras:      make([]uint64, cfg.RASEntries),
		tblDirty: delta.NewBitmap(n, tblGrainShift),
		btbDirty: delta.NewBitmap(cfg.BTBSets*cfg.BTBWays, btbGrainShift),
	}
	// Weakly taken initial counters, the SimpleScalar default.
	for i := range u.bimodal {
		u.bimodal[i] = 2
		u.gshare[i] = 2
		u.chooser[i] = 1 // weakly prefer bimodal
	}
	return u
}

// Config returns the unit's configuration.
func (u *Unit) Config() Config { return u.cfg }

//simlint:hotpath
func (u *Unit) idx(pc uint64) int {
	return int(pc) & (u.cfg.TableEntries - 1)
}

//simlint:hotpath
func (u *Unit) gidx(pc uint64) int {
	h := u.history & ((1 << u.cfg.HistoryBits) - 1)
	return int(pc^h) & (u.cfg.TableEntries - 1)
}

// Prediction is the front end's view of one control instruction.
type Prediction struct {
	// Taken is the predicted direction (always true for unconditional).
	Taken bool
	// Target is the predicted target PC; valid only when TargetKnown.
	Target uint64
	// TargetKnown reports whether the BTB/RAS produced a target.
	TargetKnown bool
}

// Predict consults the predictor for the control instruction at pc and
// returns the prediction. It does not update any state: call Update with
// the actual outcome afterwards (the detailed core does both; functional
// warming calls Update only... see Warm).
//
//simlint:hotpath
func (u *Unit) Predict(pc uint64, op isa.Op) Prediction {
	u.Stats.Lookups++
	switch op.Class() {
	case isa.ClassBranch:
		var taken bool
		if u.chooser[u.gidx(pc)] >= 2 {
			taken = u.gshare[u.gidx(pc)] >= 2
		} else {
			taken = u.bimodal[u.idx(pc)] >= 2
		}
		tgt, ok := u.btbLookup(pc)
		return Prediction{Taken: taken, Target: tgt, TargetKnown: ok}
	case isa.ClassJump:
		// Direct jumps and calls: target comes from the BTB (decode would
		// also supply it; BTB misses cost a bubble, modelled by the core).
		tgt, ok := u.btbLookup(pc)
		return Prediction{Taken: true, Target: tgt, TargetKnown: ok}
	case isa.ClassRet:
		if op == isa.OpRet && u.rasTop > 0 {
			return Prediction{Taken: true, Target: u.ras[u.rasTop-1], TargetKnown: true}
		}
		// Indirect jump: BTB is the only source.
		tgt, ok := u.btbLookup(pc)
		return Prediction{Taken: true, Target: tgt, TargetKnown: ok}
	}
	return Prediction{}
}

// Outcome describes the resolved behaviour of a control instruction.
type Outcome struct {
	Op     isa.Op
	PC     uint64
	Taken  bool
	Target uint64 // actual next PC when taken
	NextPC uint64 // fall-through successor (PC+1)
}

// Update trains the predictor with the actual outcome. The update rules
// are identical whichever mode calls them; functional warming simply
// calls Predict+Update in instruction order, which is how SMARTSim warms
// sim-bpred state.
//
//simlint:hotpath
func (u *Unit) Update(o Outcome) {
	switch o.Op.Class() {
	case isa.ClassBranch:
		u.Stats.Branches++
		gi, bi := u.gidx(o.PC), u.idx(o.PC)
		u.markTbl(gi) // covers gshare and the chooser (ci == gi)
		u.markTbl(bi)
		gPred := u.gshare[gi] >= 2
		bPred := u.bimodal[bi] >= 2
		// Chooser trains toward the component that was right.
		ci := u.gidx(o.PC)
		if gPred != bPred {
			if gPred == o.Taken {
				u.chooser[ci] = satInc(u.chooser[ci])
			} else {
				u.chooser[ci] = satDec(u.chooser[ci])
			}
		}
		if o.Taken {
			u.gshare[gi] = satInc(u.gshare[gi])
			u.bimodal[bi] = satInc(u.bimodal[bi])
		} else {
			u.gshare[gi] = satDec(u.gshare[gi])
			u.bimodal[bi] = satDec(u.bimodal[bi])
		}
		u.history = u.history<<1 | b2u(o.Taken)
		if o.Taken {
			u.btbInsert(o.PC, o.Target)
		}
	case isa.ClassJump:
		u.btbInsert(o.PC, o.Target)
		if o.Op == isa.OpCall {
			u.rasPush(o.NextPC)
		}
	case isa.ClassRet:
		if o.Op == isa.OpRet {
			u.rasPop()
		} else {
			u.Stats.Indirect++
			u.btbInsert(o.PC, o.Target)
		}
	}
}

// CheckMispredict compares a prediction against the resolved outcome and
// records the mispredict cause in the stats. It returns true when the
// front end would have followed the wrong path.
//
//simlint:hotpath
func (u *Unit) CheckMispredict(p Prediction, o Outcome) bool {
	switch o.Op.Class() {
	case isa.ClassBranch:
		if p.Taken != o.Taken {
			u.Stats.DirMispred++
			return true
		}
		if o.Taken && (!p.TargetKnown || p.Target != o.Target) {
			u.Stats.TargetMiss++
			return true
		}
		return false
	case isa.ClassJump:
		if !p.TargetKnown || p.Target != o.Target {
			u.Stats.TargetMiss++
			return true
		}
		return false
	case isa.ClassRet:
		if !p.TargetKnown || p.Target != o.Target {
			if o.Op == isa.OpRet {
				u.Stats.RASMispred++
			} else {
				u.Stats.TargetMiss++
			}
			return true
		}
		return false
	}
	return false
}

// Warm performs the functional-warming action for one control
// instruction: a full predict+update pass so counters, history, BTB, and
// RAS evolve exactly as an in-order front end would train them.
//
//simlint:hotpath
func (u *Unit) Warm(o Outcome) {
	p := u.Predict(o.PC, o.Op)
	u.CheckMispredict(p, o)
	u.Update(o)
}

// Flush resets all predictor state to cold (stats preserved).
func (u *Unit) Flush() {
	for i := range u.bimodal {
		u.bimodal[i] = 2
		u.gshare[i] = 2
		u.chooser[i] = 1
	}
	u.history = 0
	for i := range u.btbValid {
		u.btbValid[i] = false
	}
	u.rasTop = 0
	u.markAllDirty()
}

//simlint:hotpath
func (u *Unit) btbLookup(pc uint64) (uint64, bool) {
	set := int(pc) & (u.cfg.BTBSets - 1)
	base := set * u.cfg.BTBWays
	for w := 0; w < u.cfg.BTBWays; w++ {
		i := base + w
		if u.btbValid[i] && u.btbTags[i] == pc {
			u.btbStamp++
			u.btbLRU[i] = u.btbStamp
			u.markBTB(i)
			return u.btbTgts[i], true
		}
	}
	return 0, false
}

//simlint:hotpath
func (u *Unit) btbInsert(pc, target uint64) {
	set := int(pc) & (u.cfg.BTBSets - 1)
	base := set * u.cfg.BTBWays
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < u.cfg.BTBWays; w++ {
		i := base + w
		if u.btbValid[i] && u.btbTags[i] == pc {
			u.btbTgts[i] = target
			u.markBTB(i)
			return
		}
		if !u.btbValid[i] {
			victim = i
			oldest = 0
		} else if u.btbLRU[i] < oldest {
			oldest = u.btbLRU[i]
			victim = i
		}
	}
	u.btbStamp++
	u.btbValid[victim] = true
	u.btbTags[victim] = pc
	u.btbTgts[victim] = target
	u.btbLRU[victim] = u.btbStamp
	u.markBTB(victim)
}

//simlint:hotpath
func (u *Unit) rasPush(ret uint64) {
	if u.rasTop < len(u.ras) {
		u.ras[u.rasTop] = ret
		u.rasTop++
	} else {
		// Overflow: shift (oldest entry lost), standard RAS behaviour.
		copy(u.ras, u.ras[1:])
		u.ras[len(u.ras)-1] = ret
	}
}

//simlint:hotpath
func (u *Unit) rasPop() {
	if u.rasTop > 0 {
		u.rasTop--
	}
}

//simlint:hotpath
func satInc(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return 3
}

//simlint:hotpath
func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return 0
}

//simlint:hotpath
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
