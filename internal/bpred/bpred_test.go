package bpred_test

import (
	"math/rand"
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
)

func unit() *bpred.Unit {
	return bpred.New(bpred.Config{
		TableEntries: 1024,
		HistoryBits:  10,
		BTBSets:      64,
		BTBWays:      2,
		RASEntries:   4,
	})
}

func branch(pc uint64, taken bool, target uint64) bpred.Outcome {
	return bpred.Outcome{Op: isa.OpBne, PC: pc, Taken: taken, Target: target, NextPC: pc + 1}
}

// TestLearnsAlwaysTaken checks counters converge on a monomorphic branch.
func TestLearnsAlwaysTaken(t *testing.T) {
	u := unit()
	o := branch(100, true, 50)
	for i := 0; i < 10; i++ {
		u.Warm(o)
	}
	p := u.Predict(100, isa.OpBne)
	if !p.Taken {
		t.Error("did not learn always-taken")
	}
	if !p.TargetKnown || p.Target != 50 {
		t.Errorf("BTB target %v known=%v, want 50", p.Target, p.TargetKnown)
	}
}

// TestLearnsPattern checks gshare captures a short alternating pattern a
// bimodal predictor cannot.
func TestLearnsPattern(t *testing.T) {
	u := unit()
	// Pattern: T N T N ... on one branch.
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		o := branch(200, taken, 77)
		p := u.Predict(200, isa.OpBne)
		u.CheckMispredict(p, o)
		u.Update(o)
	}
	// After training, measure accuracy over one more period.
	correct := 0
	for i := 0; i < 100; i++ {
		taken := i%2 == 0
		p := u.Predict(200, isa.OpBne)
		if p.Taken == taken {
			correct++
		}
		u.Update(branch(200, taken, 77))
	}
	if correct < 95 {
		t.Errorf("pattern accuracy %d/100, want >= 95 (gshare should capture period 2)", correct)
	}
}

// TestRandomBranchMispredicts checks a random branch stays ~50%.
func TestRandomBranchMispredicts(t *testing.T) {
	u := unit()
	rng := rand.New(rand.NewSource(6))
	miss := 0
	const n = 2000
	for i := 0; i < n; i++ {
		taken := rng.Intn(2) == 0
		o := branch(300, taken, 99)
		p := u.Predict(300, isa.OpBne)
		if u.CheckMispredict(p, o) {
			miss++
		}
		u.Update(o)
	}
	rate := float64(miss) / n
	if rate < 0.3 || rate > 0.7 {
		t.Errorf("random-branch mispredict rate %.2f, want ~0.5", rate)
	}
}

// TestRASCallRet checks return address prediction through nesting.
func TestRASCallRet(t *testing.T) {
	u := unit()
	call := func(pc, tgt uint64) {
		u.Update(bpred.Outcome{Op: isa.OpCall, PC: pc, Taken: true, Target: tgt, NextPC: pc + 1})
	}
	// call at 10 -> 100; call at 110 -> 200; ret; ret.
	call(10, 100)
	call(110, 200)
	p := u.Predict(250, isa.OpRet)
	if !p.TargetKnown || p.Target != 111 {
		t.Errorf("inner return predicted %d, want 111", p.Target)
	}
	u.Update(bpred.Outcome{Op: isa.OpRet, PC: 250, Taken: true, Target: 111})
	p = u.Predict(150, isa.OpRet)
	if !p.TargetKnown || p.Target != 11 {
		t.Errorf("outer return predicted %d, want 11", p.Target)
	}
}

// TestRASOverflow checks deep call chains degrade gracefully.
func TestRASOverflow(t *testing.T) {
	u := unit() // 4 RAS entries
	for i := uint64(0); i < 10; i++ {
		u.Update(bpred.Outcome{Op: isa.OpCall, PC: i * 10, Taken: true, Target: 500 + i, NextPC: i*10 + 1})
	}
	// The newest 4 returns should still predict correctly.
	for i := uint64(9); i >= 6; i-- {
		p := u.Predict(600, isa.OpRet)
		want := i*10 + 1
		if !p.TargetKnown || p.Target != want {
			t.Errorf("return %d predicted %d, want %d", i, p.Target, want)
		}
		u.Update(bpred.Outcome{Op: isa.OpRet, PC: 600, Taken: true, Target: want})
	}
}

// TestIndirectJumpBTB checks indirect targets train through the BTB and
// mispredict when the target changes.
func TestIndirectJumpBTB(t *testing.T) {
	u := unit()
	o := bpred.Outcome{Op: isa.OpJr, PC: 400, Taken: true, Target: 1000}
	p := u.Predict(400, isa.OpJr)
	if !u.CheckMispredict(p, o) {
		t.Error("cold indirect jump should mispredict")
	}
	u.Update(o)
	p = u.Predict(400, isa.OpJr)
	if u.CheckMispredict(p, o) {
		t.Error("trained indirect jump mispredicted")
	}
	// Target changes: mispredict again.
	o2 := bpred.Outcome{Op: isa.OpJr, PC: 400, Taken: true, Target: 2000}
	p = u.Predict(400, isa.OpJr)
	if !u.CheckMispredict(p, o2) {
		t.Error("changed indirect target should mispredict")
	}
}

// TestFlushForgets checks Flush resets learning but keeps stats.
func TestFlushForgets(t *testing.T) {
	u := unit()
	for i := 0; i < 10; i++ {
		u.Warm(branch(100, true, 50))
	}
	stats := u.Stats
	u.Flush()
	if u.Stats != stats {
		t.Error("Flush cleared stats")
	}
	p := u.Predict(100, isa.OpBne)
	if p.TargetKnown {
		t.Error("BTB entry survived flush")
	}
}

// TestStatsAccounting checks counters add up.
func TestStatsAccounting(t *testing.T) {
	u := unit()
	for i := 0; i < 50; i++ {
		u.Warm(branch(uint64(i), i%2 == 0, uint64(1000+i)))
	}
	if u.Stats.Branches != 50 {
		t.Errorf("branches = %d, want 50", u.Stats.Branches)
	}
	if u.Stats.Lookups != 50 {
		t.Errorf("lookups = %d, want 50", u.Stats.Lookups)
	}
	if u.Stats.MispredRate() < 0 || u.Stats.MispredRate() > 1 {
		t.Errorf("mispredict rate %f out of range", u.Stats.MispredRate())
	}
}

// TestConfigValidate exercises the error paths.
func TestConfigValidate(t *testing.T) {
	bad := []bpred.Config{
		{TableEntries: 1000, HistoryBits: 10, BTBSets: 64, BTBWays: 2, RASEntries: 4},
		{TableEntries: 1024, HistoryBits: 0, BTBSets: 64, BTBWays: 2, RASEntries: 4},
		{TableEntries: 1024, HistoryBits: 10, BTBSets: 63, BTBWays: 2, RASEntries: 4},
		{TableEntries: 1024, HistoryBits: 10, BTBSets: 64, BTBWays: 0, RASEntries: 4},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
}
