package bpred

// Delta snapshots: dirty-block encoding of predictor state, the bpred
// counterpart of the cache package's delta machinery. The direction
// tables (bimodal/gshare/chooser share indices) and the BTB arrays are
// covered by fixed-granularity dirty bitmaps maintained inside Update
// and the BTB lookup/insert paths; the return address stack, history
// register, and stamps are small enough to carry in full in every
// delta. SnapshotDelta + State.Apply reproduce a full Snapshot exactly
// (property-tested in delta_test.go).

import (
	"fmt"
	"math/bits"
)

const (
	// tblGrainShift: 64 direction-table entries (64 bytes per table,
	// three tables) share one dirty bit.
	tblGrainShift = 6
	// btbGrainShift: 32 BTB entries (~800 bytes of tag/target/LRU/valid
	// state) share one dirty bit.
	btbGrainShift = 5
)

// newDirtyBitmap allocates an all-dirty bitmap covering n entries at
// the given block granularity (log2 entries per bit).
func newDirtyBitmap(n int, grainShift uint) []uint64 {
	blocks := (n + (1 << grainShift) - 1) >> grainShift
	bm := make([]uint64, (blocks+63)/64)
	for i := range bm {
		bm[i] = ^uint64(0)
	}
	return bm
}

// markTbl records direction-table index i as modified.
func (u *Unit) markTbl(i int) {
	u.tblDirty[uint(i)>>(tblGrainShift+6)] |= 1 << ((uint(i) >> tblGrainShift) & 63)
}

// markBTB records BTB entry i as modified.
func (u *Unit) markBTB(i int) {
	u.btbDirty[uint(i)>>(btbGrainShift+6)] |= 1 << ((uint(i) >> btbGrainShift) & 63)
}

// markAllDirty forces the next delta to carry the full arrays.
func (u *Unit) markAllDirty() {
	for i := range u.tblDirty {
		u.tblDirty[i] = ^uint64(0)
	}
	for i := range u.btbDirty {
		u.btbDirty[i] = ^uint64(0)
	}
}

// ResetDirty clears the dirty tracking, establishing the current state
// as the baseline the next SnapshotDelta is measured against.
func (u *Unit) ResetDirty() {
	for i := range u.tblDirty {
		u.tblDirty[i] = 0
	}
	for i := range u.btbDirty {
		u.btbDirty[i] = 0
	}
}

// Delta is a dirty-block delta between two predictor snapshots. Table
// block b covers indices [b*64, (b+1)*64); BTB block b covers entries
// [b*32, min((b+1)*32, BTBN)). The RAS and the scalars are always
// carried in full (a few hundred bytes at most).
type Delta struct {
	// N is the direction-table entry count, BTBN the BTB entry count
	// (geometry checks).
	N, BTBN int

	// TblBlocks holds dirty direction-table block indices, strictly
	// ascending; Bimodal/Gshare/Chooser hold those blocks' segments.
	TblBlocks                []uint32
	Bimodal, Gshare, Chooser []uint8
	History                  uint64

	// BTBBlocks holds dirty BTB block indices, strictly ascending, with
	// the corresponding array segments.
	BTBBlocks        []uint32
	BTBTags, BTBTgts []uint64
	BTBLRU           []uint64
	BTBValid         []bool
	BTBStamp         uint64

	RAS    []uint64
	RASTop int
}

// dirtyBlocks appends the set block indices of bm (ascending) to dst
// and clears bm, skipping padding bits beyond nBlocks.
func dirtyBlocks(dst []uint32, bm []uint64, nBlocks int) []uint32 {
	for w, word := range bm {
		for word != 0 {
			b := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			if b >= nBlocks {
				continue
			}
			dst = append(dst, uint32(b))
		}
		bm[w] = 0
	}
	return dst
}

// SnapshotDelta captures the table and BTB blocks touched since the
// previous Snapshot+ResetDirty or SnapshotDelta and clears the dirty
// tracking. Applying it to a copy of the previous snapshot reproduces
// Snapshot exactly.
func (u *Unit) SnapshotDelta() *Delta {
	n, btbn := len(u.bimodal), len(u.btbTags)
	d := &Delta{
		N:        n,
		BTBN:     btbn,
		History:  u.history,
		BTBStamp: u.btbStamp,
		RAS:      append([]uint64(nil), u.ras...),
		RASTop:   u.rasTop,
	}
	d.TblBlocks = dirtyBlocks(nil, u.tblDirty, (n+63)>>tblGrainShift)
	for _, b := range d.TblBlocks {
		lo := int(b) << tblGrainShift
		hi := lo + 1<<tblGrainShift
		if hi > n {
			hi = n
		}
		d.Bimodal = append(d.Bimodal, u.bimodal[lo:hi]...)
		d.Gshare = append(d.Gshare, u.gshare[lo:hi]...)
		d.Chooser = append(d.Chooser, u.chooser[lo:hi]...)
	}
	d.BTBBlocks = dirtyBlocks(nil, u.btbDirty, (btbn+31)>>btbGrainShift)
	for _, b := range d.BTBBlocks {
		lo := int(b) << btbGrainShift
		hi := lo + 1<<btbGrainShift
		if hi > btbn {
			hi = btbn
		}
		d.BTBTags = append(d.BTBTags, u.btbTags[lo:hi]...)
		d.BTBTgts = append(d.BTBTgts, u.btbTgts[lo:hi]...)
		d.BTBLRU = append(d.BTBLRU, u.btbLRU[lo:hi]...)
		d.BTBValid = append(d.BTBValid, u.btbValid[lo:hi]...)
	}
	return d
}

// validateBlocks checks one ascending block list against n entries at
// the given granularity and returns the total covered entry count.
func validateBlocks(blocks []uint32, n int, grainShift uint, what string) (int, error) {
	total, prev := 0, -1
	for _, b := range blocks {
		if int(b) <= prev {
			return 0, fmt.Errorf("bpred delta: %s blocks not ascending at %d", what, b)
		}
		prev = int(b)
		lo := int(b) << grainShift
		if lo >= n {
			return 0, fmt.Errorf("bpred delta: %s block %d out of range (%d entries)", what, b, n)
		}
		hi := lo + 1<<grainShift
		if hi > n {
			hi = n
		}
		total += hi - lo
	}
	return total, nil
}

// Validate checks the delta's internal consistency against a predictor
// with n direction-table entries, btbn BTB entries, and rasn RAS slots.
func (d *Delta) Validate(n, btbn, rasn int) error {
	if d.N != n || d.BTBN != btbn {
		return fmt.Errorf("bpred delta: geometry %d/%d, state has %d/%d", d.N, d.BTBN, n, btbn)
	}
	if len(d.RAS) != rasn {
		return fmt.Errorf("bpred delta: RAS %d entries, state has %d", len(d.RAS), rasn)
	}
	if d.RASTop < 0 || d.RASTop > rasn {
		return fmt.Errorf("bpred delta: RAS top %d out of range (%d entries)", d.RASTop, rasn)
	}
	total, err := validateBlocks(d.TblBlocks, n, tblGrainShift, "table")
	if err != nil {
		return err
	}
	if len(d.Bimodal) != total || len(d.Gshare) != total || len(d.Chooser) != total {
		return fmt.Errorf("bpred delta: table segments %d/%d/%d, want %d",
			len(d.Bimodal), len(d.Gshare), len(d.Chooser), total)
	}
	total, err = validateBlocks(d.BTBBlocks, btbn, btbGrainShift, "BTB")
	if err != nil {
		return err
	}
	if len(d.BTBTags) != total || len(d.BTBTgts) != total || len(d.BTBLRU) != total || len(d.BTBValid) != total {
		return fmt.Errorf("bpred delta: BTB segments %d/%d/%d/%d, want %d",
			len(d.BTBTags), len(d.BTBTgts), len(d.BTBLRU), len(d.BTBValid), total)
	}
	return nil
}

// Bytes returns the approximate in-memory payload size of the delta.
func (d *Delta) Bytes() int {
	return 8 + 8 + 8 + // history, stamp, rasTop
		4*len(d.TblBlocks) + len(d.Bimodal) + len(d.Gshare) + len(d.Chooser) +
		4*len(d.BTBBlocks) + 8*len(d.BTBTags) + 8*len(d.BTBTgts) + 8*len(d.BTBLRU) + len(d.BTBValid) +
		8*len(d.RAS)
}

// Bytes returns the approximate in-memory payload size of a full
// snapshot.
func (s *State) Bytes() int {
	return 8 + 8 + 8 +
		len(s.Bimodal) + len(s.Gshare) + len(s.Chooser) +
		8*len(s.BTBTags) + 8*len(s.BTBTgts) + 8*len(s.BTBLRU) + len(s.BTBValid) +
		8*len(s.RAS)
}

// Clone returns a deep copy of the snapshot.
func (s *State) Clone() *State {
	return &State{
		Bimodal:  append([]uint8(nil), s.Bimodal...),
		Gshare:   append([]uint8(nil), s.Gshare...),
		Chooser:  append([]uint8(nil), s.Chooser...),
		History:  s.History,
		BTBTags:  append([]uint64(nil), s.BTBTags...),
		BTBTgts:  append([]uint64(nil), s.BTBTgts...),
		BTBValid: append([]bool(nil), s.BTBValid...),
		BTBLRU:   append([]uint64(nil), s.BTBLRU...),
		BTBStamp: s.BTBStamp,
		RAS:      append([]uint64(nil), s.RAS...),
		RASTop:   s.RASTop,
	}
}

// Apply patches the snapshot forward by one delta: after Apply, the
// state equals the full Snapshot taken at the point the delta was
// captured. The receiver must be (a copy of) the snapshot the delta
// was taken against.
func (s *State) Apply(d *Delta) error {
	if err := d.Validate(len(s.Bimodal), len(s.BTBTags), len(s.RAS)); err != nil {
		return err
	}
	off := 0
	for _, b := range d.TblBlocks {
		lo := int(b) << tblGrainShift
		hi := lo + 1<<tblGrainShift
		if hi > d.N {
			hi = d.N
		}
		w := hi - lo
		copy(s.Bimodal[lo:hi], d.Bimodal[off:off+w])
		copy(s.Gshare[lo:hi], d.Gshare[off:off+w])
		copy(s.Chooser[lo:hi], d.Chooser[off:off+w])
		off += w
	}
	off = 0
	for _, b := range d.BTBBlocks {
		lo := int(b) << btbGrainShift
		hi := lo + 1<<btbGrainShift
		if hi > d.BTBN {
			hi = d.BTBN
		}
		w := hi - lo
		copy(s.BTBTags[lo:hi], d.BTBTags[off:off+w])
		copy(s.BTBTgts[lo:hi], d.BTBTgts[off:off+w])
		copy(s.BTBLRU[lo:hi], d.BTBLRU[off:off+w])
		copy(s.BTBValid[lo:hi], d.BTBValid[off:off+w])
		off += w
	}
	s.History = d.History
	s.BTBStamp = d.BTBStamp
	copy(s.RAS, d.RAS)
	s.RASTop = d.RASTop
	return nil
}
