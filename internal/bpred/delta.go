package bpred

// Delta snapshots: dirty-block encoding of predictor state — the bpred
// implementation of the shared snapshot/delta-chain contract
// (internal/delta), mirroring the cache package's. The direction tables
// (bimodal/gshare/chooser share indices) and the BTB arrays are covered
// by fixed-granularity delta.Bitmaps maintained inside Update and the
// BTB lookup/insert paths; the return address stack, history register,
// and stamps are small enough to carry in full in every delta. Delta +
// State.Apply reproduce a full Snapshot exactly (property-tested in
// delta_test.go). Deltas are self-describing: each carries its grains,
// so stored chains survive granularity retuning.

import (
	"fmt"

	"repro/internal/delta"
)

// The predictor implements the shared snapshot/delta contract.
var (
	_ delta.Source[*State, *Delta] = (*Unit)(nil)
	_ delta.State[*Delta]          = (*State)(nil)
)

const (
	// tblGrainShift: 4 direction-table entries (4 bytes per table, three
	// tables) share one dirty bit. Predictor updates touch single
	// indices scattered by the PC/history hash, so a near-entry grain
	// minimizes dead weight per dirty bit.
	tblGrainShift = 2
	// btbGrainShift: 2 BTB entries (~50 bytes of tag/target/LRU/valid
	// state) share one dirty bit.
	btbGrainShift = 1
)

// markTbl records direction-table index i as modified.
//
//simlint:hotpath
func (u *Unit) markTbl(i int) { u.tblDirty.Mark(i) }

// markBTB records BTB entry i as modified.
//
//simlint:hotpath
func (u *Unit) markBTB(i int) { u.btbDirty.Mark(i) }

// markAllDirty forces the next delta to carry the full arrays.
func (u *Unit) markAllDirty() {
	u.tblDirty.MarkAll()
	u.btbDirty.MarkAll()
}

// Delta is a dirty-block delta between two predictor snapshots. Table
// block b covers indices [b<<TblGrain, (b+1)<<TblGrain); BTB block b
// covers entries [b<<BTBGrain, min((b+1)<<BTBGrain, BTBN)). The RAS and
// the scalars are always carried in full (a few hundred bytes at most).
type Delta struct {
	// N is the direction-table entry count, BTBN the BTB entry count,
	// and TblGrain/BTBGrain the log2 block granularities (geometry
	// checks).
	N, BTBN            int
	TblGrain, BTBGrain uint8

	// TblBlocks holds dirty direction-table block indices, strictly
	// ascending; Bimodal/Gshare/Chooser hold those blocks' segments.
	TblBlocks                []uint32
	Bimodal, Gshare, Chooser []uint8
	History                  uint64

	// BTBBlocks holds dirty BTB block indices, strictly ascending, with
	// the corresponding array segments.
	BTBBlocks        []uint32
	BTBTags, BTBTgts []uint64
	BTBLRU           []uint64
	BTBValid         []bool
	BTBStamp         uint64

	RAS    []uint64
	RASTop int
}

// Seq returns the predictor's current snapshot-chain link (0 before the
// first Snapshot).
func (u *Unit) Seq() uint64 { return u.chain.Seq() }

// Delta captures the table and BTB blocks touched since the snapshot
// point numbered since — which must be the predictor's latest; deltas
// chain strictly — and clears the dirty tracking. Applying it to a copy
// of the previous snapshot reproduces Snapshot exactly.
func (u *Unit) Delta(since uint64) (*Delta, error) {
	if _, err := u.chain.Next(since); err != nil {
		return nil, fmt.Errorf("bpred: %w", err)
	}
	n, btbn := len(u.bimodal), len(u.btbTags)
	d := &Delta{
		N:        n,
		BTBN:     btbn,
		TblGrain: u.tblDirty.Grain(),
		BTBGrain: u.btbDirty.Grain(),
		History:  u.history,
		BTBStamp: u.btbStamp,
		RAS:      append([]uint64(nil), u.ras...),
		RASTop:   u.rasTop,
	}
	d.TblBlocks = u.tblDirty.AppendBlocks(nil)
	for _, b := range d.TblBlocks {
		lo, hi := delta.Span(b, d.TblGrain, n)
		d.Bimodal = append(d.Bimodal, u.bimodal[lo:hi]...)
		d.Gshare = append(d.Gshare, u.gshare[lo:hi]...)
		d.Chooser = append(d.Chooser, u.chooser[lo:hi]...)
	}
	d.BTBBlocks = u.btbDirty.AppendBlocks(nil)
	for _, b := range d.BTBBlocks {
		lo, hi := delta.Span(b, d.BTBGrain, btbn)
		d.BTBTags = append(d.BTBTags, u.btbTags[lo:hi]...)
		d.BTBTgts = append(d.BTBTgts, u.btbTgts[lo:hi]...)
		d.BTBLRU = append(d.BTBLRU, u.btbLRU[lo:hi]...)
		d.BTBValid = append(d.BTBValid, u.btbValid[lo:hi]...)
	}
	return d, nil
}

// Validate checks the delta's internal consistency against a predictor
// with n direction-table entries, btbn BTB entries, and rasn RAS slots.
func (d *Delta) Validate(n, btbn, rasn int) error {
	if d.N != n || d.BTBN != btbn {
		return fmt.Errorf("bpred delta: geometry %d/%d, state has %d/%d", d.N, d.BTBN, n, btbn)
	}
	if len(d.RAS) != rasn {
		return fmt.Errorf("bpred delta: RAS %d entries, state has %d", len(d.RAS), rasn)
	}
	if d.RASTop < 0 || d.RASTop > rasn {
		return fmt.Errorf("bpred delta: RAS top %d out of range (%d entries)", d.RASTop, rasn)
	}
	total, err := delta.ValidateBlocks(d.TblBlocks, d.TblGrain, n, "bpred table")
	if err != nil {
		return err
	}
	if len(d.Bimodal) != total || len(d.Gshare) != total || len(d.Chooser) != total {
		return fmt.Errorf("bpred delta: table segments %d/%d/%d, want %d",
			len(d.Bimodal), len(d.Gshare), len(d.Chooser), total)
	}
	total, err = delta.ValidateBlocks(d.BTBBlocks, d.BTBGrain, btbn, "BTB")
	if err != nil {
		return err
	}
	if len(d.BTBTags) != total || len(d.BTBTgts) != total || len(d.BTBLRU) != total || len(d.BTBValid) != total {
		return fmt.Errorf("bpred delta: BTB segments %d/%d/%d/%d, want %d",
			len(d.BTBTags), len(d.BTBTgts), len(d.BTBLRU), len(d.BTBValid), total)
	}
	return nil
}

// Bytes returns the approximate in-memory payload size of the delta.
func (d *Delta) Bytes() int {
	return 8 + 8 + 8 + // history, stamp, rasTop
		4*len(d.TblBlocks) + len(d.Bimodal) + len(d.Gshare) + len(d.Chooser) +
		4*len(d.BTBBlocks) + 8*len(d.BTBTags) + 8*len(d.BTBTgts) + 8*len(d.BTBLRU) + len(d.BTBValid) +
		8*len(d.RAS)
}

// Bytes returns the approximate in-memory payload size of a full
// snapshot.
func (s *State) Bytes() int {
	return 8 + 8 + 8 +
		len(s.Bimodal) + len(s.Gshare) + len(s.Chooser) +
		8*len(s.BTBTags) + 8*len(s.BTBTgts) + 8*len(s.BTBLRU) + len(s.BTBValid) +
		8*len(s.RAS)
}

// Clone returns a deep copy of the snapshot.
func (s *State) Clone() *State {
	return &State{
		Bimodal:  append([]uint8(nil), s.Bimodal...),
		Gshare:   append([]uint8(nil), s.Gshare...),
		Chooser:  append([]uint8(nil), s.Chooser...),
		History:  s.History,
		BTBTags:  append([]uint64(nil), s.BTBTags...),
		BTBTgts:  append([]uint64(nil), s.BTBTgts...),
		BTBValid: append([]bool(nil), s.BTBValid...),
		BTBLRU:   append([]uint64(nil), s.BTBLRU...),
		BTBStamp: s.BTBStamp,
		RAS:      append([]uint64(nil), s.RAS...),
		RASTop:   s.RASTop,
	}
}

// Apply patches the snapshot forward by one delta: after Apply, the
// state equals the full Snapshot taken at the point the delta was
// captured. The receiver must be (a copy of) the snapshot the delta
// was taken against.
func (s *State) Apply(d *Delta) error {
	if err := d.Validate(len(s.Bimodal), len(s.BTBTags), len(s.RAS)); err != nil {
		return err
	}
	off := 0
	for _, b := range d.TblBlocks {
		lo, hi := delta.Span(b, d.TblGrain, d.N)
		w := hi - lo
		copy(s.Bimodal[lo:hi], d.Bimodal[off:off+w])
		copy(s.Gshare[lo:hi], d.Gshare[off:off+w])
		copy(s.Chooser[lo:hi], d.Chooser[off:off+w])
		off += w
	}
	off = 0
	for _, b := range d.BTBBlocks {
		lo, hi := delta.Span(b, d.BTBGrain, d.BTBN)
		w := hi - lo
		copy(s.BTBTags[lo:hi], d.BTBTags[off:off+w])
		copy(s.BTBTgts[lo:hi], d.BTBTgts[off:off+w])
		copy(s.BTBLRU[lo:hi], d.BTBLRU[off:off+w])
		copy(s.BTBValid[lo:hi], d.BTBValid[off:off+w])
		off += w
	}
	s.History = d.History
	s.BTBStamp = d.BTBStamp
	copy(s.RAS, d.RAS)
	s.RASTop = d.RASTop
	return nil
}
