package bpred

import "fmt"

// State is a serializable snapshot of the prediction unit's trained
// state: direction counters, global history, BTB contents, and the
// return address stack. Statistics are excluded, matching the cache
// snapshot convention.
type State struct {
	Bimodal, Gshare, Chooser []uint8
	History                  uint64

	BTBTags, BTBTgts []uint64
	BTBValid         []bool
	BTBLRU           []uint64
	BTBStamp         uint64

	RAS    []uint64
	RASTop int
}

// Snapshot captures the unit's trained state. It is the keyframe of
// the predictor's delta chain: dirty tracking restarts here, so the
// next Delta carries exactly the blocks touched from this point on.
func (u *Unit) Snapshot() *State {
	u.tblDirty.Reset()
	u.btbDirty.Reset()
	u.chain.Keyframe()
	s := &State{
		Bimodal:  append([]uint8(nil), u.bimodal...),
		Gshare:   append([]uint8(nil), u.gshare...),
		Chooser:  append([]uint8(nil), u.chooser...),
		History:  u.history,
		BTBTags:  append([]uint64(nil), u.btbTags...),
		BTBTgts:  append([]uint64(nil), u.btbTgts...),
		BTBValid: append([]bool(nil), u.btbValid...),
		BTBLRU:   append([]uint64(nil), u.btbLRU...),
		BTBStamp: u.btbStamp,
		RAS:      append([]uint64(nil), u.ras...),
		RASTop:   u.rasTop,
	}
	return s
}

// Restore overwrites the unit's trained state with a snapshot taken from
// a unit of identical configuration. Stats are left untouched.
func (u *Unit) Restore(s *State) error {
	if len(s.Bimodal) != len(u.bimodal) || len(s.BTBTags) != len(u.btbTags) || len(s.RAS) != len(u.ras) {
		return fmt.Errorf("bpred: snapshot geometry mismatch (tables %d/%d, BTB %d/%d, RAS %d/%d)",
			len(s.Bimodal), len(u.bimodal), len(s.BTBTags), len(u.btbTags), len(s.RAS), len(u.ras))
	}
	// Bound the stack pointer: restoring an out-of-range top (a corrupt
	// deserialized snapshot) would make the next RAS access panic.
	if s.RASTop < 0 || s.RASTop > len(u.ras) {
		return fmt.Errorf("bpred: snapshot RAS top %d out of range (%d entries)", s.RASTop, len(u.ras))
	}
	copy(u.bimodal, s.Bimodal)
	copy(u.gshare, s.Gshare)
	copy(u.chooser, s.Chooser)
	u.history = s.History
	copy(u.btbTags, s.BTBTags)
	copy(u.btbTgts, s.BTBTgts)
	copy(u.btbValid, s.BTBValid)
	copy(u.btbLRU, s.BTBLRU)
	u.btbStamp = s.BTBStamp
	copy(u.ras, s.RAS)
	u.rasTop = s.RASTop
	u.markAllDirty() // every entry may differ from the last delta baseline
	return nil
}
