package cache

// Delta snapshots: dirty-block encoding of cache state, implementing
// the shared snapshot/delta-chain contract of internal/delta.
//
// Every content-bearing array of a Cache (tags, valid/dirty bits, LRU
// stamps) is covered by one delta.Bitmap at a fixed granularity of
// 1<<GrainShift entries per block. The state-update fast paths (Touch,
// Access) mark the block containing each touched entry; Delta then
// copies only the marked blocks — the state that can have changed since
// the previous snapshot point — and State.Apply patches them back over
// a full snapshot. Marking over-approximates freely (Flush and Restore
// mark everything) but must never under-approximate: the delta/full
// equivalence is property-tested in delta_test.go and is what keeps
// delta-encoded checkpoints bit-identical to full ones.
//
// Deltas are self-describing: each carries its grain, so a consumer
// (or a store entry written under an older granularity) reconstructs
// with the grain the delta was captured at, not whatever this package
// currently uses.

import (
	"fmt"

	"repro/internal/delta"
)

// The cache structures implement the shared snapshot/delta contract.
var (
	_ delta.Source[*State, *Delta]                   = (*Cache)(nil)
	_ delta.Source[*State, *Delta]                   = (*TLB)(nil)
	_ delta.Source[*HierarchyState, *HierarchyDelta] = (*Hierarchy)(nil)
	_ delta.State[*Delta]                            = (*State)(nil)
	_ delta.State[*HierarchyDelta]                   = (*HierarchyState)(nil)
)

// GrainShift is log2 of the dirty-tracking granularity this package
// captures deltas at: 2 entries (~36 bytes of tag+LRU+flag state)
// share one dirty bit. The dominant warm traffic is scattered single-
// entry LRU-stamp updates — cache indexing hashes accesses across sets
// — so a near-entry grain carries the least dead weight per dirty bit;
// the bitmap stays small regardless (a 1MB L2's 16K entries need a
// 128-word bitmap). Decoded deltas carry their own grain, so changing
// this constant never invalidates stored chains.
const GrainShift = 1

// Delta is a dirty-block delta between two snapshots of one cache: the
// scalar stamp plus, for each dirty block, that block's segment of every
// content array, concatenated in ascending block order. Block b covers
// entries [b<<Grain, min((b+1)<<Grain, N)).
type Delta struct {
	// N is the entry count of the full arrays and Grain the log2 block
	// granularity (geometry checks).
	N     int
	Grain uint8
	Stamp uint64
	// Blocks holds the dirty block indices, strictly ascending.
	Blocks []uint32
	// Tags, Valid, Dirty, and LastUsed hold the dirty blocks' segments
	// of the corresponding State arrays, concatenated in Blocks order.
	Tags     []uint64
	Valid    []bool
	Dirty    []bool
	LastUsed []uint64
}

// Seq returns the cache's current snapshot-chain link (0 before the
// first Snapshot).
func (c *Cache) Seq() uint64 { return c.chain.Seq() }

// Delta captures the blocks touched since the snapshot point numbered
// since — which must be the cache's latest (Snapshot or Delta); deltas
// chain strictly — and clears the dirty tracking. Applying the delta to
// a copy of the previous snapshot (State.Apply) reproduces Snapshot
// exactly.
func (c *Cache) Delta(since uint64) (*Delta, error) {
	if _, err := c.chain.Next(since); err != nil {
		return nil, fmt.Errorf("cache %s: %w", c.cfg.Name, err)
	}
	n := len(c.tags)
	d := &Delta{N: n, Grain: c.snapDirty.Grain(), Stamp: c.stamp}
	d.Blocks = c.snapDirty.AppendBlocks(nil)
	for _, b := range d.Blocks {
		lo, hi := delta.Span(b, d.Grain, n)
		d.Tags = append(d.Tags, c.tags[lo:hi]...)
		d.Valid = append(d.Valid, c.valid[lo:hi]...)
		d.Dirty = append(d.Dirty, c.dirty[lo:hi]...)
		d.LastUsed = append(d.LastUsed, c.lastUsed[lo:hi]...)
	}
	return d, nil
}

// Validate checks the delta's internal consistency against a full-array
// length of n entries: ascending in-range blocks and matching segment
// totals. Deserialized deltas are validated before use so corrupt store
// entries can never index out of range.
func (d *Delta) Validate(n int) error {
	if d.N != n {
		return fmt.Errorf("cache delta: geometry %d entries, state has %d", d.N, n)
	}
	total, err := delta.ValidateBlocks(d.Blocks, d.Grain, n, "cache")
	if err != nil {
		return err
	}
	if len(d.Tags) != total || len(d.Valid) != total || len(d.Dirty) != total || len(d.LastUsed) != total {
		return fmt.Errorf("cache delta: segment lengths %d/%d/%d/%d, want %d",
			len(d.Tags), len(d.Valid), len(d.Dirty), len(d.LastUsed), total)
	}
	return nil
}

// Bytes returns the approximate in-memory payload size of the delta,
// the quantity the snapshotBytes/unit metric tracks.
func (d *Delta) Bytes() int {
	return 8 + 4*len(d.Blocks) + 8*len(d.Tags) + len(d.Valid) + len(d.Dirty) + 8*len(d.LastUsed)
}

// Bytes returns the approximate in-memory payload size of a full
// snapshot.
func (s *State) Bytes() int {
	return 8 + 8*len(s.Tags) + len(s.Valid) + len(s.Dirty) + 8*len(s.LastUsed)
}

// Clone returns a deep copy of the snapshot.
func (s *State) Clone() *State {
	return &State{
		Tags:     append([]uint64(nil), s.Tags...),
		Valid:    append([]bool(nil), s.Valid...),
		Dirty:    append([]bool(nil), s.Dirty...),
		LastUsed: append([]uint64(nil), s.LastUsed...),
		Stamp:    s.Stamp,
	}
}

// Apply patches the snapshot forward by one delta: after Apply, the
// state equals the full Snapshot taken at the point the delta was
// captured. The receiver must be (a copy of) the snapshot the delta was
// taken against.
func (s *State) Apply(d *Delta) error {
	if err := d.Validate(len(s.Tags)); err != nil {
		return err
	}
	off := 0
	for _, b := range d.Blocks {
		lo, hi := delta.Span(b, d.Grain, d.N)
		w := hi - lo
		copy(s.Tags[lo:hi], d.Tags[off:off+w])
		copy(s.Valid[lo:hi], d.Valid[off:off+w])
		copy(s.Dirty[lo:hi], d.Dirty[off:off+w])
		copy(s.LastUsed[lo:hi], d.LastUsed[off:off+w])
		off += w
	}
	s.Stamp = d.Stamp
	return nil
}

// Delta captures the TLB translations touched since the snapshot point
// numbered since (see Cache.Delta).
func (t *TLB) Delta(since uint64) (*Delta, error) { return t.inner.Delta(since) }

// Seq returns the TLB's current snapshot-chain link.
func (t *TLB) Seq() uint64 { return t.inner.Seq() }

// HierarchyDelta bundles the deltas of every structure in a Hierarchy —
// the dirty-block counterpart of HierarchyState.
type HierarchyDelta struct {
	IL1, DL1, L2 *Delta
	ITLB, DTLB   *Delta
}

// Delta captures all caches' and TLBs' dirty blocks since the snapshot
// point numbered since and clears their tracking. The hierarchy's
// structures advance their chains in lockstep (Snapshot and Delta drive
// all of them), so one sequence number covers the ensemble; a structure
// snapshotted out-of-band desynchronizes and surfaces here as an error.
func (h *Hierarchy) Delta(since uint64) (*HierarchyDelta, error) {
	d := &HierarchyDelta{}
	var err error
	if d.IL1, err = h.IL1.Delta(since); err != nil {
		return nil, err
	}
	if d.DL1, err = h.DL1.Delta(since); err != nil {
		return nil, err
	}
	if d.L2, err = h.L2.Delta(since); err != nil {
		return nil, err
	}
	if d.ITLB, err = h.ITLB.Delta(since); err != nil {
		return nil, err
	}
	if d.DTLB, err = h.DTLB.Delta(since); err != nil {
		return nil, err
	}
	return d, nil
}

// Seq returns the hierarchy's current snapshot-chain link (the
// structures move in lockstep; IL1 is representative).
func (h *Hierarchy) Seq() uint64 { return h.IL1.Seq() }

// Bytes sums the payload sizes of the bundled deltas.
func (d *HierarchyDelta) Bytes() int {
	return d.IL1.Bytes() + d.DL1.Bytes() + d.L2.Bytes() + d.ITLB.Bytes() + d.DTLB.Bytes()
}

// Bytes sums the payload sizes of the bundled snapshots.
func (s *HierarchyState) Bytes() int {
	return s.IL1.Bytes() + s.DL1.Bytes() + s.L2.Bytes() + s.ITLB.Bytes() + s.DTLB.Bytes()
}

// Clone returns a deep copy of the hierarchy snapshot.
func (s *HierarchyState) Clone() *HierarchyState {
	return &HierarchyState{
		IL1:  s.IL1.Clone(),
		DL1:  s.DL1.Clone(),
		L2:   s.L2.Clone(),
		ITLB: s.ITLB.Clone(),
		DTLB: s.DTLB.Clone(),
	}
}

// Apply patches every structure's snapshot forward by one hierarchy
// delta.
func (s *HierarchyState) Apply(d *HierarchyDelta) error {
	if err := s.IL1.Apply(d.IL1); err != nil {
		return err
	}
	if err := s.DL1.Apply(d.DL1); err != nil {
		return err
	}
	if err := s.L2.Apply(d.L2); err != nil {
		return err
	}
	if err := s.ITLB.Apply(d.ITLB); err != nil {
		return err
	}
	return s.DTLB.Apply(d.DTLB)
}
