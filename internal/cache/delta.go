package cache

// Delta snapshots: dirty-block encoding of cache state.
//
// Every content-bearing array of a Cache (tags, valid/dirty bits, LRU
// stamps) is covered by a dirty bitmap at a fixed granularity of
// dirtyGrain entries per block. The state-update fast paths (Touch,
// Access) mark the block containing each touched entry; SnapshotDelta
// then copies only the marked blocks — the state that can have changed
// since the previous snapshot — and State.Apply patches them back over
// a full snapshot. Marking over-approximates freely (Flush and Restore
// mark everything) but must never under-approximate: the delta/full
// equivalence is property-tested in delta_test.go and is what keeps
// delta-encoded checkpoints bit-identical to full ones.

import (
	"fmt"
	"math/bits"
)

const (
	// dirtyGrainShift is log2 of the dirty-tracking granularity: 32
	// entries (~580 bytes of tag+LRU+flag state) share one dirty bit. A
	// finer grain shrinks deltas for scattered traffic; a coarser one
	// shrinks the bitmap. 32 keeps per-unit deltas a few hundred bytes
	// per touched region while the largest array (a 1MB L2's 16K
	// entries) needs only an 8-word bitmap.
	dirtyGrainShift = 5
	dirtyGrain      = 1 << dirtyGrainShift
	// dirtyWordShift converts an entry index straight to its bitmap word
	// index (64 blocks per word).
	dirtyWordShift = dirtyGrainShift + 6
)

// newDirtyBitmap allocates an all-dirty bitmap covering n entries, so
// the first delta taken without a prior full snapshot conservatively
// carries everything.
func newDirtyBitmap(n int) []uint64 {
	blocks := (n + dirtyGrain - 1) / dirtyGrain
	bm := make([]uint64, (blocks+63)/64)
	for i := range bm {
		bm[i] = ^uint64(0)
	}
	return bm
}

// markDirty records that entry i may have changed since the last
// snapshot. Two shifts and an OR — cheap enough for the Touch/Access
// fast paths the functional-warming sweep lives in.
func (c *Cache) markDirty(i int) {
	c.snapDirty[uint(i)>>dirtyWordShift] |= 1 << ((uint(i) >> dirtyGrainShift) & 63)
}

// markAllDirty forces the next delta to carry the full arrays.
func (c *Cache) markAllDirty() {
	for i := range c.snapDirty {
		c.snapDirty[i] = ^uint64(0)
	}
}

// ResetDirty clears the dirty tracking, establishing the current
// contents as the baseline the next SnapshotDelta is measured against.
// Callers pair it with a full Snapshot (see uarch.Warmer.Snapshot).
func (c *Cache) ResetDirty() {
	for i := range c.snapDirty {
		c.snapDirty[i] = 0
	}
}

// Delta is a dirty-block delta between two snapshots of one cache: the
// scalar stamp plus, for each dirty block, that block's segment of every
// content array, concatenated in ascending block order. Block b covers
// entries [b*dirtyGrain, min((b+1)*dirtyGrain, N)).
type Delta struct {
	// N is the entry count of the full arrays (geometry check).
	N     int
	Stamp uint64
	// Blocks holds the dirty block indices, strictly ascending.
	Blocks []uint32
	// Tags, Valid, Dirty, and LastUsed hold the dirty blocks' segments
	// of the corresponding State arrays, concatenated in Blocks order.
	Tags     []uint64
	Valid    []bool
	Dirty    []bool
	LastUsed []uint64
}

// blockSpan returns the entry range covered by block b in arrays of n
// entries.
func blockSpan(b uint32, n int) (lo, hi int) {
	lo = int(b) << dirtyGrainShift
	hi = lo + dirtyGrain
	if hi > n {
		hi = n
	}
	return lo, hi
}

// SnapshotDelta captures the blocks touched since the previous
// Snapshot+ResetDirty or SnapshotDelta and clears the dirty tracking, so
// consecutive calls form a chain of deltas. Applying the delta to a copy
// of the previous snapshot (State.Apply) reproduces Snapshot exactly.
func (c *Cache) SnapshotDelta() *Delta {
	n := len(c.tags)
	d := &Delta{N: n, Stamp: c.stamp}
	for w, word := range c.snapDirty {
		for word != 0 {
			b := uint32(w<<6 | bits.TrailingZeros64(word))
			word &= word - 1
			lo, hi := blockSpan(b, n)
			if lo >= n {
				continue // padding bits beyond the last block
			}
			d.Blocks = append(d.Blocks, b)
			d.Tags = append(d.Tags, c.tags[lo:hi]...)
			d.Valid = append(d.Valid, c.valid[lo:hi]...)
			d.Dirty = append(d.Dirty, c.dirty[lo:hi]...)
			d.LastUsed = append(d.LastUsed, c.lastUsed[lo:hi]...)
		}
		c.snapDirty[w] = 0
	}
	return d
}

// Validate checks the delta's internal consistency against a full-array
// length of n entries: ascending in-range blocks and matching segment
// totals. Deserialized deltas are validated before use so corrupt store
// entries can never index out of range.
func (d *Delta) Validate(n int) error {
	if d.N != n {
		return fmt.Errorf("cache delta: geometry %d entries, state has %d", d.N, n)
	}
	total, prev := 0, -1
	for _, b := range d.Blocks {
		if int(b) <= prev {
			return fmt.Errorf("cache delta: blocks not ascending at %d", b)
		}
		prev = int(b)
		lo, hi := blockSpan(b, n)
		if lo >= n {
			return fmt.Errorf("cache delta: block %d out of range (%d entries)", b, n)
		}
		total += hi - lo
	}
	if len(d.Tags) != total || len(d.Valid) != total || len(d.Dirty) != total || len(d.LastUsed) != total {
		return fmt.Errorf("cache delta: segment lengths %d/%d/%d/%d, want %d",
			len(d.Tags), len(d.Valid), len(d.Dirty), len(d.LastUsed), total)
	}
	return nil
}

// Bytes returns the approximate in-memory payload size of the delta,
// the quantity the snapshotBytes/unit metric tracks.
func (d *Delta) Bytes() int {
	return 8 + 4*len(d.Blocks) + 8*len(d.Tags) + len(d.Valid) + len(d.Dirty) + 8*len(d.LastUsed)
}

// Bytes returns the approximate in-memory payload size of a full
// snapshot.
func (s *State) Bytes() int {
	return 8 + 8*len(s.Tags) + len(s.Valid) + len(s.Dirty) + 8*len(s.LastUsed)
}

// Clone returns a deep copy of the snapshot.
func (s *State) Clone() *State {
	return &State{
		Tags:     append([]uint64(nil), s.Tags...),
		Valid:    append([]bool(nil), s.Valid...),
		Dirty:    append([]bool(nil), s.Dirty...),
		LastUsed: append([]uint64(nil), s.LastUsed...),
		Stamp:    s.Stamp,
	}
}

// Apply patches the snapshot forward by one delta: after Apply, the
// state equals the full Snapshot taken at the point the delta was
// captured. The receiver must be (a copy of) the snapshot the delta was
// taken against.
func (s *State) Apply(d *Delta) error {
	if err := d.Validate(len(s.Tags)); err != nil {
		return err
	}
	off := 0
	for _, b := range d.Blocks {
		lo, hi := blockSpan(b, d.N)
		w := hi - lo
		copy(s.Tags[lo:hi], d.Tags[off:off+w])
		copy(s.Valid[lo:hi], d.Valid[off:off+w])
		copy(s.Dirty[lo:hi], d.Dirty[off:off+w])
		copy(s.LastUsed[lo:hi], d.LastUsed[off:off+w])
		off += w
	}
	s.Stamp = d.Stamp
	return nil
}

// SnapshotDelta captures the TLB translations touched since the last
// snapshot (see Cache.SnapshotDelta).
func (t *TLB) SnapshotDelta() *Delta { return t.inner.SnapshotDelta() }

// ResetDirty clears the TLB's dirty tracking.
func (t *TLB) ResetDirty() { t.inner.ResetDirty() }

// HierarchyDelta bundles the deltas of every structure in a Hierarchy —
// the dirty-block counterpart of HierarchyState.
type HierarchyDelta struct {
	IL1, DL1, L2 *Delta
	ITLB, DTLB   *Delta
}

// SnapshotDelta captures all caches' and TLBs' dirty blocks and clears
// their tracking.
func (h *Hierarchy) SnapshotDelta() *HierarchyDelta {
	return &HierarchyDelta{
		IL1:  h.IL1.SnapshotDelta(),
		DL1:  h.DL1.SnapshotDelta(),
		L2:   h.L2.SnapshotDelta(),
		ITLB: h.ITLB.SnapshotDelta(),
		DTLB: h.DTLB.SnapshotDelta(),
	}
}

// ResetDirty clears dirty tracking across the hierarchy, making the
// current contents the baseline for the next SnapshotDelta.
func (h *Hierarchy) ResetDirty() {
	h.IL1.ResetDirty()
	h.DL1.ResetDirty()
	h.L2.ResetDirty()
	h.ITLB.ResetDirty()
	h.DTLB.ResetDirty()
}

// Bytes sums the payload sizes of the bundled deltas.
func (d *HierarchyDelta) Bytes() int {
	return d.IL1.Bytes() + d.DL1.Bytes() + d.L2.Bytes() + d.ITLB.Bytes() + d.DTLB.Bytes()
}

// Bytes sums the payload sizes of the bundled snapshots.
func (s *HierarchyState) Bytes() int {
	return s.IL1.Bytes() + s.DL1.Bytes() + s.L2.Bytes() + s.ITLB.Bytes() + s.DTLB.Bytes()
}

// Clone returns a deep copy of the hierarchy snapshot.
func (s *HierarchyState) Clone() *HierarchyState {
	return &HierarchyState{
		IL1:  s.IL1.Clone(),
		DL1:  s.DL1.Clone(),
		L2:   s.L2.Clone(),
		ITLB: s.ITLB.Clone(),
		DTLB: s.DTLB.Clone(),
	}
}

// Apply patches every structure's snapshot forward by one hierarchy
// delta.
func (s *HierarchyState) Apply(d *HierarchyDelta) error {
	if err := s.IL1.Apply(d.IL1); err != nil {
		return err
	}
	if err := s.DL1.Apply(d.DL1); err != nil {
		return err
	}
	if err := s.L2.Apply(d.L2); err != nil {
		return err
	}
	if err := s.ITLB.Apply(d.ITLB); err != nil {
		return err
	}
	return s.DTLB.Apply(d.DTLB)
}
