// Package cache models the memory hierarchy: set-associative write-back
// caches with true-LRU replacement, translation lookaside buffers, miss
// status holding registers (MSHRs), and the committed-store buffer.
//
// Every structure exposes two faces:
//
//   - an untimed state-update face (Touch/WarmAccess) used by functional
//     warming, which replays the in-order instruction stream into the
//     structure without computing latencies; and
//   - a timed face (Access with latency results) used by the detailed
//     model.
//
// The same instance is shared across simulation modes, which is exactly
// the mechanism SMARTS's functional warming relies on: state accumulated
// during fast-forwarding is what the next sampling unit's detailed
// simulation observes.
package cache

import (
	"fmt"

	"repro/internal/delta"
)

// Config describes one cache level. The geometry fields are folded
// into checkpoint.WarmSignature: two configs with equal geometry warm
// identically from one stream.
//
//simlint:keystruct WarmSignature
type Config struct {
	// Name is used in stats output ("L1D" etc.).
	//simlint:nonkey display label; never observed by the sweep
	Name string
	// Sets and Ways define the organization. Sets must be a power of two.
	Sets, Ways int
	// BlockBits is log2 of the block size in bytes.
	BlockBits uint
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets %d must be a power of two", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d must be positive", c.Name, c.Ways)
	}
	if c.BlockBits == 0 || c.BlockBits > 12 {
		return fmt.Errorf("cache %s: block bits %d out of range", c.Name, c.BlockBits)
	}
	return nil
}

// SizeBytes returns the total data capacity.
func (c Config) SizeBytes() uint64 {
	return uint64(c.Sets) * uint64(c.Ways) << c.BlockBits
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one level of set-associative cache with true LRU.
type Cache struct {
	cfg      Config
	setMask  uint64
	tags     []uint64 // sets*ways
	valid    []bool
	dirty    []bool
	lastUsed []uint64 // LRU stamps
	stamp    uint64

	// snapDirty is the snapshot dirty-tracking bitmap (one bit per
	// GrainShift-granularity block of the tag/valid/dirty/lastUsed
	// arrays), and chain the snapshot sequence — together the cache's
	// implementation of the delta contract (see delta.go). Marking is
	// two shifts and an OR, cheap enough for the warm fast paths.
	snapDirty delta.Bitmap
	chain     delta.Chain

	// lastIdx is the way index of the most recently hit or filled block —
	// a hint for Touch's warm-hit fast path. It is revalidated against
	// the live tag/valid arrays on every use, so it never needs
	// invalidation (Flush, Restore, and evictions simply make the
	// revalidation fail) and is deliberately excluded from snapshots.
	lastIdx int

	// Stats accumulates over the cache's lifetime. Callers snapshot and
	// diff it for per-unit measurements.
	Stats Stats
}

// New builds a cache; the configuration must be valid.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Sets * cfg.Ways
	return &Cache{
		cfg:      cfg,
		setMask:  uint64(cfg.Sets - 1),
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		lastUsed: make([]uint64, n),
		// Start all-dirty: the first snapshot after construction must be
		// a full one (delta consumers always key off a prior snapshot).
		snapDirty: delta.NewBitmap(n, GrainShift),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// index splits addr into set base index and tag.
//
//simlint:hotpath
func (c *Cache) index(addr uint64) (int, uint64) {
	block := addr >> c.cfg.BlockBits
	set := int(block & c.setMask)
	tag := block >> 0 // full block number as tag; set bits are redundant but harmless
	return set * c.cfg.Ways, tag
}

// AccessResult describes the outcome of a timed access.
type AccessResult struct {
	Hit bool
	// WritebackDirty reports that the victim block was dirty and a
	// writeback to the next level is required.
	WritebackDirty bool
	// VictimAddr is the byte address of the evicted block when
	// WritebackDirty is set.
	VictimAddr uint64
}

// Access performs one access, updating replacement and contents.
// write marks the block dirty on hit or after fill (write-allocate).
//
//simlint:hotpath
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.Stats.Accesses++
	c.stamp++
	base, tag := c.index(addr)
	ways := c.cfg.Ways
	// Hit check.
	for w := 0; w < ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.lastUsed[i] = c.stamp
			if write {
				c.dirty[i] = true
			}
			c.lastIdx = i
			c.snapDirty.Mark(i)
			return AccessResult{Hit: true}
		}
	}
	// Miss: choose victim (invalid first, else LRU).
	c.Stats.Misses++
	victim := base
	var oldest uint64 = ^uint64(0)
	found := false
	for w := 0; w < ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			found = true
			break
		}
		if c.lastUsed[i] < oldest {
			oldest = c.lastUsed[i]
			victim = i
		}
	}
	res := AccessResult{}
	if !found && c.valid[victim] {
		c.Stats.Evictions++
		if c.dirty[victim] {
			c.Stats.Writebacks++
			res.WritebackDirty = true
			res.VictimAddr = c.tags[victim] << c.cfg.BlockBits
		}
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.dirty[victim] = write
	c.lastUsed[victim] = c.stamp
	c.lastIdx = victim
	c.snapDirty.Mark(victim)
	return res
}

// Touch attempts the warm-hit fast path used by functional warming: when
// the most recently used block (the lastIdx hint) is still resident and
// matches addr, it applies exactly the state updates a hitting Access
// would (access count, LRU stamp, dirty bit) and returns true. When the
// hint does not match it does nothing and returns false; the caller
// falls back to the full Access. Because the hint is revalidated against
// the live arrays, Touch-then-Access is state- and stats-identical to a
// plain Access for every access sequence.
//
// Touch is small enough for the compiler to inline into the warming
// loop, which is what makes the in-order sweep's dominant case — a
// repeated hit on the same hot block — cheap.
//
//simlint:hotpath
func (c *Cache) Touch(addr uint64, write bool) bool {
	block := addr >> c.cfg.BlockBits
	i := c.lastIdx
	if c.valid[i] && c.tags[i] == block {
		c.Stats.Accesses++
		c.stamp++
		c.lastUsed[i] = c.stamp
		if write {
			c.dirty[i] = true
		}
		c.snapDirty.Mark(i)
		return true
	}
	return false
}

// Probe reports whether addr currently hits, without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	base, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all contents (stats are preserved).
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.lastUsed[i] = 0
	}
	c.snapDirty.MarkAll()
}

// Occupancy returns the number of valid blocks.
func (c *Cache) Occupancy() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
