package cache_test

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
)

// warmAccess applies the exact warm-path protocol the hierarchy uses:
// try the Touch fast path, fall back to a full Access. Tests below
// assert it is indistinguishable from always calling Access.
func warmAccess(c *cache.Cache, addr uint64, write bool) {
	if !c.Touch(addr, write) {
		c.Access(addr, write)
	}
}

// TestTouchMatchesAccess drives two identically configured caches with
// the same randomized access stream — one through plain Access, one
// through the Touch-then-Access warm protocol — and requires identical
// statistics and identical snapshotted state (tags, valid/dirty bits,
// and LRU stamps) at the end. This is the bit-identity contract that
// lets the functional-warming sweep take the fast path without
// perturbing any downstream measurement.
func TestTouchMatchesAccess(t *testing.T) {
	cfg := cache.Config{Name: "T", Sets: 8, Ways: 2, BlockBits: 6}
	plain := cache.New(cfg)
	touched := cache.New(cfg)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200_000; i++ {
		// Small address space with heavy same-block reuse so the fast
		// path, conflict misses, and evictions all occur frequently.
		var addr uint64
		if rng.Intn(4) != 0 {
			addr = uint64(rng.Intn(4)) * 8 // hot blocks
		} else {
			addr = uint64(rng.Intn(1 << 14))
		}
		write := rng.Intn(3) == 0
		plain.Access(addr, write)
		warmAccess(touched, addr, write)
	}
	if plain.Stats != touched.Stats {
		t.Fatalf("stats diverged:\nplain   %+v\ntouched %+v", plain.Stats, touched.Stats)
	}
	ps, ts := plain.Snapshot(), touched.Snapshot()
	if ps.Stamp != ts.Stamp {
		t.Fatalf("stamps diverged: %d vs %d", ps.Stamp, ts.Stamp)
	}
	for i := range ps.Tags {
		if ps.Valid[i] != ts.Valid[i] || ps.Tags[i] != ts.Tags[i] ||
			ps.Dirty[i] != ts.Dirty[i] || ps.LastUsed[i] != ts.LastUsed[i] {
			t.Fatalf("block %d diverged: plain {v:%v t:%d d:%v u:%d} touched {v:%v t:%d d:%v u:%d}",
				i, ps.Valid[i], ps.Tags[i], ps.Dirty[i], ps.LastUsed[i],
				ts.Valid[i], ts.Tags[i], ts.Dirty[i], ts.LastUsed[i])
		}
	}
}

// TestTouchAfterRestoreAndFlush verifies the lastIdx hint needs no
// invalidation: Touch stays correct across Flush and Restore because it
// revalidates against the live arrays.
func TestTouchAfterRestoreAndFlush(t *testing.T) {
	cfg := cache.Config{Name: "T", Sets: 4, Ways: 2, BlockBits: 6}
	c := cache.New(cfg)
	c.Access(0x40, false) // prime the hint
	if !c.Touch(0x40, false) {
		t.Fatal("warm hit expected on primed block")
	}
	c.Flush()
	if c.Touch(0x40, false) {
		t.Fatal("Touch hit after Flush; hint must revalidate")
	}
	c.Access(0x80, false)
	other := cache.New(cfg)
	other.Access(0x1000, false)
	if err := c.Restore(other.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if c.Touch(0x80, false) {
		t.Fatal("Touch hit stale block after Restore")
	}
	if !c.Touch(0x1000, false) {
		// The hinted way may not match the restored layout; a miss here
		// is allowed — but the fallback Access must hit.
		if !c.Access(0x1000, false).Hit {
			t.Fatal("restored block not present")
		}
	}
}

// TestTouchZeroAllocs pins the warm-hit fast path to zero heap
// allocations per access (satellite allocation-regression guard).
func TestTouchZeroAllocs(t *testing.T) {
	c := cache.New(cache.Config{Name: "T", Sets: 8, Ways: 2, BlockBits: 6})
	c.Access(0x40, false)
	allocs := testing.AllocsPerRun(1000, func() {
		if !c.Touch(0x40, false) {
			t.Fatal("warm hit expected")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache.Touch warm hit allocates %.1f objects/op; want 0", allocs)
	}
}

// TestTLBTouchMatchesAccess drives a TLB through Touch and a twin
// through Access and compares statistics.
func TestTLBTouchMatchesAccess(t *testing.T) {
	a := cache.NewTLB("T", 16, 4, 12)
	b := cache.NewTLB("T", 16, 4, 12)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100_000; i++ {
		addr := uint64(rng.Intn(1 << 18))
		a.Access(addr)
		b.Touch(addr)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("TLB stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// BenchmarkCacheTouchWarmHit measures the fast path the functional-
// warming sweep rides: repeated hits on the most recently used block.
func BenchmarkCacheTouchWarmHit(b *testing.B) {
	c := cache.New(cache.Config{Name: "T", Sets: 256, Ways: 2, BlockBits: 6})
	c.Access(0x40, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.Touch(0x40, false) {
			b.Fatal("warm hit expected")
		}
	}
}

// BenchmarkCacheAccessHit is the pre-fast-path baseline: a full
// associative-scan Access that also hits.
func BenchmarkCacheAccessHit(b *testing.B) {
	c := cache.New(cache.Config{Name: "T", Sets: 256, Ways: 2, BlockBits: 6})
	c.Access(0x40, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(0x40, false)
	}
}

// BenchmarkTLBTouch measures the TLB warm-hit fast path.
func BenchmarkTLBTouch(b *testing.B) {
	tlb := cache.NewTLB("T", 64, 4, 12)
	tlb.Access(0x1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tlb.Touch(0x1000)
	}
}
