package cache

// TLB is a set-associative translation lookaside buffer. Since the
// simulated machine has no virtual memory proper, the TLB simply caches
// page-granularity address translations: a miss models the page-walk
// latency the paper's Table 3 configurations charge (200 cycles).
type TLB struct {
	inner    *Cache
	pageBits uint
}

// NewTLB builds a TLB with the given number of entries, associativity,
// and page size (log2 bytes).
func NewTLB(name string, entries, ways int, pageBits uint) *TLB {
	sets := entries / ways
	if sets == 0 {
		sets = 1
	}
	return &TLB{
		inner: New(Config{
			Name:      name,
			Sets:      sets,
			Ways:      ways,
			BlockBits: 1, // tags are page numbers; block size is irrelevant
		}),
		pageBits: pageBits,
	}
}

// Access looks up the page containing addr, filling on miss, and reports
// whether it hit.
//
//simlint:hotpath
func (t *TLB) Access(addr uint64) bool {
	return t.inner.Access(addr>>t.pageBits<<1, false).Hit
}

// Touch performs one warm (untimed) lookup of the page containing addr.
// It is state-identical to Access but takes the inlinable last-entry
// fast path when the translation matches the most recently used one —
// the overwhelmingly common case in the functional-warming sweep, where
// consecutive accesses stay on the same page.
//
//simlint:hotpath
func (t *TLB) Touch(addr uint64) {
	key := addr >> t.pageBits << 1
	if !t.inner.Touch(key, false) {
		t.inner.Access(key, false)
	}
}

// Probe reports whether the page is present without updating LRU.
func (t *TLB) Probe(addr uint64) bool {
	return t.inner.Probe(addr >> t.pageBits << 1)
}

// Flush invalidates all translations.
func (t *TLB) Flush() { t.inner.Flush() }

// Stats returns the access statistics.
func (t *TLB) Stats() Stats { return t.inner.Stats }
