package cache_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func smallCache() *cache.Cache {
	return cache.New(cache.Config{Name: "T", Sets: 4, Ways: 2, BlockBits: 6})
}

// TestHitAfterFill checks the basic fill-then-hit sequence.
func TestHitAfterFill(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000, false).Hit {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000, false).Hit {
		t.Error("second access missed")
	}
	if !c.Access(0x1038, false).Hit {
		t.Error("same-block access missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
}

// TestLRUEviction checks true-LRU victim selection.
func TestLRUEviction(t *testing.T) {
	c := smallCache()   // 4 sets x 2 ways, 64B blocks: same set every 4 blocks
	a := uint64(0)      // set 0
	b := uint64(4 * 64) // set 0
	d := uint64(8 * 64) // set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU now
	c.Access(d, false) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a evicted, want b")
	}
	if c.Probe(b) {
		t.Error("b survived, want evicted")
	}
	if !c.Probe(d) {
		t.Error("d not resident")
	}
}

// TestDirtyWriteback checks dirty victims report writebacks with the
// correct victim address.
func TestDirtyWriteback(t *testing.T) {
	c := smallCache()
	c.Access(0, true) // dirty block at 0, set 0
	c.Access(4*64, false)
	res := c.Access(8*64, false) // evicts one of them
	if res.Hit {
		t.Fatal("expected miss")
	}
	if !res.WritebackDirty {
		t.Fatal("expected dirty writeback of block 0")
	}
	if res.VictimAddr != 0 {
		t.Errorf("victim address %#x, want 0", res.VictimAddr)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

// TestProbeDoesNotDisturb checks Probe is side-effect free.
func TestProbeDoesNotDisturb(t *testing.T) {
	c := smallCache()
	c.Access(0, false)
	before := c.Stats
	c.Probe(0)
	c.Probe(1 << 20)
	if c.Stats != before {
		t.Error("Probe changed stats")
	}
}

// TestOccupancyNeverExceedsCapacity is a property test: after any access
// sequence, occupancy is bounded by capacity and stats are consistent.
func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		for _, a := range addrs {
			c.Access(uint64(a)*64, a%3 == 0)
		}
		if c.Occupancy() > 4*2 {
			return false
		}
		return c.Stats.Misses <= c.Stats.Accesses &&
			c.Stats.Writebacks <= c.Stats.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

// TestWorkingSetResidency: a working set no bigger than the cache stays
// resident after one pass (no conflict-free thrash with LRU and
// power-of-two strides within a set).
func TestWorkingSetResidency(t *testing.T) {
	c := cache.New(cache.Config{Name: "T", Sets: 16, Ways: 4, BlockBits: 6})
	// 64 blocks = exactly capacity, sequential: maps 4 per set.
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 64; i++ {
			c.Access(i*64, false)
		}
	}
	if c.Stats.Misses != 64 {
		t.Errorf("misses = %d, want 64 (second pass fully resident)", c.Stats.Misses)
	}
}

// TestFlush invalidates contents but keeps stats.
func TestFlush(t *testing.T) {
	c := smallCache()
	c.Access(0, false)
	c.Flush()
	if c.Probe(0) {
		t.Error("block survived flush")
	}
	if c.Stats.Accesses != 1 {
		t.Error("flush cleared stats")
	}
	if c.Occupancy() != 0 {
		t.Error("occupancy nonzero after flush")
	}
}

// TestConfigValidate exercises configuration error paths.
func TestConfigValidate(t *testing.T) {
	bad := []cache.Config{
		{Name: "a", Sets: 3, Ways: 1, BlockBits: 6},
		{Name: "b", Sets: 4, Ways: 0, BlockBits: 6},
		{Name: "c", Sets: 4, Ways: 1, BlockBits: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	good := cache.Config{Name: "d", Sets: 256, Ways: 2, BlockBits: 6}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
	if good.SizeBytes() != 32*1024 {
		t.Errorf("SizeBytes = %d, want 32768", good.SizeBytes())
	}
}

// TestTLB checks page-granular behaviour.
func TestTLB(t *testing.T) {
	tlb := cache.NewTLB("T", 16, 4, 12)
	if tlb.Access(0x1234) {
		t.Error("cold TLB hit")
	}
	if !tlb.Access(0x1FFF) {
		t.Error("same-page access missed")
	}
	if tlb.Access(0x2000) {
		t.Error("next page hit while cold")
	}
	tlb.Flush()
	if tlb.Probe(0x1234) {
		t.Error("entry survived flush")
	}
	if tlb.Stats().Accesses != 3 {
		t.Errorf("stats %+v", tlb.Stats())
	}
}

// TestHierarchyLatencies checks the timed access path end to end.
func TestHierarchyLatencies(t *testing.T) {
	h := &cache.Hierarchy{
		IL1:  cache.New(cache.Config{Name: "IL1", Sets: 8, Ways: 2, BlockBits: 6}),
		DL1:  cache.New(cache.Config{Name: "DL1", Sets: 8, Ways: 2, BlockBits: 6}),
		L2:   cache.New(cache.Config{Name: "L2", Sets: 64, Ways: 4, BlockBits: 6}),
		ITLB: cache.NewTLB("ITLB", 8, 4, 12),
		DTLB: cache.NewTLB("DTLB", 8, 4, 12),
		Lat:  cache.Latencies{L1: 1, L2: 12, Mem: 100, TLB: 200},
	}
	// Cold data access: TLB miss + full miss to memory.
	lat, lvl := h.DataAccess(0x10000, false)
	if lvl != cache.LevelMem || lat != 100+200 {
		t.Errorf("cold access: lat %d lvl %v, want 300 mem", lat, lvl)
	}
	// Now TLB and caches are warm.
	lat, lvl = h.DataAccess(0x10000, false)
	if lvl != cache.LevelL1 || lat != 1 {
		t.Errorf("warm access: lat %d lvl %v, want 1 L1", lat, lvl)
	}
	// Evict from L1 (8 sets x 2 ways): two more blocks in the same set.
	h.DataAccess(0x10000+8*64, false)
	h.DataAccess(0x10000+16*64, false)
	lat, lvl = h.DataAccess(0x10000, false)
	if lvl != cache.LevelL2 || lat != 12 {
		t.Errorf("L2 hit: lat %d lvl %v, want 12 L2", lat, lvl)
	}
}

// TestWarmEqualsTimedStateTransitions checks that warming and timed
// accesses leave identical cache state for the same in-order stream —
// the property functional warming relies on.
func TestWarmEqualsTimedStateTransitions(t *testing.T) {
	mk := func() *cache.Hierarchy {
		return &cache.Hierarchy{
			IL1:  cache.New(cache.Config{Name: "IL1", Sets: 8, Ways: 2, BlockBits: 6}),
			DL1:  cache.New(cache.Config{Name: "DL1", Sets: 8, Ways: 2, BlockBits: 6}),
			L2:   cache.New(cache.Config{Name: "L2", Sets: 64, Ways: 4, BlockBits: 6}),
			ITLB: cache.NewTLB("ITLB", 8, 4, 12),
			DTLB: cache.NewTLB("DTLB", 8, 4, 12),
			Lat:  cache.Latencies{L1: 1, L2: 12, Mem: 100, TLB: 200},
		}
	}
	timed, warmed := mk(), mk()
	rng := rand.New(rand.NewSource(5))
	addrs := make([]uint64, 5000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 16))
	}
	for _, a := range addrs {
		w := a%5 == 0
		timed.DataAccess(a, w)
		warmed.WarmData(a, w)
	}
	// Same final residency for a sample of addresses.
	for _, a := range addrs[:500] {
		if timed.DL1.Probe(a) != warmed.DL1.Probe(a) {
			t.Fatalf("DL1 state diverged at %#x", a)
		}
		if timed.L2.Probe(a) != warmed.L2.Probe(a) {
			t.Fatalf("L2 state diverged at %#x", a)
		}
	}
}
