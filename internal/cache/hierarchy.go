package cache

// Latencies are the fixed access latencies of the hierarchy levels, in
// cycles (paper Table 3).
type Latencies struct {
	L1  int // L1 hit
	L2  int // L2 hit (total, on L1 miss)
	Mem int // main memory (total, on L2 miss)
	TLB int // TLB miss penalty (page walk)
}

// Hierarchy bundles the caches and TLBs of one machine and implements
// both the timed accesses used by the detailed core and the untimed
// warming used by functional warming.
type Hierarchy struct {
	IL1, DL1, L2 *Cache
	ITLB, DTLB   *TLB
	Lat          Latencies

	// Event counters used by the energy model; these count *accesses
	// issued to each level*, which differs from per-cache Stats only in
	// intent (they are reset per measurement by snapshotting).
	L2Accesses  uint64
	MemAccesses uint64
}

// Level identifies the hierarchy level that satisfied an access.
type Level int

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "mem"
	}
	return "unknown"
}

// FetchAccess performs a timed instruction fetch of the block containing
// byte address addr and returns the access latency in cycles and the
// level that supplied the block.
//
//simlint:hotpath
func (h *Hierarchy) FetchAccess(addr uint64) (int, Level) {
	lat := h.Lat.L1
	if !h.ITLB.Access(addr) {
		lat += h.Lat.TLB
	}
	if h.IL1.Access(addr, false).Hit {
		return lat, LevelL1
	}
	h.L2Accesses++
	if h.L2.Access(addr, false).Hit {
		return lat - h.Lat.L1 + h.Lat.L2, LevelL2
	}
	h.MemAccesses++
	return lat - h.Lat.L1 + h.Lat.Mem, LevelMem
}

// DataAccess performs a timed data access (write=true for stores
// draining from the store buffer) and returns the latency in cycles and
// the supplying level.
//
//simlint:hotpath
func (h *Hierarchy) DataAccess(addr uint64, write bool) (int, Level) {
	lat := h.Lat.L1
	if !h.DTLB.Access(addr) {
		lat += h.Lat.TLB
	}
	res := h.DL1.Access(addr, write)
	if res.Hit {
		return lat, LevelL1
	}
	h.L2Accesses++
	// A dirty L1 victim writes back into L2; its timing is folded into
	// the miss latency (write-back buffers hide it), but the state
	// update matters for L2 contents and replacement.
	if res.WritebackDirty {
		h.L2.Access(res.VictimAddr, true)
	}
	l2res := h.L2.Access(addr, false)
	if l2res.Hit {
		return lat - h.Lat.L1 + h.Lat.L2, LevelL2
	}
	h.MemAccesses++
	return lat - h.Lat.L1 + h.Lat.Mem, LevelMem
}

// WarmFetch updates I-side state for one fetched instruction address
// without computing timing. Used by functional warming. The Touch calls
// are hint-validated fast paths that are state-identical to the full
// Access they shortcut (see Cache.Touch).
//
//simlint:hotpath
func (h *Hierarchy) WarmFetch(addr uint64) {
	h.ITLB.Touch(addr)
	if h.IL1.Touch(addr, false) {
		return
	}
	if !h.IL1.Access(addr, false).Hit {
		h.L2.Access(addr, false)
	}
}

// WarmData updates D-side state for one executed load or store without
// computing timing. Used by functional warming. The state transitions
// (fills, LRU updates, dirty-victim writebacks into L2) are identical to
// the detailed model's; only their *ordering* differs, because warming
// replays the in-order instruction stream while the detailed core issues
// loads out of order and drains stores after commit. That ordering gap is
// the residual bias Table 5 of the paper measures.
//
//simlint:hotpath
func (h *Hierarchy) WarmData(addr uint64, write bool) {
	h.DTLB.Touch(addr)
	if h.DL1.Touch(addr, write) {
		return
	}
	res := h.DL1.Access(addr, write)
	if res.Hit {
		return
	}
	if res.WritebackDirty {
		h.L2.Access(res.VictimAddr, true)
	}
	h.L2.Access(addr, false)
}

// FlushAll invalidates every cache and TLB (cold state).
func (h *Hierarchy) FlushAll() {
	h.IL1.Flush()
	h.DL1.Flush()
	h.L2.Flush()
	h.ITLB.Flush()
	h.DTLB.Flush()
}
