package cache_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cache"
)

// TestDeltaMatchesSnapshot is the delta-snapshot correctness property:
// under randomized warm traffic (Touch fast paths, full Accesses,
// occasional Flushes), a chain of Delta applications over the previous
// full snapshot reproduces the exact bytes of a fresh full Snapshot at
// every step. Under-marking a dirty block would fail this immediately;
// the test also exercises the truncated last block of a
// non-multiple-of-grain geometry (the 5-entry config).
func TestDeltaMatchesSnapshot(t *testing.T) {
	for _, cfg := range []cache.Config{
		{Name: "D", Sets: 64, Ways: 2, BlockBits: 6},
		{Name: "W", Sets: 1, Ways: 5, BlockBits: 1}, // 5 entries: truncated dirty block
	} {
		t.Run(cfg.Name, func(t *testing.T) {
			c := cache.New(cfg)
			rng := rand.New(rand.NewSource(11))
			// Establish the baseline: the keyframe snapshot resets dirty
			// tracking and starts the chain.
			tracked := c.Snapshot()
			for round := 0; round < 60; round++ {
				n := rng.Intn(500)
				for i := 0; i < n; i++ {
					addr := uint64(rng.Intn(1 << 13))
					write := rng.Intn(3) == 0
					if rng.Intn(2) == 0 {
						if !c.Touch(addr, write) {
							c.Access(addr, write)
						}
					} else {
						c.Access(addr, write)
					}
				}
				if round == 30 {
					c.Flush() // must mark everything
				}
				d, err := c.Delta(c.Seq())
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if err := tracked.Apply(d); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if full := c.Snapshot(); !reflect.DeepEqual(tracked, full) {
					t.Fatalf("round %d: delta-tracked state diverged from full snapshot", round)
				}
			}
		})
	}
}

// TestDeltaSequencing pins the chain discipline of the delta contract:
// deltas before any snapshot or against stale baselines must fail.
func TestDeltaSequencing(t *testing.T) {
	c := cache.New(cache.Config{Name: "S", Sets: 8, Ways: 2, BlockBits: 6})
	if _, err := c.Delta(0); err == nil {
		t.Fatal("delta before first snapshot must fail")
	}
	c.Snapshot()
	seq := c.Seq()
	if _, err := c.Delta(seq + 7); err == nil {
		t.Fatal("future baseline must fail")
	}
	if _, err := c.Delta(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delta(seq); err == nil {
		t.Fatal("stale baseline must fail")
	}
}

// TestTLBDeltaMatchesSnapshot runs the same property through the TLB
// wrapper (page-granularity keys, Touch fast path).
func TestTLBDeltaMatchesSnapshot(t *testing.T) {
	tlb := cache.NewTLB("T", 16, 4, 12)
	rng := rand.New(rand.NewSource(5))
	tracked := tlb.Snapshot()
	for round := 0; round < 40; round++ {
		for i := 0; i < rng.Intn(800); i++ {
			tlb.Touch(uint64(rng.Intn(1 << 20)))
		}
		d, err := tlb.Delta(tlb.Seq())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := tracked.Apply(d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if full := tlb.Snapshot(); !reflect.DeepEqual(tracked, full) {
			t.Fatalf("round %d: TLB delta-tracked state diverged", round)
		}
	}
}

// TestDeltaApplyRejectsCorrupt verifies Apply validates geometry and
// segment consistency instead of panicking or silently misapplying —
// the guard that turns corrupt store chains into load misses.
func TestDeltaApplyRejectsCorrupt(t *testing.T) {
	c := cache.New(cache.Config{Name: "V", Sets: 8, Ways: 2, BlockBits: 6})
	c.Access(0x40, true)
	s := c.Snapshot()
	base := func() *cache.Delta {
		cc := cache.New(cache.Config{Name: "V", Sets: 8, Ways: 2, BlockBits: 6})
		cc.Access(0x40, true)
		cc.Snapshot()
		cc.Access(0x80, true)
		d, err := cc.Delta(cc.Seq())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	for name, corrupt := range map[string]func(*cache.Delta){
		"geometry":       func(d *cache.Delta) { d.N = 1 << 20 },
		"grain":          func(d *cache.Delta) { d.Grain = 40 },
		"out-of-range":   func(d *cache.Delta) { d.Blocks[0] = 1 << 30 },
		"not-ascending":  func(d *cache.Delta) { d.Blocks = append(d.Blocks, d.Blocks[len(d.Blocks)-1]) },
		"short-segment":  func(d *cache.Delta) { d.Tags = d.Tags[:0] },
		"short-lastused": func(d *cache.Delta) { d.LastUsed = d.LastUsed[:1] },
	} {
		d := base()
		corrupt(d)
		if err := s.Clone().Apply(d); err == nil {
			t.Errorf("%s: corrupt delta applied without error", name)
		}
	}
}

// TestDirtyTrackingZeroAllocs pins the marking added to the warm fast
// paths: Touch and a hitting Access must still not allocate.
func TestDirtyTrackingZeroAllocs(t *testing.T) {
	c := cache.New(cache.Config{Name: "A", Sets: 8, Ways: 2, BlockBits: 6})
	c.Access(0x40, false)
	if allocs := testing.AllocsPerRun(1000, func() {
		if !c.Touch(0x40, true) {
			t.Fatal("warm hit expected")
		}
	}); allocs != 0 {
		t.Fatalf("Touch with dirty tracking allocates %.1f objects/op; want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Access(0x80, true)
	}); allocs != 0 {
		t.Fatalf("Access with dirty tracking allocates %.1f objects/op; want 0", allocs)
	}
}
