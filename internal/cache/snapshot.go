package cache

import "fmt"

// State is a serializable snapshot of one cache's content-bearing state:
// the tag arrays, valid/dirty bits, and LRU stamps. Statistics are
// deliberately excluded — a restored cache starts its own counts — so a
// snapshot captures exactly what functional warming accumulates and a
// sampling unit's detailed simulation observes.
type State struct {
	Tags     []uint64
	Valid    []bool
	Dirty    []bool
	LastUsed []uint64
	Stamp    uint64
}

// Snapshot captures the cache's current contents. It is the keyframe
// of the cache's delta chain: dirty tracking restarts here, so the next
// Delta carries exactly the blocks touched from this point on.
func (c *Cache) Snapshot() *State {
	s := &State{
		Tags:     make([]uint64, len(c.tags)),
		Valid:    make([]bool, len(c.valid)),
		Dirty:    make([]bool, len(c.dirty)),
		LastUsed: make([]uint64, len(c.lastUsed)),
		Stamp:    c.stamp,
	}
	copy(s.Tags, c.tags)
	copy(s.Valid, c.valid)
	copy(s.Dirty, c.dirty)
	copy(s.LastUsed, c.lastUsed)
	c.snapDirty.Reset()
	c.chain.Keyframe()
	return s
}

// Restore overwrites the cache's contents with a snapshot taken from a
// cache of identical geometry. Stats are left untouched.
func (c *Cache) Restore(s *State) error {
	if len(s.Tags) != len(c.tags) {
		return fmt.Errorf("cache %s: snapshot geometry %d blocks, cache has %d",
			c.cfg.Name, len(s.Tags), len(c.tags))
	}
	copy(c.tags, s.Tags)
	copy(c.valid, s.Valid)
	copy(c.dirty, s.Dirty)
	copy(c.lastUsed, s.LastUsed)
	c.stamp = s.Stamp
	c.snapDirty.MarkAll() // every entry may differ from the last delta baseline
	return nil
}

// Snapshot captures the TLB's translations.
func (t *TLB) Snapshot() *State { return t.inner.Snapshot() }

// Restore overwrites the TLB's translations from a snapshot.
func (t *TLB) Restore(s *State) error { return t.inner.Restore(s) }

// HierarchyState bundles the snapshots of every structure in a
// Hierarchy — the cache and TLB tag arrays a SMARTS checkpoint carries.
type HierarchyState struct {
	IL1, DL1, L2 *State
	ITLB, DTLB   *State
}

// Snapshot captures all caches and TLBs of the hierarchy.
func (h *Hierarchy) Snapshot() *HierarchyState {
	return &HierarchyState{
		IL1:  h.IL1.Snapshot(),
		DL1:  h.DL1.Snapshot(),
		L2:   h.L2.Snapshot(),
		ITLB: h.ITLB.Snapshot(),
		DTLB: h.DTLB.Snapshot(),
	}
}

// Restore overwrites all caches and TLBs from a snapshot taken on a
// hierarchy of identical geometry.
func (h *Hierarchy) Restore(s *HierarchyState) error {
	if err := h.IL1.Restore(s.IL1); err != nil {
		return err
	}
	if err := h.DL1.Restore(s.DL1); err != nil {
		return err
	}
	if err := h.L2.Restore(s.L2); err != nil {
		return err
	}
	if err := h.ITLB.Restore(s.ITLB); err != nil {
		return err
	}
	return h.DTLB.Restore(s.DTLB)
}
