// Package delta defines the snapshot/delta-chain contract shared by
// every incrementally checkpointable structure in the simulator — the
// warmed caches and TLBs (internal/cache), the branch predictor
// (internal/bpred), their ensemble (uarch.Warmer), and the sparse
// memory (mem.Memory) — plus the two mechanisms they all build on: a
// sequence-checked chain position (Chain) and a fixed-granularity dirty
// bitmap (Bitmap).
//
// # The contract
//
// A Source evolves over time and can be captured incrementally:
//
//   - Snapshot returns a keyframe: a full, immutable copy of the
//     current state. Taking it resets the source's dirty tracking and
//     starts a new chain link, so the keyframe is the baseline the next
//     Delta is measured against.
//   - Delta(since) returns only the state dirtied since the chain link
//     numbered since, which must be the source's latest link (Seq) —
//     deltas chain strictly; skipping a link would silently drop
//     changes, so that is an error, enforced by Chain.
//   - Seq reports the source's current chain link, assigned in capture
//     order across Snapshot and Delta calls.
//
// A State is the materialization side: applying a delta to (a copy of)
// the snapshot the delta was taken against reproduces the next full
// snapshot exactly. Chains therefore reconstruct any captured point as
// keyframe + the deltas up to it, bit-identically — the property the
// checkpoint layer's bit-identical-schedules guarantee rests on, and
// which each implementation pins with randomized property tests.
//
// Dirty tracking may over-approximate freely (restoring a snapshot
// marks everything dirty) but must never under-approximate: every
// mutation between two snapshot points must be covered by the next
// delta.
package delta

import (
	"fmt"
	"math/bits"
)

// Source is the capture side of the contract; S is the full-snapshot
// type and D the delta type. Implementations: cache.Cache, cache.TLB,
// cache.Hierarchy, bpred.Unit, uarch.Warmer, mem.Memory.
type Source[S any, D any] interface {
	// Snapshot captures a keyframe, resets dirty tracking, and advances
	// the chain.
	Snapshot() S
	// Delta captures the changes since chain link since (which must be
	// the latest) and advances the chain.
	Delta(since uint64) (D, error)
	// Seq returns the current chain link number (0 before the first
	// snapshot).
	Seq() uint64
}

// State is the materialization side of the contract: a full snapshot
// that can be advanced by applying deltas. The receiver must be (a copy
// of) the snapshot the delta was taken against; implementations
// validate the delta's geometry and reject inconsistencies, so corrupt
// deserialized deltas fail loudly instead of corrupting state.
// Implementations: cache.State, cache.HierarchyState, bpred.State,
// checkpoint.WarmState, mem.Image.
type State[D any] interface {
	Apply(D) error
}

// Chain tracks a source's position in its delta chain and enforces the
// strict-chaining rule. The zero value is ready to use: no snapshot has
// been taken, so deltas are rejected until the first Keyframe.
type Chain struct {
	seq uint64
}

// Keyframe starts a new chain link for a full snapshot and returns its
// sequence number.
func (c *Chain) Keyframe() uint64 {
	c.seq++
	return c.seq
}

// Next validates that since is the latest link and advances the chain
// for a delta, returning the delta's sequence number.
func (c *Chain) Next(since uint64) (uint64, error) {
	if c.seq == 0 || since != c.seq {
		return 0, fmt.Errorf("delta: chaining against snapshot %d, latest is %d", since, c.seq)
	}
	c.seq++
	return c.seq, nil
}

// Seq returns the latest link number (0 before the first keyframe).
func (c *Chain) Seq() uint64 { return c.seq }

// Invalidate resets the chain to its pre-snapshot state: subsequent
// Next calls fail until a new Keyframe establishes a baseline. Sources
// whose state is replaced wholesale (mem.Memory.Reset) use it so a
// stale delta can never be taken across the discontinuity.
func (c *Chain) Invalidate() { c.seq = 0 }

// Bitmap is a fixed-granularity dirty bitmap over n entries: one bit
// per 1<<grainShift consecutive entries ("block"). Marking is two
// shifts and an OR — cheap enough to live inside the warm-update and
// memory-write fast paths, which must stay at zero allocations per
// instruction. The zero value is unusable; construct with NewBitmap.
type Bitmap struct {
	words []uint64
	// grainShift is log2 entries per block; wordShift converts an entry
	// index straight to its bitmap word index (64 blocks per word).
	grainShift uint8
	wordShift  uint8
	blocks     int // number of blocks covering n (excludes padding bits)
}

// NewBitmap allocates an all-dirty bitmap covering n entries at the
// given block granularity (log2 entries per bit). Starting all-dirty
// makes the first delta taken without a prior keyframe conservatively
// carry everything.
func NewBitmap(n int, grainShift uint8) Bitmap {
	blocks := (n + (1 << grainShift) - 1) >> grainShift
	b := Bitmap{
		words:      make([]uint64, (blocks+63)/64),
		grainShift: grainShift,
		wordShift:  grainShift + 6,
		blocks:     blocks,
	}
	b.MarkAll()
	return b
}

// Grain returns the bitmap's log2 entries per block.
func (b *Bitmap) Grain() uint8 { return b.grainShift }

// Mark records that entry i may have changed since the last snapshot
// point. It is the fast-path operation: small enough to inline into the
// callers' update loops.
//
//simlint:hotpath
func (b *Bitmap) Mark(i int) {
	b.words[uint(i)>>b.wordShift] |= 1 << ((uint(i) >> b.grainShift) & 63)
}

// MarkAll forces the next delta to carry every block.
func (b *Bitmap) MarkAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
}

// Reset clears the dirty tracking, establishing the current contents as
// the baseline the next delta is measured against.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// AppendBlocks appends the dirty block indices to dst in ascending
// order and clears the tracking; padding bits beyond the covered range
// are skipped. It is the drain operation delta capture is built on.
func (b *Bitmap) AppendBlocks(dst []uint32) []uint32 {
	for w, word := range b.words {
		for word != 0 {
			blk := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			if blk >= b.blocks {
				continue
			}
			dst = append(dst, uint32(blk))
		}
		b.words[w] = 0
	}
	return dst
}

// Span returns the entry range [lo, hi) covered by block b at the given
// granularity in arrays of n entries (the last block may be short).
func Span(b uint32, grainShift uint8, n int) (lo, hi int) {
	lo = int(b) << grainShift
	hi = lo + 1<<grainShift
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ValidateBlocks checks one ascending dirty-block list against n
// entries at the given granularity and returns the total entry count
// the blocks cover. Deserialized deltas are validated through it before
// use, so a corrupt block list can never index out of range.
func ValidateBlocks(blocks []uint32, grainShift uint8, n int, what string) (int, error) {
	if grainShift > 30 {
		return 0, fmt.Errorf("delta: %s grain shift %d out of range", what, grainShift)
	}
	total, prev := 0, -1
	for _, b := range blocks {
		if int(b) <= prev {
			return 0, fmt.Errorf("delta: %s blocks not ascending at %d", what, b)
		}
		prev = int(b)
		lo, hi := Span(b, grainShift, n)
		if lo >= n {
			return 0, fmt.Errorf("delta: %s block %d out of range (%d entries)", what, b, n)
		}
		total += hi - lo
	}
	return total, nil
}
