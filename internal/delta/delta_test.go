package delta

import (
	"math/rand"
	"testing"
)

func TestChainSequencing(t *testing.T) {
	var c Chain
	if c.Seq() != 0 {
		t.Fatalf("fresh chain at seq %d", c.Seq())
	}
	if _, err := c.Next(0); err == nil {
		t.Fatal("delta before any keyframe must fail")
	}
	if got := c.Keyframe(); got != 1 {
		t.Fatalf("first keyframe numbered %d", got)
	}
	seq, err := c.Next(1)
	if err != nil || seq != 2 {
		t.Fatalf("Next(1) = %d, %v", seq, err)
	}
	if _, err := c.Next(1); err == nil {
		t.Fatal("stale baseline must fail")
	}
	if _, err := c.Next(3); err == nil {
		t.Fatal("future baseline must fail")
	}
	if got := c.Keyframe(); got != 3 {
		t.Fatalf("keyframe after delta numbered %d", got)
	}
	c.Invalidate()
	if _, err := c.Next(3); err == nil {
		t.Fatal("delta across Invalidate must fail")
	}
	if got := c.Keyframe(); got != 1 {
		t.Fatalf("keyframe after Invalidate numbered %d", got)
	}
}

// TestBitmapCoversMarks is the bitmap's soundness property: every
// marked entry's block is drained, in ascending order, exactly once.
func TestBitmapCoversMarks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n     int
		grain uint8
	}{
		{1, 0}, {7, 1}, {64, 3}, {100, 3}, {4096, 5}, {16384, 3}, {777, 6},
	} {
		bm := NewBitmap(tc.n, tc.grain)
		// A fresh bitmap drains every block (all-dirty start).
		all := bm.AppendBlocks(nil)
		wantBlocks := (tc.n + (1 << tc.grain) - 1) >> tc.grain
		if len(all) != wantBlocks {
			t.Fatalf("n=%d grain=%d: fresh bitmap drains %d blocks, want %d", tc.n, tc.grain, len(all), wantBlocks)
		}
		// After the drain it is clean.
		if left := bm.AppendBlocks(nil); len(left) != 0 {
			t.Fatalf("n=%d grain=%d: %d blocks left after drain", tc.n, tc.grain, len(left))
		}
		// Random marks: the drained blocks must be exactly the marked
		// entries' blocks, ascending.
		marked := map[uint32]bool{}
		for i := 0; i < 50; i++ {
			e := rng.Intn(tc.n)
			bm.Mark(e)
			marked[uint32(e>>tc.grain)] = true
		}
		got := bm.AppendBlocks(nil)
		if len(got) != len(marked) {
			t.Fatalf("n=%d grain=%d: drained %d blocks, marked %d", tc.n, tc.grain, len(got), len(marked))
		}
		prev := -1
		for _, b := range got {
			if !marked[b] {
				t.Fatalf("n=%d grain=%d: drained unmarked block %d", tc.n, tc.grain, b)
			}
			if int(b) <= prev {
				t.Fatalf("n=%d grain=%d: blocks not ascending", tc.n, tc.grain)
			}
			prev = int(b)
		}
	}
}

func TestValidateBlocks(t *testing.T) {
	// Valid ascending list covering a short tail block.
	total, err := ValidateBlocks([]uint32{0, 2, 3}, 3, 26, "test")
	if err != nil {
		t.Fatal(err)
	}
	if total != 8+8+2 {
		t.Fatalf("covered %d entries, want 18", total)
	}
	if _, err := ValidateBlocks([]uint32{2, 1}, 3, 26, "test"); err == nil {
		t.Fatal("descending blocks accepted")
	}
	if _, err := ValidateBlocks([]uint32{1, 1}, 3, 26, "test"); err == nil {
		t.Fatal("duplicate blocks accepted")
	}
	if _, err := ValidateBlocks([]uint32{4}, 3, 26, "test"); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if _, err := ValidateBlocks(nil, 40, 26, "test"); err == nil {
		t.Fatal("absurd grain accepted")
	}
}

// TestMarkZeroAlloc pins Mark to zero allocations — it lives inside
// the warm fast paths.
func TestMarkZeroAlloc(t *testing.T) {
	bm := NewBitmap(4096, 3)
	if allocs := testing.AllocsPerRun(1000, func() { bm.Mark(123) }); allocs != 0 {
		t.Fatalf("Mark allocates %.1f objects/op", allocs)
	}
}
