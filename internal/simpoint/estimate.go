package simpoint

import (
	"fmt"
	"sort"

	"repro/internal/functional"
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/uarch"
)

// Point is one selected simulation point.
type Point struct {
	// Interval is the interval index in the profile.
	Interval int
	// Weight is the fraction of the stream this point represents.
	Weight float64
}

// Selection is the set of simulation points for a benchmark.
type Selection struct {
	IntervalLen uint64
	Points      []Point
	K           int
}

// Select picks, for each cluster, the interval nearest its centroid, and
// weights it by the cluster's share of the stream.
func Select(prof *Profile, cl *Clustering) Selection {
	n := len(prof.Vectors)
	best := make([]int, cl.K)
	bestD := make([]float64, cl.K)
	for c := range best {
		best[c] = -1
	}
	for i, v := range prof.Vectors {
		c := cl.Assign[i]
		d := sqDist(v, cl.Centroids[c])
		if best[c] < 0 || d < bestD[c] {
			best[c], bestD[c] = i, d
		}
	}
	sel := Selection{IntervalLen: prof.IntervalLen, K: cl.K}
	for c := 0; c < cl.K; c++ {
		if best[c] < 0 {
			continue
		}
		sel.Points = append(sel.Points, Point{
			Interval: best[c],
			Weight:   float64(cl.Sizes[c]) / float64(n),
		})
	}
	sort.Slice(sel.Points, func(i, j int) bool {
		return sel.Points[i].Interval < sel.Points[j].Interval
	})
	return sel
}

// Result is a SimPoint CPI estimate.
type Result struct {
	// CPI is the weighted estimate.
	CPI float64
	// EPI is the weighted energy-per-instruction estimate.
	EPI float64
	// SimulatedInsts counts detailed-simulated instructions.
	SimulatedInsts uint64
	// FastFwdInsts counts functionally simulated instructions.
	FastFwdInsts uint64
	// PerPoint records the per-point CPIs in interval order.
	PerPoint []float64
}

// Estimate runs the detailed simulations of the selected points and
// returns the weighted CPI/EPI. Following the original methodology, each
// point is reached by pure functional fast-forwarding and simulated with
// cold microarchitectural state (no warming) — large intervals amortize
// the cold-start transient, which is SimPoint's stated justification for
// not needing warming.
func Estimate(p *program.Program, cfg uarch.Config, sel Selection) (*Result, error) {
	return estimate(p, cfg, sel, false)
}

// EstimateWarmed is Estimate with SMARTS-style functional warming during
// fast-forwarding. It is not part of the published SimPoint methodology;
// it isolates SimPoint's *representativeness* error (cluster instances
// differing in behaviour, the failure mode the SMARTS paper's Figure 8
// discussion attributes gcc-2's -14.3% to) from the cold-start error
// that dominates at reduced interval sizes.
func EstimateWarmed(p *program.Program, cfg uarch.Config, sel Selection) (*Result, error) {
	return estimate(p, cfg, sel, true)
}

func estimate(p *program.Program, cfg uarch.Config, sel Selection, warm bool) (*Result, error) {
	if len(sel.Points) == 0 {
		return nil, fmt.Errorf("simpoint: empty selection")
	}
	cpu := functional.New(p)
	machine := uarch.NewMachine(cfg)
	core := uarch.NewCore(machine)
	src := &uarch.Source{CPU: cpu}
	warmer := smarts.NewWarmer(machine, cfg)
	res := &Result{}

	var weightTotal float64
	for _, pt := range sel.Points {
		start := uint64(pt.Interval) * sel.IntervalLen
		if start < cpu.Count {
			return nil, fmt.Errorf("simpoint: points out of order at interval %d", pt.Interval)
		}
		if ff := start - cpu.Count; ff > 0 {
			var err error
			if warm {
				err = warmer.Forward(cpu, ff)
			} else {
				_, err = cpu.Run(ff)
			}
			if err != nil {
				return nil, fmt.Errorf("simpoint: fast-forward: %w", err)
			}
			res.FastFwdInsts += ff
		}
		if !warm {
			// Cold state for every point: flush and rebuild from nothing.
			machine.FlushWarmState()
		}
		core.ResetPipeline()
		stats, err := core.Run(src, sel.IntervalLen, nil)
		if err != nil {
			return nil, fmt.Errorf("simpoint: detailed interval %d: %w", pt.Interval, err)
		}
		if stats.Insts == 0 {
			break
		}
		res.SimulatedInsts += stats.Insts
		cpi := float64(stats.Cycles) / float64(stats.Insts)
		epi := stats.EnergyNJ / float64(stats.Insts)
		res.CPI += pt.Weight * cpi
		res.EPI += pt.Weight * epi
		res.PerPoint = append(res.PerPoint, cpi)
		weightTotal += pt.Weight
	}
	if weightTotal > 0 {
		res.CPI /= weightTotal
		res.EPI /= weightTotal
	}
	return res, nil
}

// Run executes the complete SimPoint pipeline: profile, cluster, select,
// and estimate. maxK bounds the clustering search (the original tool
// defaults to 10).
func Run(p *program.Program, cfg uarch.Config, intervalLen uint64, maxK int, seed int64) (*Result, Selection, error) {
	prof, err := ProfileProgram(p, intervalLen, 15, seed)
	if err != nil {
		return nil, Selection{}, err
	}
	cl := ChooseK(prof.Vectors, maxK, seed, 0.9)
	sel := Select(prof, cl)
	res, err := Estimate(p, cfg, sel)
	return res, sel, err
}
