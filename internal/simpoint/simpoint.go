// Package simpoint reimplements the SimPoint methodology (Sherwood,
// Perelman, Hamerly, Calder — ASPLOS 2002), the offline-profiling
// baseline the SMARTS paper compares against in its Figure 8.
//
// Pipeline: the benchmark is divided into fixed-length intervals; a
// functional profiling pass collects a basic-block vector (BBV) per
// interval — how many instructions each static basic block contributed;
// vectors are randomly projected to low dimension and clustered with
// k-means, with the number of clusters chosen by a BIC score; the
// interval nearest each cluster centroid becomes a simulation point,
// weighted by its cluster's share of the stream. The CPI estimate is the
// weighted mean of detailed simulations of the chosen intervals, each
// started cold after pure functional fast-forwarding (no warming), which
// is the configuration whose failure modes Figure 8 exhibits.
package simpoint

import (
	"fmt"
	"math/rand"

	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/program"
)

// Profile holds the projected BBVs of one benchmark.
type Profile struct {
	// IntervalLen is the profiling granularity in instructions.
	IntervalLen uint64
	// Dim is the projected dimensionality.
	Dim int
	// Vectors[i] is the projected, L1-normalized BBV of interval i.
	Vectors [][]float64
	// StaticBlocks is the number of distinct basic blocks seen.
	StaticBlocks int
}

// ProfileProgram runs the functional profiling pass over the whole
// program. Projection rows are derived per block from (seed, blockPC) so
// the projection is deterministic without materializing the full
// block-count matrix.
func ProfileProgram(p *program.Program, intervalLen uint64, dim int, seed int64) (*Profile, error) {
	if intervalLen == 0 || dim <= 0 {
		return nil, fmt.Errorf("simpoint: bad profile parameters")
	}
	cpu := functional.New(p)
	prof := &Profile{IntervalLen: intervalLen, Dim: dim}

	rows := make(map[uint64][]float64) // blockPC -> projection row
	row := func(block uint64) []float64 {
		if r, ok := rows[block]; ok {
			return r
		}
		rng := rand.New(rand.NewSource(seed ^ int64(block*0x9E3779B97F4A7C15)))
		r := make([]float64, dim)
		for i := range r {
			r[i] = rng.Float64()*2 - 1
		}
		rows[block] = r
		return r
	}

	var d functional.DynInst
	vec := make([]float64, dim)
	curBlock := p.Entry
	blockInsts := uint64(0)
	intervalInsts := uint64(0)

	flushBlock := func() {
		if blockInsts == 0 {
			return
		}
		r := row(curBlock)
		w := float64(blockInsts)
		for i := range vec {
			vec[i] += w * r[i]
		}
		blockInsts = 0
	}
	flushInterval := func() {
		flushBlock()
		out := make([]float64, dim)
		// L1-style normalization by interval length keeps intervals
		// comparable even when the last one is short.
		n := float64(intervalInsts)
		for i := range out {
			out[i] = vec[i] / n
			vec[i] = 0
		}
		prof.Vectors = append(prof.Vectors, out)
		intervalInsts = 0
	}

	for {
		if err := cpu.Step(&d); err != nil {
			if err == functional.ErrHalted {
				break
			}
			return nil, err
		}
		blockInsts++
		intervalInsts++
		if d.Inst.Op.IsControl() || d.Inst.Op == isa.OpHalt {
			flushBlock()
			curBlock = d.NextPC
		}
		if intervalInsts == intervalLen {
			flushInterval()
		}
		if cpu.Halted {
			break
		}
	}
	// Drop the ragged tail interval to match SimPoint practice (whole
	// intervals only); keep it when it is the only interval.
	if intervalInsts > 0 && len(prof.Vectors) == 0 {
		flushInterval()
	}
	prof.StaticBlocks = len(rows)
	if len(prof.Vectors) == 0 {
		return nil, fmt.Errorf("simpoint: program shorter than one interval")
	}
	return prof, nil
}
