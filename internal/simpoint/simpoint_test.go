package simpoint_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/program"
	"repro/internal/simpoint"
	"repro/internal/smarts"
	"repro/internal/uarch"
)

// TestKMeansBasic clusters three well-separated blobs.
func TestKMeansBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var vecs [][]float64
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 5}}
	for i := 0; i < 300; i++ {
		c := centers[i%3]
		vecs = append(vecs, []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5})
	}
	cl := simpoint.KMeans(vecs, 3, 1, 100)
	if cl.K != 3 {
		t.Fatalf("K = %d", cl.K)
	}
	for c := 0; c < 3; c++ {
		if cl.Sizes[c] != 100 {
			t.Errorf("cluster %d size %d, want 100", c, cl.Sizes[c])
		}
	}
	// All members of one blob must share a cluster.
	for i := 3; i < len(vecs); i++ {
		if cl.Assign[i] != cl.Assign[i%3] {
			t.Errorf("vector %d assigned %d, blob root assigned %d", i, cl.Assign[i], cl.Assign[i%3])
		}
	}
}

// TestChooseKPicksSeparatedBlobs checks BIC model selection finds the
// true cluster count for clearly separated data.
func TestChooseKPicksSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var vecs [][]float64
	centers := [][]float64{{0, 0}, {50, 0}, {0, 50}, {50, 50}}
	for i := 0; i < 400; i++ {
		c := centers[i%4]
		vecs = append(vecs, []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()})
	}
	cl := simpoint.ChooseK(vecs, 8, 3, 0.9)
	if cl.K < 4 {
		t.Errorf("ChooseK found K=%d, want >= 4", cl.K)
	}
}

// TestKMeansDeterministic checks reproducibility.
func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var vecs [][]float64
	for i := 0; i < 100; i++ {
		vecs = append(vecs, []float64{rng.Float64(), rng.Float64()})
	}
	a := simpoint.KMeans(vecs, 5, 9, 50)
	b := simpoint.KMeans(vecs, 5, 9, 50)
	if a.SSE != b.SSE {
		t.Errorf("SSE differs across identical runs: %v vs %v", a.SSE, b.SSE)
	}
}

// TestProfileProgram checks BBV profiling covers the stream.
func TestProfileProgram(t *testing.T) {
	spec, err := program.ByName("gccx")
	if err != nil {
		t.Fatal(err)
	}
	p := program.MustGenerate(spec, 400_000)
	prof, err := simpoint.ProfileProgram(p, 20_000, 15, 42)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	want := int(p.Length / 20_000)
	if len(prof.Vectors) != want {
		t.Errorf("%d intervals, want %d", len(prof.Vectors), want)
	}
	if prof.StaticBlocks < 10 {
		t.Errorf("only %d static blocks discovered", prof.StaticBlocks)
	}
	for i, v := range prof.Vectors {
		if len(v) != 15 {
			t.Fatalf("interval %d has dim %d", i, len(v))
		}
	}
}

// TestSimPointEndToEnd runs the full pipeline and checks the estimate is
// in a plausible range; it also demonstrates the Figure 8 relationship:
// on a phased benchmark SimPoint's error is typically larger than
// SMARTS's.
func TestSimPointEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed runs are slow")
	}
	cfg := uarch.Config8Way()
	spec, err := program.ByName("gccx")
	if err != nil {
		t.Fatal(err)
	}
	p := program.MustGenerate(spec, 600_000)
	ref, err := smarts.FullRun(p, cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	truth := ref.TrueCPI()

	res, sel, err := simpoint.Run(p, cfg, 30_000, 10, 42)
	if err != nil {
		t.Fatalf("simpoint.Run: %v", err)
	}
	if len(sel.Points) == 0 {
		t.Fatal("no simulation points selected")
	}
	spErr := math.Abs(res.CPI-truth) / truth
	t.Logf("gccx: truth %.4f, SimPoint %.4f (err %.1f%%, K=%d)", truth, res.CPI, spErr*100, sel.K)
	if spErr > 0.60 {
		t.Errorf("SimPoint error %.1f%% implausibly large", spErr*100)
	}

	// Weights sum to 1.
	var w float64
	for _, pt := range sel.Points {
		w += pt.Weight
	}
	if math.Abs(w-1) > 1e-9 {
		t.Errorf("weights sum to %v", w)
	}
}

// TestEstimateWarmedBeatsCold checks the warmed-fast-forward variant
// removes the cold-start component of SimPoint error (the property the
// Figure 8 experiment's "warmed" column relies on).
func TestEstimateWarmedBeatsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed runs are slow")
	}
	cfg := uarch.Config8Way()
	spec, err := program.ByName("parserx")
	if err != nil {
		t.Fatal(err)
	}
	p := program.MustGenerate(spec, 500_000)
	ref, err := smarts.FullRun(p, cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	truth := ref.TrueCPI()

	prof, err := simpoint.ProfileProgram(p, 25_000, 15, 42)
	if err != nil {
		t.Fatal(err)
	}
	cl := simpoint.ChooseK(prof.Vectors, 8, 42, 0.9)
	sel := simpoint.Select(prof, cl)

	cold, err := simpoint.Estimate(p, cfg, sel)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := simpoint.EstimateWarmed(p, cfg, sel)
	if err != nil {
		t.Fatal(err)
	}
	coldErr := math.Abs(cold.CPI-truth) / truth
	warmErr := math.Abs(warm.CPI-truth) / truth
	t.Logf("parserx: cold err %.1f%%, warmed err %.1f%%", coldErr*100, warmErr*100)
	if warmErr >= coldErr {
		t.Errorf("warmed SimPoint (%.1f%%) not better than cold (%.1f%%) on a cache-sensitive workload",
			warmErr*100, coldErr*100)
	}
}
