package simpoint

import (
	"math"
	"math/rand"
)

// Clustering is the result of one k-means run.
type Clustering struct {
	K         int
	Assign    []int       // vector index -> cluster
	Centroids [][]float64 // K x dim
	Sizes     []int
	// SSE is the total within-cluster squared error.
	SSE float64
	// BIC is the Bayesian information criterion score (higher is better),
	// computed as in Pelleg & Moore's X-means, which SimPoint uses for
	// model selection.
	BIC float64
}

// KMeans clusters vectors into k groups with Lloyd's algorithm and
// k-means++ style seeding, deterministic under seed.
func KMeans(vectors [][]float64, k int, seed int64, maxIters int) *Clustering {
	n := len(vectors)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	dim := len(vectors[0])
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centroids := make([][]float64, k)
	centroids[0] = append([]float64(nil), vectors[rng.Intn(n)]...)
	dists := make([]float64, n)
	for c := 1; c < k; c++ {
		var total float64
		for i, v := range vectors {
			d := math.Inf(1)
			for _, ct := range centroids[:c] {
				if e := sqDist(v, ct); e < d {
					d = e
				}
			}
			dists[i] = d
			total += d
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i, d := range dists {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		centroids[c] = append([]float64(nil), vectors[pick]...)
	}

	assign := make([]int, n)
	sizes := make([]int, k)
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c, ct := range centroids {
				if d := sqDist(v, ct); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				if assign[i] != best {
					changed = true
				}
				assign[i] = best
			}
		}
		// Recompute centroids.
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
			sizes[c] = 0
		}
		for i, v := range vectors {
			c := assign[i]
			sizes[c]++
			for j, x := range v {
				centroids[c][j] += x
			}
		}
		for c := range centroids {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the farthest point.
				far, farD := 0, -1.0
				for i, v := range vectors {
					if d := sqDist(v, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], vectors[far])
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	cl := &Clustering{K: k, Assign: assign, Centroids: centroids, Sizes: sizes}
	for i, v := range vectors {
		cl.SSE += sqDist(v, centroids[assign[i]])
	}
	cl.BIC = bic(n, dim, k, sizes, cl.SSE)
	return cl
}

// ChooseK runs k-means for k = 1..maxK and applies SimPoint's selection
// rule: the smallest k whose BIC reaches at least frac (SimPoint uses
// 0.9) of the observed BIC range.
func ChooseK(vectors [][]float64, maxK int, seed int64, frac float64) *Clustering {
	if maxK < 1 {
		maxK = 1
	}
	if maxK > len(vectors) {
		maxK = len(vectors)
	}
	runs := make([]*Clustering, 0, maxK)
	lo, hi := math.Inf(1), math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		cl := KMeans(vectors, k, seed+int64(k)*7919, 50)
		runs = append(runs, cl)
		if cl.BIC < lo {
			lo = cl.BIC
		}
		if cl.BIC > hi {
			hi = cl.BIC
		}
	}
	if hi == lo {
		return runs[0]
	}
	threshold := lo + frac*(hi-lo)
	for _, cl := range runs {
		if cl.BIC >= threshold {
			return cl
		}
	}
	return runs[len(runs)-1]
}

// bic scores a clustering under the spherical-Gaussian likelihood used
// by X-means: log-likelihood minus (params/2)·log n.
func bic(n, dim, k int, sizes []int, sse float64) float64 {
	if n <= k {
		return math.Inf(-1)
	}
	variance := sse / float64(n-k)
	if variance < 1e-12 {
		variance = 1e-12
	}
	var ll float64
	fn := float64(n)
	for _, sz := range sizes {
		if sz == 0 {
			continue
		}
		fsz := float64(sz)
		ll += fsz*math.Log(fsz/fn) -
			fsz*float64(dim)/2*math.Log(2*math.Pi*variance) -
			(fsz-1)/2
	}
	params := float64(k) * (float64(dim) + 1)
	return ll - params/2*math.Log(fn)
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
