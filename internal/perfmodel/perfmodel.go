// Package perfmodel implements the analytic SMARTS simulation-rate model
// of Section 3.4 of the paper.
//
// Rates are expressed relative to plain functional simulation
// (S_F ≡ 1.0). Detailed simulation runs at S_D (the paper plots 1/60 for
// today's fastest detailed simulators and 1/600 for projected future
// cores); functional warming runs at S_FW (≈0.55 in SMARTSim: warming
// adds ~75% overhead plus bookkeeping).
package perfmodel

import "time"

// Params holds the model inputs.
type Params struct {
	// SD is the detailed simulation rate relative to functional (1/60…).
	SD float64
	// SFW is the functional-warming rate relative to functional (≈0.55).
	SFW float64
	// N is the benchmark length in instructions.
	N float64
	// NUnits is the number of measured sampling units n.
	NUnits float64
	// U is the sampling-unit size in instructions.
	U float64
}

// RateDetailedWarming returns the relative SMARTS simulation rate when
// fast-forwarding is plain functional simulation and each unit pays
// U+W detailed instructions:
//
//	S = S_F·(N − n(U+W))/N + S_D·n(U+W)/N,  S_F ≡ 1
func (p Params) RateDetailedWarming(w float64) float64 {
	det := p.NUnits * (p.U + w)
	if det > p.N {
		det = p.N
	}
	return (p.N-det)/p.N + p.SD*det/p.N
}

// RateFunctionalWarming substitutes S_FW for S_F in the same expression,
// exactly as Section 3.4 prescribes: fast-forwarded instructions proceed
// at the functional-warming rate.
//
// (Both expressions are the paper's instruction-fraction-weighted
// averages of rates, reproduced verbatim; the derived Figure 4 matches
// the paper's by construction.)
func (p Params) RateFunctionalWarming(w float64) float64 {
	det := p.NUnits * (p.U + w)
	if det > p.N {
		det = p.N
	}
	return p.SFW*(p.N-det)/p.N + p.SD*det/p.N
}

// Runtime converts a relative rate into wall-clock time given the
// functional simulator's absolute speed in instructions per second.
func (p Params) Runtime(rate, functionalIPS float64) time.Duration {
	if rate <= 0 || functionalIPS <= 0 {
		return 0
	}
	seconds := p.N / (rate * functionalIPS)
	return time.Duration(seconds * float64(time.Second))
}
