package perfmodel_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/perfmodel"
)

func gccParams() perfmodel.Params {
	// The paper's Figure 4 settings: gcc-1 at full scale with n=10,000
	// units of U=1000.
	return perfmodel.Params{
		SD:     1.0 / 60,
		SFW:    0.55,
		N:      46.9e9,
		NUnits: 10_000,
		U:      1000,
	}
}

// TestRateLimits checks the model's boundary behaviour: at W=0 with tiny
// detailed fraction the rate is near S_F (or S_FW); as W grows to cover
// the stream, the rate collapses to S_D.
func TestRateLimits(t *testing.T) {
	p := gccParams()
	r0 := p.RateDetailedWarming(0)
	if r0 < 0.98 {
		t.Errorf("rate at W=0 is %v, want ~1 (detailed fraction is tiny)", r0)
	}
	rInf := p.RateDetailedWarming(1e12)
	if math.Abs(rInf-p.SD) > 1e-9 {
		t.Errorf("saturated rate %v, want S_D=%v", rInf, p.SD)
	}
	fw0 := p.RateFunctionalWarming(0)
	if math.Abs(fw0-0.55) > 0.01 {
		t.Errorf("functional warming rate at W=0 is %v, want ~0.55", fw0)
	}
}

// TestMonotoneInW checks the rate never increases with more warming.
func TestMonotoneInW(t *testing.T) {
	p := gccParams()
	prev := math.Inf(1)
	for w := 0.0; w <= 1e7; w = w*10 + 100 {
		r := p.RateDetailedWarming(w)
		if r > prev+1e-12 {
			t.Errorf("rate increased at W=%v", w)
		}
		prev = r
	}
}

// TestPaperFig4Anchor checks the paper-visible anchor: with functional
// warming and W bounded to thousands, the modelled rate stays within a
// few percent of S_FW — the "flat curve" of Figure 4.
func TestPaperFig4Anchor(t *testing.T) {
	p := gccParams()
	at2k := p.RateFunctionalWarming(2000)
	if math.Abs(at2k-0.55) > 0.01 {
		t.Errorf("rate at W=2000 is %v, want within 1%% of 0.55", at2k)
	}
	// Whereas detailed warming degrades visibly by W=1e6 (detailed
	// fraction ~21% at these parameters) and collapses by W=1e7.
	if r := p.RateDetailedWarming(1e6); r > 0.85 {
		t.Errorf("rate at W=1e6 is %v, want < 0.85", r)
	}
	if r := p.RateDetailedWarming(1e7); r > 0.2 {
		t.Errorf("rate at W=1e7 is %v, want < 0.2", r)
	}
}

// TestRuntime checks wall-clock conversion.
func TestRuntime(t *testing.T) {
	p := gccParams()
	// At rate 1.0 and 10 MIPS, 46.9e9 instructions take 4690 seconds.
	d := p.Runtime(1.0, 10e6)
	want := time.Duration(4690) * time.Second
	if d.Round(time.Second) != want {
		t.Errorf("Runtime = %v, want %v", d, want)
	}
	if p.Runtime(0, 10e6) != 0 {
		t.Error("zero rate should yield zero duration")
	}
}
