package engine_test

import (
	"context"

	"math"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

func genProg(t testing.TB, name string, length uint64) *program.Program {
	t.Helper()
	spec, err := program.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Generate(spec, length)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// bitsEqual asserts two floats are bit-identical, not merely close.
func bitsEqual(t *testing.T, what string, a, b float64) {
	t.Helper()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("%s not bit-identical: %v (%#x) vs %v (%#x)",
			what, a, math.Float64bits(a), b, math.Float64bits(b))
	}
}

// TestDeterminismAcrossWorkerCounts is the engine's core guarantee: for
// a fixed plan, the parallel run is byte-identical to the serial path
// (workers=1) at every worker count, across workloads and warming
// modes.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	cfg := uarch.Config8Way()
	for _, bench := range []string{"gccx", "mcfx"} {
		p := genProg(t, bench, 400_000)
		for _, warm := range []bool{true, false} {
			params := checkpoint.Params{
				U: 1000, W: 1000, K: 10, J: 0, FunctionalWarm: warm,
			}
			serial, err := engine.Run(context.Background(), p, cfg, params, engine.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Units) < 20 {
				t.Fatalf("%s: too few units: %d", bench, len(serial.Units))
			}
			for _, workers := range []int{2, 4, 7} {
				par, err := engine.Run(context.Background(), p, cfg, params, engine.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if len(par.Units) != len(serial.Units) {
					t.Fatalf("%s warm=%v workers=%d: %d units vs %d serial",
						bench, warm, workers, len(par.Units), len(serial.Units))
				}
				for i := range par.Units {
					su, pu := serial.Units[i], par.Units[i]
					if su.Index != pu.Index || su.Cycles != pu.Cycles {
						t.Fatalf("%s warm=%v workers=%d unit %d: cycles %d vs %d",
							bench, warm, workers, i, pu.Cycles, su.Cycles)
					}
					bitsEqual(t, "unit CPI", pu.CPI, su.CPI)
					bitsEqual(t, "unit EPI", pu.EPI, su.EPI)
				}
			}
		}
	}
}

// TestEstimateBitIdentical runs the full smarts.Run path at several
// worker counts on two workloads and two warming modes and asserts the
// CPI/EPI estimates and confidence intervals are byte-identical to the
// serial (workers=1) engine path.
func TestEstimateBitIdentical(t *testing.T) {
	cfg := uarch.Config8Way()
	for _, bench := range []string{"gzipx", "ammpx"} {
		p := genProg(t, bench, 400_000)
		for _, mode := range []smarts.WarmingMode{smarts.FunctionalWarming, smarts.DetailedWarming} {
			plan := smarts.PlanForN(p.Length, 1000, 1000, 50, mode, 0)
			plan.Parallelism = 1
			serial, err := smarts.Run(p, cfg, plan)
			if err != nil {
				t.Fatal(err)
			}
			sCPI := serial.CPIEstimate(stats.Alpha997)
			sEPI := serial.EPIEstimate(stats.Alpha997)
			for _, workers := range []int{4, 3} {
				plan.Parallelism = workers
				par, err := smarts.Run(p, cfg, plan)
				if err != nil {
					t.Fatal(err)
				}
				pCPI := par.CPIEstimate(stats.Alpha997)
				pEPI := par.EPIEstimate(stats.Alpha997)
				if pCPI.N != sCPI.N {
					t.Fatalf("%s %v workers=%d: n %d vs %d", bench, mode, workers, pCPI.N, sCPI.N)
				}
				bitsEqual(t, "CPI mean", pCPI.Mean, sCPI.Mean)
				bitsEqual(t, "CPI CI", pCPI.RelCI, sCPI.RelCI)
				bitsEqual(t, "CPI CV", pCPI.CV, sCPI.CV)
				bitsEqual(t, "EPI mean", pEPI.Mean, sEPI.Mean)
				bitsEqual(t, "EPI CI", pEPI.RelCI, sEPI.RelCI)
			}
		}
	}
}

// TestEarlyTerminationDeterministic verifies that the confidence-target
// cutoff is a stream-order decision: every worker count stops at the
// same unit with the same estimate.
func TestEarlyTerminationDeterministic(t *testing.T) {
	cfg := uarch.Config8Way()
	p := genProg(t, "gccx", 400_000)
	// gccx's per-unit CPI CV is ~2 at this scale, so ±60% at 99.7%
	// confidence needs ~(3·2/0.6)² ≈ 100 of the ~400 selected units:
	// comfortably reachable, comfortably early.
	params := checkpoint.Params{U: 1000, W: 1000, K: 1, J: 0, FunctionalWarm: true}
	opts := func(w int) engine.Options {
		return engine.Options{Workers: w, TargetEps: 0.60, MinUnits: 10}
	}
	base, err := engine.Run(context.Background(), p, cfg, params, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if !base.EarlyStopped {
		t.Fatalf("target not reached early (n=%d)", len(base.Units))
	}
	if len(base.Units) >= 350 {
		t.Fatalf("early stop kept %d units; expected a clearly shorter run", len(base.Units))
	}
	for _, workers := range []int{2, 4, 8} {
		r, err := engine.Run(context.Background(), p, cfg, params, opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !r.EarlyStopped || len(r.Units) != len(base.Units) {
			t.Fatalf("workers=%d: stopped at %d units (early=%v), serial stopped at %d",
				workers, len(r.Units), r.EarlyStopped, len(base.Units))
		}
		for i := range r.Units {
			bitsEqual(t, "CPI", r.Units[i].CPI, base.Units[i].CPI)
		}
	}
}

// TestEngineAccounting sanity-checks the instruction bookkeeping.
func TestEngineAccounting(t *testing.T) {
	cfg := uarch.Config8Way()
	p := genProg(t, "gzipx", 200_000)
	r, err := engine.Run(context.Background(), p, cfg, checkpoint.Params{U: 1000, W: 2000, K: 20, J: 0, FunctionalWarm: true}, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeasuredInsts != uint64(len(r.Units))*1000 {
		t.Fatalf("measured %d insts for %d units", r.MeasuredInsts, len(r.Units))
	}
	if r.WarmingInsts == 0 || r.SweepInsts == 0 {
		t.Fatalf("missing accounting: warming %d, sweep %d", r.WarmingInsts, r.SweepInsts)
	}
	if r.PopulationUnits != p.Length/1000 {
		t.Fatalf("population %d, want %d", r.PopulationUnits, p.Length/1000)
	}
}
