package engine_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/uarch"
)

// resultsEqual asserts two engine results carry bit-identical
// measurements.
func resultsEqual(t *testing.T, what string, a, b *engine.Result) {
	t.Helper()
	if len(a.Units) != len(b.Units) {
		t.Fatalf("%s: %d units vs %d", what, len(a.Units), len(b.Units))
	}
	for i := range a.Units {
		ua, ub := a.Units[i], b.Units[i]
		if ua.Index != ub.Index || ua.Cycles != ub.Cycles {
			t.Fatalf("%s: unit %d differs: %+v vs %+v", what, i, ua, ub)
		}
		bitsEqual(t, what+" CPI", ua.CPI, ub.CPI)
		bitsEqual(t, what+" EPI", ua.EPI, ub.EPI)
	}
	if a.MeasuredInsts != b.MeasuredInsts || a.WarmingInsts != b.WarmingInsts {
		t.Fatalf("%s: instruction accounting differs", what)
	}
}

// TestEngineResumesCancelledSweep is the engine half of the crash/
// resume acceptance: a run cancelled mid-sweep journals its progress,
// and rerunning the same key completes from the journal — measurements
// bit-identical to an uninterrupted run, total sweep work across both
// runs within 1.1x one cold sweep (excluding the replay window of at
// most one journal interval, which the tight interval here keeps
// negligible).
func TestEngineResumesCancelledSweep(t *testing.T) {
	p := genProg(t, "gccx", 400_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 8, J: 0, FunctionalWarm: true}

	baseline, err := engine.Run(context.Background(), p, cfg, params, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Units) < 20 {
		t.Fatalf("plan too small: %d units", len(baseline.Units))
	}

	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Journal at every keyframe, keyframe every 4 units: an interruption
	// replays at most 4 units of sweep.
	opt := engine.Options{Workers: 2, Store: store, Keyframe: 4, ResumeInterval: 1}

	// Cancel mid-sweep, past the halfway mark so the resume saving is
	// unambiguous.
	cancelAt := 3 * len(baseline.Units) / 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := opt
	interrupted.OnCaptured = func(captured int) {
		if captured >= cancelAt {
			cancel()
		}
	}
	if _, err := engine.Run(ctx, p, cfg, params, interrupted); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err %v, want context.Canceled", err)
	}

	// Rerun with the same key: the sweep must resume from the journal.
	resumed, err := engine.Run(context.Background(), p, cfg, params, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.SweepCached {
		t.Fatal("resumed run hit a committed entry; the cancelled run must not have committed one")
	}
	if resumed.SweepResumedInsts == 0 {
		t.Fatal("rerun did not resume from the journal")
	}
	resultsEqual(t, "resumed vs baseline", resumed, baseline)
	if resumed.SweepInsts != baseline.SweepInsts {
		t.Fatalf("sweep accounting differs: %d vs %d", resumed.SweepInsts, baseline.SweepInsts)
	}

	// The interrupted run swept to (roughly) its cancel point and
	// journaled that position; the resumed run only executed SweepInsts -
	// SweepResumedInsts on top. With the cancel at 3/4 of the plan and a
	// one-keyframe journal interval, the journal must sit past the
	// halfway mark — i.e. the rerun genuinely skipped most of the sweep,
	// so the combined work stays within the issue's 1.1x-of-cold bound.
	if resumed.SweepResumedInsts <= baseline.SweepInsts/2 {
		t.Fatalf("journal frame at %d insts, cancelled at ~3/4 of a %d-inst sweep — resume saved too little",
			resumed.SweepResumedInsts, baseline.SweepInsts)
	}

	// The journal is gone and the committed entry serves the next run.
	rerun, err := engine.Run(context.Background(), p, cfg, params, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rerun.SweepCached {
		t.Fatal("completed resumed run did not commit a store entry")
	}
	resultsEqual(t, "store entry after resume", rerun, baseline)
}

// TestEngineResumeDisabled: a negative ResumeInterval must leave no
// journal behind on cancel and restart the sweep cold on rerun.
func TestEngineResumeDisabled(t *testing.T) {
	p := genProg(t, "gzipx", 200_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 10, J: 0, FunctionalWarm: true}
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := engine.Options{Workers: 2, Store: store, ResumeInterval: -1}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := opt
	interrupted.OnCaptured = func(captured int) {
		if captured >= 5 {
			cancel()
		}
	}
	if _, err := engine.Run(ctx, p, cfg, params, interrupted); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err %v, want context.Canceled", err)
	}
	res, err := engine.Run(context.Background(), p, cfg, params, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.SweepResumedInsts != 0 {
		t.Fatal("resume happened with journaling disabled")
	}
}

// TestEngineResumeCorruptJournalFallsBack: a journal that fails resume
// validation must degrade to a cold sweep, not fail the run.
func TestEngineResumeCorruptJournalFallsBack(t *testing.T) {
	p := genProg(t, "gzipx", 200_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 10, J: 0, FunctionalWarm: true}
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := engine.Options{Workers: 2, Store: store, Keyframe: 4, ResumeInterval: 1}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := opt
	interrupted.OnCaptured = func(captured int) {
		if captured >= 8 {
			cancel()
		}
	}
	if _, err := engine.Run(ctx, p, cfg, params, interrupted); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err %v, want context.Canceled", err)
	}

	key := checkpoint.KeyFor(p, cfg, params)
	rs, err := checkpoint.Resume(store, key)
	if err != nil || rs == nil {
		t.Fatalf("no journal (rs=%v err=%v)", rs != nil, err)
	}

	baseline, err := engine.Run(context.Background(), p, cfg, params, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite the journal with poisoned geometry: it decodes cleanly but
	// disagrees with the plan's boundary stream, so resume validation
	// must reject it and the run restart cold.
	rs.Units[0].Index += 3
	store.DropPartial(key)
	pw, err := store.PartialWriter(key, p.Length/params.U)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range rs.Units {
		if err := pw.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Checkpoint(checkpoint.ResumeFrame{
		Captured:   len(rs.Units),
		SweepInsts: rs.SweepInsts,
		SweepTime:  rs.SweepTime,
		HaveIBlock: rs.HaveIBlock,
		LastIBlock: rs.LastIBlock,
	}); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := engine.Run(context.Background(), p, cfg, params, opt)
	if err != nil {
		t.Fatalf("run with poisoned journal failed: %v", err)
	}
	if res.SweepResumedInsts != 0 {
		t.Fatal("poisoned journal was resumed")
	}
	resultsEqual(t, "cold fallback", res, baseline)
}
