// Package engine runs a checkpointed SMARTS sampling plan as a parallel
// pipeline: one functional sweep captures per-unit launch checkpoints
// (internal/checkpoint), a worker pool replays detailed warming plus
// measurement for each unit from its snapshot, and a deterministic
// streaming aggregator (internal/stats) folds per-unit CPI/EPI in
// stream order, optionally terminating early once a target confidence
// interval is reached.
//
// Because every unit's detailed simulation is fully determined by its
// checkpoint, results are bit-identical for any worker count — the
// engine with one worker IS the serial path. This is the property the
// SMARTS paper's ~10,000-unit samples make available: units are
// statistically and, once checkpointed, computationally independent.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/functional"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// Options configures engine execution beyond the sampling parameters.
type Options struct {
	// Workers is the worker-pool size; values <= 0 select GOMAXPROCS.
	Workers int
	// Alpha is the confidence parameter used by early termination (and
	// the reported estimate); zero selects stats.Alpha997.
	Alpha float64
	// TargetEps, when positive, stops measuring once the CPI estimate's
	// relative confidence interval is within ±TargetEps. The cutoff is
	// decided on stream-order prefixes, so it is deterministic for any
	// worker count.
	TargetEps float64
	// MinUnits is the minimum number of units measured before early
	// termination may trigger (default 2).
	MinUnits uint64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// UnitResult is the measurement of one sampling unit.
type UnitResult struct {
	Index    uint64
	Cycles   uint64
	EnergyNJ float64
	CPI, EPI float64
}

// Result collects a parallel sampling run.
type Result struct {
	// Units holds the per-unit measurements in stream order, truncated
	// at the early-termination cutoff when one triggered.
	Units []UnitResult
	// PopulationUnits is the benchmark length in units.
	PopulationUnits uint64

	// Instruction accounting.
	MeasuredInsts uint64 // detailed, measured
	WarmingInsts  uint64 // detailed, unmeasured
	SweepInsts    uint64 // functionally simulated by the capture sweep

	// SweepTime is the wall-clock cost of the serial capture sweep;
	// DetailedTime is the CPU time summed over per-unit detailed
	// replays (wall-clock detailed cost is roughly DetailedTime divided
	// by the worker count); WallTime is the end-to-end elapsed time.
	SweepTime    time.Duration
	DetailedTime time.Duration
	WallTime     time.Duration

	// EarlyStopped reports that the confidence target cut the run short.
	EarlyStopped bool
}

type unitJob struct {
	seq  int // position in the captured sequence
	unit *checkpoint.Unit
}

type unitDone struct {
	seq     int
	res     UnitResult
	warming uint64
	elapsed time.Duration
	partial bool // program ended inside the unit; measurement dropped
	err     error
}

// Run captures checkpoints for the plan described by p and replays the
// units across the worker pool.
func Run(prog *program.Program, cfg uarch.Config, p checkpoint.Params, opt Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	set, err := checkpoint.Capture(prog, cfg, p)
	if err != nil {
		return nil, err
	}
	res := &Result{
		PopulationUnits: set.PopulationUnits,
		SweepInsts:      set.SweepInsts,
		SweepTime:       set.SweepTime,
	}
	if len(set.Units) == 0 {
		res.WallTime = time.Since(start)
		return res, nil
	}

	alpha := opt.Alpha
	if alpha == 0 {
		alpha = stats.Alpha997
	}
	agg := stats.NewStreamAggregator(alpha, opt.TargetEps, opt.MinUnits)

	nw := opt.workers()
	if nw > len(set.Units) {
		nw = len(set.Units)
	}
	jobs := make(chan unitJob)
	done := make(chan unitDone, nw)
	quit := make(chan struct{})
	var quitOnce sync.Once
	signalQuit := func() { quitOnce.Do(func() { close(quit) }) }
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(prog, cfg, p.U, jobs, done)
		}()
	}

	// Dispatch in stream order; stop once the aggregator's in-order
	// prefix meets the confidence target (or on error / program end).
	go func() {
		defer close(jobs)
		for seq, u := range set.Units {
			select {
			case jobs <- unitJob{seq: seq, unit: u}:
				// Drop the set's reference so a unit's snapshot (cache/TLB
				// tag arrays, predictor tables, memory-image map) becomes
				// collectable as soon as its replay finishes, instead of
				// pinning every checkpoint until the whole run completes.
				set.Units[seq] = nil
			case <-quit:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()

	collected := make([]unitDone, 0, len(set.Units))
	var firstErr error
	stopAt := len(set.Units) // in-order cutoff: units with seq >= stopAt are dropped
	for d := range done {
		switch {
		case d.err != nil:
			if firstErr == nil {
				firstErr = d.err
			}
			signalQuit()
		case d.partial:
			// The program ended inside this unit: keep everything before
			// it, drop it and everything after (matches the serial path).
			if d.seq < stopAt {
				stopAt = d.seq
			}
		default:
			collected = append(collected, d)
			if agg.Offer(uint64(d.seq), stats.Obs{CPI: d.res.CPI, EPI: d.res.EPI}) {
				if cut := int(agg.DoneAt()); cut < stopAt {
					stopAt = cut
					res.EarlyStopped = true
					signalQuit()
				}
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	sort.Slice(collected, func(i, j int) bool { return collected[i].seq < collected[j].seq })
	for _, d := range collected {
		if d.seq >= stopAt {
			continue
		}
		res.Units = append(res.Units, d.res)
		res.MeasuredInsts += p.U
		res.WarmingInsts += d.warming
		res.DetailedTime += d.elapsed
	}
	res.WallTime = time.Since(start)
	return res, nil
}

// worker replays units from its job channel.
func worker(prog *program.Program, cfg uarch.Config, u uint64, jobs <-chan unitJob, done chan<- unitDone) {
	for job := range jobs {
		d := replay(prog, cfg, job.unit, u)
		d.seq = job.seq
		done <- d
	}
}

// replay runs one unit's detailed warming + measurement from its
// checkpoint. The machine and core are built fresh per unit: a unit's
// measurement must be a pure function of its checkpoint, and reusing a
// core would thread worker-local accumulation (notably the energy
// meter's floating-point total) into the per-unit readings.
func replay(prog *program.Program, cfg uarch.Config, cu *checkpoint.Unit, u uint64) unitDone {
	machine := uarch.NewMachine(cfg)
	if cu.Warm != nil {
		if err := machine.Hier.Restore(cu.Warm.Hier); err != nil {
			return unitDone{err: fmt.Errorf("engine: unit %d: %w", cu.Index, err)}
		}
		if err := machine.Pred.Restore(cu.Warm.Pred); err != nil {
			return unitDone{err: fmt.Errorf("engine: unit %d: %w", cu.Index, err)}
		}
	}
	cpu := functional.NewAt(prog, cu.Arch, cu.Mem.NewMemory())
	src := &uarch.Source{CPU: cpu}
	core := uarch.NewCore(machine)

	w := cu.WarmLen()
	start := time.Now()
	marks := []uarch.Mark{{At: w}, {At: w + u}}
	runStats, err := core.Run(src, w+u, marks)
	if err != nil {
		return unitDone{err: fmt.Errorf("engine: detailed run at unit %d: %w", cu.Index, err)}
	}
	elapsed := time.Since(start)
	if runStats.Insts < w+u {
		return unitDone{partial: true, elapsed: elapsed}
	}
	cycles := marks[1].Cycle - marks[0].Cycle
	energy := marks[1].EnergyNJ - marks[0].EnergyNJ
	return unitDone{
		res: UnitResult{
			Index:    cu.Index,
			Cycles:   cycles,
			EnergyNJ: energy,
			CPI:      float64(cycles) / float64(u),
			EPI:      energy / float64(u),
		},
		warming: w,
		elapsed: elapsed,
	}
}
