// Package engine runs a checkpointed SMARTS sampling plan as a parallel
// pipeline: a functional sweep captures per-unit launch checkpoints
// (internal/checkpoint) and streams each one to a worker pool the
// moment it is taken, workers replay detailed warming plus measurement
// for each unit from its snapshot, and a deterministic streaming
// aggregator (internal/stats) folds per-unit CPI/EPI in stream order,
// optionally terminating early once a target confidence interval is
// reached.
//
// Because capture and replay overlap, end-to-end wall clock approaches
// max(sweep, replay/workers) instead of their sum — the sweep stops
// being an Amdahl pre-pass. With a checkpoint store attached
// (Options.Store), a workload's sweep is paid once and later runs skip
// it entirely, loading launch states from disk. Options.TwoPhase
// restores the capture-then-replay schedule for comparison benchmarks.
//
// Because every unit's detailed simulation is fully determined by its
// checkpoint, results are bit-identical for any worker count, any
// schedule (streamed, two-phase, or store-loaded), and any
// early-termination setting — the engine with one worker IS the serial
// path. This is the property the SMARTS paper's ~10,000-unit samples
// make available: units are statistically and, once checkpointed,
// computationally independent.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/functional"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/internal/wallclock"
)

// Options configures engine execution beyond the sampling parameters.
type Options struct {
	// Workers is the worker-pool size; values <= 0 select GOMAXPROCS.
	Workers int
	// Alpha is the confidence parameter used by early termination (and
	// the reported estimate); zero selects stats.Alpha997.
	Alpha float64
	// TargetEps, when positive, stops measuring once the CPI estimate's
	// relative confidence interval is within ±TargetEps. The cutoff is
	// decided on stream-order prefixes, so it is deterministic for any
	// worker count.
	TargetEps float64
	// MinUnits is the minimum number of units measured before early
	// termination may trigger (default 2).
	MinUnits uint64
	// Store, when non-nil, is consulted before sweeping: a usable entry
	// for this (workload, plan, warm geometry) skips the functional
	// sweep entirely, and a completed fresh sweep is persisted for
	// later runs. Early-terminated sweeps are not persisted (they are
	// incomplete).
	Store *checkpoint.Store
	// Cache, when non-nil, is the in-memory analogue of Store, checked
	// after it: a cached Set for this key skips the sweep, and a
	// completed fresh sweep is cached. The sim session attaches one to
	// storeless sessions so sweep reuse does not require disk.
	Cache *checkpoint.MemCache
	// Keyframe overrides checkpoint.Params.Keyframe (the full-snapshot
	// interval of delta-encoded capture) when positive. It changes only
	// the encoding, never the materialized launch states, and is
	// excluded from the store key.
	Keyframe int
	// ResumeInterval controls the crash-safe sweep journal kept
	// alongside the store: while the streaming sweep runs, the engine
	// persists a partial-sweep record (checkpoint.PartialWriter) every
	// ResumeInterval keyframes, and a later run of the same key resumes
	// an interrupted sweep from the journal instead of restarting at
	// instruction zero — the resumed unit stream is bit-identical to an
	// uninterrupted sweep's. 0 selects DefaultResumeInterval; negative
	// disables journaling and resume. Ignored without a Store (the
	// journal lives in the store directory) and under TwoPhase.
	ResumeInterval int
	// SweepParallelism overrides checkpoint.Params.SweepParallelism when
	// above 1: the capture sweep runs as that many concurrent stream
	// segments (speculative parallel sweep). Architectural state stays
	// exact; segments after the first start with cold warm state plus
	// SweepOverlap instructions of warm-up, a measured bias (see the
	// checkpoint package). Warmed parallel sweeps key separately in the
	// store, and the crash-safe sweep journal is disabled for them (a
	// parallel sweep has no single resumable position).
	SweepParallelism int
	// SweepOverlap overrides checkpoint.Params.SweepOverlap when
	// nonzero; see that field for the semantics (0 default, negative =
	// stone cold).
	SweepOverlap int64
	// TwoPhase disables capture/replay overlap: the full sweep runs
	// before the first worker starts, as the engine behaved before the
	// streaming pipeline. Results are bit-identical either way; the
	// flag exists for scheduling benchmarks and pipeline validation.
	TwoPhase bool
	// OnCaptured, when non-nil, observes sweep progress: it is called
	// with the cumulative captured-unit count each time a launch
	// snapshot enters the pipeline (once with the total under TwoPhase
	// or a store hit). Called from the sweep goroutine; callbacks must
	// be fast and may not block on the engine.
	OnCaptured func(captured int)
	// OnReplayed, when non-nil, observes replay progress: it is called
	// each time the deterministic stream-order prefix grows, with the
	// folded unit count and the current CPI estimate over that prefix.
	// Called from the collector goroutine, never concurrently with
	// itself (but possibly concurrently with OnCaptured).
	OnReplayed func(replayed int, est stats.Estimate)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultResumeInterval is the journal cadence used when
// Options.ResumeInterval is zero: one partial-sweep commit every 4
// keyframes keeps the journal I/O a small fraction of capture while
// bounding the replay window an interruption loses to a few keyframe
// intervals of units.
const DefaultResumeInterval = 4

// resumeInterval returns the effective journal cadence in keyframes (0
// = journaling disabled).
func (o Options) resumeInterval() int {
	switch {
	case o.ResumeInterval == 0:
		return DefaultResumeInterval
	case o.ResumeInterval < 0:
		return 0
	}
	return o.ResumeInterval
}

// UnitResult is the measurement of one sampling unit.
type UnitResult struct {
	Index    uint64
	Cycles   uint64
	EnergyNJ float64
	CPI, EPI float64
}

// Result collects a parallel sampling run.
type Result struct {
	// Units holds the per-unit measurements in stream order, truncated
	// at the early-termination cutoff when one triggered.
	Units []UnitResult
	// PopulationUnits is the benchmark length in units.
	PopulationUnits uint64

	// Instruction accounting.
	MeasuredInsts uint64 // detailed, measured
	WarmingInsts  uint64 // detailed, unmeasured
	SweepInsts    uint64 // functionally simulated by the capture sweep

	// SweepResumedInsts is the journaled stream position the sweep
	// resumed from (0 when the sweep ran cold): SweepInsts -
	// SweepResumedInsts is the functional work this run actually
	// executed, the quantity crash/resume accounting bounds.
	SweepResumedInsts uint64

	// SweepTime is the wall-clock cost of the capture sweep (overlapped
	// with replay in the streaming schedule; the original sweep's cost
	// when launch states came from the store); DetailedTime is the CPU
	// time summed over per-unit detailed replays (wall-clock detailed
	// cost is roughly DetailedTime divided by the worker count);
	// WallTime is the end-to-end elapsed time.
	SweepTime    time.Duration
	DetailedTime time.Duration
	WallTime     time.Duration

	// EarlyStopped reports that the confidence target cut the run short.
	EarlyStopped bool
	// SweepCached reports that launch states were loaded from the
	// checkpoint store instead of sweeping.
	SweepCached bool
}

type unitJob struct {
	seq  int // position in the captured sequence
	unit *checkpoint.Unit
}

type unitDone struct {
	seq     int
	res     UnitResult
	warming uint64
	elapsed time.Duration
	partial bool // program ended inside the unit; measurement dropped
	err     error
}

// streamBuffer bounds how far capture may run ahead of replay dispatch.
// Snapshots are sizeable (cache tag arrays, predictor tables), so the
// pipeline holds only a few in flight; the sweep blocks when replay is
// the bottleneck and the snapshots' memory stays bounded.
const streamBuffer = 4

// Run executes the plan described by p: launch states are loaded from
// the store when possible, captured by a streaming (or two-phase) sweep
// otherwise, and replayed across the worker pool.
//
// ctx cancels the whole pipeline: the sweep stops at its next chunk
// boundary, workers finish only their in-flight unit, the store writer
// aborts its staged entry (a committed entry is always a complete
// sweep), and Run returns ctx.Err(). With resume journaling enabled
// (Options.ResumeInterval), the interrupted sweep's progress is
// committed to a partial-sweep journal beside the store entries first,
// so rerunning the same key continues the sweep instead of restarting
// it. A nil ctx is treated as context.Background().
func Run(ctx context.Context, prog *program.Program, cfg uarch.Config, p checkpoint.Params, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := wallclock.Now()
	if opt.Keyframe > 0 {
		p.Keyframe = opt.Keyframe
	}
	if opt.SweepParallelism > 1 {
		p.SweepParallelism = opt.SweepParallelism
	}
	if opt.SweepOverlap != 0 {
		p.SweepOverlap = opt.SweepOverlap
	}

	var key checkpoint.Key
	if opt.Store != nil || opt.Cache != nil {
		key = checkpoint.KeyFor(prog, cfg, p)
	}
	if opt.Store != nil {
		set, err := opt.Store.Load(key)
		if err != nil {
			return nil, err
		}
		if set != nil {
			if opt.OnCaptured != nil {
				opt.OnCaptured(len(set.Units))
			}
			res, err := replaySet(ctx, prog, cfg, p.U, set, opt, start)
			if err != nil {
				return nil, err
			}
			res.SweepCached = true
			return res, nil
		}
	}
	if opt.Cache != nil {
		if set := opt.Cache.Get(key); set != nil {
			if opt.OnCaptured != nil {
				opt.OnCaptured(len(set.Units))
			}
			// The cached set stays shared; replay a copy (replaySet nils
			// dispatched entries).
			res, err := replaySet(ctx, prog, cfg, p.U, copySet(set), opt, start)
			if err != nil {
				return nil, err
			}
			res.SweepCached = true
			return res, nil
		}
	}

	if opt.TwoPhase {
		set, err := checkpoint.Capture(ctx, prog, cfg, p)
		if err != nil {
			return nil, err
		}
		if opt.OnCaptured != nil {
			opt.OnCaptured(len(set.Units))
		}
		if opt.Store != nil {
			if err := opt.Store.Save(key, set); err != nil {
				opt.Store.Log("checkpoint store: save failed: %v", err)
			}
		}
		if opt.Cache != nil {
			opt.Cache.Put(key, copySet(set))
		}
		return replaySet(ctx, prog, cfg, p.U, set, opt, start)
	}
	return replayStreaming(ctx, prog, cfg, p, key, opt, start)
}

// copySet shallow-copies a Set so replaySet's entry-nilling never
// touches a shared original; the units themselves stay shared (replay
// only reads them).
func copySet(set *checkpoint.Set) *checkpoint.Set {
	return &checkpoint.Set{
		Units:           append([]*checkpoint.Unit(nil), set.Units...),
		K:               set.K,
		PopulationUnits: set.PopulationUnits,
		SweepInsts:      set.SweepInsts,
		SweepTime:       set.SweepTime,
	}
}

// RunSet replays an already-captured set of launch states across the
// worker pool — the entry point for callers that captured several phase
// offsets in one sweep (checkpoint.Set.Offset) or otherwise manage
// capture themselves. The caller keeps ownership of set; its Units
// slice is not modified. ctx cancels the replay as in Run.
func RunSet(ctx context.Context, prog *program.Program, cfg uarch.Config, u uint64, set *checkpoint.Set, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if u == 0 {
		return nil, fmt.Errorf("engine: zero sampling unit size")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return replaySet(ctx, prog, cfg, u, copySet(set), opt, wallclock.Now())
}

// replaySet feeds an in-memory set through the replay pool. It owns
// set.Units (entries are nilled as they are dispatched so snapshots
// become collectable).
func replaySet(ctx context.Context, prog *program.Program, cfg uarch.Config, u uint64, set *checkpoint.Set, opt Options, start time.Time) (*Result, error) {
	res := &Result{
		PopulationUnits: set.PopulationUnits,
		SweepInsts:      set.SweepInsts,
		SweepTime:       set.SweepTime,
	}
	if len(set.Units) == 0 {
		res.WallTime = wallclock.Since(start)
		return res, nil
	}
	nw := opt.workers()
	if nw > len(set.Units) {
		nw = len(set.Units)
	}

	col := newCollector(ctx, prog, cfg, u, nw, opt, len(set.Units))
	go func() {
		defer close(col.feed)
		for seq, cu := range set.Units {
			select {
			case col.feed <- cu:
				// Drop the set's reference so a unit's snapshot (cache/TLB
				// tag arrays, predictor tables, memory-image map) becomes
				// collectable as soon as its replay finishes, instead of
				// pinning every checkpoint until the whole run completes.
				set.Units[seq] = nil
			case <-col.quit:
				return
			}
		}
	}()
	if err := col.collect(res); err != nil {
		return nil, err
	}
	res.WallTime = wallclock.Since(start)
	return res, nil
}

// replayStreaming overlaps the capture sweep with replay: the sweep
// goroutine emits each unit into the pipeline the moment its snapshot
// is taken, and persists the stream to the store when one is attached.
func replayStreaming(ctx context.Context, prog *program.Program, cfg uarch.Config, p checkpoint.Params, key checkpoint.Key, opt Options, start time.Time) (*Result, error) {
	col := newCollector(ctx, prog, cfg, p.U, opt.workers(), opt, 0)

	type sweepOut struct {
		sum *checkpoint.Summary
		err error
	}
	sweepc := make(chan sweepOut, 1)
	go func() {
		var sw *checkpoint.SetWriter
		if opt.Store != nil {
			var err error
			sw, err = opt.Store.Writer(key, prog.Length/p.U)
			if err != nil {
				opt.Store.Log("checkpoint store: not saving: %v", err)
				sw = nil
			}
		}
		// Crash-safe resume: load any partial-sweep journal left by an
		// interrupted run of this key, and stage a fresh journal this
		// sweep commits its own progress into (the previously journaled
		// units are re-added so the new journal is self-contained).
		var pw *checkpoint.PartialWriter
		var rs *checkpoint.ResumeState
		if ri := opt.resumeInterval(); opt.Store != nil && ri > 0 && p.SweepParallelism <= 1 {
			var rerr error
			if rs, rerr = checkpoint.Resume(opt.Store, key); rerr != nil {
				opt.Store.Log("checkpoint store: resume unavailable: %v", rerr)
				rs = nil
			}
			if pw0, perr := opt.Store.PartialWriter(key, prog.Length/p.U); perr != nil {
				opt.Store.Log("checkpoint store: not journaling: %v", perr)
			} else {
				pw = pw0
			}
			p.Resume = rs
		}
		// journalFail stops journaling after a write error. The failed
		// writer has already cleaned up after itself; a journal from an
		// earlier run that this writer never replaced stays usable.
		journalFail := func(werr error) {
			opt.Store.Log("checkpoint store: sweep journal failed: %v", werr)
			pw = nil
		}

		// With an in-memory cache attached, retain the streamed units so
		// a complete sweep can be cached for later requests.
		var retained []*checkpoint.Unit
		captured := 0
		kfSince := 0 // keyframes captured since the last journal commit
		var lastFrame checkpoint.ResumeFrame
		framePending := false
		// The journaled units enter the pipeline (and the writers) ahead
		// of the first newly captured unit — after CaptureStream validated
		// the journal against the plan, so an unusable journal feeds
		// nothing and the sweep can restart cold below.
		fedResumed := rs == nil
		feedResumed := func() bool {
			fedResumed = true
			for _, cu := range rs.Units {
				if sw != nil {
					if werr := sw.Add(cu); werr != nil {
						opt.Store.Log("checkpoint store: save failed mid-sweep: %v", werr)
						sw = nil
					}
				}
				if pw != nil {
					if werr := pw.Add(cu); werr != nil {
						journalFail(werr)
					}
				}
				if opt.Cache != nil {
					retained = append(retained, cu)
				}
				select {
				case col.feed <- cu:
					captured++
					if opt.OnCaptured != nil {
						opt.OnCaptured(captured)
					}
				case <-col.quit:
					return false
				}
			}
			return true
		}
		p.OnFrame = func(fr checkpoint.ResumeFrame) {
			lastFrame, framePending = fr, true
			if pw != nil && kfSince >= opt.resumeInterval() {
				if werr := pw.Checkpoint(fr); werr != nil {
					journalFail(werr)
				} else {
					kfSince, framePending = 0, false
				}
			}
		}
		emit := func(cu *checkpoint.Unit) bool {
			if !fedResumed && !feedResumed() {
				return false
			}
			if sw != nil {
				if werr := sw.Add(cu); werr != nil {
					opt.Store.Log("checkpoint store: save failed mid-sweep: %v", werr)
					sw = nil
				}
			}
			if pw != nil {
				if werr := pw.Add(cu); werr != nil {
					journalFail(werr)
				}
			}
			if cu.Mem != nil {
				kfSince++
			}
			if opt.Cache != nil {
				retained = append(retained, cu)
			}
			select {
			case col.feed <- cu:
				captured++
				if opt.OnCaptured != nil {
					opt.OnCaptured(captured)
				}
				return true
			case <-col.quit:
				return false
			}
		}
		sum, err := checkpoint.CaptureStream(ctx, prog, cfg, p, emit)
		if err != nil && p.Resume != nil && !fedResumed && ctx.Err() == nil {
			// The journal failed resume validation before anything entered
			// the pipeline: drop it and sweep cold rather than failing a
			// run a cold sweep can still complete.
			opt.Store.Log("checkpoint store: dropping unusable partial %s: %v", key.Hash(), err)
			opt.Store.DropPartial(key)
			p.Resume, rs = nil, nil
			fedResumed = true
			sum, err = checkpoint.CaptureStream(ctx, prog, cfg, p, emit)
		}
		if err == nil && sum.Complete && !fedResumed {
			// The journal already covered every boundary: no new unit was
			// captured, so the resumed units enter the pipeline here.
			feedResumed()
		}
		close(col.feed)
		if sw != nil {
			if err == nil && sum.Complete {
				if werr := sw.Commit(sum.SweepInsts, sum.SweepTime); werr != nil {
					opt.Store.Log("checkpoint store: save failed: %v", werr)
				}
			} else {
				sw.Abort()
			}
		}
		if pw != nil {
			if err == nil && sum.Complete {
				// The committed entry supersedes the journal.
				pw.Discard()
			} else {
				// Interrupted (cancel, early stop, failure): commit the
				// journal through the last captured unit and keep it, so a
				// rerun of this key resumes here instead of restarting.
				if framePending && fedResumed {
					if werr := pw.Checkpoint(lastFrame); werr != nil {
						journalFail(werr)
					}
				}
				if pw != nil {
					if werr := pw.Close(); werr != nil {
						opt.Store.Log("checkpoint store: sweep journal close failed: %v", werr)
					}
				}
			}
		}
		if opt.Cache != nil && err == nil && sum.Complete {
			opt.Cache.Put(key, &checkpoint.Set{
				Units:           retained,
				K:               p.K,
				PopulationUnits: sum.PopulationUnits,
				SweepInsts:      sum.SweepInsts,
				SweepTime:       sum.SweepTime,
			})
		}
		sweepc <- sweepOut{sum, err}
	}()

	res := &Result{}
	collectErr := col.collect(res)
	sweep := <-sweepc
	if collectErr != nil {
		return nil, collectErr
	}
	// A sweep error matters only if it prevented units the run still
	// wanted: when early termination already cut the stream, the sweep
	// was cancelled on purpose and its state is irrelevant.
	if sweep.err != nil && !res.EarlyStopped {
		return nil, sweep.err
	}
	res.PopulationUnits = sweep.sum.PopulationUnits
	res.SweepInsts = sweep.sum.SweepInsts
	res.SweepResumedInsts = sweep.sum.ResumedAt
	res.SweepTime = sweep.sum.SweepTime
	res.WallTime = wallclock.Since(start)
	return res, nil
}

// collector owns the worker pool and the deterministic stream-order
// aggregation shared by every schedule. Units are read from feed in
// stream order (the dispatcher assigns ascending seq numbers), fan out
// to workers, and fold back through the aggregator; quit fires once the
// outcome can no longer change (early termination, error, or context
// cancellation).
type collector struct {
	feed chan *checkpoint.Unit
	quit chan struct{}

	ctx  context.Context
	prog *program.Program
	cfg  uarch.Config
	u    uint64
	nw   int
	opt  Options
	hint int
}

func newCollector(ctx context.Context, prog *program.Program, cfg uarch.Config, u uint64, nw int, opt Options, hint int) *collector {
	if nw < 1 {
		nw = 1
	}
	return &collector{
		feed: make(chan *checkpoint.Unit, streamBuffer),
		quit: make(chan struct{}),
		ctx:  ctx,
		prog: prog,
		cfg:  cfg,
		u:    u,
		nw:   nw,
		opt:  opt,
		hint: hint,
	}
}

// collect runs the pool until the unit stream ends (or the run is cut
// short) and fills the measurement half of res.
func (c *collector) collect(res *Result) error {
	alpha := c.opt.Alpha
	if alpha == 0 {
		alpha = stats.Alpha997
	}
	agg := stats.NewStreamAggregator(alpha, c.opt.TargetEps, c.opt.MinUnits)

	jobs := make(chan unitJob)
	done := make(chan unitDone, c.nw)
	var quitOnce sync.Once
	signalQuit := func() { quitOnce.Do(func() { close(c.quit) }) }

	// Context cancellation fires the same quit signal early termination
	// uses: dispatch stops, in-flight units finish, the pipeline drains.
	// The watcher is released at collect exit so it never outlives the
	// run (no goroutine leak on the uncancelled path).
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-c.ctx.Done():
			signalQuit()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < c.nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(c.prog, c.cfg, c.u, jobs, done)
		}()
	}

	// Dispatch in stream order; stop once the aggregator's in-order
	// prefix meets the confidence target (or on error / program end).
	go func() {
		defer close(jobs)
		seq := 0
		for cu := range c.feed {
			select {
			case jobs <- unitJob{seq: seq, unit: cu}:
				seq++
			case <-c.quit:
				// Keep draining feed so a blocked producer can always
				// make progress to its own quit check.
				for range c.feed {
				}
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()

	collected := make([]unitDone, 0, c.hint)
	var firstErr error
	var folded uint64            // in-order units reported through OnReplayed
	stopAt := int(^uint(0) >> 1) // in-order cutoff: units with seq >= stopAt are dropped
	for d := range done {
		switch {
		case d.err != nil:
			if firstErr == nil {
				firstErr = d.err
			}
			signalQuit()
		case d.partial:
			// The program ended inside this unit: keep everything before
			// it, drop it and everything after (matches the serial path).
			if d.seq < stopAt {
				stopAt = d.seq
			}
		default:
			collected = append(collected, d)
			hitTarget := agg.Offer(uint64(d.seq), stats.Obs{CPI: d.res.CPI, EPI: d.res.EPI})
			if c.opt.OnReplayed != nil {
				if m := agg.Merged(); m > folded {
					folded = m
					c.opt.OnReplayed(int(m), agg.CPIEstimate())
				}
			}
			if hitTarget {
				if cut := int(agg.DoneAt()); cut < stopAt {
					stopAt = cut
					res.EarlyStopped = true
					signalQuit()
				}
			}
		}
	}
	signalQuit() // release the producer if the stream ended naturally
	if firstErr != nil {
		return firstErr
	}
	// A cancelled context trumps whatever partial measurement drained
	// out — unless early termination had already fixed the outcome, in
	// which case the result is complete and the cancel merely raced it.
	if err := c.ctx.Err(); err != nil && !res.EarlyStopped {
		return err
	}

	sort.Slice(collected, func(i, j int) bool { return collected[i].seq < collected[j].seq })
	for _, d := range collected {
		if d.seq >= stopAt {
			continue
		}
		res.Units = append(res.Units, d.res)
		res.MeasuredInsts += c.u
		res.WarmingInsts += d.warming
		res.DetailedTime += d.elapsed
	}
	return nil
}

// worker replays units from its job channel.
func worker(prog *program.Program, cfg uarch.Config, u uint64, jobs <-chan unitJob, done chan<- unitDone) {
	for job := range jobs {
		d := replay(prog, cfg, job.unit, u)
		d.seq = job.seq
		done <- d
	}
}

// replay runs one unit's detailed warming + measurement from its
// checkpoint. The machine and core are built fresh per unit: a unit's
// measurement must be a pure function of its checkpoint, and reusing a
// core would thread worker-local accumulation (notably the energy
// meter's floating-point total) into the per-unit readings.
func replay(prog *program.Program, cfg uarch.Config, cu *checkpoint.Unit, u uint64) unitDone {
	machine := uarch.NewMachine(cfg)
	// Delta-encoded snapshots are materialized here, on the worker, so
	// the capture sweep's critical path copies only dirty blocks and
	// pages; the reconstruction (clone keyframe, apply the delta chain —
	// warm state and memory alike) is read-only on the shared snapshots
	// and therefore safe at any worker count.
	launch, err := cu.Materialize()
	if err != nil {
		return unitDone{err: fmt.Errorf("engine: unit %d: %w", cu.Index, err)}
	}
	if launch.Warm != nil {
		if err := machine.Hier.Restore(launch.Warm.Hier); err != nil {
			return unitDone{err: fmt.Errorf("engine: unit %d: %w", cu.Index, err)}
		}
		if err := machine.Pred.Restore(launch.Warm.Pred); err != nil {
			return unitDone{err: fmt.Errorf("engine: unit %d: %w", cu.Index, err)}
		}
	}
	cpu := functional.NewAt(prog, cu.Arch, launch.Mem.NewMemory())
	src := &uarch.Source{CPU: cpu}
	core := uarch.NewCore(machine)

	w := cu.WarmLen()
	start := wallclock.Now()
	marks := []uarch.Mark{{At: w}, {At: w + u}}
	runStats, err := core.Run(src, w+u, marks)
	if err != nil {
		return unitDone{err: fmt.Errorf("engine: detailed run at unit %d: %w", cu.Index, err)}
	}
	elapsed := wallclock.Since(start)
	if runStats.Insts < w+u {
		return unitDone{partial: true, elapsed: elapsed}
	}
	cycles := marks[1].Cycle - marks[0].Cycle
	energy := marks[1].EnergyNJ - marks[0].EnergyNJ
	return unitDone{
		res: UnitResult{
			Index:    cu.Index,
			Cycles:   cycles,
			EnergyNJ: energy,
			CPI:      float64(cycles) / float64(u),
			EPI:      energy / float64(u),
		},
		warming: w,
		elapsed: elapsed,
	}
}
