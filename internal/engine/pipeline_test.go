package engine_test

import (
	"context"

	"testing"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/uarch"
)

// resultsBitIdentical asserts two engine results carry exactly the same
// measurements.
func resultsBitIdentical(t *testing.T, what string, a, b *engine.Result) {
	t.Helper()
	if len(a.Units) != len(b.Units) {
		t.Fatalf("%s: %d units vs %d", what, len(a.Units), len(b.Units))
	}
	if a.EarlyStopped != b.EarlyStopped {
		t.Fatalf("%s: early-stop disagreement (%v vs %v)", what, a.EarlyStopped, b.EarlyStopped)
	}
	for i := range a.Units {
		ua, ub := a.Units[i], b.Units[i]
		if ua.Index != ub.Index || ua.Cycles != ub.Cycles {
			t.Fatalf("%s unit %d: cycles %d vs %d (index %d vs %d)",
				what, i, ua.Cycles, ub.Cycles, ua.Index, ub.Index)
		}
		bitsEqual(t, what+" CPI", ua.CPI, ub.CPI)
		bitsEqual(t, what+" EPI", ua.EPI, ub.EPI)
	}
}

// TestPipelineMatchesTwoPhase is the streaming pipeline's core
// guarantee: overlapping capture with replay changes wall clock, never
// results. The streamed schedule must be bit-identical to PR 1's
// capture-then-replay schedule and to the one-worker serial path, for
// several worker counts, with and without early termination.
func TestPipelineMatchesTwoPhase(t *testing.T) {
	cfg := uarch.Config8Way()
	p := genProg(t, "gccx", 400_000)
	params := checkpoint.Params{U: 1000, W: 1000, K: 4, J: 0, FunctionalWarm: true}

	for _, eps := range []float64{0, 0.60} {
		base := engine.Options{Workers: 1, TwoPhase: true, TargetEps: eps, MinUnits: 10}
		serial, err := engine.Run(context.Background(), p, cfg, params, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Units) == 0 {
			t.Fatal("no units measured")
		}
		if eps > 0 && !serial.EarlyStopped {
			t.Fatalf("eps=%v: expected early termination", eps)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			for _, twoPhase := range []bool{false, true} {
				opt := engine.Options{Workers: workers, TwoPhase: twoPhase, TargetEps: eps, MinUnits: 10}
				got, err := engine.Run(context.Background(), p, cfg, params, opt)
				if err != nil {
					t.Fatal(err)
				}
				resultsBitIdentical(t, "schedule", serial, got)
			}
		}
	}
}

// TestPipelineSweepOverlap verifies the streaming schedule actually
// overlaps: with ample workers, total wall clock must be visibly below
// sweep + detailed (the two-phase lower bound) — here checked loosely
// as wall < sweep + detailedCPU, which only holds when replay ran
// during the sweep or the machine has spare cores. On a single-core
// machine the schedules tie, so the test only requires the streamed run
// not to be slower than two-phase by more than a generous margin.
func TestPipelineSweepOverlap(t *testing.T) {
	cfg := uarch.Config8Way()
	p := genProg(t, "mcfx", 400_000)
	params := checkpoint.Params{U: 1000, W: 1000, K: 4, J: 0, FunctionalWarm: true}

	two, err := engine.Run(context.Background(), p, cfg, params, engine.Options{Workers: 4, TwoPhase: true})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := engine.Run(context.Background(), p, cfg, params, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "overlap", two, streamed)
	if streamed.WallTime > two.WallTime*3 {
		t.Fatalf("streamed schedule pathologically slower: %v vs %v", streamed.WallTime, two.WallTime)
	}
}

// TestRunSetPerOffsetMatchesRuns verifies the multi-offset flow end to
// end: one sweep capturing several phases, replayed per offset with
// RunSet, must reproduce each dedicated single-offset engine run bit
// for bit.
func TestRunSetPerOffsetMatchesRuns(t *testing.T) {
	cfg := uarch.Config8Way()
	p := genProg(t, "gzipx", 300_000)
	offsets := []uint64{0, 2, 5}
	base := checkpoint.Params{U: 1000, W: 2000, K: 10, FunctionalWarm: true}

	multi := base
	multi.Offsets = offsets
	set, err := checkpoint.Capture(context.Background(), p, cfg, multi)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range offsets {
		single := base
		single.J = j
		want, err := engine.Run(context.Background(), p, cfg, single, engine.Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		sub := set.Offset(j)
		got, err := engine.RunSet(context.Background(), p, cfg, base.U, sub, engine.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, "offset replay", want, got)
		// RunSet must not consume the caller's set: a second replay of
		// the same sub-set still works.
		again, err := engine.RunSet(context.Background(), p, cfg, base.U, sub, engine.Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, "offset replay repeat", want, again)
	}
}

// TestStoreRunBitIdentical verifies the full store cycle inside the
// engine: a first run sweeps and persists, a second run loads the
// launch states from disk, skips the sweep, and still produces
// bit-identical measurements at a different worker count.
func TestStoreRunBitIdentical(t *testing.T) {
	cfg := uarch.Config8Way()
	p := genProg(t, "ammpx", 300_000)
	params := checkpoint.Params{U: 1000, W: 1000, K: 8, J: 1, FunctionalWarm: true}
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	first, err := engine.Run(context.Background(), p, cfg, params, engine.Options{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if first.SweepCached {
		t.Fatal("first run claims a cached sweep")
	}
	if first.SweepInsts == 0 {
		t.Fatal("first run has no sweep accounting")
	}

	second, err := engine.Run(context.Background(), p, cfg, params, engine.Options{Workers: 5, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !second.SweepCached {
		t.Fatal("second run did not use the stored sweep")
	}
	resultsBitIdentical(t, "store cycle", first, second)
	if hits, misses := store.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("store stats %d/%d, want 1 hit 1 miss", hits, misses)
	}

	// A timing-only config variant shares the entry (same warm shape).
	variant := cfg
	variant.Lat.Mem = 250
	variant.EnergyScale = 2.0
	third, err := engine.Run(context.Background(), p, variant, params, engine.Options{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !third.SweepCached {
		t.Fatal("timing-only variant did not reuse the stored sweep")
	}
	if third.Units[0].Cycles == first.Units[0].Cycles {
		t.Log("note: timing variant produced identical cycles (possible but unexpected)")
	}
}

// TestStoreEarlyStopNotPersisted verifies that an early-terminated
// streaming run does not persist its truncated sweep, and a later full
// run still sweeps and persists a complete set.
func TestStoreEarlyStopNotPersisted(t *testing.T) {
	cfg := uarch.Config8Way()
	p := genProg(t, "gccx", 400_000)
	params := checkpoint.Params{U: 1000, W: 1000, K: 1, J: 0, FunctionalWarm: true}
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	early, err := engine.Run(context.Background(), p, cfg, params, engine.Options{
		Workers: 4, Store: store, TargetEps: 0.60, MinUnits: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !early.EarlyStopped {
		t.Skip("confidence target not reached early at this scale")
	}

	full, err := engine.Run(context.Background(), p, cfg, params, engine.Options{Workers: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if full.SweepCached {
		t.Fatal("truncated sweep was persisted and reused")
	}
	if len(full.Units) <= len(early.Units) {
		t.Fatalf("full run measured %d units, early run %d", len(full.Units), len(early.Units))
	}

	// Now the complete sweep is stored; a rerun of the early-stop
	// configuration loads it and terminates at the same cutoff.
	early2, err := engine.Run(context.Background(), p, cfg, params, engine.Options{
		Workers: 2, Store: store, TargetEps: 0.60, MinUnits: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !early2.SweepCached {
		t.Fatal("rerun did not reuse the complete stored sweep")
	}
	resultsBitIdentical(t, "early stop from store", early, early2)
}
