package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/program"
	"repro/internal/uarch"
)

// RangeUnit is one replayed unit of a shard-range replay, delivered in
// stream order.
type RangeUnit struct {
	// Seq is the unit's position in the captured stream (the global
	// stream index shard merges are keyed by).
	Seq int
	// Res is the unit's measurement; meaningless when Partial is set.
	Res UnitResult
	// Warming is the number of detailed-warming instructions the replay
	// executed before measurement.
	Warming uint64
	// Elapsed is the unit's detailed-replay CPU time.
	Elapsed time.Duration
	// Partial reports the program ended inside the unit; the serial
	// semantics drop it and everything after it, which the consumer
	// enforces (trailing units of the range may still be emitted).
	Partial bool
}

// ReplayRange replays the units [lo, hi) of set — positions in the
// captured stream — across opt.Workers workers, calling emit for every
// unit in ascending Seq order. It is the distributed service's worker
// entry point: a shard replays only its contiguous range, streams each
// result the moment its stream-order predecessor has been emitted, and
// the coordinator merges shards by Seq into the same deterministic
// aggregation a single-machine run performs.
//
// The range is clamped to the set (callers size shards from
// Params.ExpectedUnits, which can exceed the captured count when the
// program halts early); an empty range emits nothing and returns nil.
// set is shared and read-only — materialization never mutates the
// snapshots — so any number of concurrent ReplayRange calls may replay
// overlapping ranges of one Set.
//
// emit returning false stops the replay early (the consumer's stream
// died or the merge was cut short); ReplayRange then returns nil after
// the in-flight units drain. ctx cancellation likewise stops dispatch
// and returns ctx.Err().
func ReplayRange(ctx context.Context, prog *program.Program, cfg uarch.Config, u uint64, set *checkpoint.Set, lo, hi int, opt Options, emit func(RangeUnit) bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if u == 0 {
		return fmt.Errorf("engine: zero sampling unit size")
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(set.Units) {
		hi = len(set.Units)
	}
	if lo >= hi {
		return ctx.Err()
	}
	nw := opt.workers()
	if nw > hi-lo {
		nw = hi - lo
	}

	jobs := make(chan unitJob)
	done := make(chan unitDone, nw)
	quit := make(chan struct{})
	var quitOnce sync.Once
	signalQuit := func() { quitOnce.Do(func() { close(quit) }) }

	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			signalQuit()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(prog, cfg, u, jobs, done)
		}()
	}
	go func() {
		defer close(jobs)
		for seq := lo; seq < hi; seq++ {
			select {
			case jobs <- unitJob{seq: seq, unit: set.Units[seq]}:
			case <-quit:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()

	// Reorder completions into ascending Seq before emitting, so the
	// consumer observes the deterministic stream order regardless of
	// worker scheduling.
	pending := make(map[int]unitDone, nw)
	next := lo
	var firstErr error
	for d := range done {
		if d.err != nil {
			if firstErr == nil {
				firstErr = d.err
			}
			signalQuit()
			continue
		}
		pending[d.seq] = d
		for {
			nd, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if firstErr != nil {
				continue
			}
			if !emit(RangeUnit{Seq: nd.seq, Res: nd.res, Warming: nd.warming, Elapsed: nd.elapsed, Partial: nd.partial}) {
				signalQuit()
				firstErr = errStopped
			}
		}
	}
	signalQuit()
	if firstErr == errStopped {
		return nil
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// errStopped marks an emit-requested stop internally; ReplayRange
// translates it to a nil return.
var errStopped = fmt.Errorf("engine: replay stopped by consumer")
