// Package wallclock is the project's sanctioned escape hatch for
// reading physical time in determinism-critical packages.
//
// The simlint determinism analyzer flags every direct time.Now /
// time.Since / time.Until call in the engine, the checkpoint store,
// the fleet, the stats layer, and sim: bit-identical results must not
// depend on the wall clock. Two domains legitimately do, and they
// route through this package instead:
//
//   - telemetry: elapsed-time reporting (Report.Elapsed,
//     Summary.SweepTime, progress events) that is carried alongside
//     results but never read back into them;
//   - liveness: worker leases, heartbeat deadlines, and retry backoff
//     in the fleet, where physical time is the point — it decides
//     when to give up on a peer, never what a shard computes.
//
// Keeping these reads behind one import makes the rule auditable:
// `grep wallclock.` lists every place physical time enters the
// determinism-scoped code, and a raw time.Now anywhere else is a lint
// failure. One-off exceptions that do not fit either domain should
// use a //simlint:ordered <reason> annotation instead of this
// package, so the reason is recorded at the call site.
package wallclock

import "time"

// Now returns the current wall-clock time.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock time elapsed since t.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Until returns the wall-clock duration until t.
func Until(t time.Time) time.Duration { return time.Until(t) }
