package functional_test

import (
	"testing"

	"repro/internal/functional"
	"repro/internal/program"
)

// loopProg returns a generated suite workload: the realistic instruction
// mix (ALU, loads/stores, branches) the sweep hot loop actually sees.
func loopProg(tb testing.TB, length uint64) *program.Program {
	tb.Helper()
	spec, err := program.ByName("gccx")
	if err != nil {
		tb.Fatal(err)
	}
	p, err := program.Generate(spec, length)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// TestStepZeroAllocs pins functional.Step to zero heap allocations per
// instruction in steady state (all touched pages allocated). This is the
// allocation-regression guard for the capture sweep's innermost loop.
func TestStepZeroAllocs(t *testing.T) {
	p := loopProg(t, 200_000)
	cpu := functional.New(p)
	// Reach steady state: execute enough of the stream that the working
	// set's pages exist, then measure.
	if _, err := cpu.Run(50_000); err != nil {
		t.Fatal(err)
	}
	var d functional.DynInst
	allocs := testing.AllocsPerRun(20_000, func() {
		if err := cpu.Step(&d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("functional.Step allocates %.4f objects/instruction; want 0", allocs)
	}
}

// TestRunDynZeroAllocs pins the batch interpreter to zero heap
// allocations per instruction in steady state — the RunDyn analogue of
// TestStepZeroAllocs.
func TestRunDynZeroAllocs(t *testing.T) {
	p := loopProg(t, 400_000)
	cpu := functional.New(p)
	if _, err := cpu.Run(50_000); err != nil {
		t.Fatal(err) // reach steady state (pages allocated, code pre-decoded)
	}
	var ring [256]functional.DynRec
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cpu.RunDyn(ring[:], uint64(len(ring))); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("functional.RunDyn allocates %.4f objects per batch; want 0", allocs)
	}
}

// BenchmarkRunDyn measures the batch interpreter's per-instruction cost
// (b.N = executed instructions) with ring recording on, the
// configuration the warming sweep runs it in.
func BenchmarkRunDyn(b *testing.B) {
	p := loopProg(b, 2_000_000)
	cpu := functional.New(p)
	var ring [256]functional.DynRec
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		if cpu.Halted {
			b.StopTimer()
			cpu = functional.New(p)
			b.StartTimer()
		}
		k, err := cpu.RunDyn(ring[:], uint64(len(ring)))
		if err != nil {
			b.Fatal(err)
		}
		done += int(k)
	}
}

// BenchmarkStep measures the functional simulator's per-instruction cost
// on a realistic workload mix — the unit of work every fast-forward and
// sweep instruction pays.
func BenchmarkStep(b *testing.B) {
	p := loopProg(b, 2_000_000)
	cpu := functional.New(p)
	var d functional.DynInst
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cpu.Halted {
			b.StopTimer()
			cpu = functional.New(p)
			b.StartTimer()
		}
		if err := cpu.Step(&d); err != nil {
			b.Fatal(err)
		}
	}
}
