// Package functional implements the architectural (functional) simulator:
// it executes instruction semantics and maintains programmer-visible
// state only — registers, memory, and the PC.
//
// Every other execution mode in this repository is driven by the dynamic
// instruction records (DynInst) this simulator emits: the detailed
// timing model consumes them as an oracle instruction stream, and
// functional warming replays them into caches and branch predictors.
// This mirrors the organization of SimpleScalar's sim-outorder, which
// SMARTSim was built on.
package functional

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// DynInst is one executed (committed) instruction with its dynamic
// outcomes resolved: effective address for memory ops, direction and
// target for control.
type DynInst struct {
	// Seq is the dynamic instruction number (the first executed
	// instruction has Seq 0).
	Seq uint64
	// PC is the instruction index.
	PC uint64
	// Inst is the static instruction.
	Inst isa.Inst
	// EA is the effective byte address for loads and stores.
	EA uint64
	// Taken reports whether a control instruction redirected the PC.
	Taken bool
	// NextPC is the PC of the next dynamic instruction.
	NextPC uint64
}

// Class returns the instruction's class.
func (d *DynInst) Class() isa.Class { return d.Inst.Op.Class() }

// DynRec is the compact per-instruction record the batch interpreter
// (RunDyn) writes: the dynamic outcomes functional warming consumes —
// fetch PC, effective address, branch direction and target — plus the
// opcode and its pre-decoded class, without the full static instruction
// DynInst carries for the detailed model.
type DynRec struct {
	// PC is the instruction index.
	PC uint64
	// EA is the effective byte address for loads and stores.
	EA uint64
	// NextPC is the PC of the next dynamic instruction.
	NextPC uint64
	// Op is the opcode; Class its pre-decoded class.
	Op    isa.Op
	Class isa.Class
	// Taken reports whether a control instruction redirected the PC.
	Taken bool
}

// CPU is the functional simulator state.
type CPU struct {
	Prog *program.Program
	Mem  *mem.Memory
	Regs [isa.NumRegs]uint64
	PC   uint64
	// Halted is set once OpHalt executes; further Steps return ErrHalted.
	Halted bool
	// Count is the number of instructions executed so far.
	Count uint64

	// code caches Prog.Code so the Step hot loop fetches through one
	// slice header instead of two pointer dereferences per instruction.
	code []isa.Inst
	// dec is the pre-decoded code the RunDyn batch loop executes from,
	// built lazily on first use so CPUs that only Step (the detailed
	// model's oracle source) never pay the decode pass.
	dec []isa.DecInst
}

// ErrHalted is returned by Step after the program has halted.
var ErrHalted = fmt.Errorf("functional: program halted")

// New creates a CPU at the program entry with a fresh memory image.
func New(p *program.Program) *CPU {
	return &CPU{Prog: p, Mem: p.NewMemory(), PC: p.Entry, code: p.Code}
}

// reg reads a register, honoring the hardwired zero.
//
//simlint:hotpath
func (c *CPU) reg(r isa.Reg) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return c.Regs[r]
}

// setReg writes a register, discarding writes to the zero register.
//
//simlint:hotpath
func (c *CPU) setReg(r isa.Reg, v uint64) {
	if r != isa.RegZero {
		c.Regs[r] = v
	}
}

// Step executes one instruction. If d is non-nil it is filled with the
// dynamic record. Step returns ErrHalted once the program has finished
// and an error for architectural faults (PC out of range).
//
//simlint:hotpath
func (c *CPU) Step(d *DynInst) error {
	if c.Halted {
		return ErrHalted
	}
	if c.PC >= uint64(len(c.code)) {
		//simlint:coldpath architectural fault; taken at most once per run
		return fmt.Errorf("functional: PC %d outside code (%d insts)", c.PC, len(c.code))
	}
	in := c.code[c.PC]
	pc := c.PC
	next := pc + 1
	var ea uint64
	taken := false

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		c.setReg(in.Dst, c.reg(in.Src1)+c.reg(in.Src2))
	case isa.OpSub:
		c.setReg(in.Dst, c.reg(in.Src1)-c.reg(in.Src2))
	case isa.OpAnd:
		c.setReg(in.Dst, c.reg(in.Src1)&c.reg(in.Src2))
	case isa.OpOr:
		c.setReg(in.Dst, c.reg(in.Src1)|c.reg(in.Src2))
	case isa.OpXor:
		c.setReg(in.Dst, c.reg(in.Src1)^c.reg(in.Src2))
	case isa.OpShl:
		c.setReg(in.Dst, c.reg(in.Src1)<<(c.reg(in.Src2)&63))
	case isa.OpShr:
		c.setReg(in.Dst, c.reg(in.Src1)>>(c.reg(in.Src2)&63))
	case isa.OpSlt:
		c.setReg(in.Dst, boolTo64(int64(c.reg(in.Src1)) < int64(c.reg(in.Src2))))
	case isa.OpAddI:
		c.setReg(in.Dst, c.reg(in.Src1)+uint64(in.Imm))
	case isa.OpAndI:
		c.setReg(in.Dst, c.reg(in.Src1)&uint64(in.Imm))
	case isa.OpOrI:
		c.setReg(in.Dst, c.reg(in.Src1)|uint64(in.Imm))
	case isa.OpXorI:
		c.setReg(in.Dst, c.reg(in.Src1)^uint64(in.Imm))
	case isa.OpShlI:
		c.setReg(in.Dst, c.reg(in.Src1)<<(uint64(in.Imm)&63))
	case isa.OpShrI:
		c.setReg(in.Dst, c.reg(in.Src1)>>(uint64(in.Imm)&63))
	case isa.OpSltI:
		c.setReg(in.Dst, boolTo64(int64(c.reg(in.Src1)) < in.Imm))
	case isa.OpMul:
		c.setReg(in.Dst, c.reg(in.Src1)*c.reg(in.Src2))
	case isa.OpDiv:
		b := int64(c.reg(in.Src2))
		if b == 0 {
			c.setReg(in.Dst, 0)
		} else {
			c.setReg(in.Dst, uint64(int64(c.reg(in.Src1))/b))
		}
	case isa.OpRem:
		b := int64(c.reg(in.Src2))
		if b == 0 {
			c.setReg(in.Dst, 0)
		} else {
			c.setReg(in.Dst, uint64(int64(c.reg(in.Src1))%b))
		}

	case isa.OpFAdd:
		c.setFP(in.Dst, c.fp(in.Src1)+c.fp(in.Src2))
	case isa.OpFSub:
		c.setFP(in.Dst, c.fp(in.Src1)-c.fp(in.Src2))
	case isa.OpFMul:
		c.setFP(in.Dst, c.fp(in.Src1)*c.fp(in.Src2))
	case isa.OpFDiv:
		c.setFP(in.Dst, c.fp(in.Src1)/c.fp(in.Src2))
	case isa.OpFNeg:
		c.setFP(in.Dst, -c.fp(in.Src1))
	case isa.OpCvtIF:
		c.setFP(in.Dst, float64(int64(c.reg(in.Src1))))
	case isa.OpCvtFI:
		c.setReg(in.Dst, uint64(int64(c.fp(in.Src1))))

	case isa.OpLoad, isa.OpFLoad:
		ea = c.reg(in.Src1) + uint64(in.Imm)
		c.setReg(in.Dst, c.Mem.Read64(ea))
	case isa.OpLoad32:
		ea = c.reg(in.Src1) + uint64(in.Imm)
		c.setReg(in.Dst, uint64(c.Mem.Read32(ea)))
	case isa.OpStore, isa.OpFStore:
		ea = c.reg(in.Src1) + uint64(in.Imm)
		c.Mem.Write64(ea, c.reg(in.Src2))
	case isa.OpStore32:
		ea = c.reg(in.Src1) + uint64(in.Imm)
		c.Mem.Write32(ea, uint32(c.reg(in.Src2)))

	case isa.OpBeq:
		taken = c.reg(in.Src1) == c.reg(in.Src2)
	case isa.OpBne:
		taken = c.reg(in.Src1) != c.reg(in.Src2)
	case isa.OpBlt:
		taken = int64(c.reg(in.Src1)) < int64(c.reg(in.Src2))
	case isa.OpBge:
		taken = int64(c.reg(in.Src1)) >= int64(c.reg(in.Src2))
	case isa.OpJmp:
		taken = true
		next = uint64(in.Target)
	case isa.OpJr:
		taken = true
		next = c.reg(in.Src1)
	case isa.OpCall:
		taken = true
		c.setReg(isa.RegLR, pc+1)
		next = uint64(in.Target)
	case isa.OpRet:
		taken = true
		next = c.reg(isa.RegLR)
	case isa.OpHalt:
		c.Halted = true
	default:
		//simlint:coldpath architectural fault; taken at most once per run
		return fmt.Errorf("functional: invalid opcode %v at PC %d", in.Op, pc)
	}

	if in.Op.Class() == isa.ClassBranch && taken {
		next = uint64(in.Target)
	}

	c.PC = next
	seq := c.Count
	c.Count++

	if d != nil {
		d.Seq = seq
		d.PC = pc
		d.Inst = in
		d.EA = ea
		d.Taken = taken
		d.NextPC = next
	}
	return nil
}

// rmask folds a register index into the register file's bounds, eliding
// the bounds check on every operand access in the batch loop.
// Program.Validate guarantees operands are in range, so the mask never
// changes a valid program's semantics.
const rmask = isa.NumRegs - 1

// RunDyn is the batch interpreter: it executes up to max instructions
// with the PC, the instruction count, and the register file pointer
// held in locals, fetching pre-decoded instructions (class, operand
// indices, and widened immediate resolved once per static instruction).
// When ring is non-empty, at most len(ring) instructions execute and
// ring[i] receives the i-th one's dynamic record — the batch analogue
// of Step's DynInst out-parameter that Warmer.ForwardBatch amortizes
// its per-instruction warming dispatch over.
//
// RunDyn returns the number of instructions executed: max unless the
// program halted (the count then includes the Halt itself) or faulted.
// A CPU that has already halted executes nothing and returns (0, nil).
//
//simlint:hotpath
func (c *CPU) RunDyn(ring []DynRec, max uint64) (uint64, error) {
	if c.Halted {
		return 0, nil
	}
	if c.dec == nil {
		//simlint:coldpath one-time lazy predecode per CPU
		c.dec = isa.Predecode(c.code)
	}
	if len(ring) > 0 && uint64(len(ring)) < max {
		max = uint64(len(ring))
	}
	code := c.dec
	regs := &c.Regs
	regs[isa.RegZero] = 0 // invariant; lets operand reads skip the zero check
	pc := c.PC
	count := c.Count
	var n uint64
	for n < max {
		if pc >= uint64(len(code)) {
			c.PC = pc
			c.Count = count
			//simlint:coldpath architectural fault; taken at most once per run
			return n, fmt.Errorf("functional: PC %d outside code (%d insts)", pc, len(code))
		}
		in := &code[pc]
		next := pc + 1
		var ea uint64
		taken := false

		switch in.Op {
		case isa.OpNop:
		case isa.OpAdd:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] + regs[in.Src2&rmask]
		case isa.OpSub:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] - regs[in.Src2&rmask]
		case isa.OpAnd:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] & regs[in.Src2&rmask]
		case isa.OpOr:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] | regs[in.Src2&rmask]
		case isa.OpXor:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] ^ regs[in.Src2&rmask]
		case isa.OpShl:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] << (regs[in.Src2&rmask] & 63)
		case isa.OpShr:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] >> (regs[in.Src2&rmask] & 63)
		case isa.OpSlt:
			regs[in.Dst&rmask] = boolTo64(int64(regs[in.Src1&rmask]) < int64(regs[in.Src2&rmask]))
		case isa.OpAddI:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] + in.Imm
		case isa.OpAndI:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] & in.Imm
		case isa.OpOrI:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] | in.Imm
		case isa.OpXorI:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] ^ in.Imm
		case isa.OpShlI:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] << (in.Imm & 63)
		case isa.OpShrI:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] >> (in.Imm & 63)
		case isa.OpSltI:
			regs[in.Dst&rmask] = boolTo64(int64(regs[in.Src1&rmask]) < int64(in.Imm))
		case isa.OpMul:
			regs[in.Dst&rmask] = regs[in.Src1&rmask] * regs[in.Src2&rmask]
		case isa.OpDiv:
			b := int64(regs[in.Src2&rmask])
			if b == 0 {
				regs[in.Dst&rmask] = 0
			} else {
				regs[in.Dst&rmask] = uint64(int64(regs[in.Src1&rmask]) / b)
			}
		case isa.OpRem:
			b := int64(regs[in.Src2&rmask])
			if b == 0 {
				regs[in.Dst&rmask] = 0
			} else {
				regs[in.Dst&rmask] = uint64(int64(regs[in.Src1&rmask]) % b)
			}

		case isa.OpFAdd:
			regs[in.Dst&rmask] = math.Float64bits(math.Float64frombits(regs[in.Src1&rmask]) + math.Float64frombits(regs[in.Src2&rmask]))
		case isa.OpFSub:
			regs[in.Dst&rmask] = math.Float64bits(math.Float64frombits(regs[in.Src1&rmask]) - math.Float64frombits(regs[in.Src2&rmask]))
		case isa.OpFMul:
			regs[in.Dst&rmask] = math.Float64bits(math.Float64frombits(regs[in.Src1&rmask]) * math.Float64frombits(regs[in.Src2&rmask]))
		case isa.OpFDiv:
			regs[in.Dst&rmask] = math.Float64bits(math.Float64frombits(regs[in.Src1&rmask]) / math.Float64frombits(regs[in.Src2&rmask]))
		case isa.OpFNeg:
			regs[in.Dst&rmask] = math.Float64bits(-math.Float64frombits(regs[in.Src1&rmask]))
		case isa.OpCvtIF:
			regs[in.Dst&rmask] = math.Float64bits(float64(int64(regs[in.Src1&rmask])))
		case isa.OpCvtFI:
			regs[in.Dst&rmask] = uint64(int64(math.Float64frombits(regs[in.Src1&rmask])))

		case isa.OpLoad, isa.OpFLoad:
			ea = regs[in.Src1&rmask] + in.Imm
			regs[in.Dst&rmask] = c.Mem.Read64(ea)
		case isa.OpLoad32:
			ea = regs[in.Src1&rmask] + in.Imm
			regs[in.Dst&rmask] = uint64(c.Mem.Read32(ea))
		case isa.OpStore, isa.OpFStore:
			ea = regs[in.Src1&rmask] + in.Imm
			c.Mem.Write64(ea, regs[in.Src2&rmask])
		case isa.OpStore32:
			ea = regs[in.Src1&rmask] + in.Imm
			c.Mem.Write32(ea, uint32(regs[in.Src2&rmask]))

		case isa.OpBeq:
			if regs[in.Src1&rmask] == regs[in.Src2&rmask] {
				taken = true
				next = in.Target
			}
		case isa.OpBne:
			if regs[in.Src1&rmask] != regs[in.Src2&rmask] {
				taken = true
				next = in.Target
			}
		case isa.OpBlt:
			if int64(regs[in.Src1&rmask]) < int64(regs[in.Src2&rmask]) {
				taken = true
				next = in.Target
			}
		case isa.OpBge:
			if int64(regs[in.Src1&rmask]) >= int64(regs[in.Src2&rmask]) {
				taken = true
				next = in.Target
			}
		case isa.OpJmp:
			taken = true
			next = in.Target
		case isa.OpJr:
			taken = true
			next = regs[in.Src1&rmask]
		case isa.OpCall:
			taken = true
			regs[isa.RegLR] = pc + 1
			next = in.Target
		case isa.OpRet:
			taken = true
			next = regs[isa.RegLR]
		case isa.OpHalt:
			c.Halted = true
		default:
			c.PC = pc
			c.Count = count
			//simlint:coldpath architectural fault; taken at most once per run
			return n, fmt.Errorf("functional: invalid opcode %v at PC %d", in.Op, pc)
		}

		// Restore the hardwired zero clobbered by a Dst==RegZero write;
		// one unconditional store replaces a per-write branch.
		regs[isa.RegZero] = 0

		if len(ring) > 0 {
			r := &ring[n]
			r.PC = pc
			r.EA = ea
			r.NextPC = next
			r.Op = in.Op
			r.Class = in.Class
			r.Taken = taken
		}
		pc = next
		count++
		n++
		if c.Halted {
			break
		}
	}
	c.PC = pc
	c.Count = count
	return n, nil
}

// Run executes up to n instructions, returning the number executed. It
// stops early when the program halts.
func (c *CPU) Run(n uint64) (uint64, error) {
	return c.RunDyn(nil, n)
}

// RunToCompletion executes until the program halts and returns the total
// dynamic instruction count (including the halt).
func (c *CPU) RunToCompletion() (uint64, error) {
	for !c.Halted {
		if _, err := c.RunDyn(nil, 1<<30); err != nil {
			return c.Count, err
		}
	}
	return c.Count, nil
}

//simlint:hotpath
func (c *CPU) fp(r isa.Reg) float64 { return math.Float64frombits(c.Regs[r]) }

//simlint:hotpath
func (c *CPU) setFP(r isa.Reg, v float64) {
	if r != isa.RegZero {
		c.Regs[r] = math.Float64bits(v)
	}
}

//simlint:hotpath
func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
