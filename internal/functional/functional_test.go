package functional_test

import (
	"math"
	"testing"

	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/program"
)

// mkProg wraps raw instructions into a Program.
func mkProg(code ...isa.Inst) *program.Program {
	return &program.Program{Name: "t", Code: code, Length: uint64(len(code))}
}

func step(t *testing.T, c *functional.CPU) functional.DynInst {
	t.Helper()
	var d functional.DynInst
	if err := c.Step(&d); err != nil {
		t.Fatalf("Step: %v", err)
	}
	return d
}

// TestArithmetic checks representative ALU semantics.
func TestArithmetic(t *testing.T) {
	p := mkProg(
		isa.Inst{Op: isa.OpAddI, Dst: 1, Src1: isa.RegZero, Imm: 40},
		isa.Inst{Op: isa.OpAddI, Dst: 2, Src1: isa.RegZero, Imm: 2},
		isa.Inst{Op: isa.OpAdd, Dst: 3, Src1: 1, Src2: 2},
		isa.Inst{Op: isa.OpSub, Dst: 4, Src1: 1, Src2: 2},
		isa.Inst{Op: isa.OpMul, Dst: 5, Src1: 1, Src2: 2},
		isa.Inst{Op: isa.OpDiv, Dst: 6, Src1: 1, Src2: 2},
		isa.Inst{Op: isa.OpDiv, Dst: 7, Src1: 1, Src2: isa.RegZero}, // div by zero -> 0
		isa.Inst{Op: isa.OpSlt, Dst: 8, Src1: 2, Src2: 1},
		isa.Inst{Op: isa.OpShlI, Dst: 9, Src1: 2, Imm: 4},
		isa.Inst{Op: isa.OpHalt},
	)
	c := functional.New(p)
	if _, err := c.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	want := map[isa.Reg]uint64{3: 42, 4: 38, 5: 80, 6: 20, 7: 0, 8: 1, 9: 32}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

// TestZeroRegisterHardwired checks writes to R0 vanish.
func TestZeroRegisterHardwired(t *testing.T) {
	p := mkProg(
		isa.Inst{Op: isa.OpAddI, Dst: isa.RegZero, Src1: isa.RegZero, Imm: 99},
		isa.Inst{Op: isa.OpAdd, Dst: 1, Src1: isa.RegZero, Src2: isa.RegZero},
		isa.Inst{Op: isa.OpHalt},
	)
	c := functional.New(p)
	if _, err := c.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if c.Regs[0] != 0 || c.Regs[1] != 0 {
		t.Errorf("r0=%d r1=%d, want 0 0", c.Regs[0], c.Regs[1])
	}
}

// TestLoadStore checks memory semantics and DynInst effective addresses.
func TestLoadStore(t *testing.T) {
	p := mkProg(
		isa.Inst{Op: isa.OpAddI, Dst: 1, Src1: isa.RegZero, Imm: 0x1000},
		isa.Inst{Op: isa.OpAddI, Dst: 2, Src1: isa.RegZero, Imm: 7},
		isa.Inst{Op: isa.OpStore, Src1: 1, Src2: 2, Imm: 8},
		isa.Inst{Op: isa.OpLoad, Dst: 3, Src1: 1, Imm: 8},
		isa.Inst{Op: isa.OpHalt},
	)
	c := functional.New(p)
	step(t, c)
	step(t, c)
	d := step(t, c)
	if d.EA != 0x1008 {
		t.Errorf("store EA %#x, want 0x1008", d.EA)
	}
	d = step(t, c)
	if d.EA != 0x1008 {
		t.Errorf("load EA %#x", d.EA)
	}
	if c.Regs[3] != 7 {
		t.Errorf("loaded %d, want 7", c.Regs[3])
	}
}

// TestFloatingPoint checks FP bit-pattern register semantics.
func TestFloatingPoint(t *testing.T) {
	p := mkProg(
		isa.Inst{Op: isa.OpAddI, Dst: 1, Src1: isa.RegZero, Imm: 3},
		isa.Inst{Op: isa.OpCvtIF, Dst: isa.FP(0), Src1: 1},
		isa.Inst{Op: isa.OpFMul, Dst: isa.FP(1), Src1: isa.FP(0), Src2: isa.FP(0)},
		isa.Inst{Op: isa.OpFAdd, Dst: isa.FP(2), Src1: isa.FP(1), Src2: isa.FP(0)},
		isa.Inst{Op: isa.OpCvtFI, Dst: 2, Src1: isa.FP(2)},
		isa.Inst{Op: isa.OpHalt},
	)
	c := functional.New(p)
	if _, err := c.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(c.Regs[isa.FP(2)]); got != 12 {
		t.Errorf("f2 = %v, want 12", got)
	}
	if c.Regs[2] != 12 {
		t.Errorf("r2 = %d, want 12", c.Regs[2])
	}
}

// TestControlFlow checks branches, calls, returns, and DynInst outcome
// fields.
func TestControlFlow(t *testing.T) {
	p := mkProg(
		/* 0 */ isa.Inst{Op: isa.OpAddI, Dst: 1, Src1: isa.RegZero, Imm: 1},
		/* 1 */ isa.Inst{Op: isa.OpBeq, Src1: 1, Src2: isa.RegZero, Target: 5}, // not taken
		/* 2 */ isa.Inst{Op: isa.OpCall, Target: 6},
		/* 3 */ isa.Inst{Op: isa.OpJmp, Target: 5},
		/* 4 */ isa.Inst{Op: isa.OpNop},
		/* 5 */ isa.Inst{Op: isa.OpHalt},
		/* 6 */ isa.Inst{Op: isa.OpAddI, Dst: 2, Src1: isa.RegZero, Imm: 9},
		/* 7 */ isa.Inst{Op: isa.OpRet},
	)
	c := functional.New(p)
	step(t, c) // addi
	d := step(t, c)
	if d.Taken {
		t.Error("beq taken with unequal operands")
	}
	d = step(t, c) // call
	if !d.Taken || d.NextPC != 6 {
		t.Errorf("call: taken=%v next=%d", d.Taken, d.NextPC)
	}
	if c.Regs[isa.RegLR] != 3 {
		t.Errorf("LR = %d, want 3", c.Regs[isa.RegLR])
	}
	step(t, c) // addi in callee
	d = step(t, c)
	if !d.Taken || d.NextPC != 3 {
		t.Errorf("ret: next=%d, want 3", d.NextPC)
	}
	d = step(t, c) // jmp
	if d.NextPC != 5 {
		t.Errorf("jmp: next=%d, want 5", d.NextPC)
	}
	if _, err := c.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if c.Regs[2] != 9 {
		t.Error("callee did not execute")
	}
}

// TestHaltSemantics checks Step after halt and Run early stop.
func TestHaltSemantics(t *testing.T) {
	c := functional.New(mkProg(isa.Inst{Op: isa.OpHalt}))
	n, err := c.Run(100)
	if err != nil || n != 1 {
		t.Errorf("Run = %d, %v; want 1, nil", n, err)
	}
	if err := c.Step(nil); err != functional.ErrHalted {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
}

// TestPCOutOfRange checks the architectural fault path.
func TestPCOutOfRange(t *testing.T) {
	c := functional.New(mkProg(isa.Inst{Op: isa.OpJmp, Target: 0})) // infinite loop at 0
	c.PC = 99
	if err := c.Step(nil); err == nil {
		t.Error("Step accepted out-of-range PC")
	}
}

// TestJrFault checks indirect jumps to garbage fault cleanly.
func TestJrFault(t *testing.T) {
	p := mkProg(
		isa.Inst{Op: isa.OpAddI, Dst: 1, Src1: isa.RegZero, Imm: 1 << 40},
		isa.Inst{Op: isa.OpJr, Src1: 1},
		isa.Inst{Op: isa.OpHalt},
	)
	c := functional.New(p)
	step(t, c)
	step(t, c) // the jr itself succeeds; the next fetch faults
	if err := c.Step(nil); err == nil {
		t.Error("fetch at garbage PC did not fault")
	}
}
