package functional

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// ArchState is the architectural register state of a CPU at one stream
// position: everything besides memory needed to resume execution. It is
// the per-unit launch state a SMARTS checkpoint carries.
type ArchState struct {
	Regs   [isa.NumRegs]uint64
	PC     uint64
	Count  uint64
	Halted bool
}

// Arch captures the CPU's current architectural state.
func (c *CPU) Arch() ArchState {
	return ArchState{Regs: c.Regs, PC: c.PC, Count: c.Count, Halted: c.Halted}
}

// NewAt builds a CPU resumed mid-stream from a captured architectural
// state and a memory (typically materialized from a checkpoint's
// mem.Image). Stepping it produces the same dynamic instruction stream
// the snapshotted CPU would have produced from that point.
func NewAt(p *program.Program, st ArchState, m *mem.Memory) *CPU {
	return &CPU{Prog: p, Mem: m, Regs: st.Regs, PC: st.PC, Count: st.Count, Halted: st.Halted, code: p.Code}
}
