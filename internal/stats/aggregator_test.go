package stats

import (
	"math"
	"testing"
)

func obsSeq(n int) []Obs {
	out := make([]Obs, n)
	x := uint64(12345)
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407 // LCG; deterministic
		out[i] = Obs{
			CPI: 1 + float64(x>>40)/float64(1<<24),
			EPI: 5 + float64(x&0xffffff)/float64(1<<24),
		}
	}
	return out
}

func TestAggregatorOrderIndependence(t *testing.T) {
	obs := obsSeq(200)

	inOrder := NewStreamAggregator(Alpha997, 0, 2)
	for i, o := range obs {
		inOrder.Offer(uint64(i), o)
	}

	// A scrambled but complete delivery order (stride permutation).
	scrambled := NewStreamAggregator(Alpha997, 0, 2)
	for s := 0; s < 7; s++ {
		for i := s; i < len(obs); i += 7 {
			scrambled.Offer(uint64(i), obs[i])
		}
	}

	a, b := inOrder.CPIEstimate(), scrambled.CPIEstimate()
	if a.N != b.N || a.N != 200 {
		t.Fatalf("n mismatch: %d vs %d", a.N, b.N)
	}
	if math.Float64bits(a.Mean) != math.Float64bits(b.Mean) {
		t.Fatalf("mean not bit-identical: %v vs %v", a.Mean, b.Mean)
	}
	if math.Float64bits(a.RelCI) != math.Float64bits(b.RelCI) {
		t.Fatalf("CI not bit-identical: %v vs %v", a.RelCI, b.RelCI)
	}
	if math.Float64bits(inOrder.EPISample().Mean()) != math.Float64bits(scrambled.EPISample().Mean()) {
		t.Fatalf("EPI mean not bit-identical")
	}
}

func TestAggregatorEarlyTerminationCutoff(t *testing.T) {
	obs := obsSeq(500)

	// Find the in-order cutoff.
	ref := NewStreamAggregator(Alpha95, 0.05, 10)
	cut := uint64(0)
	for i, o := range obs {
		if ref.Offer(uint64(i), o) {
			cut = ref.DoneAt()
			break
		}
	}
	if cut == 0 || cut == uint64(len(obs)) {
		t.Fatalf("expected an interior cutoff, got %d", cut)
	}

	// Deliver in reverse order: the cutoff must be identical because the
	// decision only ever fires on in-order prefixes.
	rev := NewStreamAggregator(Alpha95, 0.05, 10)
	for i := len(obs) - 1; i >= 0; i-- {
		rev.Offer(uint64(i), obs[i])
	}
	if !rev.Done() || rev.DoneAt() != cut {
		t.Fatalf("reverse delivery cut at %d (done=%v), in-order cut at %d",
			rev.DoneAt(), rev.Done(), cut)
	}
	if rev.Merged() != cut {
		t.Fatalf("merged %d beyond cutoff %d", rev.Merged(), cut)
	}
}

func TestAggregatorMinUnitsFloor(t *testing.T) {
	// Identical observations have zero variance: without a floor the CI
	// target would be met at n=2.
	a := NewStreamAggregator(Alpha997, 0.01, 25)
	for i := 0; i < 24; i++ {
		if a.Offer(uint64(i), Obs{CPI: 1, EPI: 1}) {
			t.Fatalf("terminated at n=%d, below the floor", i+1)
		}
	}
	if !a.Offer(24, Obs{CPI: 1, EPI: 1}) {
		t.Fatal("did not terminate once the floor was reached")
	}
}
