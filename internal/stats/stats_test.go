package stats_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// TestZValues checks the paper's critical values.
func TestZValues(t *testing.T) {
	if z := stats.Z(stats.Alpha997); math.Abs(z-2.97) > 0.02 {
		t.Errorf("Z(0.003) = %.4f, want ~2.97 (the paper rounds to 3)", z)
	}
	if z := stats.Z(stats.Alpha95); math.Abs(z-1.96) > 0.01 {
		t.Errorf("Z(0.05) = %.4f, want ~1.96", z)
	}
	if z := stats.Z(0.5); math.Abs(z-0.6745) > 0.001 {
		t.Errorf("Z(0.5) = %.4f, want 0.6745", z)
	}
}

// TestWelfordAgainstDirect property-checks the online moments against a
// two-pass computation.
func TestWelfordAgainstDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(500)
		xs := make([]float64, n)
		var s stats.Sample
		for i := range xs {
			xs[i] = rng.NormFloat64()*5 + 10
			s.Add(xs[i])
		}
		mean := stats.Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		direct := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 &&
			math.Abs(s.Variance()-direct) < 1e-6*math.Max(1, direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestRequiredN checks the paper's sizing identity: with CV ~1.0, ±3% at
// 99.7% needs n ≈ 10,000 (the paper's n_init conjecture, Section 5.1).
func TestRequiredN(t *testing.T) {
	n := stats.RequiredN(1.0, stats.Alpha997, 0.03)
	if n < 9000 || n > 11000 {
		t.Errorf("RequiredN(1.0, 99.7%%, 3%%) = %d, want ~10,000", n)
	}
	// n scales with CV².
	n2 := stats.RequiredN(2.0, stats.Alpha997, 0.03)
	if ratio := float64(n2) / float64(n); ratio < 3.9 || ratio > 4.1 {
		t.Errorf("n(2·CV)/n(CV) = %.2f, want 4", ratio)
	}
	// Degenerate inputs clamp to the minimum meaningful sample.
	if n := stats.RequiredN(0, stats.Alpha997, 0.03); n != 2 {
		t.Errorf("RequiredN(0) = %d, want 2", n)
	}
}

// TestEstimateCoverage is the statistical soundness check: across many
// trials of sampling a synthetic population, the (1-alpha) confidence
// interval contains the true mean at least roughly (1-alpha) of the time.
func TestEstimateCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Population: lognormal-ish CPI-like values.
	pop := make([]float64, 100_000)
	for i := range pop {
		pop[i] = math.Exp(rng.NormFloat64()*0.5) + 0.3
	}
	truth := stats.Mean(pop)

	const trials = 400
	const n = 200
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var s stats.Sample
		for i := 0; i < n; i++ {
			s.Add(pop[rng.Intn(len(pop))])
		}
		e := s.Estimate(stats.Alpha95)
		if math.Abs(e.Mean-truth) <= e.AbsCI() {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 {
		t.Errorf("95%% CI covered truth in %.1f%% of trials, want >= 90%%", rate*100)
	}
}

// TestSystematicIndices checks phase arithmetic.
func TestSystematicIndices(t *testing.T) {
	idx := stats.SystematicIndices(10, 3, 1)
	want := []uint64{1, 4, 7}
	if len(idx) != len(want) {
		t.Fatalf("got %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("got %v, want %v", idx, want)
		}
	}
}

// TestSystematicBiasZeroForFullCoverage: with k=1 every phase measures
// everything, so bias is zero.
func TestSystematicBiasZeroForFullCoverage(t *testing.T) {
	pop := []float64{1, 2, 3, 4, 5, 6}
	if b := stats.SystematicBias(pop, 1, 0); b != 0 {
		t.Errorf("bias = %v, want 0", b)
	}
}

// TestSystematicBiasExactAveragesToZero: the average of *all* k phase
// means equals the population mean when k divides N, so the exact bias
// is zero — a textbook identity the implementation must satisfy.
func TestSystematicBiasExactAveragesToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pop := make([]float64, 120)
	for i := range pop {
		pop[i] = rng.Float64() * 10
	}
	if b := stats.SystematicBias(pop, 4, 4); math.Abs(b) > 1e-9 {
		t.Errorf("exact systematic bias = %v, want 0", b)
	}
}

// TestIntraclassCorrelation: i.i.d. populations have δ ≈ 0; a cyclic
// population at the sampling period has strong positive δ.
func TestIntraclassCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	iid := make([]float64, 10_000)
	for i := range iid {
		iid[i] = rng.NormFloat64()
	}
	if d := stats.IntraclassCorrelation(iid, 10); math.Abs(d) > 0.05 {
		t.Errorf("i.i.d. δ = %v, want ~0", d)
	}
	// Perfectly cyclic with period 10: systematic sampling at k=10 sees
	// constant values per phase -> δ near 1.
	cyc := make([]float64, 10_000)
	for i := range cyc {
		cyc[i] = float64(i % 10)
	}
	if d := stats.IntraclassCorrelation(cyc, 10); d < 0.9 {
		t.Errorf("cyclic δ = %v, want ~1", d)
	}
}

// TestEstimateString smoke-tests formatting.
func TestEstimateString(t *testing.T) {
	var s stats.Sample
	s.AddAll([]float64{1, 2, 3, 4})
	e := s.Estimate(stats.Alpha95)
	if e.String() == "" {
		t.Error("empty String()")
	}
	if e.Mean != 2.5 {
		t.Errorf("mean %v", e.Mean)
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("min/max %v/%v", s.Min(), s.Max())
	}
}

// TestMeets checks the CI target predicate.
func TestMeets(t *testing.T) {
	e := stats.Estimate{RelCI: 0.02}
	if !e.Meets(0.03) || e.Meets(0.01) {
		t.Error("Meets misbehaves")
	}
}
