// Package stats implements the inferential statistics of Section 2 of
// the SMARTS paper: sample mean and coefficient-of-variation estimation,
// confidence intervals at a configurable confidence level, the minimal
// sample size n for a target confidence, systematic-sampling phase bias,
// and the intraclass correlation coefficient used to justify treating a
// systematic sample like a simple random sample.
package stats

import (
	"fmt"
	"math"
)

// Z returns the two-sided standard-normal critical value for confidence
// level 1-alpha: the [100(1-alpha/2)]th percentile of N(0,1). Z(0.003) is
// approximately 3 (the paper's "99.7% confidence"); Z(0.05) is about
// 1.96.
func Z(alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: alpha %v out of (0,1)", alpha))
	}
	return math.Sqrt2 * math.Erfinv(1-alpha)
}

// Common confidence levels used throughout the paper.
const (
	// Alpha997 gives the paper's "99.7% confidence" (three sigma).
	Alpha997 = 0.003
	// Alpha95 gives 95% confidence.
	Alpha95 = 0.05
)

// Sample accumulates observations with Welford's online algorithm, so a
// million sampling units cost O(1) memory.
type Sample struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll records a slice of observations.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() uint64 { return s.n }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return s.mean }

// Min and Max return the extremes.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CV returns the coefficient of variation, the standard deviation
// normalized by the mean (the paper's V̂_x). Zero-mean samples return 0.
func (s *Sample) CV() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.StdDev() / math.Abs(s.mean)
}

// Estimate is a sample-derived mean estimate with its confidence.
type Estimate struct {
	// Mean is the point estimate x̄.
	Mean float64
	// N is the number of sampling units measured.
	N uint64
	// CV is the measured coefficient of variation V̂.
	CV float64
	// Alpha is the confidence parameter: the confidence level is 1-Alpha.
	Alpha float64
	// RelCI is the relative half-width of the confidence interval:
	// the estimate is Mean*(1 ± RelCI) at confidence 1-Alpha.
	RelCI float64
}

// Estimate computes the mean estimate and its confidence interval at
// confidence level 1-alpha, using the paper's formula
// ±(z·V̂/√n)·x̄ (Section 2).
func (s *Sample) Estimate(alpha float64) Estimate {
	e := Estimate{
		Mean:  s.mean,
		N:     s.n,
		CV:    s.CV(),
		Alpha: alpha,
	}
	if s.n > 1 {
		e.RelCI = Z(alpha) * e.CV / math.Sqrt(float64(s.n))
	}
	return e
}

// AbsCI returns the absolute half-width of the confidence interval.
func (e Estimate) AbsCI() float64 { return e.RelCI * math.Abs(e.Mean) }

// Meets reports whether the estimate achieves a relative confidence
// interval no wider than eps (e.g. 0.03 for ±3%).
func (e Estimate) Meets(eps float64) bool { return e.RelCI <= eps }

// String renders the estimate in the paper's style.
func (e Estimate) String() string {
	return fmt.Sprintf("%.4g ±%.2f%% (%.4g%% conf., n=%d, V̂=%.3f)",
		e.Mean, e.RelCI*100, (1-e.Alpha)*100, e.N, e.CV)
}

// RequiredN returns the minimal sample size n that achieves a relative
// confidence interval of ±eps at confidence 1-alpha for a population
// with coefficient of variation cv: n ≥ (z·cv/eps)² (Section 2).
func RequiredN(cv, alpha, eps float64) uint64 {
	if eps <= 0 {
		panic("stats: eps must be positive")
	}
	z := Z(alpha)
	n := math.Ceil(math.Pow(z*cv/eps, 2))
	if n < 2 {
		return 2
	}
	return uint64(n)
}

// TunedN returns the follow-up sample size given the V̂ measured on an
// initial sample (the paper's n_tuned = ((z·V̂)/ε)², Section 5.1), with a
// small overshoot factor as the paper recommends when the initial
// confidence misses the target badly.
func TunedN(measuredCV, alpha, eps, overshoot float64) uint64 {
	n := RequiredN(measuredCV, alpha, eps)
	if overshoot > 1 {
		n = uint64(math.Ceil(float64(n) * overshoot))
	}
	return n
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// CVOf returns the coefficient of variation of xs.
func CVOf(xs []float64) float64 {
	var s Sample
	s.AddAll(xs)
	return s.CV()
}

// SystematicIndices returns the population indices selected by a
// systematic sample of the integers [0,N) with interval k and phase j:
// j, j+k, j+2k, … . The paper samples units this way (Section 3.1).
func SystematicIndices(n, k, j uint64) []uint64 {
	if k == 0 {
		panic("stats: zero sampling interval")
	}
	var idx []uint64
	for i := j; i < n; i += k {
		idx = append(idx, i)
	}
	return idx
}

// SystematicBias computes the bias of systematic sampling of the given
// population at interval k: the average over all k phases of the phase
// sample mean, minus the true population mean (the paper's B(x̄) = Σx̄/k
// − X̄, Section 2). For the exact computation every phase is evaluated;
// pass phases < k to approximate with evenly spaced phases as the paper
// does in Section 4.3 (5 phases).
func SystematicBias(population []float64, k, phases uint64) float64 {
	if len(population) == 0 || k == 0 {
		return 0
	}
	if phases == 0 || phases > k {
		phases = k
	}
	truth := Mean(population)
	var total float64
	for p := uint64(0); p < phases; p++ {
		j := p * k / phases
		var s Sample
		for i := j; i < uint64(len(population)); i += k {
			s.Add(population[i])
		}
		if s.N() > 0 {
			total += s.Mean() - truth
		}
	}
	return total / float64(phases)
}

// IntraclassCorrelation estimates the intraclass correlation coefficient
// δ of a population arranged into systematic samples at interval k. A
// magnitude near zero means systematic sampling behaves like simple
// random sampling (the paper verifies |δ| on the order of 1e-6).
//
// The estimator follows Cochran: δ = (MSB−MSW) / (MSB+(m−1)·MSW) with
// classes formed by phase, where m is the per-class size.
func IntraclassCorrelation(population []float64, k uint64) float64 {
	n := uint64(len(population))
	if k < 2 || n < 2*k {
		return 0
	}
	m := n / k // observations per class (truncate ragged tail)
	grand := 0.0
	count := 0.0
	classMeans := make([]float64, k)
	for j := uint64(0); j < k; j++ {
		var s float64
		for i := uint64(0); i < m; i++ {
			s += population[j+i*k]
		}
		classMeans[j] = s / float64(m)
		grand += s
		count += float64(m)
	}
	grand /= count

	var ssb, ssw float64
	for j := uint64(0); j < k; j++ {
		d := classMeans[j] - grand
		ssb += float64(m) * d * d
		for i := uint64(0); i < m; i++ {
			e := population[j+i*k] - classMeans[j]
			ssw += e * e
		}
	}
	msb := ssb / float64(k-1)
	msw := ssw / float64(k*(m-1))
	den := msb + float64(m-1)*msw
	if den == 0 {
		return 0
	}
	return (msb - msw) / den
}
