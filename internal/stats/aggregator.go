package stats

// Obs is one sampling unit's pair of observations.
type Obs struct {
	CPI, EPI float64
}

// StreamAggregator merges per-unit observations that arrive in arbitrary
// order (from parallel workers) into deterministic stream-order Welford
// accumulation, with optional early termination once a target confidence
// interval is reached.
//
// Determinism is the point: floating-point accumulation is not
// associative, so merging results in completion order would make the
// estimate depend on worker scheduling. The aggregator instead buffers
// out-of-order arrivals and folds each observation into the Samples only
// when its stream-order predecessor has been folded, so the final mean,
// CV, and confidence interval are bit-identical for any worker count —
// including one. The early-termination decision is likewise taken only
// on in-order prefixes, so the cutoff is a pure function of the sample
// sequence, not of scheduling.
type StreamAggregator struct {
	cpi, epi Sample
	next     uint64
	pending  map[uint64]Obs

	alpha, eps float64
	minN       uint64
	done       bool
	doneAt     uint64
}

// NewStreamAggregator builds an aggregator targeting a relative CPI
// confidence interval of ±eps at confidence 1-alpha. eps <= 0 disables
// early termination. minN is the minimum number of in-order units
// before termination may trigger (guarding against a luckily tight CI
// on a handful of units); values below 2 are raised to 2.
func NewStreamAggregator(alpha, eps float64, minN uint64) *StreamAggregator {
	if minN < 2 {
		minN = 2
	}
	return &StreamAggregator{
		pending: make(map[uint64]Obs),
		alpha:   alpha,
		eps:     eps,
		minN:    minN,
	}
}

// Offer delivers the observation for stream position seq (0-based). It
// may arrive in any order; each position must be offered exactly once.
// It returns true once the early-termination target has been met.
func (a *StreamAggregator) Offer(seq uint64, o Obs) bool {
	if a.done && seq >= a.doneAt {
		return true // beyond the cutoff; surplus speculative work
	}
	if seq != a.next {
		a.pending[seq] = o
		return a.done
	}
	a.fold(o)
	for {
		nxt, ok := a.pending[a.next]
		if !ok {
			break
		}
		delete(a.pending, a.next)
		a.fold(nxt)
	}
	return a.done
}

func (a *StreamAggregator) fold(o Obs) {
	if a.done {
		a.next++
		return
	}
	a.cpi.Add(o.CPI)
	a.epi.Add(o.EPI)
	a.next++
	if a.eps > 0 && a.cpi.N() >= a.minN && a.cpi.Estimate(a.alpha).Meets(a.eps) {
		a.done = true
		a.doneAt = a.next
	}
}

// Done reports whether the early-termination target has been met.
func (a *StreamAggregator) Done() bool { return a.done }

// DoneAt returns the stream length at which termination triggered (the
// number of units the estimate keeps); zero while not done.
func (a *StreamAggregator) DoneAt() uint64 { return a.doneAt }

// Merged returns the number of observations folded into the estimate.
func (a *StreamAggregator) Merged() uint64 { return a.cpi.N() }

// CPISample and EPISample return the folded samples.
func (a *StreamAggregator) CPISample() *Sample { return &a.cpi }

// EPISample returns the folded EPI sample.
func (a *StreamAggregator) EPISample() *Sample { return &a.epi }

// CPIEstimate returns the CPI estimate at the aggregator's confidence.
func (a *StreamAggregator) CPIEstimate() Estimate { return a.cpi.Estimate(a.alpha) }
