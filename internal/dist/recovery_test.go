package dist

// Coordinator crash/recovery matrix: the write-ahead run journal, the
// restarted coordinator's replay, the client's re-attach, and the
// end-to-end integrity seals. Every scenario asserts the re-attached
// client's final report bit-identical to the local engine and, where
// the journal bounds work, that the fleet did not redo journaled
// replay.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/sim"
)

func testJournalHeader(id string) journalRun {
	return journalRun{
		ID:    id,
		Req:   wireRequest{Workload: testBench, Length: testLen, U: 10_000},
		Spec:  runSpec{Workload: testBench, Length: testLen, Plan: planSpec{U: 10_000, W: 2_000}},
		Total: 60,
		Pop:   60,
	}
}

func sealedUnit(seq int) wireUnit {
	u := wireUnit{Seq: seq, Index: uint64(seq) * 7, Cycles: 1000 + uint64(seq),
		EnergyNJ: 1.5, CPI: 0.9, EPI: 2.1, Warming: 42}
	u.Digest = u.digest()
	return u
}

func mustEncode(t *testing.T, ln journalLine) []byte {
	t.Helper()
	b, err := encodeJournalLine(ln)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunJournalParse drives parseRunJournal through the defect matrix:
// every corruption degrades to the longest valid prefix, never a wrong
// or resurrected record.
func TestRunJournalParse(t *testing.T) {
	hdr := testJournalHeader("r-parse")
	u1, u2 := sealedUnit(0), sealedUnit(1)
	dn := journalDone{Idx: 1, Done: shardDone{Captured: 60, Population: 60, Swept: true}}
	var good bytes.Buffer
	good.Write(mustEncode(t, journalLine{Run: &hdr}))
	good.Write(mustEncode(t, journalLine{Shards: []journalShard{{Lo: 0, Hi: 30, Idx: 0}, {Lo: 30, Hi: 60, Idx: 1}}}))
	good.Write(mustEncode(t, journalLine{Unit: &u1}))
	good.Write(mustEncode(t, journalLine{Unit: &u2}))
	good.Write(mustEncode(t, journalLine{Done: &dn}))

	rec, ok := parseRunJournal(good.Bytes())
	if !ok || rec.hdr.ID != "r-parse" || len(rec.shards) != 2 || len(rec.units) != 2 || len(rec.dones) != 1 {
		t.Fatalf("clean journal: ok=%v hdr=%q shards=%d units=%d dones=%d",
			ok, rec.hdr.ID, len(rec.shards), len(rec.units), len(rec.dones))
	}
	if rec.units[1] != u2 || rec.dones[0].Idx != 1 {
		t.Fatal("clean journal: recovered records differ from written ones")
	}

	t.Run("torn tail", func(t *testing.T) {
		torn := append(append([]byte(nil), good.Bytes()...), mustEncode(t, journalLine{Unit: &u1})[:17]...)
		rec, ok := parseRunJournal(torn)
		if !ok || len(rec.units) != 2 || len(rec.dones) != 1 {
			t.Fatalf("torn tail: ok=%v units=%d dones=%d, want full prefix", ok, len(rec.units), len(rec.dones))
		}
	})
	t.Run("corrupt line checksum", func(t *testing.T) {
		data := append([]byte(nil), good.Bytes()...)
		// Flip a byte inside the THIRD line's JSON (the first unit).
		third := bytes.Index(data, []byte(`"unit"`))
		data[third+10] ^= 0x40
		rec, ok := parseRunJournal(data)
		if !ok || len(rec.units) != 0 || len(rec.shards) != 2 {
			t.Fatalf("corrupt line: ok=%v units=%d shards=%d, want prefix ending before the bad unit",
				ok, len(rec.units), len(rec.shards))
		}
	})
	t.Run("spliced second header", func(t *testing.T) {
		hdr2 := testJournalHeader("r-impostor")
		data := append(append([]byte(nil), good.Bytes()...), mustEncode(t, journalLine{Run: &hdr2})...)
		rec, ok := parseRunJournal(data)
		if !ok || rec.hdr.ID != "r-parse" || len(rec.units) != 2 {
			t.Fatalf("spliced header: ok=%v hdr=%q units=%d, want original prefix", ok, rec.hdr.ID, len(rec.units))
		}
	})
	t.Run("unit digest mismatch", func(t *testing.T) {
		bad := sealedUnit(5)
		bad.Cycles ^= 1 // valid line checksum, corrupt measurement
		data := append(append([]byte(nil), good.Bytes()...), mustEncode(t, journalLine{Unit: &bad})...)
		data = append(data, mustEncode(t, journalLine{Unit: &u1})...) // after the defect: must not be trusted
		rec, ok := parseRunJournal(data)
		if !ok || len(rec.units) != 2 {
			t.Fatalf("digest mismatch: ok=%v units=%d, want prefix without the corrupt unit", ok, len(rec.units))
		}
	})
	t.Run("no header", func(t *testing.T) {
		if _, ok := parseRunJournal(mustEncode(t, journalLine{Unit: &u1})); ok {
			t.Fatal("headerless journal parsed as recoverable")
		}
	})
}

// TestRunJournalWriteLoad round-trips a journal through the append path
// and the directory loader, including the remove-on-terminal contract.
func TestRunJournalWriteLoad(t *testing.T) {
	dir := t.TempDir()
	hdr := testJournalHeader("r-wl")
	j, err := writeRunJournal(dir, hdr.ID, nil, journalLine{Run: &hdr})
	if err != nil {
		t.Fatal(err)
	}
	u := sealedUnit(3)
	j.append(journalLine{Shards: []journalShard{{Lo: 0, Hi: 60, Idx: 0}}})
	j.append(journalLine{Unit: &u})
	j.close()

	runs := loadRunJournals(dir, nil)
	if len(runs) != 1 || runs[0].hdr.ID != hdr.ID || len(runs[0].units) != 1 || runs[0].units[0] != u {
		t.Fatalf("load after close: %d run(s), want the appended journal back", len(runs))
	}

	// Garbage appended after a crash parses back to the same prefix, and
	// compaction (journalLines → writeRunJournal) drops it from disk.
	path := runJournalPath(dir, hdr.ID)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("deadbeef {\"unit\":")
	f.Close()
	runs = loadRunJournals(dir, nil)
	if len(runs) != 1 || len(runs[0].units) != 1 {
		t.Fatalf("load with torn tail: got %d run(s), want the valid prefix", len(runs))
	}
	j2, err := writeRunJournal(dir, hdr.ID, nil, runs[0].journalLines()...)
	if err != nil {
		t.Fatal(err)
	}
	if again := loadRunJournals(dir, nil); len(again) != 1 || len(again[0].units) != 1 {
		t.Fatal("compacted journal does not reload")
	}
	j2.remove()
	if left := loadRunJournals(dir, nil); len(left) != 0 {
		t.Fatalf("journal survives remove: %d run(s)", len(left))
	}
}

// recoverableCluster is a loopback fleet whose coordinator can be
// "restarted": the public URL stays fixed while the handler behind it
// swaps to a fresh NewCoordinator over the same store directory —
// exactly a process restart on the same port, as clients and workers
// observe it.
type recoverableCluster struct {
	t        *testing.T
	storeDir string
	url      string

	mu      sync.Mutex
	coord   *Coordinator
	handler http.Handler

	workers []*Worker
}

func newRecoverableCluster(t *testing.T, copt Options, nWorkers int) *recoverableCluster {
	t.Helper()
	rc := &recoverableCluster{t: t, storeDir: copt.StoreDir}
	coord, err := NewCoordinator(copt)
	if err != nil {
		t.Fatal(err)
	}
	rc.coord, rc.handler = coord, coord.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rc.mu.Lock()
		h := rc.handler
		rc.mu.Unlock()
		h.ServeHTTP(rw, r)
	}))
	t.Cleanup(srv.Close)
	rc.url = srv.URL

	hbCtx, hbCancel := context.WithCancel(context.Background())
	t.Cleanup(hbCancel)
	for i := 0; i < nWorkers; i++ {
		var h http.Handler
		wsrv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			h.ServeHTTP(rw, r)
		}))
		t.Cleanup(wsrv.Close)
		w := NewWorker(WorkerOptions{
			Coordinator:  srv.URL,
			Self:         wsrv.URL,
			Workers:      1,
			PollInterval: 5 * time.Millisecond,
			RetryBase:    time.Millisecond,
			Heartbeat:    20 * time.Millisecond,
		})
		h = w.Handler()
		if err := w.Register(context.Background()); err != nil {
			t.Fatal(err)
		}
		// The heartbeat loop is the re-registration path: a restarted
		// coordinator 404s the beat, and the worker re-registers.
		go w.Heartbeat(hbCtx)
		rc.workers = append(rc.workers, w)
	}
	return rc
}

// awaitKillAndRestart blocks until the current coordinator dies
// (FaultKillCoordinator), then installs a fresh incarnation over the
// same store directory behind the same URL.
func (rc *recoverableCluster) awaitKillAndRestart(copt Options) error {
	rc.mu.Lock()
	dead := rc.coord
	rc.mu.Unlock()
	for !dead.killed() {
		time.Sleep(time.Millisecond)
	}
	copt.StoreDir = rc.storeDir
	next, err := NewCoordinator(copt)
	if err != nil {
		return err
	}
	rc.mu.Lock()
	rc.coord, rc.handler = next, next.Handler()
	rc.mu.Unlock()
	return nil
}

func (rc *recoverableCluster) replayedTotal() uint64 {
	var n uint64
	for _, w := range rc.workers {
		n += w.ReplayedUnits()
	}
	return n
}

// TestCoordinatorKillRecovery is the tentpole e2e, swept across kill
// points from the first merged unit to deep in the stream: the
// coordinator dies mid-run, a fresh incarnation over the same store
// recovers the journaled run, the workers re-register via bounced
// heartbeats, the client re-attaches — and the final report is
// bit-identical with the journaled merge prefix never re-replayed.
func TestCoordinatorKillRecovery(t *testing.T) {
	req := testRequest()
	want := baseline(t, req)
	total := len(want.Units)

	for _, after := range []int{0, 7, 25, 55} {
		t.Run(fmt.Sprintf("kill-after-%d", after), func(t *testing.T) {
			f := NewFaults()
			rc := newRecoverableCluster(t, Options{StoreDir: t.TempDir(), Faults: f}, 2)
			f.Arm(FaultKillCoordinator, after, 1)

			restartErr := make(chan error, 1)
			go func() { restartErr <- rc.awaitKillAndRestart(Options{}) }()

			client := NewClient(rc.url)
			client.RetryBase = time.Millisecond
			client.RetryMax = 50 * time.Millisecond

			var reattaches atomic.Int32
			runReq := testRequest()
			runReq.Progress = func(ev sim.Progress) {
				if ev.Kind == sim.EventReattach {
					reattaches.Add(1)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			rep, err := client.Run(ctx, runReq)
			if err != nil {
				t.Fatalf("run across coordinator restart: %v", err)
			}
			if err := <-restartErr; err != nil {
				t.Fatalf("restart: %v", err)
			}
			sameMeasurement(t, "recovered run", rep.Result(), want)
			if n := f.Fired(FaultKillCoordinator); n != 1 {
				t.Fatalf("kill-coordinator fired %d times, want 1", n)
			}
			if reattaches.Load() == 0 {
				t.Fatal("client never re-attached: the kill cannot have severed the stream")
			}
			// The journal bounds replay work: the >= after+1 units merged
			// (journaled) before the kill are never re-dispatched, so the
			// fleet replays strictly less than two full runs.
			if n := rc.replayedTotal(); n > uint64(2*total-(after+1)) {
				t.Fatalf("fleet replayed %d units across the crash, want <= %d (journaled prefix re-run?)",
					n, 2*total-(after+1))
			}
		})
	}
}

// TestCorruptFrameQuarantine injects a bit flip into a streamed unit
// AFTER its digest was sealed: the coordinator must detect the
// mismatch, quarantine the offending worker (stickily), requeue the
// shard's unverified suffix to the survivor, and still produce the
// bit-identical report.
func TestCorruptFrameQuarantine(t *testing.T) {
	req := testRequest()
	want := baseline(t, req)

	f := NewFaults()
	cl := newFaultCluster(t, Options{}, []WorkerOptions{{Faults: f}, {}})
	f.Arm(FaultCorruptFrame, 5, 1)

	var quarantines atomic.Int32
	req.Progress = func(ev sim.Progress) {
		if ev.Kind == sim.EventQuarantine {
			quarantines.Add(1)
		}
	}
	rep, err := cl.coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "quarantine run", rep.Result(), want)
	if n := f.Fired(FaultCorruptFrame); n != 1 {
		t.Fatalf("corrupt-frame fired %d times, want 1", n)
	}
	if n := quarantines.Load(); n != 1 {
		t.Fatalf("saw %d EventQuarantine events, want 1", n)
	}
	if n := len(cl.coord.liveWorkers()); n != 1 {
		t.Fatalf("%d live workers after quarantine, want 1 (offender evicted)", n)
	}
	// Quarantine is sticky: a revive-by-registration must not clear it.
	for _, w := range cl.coord.workers {
		if w.quarantined {
			w.beat()
			if w.alive() {
				t.Fatal("beat revived a quarantined worker")
			}
		}
	}
}

// TestCorruptJournalUnitRecovery corrupts one journaled unit's bytes on
// disk between incarnations: recovery must stop trusting the journal at
// the defect and re-run the suffix, still bit-identical.
func TestCorruptJournalUnitRecovery(t *testing.T) {
	req := testRequest()
	want := baseline(t, req)
	total := len(want.Units)

	f := NewFaults()
	dir := t.TempDir()
	rc := newRecoverableCluster(t, Options{StoreDir: dir, Faults: f}, 2)
	f.Arm(FaultKillCoordinator, 20, 1)

	restartErr := make(chan error, 1)
	go func() {
		rc.mu.Lock()
		dead := rc.coord
		rc.mu.Unlock()
		for !dead.killed() {
			time.Sleep(time.Millisecond)
		}
		// Corrupt the tail of every journal: flip one byte in the last
		// full line's JSON payload.
		for _, rec := range loadRunJournals(dir, nil) {
			path := runJournalPath(dir, rec.hdr.ID)
			data, err := os.ReadFile(path)
			if err != nil || len(data) < 2 {
				continue
			}
			data[len(data)-3] ^= 0x01
			os.WriteFile(path, data, 0o644)
		}
		restartErr <- rc.awaitKillAndRestart(Options{})
	}()

	client := NewClient(rc.url)
	client.RetryBase = time.Millisecond
	client.RetryMax = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := client.Run(ctx, testRequest())
	if err != nil {
		t.Fatalf("run across restart with corrupted journal: %v", err)
	}
	if err := <-restartErr; err != nil {
		t.Fatalf("restart: %v", err)
	}
	sameMeasurement(t, "corrupt-journal recovery", rep.Result(), want)
	if n := rc.replayedTotal(); n > uint64(2*total) {
		t.Fatalf("fleet replayed %d units, want <= %d", n, 2*total)
	}
}

// TestChaosSoak (env-gated: DIST_CHAOS_SOAK=1) runs the crash matrix
// repeatedly with a deterministically varied kill point and a worker
// kill layered on top — the long-haul confidence check CI runs on its
// chaos job.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("DIST_CHAOS_SOAK") == "" {
		t.Skip("set DIST_CHAOS_SOAK=1 to run the chaos soak")
	}
	req := testRequest()
	want := baseline(t, req)

	for round := 0; round < 6; round++ {
		round := round
		t.Run(fmt.Sprintf("round-%d", round), func(t *testing.T) {
			cf := NewFaults()
			wf := NewFaults()
			rc := newRecoverableCluster(t, Options{StoreDir: t.TempDir(), Faults: cf}, 2)
			rc.workers[0].opt.Faults = wf
			// Deterministic spread of kill points across rounds; every other
			// round also severs a worker stream mid-flight.
			cf.Arm(FaultKillCoordinator, (round*17)%50, 1)
			if round%2 == 1 {
				wf.Arm(FaultKillMidStream, (round*5)%20, 1)
			}

			restartErr := make(chan error, 1)
			go func() { restartErr <- rc.awaitKillAndRestart(Options{}) }()

			client := NewClient(rc.url)
			client.RetryBase = time.Millisecond
			client.RetryMax = 50 * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			rep, err := client.Run(ctx, testRequest())
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if err := <-restartErr; err != nil {
				t.Fatalf("round %d restart: %v", round, err)
			}
			sameMeasurement(t, fmt.Sprintf("chaos round %d", round), rep.Result(), want)
		})
	}
}
