package dist

// The deterministic crash/resume matrix: every scenario here drives the
// fleet through an injected fault (see faults.go) at a reproducible
// trigger point and asserts the run still completes with a report
// bit-identical to the local single-process engine — and, for the sweep
// handoff, that the journaled resume actually bounded the duplicated
// work.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/uarch"
	"repro/sim"
)

// newFaultCluster wires a coordinator and one loopback worker per
// WorkerOptions entry (Coordinator/Self filled in; fast polling and
// retry defaults applied unless set). Fault plans are armed by the
// caller after this returns, so registration RPCs never consume
// occurrences.
func newFaultCluster(t *testing.T, copt Options, wopts []WorkerOptions) *cluster {
	t.Helper()
	coord, err := NewCoordinator(copt)
	if err != nil {
		t.Fatal(err)
	}
	csrv := httptest.NewServer(coord.Handler())
	t.Cleanup(csrv.Close)
	cl := &cluster{coord: coord, coordURL: csrv.URL}
	for i := range wopts {
		opt := wopts[i]
		opt.Coordinator = csrv.URL
		if opt.Workers == 0 {
			opt.Workers = 1
		}
		if opt.PollInterval == 0 {
			opt.PollInterval = 5 * time.Millisecond
		}
		if opt.RetryBase == 0 {
			opt.RetryBase = time.Millisecond
		}
		var h http.Handler
		wsrv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			h.ServeHTTP(rw, r)
		}))
		t.Cleanup(wsrv.Close)
		opt.Self = wsrv.URL
		w := NewWorker(opt)
		h = w.Handler()
		if err := w.Register(context.Background()); err != nil {
			t.Fatal(err)
		}
		cl.workers = append(cl.workers, w)
	}
	return cl
}

func (cl *cluster) sweepExecTotal() uint64 {
	var n uint64
	for _, w := range cl.workers {
		n += w.SweepExecInsts()
	}
	return n
}

// TestLeaseExpiryHandoff is the crash-safe sweep e2e: the sweep owner
// is killed mid-sweep (stream severed exactly as a process death), the
// lease expires, and the surviving worker wins the claim, resumes from
// the dead owner's uploaded journal, and finishes the run — with the
// report bit-identical to the local engine and the fleet-wide sweep
// work well under two cold sweeps.
func TestLeaseExpiryHandoff(t *testing.T) {
	req := testRequest()
	want := baseline(t, req)

	// Both workers arm the same kill: whichever wins the sweep claim
	// dies on its 51st captured unit. The survivor resumes from the
	// journal (keyframe 4, uploaded every keyframe), so its own capture
	// count stays far below the trigger — the fault fires exactly once
	// no matter which worker owned the sweep first.
	faults := []*Faults{NewFaults(), NewFaults()}
	wopts := []WorkerOptions{
		{Keyframe: 4, ResumeInterval: 1, Faults: faults[0]},
		{Keyframe: 4, ResumeInterval: 1, Faults: faults[1]},
	}
	cl := newFaultCluster(t, Options{LeaseTTL: 250 * time.Millisecond}, wopts)
	for _, f := range faults {
		f.Arm(FaultKillMidSweep, 50, 1)
	}

	rep, err := cl.coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "handoff run", rep.Result(), want)

	if fired := faults[0].Fired(FaultKillMidSweep) + faults[1].Fired(FaultKillMidSweep); fired != 1 {
		t.Fatalf("kill-mid-sweep fired %d times, want exactly 1", fired)
	}
	// The journaled handoff must beat two cold sweeps — and with a
	// 1-keyframe journal cadence the overlap is a handful of units, so
	// hold it to 1.5 sweeps.
	total := cl.sweepExecTotal()
	if total >= want.FastFwdInsts*3/2 {
		t.Fatalf("fleet executed %d sweep insts; want < 1.5x one sweep (%d)",
			total, want.FastFwdInsts)
	}
	if total <= want.FastFwdInsts {
		t.Fatalf("fleet executed %d sweep insts <= one sweep (%d); the kill cannot have happened",
			total, want.FastFwdInsts)
	}
}

// TestFaultKillMidStream kills a worker on its 6th replayed unit; the
// shard requeues to the survivor and the merged report is untouched.
func TestFaultKillMidStream(t *testing.T) {
	req := testRequest()
	want := baseline(t, req)

	f := NewFaults()
	cl := newFaultCluster(t, Options{}, []WorkerOptions{{Faults: f}, {}})
	f.Arm(FaultKillMidStream, 5, 1)

	rep, err := cl.coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "kill-mid-stream run", rep.Result(), want)
	if f.Fired(FaultKillMidStream) != 1 {
		t.Fatalf("kill-mid-stream fired %d times, want 1", f.Fired(FaultKillMidStream))
	}
}

// TestRetrySurfaced drops the worker's first two coordinator RPCs after
// dispatch (the sweep claim): the worker retries with backoff and each
// retried attempt surfaces as an EventRetry progress event naming the
// operation, while the run itself is unharmed.
func TestRetrySurfaced(t *testing.T) {
	req := testRequest()
	want := baseline(t, req)

	f := NewFaults()
	cl := newFaultCluster(t, Options{}, []WorkerOptions{{Faults: f}})
	f.Arm(FaultDropRPC, 0, 2)

	var mu sync.Mutex
	var retries []sim.Progress
	req.Progress = func(ev sim.Progress) {
		if ev.Kind == sim.EventRetry {
			mu.Lock()
			retries = append(retries, ev)
			mu.Unlock()
		}
	}
	rep, err := cl.coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "retried run", rep.Result(), want)
	if f.Fired(FaultDropRPC) != 2 {
		t.Fatalf("drop-rpc fired %d times, want 2", f.Fired(FaultDropRPC))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(retries) < 2 {
		t.Fatalf("got %d EventRetry events, want >= 2", len(retries))
	}
	for i, ev := range retries[:2] {
		if ev.Attempt != i+1 {
			t.Errorf("retry %d: Attempt = %d, want %d", i, ev.Attempt, i+1)
		}
		if !strings.Contains(ev.Note, "sweep claim") {
			t.Errorf("retry %d: Note %q does not name the operation", i, ev.Note)
		}
	}
}

// TestClientFallback points a client with a local fallback session at a
// dead coordinator: after its connect retries (each surfaced as
// EventRetry) it emits EventFallback and completes the run in-process,
// bit-identical to a plain local run.
func TestClientFallback(t *testing.T) {
	req := testRequest()
	want := baseline(t, req)

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens: every connect fails

	local, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	c := NewClient(dead.URL)
	c.Fallback = local
	c.Retries = 2
	c.RetryBase = time.Millisecond

	var mu sync.Mutex
	var retries, fallbacks int
	req.Progress = func(ev sim.Progress) {
		mu.Lock()
		switch ev.Kind {
		case sim.EventRetry:
			retries++
		case sim.EventFallback:
			fallbacks++
		}
		mu.Unlock()
	}
	rep, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "fallback run", rep.Result(), want)
	mu.Lock()
	defer mu.Unlock()
	if retries != 1 {
		t.Errorf("got %d EventRetry events, want 1 (2 attempts)", retries)
	}
	if fallbacks != 1 {
		t.Errorf("got %d EventFallback events, want 1", fallbacks)
	}
}

// TestClientNoFallbackOnRejection: a deterministic 4xx rejection must
// not degrade to a local run (it would fail or diverge identically).
func TestClientNoFallbackOnRejection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		http.Error(rw, "no such workload", http.StatusBadRequest)
	}))
	defer srv.Close()

	local, err := sim.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	c := NewClient(srv.URL)
	c.Fallback = local
	c.Retries = 2
	c.RetryBase = time.Millisecond
	if _, err := c.Run(context.Background(), testRequest()); err == nil {
		t.Fatal("run succeeded; want the coordinator's rejection surfaced")
	}
}

// TestHeartbeatExpiry: a worker that registered with a heartbeat
// interval and then fell silent leaves the live dispatch set after
// three intervals, and one beat restores it.
func TestHeartbeatExpiry(t *testing.T) {
	coord, err := NewCoordinator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord.addWorker("http://worker-a", 5*time.Millisecond)
	coord.AddWorker("http://worker-b") // no heartbeat: exempt from expiry

	if n := len(coord.liveWorkers()); n != 2 {
		t.Fatalf("live workers at registration = %d, want 2", n)
	}
	time.Sleep(60 * time.Millisecond)
	live := coord.liveWorkers()
	if len(live) != 1 || live[0].url != "http://worker-b" {
		t.Fatalf("after silence: live = %v, want only the heartbeat-less worker", workerURLs(live))
	}
	coord.workerByURL("http://worker-a").beat()
	if n := len(coord.liveWorkers()); n != 2 {
		t.Fatalf("live workers after beat = %d, want 2", n)
	}
}

func workerURLs(ws []*workerRef) []string {
	var urls []string
	for _, w := range ws {
		urls = append(urls, w.url)
	}
	return urls
}

// TestPartialEndpoints round-trips a journal through the coordinator's
// partial endpoints and verifies a corrupt upload is rejected without
// clobbering the good journal — the "corruption degrades, never
// poisons" half of the resume contract at the fleet layer.
func TestPartialEndpoints(t *testing.T) {
	prog := testProg(t)
	cfg := uarch.Config8Way()
	plan := sim.ResolvePlan(testRequest(), prog)
	params := plan.CheckpointParams()
	params.Keyframe = 4
	key := checkpoint.KeyFor(prog, cfg, params)
	hash := key.Hash()

	// Journal a genuine half-sweep so the uploaded bytes validate.
	var units []*checkpoint.Unit
	var rs *checkpoint.ResumeState
	params.OnFrame = func(fr checkpoint.ResumeFrame) {
		rs = &checkpoint.ResumeState{
			Units:           units[:fr.Captured],
			PopulationUnits: prog.Length / params.U,
			SweepInsts:      fr.SweepInsts,
			SweepTime:       fr.SweepTime,
			HaveIBlock:      fr.HaveIBlock,
			LastIBlock:      fr.LastIBlock,
		}
	}
	_, err := checkpoint.CaptureStream(context.Background(), prog, cfg, params, func(u *checkpoint.Unit) bool {
		units = append(units, u)
		return len(units) < 30
	})
	if err != nil || rs == nil {
		t.Fatalf("half-sweep failed: err=%v journal=%v", err, rs != nil)
	}

	coord, err := NewCoordinator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord.retainRun(hash, key, false)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	w := NewWorker(WorkerOptions{Coordinator: srv.URL, Self: "http://self"})
	if err := w.uploadPartial(context.Background(), key, rs, nil); err != nil {
		t.Fatalf("journal upload: %v", err)
	}
	got, err := w.fetchPartial(context.Background(), key)
	if err != nil || got == nil {
		t.Fatalf("journal fetch: rs=%v err=%v", got != nil, err)
	}
	if len(got.Units) != len(rs.Units) || got.SweepInsts != rs.SweepInsts {
		t.Fatalf("journal round-trip: got %d units @%d insts, want %d @%d",
			len(got.Units), got.SweepInsts, len(rs.Units), rs.SweepInsts)
	}

	// A corrupt upload must be rejected (400) and leave the good journal.
	hreq, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/partials/"+hash,
		strings.NewReader("not a journal"))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt journal upload: %s, want 400", resp.Status)
	}
	got, err = w.fetchPartial(context.Background(), key)
	if err != nil || got == nil || len(got.Units) != len(rs.Units) {
		t.Fatalf("good journal lost after corrupt upload: rs=%v err=%v", got != nil, err)
	}
}
