package dist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/sim"
)

// wireRequest is the serialized subset of sim.Request the distributed
// service accepts: one sampling plan over one workload. Modes that are
// local by nature — experiments, procedures, multi-offset phase runs,
// the classic serial loop — are rejected at the client (see
// distributable). Worker-pool sizing is a per-worker deployment
// setting, so Request.Workers does not travel.
type wireRequest struct {
	Workload string
	Length   uint64
	// Config is the simulated machine; nil selects the 8-way baseline
	// (mirroring the zero sim.Config).
	Config *uarch.Config

	U, W, N, K, J uint64
	Warming       int
	MaxUnits      int
	NoStore       bool

	TargetEps float64
	MinUnits  uint64
	Alpha     float64
}

// distributable rejects request modes the service does not shard.
func distributable(req *sim.Request) error {
	switch {
	case req == nil:
		return fmt.Errorf("dist: nil request")
	case req.Experiment != "":
		return fmt.Errorf("dist: experiment requests are not distributable; run them on a local session")
	case req.Procedure != nil:
		return fmt.Errorf("dist: procedure requests are not distributable; drive the two-step procedure from the client")
	case len(req.Offsets) > 0:
		return fmt.Errorf("dist: multi-offset phase requests are not distributable")
	case req.SerialLoop:
		return fmt.Errorf("dist: the classic serial loop cannot be sharded (its units are not independent)")
	case req.TwoPhase:
		return fmt.Errorf("dist: TwoPhase is a local scheduling knob; it does not apply to distributed runs")
	case req.Output != nil:
		return fmt.Errorf("dist: Output streams experiment text; it does not apply to distributed runs")
	case req.Workload == "":
		return fmt.Errorf("dist: request names no workload")
	case req.Alpha != 0 && (req.Alpha <= 0 || req.Alpha >= 1):
		return fmt.Errorf("dist: confidence parameter %v outside (0,1)", req.Alpha)
	}
	return nil
}

// wireFromRequest validates and serializes a request for the wire.
func wireFromRequest(req *sim.Request) (*wireRequest, error) {
	if err := distributable(req); err != nil {
		return nil, err
	}
	wr := &wireRequest{
		Workload:  req.Workload,
		Length:    req.Length,
		U:         req.U,
		W:         req.W,
		N:         req.N,
		K:         req.K,
		J:         req.J,
		Warming:   int(req.Warming),
		MaxUnits:  req.MaxUnits,
		NoStore:   req.NoStore,
		TargetEps: req.TargetEps,
		MinUnits:  req.MinUnits,
		Alpha:     req.Alpha,
	}
	if req.Config != (sim.Config{}) {
		cfg := req.Config
		wr.Config = &cfg
	}
	return wr, nil
}

// request reconstructs the sim.Request a wireRequest describes.
func (wr *wireRequest) request() *sim.Request {
	req := &sim.Request{
		Workload:  wr.Workload,
		Length:    wr.Length,
		U:         wr.U,
		W:         wr.W,
		N:         wr.N,
		K:         wr.K,
		J:         wr.J,
		Warming:   sim.WarmingMode(wr.Warming),
		MaxUnits:  wr.MaxUnits,
		NoStore:   wr.NoStore,
		TargetEps: wr.TargetEps,
		MinUnits:  wr.MinUnits,
		Alpha:     wr.Alpha,
	}
	if wr.Config != nil {
		req.Config = *wr.Config
	}
	return req
}

// planSpec is a resolved sampling plan on the wire. The coordinator
// resolves the request against the generated workload once and ships
// the result, so every shard of a run — including retries on other
// workers — replays under the identical plan.
type planSpec struct {
	U, W, K, J uint64
	Warming    int
	MaxUnits   int
}

func specFromPlan(pl smarts.Plan) planSpec {
	return planSpec{U: pl.U, W: pl.W, K: pl.K, J: pl.J, Warming: int(pl.Warming), MaxUnits: pl.MaxUnits}
}

func (ps planSpec) plan() smarts.Plan {
	return smarts.Plan{U: ps.U, W: ps.W, K: ps.K, J: ps.J, Warming: smarts.WarmingMode(ps.Warming), MaxUnits: ps.MaxUnits}
}

// runSpec is everything a worker needs to materialize a run's snapshot
// set: the workload regenerates deterministically from (name, length),
// the plan fixes the unit selection, and together with the config they
// derive the content-addressed sweep key.
type runSpec struct {
	Workload string
	Length   uint64
	Config   uarch.Config
	Plan     planSpec
}

// shardMsg assigns one contiguous range [Lo, Hi) of stream positions to
// a worker. Shard/Shards locate the range in the run for progress
// events.
type shardMsg struct {
	Spec          runSpec
	Lo, Hi        int
	Shard, Shards int
}

// wireUnit is one replayed unit streamed back from a worker, carrying
// the full engine measurement so the coordinator's merge reproduces the
// local collector's accounting bit for bit (float64 fields round-trip
// JSON exactly). Digest seals the measurement end to end: the worker
// computes it at replay, the coordinator recomputes it before every
// merger offer and before replaying a journaled unit at recovery, so a
// corrupt frame — on the wire, in a misbehaving worker, or in the run
// journal — is detected instead of folded into the estimate.
type wireUnit struct {
	Seq       int
	Index     uint64
	Cycles    uint64
	EnergyNJ  float64
	CPI, EPI  float64
	Warming   uint64
	ElapsedNs int64
	Partial   bool
	Digest    uint32 `json:",omitempty"`
}

// digest computes the unit's CRC-32C over every measurement field that
// feeds the merged estimate. ElapsedNs is excluded: it is per-worker
// wall clock, reported for observability, and irrelevant to the result.
func (u *wireUnit) digest() uint32 {
	var b [57]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(int64(u.Seq)))
	binary.LittleEndian.PutUint64(b[8:], u.Index)
	binary.LittleEndian.PutUint64(b[16:], u.Cycles)
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(u.EnergyNJ))
	binary.LittleEndian.PutUint64(b[32:], math.Float64bits(u.CPI))
	binary.LittleEndian.PutUint64(b[40:], math.Float64bits(u.EPI))
	binary.LittleEndian.PutUint64(b[48:], u.Warming)
	if u.Partial {
		b[56] = 1
	}
	return crc32.Checksum(b[:], wireCastagnoli)
}

// wireCastagnoli mirrors the checkpoint store's CRC-32C table for the
// dist layer's wire and journal digests.
var wireCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// shardDone is a shard stream's trailer: the sweep accounting of the
// set the shard replayed from.
type shardDone struct {
	Captured    int
	Population  uint64
	SweepInsts  uint64
	SweepTimeNs int64
	// Swept reports this worker ran the functional sweep itself (the
	// fleet singleflight made it the owner) rather than fetching it.
	Swept bool
}

// shardRecord is one NDJSON record of a worker's shard stream; exactly
// one field is set.
type shardRecord struct {
	// Captured reports sweep progress while this worker owns the
	// capture (cumulative captured-unit count).
	Captured int        `json:"captured,omitempty"`
	Unit     *wireUnit  `json:"unit,omitempty"`
	Done     *shardDone `json:"done,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Retry reports a transient worker→coordinator RPC failure being
	// retried with backoff; the coordinator forwards it as an
	// EventRetry progress event.
	Retry *wireRetry `json:"retry,omitempty"`
}

// wireRetry describes one retried RPC attempt.
type wireRetry struct {
	Op      string
	Attempt int
	Err     string
}

// claimMsg asks the coordinator who owns the sweep for a key hash.
type claimMsg struct {
	Hash  string
	Owner string
}

// Claim states.
const (
	claimOwner = "owner" // caller sweeps and uploads
	claimWait  = "wait"  // another worker is sweeping; poll
	claimReady = "ready" // the sweep is available; fetch it
)

type claimReply struct {
	State string
	// LeaseNs is the coordinator's claim lease TTL: an owner that
	// neither finishes nor renews (by re-claiming) within the lease
	// loses the sweep to the next poller. Owners renew at LeaseNs/3.
	LeaseNs int64
}

// wireProgress is a sim.Progress event on the run stream.
type wireProgress struct {
	Kind       int
	Stage      string
	Offset     uint64
	Captured   int
	Replayed   int
	Estimate   stats.Estimate
	Cached     bool
	Population uint64
	Total      int
	ETANs      int64
	Shard      int
	Shards     int
	Attempt    int
	Note       string
}

func wireFromProgress(ev sim.Progress) wireProgress {
	return wireProgress{
		Kind: int(ev.Kind), Stage: ev.Stage, Offset: ev.Offset,
		Captured: ev.Captured, Replayed: ev.Replayed, Estimate: ev.Estimate,
		Cached: ev.Cached, Population: ev.Population, Total: ev.Total,
		ETANs: int64(ev.ETA), Shard: ev.Shard, Shards: ev.Shards,
		Attempt: ev.Attempt, Note: ev.Note,
	}
}

func (wp wireProgress) progress() sim.Progress {
	return sim.Progress{
		Kind: sim.EventKind(wp.Kind), Stage: wp.Stage, Offset: wp.Offset,
		Captured: wp.Captured, Replayed: wp.Replayed, Estimate: wp.Estimate,
		Cached: wp.Cached, Population: wp.Population, Total: wp.Total,
		ETA: time.Duration(wp.ETANs), Shard: wp.Shard, Shards: wp.Shards,
		Attempt: wp.Attempt, Note: wp.Note,
	}
}

// wireReport is the final record of a run stream. Plan.Store is nil by
// construction (the coordinator never attaches its store to the result
// plan), so the result marshals cleanly; its Duration fields are int64
// nanoseconds in JSON and round-trip exactly.
type wireReport struct {
	Result    *smarts.Result
	CPI, EPI  stats.Estimate
	ElapsedNs int64
}

// runEnvelope is one NDJSON record of a coordinator run stream; exactly
// one of Progress/Report/Error is set, and a Report or Error record is
// final. Seq is the envelope's 1-based position in the run's event
// history: a client that lost its stream re-attaches with
// ?from=<last Seq> and receives only the suffix, giving exactly-once
// delivery across coordinator restarts and dropped connections.
type runEnvelope struct {
	Seq      int64         `json:"seq,omitempty"`
	Progress *wireProgress `json:"progress,omitempty"`
	Report   *wireReport   `json:"report,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// runCreated is the coordinator's reply to POST /v1/runs: the accepted
// run's stable ID and the coordinator's epoch nonce. A client seeing a
// different epoch on re-attach knows the coordinator restarted and its
// ?from high-water mark refers to a dead event history; the stream
// restarts from the journal-recovered history instead.
type runCreated struct {
	ID    string
	Epoch string
}

// registerMsg announces a worker to the coordinator. IntervalNs, when
// positive, is the worker's heartbeat interval: the coordinator stops
// dispatching to a worker silent for three intervals (and revives it on
// the next beat).
type registerMsg struct {
	URL        string
	IntervalNs int64
}

// heartbeatMsg is a worker liveness beat.
type heartbeatMsg struct {
	URL string
}
