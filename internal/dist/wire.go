package dist

import (
	"fmt"
	"time"

	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/sim"
)

// wireRequest is the serialized subset of sim.Request the distributed
// service accepts: one sampling plan over one workload. Modes that are
// local by nature — experiments, procedures, multi-offset phase runs,
// the classic serial loop — are rejected at the client (see
// distributable). Worker-pool sizing is a per-worker deployment
// setting, so Request.Workers does not travel.
type wireRequest struct {
	Workload string
	Length   uint64
	// Config is the simulated machine; nil selects the 8-way baseline
	// (mirroring the zero sim.Config).
	Config *uarch.Config

	U, W, N, K, J uint64
	Warming       int
	MaxUnits      int
	NoStore       bool

	TargetEps float64
	MinUnits  uint64
	Alpha     float64
}

// distributable rejects request modes the service does not shard.
func distributable(req *sim.Request) error {
	switch {
	case req == nil:
		return fmt.Errorf("dist: nil request")
	case req.Experiment != "":
		return fmt.Errorf("dist: experiment requests are not distributable; run them on a local session")
	case req.Procedure != nil:
		return fmt.Errorf("dist: procedure requests are not distributable; drive the two-step procedure from the client")
	case len(req.Offsets) > 0:
		return fmt.Errorf("dist: multi-offset phase requests are not distributable")
	case req.SerialLoop:
		return fmt.Errorf("dist: the classic serial loop cannot be sharded (its units are not independent)")
	case req.TwoPhase:
		return fmt.Errorf("dist: TwoPhase is a local scheduling knob; it does not apply to distributed runs")
	case req.Output != nil:
		return fmt.Errorf("dist: Output streams experiment text; it does not apply to distributed runs")
	case req.Workload == "":
		return fmt.Errorf("dist: request names no workload")
	case req.Alpha != 0 && (req.Alpha <= 0 || req.Alpha >= 1):
		return fmt.Errorf("dist: confidence parameter %v outside (0,1)", req.Alpha)
	}
	return nil
}

// wireFromRequest validates and serializes a request for the wire.
func wireFromRequest(req *sim.Request) (*wireRequest, error) {
	if err := distributable(req); err != nil {
		return nil, err
	}
	wr := &wireRequest{
		Workload:  req.Workload,
		Length:    req.Length,
		U:         req.U,
		W:         req.W,
		N:         req.N,
		K:         req.K,
		J:         req.J,
		Warming:   int(req.Warming),
		MaxUnits:  req.MaxUnits,
		NoStore:   req.NoStore,
		TargetEps: req.TargetEps,
		MinUnits:  req.MinUnits,
		Alpha:     req.Alpha,
	}
	if req.Config != (sim.Config{}) {
		cfg := req.Config
		wr.Config = &cfg
	}
	return wr, nil
}

// request reconstructs the sim.Request a wireRequest describes.
func (wr *wireRequest) request() *sim.Request {
	req := &sim.Request{
		Workload:  wr.Workload,
		Length:    wr.Length,
		U:         wr.U,
		W:         wr.W,
		N:         wr.N,
		K:         wr.K,
		J:         wr.J,
		Warming:   sim.WarmingMode(wr.Warming),
		MaxUnits:  wr.MaxUnits,
		NoStore:   wr.NoStore,
		TargetEps: wr.TargetEps,
		MinUnits:  wr.MinUnits,
		Alpha:     wr.Alpha,
	}
	if wr.Config != nil {
		req.Config = *wr.Config
	}
	return req
}

// planSpec is a resolved sampling plan on the wire. The coordinator
// resolves the request against the generated workload once and ships
// the result, so every shard of a run — including retries on other
// workers — replays under the identical plan.
type planSpec struct {
	U, W, K, J uint64
	Warming    int
	MaxUnits   int
}

func specFromPlan(pl smarts.Plan) planSpec {
	return planSpec{U: pl.U, W: pl.W, K: pl.K, J: pl.J, Warming: int(pl.Warming), MaxUnits: pl.MaxUnits}
}

func (ps planSpec) plan() smarts.Plan {
	return smarts.Plan{U: ps.U, W: ps.W, K: ps.K, J: ps.J, Warming: smarts.WarmingMode(ps.Warming), MaxUnits: ps.MaxUnits}
}

// runSpec is everything a worker needs to materialize a run's snapshot
// set: the workload regenerates deterministically from (name, length),
// the plan fixes the unit selection, and together with the config they
// derive the content-addressed sweep key.
type runSpec struct {
	Workload string
	Length   uint64
	Config   uarch.Config
	Plan     planSpec
}

// shardMsg assigns one contiguous range [Lo, Hi) of stream positions to
// a worker. Shard/Shards locate the range in the run for progress
// events.
type shardMsg struct {
	Spec          runSpec
	Lo, Hi        int
	Shard, Shards int
}

// wireUnit is one replayed unit streamed back from a worker, carrying
// the full engine measurement so the coordinator's merge reproduces the
// local collector's accounting bit for bit (float64 fields round-trip
// JSON exactly).
type wireUnit struct {
	Seq       int
	Index     uint64
	Cycles    uint64
	EnergyNJ  float64
	CPI, EPI  float64
	Warming   uint64
	ElapsedNs int64
	Partial   bool
}

// shardDone is a shard stream's trailer: the sweep accounting of the
// set the shard replayed from.
type shardDone struct {
	Captured    int
	Population  uint64
	SweepInsts  uint64
	SweepTimeNs int64
	// Swept reports this worker ran the functional sweep itself (the
	// fleet singleflight made it the owner) rather than fetching it.
	Swept bool
}

// shardRecord is one NDJSON record of a worker's shard stream; exactly
// one field is set.
type shardRecord struct {
	// Captured reports sweep progress while this worker owns the
	// capture (cumulative captured-unit count).
	Captured int        `json:"captured,omitempty"`
	Unit     *wireUnit  `json:"unit,omitempty"`
	Done     *shardDone `json:"done,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Retry reports a transient worker→coordinator RPC failure being
	// retried with backoff; the coordinator forwards it as an
	// EventRetry progress event.
	Retry *wireRetry `json:"retry,omitempty"`
}

// wireRetry describes one retried RPC attempt.
type wireRetry struct {
	Op      string
	Attempt int
	Err     string
}

// claimMsg asks the coordinator who owns the sweep for a key hash.
type claimMsg struct {
	Hash  string
	Owner string
}

// Claim states.
const (
	claimOwner = "owner" // caller sweeps and uploads
	claimWait  = "wait"  // another worker is sweeping; poll
	claimReady = "ready" // the sweep is available; fetch it
)

type claimReply struct {
	State string
	// LeaseNs is the coordinator's claim lease TTL: an owner that
	// neither finishes nor renews (by re-claiming) within the lease
	// loses the sweep to the next poller. Owners renew at LeaseNs/3.
	LeaseNs int64
}

// wireProgress is a sim.Progress event on the run stream.
type wireProgress struct {
	Kind       int
	Stage      string
	Offset     uint64
	Captured   int
	Replayed   int
	Estimate   stats.Estimate
	Cached     bool
	Population uint64
	Total      int
	ETANs      int64
	Shard      int
	Shards     int
	Attempt    int
	Note       string
}

func wireFromProgress(ev sim.Progress) wireProgress {
	return wireProgress{
		Kind: int(ev.Kind), Stage: ev.Stage, Offset: ev.Offset,
		Captured: ev.Captured, Replayed: ev.Replayed, Estimate: ev.Estimate,
		Cached: ev.Cached, Population: ev.Population, Total: ev.Total,
		ETANs: int64(ev.ETA), Shard: ev.Shard, Shards: ev.Shards,
		Attempt: ev.Attempt, Note: ev.Note,
	}
}

func (wp wireProgress) progress() sim.Progress {
	return sim.Progress{
		Kind: sim.EventKind(wp.Kind), Stage: wp.Stage, Offset: wp.Offset,
		Captured: wp.Captured, Replayed: wp.Replayed, Estimate: wp.Estimate,
		Cached: wp.Cached, Population: wp.Population, Total: wp.Total,
		ETA: time.Duration(wp.ETANs), Shard: wp.Shard, Shards: wp.Shards,
		Attempt: wp.Attempt, Note: wp.Note,
	}
}

// wireReport is the final record of a run stream. Plan.Store is nil by
// construction (the coordinator never attaches its store to the result
// plan), so the result marshals cleanly; its Duration fields are int64
// nanoseconds in JSON and round-trip exactly.
type wireReport struct {
	Result    *smarts.Result
	CPI, EPI  stats.Estimate
	ElapsedNs int64
}

// runEnvelope is one NDJSON record of a coordinator run stream; exactly
// one field is set, and a Report or Error record is final.
type runEnvelope struct {
	Progress *wireProgress `json:"progress,omitempty"`
	Report   *wireReport   `json:"report,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// registerMsg announces a worker to the coordinator. IntervalNs, when
// positive, is the worker's heartbeat interval: the coordinator stops
// dispatching to a worker silent for three intervals (and revives it on
// the next beat).
type registerMsg struct {
	URL        string
	IntervalNs int64
}

// heartbeatMsg is a worker liveness beat.
type heartbeatMsg struct {
	URL string
}
