package dist

import (
	"sort"
	"time"

	"repro/internal/smarts"
	"repro/internal/stats"
)

// merger folds shard-streamed units into the deterministic stream-order
// estimate, replicating the engine collector's semantics exactly: every
// non-partial unit is offered to the StreamAggregator keyed by its
// stream position, a partial unit (program ended inside it) cuts the
// stream at its position, and a met confidence target fixes the cutoff
// at the aggregator's in-order prefix length. Because the fold is by
// stream index, the outcome is a pure function of the sample sequence —
// identical for any shard split, worker count, arrival interleaving, or
// retry history.
type merger struct {
	agg       *stats.StreamAggregator
	planU     uint64
	collected []wireUnit
	stopAt    int
	early     bool
	folded    uint64

	// onFold observes in-order progress (the engine's OnReplayed
	// analogue); onStop fires once when early termination fixes the
	// cutoff, so the coordinator can broadcast a stop to in-flight
	// shards. Both are called from offer's caller goroutine; the
	// coordinator serializes offers with its stream lock.
	onFold func(merged uint64, est stats.Estimate)
	onStop func()
}

func newMerger(planU uint64, alpha, eps float64, minUnits uint64, hint int) *merger {
	if alpha == 0 {
		alpha = stats.Alpha997
	}
	return &merger{
		agg:       stats.NewStreamAggregator(alpha, eps, minUnits),
		planU:     planU,
		collected: make([]wireUnit, 0, hint),
		stopAt:    int(^uint(0) >> 1),
	}
}

// offer folds one streamed unit. Each stream position must be offered
// exactly once across all shards and retries — the coordinator's
// resume-after-prefix retry discipline guarantees it. Not safe for
// concurrent use; the caller serializes.
func (m *merger) offer(u wireUnit) {
	if u.Partial {
		// The program ended inside this unit: keep everything before
		// it, drop it and everything after (matches the engine and the
		// serial path).
		if u.Seq < m.stopAt {
			m.stopAt = u.Seq
		}
		return
	}
	m.collected = append(m.collected, u)
	hitTarget := m.agg.Offer(uint64(u.Seq), stats.Obs{CPI: u.CPI, EPI: u.EPI})
	if m.onFold != nil {
		if n := m.agg.Merged(); n > m.folded {
			m.folded = n
			m.onFold(n, m.agg.CPIEstimate())
		}
	}
	if hitTarget {
		if cut := int(m.agg.DoneAt()); cut < m.stopAt {
			m.stopAt = cut
			m.early = true
			if m.onStop != nil {
				m.onStop()
			}
		}
	}
}

// earlyStopped reports that the confidence target fixed the cutoff. The
// kept prefix is then complete by construction (DoneAt is an in-order
// prefix length), so the run's outcome can no longer change.
func (m *merger) earlyStopped() bool { return m.early }

// finalize assembles the run's Result: collected units sorted by stream
// position, truncated at the cutoff, with the engine's per-unit
// accounting. trailer supplies the sweep half (population and
// fast-forward cost); swept reports whether any shard ran the sweep in
// this run (false: every shard reused a cached sweep, the distributed
// analogue of a store hit).
func (m *merger) finalize(plan smarts.Plan, trailer shardDone, swept bool) *smarts.Result {
	sort.Slice(m.collected, func(i, j int) bool { return m.collected[i].Seq < m.collected[j].Seq })
	res := &smarts.Result{
		Plan:            plan,
		PopulationUnits: trailer.Population,
		FastFwdInsts:    trailer.SweepInsts,
		FastFwdTime:     time.Duration(trailer.SweepTimeNs),
		SweepCached:     !swept,
	}
	for _, u := range m.collected {
		if u.Seq >= m.stopAt {
			continue
		}
		res.Units = append(res.Units, smarts.UnitResult{
			Index:    u.Index,
			Cycles:   u.Cycles,
			EnergyNJ: u.EnergyNJ,
			CPI:      u.CPI,
			EPI:      u.EPI,
		})
		res.MeasuredInsts += m.planU
		res.WarmingInsts += u.Warming
		res.DetailedTime += time.Duration(u.ElapsedNs)
	}
	return res
}
