package dist

// The coordinator's write-ahead run journal. Every accepted run
// persists — under runs/ inside the coordinator's store directory —
// its request, resolved spec, shard split, and the merged-stream
// prefix, so a restarted coordinator reloads in-flight runs and
// continues them bit-identically instead of losing them with its
// memory. The journal rides the same durability discipline as the
// checkpoint store's partial journals: atomic temp+rename install,
// append-and-flush updates (the kernel keeps flushed bytes across a
// process SIGKILL), and a reader that accepts the longest valid prefix
// so a torn tail degrades to slightly more replay work, never a wrong
// result.
//
// Each line is `%08x <json>\n`: a CRC-32C over the JSON bytes, then
// one journalLine with exactly one field set. Unit lines additionally
// re-verify the unit's own wire digest at load, so corruption that
// somehow round-trips the line checksum still cannot replay into the
// merge.

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// runJournalDirName is the journal subdirectory under the store dir.
const runJournalDirName = "runs"

// runJournalExt names one run's journal file (<id>.runj).
const runJournalExt = ".runj"

// journalRun is a journal's header line: everything needed to rebuild
// the run's execution state without re-resolving against a live
// client. Total and Pop pin the shard split's denominators so recovery
// reproduces the exact ranges even if resolution defaults ever change.
type journalRun struct {
	ID    string
	Req   wireRequest
	Spec  runSpec
	Total int
	Pop   uint64
}

// journalShard is one shard range of the run's split.
type journalShard struct {
	Lo, Hi, Idx int
}

// journalDone records one shard's completed trailer: recovery skips
// re-dispatching shard Idx entirely.
type journalDone struct {
	Idx  int
	Done shardDone
}

// journalLine is one journal record; exactly one field is set.
type journalLine struct {
	Run    *journalRun    `json:"run,omitempty"`
	Shards []journalShard `json:"shards,omitempty"`
	Unit   *wireUnit      `json:"unit,omitempty"`
	Done   *journalDone   `json:"done,omitempty"`
}

// runJournal is an open, installed journal accepting appends. Append
// failures latch and log once: a journal that stops growing costs a
// restarted coordinator some replayed merge work, which is strictly
// better than failing the live run.
type runJournal struct {
	path string
	logf func(format string, args ...any)

	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	err error
}

func runJournalDir(storeDir string) string {
	return filepath.Join(storeDir, runJournalDirName)
}

func runJournalPath(storeDir, id string) string {
	return filepath.Join(runJournalDir(storeDir), id+runJournalExt)
}

// encodeJournalLine renders one checksummed journal line.
func encodeJournalLine(ln journalLine) ([]byte, error) {
	blob, err := json.Marshal(ln)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(blob)+10)
	out = fmt.Appendf(out, "%08x ", crc32.Checksum(blob, wireCastagnoli))
	out = append(out, blob...)
	out = append(out, '\n')
	return out, nil
}

// decodeJournalLine parses and verifies one line; any defect is an
// error (the caller stops at the first bad line, keeping the prefix).
func decodeJournalLine(line []byte) (journalLine, error) {
	var ln journalLine
	if len(line) < 10 || line[8] != ' ' {
		return ln, fmt.Errorf("malformed journal line")
	}
	sum, err := hex.DecodeString(string(line[:8]))
	if err != nil {
		return ln, fmt.Errorf("malformed journal checksum")
	}
	want := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
	blob := line[9:]
	if crc32.Checksum(blob, wireCastagnoli) != want {
		return ln, fmt.Errorf("journal line checksum mismatch")
	}
	if err := json.Unmarshal(blob, &ln); err != nil {
		return ln, err
	}
	return ln, nil
}

// writeRunJournal stages lines into a temp file and atomically installs
// it as id's journal, returning the open journal for further appends.
// It serves both fresh runs (header only) and recovery compaction
// (header + verified prefix rewritten, dropping any torn tail).
func writeRunJournal(storeDir, id string, logf func(string, ...any), lines ...journalLine) (*runJournal, error) {
	dir := runJournalDir(storeDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: run journal: %w", err)
	}
	tmp, err := os.CreateTemp(dir, id+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("dist: run journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, ln := range lines {
		enc, err := encodeJournalLine(ln)
		if err == nil {
			_, err = w.Write(enc)
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, fmt.Errorf("dist: run journal: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("dist: run journal: %w", err)
	}
	path := runJournalPath(storeDir, id)
	if err := os.Rename(tmp.Name(), path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("dist: run journal: %w", err)
	}
	return &runJournal{path: path, logf: logf, f: tmp, w: w}, nil
}

// append journals one line, flushing it to the kernel. Best-effort by
// design: see runJournal.
func (j *runJournal) append(ln journalLine) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.f == nil {
		return
	}
	enc, err := encodeJournalLine(ln)
	if err == nil {
		_, err = j.w.Write(enc)
	}
	if err == nil {
		err = j.w.Flush()
	}
	if err != nil {
		j.err = err
		if j.logf != nil {
			j.logf("dist: run journal %s stopped: %v", filepath.Base(j.path), err)
		}
	}
}

// close closes the file, keeping the journal on disk.
func (j *runJournal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.w.Flush()
		j.f.Close()
		j.f = nil
	}
}

// remove closes and deletes the journal — the run reached a terminal
// state and has nothing left to recover.
func (j *runJournal) remove() {
	if j == nil {
		return
	}
	j.close()
	os.Remove(j.path)
}

// recoveredRun is one journal's longest valid prefix, loaded at
// coordinator start.
type recoveredRun struct {
	hdr    journalRun
	shards []journalShard
	units  []wireUnit
	dones  []journalDone
}

// loadRunJournals scans storeDir's runs/ directory and parses every
// journal, returning the recoverable runs. A file without a valid
// header line is skipped (and removed — nothing can be done with it);
// any later defect — line checksum, JSON, or a unit whose wire digest
// does not match its fields — ends that journal's prefix, exactly like
// the checkpoint partial reader.
func loadRunJournals(storeDir string, logf func(string, ...any)) []recoveredRun {
	paths, err := filepath.Glob(filepath.Join(runJournalDir(storeDir), "*"+runJournalExt))
	if err != nil {
		return nil
	}
	var runs []recoveredRun
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		rec, ok := parseRunJournal(data)
		if !ok {
			if logf != nil {
				logf("dist: discarding unusable run journal %s", filepath.Base(path))
			}
			os.Remove(path)
			continue
		}
		runs = append(runs, rec)
	}
	return runs
}

// parseRunJournal extracts the longest valid prefix of one journal's
// bytes. ok is false when no valid header line exists.
func parseRunJournal(data []byte) (recoveredRun, bool) {
	var rec recoveredRun
	sawHeader := false
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail
		}
		ln, err := decodeJournalLine(data[:nl])
		if err != nil {
			break
		}
		data = data[nl+1:]
		switch {
		case ln.Run != nil:
			if sawHeader {
				return rec, sawHeader // spliced: keep the prefix
			}
			rec.hdr = *ln.Run
			sawHeader = true
		case !sawHeader:
			return rec, false
		case ln.Shards != nil:
			rec.shards = ln.Shards
		case ln.Unit != nil:
			if ln.Unit.digest() != ln.Unit.Digest {
				return rec, sawHeader // corrupt measurement: stop trusting
			}
			rec.units = append(rec.units, *ln.Unit)
		case ln.Done != nil:
			rec.dones = append(rec.dones, *ln.Done)
		}
	}
	return rec, sawHeader
}

// journalLines renders a recovered run back into its compacted line
// sequence — written at recovery so the re-installed journal holds
// exactly the verified prefix.
func (rec *recoveredRun) journalLines() []journalLine {
	lines := []journalLine{{Run: &rec.hdr}}
	if rec.shards != nil {
		lines = append(lines, journalLine{Shards: rec.shards})
	}
	for i := range rec.units {
		lines = append(lines, journalLine{Unit: &rec.units[i]})
	}
	for i := range rec.dones {
		lines = append(lines, journalLine{Done: &rec.dones[i]})
	}
	return lines
}
