package dist

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultPoint names one deterministic fault-injection site in the
// distributed service. The harness exists so the crash/resume matrix —
// kill an owner mid-sweep, sever a shard stream mid-flight, drop or
// delay RPCs, expire a sweep lease early — runs as ordinary unit tests
// with reproducible trigger points instead of wall-clock races.
type FaultPoint string

const (
	// FaultKillMidSweep kills the worker's shard handler (severing the
	// HTTP stream exactly as a SIGKILL would) on the n-th captured unit
	// of a sweep it owns. The sweep dies with the handler; whatever
	// partial journal was uploaded before the kill is what the fleet
	// resumes from.
	FaultKillMidSweep FaultPoint = "kill-mid-sweep"
	// FaultKillMidStream kills the shard handler on the n-th replayed
	// unit record — a worker dying mid-stream after the sweep.
	FaultKillMidStream FaultPoint = "kill-mid-stream"
	// FaultDropRPC fails the worker's n-th outbound coordinator RPC
	// (claim, sweep/partial transfer, register, heartbeat) with a
	// transport error before it leaves the process.
	FaultDropRPC FaultPoint = "drop-rpc"
	// FaultDelayRPC delays outbound coordinator RPCs by the armed
	// duration.
	FaultDelayRPC FaultPoint = "delay-rpc"
	// FaultExpireLease makes the coordinator treat the current sweep
	// claim as expired on the n-th claim poll, handing ownership to the
	// caller as if the lease TTL had lapsed.
	FaultExpireLease FaultPoint = "expire-lease"
	// FaultKillCoordinator kills the coordinator process-style on the
	// n-th unit merged: the serving context is cancelled, in-flight
	// handlers abort their connections, and new requests are refused —
	// everything short of actually exiting. The run journal on disk is
	// what a restarted coordinator (a fresh NewCoordinator over the same
	// store dir) recovers from.
	FaultKillCoordinator FaultPoint = "kill-coordinator"
	// FaultCorruptFrame flips a digest-covered field of the n-th unit
	// record a worker streams back AFTER its digest was computed — a
	// silently corrupted wire frame or misbehaving worker. The
	// coordinator must detect the mismatch, quarantine the worker, and
	// re-run the shard elsewhere.
	FaultCorruptFrame FaultPoint = "corrupt-frame"
)

// errInjectedDrop is the transport error FaultDropRPC synthesizes.
var errInjectedDrop = fmt.Errorf("dist: injected rpc drop")

// Faults is a deterministic fault-injection plan, shared by the worker
// and coordinator hooks. Arm a point with a trigger offset and count;
// each pass of execution over the point consumes one occurrence. The
// zero of everything is "no fault"; a nil *Faults disarms all hooks.
// All methods are safe for concurrent use.
type Faults struct {
	mu   sync.Mutex
	arms map[FaultPoint]*faultArm
}

type faultArm struct {
	after int // occurrences to let pass first
	times int // how many triggers remain
	delay time.Duration
	seen  int
	fired int
}

// NewFaults returns an empty (fully disarmed) plan.
func NewFaults() *Faults { return &Faults{arms: make(map[FaultPoint]*faultArm)} }

// Arm schedules point to trigger `times` times, starting after `after`
// occurrences have passed untouched. Re-arming a point resets it.
func (f *Faults) Arm(point FaultPoint, after, times int) {
	f.ArmDelay(point, after, times, 0)
}

// ArmDelay is Arm with a duration payload (used by FaultDelayRPC).
func (f *Faults) ArmDelay(point FaultPoint, after, times int, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.arms[point] = &faultArm{after: after, times: times, delay: d}
}

// Fired reports how many times point has triggered.
func (f *Faults) Fired(point FaultPoint) int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if a := f.arms[point]; a != nil {
		return a.fired
	}
	return 0
}

// fire consumes one occurrence of point and reports whether it
// triggers, with the armed delay payload.
func (f *Faults) fire(point FaultPoint) (bool, time.Duration) {
	if f == nil {
		return false, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	a := f.arms[point]
	if a == nil {
		return false, 0
	}
	a.seen++
	if a.seen <= a.after || a.fired >= a.times {
		return false, 0
	}
	a.fired++
	return true, a.delay
}

// kill severs the current HTTP handler exactly like a process death:
// the connection aborts mid-stream with no trailer and no error record.
// (An error record would travel as a deterministic appError and abort
// the whole run — the opposite of what a crash looks like.)
func (f *Faults) kill() {
	panic(http.ErrAbortHandler)
}

// faultTransport wraps an http.RoundTripper with the drop/delay RPC
// faults for requests to coordinator endpoints.
type faultTransport struct {
	faults *Faults
	next   http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !strings.HasPrefix(req.URL.Path, "/v1/") {
		return t.next.RoundTrip(req)
	}
	if ok, d := t.faults.fire(FaultDelayRPC); ok && d > 0 {
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if ok, _ := t.faults.fire(FaultDropRPC); ok {
		return nil, fmt.Errorf("%w: %s %s", errInjectedDrop, req.Method, req.URL.Path)
	}
	return t.next.RoundTrip(req)
}

// faultClient builds the worker's HTTP client, wiring the RPC faults
// when armed.
func faultClient(f *Faults) *http.Client {
	if f == nil {
		return &http.Client{}
	}
	return &http.Client{Transport: &faultTransport{faults: f, next: http.DefaultTransport}}
}
