package dist

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/internal/wallclock"
	"repro/sim"
)

// ErrBusy reports that the coordinator's run slots and wait queue are
// both full; the caller should retry later (HTTP 429 on the wire).
var ErrBusy = errors.New("dist: coordinator at capacity")

// Options configures a Coordinator.
type Options struct {
	// StoreDir, when non-empty, attaches an on-disk checkpoint store:
	// uploaded sweeps are persisted and shared across runs and restarts,
	// and every accepted run keeps a write-ahead journal under
	// StoreDir/runs/ that a restarted coordinator recovers in-flight
	// runs from. StoreMaxBytes caps the store (see sim.WithStoreLimit).
	StoreDir      string
	StoreMaxBytes int64
	// MemCacheBytes caps the in-memory sweep cache's snapshot payload
	// (0 = unbounded). The cache fronts the store either way: fetches
	// hit memory first, uploads land in both.
	MemCacheBytes int64
	// MaxActive bounds concurrently executing runs (default 2);
	// MaxQueue bounds runs waiting for a slot (default 16). A run
	// beyond both fails fast with ErrBusy; a queued run honors its
	// context deadline.
	MaxActive int
	MaxQueue  int
	// ShardsPerWorker sets how many contiguous shard ranges are cut per
	// live worker (default 2): more shards mean finer-grained retry and
	// better load balance, at more per-shard overhead.
	ShardsPerWorker int
	// LeaseTTL bounds how long a sweep claim may sit unfinished before
	// another worker may take ownership (default 2 minutes) — the
	// recovery path for a worker that died mid-sweep. Owners renew the
	// lease by re-claiming (the worker does so every LeaseTTL/3), so the
	// TTL can sit well below the longest sweep.
	LeaseTTL time.Duration
	// Faults, when non-nil, arms the deterministic fault-injection
	// harness on the coordinator's hooks (FaultExpireLease,
	// FaultKillCoordinator). Testing only.
	Faults *Faults
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// Coordinator is the distributed sampling service's front door: it
// admits runs, shards their sampled units across registered workers,
// serves the fleet-wide sweep cache and claim table, verifies every
// streamed unit's digest, and merges shard streams into bit-identical
// reports. Each accepted run gets a stable ID and an append-only event
// history that clients stream (and re-attach to after losing the
// connection); with a store attached, each run also keeps a write-ahead
// journal so a restarted coordinator — a fresh NewCoordinator over the
// same store directory — resumes in-flight runs instead of losing them.
// All methods are safe for concurrent use.
type Coordinator struct {
	opt    Options
	store  *checkpoint.Store
	sweeps *checkpoint.MemCache
	client *http.Client
	slots  chan struct{}

	// lifeCtx is the coordinator's serving lifetime; die (the
	// FaultKillCoordinator hook) cancels it, aborting every run and
	// handler the way a process death would. epoch is a random nonce
	// identifying this coordinator incarnation: clients compare it on
	// re-attach to detect a restart (their stream high-water mark refers
	// to a dead event history).
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	epoch      string

	mu      sync.Mutex
	queued  int
	workers []*workerRef
	claims  map[string]claimState
	active  map[string]*activeRun
	progs   map[progKey]*program.Program
	// runs holds every known run by ID — executing, queued, and (capped
	// by maxFinishedRuns, in finished order) terminal, so late
	// re-attaches can still fetch the outcome.
	runs     map[string]*runState
	finished []string
	// partials holds uploaded partial-sweep journals (opaque format
	// bytes) by key hash: a sweep owner uploads its journal as it
	// progresses, and the worker that wins the claim after the owner
	// dies resumes from here instead of resweeping. Entries are dropped
	// when the completed sweep arrives; with a store attached they are
	// also persisted as *.partial files, surviving coordinator restarts.
	partials map[string][]byte
}

// maxFinishedRuns bounds how many terminal runs stay addressable for
// late re-attaches before the oldest are dropped.
const maxFinishedRuns = 64

type claimState struct {
	owner string
	since time.Time
}

// activeRun pins the key material the sweep endpoints need for a run's
// hash, refcounted across concurrent runs sharing it.
type activeRun struct {
	key     checkpoint.Key
	noStore bool
	refs    int
}

type progKey struct {
	name   string
	length uint64
}

// workerRef is one registered worker.
type workerRef struct {
	url string

	mu   sync.Mutex
	dead bool
	// quarantined latches when a shard stream from this worker fails
	// digest verification: unlike dead (a liveness state heartbeats
	// clear), quarantine is sticky — a worker that produced a corrupt
	// measurement is never dispatched to again by this coordinator.
	quarantined bool
	// beatEvery and lastBeat implement heartbeat liveness: a worker that
	// announced a heartbeat interval and then fell silent for three
	// intervals stops receiving dispatches until it beats again.
	// Workers that never announced an interval are exempt.
	beatEvery time.Duration
	lastBeat  time.Time
}

func (w *workerRef) markDead() { w.mu.Lock(); w.dead = true; w.mu.Unlock() }
func (w *workerRef) quarantine() {
	w.mu.Lock()
	w.quarantined = true
	w.mu.Unlock()
}
func (w *workerRef) beat() {
	w.mu.Lock()
	w.dead = false
	w.lastBeat = wallclock.Now()
	w.mu.Unlock()
}
func (w *workerRef) alive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.quarantined {
		return false
	}
	if w.beatEvery > 0 && !w.lastBeat.IsZero() && wallclock.Since(w.lastBeat) > 3*w.beatEvery {
		return false
	}
	return true
}

// NewCoordinator builds a coordinator (opening the on-disk store when
// configured) and recovers any in-flight run journals the previous
// incarnation left in the store directory: each becomes a live run
// again, resuming from its journaled merge prefix as soon as workers
// (re-)register. Workers register themselves over POST /v1/register or
// are added directly with AddWorker.
func NewCoordinator(opt Options) (*Coordinator, error) {
	if opt.MaxActive <= 0 {
		opt.MaxActive = 2
	}
	if opt.MaxQueue < 0 {
		opt.MaxQueue = 0
	} else if opt.MaxQueue == 0 {
		opt.MaxQueue = 16
	}
	if opt.ShardsPerWorker <= 0 {
		opt.ShardsPerWorker = 2
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 2 * time.Minute
	}
	c := &Coordinator{
		opt:      opt,
		sweeps:   checkpoint.NewMemCache(),
		client:   &http.Client{},
		slots:    make(chan struct{}, opt.MaxActive),
		claims:   make(map[string]claimState),
		active:   make(map[string]*activeRun),
		progs:    make(map[progKey]*program.Program),
		runs:     make(map[string]*runState),
		partials: make(map[string][]byte),
		epoch:    randHex(8),
	}
	c.lifeCtx, c.lifeCancel = context.WithCancel(context.Background()) //simlint:noctx server lifecycle root; outlives any one request, cancelled by Close
	c.sweeps.MaxBytes = opt.MemCacheBytes
	if opt.StoreDir != "" {
		store, err := checkpoint.OpenStore(opt.StoreDir)
		if err != nil {
			return nil, err
		}
		store.MaxBytes = opt.StoreMaxBytes
		store.Logf = opt.Logf
		c.store = store
		c.recoverRuns()
	}
	return c, nil
}

// randHex returns n random bytes hex-encoded (run IDs, the epoch).
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// Degrade to a clock-derived nonce; uniqueness not randomness is
		// what the IDs need.
		now := uint64(wallclock.Now().UnixNano())
		for i := range b {
			b[i] = byte(now >> (8 * (i % 8)))
		}
	}
	return hex.EncodeToString(b)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// die simulates the coordinator's process death (FaultKillCoordinator):
// the serving context cancels, aborting every run, dispatch, and
// handler; new requests are refused. Runs keep their journals (a dead
// process cannot tidy up), which is exactly what the next incarnation
// recovers from.
func (c *Coordinator) die() {
	c.logf("dist: coordinator killed (injected)")
	c.lifeCancel()
}

// killed reports whether die was called.
func (c *Coordinator) killed() bool { return c.lifeCtx.Err() != nil }

// AddWorker registers a worker by base URL (idempotent; re-adding a
// dead worker revives it). Workers added this way announce no
// heartbeat and are never expired for silence.
func (c *Coordinator) AddWorker(url string) { c.addWorker(url, 0) }

func (c *Coordinator) addWorker(url string, beatEvery time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.url == url {
			w.mu.Lock()
			w.dead = false
			w.beatEvery = beatEvery
			if beatEvery > 0 {
				w.lastBeat = wallclock.Now()
			}
			w.mu.Unlock()
			return
		}
	}
	ref := &workerRef{url: url, beatEvery: beatEvery}
	if beatEvery > 0 {
		ref.lastBeat = wallclock.Now()
	}
	c.workers = append(c.workers, ref)
	c.logf("dist: worker registered: %s", url)
}

// workerByURL finds a registered worker.
func (c *Coordinator) workerByURL(url string) *workerRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.url == url {
			return w
		}
	}
	return nil
}

func (c *Coordinator) liveWorkers() []*workerRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	var live []*workerRef
	for _, w := range c.workers {
		if w.alive() {
			live = append(live, w)
		}
	}
	return live
}

// workload returns the generated program for (name, length), cached.
func (c *Coordinator) workload(name string, length uint64) (*program.Program, error) {
	key := progKey{name, length}
	c.mu.Lock()
	p, ok := c.progs[key]
	c.mu.Unlock()
	if ok {
		return p, nil
	}
	spec, err := program.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err = program.Generate(spec, length)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.progs[key] = p
	c.mu.Unlock()
	return p, nil
}

// retainRun pins the run's key in the active table so the sweep and
// claim endpoints can serve its hash.
func (c *Coordinator) retainRun(hash string, key checkpoint.Key, noStore bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if run, ok := c.active[hash]; ok {
		run.refs++
		return
	}
	c.active[hash] = &activeRun{key: key, noStore: noStore, refs: 1}
}

func (c *Coordinator) releaseRun(hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	run, ok := c.active[hash]
	if !ok {
		return
	}
	run.refs--
	if run.refs <= 0 {
		delete(c.active, hash)
		delete(c.claims, hash)
	}
}

// sweepReady reports a reusable committed sweep for run (memory first,
// then the store unless the run opted out).
func (c *Coordinator) sweepReady(run *activeRun) bool {
	if c.sweeps.Contains(run.key) {
		return true
	}
	return c.store != nil && !run.noStore && c.store.Contains(run.key)
}

// resolvedRun is a request resolved against its generated workload:
// everything the execution needs, fixed at accept time so a journaled
// run replays under the identical plan even if resolution defaults
// ever change between incarnations.
type resolvedRun struct {
	spec  runSpec
	plan  smarts.Plan
	prog  *program.Program
	pop   uint64
	total int
}

// resolve validates and resolves a wire request. Failures are
// deterministic rejections (HTTP 400): retrying or falling back cannot
// change them.
func (c *Coordinator) resolve(wr *wireRequest) (*resolvedRun, error) {
	req := wr.request()
	length := req.Length
	if length == 0 {
		length = sim.DefaultLength
	}
	prog, err := c.workload(req.Workload, length)
	if err != nil {
		return nil, err
	}
	cfg := req.Config
	if cfg == (uarch.Config{}) {
		cfg = uarch.Config8Way()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan := sim.ResolvePlan(req, prog)
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	spec := runSpec{Workload: req.Workload, Length: length, Config: cfg, Plan: specFromPlan(plan)}
	pop := prog.Length / plan.U
	return &resolvedRun{spec: spec, plan: plan, prog: prog, pop: pop,
		total: plan.CheckpointParams().ExpectedUnits(pop)}, nil
}

// resolveSpec rebuilds a recovered run's resolution from its journaled
// spec — the already-resolved plan, not the raw request, so recovery
// cannot re-resolve differently.
func (c *Coordinator) resolveSpec(hdr *journalRun) (*resolvedRun, error) {
	prog, err := c.workload(hdr.Spec.Workload, hdr.Spec.Length)
	if err != nil {
		return nil, err
	}
	plan := hdr.Spec.Plan.plan()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	pop := prog.Length / plan.U
	return &resolvedRun{spec: hdr.Spec, plan: plan, prog: prog, pop: pop,
		total: plan.CheckpointParams().ExpectedUnits(pop)}, nil
}

// runState is one known run: its identity, event history, execution
// context, and journal. The event history is an append-only sequence of
// envelopes with 1-based Seq; consumers (the in-process Run call, the
// HTTP stream handler) read it through next and block on the returned
// channel for more.
type runState struct {
	id      string
	c       *Coordinator
	wr      *wireRequest
	rr      *resolvedRun
	rec     *recoveredRun
	journal *runJournal

	// ctx is a child of the coordinator's lifeCtx; cancel aborts the
	// run (client cancellation, or the coordinator dying).
	ctx    context.Context
	cancel context.CancelFunc

	// hasSlot records that accept acquired an execution slot
	// synchronously; inQueue that the run is counted in the wait queue.
	hasSlot bool
	inQueue bool

	mu      sync.Mutex
	base    int64 // Seq of envs[0] minus one (terminal pruning shifts it)
	envs    []runEnvelope
	waiters []chan struct{}
	done    bool
	errVal  error // terminal error value (in-process consumers preserve errors.Is)
}

func (c *Coordinator) newRunState(id string, wr *wireRequest) *runState {
	rs := &runState{id: id, c: c, wr: wr}
	rs.ctx, rs.cancel = context.WithCancel(c.lifeCtx)
	return rs
}

func (c *Coordinator) runByID(id string) *runState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs[id]
}

// emit appends one envelope to the run's event history and wakes the
// stream consumers. Events after the terminal record are dropped.
func (rs *runState) emit(env runEnvelope) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.done {
		return
	}
	env.Seq = rs.base + int64(len(rs.envs)) + 1
	rs.envs = append(rs.envs, env)
	for _, w := range rs.waiters {
		close(w)
	}
	rs.waiters = nil
}

// emitProgress is the run's sim.ProgressFunc: events enter the history
// as envelopes and reach every attached consumer.
func (rs *runState) emitProgress(ev sim.Progress) {
	wp := wireFromProgress(ev)
	rs.emit(runEnvelope{Progress: &wp})
}

// terminal appends the final envelope. The history stays intact so
// consumers attached right now drain the progress tail before the
// outcome; prune reclaims it later (see noteFinished).
func (rs *runState) terminal(env runEnvelope) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.done {
		return
	}
	env.Seq = rs.base + int64(len(rs.envs)) + 1
	rs.envs = append(rs.envs, env)
	rs.done = true
	for _, w := range rs.waiters {
		close(w)
	}
	rs.waiters = nil
}

// prune drops a terminal run's progress history down to its final
// envelope: late re-attachers need the outcome, not the
// replay-by-replay past, and the history would otherwise pin every
// event of every finished run. A consumer that was mid-history is
// clamped forward by next and still receives the terminal record.
func (rs *runState) prune() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.done || len(rs.envs) <= 1 {
		return
	}
	last := rs.envs[len(rs.envs)-1]
	rs.base = last.Seq - 1
	rs.envs = []runEnvelope{last}
}

// next returns the event suffix after Seq from (possibly empty), the
// terminal flag, and — when nothing new is buffered and the run still
// executes — a channel that closes on the next emit.
func (rs *runState) next(from int64) (envs []runEnvelope, done bool, wait <-chan struct{}) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if from < rs.base {
		from = rs.base // pruned (or restarted) history: resume at its base
	}
	if idx := from - rs.base; idx < int64(len(rs.envs)) {
		return append([]runEnvelope(nil), rs.envs[idx:]...), rs.done, nil
	}
	if rs.done {
		return nil, true, nil
	}
	w := make(chan struct{})
	rs.waiters = append(rs.waiters, w)
	return nil, false, w
}

// terminalErr returns the run's stored terminal error value when the
// consumer is in-process (preserving errors.Is identity for context
// errors), else wraps the envelope string.
func (rs *runState) terminalErr(fallback string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.errVal != nil {
		return rs.errVal
	}
	return fmt.Errorf("dist: %s", fallback)
}

// finish records the run's outcome: the terminal envelope enters the
// history and the journal is removed (nothing left to recover). When
// the coordinator was killed, neither happens — a dead process writes
// no farewell, and the journal IS the recovery state.
func (rs *runState) finish(rep *sim.Report, err error) {
	c := rs.c
	if c.killed() {
		rs.journal.close()
		return
	}
	// Remove the journal BEFORE publishing the outcome: once any caller
	// can observe the terminal state, no future incarnation may find the
	// journal and silently re-run the work.
	rs.journal.remove()
	if err != nil {
		rs.mu.Lock()
		rs.errVal = err
		rs.mu.Unlock()
		rs.terminal(runEnvelope{Error: err.Error()})
	} else {
		rs.terminal(runEnvelope{Report: &wireReport{
			Result:    rep.Result(),
			CPI:       rep.CPI,
			EPI:       rep.EPI,
			ElapsedNs: int64(rep.Elapsed),
		}})
	}
	rs.cancel()
	c.noteFinished(rs.id)
}

// noteFinished caps the terminal-run registry at maxFinishedRuns and
// prunes the histories of previously finished runs: the most recent
// finisher keeps its full history (its consumers are still draining
// the tail), older ones shrink to just their terminal envelope.
func (c *Coordinator) noteFinished(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, prev := range c.finished {
		if rs := c.runs[prev]; rs != nil {
			rs.prune()
		}
	}
	c.finished = append(c.finished, id)
	for len(c.finished) > maxFinishedRuns {
		delete(c.runs, c.finished[0])
		c.finished = c.finished[1:]
	}
}

// accept admits one resolved request as a new run: it acquires an
// execution slot (or a queue seat, or fails with ErrBusy), assigns the
// run its stable ID, installs the write-ahead journal header, and
// starts the execution goroutine. The caller streams the outcome from
// the returned runState.
func (c *Coordinator) accept(wr *wireRequest) (*runState, error) {
	if c.killed() {
		return nil, fmt.Errorf("dist: coordinator is shut down")
	}
	rr, err := c.resolve(wr)
	if err != nil {
		return nil, err
	}
	hasSlot, inQueue := false, false
	select {
	case c.slots <- struct{}{}:
		hasSlot = true
	default:
		c.mu.Lock()
		if c.queued >= c.opt.MaxQueue {
			c.mu.Unlock()
			return nil, ErrBusy
		}
		c.queued++
		inQueue = true
		c.mu.Unlock()
	}
	rs := c.newRunState("r-"+randHex(8), wr)
	rs.rr = rr
	rs.hasSlot, rs.inQueue = hasSlot, inQueue
	if c.store != nil {
		hdr := journalRun{ID: rs.id, Req: *wr, Spec: rr.spec, Total: rr.total, Pop: rr.pop}
		j, jerr := writeRunJournal(c.opt.StoreDir, rs.id, c.opt.Logf, journalLine{Run: &hdr})
		if jerr != nil {
			c.logf("dist: run %s executes unjournaled: %v", rs.id, jerr)
		} else {
			rs.journal = j
		}
	}
	c.mu.Lock()
	c.runs[rs.id] = rs
	c.mu.Unlock()
	go c.execRun(rs)
	return rs, nil
}

// recoverRuns reloads the previous incarnation's run journals: each
// valid journal is compacted (rewritten as exactly its verified
// prefix) and becomes a live run again, queued for execution.
func (c *Coordinator) recoverRuns() {
	for _, rec := range loadRunJournals(c.opt.StoreDir, c.opt.Logf) {
		rec := rec
		j, err := writeRunJournal(c.opt.StoreDir, rec.hdr.ID, c.opt.Logf, rec.journalLines()...)
		if err != nil {
			c.logf("dist: cannot compact run journal %s: %v", rec.hdr.ID, err)
			continue
		}
		rs := c.newRunState(rec.hdr.ID, &rec.hdr.Req)
		rs.rec = &rec
		rs.journal = j
		c.mu.Lock()
		c.runs[rs.id] = rs
		c.mu.Unlock()
		rr, rerr := c.resolveSpec(&rec.hdr)
		if rerr != nil {
			rs.finish(nil, fmt.Errorf("dist: recovering run %s: %w", rs.id, rerr))
			continue
		}
		rs.rr = rr
		c.logf("dist: recovered run %s from journal (%d merged unit(s), %d finished shard(s))",
			rs.id, len(rec.units), len(rec.dones))
		go c.execRun(rs)
	}
}

// execRun drives one accepted run to its terminal state: wait for an
// execution slot if accept queued it, execute, record the outcome.
func (c *Coordinator) execRun(rs *runState) {
	if !rs.hasSlot {
		select {
		case c.slots <- struct{}{}:
			rs.hasSlot = true
		case <-rs.ctx.Done():
		}
		if rs.inQueue {
			c.mu.Lock()
			c.queued--
			c.mu.Unlock()
		}
		if !rs.hasSlot {
			rs.finish(nil, rs.ctx.Err())
			return
		}
	}
	defer func() { <-c.slots }()
	rep, err := c.runResolved(rs)
	rs.finish(rep, err)
}

// runResolved executes a resolved run across the worker fleet.
func (c *Coordinator) runResolved(rs *runState) (*sim.Report, error) {
	start := wallclock.Now()
	run := &shardedRun{
		c:       c,
		spec:    rs.rr.spec,
		plan:    rs.rr.plan,
		prog:    rs.rr.prog,
		wr:      rs.wr,
		sink:    newSink(rs.emitProgress),
		rec:     rs.rec,
		journal: rs.journal,
	}
	res, err := run.run(rs.ctx)
	if err != nil {
		return nil, err
	}
	alpha := alphaOr997(rs.wr.Alpha)
	rep := &sim.Report{Results: []*sim.Result{res}, Elapsed: wallclock.Since(start)}
	if len(res.Units) > 0 {
		rep.CPI = res.CPIEstimate(alpha)
		rep.EPI = res.EPIEstimate(alpha)
	}
	return rep, nil
}

// Run executes one request across the registered workers, with the
// same signature and Report shape as sim.Session.Run. The report's
// measurement half is bit-identical to a local engine run of the same
// request at any topology. Internally the call is accept + an
// in-process attach to the run's event stream — the same protocol the
// HTTP client speaks.
func (c *Coordinator) Run(ctx context.Context, req *sim.Request) (*sim.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	wr, err := wireFromRequest(req)
	if err != nil {
		return nil, err
	}
	rs, err := c.accept(wr)
	if err != nil {
		return nil, err
	}
	var from int64
	for {
		envs, done, wait := rs.next(from)
		for _, env := range envs {
			from = env.Seq
			switch {
			case env.Progress != nil:
				if req.Progress != nil {
					req.Progress(env.Progress.progress())
				}
			case env.Error != "":
				return nil, rs.terminalErr(env.Error)
			case env.Report != nil:
				return reportFrom(env.Report), nil
			}
		}
		if done {
			return nil, fmt.Errorf("dist: run %s ended without a report", rs.id)
		}
		if wait == nil {
			continue // drained a batch; more may already be buffered
		}
		select {
		case <-wait:
		case <-ctx.Done():
			rs.cancel()
			return nil, ctx.Err()
		}
	}
}

// reportFrom rebuilds a sim.Report from its wire form. In-process
// consumers share the *smarts.Result pointer (no serialization);
// remote ones decoded it from JSON, which round-trips every
// measurement field exactly.
func reportFrom(wrep *wireReport) *sim.Report {
	rep := &sim.Report{CPI: wrep.CPI, EPI: wrep.EPI, Elapsed: time.Duration(wrep.ElapsedNs)}
	if wrep.Result != nil {
		rep.Results = []*sim.Result{wrep.Result}
	}
	return rep
}

// shardedRun is the state of one dispatched run.
type shardedRun struct {
	c       *Coordinator
	spec    runSpec
	plan    smarts.Plan
	prog    *program.Program
	wr      *wireRequest
	sink    *eventSink
	rec     *recoveredRun // non-nil: resume from this journaled prefix
	journal *runJournal

	pop    uint64
	total  int
	shards int
	m      *merger

	// smu guards the merge and the shard bookkeeping below; merger
	// offers and journal appends are serialized under it (one lock,
	// because the merge IS the shared state of the run).
	smu       sync.Mutex
	pending   chan shardRange
	remaining int
	runErr    error
	trailer   *shardDone
	anySwept  bool
}

type shardRange struct {
	lo, hi, idx int
}

// splitRange cuts [0, n) into at most parts contiguous, near-even
// ranges (fewer when n < parts; none when n == 0).
func splitRange(n, parts int) []shardRange {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]shardRange, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + (n-lo)/(parts-i)
		out = append(out, shardRange{lo: lo, hi: hi, idx: i})
		lo = hi
	}
	return out
}

func journalShardsFrom(shards []shardRange) []journalShard {
	out := make([]journalShard, len(shards))
	for i, sr := range shards {
		out[i] = journalShard{Lo: sr.lo, Hi: sr.hi, Idx: sr.idx}
	}
	return out
}

func (r *shardedRun) run(ctx context.Context) (*smarts.Result, error) {
	c := r.c
	r.pop = r.prog.Length / r.plan.U
	r.total = r.plan.CheckpointParams().ExpectedUnits(r.pop)

	// A fresh run with no workers fails fast — the client can fall back
	// locally. A recovered run waits instead: its workers died with the
	// old coordinator and re-register as their heartbeats bounce.
	workers := c.liveWorkers()
	if len(workers) == 0 {
		if r.rec == nil {
			return nil, fmt.Errorf("dist: no live workers registered")
		}
		for len(workers) == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
			workers = c.liveWorkers()
		}
	}

	// The shard split is journaled state: recovery must requeue the
	// exact ranges the dead incarnation cut, not re-split for today's
	// fleet, or the contiguous-prefix bookkeeping below would not line
	// up with the journaled units.
	var shards []shardRange
	if r.rec != nil && len(r.rec.shards) > 0 {
		for _, s := range r.rec.shards {
			shards = append(shards, shardRange{lo: s.Lo, hi: s.Hi, idx: s.Idx})
		}
	} else {
		shards = splitRange(r.total, len(workers)*c.opt.ShardsPerWorker)
		r.journal.append(journalLine{Shards: journalShardsFrom(shards)})
	}
	r.shards = len(shards)

	key := checkpoint.KeyFor(r.prog, r.spec.Config, r.plan.CheckpointParams())
	hash := key.Hash()
	c.retainRun(hash, key, r.wr.NoStore)
	defer c.releaseRun(hash)

	r.sink.emit(sim.Progress{Kind: sim.EventRunStart, Stage: "sample", Offset: r.plan.J,
		Population: r.pop, Total: r.total})

	alpha := alphaOr997(r.wr.Alpha)
	r.m = newMerger(r.plan.U, alpha, r.wr.TargetEps, r.wr.MinUnits, r.total)
	dispatchCtx, cancelDispatch := context.WithCancel(ctx)
	defer cancelDispatch()
	replayStart := wallclock.Now()
	r.m.onFold = func(merged uint64, est stats.Estimate) {
		r.sink.emit(sim.Progress{Kind: sim.EventUnitReplayed, Stage: "sample", Offset: r.plan.J,
			Replayed: int(merged), Estimate: est, Population: r.pop, Total: r.total,
			ETA: etaFrom(replayStart, int(merged), r.total)})
	}
	// Early termination broadcasts a stop: cancelling the dispatch
	// context aborts every in-flight shard request fleet-wide.
	r.m.onStop = cancelDispatch

	r.pending = make(chan shardRange, r.shards+len(workers))
	r.remaining = r.shards
	if r.rec != nil {
		r.replayJournal(shards)
	} else {
		for _, sr := range shards {
			r.pending <- sr
		}
	}
	if r.remaining == 0 {
		close(r.pending)
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *workerRef) {
			defer wg.Done()
			r.workerLoop(dispatchCtx, w)
		}(w)
	}
	wg.Wait()
	cancelDispatch()

	r.smu.Lock()
	defer r.smu.Unlock()
	switch {
	case r.runErr != nil:
		return nil, r.runErr
	case r.m.earlyStopped():
		// The cutoff prefix is complete; outstanding shards were only
		// producing surplus units beyond it.
	case ctx.Err() != nil:
		return nil, ctx.Err()
	case r.remaining > 0:
		return nil, fmt.Errorf("dist: %d shard range(s) left unassigned: all workers failed", r.remaining)
	}
	// The trailer can be missing only when early termination cut the
	// run before any shard finished; the population is known locally
	// and the sweep accounting is then best-effort zero (a local
	// early-terminated run reports its own partial sweep cost, which is
	// wall-clock-like and excluded from bit-identity anyway).
	td := shardDone{Population: r.pop}
	if r.trailer != nil {
		td = *r.trailer
	}
	res := r.m.finalize(r.plan, td, r.anySwept)
	done := sim.Progress{Kind: sim.EventRunDone, Stage: "sample", Offset: r.plan.J,
		Replayed: len(res.Units), Cached: res.SweepCached, Population: r.pop, Total: r.total}
	if len(res.Units) > 0 {
		done.Estimate = res.CPIEstimate(alpha)
	}
	r.sink.emit(done)
	return res, nil
}

// replayJournal re-offers a recovered run's journaled merge prefix and
// requeues the unfinished shard suffixes. Because the merge is a pure,
// order-insensitive function of the offered set, re-offering the
// journaled units then streaming the remainder from workers produces
// the identical result an uninterrupted run would have — the journaled
// prefix is simply work the fleet does not redo.
func (r *shardedRun) replayJournal(shards []shardRange) {
	rec := r.rec
	r.smu.Lock()
	defer r.smu.Unlock()
	merged := make(map[int]bool, len(rec.units))
	for i := range rec.units {
		merged[rec.units[i].Seq] = true
		r.m.offer(rec.units[i])
	}
	doneIdx := make(map[int]bool, len(rec.dones))
	for i := range rec.dones {
		d := &rec.dones[i]
		doneIdx[d.Idx] = true
		if r.trailer == nil {
			t := d.Done
			r.trailer = &t
		}
		r.anySwept = r.anySwept || d.Done.Swept
	}
	for _, sr := range shards {
		if doneIdx[sr.idx] {
			r.remaining--
			continue
		}
		// Units stream (and journal) in ascending order per shard, so
		// the journaled prefix of each shard is contiguous from lo; only
		// the suffix is redispatched. A fully-merged shard missing its
		// trailer requeues as an empty range — the worker replays
		// nothing and returns just the sweep-accounting trailer.
		n := 0
		for sr.lo+n < sr.hi && merged[sr.lo+n] {
			n++
		}
		r.pending <- shardRange{lo: sr.lo + n, hi: sr.hi, idx: sr.idx}
	}
}

func alphaOr997(alpha float64) float64 {
	if alpha == 0 {
		return stats.Alpha997
	}
	return alpha
}

// workerLoop pulls shard ranges for one worker until the pool drains,
// the run is cancelled, or the worker dies or is quarantined.
func (r *shardedRun) workerLoop(ctx context.Context, w *workerRef) {
	for {
		var sr shardRange
		var ok bool
		select {
		case sr, ok = <-r.pending:
			if !ok {
				return
			}
		case <-ctx.Done():
			return
		}
		received, trailer, err := r.runShard(ctx, w, sr)
		if err == nil {
			r.smu.Lock()
			if trailer != nil {
				r.journal.append(journalLine{Done: &journalDone{Idx: sr.idx, Done: *trailer}})
				if r.trailer == nil {
					r.trailer = trailer
				}
				r.anySwept = r.anySwept || trailer.Swept
			}
			r.remaining--
			if r.remaining == 0 {
				close(r.pending)
			}
			r.smu.Unlock()
			continue
		}
		if ctx.Err() != nil {
			return // cancelled: early stop or caller cancel, not a failure
		}
		var app *appError
		if errors.As(err, &app) {
			// The simulation itself failed; it would fail identically on
			// any worker. Abort the run.
			r.smu.Lock()
			if r.runErr == nil {
				r.runErr = err
			}
			r.smu.Unlock()
			return
		}
		var corr *corruptError
		if errors.As(err, &corr) {
			// The worker streamed a unit whose digest does not match its
			// measurement: a corrupt frame or a misbehaving worker. Only
			// verified units entered the merge, so requeueing from the
			// verified prefix keeps the result untouched; the worker is
			// quarantined from all further dispatch.
			w.quarantine()
			r.c.logf("dist: %v; quarantining %s and requeueing %d unit(s)",
				err, w.url, sr.hi-(sr.lo+received))
			r.sink.emit(sim.Progress{Kind: sim.EventQuarantine, Stage: "sample", Offset: r.plan.J,
				Population: r.pop, Total: r.total, Shard: sr.idx, Shards: r.shards,
				Note: err.Error()})
			r.smu.Lock()
			r.pending <- shardRange{lo: sr.lo + received, hi: sr.hi, idx: sr.idx}
			r.smu.Unlock()
			return
		}
		// Transport failure: the worker is gone. Units stream in
		// ascending order, so the received prefix is contiguous — the
		// rest of the range goes back in the pool for the survivors,
		// and merge-by-index keeps the outcome untouched.
		w.markDead()
		r.c.logf("dist: worker %s died on shard %d [%d,%d): %v; requeueing %d unit(s)",
			w.url, sr.idx, sr.lo, sr.hi, err, sr.hi-(sr.lo+received))
		r.smu.Lock()
		r.pending <- shardRange{lo: sr.lo + received, hi: sr.hi, idx: sr.idx}
		r.smu.Unlock()
		return
	}
}

// appError is a failure the worker's simulation reported (as opposed to
// transport loss); it is deterministic and aborts the run.
type appError struct{ msg string }

func (e *appError) Error() string { return e.msg }

// corruptError reports a streamed unit whose digest verification
// failed; the worker that sent it is quarantined.
type corruptError struct {
	worker string
	seq    int
}

func (e *corruptError) Error() string {
	return fmt.Sprintf("dist: unit %d from worker %s failed digest verification", e.seq, e.worker)
}

// runShard executes one shard range on one worker, folding its streamed
// units into the merge. Every unit's digest is recomputed before the
// offer; the first mismatch aborts the stream with a corruptError. It
// returns the number of verified unit records received (the contiguous
// prefix of the range) and the stream trailer.
func (r *shardedRun) runShard(ctx context.Context, w *workerRef, sr shardRange) (received int, trailer *shardDone, err error) {
	r.sink.emit(sim.Progress{Kind: sim.EventShardStart, Stage: "sample", Offset: r.plan.J,
		Population: r.pop, Total: sr.hi - sr.lo, Shard: sr.idx, Shards: r.shards})

	body, err := json.Marshal(shardMsg{Spec: r.spec, Lo: sr.lo, Hi: sr.hi, Shard: sr.idx, Shards: r.shards})
	if err != nil {
		return 0, nil, &appError{msg: fmt.Sprintf("dist: encode shard: %v", err)}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return 0, nil, &appError{msg: fmt.Sprintf("dist: build shard request: %v", err)}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.c.client.Do(hreq)
	if err != nil {
		return 0, nil, err // transport
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //simlint:discard best-effort error-body snippet for the message
		return 0, nil, &appError{msg: fmt.Sprintf("dist: worker %s rejected shard: %s: %s",
			w.url, resp.Status, bytes.TrimSpace(msg))}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var rec shardRecord
		if derr := dec.Decode(&rec); derr != nil {
			// EOF (clean or mid-record) without a trailer means the
			// worker died mid-stream: a transport failure.
			return received, nil, fmt.Errorf("dist: shard stream from %s broke: %w", w.url, derr)
		}
		switch {
		case rec.Error != "":
			return received, nil, &appError{msg: rec.Error}
		case rec.Unit != nil:
			if rec.Unit.digest() != rec.Unit.Digest {
				return received, nil, &corruptError{worker: w.url, seq: rec.Unit.Seq}
			}
			r.smu.Lock()
			r.journal.append(journalLine{Unit: rec.Unit})
			r.m.offer(*rec.Unit)
			r.smu.Unlock()
			received++
			if ok, _ := r.c.opt.Faults.fire(FaultKillCoordinator); ok {
				r.c.die()
			}
		case rec.Captured > 0:
			r.sink.emit(sim.Progress{Kind: sim.EventUnitCaptured, Stage: "sample", Offset: r.plan.J,
				Captured: rec.Captured, Population: r.pop, Total: r.total,
				Shard: sr.idx, Shards: r.shards})
		case rec.Retry != nil:
			r.sink.emit(sim.Progress{Kind: sim.EventRetry, Stage: "sample", Offset: r.plan.J,
				Attempt: rec.Retry.Attempt, Note: rec.Retry.Op + ": " + rec.Retry.Err,
				Population: r.pop, Total: r.total, Shard: sr.idx, Shards: r.shards})
		case rec.Done != nil:
			r.sink.emit(sim.Progress{Kind: sim.EventShardDone, Stage: "sample", Offset: r.plan.J,
				Replayed: received, Population: r.pop, Total: sr.hi - sr.lo,
				Shard: sr.idx, Shards: r.shards})
			return received, rec.Done, nil
		}
	}
}

// eventSink serializes progress callbacks across the run's goroutines.
type eventSink struct {
	mu sync.Mutex
	fn sim.ProgressFunc
}

func newSink(fn sim.ProgressFunc) *eventSink {
	if fn == nil {
		return nil
	}
	return &eventSink{fn: fn}
}

func (s *eventSink) emit(ev sim.Progress) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fn(ev)
}

// etaFrom extrapolates remaining time from the observed rate.
func etaFrom(start time.Time, done, total int) time.Duration {
	if done <= 0 || total <= 0 || done >= total {
		return 0
	}
	elapsed := wallclock.Since(start)
	return time.Duration(float64(elapsed) / float64(done) * float64(total-done))
}

// Handler returns the coordinator's HTTP API. After die (the injected
// coordinator kill) every request — including in-flight streams — is
// severed exactly as a process death would sever it.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/register", c.handleRegister)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/claims", c.handleClaim)
	mux.HandleFunc("GET /v1/sweeps/{hash}", c.handleSweepGet)
	mux.HandleFunc("PUT /v1/sweeps/{hash}", c.handleSweepPut)
	mux.HandleFunc("GET /v1/partials/{hash}", c.handlePartialGet)
	mux.HandleFunc("PUT /v1/partials/{hash}", c.handlePartialPut)
	mux.HandleFunc("POST /v1/runs", c.handleRunCreate)
	mux.HandleFunc("GET /v1/runs/{id}/stream", c.handleRunStream)
	mux.HandleFunc("DELETE /v1/runs/{id}", c.handleRunCancel)
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if c.killed() {
			panic(http.ErrAbortHandler)
		}
		mux.ServeHTTP(rw, req)
	})
}

func (c *Coordinator) handleRegister(rw http.ResponseWriter, req *http.Request) {
	var msg registerMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil || msg.URL == "" {
		http.Error(rw, "bad register body", http.StatusBadRequest)
		return
	}
	c.addWorker(msg.URL, time.Duration(msg.IntervalNs))
	rw.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleHeartbeat(rw http.ResponseWriter, req *http.Request) {
	var msg heartbeatMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil || msg.URL == "" {
		http.Error(rw, "bad heartbeat body", http.StatusBadRequest)
		return
	}
	w := c.workerByURL(msg.URL)
	if w == nil {
		// A beat from a worker the coordinator forgot (restart): tell it
		// to re-register.
		http.Error(rw, "unknown worker; re-register", http.StatusNotFound)
		return
	}
	w.beat()
	rw.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleClaim(rw http.ResponseWriter, req *http.Request) {
	var msg claimMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil {
		http.Error(rw, "bad claim body", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	run, ok := c.active[msg.Hash]
	if !ok {
		c.mu.Unlock()
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	state := claimWait
	if c.sweepReady(run) {
		state = claimReady
	} else {
		cl, claimed := c.claims[msg.Hash]
		if claimed && cl.owner != msg.Owner {
			if ok, _ := c.opt.Faults.fire(FaultExpireLease); ok {
				claimed = false // injected: treat the lease as lapsed
			}
		}
		if !claimed || cl.owner == msg.Owner || wallclock.Since(cl.since) > c.opt.LeaseTTL {
			// Unclaimed, re-claimed by the current owner (which renews the
			// lease), or the lease expired (the owner died mid-sweep): the
			// caller sweeps — resuming from the dead owner's uploaded
			// partial journal when one exists.
			c.claims[msg.Hash] = claimState{owner: msg.Owner, since: wallclock.Now()}
			state = claimOwner
		}
	}
	c.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(claimReply{State: state, LeaseNs: int64(c.opt.LeaseTTL)})
}

func (c *Coordinator) activeFor(hash string) (*activeRun, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	run, ok := c.active[hash]
	return run, ok
}

func (c *Coordinator) handleSweepGet(rw http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	run, ok := c.activeFor(hash)
	if !ok {
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	set := c.sweeps.Get(run.key)
	if set == nil && c.store != nil && !run.noStore {
		loaded, err := c.store.Load(run.key)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		if loaded != nil {
			c.sweeps.Put(run.key, loaded)
			set = loaded
		}
	}
	if set == nil {
		http.Error(rw, "sweep not available", http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	if err := checkpoint.EncodeSet(rw, run.key, set); err != nil {
		// Headers are gone; the broken stream surfaces as a decode
		// failure on the worker, which falls back to claiming.
		c.logf("dist: sweep download %s failed: %v", hash, err)
	}
}

func (c *Coordinator) handleSweepPut(rw http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	run, ok := c.activeFor(hash)
	if !ok {
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	set, err := checkpoint.DecodeSet(req.Body, run.key)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	c.sweeps.Put(run.key, set)
	if c.store != nil && !run.noStore && !c.store.Contains(run.key) {
		if err := c.store.Save(run.key, set); err != nil {
			c.logf("dist: persisting sweep %s failed: %v", hash, err)
		}
	}
	c.mu.Lock()
	delete(c.claims, hash)
	delete(c.partials, hash)
	c.mu.Unlock()
	if c.store != nil && !run.noStore {
		c.store.DropPartial(run.key)
	}
	c.logf("dist: sweep %s uploaded (%d units)", hash, len(set.Units))
	rw.WriteHeader(http.StatusNoContent)
}

// handlePartialPut accepts a sweep owner's partial journal (partial
// record bytes). The journal is validated against the run's key
// before it is kept: a corrupt upload is rejected so the fleet never
// resumes from garbage — it degrades to an earlier journal or a cold
// sweep instead.
func (c *Coordinator) handlePartialPut(rw http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	run, ok := c.activeFor(hash)
	if !ok {
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	raw, err := io.ReadAll(req.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	rs, err := checkpoint.DecodePartial(bytes.NewReader(raw), run.key)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.partials[hash] = raw
	c.mu.Unlock()
	if c.store != nil && !run.noStore {
		if err := c.store.SavePartial(run.key, rs); err != nil {
			c.logf("dist: persisting partial %s failed: %v", hash, err)
		}
	}
	rw.WriteHeader(http.StatusNoContent)
}

// handlePartialGet serves the most recent partial journal for a run's
// sweep, falling back to the store's *.partial file when memory has
// none (a coordinator restart). 404 when no journal exists: the caller
// sweeps cold.
func (c *Coordinator) handlePartialGet(rw http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	run, ok := c.activeFor(hash)
	if !ok {
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	c.mu.Lock()
	raw := c.partials[hash]
	c.mu.Unlock()
	if raw == nil && c.store != nil && !run.noStore {
		rs, err := c.store.LoadPartial(run.key)
		if err == nil && rs != nil {
			var buf bytes.Buffer
			if err := checkpoint.EncodePartial(&buf, run.key, rs); err == nil {
				raw = buf.Bytes()
			}
		}
	}
	if raw == nil {
		http.Error(rw, "no partial sweep journal", http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(raw)
}

// handleRunCreate accepts a run and replies 202 with its stable ID and
// the coordinator epoch; the caller streams events from
// GET /v1/runs/{id}/stream.
func (c *Coordinator) handleRunCreate(rw http.ResponseWriter, req *http.Request) {
	var wr wireRequest
	if err := json.NewDecoder(req.Body).Decode(&wr); err != nil {
		http.Error(rw, "bad run body", http.StatusBadRequest)
		return
	}
	if err := distributable(wr.request()); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	rs, err := c.accept(&wr)
	switch {
	case errors.Is(err, ErrBusy):
		http.Error(rw, err.Error(), http.StatusTooManyRequests)
		return
	case err != nil:
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusAccepted)
	json.NewEncoder(rw).Encode(runCreated{ID: rs.id, Epoch: c.epoch})
}

// handleRunStream serves a run's event history as NDJSON from
// ?from=<seq> (exclusive), blocking for new events until the terminal
// record. A client whose ?epoch does not match this incarnation is
// streamed from the recovered history's start instead — its high-water
// mark refers to events that died with the previous process.
func (c *Coordinator) handleRunStream(rw http.ResponseWriter, req *http.Request) {
	rs := c.runByID(req.PathValue("id"))
	if rs == nil {
		http.Error(rw, "unknown run", http.StatusNotFound)
		return
	}
	var from int64
	if q := req.URL.Query(); q.Get("epoch") == c.epoch {
		from, _ = strconv.ParseInt(q.Get("from"), 10, 64) //simlint:discard malformed offset restarts the stream from zero, which is always safe
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.Header().Set("X-Run-Epoch", c.epoch)
	rw.WriteHeader(http.StatusOK)
	fl, _ := rw.(http.Flusher)
	enc := json.NewEncoder(rw)
	for {
		envs, done, wait := rs.next(from)
		for _, env := range envs {
			if err := enc.Encode(env); err != nil {
				return // consumer hung up
			}
			from = env.Seq
		}
		if fl != nil && len(envs) > 0 {
			fl.Flush()
		}
		if done {
			return
		}
		if wait == nil {
			continue // drained a batch; more may already be buffered
		}
		select {
		case <-wait:
		case <-req.Context().Done():
			return
		case <-c.lifeCtx.Done():
			panic(http.ErrAbortHandler) // the kill severs in-flight streams
		}
	}
}

// handleRunCancel aborts a run on the client's behalf; the run reaches
// a terminal error state and its journal is removed.
func (c *Coordinator) handleRunCancel(rw http.ResponseWriter, req *http.Request) {
	rs := c.runByID(req.PathValue("id"))
	if rs == nil {
		http.Error(rw, "unknown run", http.StatusNotFound)
		return
	}
	rs.cancel()
	rw.WriteHeader(http.StatusNoContent)
}
