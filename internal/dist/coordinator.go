package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/sim"
)

// ErrBusy reports that the coordinator's run slots and wait queue are
// both full; the caller should retry later (HTTP 429 on the wire).
var ErrBusy = errors.New("dist: coordinator at capacity")

// Options configures a Coordinator.
type Options struct {
	// StoreDir, when non-empty, attaches an on-disk checkpoint store:
	// uploaded sweeps are persisted and shared across runs and restarts.
	// StoreMaxBytes caps it (see sim.WithStoreLimit).
	StoreDir      string
	StoreMaxBytes int64
	// MemCacheBytes caps the in-memory sweep cache's snapshot payload
	// (0 = unbounded). The cache fronts the store either way: fetches
	// hit memory first, uploads land in both.
	MemCacheBytes int64
	// MaxActive bounds concurrently executing runs (default 2);
	// MaxQueue bounds runs waiting for a slot (default 16). A run
	// beyond both fails fast with ErrBusy; a queued run honors its
	// context deadline.
	MaxActive int
	MaxQueue  int
	// ShardsPerWorker sets how many contiguous shard ranges are cut per
	// live worker (default 2): more shards mean finer-grained retry and
	// better load balance, at more per-shard overhead.
	ShardsPerWorker int
	// LeaseTTL bounds how long a sweep claim may sit unfinished before
	// another worker may take ownership (default 2 minutes) — the
	// recovery path for a worker that died mid-sweep. Owners renew the
	// lease by re-claiming (the worker does so every LeaseTTL/3), so the
	// TTL can sit well below the longest sweep.
	LeaseTTL time.Duration
	// Faults, when non-nil, arms the deterministic fault-injection
	// harness on the coordinator's hooks (FaultExpireLease). Testing
	// only.
	Faults *Faults
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// Coordinator is the distributed sampling service's front door: it
// admits runs, shards their sampled units across registered workers,
// serves the fleet-wide sweep cache and claim table, and merges shard
// streams into bit-identical reports. All methods are safe for
// concurrent use.
type Coordinator struct {
	opt    Options
	store  *checkpoint.Store
	sweeps *checkpoint.MemCache
	client *http.Client
	slots  chan struct{}

	mu      sync.Mutex
	queued  int
	workers []*workerRef
	claims  map[string]claimState
	active  map[string]*activeRun
	progs   map[progKey]*program.Program
	// partials holds uploaded partial-sweep journals (opaque format-v3
	// bytes) by key hash: a sweep owner uploads its journal as it
	// progresses, and the worker that wins the claim after the owner
	// dies resumes from here instead of resweeping. Entries are dropped
	// when the completed sweep arrives; with a store attached they are
	// also persisted as *.partial files, surviving coordinator restarts.
	partials map[string][]byte
}

type claimState struct {
	owner string
	since time.Time
}

// activeRun pins the key material the sweep endpoints need for a run's
// hash, refcounted across concurrent runs sharing it.
type activeRun struct {
	key     checkpoint.Key
	noStore bool
	refs    int
}

type progKey struct {
	name   string
	length uint64
}

// workerRef is one registered worker.
type workerRef struct {
	url string

	mu   sync.Mutex
	dead bool
	// beatEvery and lastBeat implement heartbeat liveness: a worker that
	// announced a heartbeat interval and then fell silent for three
	// intervals stops receiving dispatches until it beats again.
	// Workers that never announced an interval are exempt.
	beatEvery time.Duration
	lastBeat  time.Time
}

func (w *workerRef) markDead() { w.mu.Lock(); w.dead = true; w.mu.Unlock() }
func (w *workerRef) revive()   { w.mu.Lock(); w.dead = false; w.mu.Unlock() }
func (w *workerRef) beat() {
	w.mu.Lock()
	w.dead = false
	w.lastBeat = time.Now()
	w.mu.Unlock()
}
func (w *workerRef) alive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return false
	}
	if w.beatEvery > 0 && !w.lastBeat.IsZero() && time.Since(w.lastBeat) > 3*w.beatEvery {
		return false
	}
	return true
}

// NewCoordinator builds a coordinator (opening the on-disk store when
// configured). Workers register themselves over POST /v1/register or
// are added directly with AddWorker.
func NewCoordinator(opt Options) (*Coordinator, error) {
	if opt.MaxActive <= 0 {
		opt.MaxActive = 2
	}
	if opt.MaxQueue < 0 {
		opt.MaxQueue = 0
	} else if opt.MaxQueue == 0 {
		opt.MaxQueue = 16
	}
	if opt.ShardsPerWorker <= 0 {
		opt.ShardsPerWorker = 2
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 2 * time.Minute
	}
	c := &Coordinator{
		opt:      opt,
		sweeps:   checkpoint.NewMemCache(),
		client:   &http.Client{},
		slots:    make(chan struct{}, opt.MaxActive),
		claims:   make(map[string]claimState),
		active:   make(map[string]*activeRun),
		progs:    make(map[progKey]*program.Program),
		partials: make(map[string][]byte),
	}
	c.sweeps.MaxBytes = opt.MemCacheBytes
	if opt.StoreDir != "" {
		store, err := checkpoint.OpenStore(opt.StoreDir)
		if err != nil {
			return nil, err
		}
		store.MaxBytes = opt.StoreMaxBytes
		store.Logf = opt.Logf
		c.store = store
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// AddWorker registers a worker by base URL (idempotent; re-adding a
// dead worker revives it). Workers added this way announce no
// heartbeat and are never expired for silence.
func (c *Coordinator) AddWorker(url string) { c.addWorker(url, 0) }

func (c *Coordinator) addWorker(url string, beatEvery time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.url == url {
			w.mu.Lock()
			w.dead = false
			w.beatEvery = beatEvery
			if beatEvery > 0 {
				w.lastBeat = time.Now()
			}
			w.mu.Unlock()
			return
		}
	}
	ref := &workerRef{url: url, beatEvery: beatEvery}
	if beatEvery > 0 {
		ref.lastBeat = time.Now()
	}
	c.workers = append(c.workers, ref)
	c.logf("dist: worker registered: %s", url)
}

// workerByURL finds a registered worker.
func (c *Coordinator) workerByURL(url string) *workerRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.url == url {
			return w
		}
	}
	return nil
}

func (c *Coordinator) liveWorkers() []*workerRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	var live []*workerRef
	for _, w := range c.workers {
		if w.alive() {
			live = append(live, w)
		}
	}
	return live
}

// admit acquires a run slot, waiting in the bounded queue when all
// slots are busy. The returned release frees the slot.
func (c *Coordinator) admit(ctx context.Context) (release func(), err error) {
	select {
	case c.slots <- struct{}{}:
		return func() { <-c.slots }, nil
	default:
	}
	c.mu.Lock()
	if c.queued >= c.opt.MaxQueue {
		c.mu.Unlock()
		return nil, ErrBusy
	}
	c.queued++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.queued--
		c.mu.Unlock()
	}()
	select {
	case c.slots <- struct{}{}:
		return func() { <-c.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// workload returns the generated program for (name, length), cached.
func (c *Coordinator) workload(name string, length uint64) (*program.Program, error) {
	key := progKey{name, length}
	c.mu.Lock()
	p, ok := c.progs[key]
	c.mu.Unlock()
	if ok {
		return p, nil
	}
	spec, err := program.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err = program.Generate(spec, length)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.progs[key] = p
	c.mu.Unlock()
	return p, nil
}

// retainRun pins the run's key in the active table so the sweep and
// claim endpoints can serve its hash.
func (c *Coordinator) retainRun(hash string, key checkpoint.Key, noStore bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if run, ok := c.active[hash]; ok {
		run.refs++
		return
	}
	c.active[hash] = &activeRun{key: key, noStore: noStore, refs: 1}
}

func (c *Coordinator) releaseRun(hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	run, ok := c.active[hash]
	if !ok {
		return
	}
	run.refs--
	if run.refs <= 0 {
		delete(c.active, hash)
		delete(c.claims, hash)
	}
}

// sweepReady reports a reusable committed sweep for run (memory first,
// then the store unless the run opted out).
func (c *Coordinator) sweepReady(run *activeRun) bool {
	if c.sweeps.Contains(run.key) {
		return true
	}
	return c.store != nil && !run.noStore && c.store.Contains(run.key)
}

// Run executes one request across the registered workers, with the
// same signature and Report shape as sim.Session.Run. The report's
// measurement half is bit-identical to a local engine run of the same
// request at any topology.
func (c *Coordinator) Run(ctx context.Context, req *sim.Request) (*sim.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	wr, err := wireFromRequest(req)
	if err != nil {
		return nil, err
	}
	release, err := c.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return c.runAdmitted(ctx, wr, req.Progress)
}

// runAdmitted resolves and executes an admitted run.
func (c *Coordinator) runAdmitted(ctx context.Context, wr *wireRequest, progress sim.ProgressFunc) (*sim.Report, error) {
	start := time.Now()
	req := wr.request()
	length := req.Length
	if length == 0 {
		length = sim.DefaultLength
	}
	prog, err := c.workload(req.Workload, length)
	if err != nil {
		return nil, err
	}
	cfg := req.Config
	if cfg == (uarch.Config{}) {
		cfg = uarch.Config8Way()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan := sim.ResolvePlan(req, prog)
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	spec := runSpec{Workload: req.Workload, Length: length, Config: cfg, Plan: specFromPlan(plan)}

	run := &shardedRun{
		c:    c,
		spec: spec,
		plan: plan,
		prog: prog,
		wr:   wr,
		sink: newSink(progress),
	}
	res, err := run.run(ctx)
	if err != nil {
		return nil, err
	}
	alpha := wr.Alpha
	if alpha == 0 {
		alpha = stats.Alpha997
	}
	rep := &sim.Report{Results: []*sim.Result{res}, Elapsed: time.Since(start)}
	if len(res.Units) > 0 {
		rep.CPI = res.CPIEstimate(alpha)
		rep.EPI = res.EPIEstimate(alpha)
	}
	return rep, nil
}

// shardedRun is the state of one dispatched run.
type shardedRun struct {
	c    *Coordinator
	spec runSpec
	plan smarts.Plan
	prog *program.Program
	wr   *wireRequest
	sink *eventSink

	pop    uint64
	total  int
	shards int
	m      *merger

	// smu guards the merge and the shard bookkeeping below; merger
	// offers are serialized under it (one lock, because the merge IS
	// the shared state of the run).
	smu       sync.Mutex
	pending   chan shardRange
	remaining int
	runErr    error
	trailer   *shardDone
	anySwept  bool
}

type shardRange struct {
	lo, hi, idx int
}

// splitRange cuts [0, n) into at most parts contiguous, near-even
// ranges (fewer when n < parts; none when n == 0).
func splitRange(n, parts int) []shardRange {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]shardRange, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + (n-lo)/(parts-i)
		out = append(out, shardRange{lo: lo, hi: hi, idx: i})
		lo = hi
	}
	return out
}

func (r *shardedRun) run(ctx context.Context) (*smarts.Result, error) {
	c := r.c
	r.pop = r.prog.Length / r.plan.U
	r.total = r.plan.CheckpointParams().ExpectedUnits(r.pop)
	workers := c.liveWorkers()
	if len(workers) == 0 {
		return nil, fmt.Errorf("dist: no live workers registered")
	}
	shards := splitRange(r.total, len(workers)*c.opt.ShardsPerWorker)
	r.shards = len(shards)

	key := checkpoint.KeyFor(r.prog, r.spec.Config, r.plan.CheckpointParams())
	hash := key.Hash()
	c.retainRun(hash, key, r.wr.NoStore)
	defer c.releaseRun(hash)

	r.sink.emit(sim.Progress{Kind: sim.EventRunStart, Stage: "sample", Offset: r.plan.J,
		Population: r.pop, Total: r.total})

	alpha := r.wr.Alpha
	if alpha == 0 {
		alpha = stats.Alpha997
	}
	r.m = newMerger(r.plan.U, alpha, r.wr.TargetEps, r.wr.MinUnits, r.total)
	dispatchCtx, cancelDispatch := context.WithCancel(ctx)
	defer cancelDispatch()
	replayStart := time.Now()
	r.m.onFold = func(merged uint64, est stats.Estimate) {
		r.sink.emit(sim.Progress{Kind: sim.EventUnitReplayed, Stage: "sample", Offset: r.plan.J,
			Replayed: int(merged), Estimate: est, Population: r.pop, Total: r.total,
			ETA: etaFrom(replayStart, int(merged), r.total)})
	}
	// Early termination broadcasts a stop: cancelling the dispatch
	// context aborts every in-flight shard request fleet-wide.
	r.m.onStop = cancelDispatch

	r.pending = make(chan shardRange, r.shards+len(workers))
	for _, sr := range shards {
		r.pending <- sr
	}
	r.remaining = r.shards
	if r.shards == 0 {
		close(r.pending)
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *workerRef) {
			defer wg.Done()
			r.workerLoop(dispatchCtx, w)
		}(w)
	}
	wg.Wait()
	cancelDispatch()

	r.smu.Lock()
	defer r.smu.Unlock()
	switch {
	case r.runErr != nil:
		return nil, r.runErr
	case r.m.earlyStopped():
		// The cutoff prefix is complete; outstanding shards were only
		// producing surplus units beyond it.
	case ctx.Err() != nil:
		return nil, ctx.Err()
	case r.remaining > 0:
		return nil, fmt.Errorf("dist: %d shard range(s) left unassigned: all workers failed", r.remaining)
	}
	// The trailer can be missing only when early termination cut the
	// run before any shard finished; the population is known locally
	// and the sweep accounting is then best-effort zero (a local
	// early-terminated run reports its own partial sweep cost, which is
	// wall-clock-like and excluded from bit-identity anyway).
	td := shardDone{Population: r.pop}
	if r.trailer != nil {
		td = *r.trailer
	}
	res := r.m.finalize(r.plan, td, r.anySwept)
	done := sim.Progress{Kind: sim.EventRunDone, Stage: "sample", Offset: r.plan.J,
		Replayed: len(res.Units), Cached: res.SweepCached, Population: r.pop, Total: r.total}
	if len(res.Units) > 0 {
		done.Estimate = res.CPIEstimate(alphaOr997(r.wr.Alpha))
	}
	r.sink.emit(done)
	return res, nil
}

func alphaOr997(alpha float64) float64 {
	if alpha == 0 {
		return stats.Alpha997
	}
	return alpha
}

// workerLoop pulls shard ranges for one worker until the pool drains,
// the run is cancelled, or the worker dies.
func (r *shardedRun) workerLoop(ctx context.Context, w *workerRef) {
	for {
		var sr shardRange
		var ok bool
		select {
		case sr, ok = <-r.pending:
			if !ok {
				return
			}
		case <-ctx.Done():
			return
		}
		received, trailer, err := r.runShard(ctx, w, sr)
		if err == nil {
			r.smu.Lock()
			if trailer != nil {
				if r.trailer == nil {
					r.trailer = trailer
				}
				r.anySwept = r.anySwept || trailer.Swept
			}
			r.remaining--
			if r.remaining == 0 {
				close(r.pending)
			}
			r.smu.Unlock()
			continue
		}
		if ctx.Err() != nil {
			return // cancelled: early stop or caller cancel, not a failure
		}
		var app *appError
		if errors.As(err, &app) {
			// The simulation itself failed; it would fail identically on
			// any worker. Abort the run.
			r.smu.Lock()
			if r.runErr == nil {
				r.runErr = err
			}
			r.smu.Unlock()
			return
		}
		// Transport failure: the worker is gone. Units stream in
		// ascending order, so the received prefix is contiguous — the
		// rest of the range goes back in the pool for the survivors,
		// and merge-by-index keeps the outcome untouched.
		w.markDead()
		r.c.logf("dist: worker %s died on shard %d [%d,%d): %v; requeueing %d unit(s)",
			w.url, sr.idx, sr.lo, sr.hi, err, sr.hi-(sr.lo+received))
		r.smu.Lock()
		r.pending <- shardRange{lo: sr.lo + received, hi: sr.hi, idx: sr.idx}
		r.smu.Unlock()
		return
	}
}

// appError is a failure the worker's simulation reported (as opposed to
// transport loss); it is deterministic and aborts the run.
type appError struct{ msg string }

func (e *appError) Error() string { return e.msg }

// runShard executes one shard range on one worker, folding its streamed
// units into the merge. It returns the number of unit records received
// (the contiguous prefix of the range) and the stream trailer.
func (r *shardedRun) runShard(ctx context.Context, w *workerRef, sr shardRange) (received int, trailer *shardDone, err error) {
	r.sink.emit(sim.Progress{Kind: sim.EventShardStart, Stage: "sample", Offset: r.plan.J,
		Population: r.pop, Total: sr.hi - sr.lo, Shard: sr.idx, Shards: r.shards})

	body, err := json.Marshal(shardMsg{Spec: r.spec, Lo: sr.lo, Hi: sr.hi, Shard: sr.idx, Shards: r.shards})
	if err != nil {
		return 0, nil, &appError{msg: fmt.Sprintf("dist: encode shard: %v", err)}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return 0, nil, &appError{msg: fmt.Sprintf("dist: build shard request: %v", err)}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.c.client.Do(hreq)
	if err != nil {
		return 0, nil, err // transport
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, nil, &appError{msg: fmt.Sprintf("dist: worker %s rejected shard: %s: %s",
			w.url, resp.Status, bytes.TrimSpace(msg))}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var rec shardRecord
		if derr := dec.Decode(&rec); derr != nil {
			// EOF (clean or mid-record) without a trailer means the
			// worker died mid-stream: a transport failure.
			return received, nil, fmt.Errorf("dist: shard stream from %s broke: %w", w.url, derr)
		}
		switch {
		case rec.Error != "":
			return received, nil, &appError{msg: rec.Error}
		case rec.Unit != nil:
			r.smu.Lock()
			r.m.offer(*rec.Unit)
			r.smu.Unlock()
			received++
		case rec.Captured > 0:
			r.sink.emit(sim.Progress{Kind: sim.EventUnitCaptured, Stage: "sample", Offset: r.plan.J,
				Captured: rec.Captured, Population: r.pop, Total: r.total,
				Shard: sr.idx, Shards: r.shards})
		case rec.Retry != nil:
			r.sink.emit(sim.Progress{Kind: sim.EventRetry, Stage: "sample", Offset: r.plan.J,
				Attempt: rec.Retry.Attempt, Note: rec.Retry.Op + ": " + rec.Retry.Err,
				Population: r.pop, Total: r.total, Shard: sr.idx, Shards: r.shards})
		case rec.Done != nil:
			r.sink.emit(sim.Progress{Kind: sim.EventShardDone, Stage: "sample", Offset: r.plan.J,
				Replayed: received, Population: r.pop, Total: sr.hi - sr.lo,
				Shard: sr.idx, Shards: r.shards})
			return received, rec.Done, nil
		}
	}
}

// eventSink serializes progress callbacks across the run's goroutines.
type eventSink struct {
	mu sync.Mutex
	fn sim.ProgressFunc
}

func newSink(fn sim.ProgressFunc) *eventSink {
	if fn == nil {
		return nil
	}
	return &eventSink{fn: fn}
}

func (s *eventSink) emit(ev sim.Progress) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fn(ev)
}

// etaFrom extrapolates remaining time from the observed rate.
func etaFrom(start time.Time, done, total int) time.Duration {
	if done <= 0 || total <= 0 || done >= total {
		return 0
	}
	elapsed := time.Since(start)
	return time.Duration(float64(elapsed) / float64(done) * float64(total-done))
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/register", c.handleRegister)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/claims", c.handleClaim)
	mux.HandleFunc("GET /v1/sweeps/{hash}", c.handleSweepGet)
	mux.HandleFunc("PUT /v1/sweeps/{hash}", c.handleSweepPut)
	mux.HandleFunc("GET /v1/partials/{hash}", c.handlePartialGet)
	mux.HandleFunc("PUT /v1/partials/{hash}", c.handlePartialPut)
	mux.HandleFunc("POST /v1/runs", c.handleRun)
	return mux
}

func (c *Coordinator) handleRegister(rw http.ResponseWriter, req *http.Request) {
	var msg registerMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil || msg.URL == "" {
		http.Error(rw, "bad register body", http.StatusBadRequest)
		return
	}
	c.addWorker(msg.URL, time.Duration(msg.IntervalNs))
	rw.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleHeartbeat(rw http.ResponseWriter, req *http.Request) {
	var msg heartbeatMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil || msg.URL == "" {
		http.Error(rw, "bad heartbeat body", http.StatusBadRequest)
		return
	}
	w := c.workerByURL(msg.URL)
	if w == nil {
		// A beat from a worker the coordinator forgot (restart): tell it
		// to re-register.
		http.Error(rw, "unknown worker; re-register", http.StatusNotFound)
		return
	}
	w.beat()
	rw.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleClaim(rw http.ResponseWriter, req *http.Request) {
	var msg claimMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil {
		http.Error(rw, "bad claim body", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	run, ok := c.active[msg.Hash]
	if !ok {
		c.mu.Unlock()
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	state := claimWait
	if c.sweepReady(run) {
		state = claimReady
	} else {
		cl, claimed := c.claims[msg.Hash]
		if claimed && cl.owner != msg.Owner {
			if ok, _ := c.opt.Faults.fire(FaultExpireLease); ok {
				claimed = false // injected: treat the lease as lapsed
			}
		}
		if !claimed || cl.owner == msg.Owner || time.Since(cl.since) > c.opt.LeaseTTL {
			// Unclaimed, re-claimed by the current owner (which renews the
			// lease), or the lease expired (the owner died mid-sweep): the
			// caller sweeps — resuming from the dead owner's uploaded
			// partial journal when one exists.
			c.claims[msg.Hash] = claimState{owner: msg.Owner, since: time.Now()}
			state = claimOwner
		}
	}
	c.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(claimReply{State: state, LeaseNs: int64(c.opt.LeaseTTL)})
}

func (c *Coordinator) activeFor(hash string) (*activeRun, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	run, ok := c.active[hash]
	return run, ok
}

func (c *Coordinator) handleSweepGet(rw http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	run, ok := c.activeFor(hash)
	if !ok {
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	set := c.sweeps.Get(run.key)
	if set == nil && c.store != nil && !run.noStore {
		loaded, err := c.store.Load(run.key)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		if loaded != nil {
			c.sweeps.Put(run.key, loaded)
			set = loaded
		}
	}
	if set == nil {
		http.Error(rw, "sweep not available", http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	if err := checkpoint.EncodeSet(rw, run.key, set); err != nil {
		// Headers are gone; the broken stream surfaces as a decode
		// failure on the worker, which falls back to claiming.
		c.logf("dist: sweep download %s failed: %v", hash, err)
	}
}

func (c *Coordinator) handleSweepPut(rw http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	run, ok := c.activeFor(hash)
	if !ok {
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	set, err := checkpoint.DecodeSet(req.Body, run.key)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	c.sweeps.Put(run.key, set)
	if c.store != nil && !run.noStore && !c.store.Contains(run.key) {
		if err := c.store.Save(run.key, set); err != nil {
			c.logf("dist: persisting sweep %s failed: %v", hash, err)
		}
	}
	c.mu.Lock()
	delete(c.claims, hash)
	delete(c.partials, hash)
	c.mu.Unlock()
	if c.store != nil && !run.noStore {
		c.store.DropPartial(run.key)
	}
	c.logf("dist: sweep %s uploaded (%d units)", hash, len(set.Units))
	rw.WriteHeader(http.StatusNoContent)
}

// handlePartialPut accepts a sweep owner's partial journal (format-v3
// partial record bytes). The journal is validated against the run's key
// before it is kept: a corrupt upload is rejected so the fleet never
// resumes from garbage — it degrades to an earlier journal or a cold
// sweep instead.
func (c *Coordinator) handlePartialPut(rw http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	run, ok := c.activeFor(hash)
	if !ok {
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	raw, err := io.ReadAll(req.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	rs, err := checkpoint.DecodePartial(bytes.NewReader(raw), run.key)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.partials[hash] = raw
	c.mu.Unlock()
	if c.store != nil && !run.noStore {
		if err := c.store.SavePartial(run.key, rs); err != nil {
			c.logf("dist: persisting partial %s failed: %v", hash, err)
		}
	}
	rw.WriteHeader(http.StatusNoContent)
}

// handlePartialGet serves the most recent partial journal for a run's
// sweep, falling back to the store's *.partial file when memory has
// none (a coordinator restart). 404 when no journal exists: the caller
// sweeps cold.
func (c *Coordinator) handlePartialGet(rw http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	run, ok := c.activeFor(hash)
	if !ok {
		http.Error(rw, "no active run for sweep", http.StatusNotFound)
		return
	}
	c.mu.Lock()
	raw := c.partials[hash]
	c.mu.Unlock()
	if raw == nil && c.store != nil && !run.noStore {
		rs, err := c.store.LoadPartial(run.key)
		if err == nil && rs != nil {
			var buf bytes.Buffer
			if err := checkpoint.EncodePartial(&buf, run.key, rs); err == nil {
				raw = buf.Bytes()
			}
		}
	}
	if raw == nil {
		http.Error(rw, "no partial sweep journal", http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(raw)
}

func (c *Coordinator) handleRun(rw http.ResponseWriter, req *http.Request) {
	var wr wireRequest
	if err := json.NewDecoder(req.Body).Decode(&wr); err != nil {
		http.Error(rw, "bad run body", http.StatusBadRequest)
		return
	}
	if err := distributable(wr.request()); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	release, err := c.admit(req.Context())
	switch {
	case errors.Is(err, ErrBusy):
		http.Error(rw, err.Error(), http.StatusTooManyRequests)
		return
	case err != nil:
		http.Error(rw, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()

	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	fl, _ := rw.(http.Flusher)
	var wmu sync.Mutex
	enc := json.NewEncoder(rw)
	send := func(env runEnvelope) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := enc.Encode(env); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
	progress := func(ev sim.Progress) {
		wp := wireFromProgress(ev)
		send(runEnvelope{Progress: &wp})
	}
	rep, err := c.runAdmitted(req.Context(), &wr, progress)
	if err != nil {
		send(runEnvelope{Error: err.Error()})
		return
	}
	send(runEnvelope{Report: &wireReport{
		Result:    rep.Result(),
		CPI:       rep.CPI,
		EPI:       rep.EPI,
		ElapsedNs: int64(rep.Elapsed),
	}})
}
