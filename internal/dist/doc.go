// Package dist turns the sampling service into a distributed one: a
// coordinator shards a sim.Request's sampled units into contiguous
// ranges, dispatches them to workers over HTTP/JSON (stdlib only), and
// merges the shard streams through the same deterministic stream-order
// aggregation a single machine uses — so the final report is
// bit-identical to a local engine run at any (machine × worker) count,
// including under confidence-targeted early termination.
//
// # Why sharding is free
//
// SMARTS sampling units are statistically independent, and the
// checkpointed engine (internal/engine) makes them computationally
// independent too: each unit's measurement is a pure function of its
// captured launch snapshot. A shard therefore needs nothing from its
// neighbors — only the shared snapshot Set and its [lo, hi) range of
// stream positions — and the merge is a pure reordering problem,
// solved by stats.StreamAggregator exactly as it is for local worker
// pools. Units are merged by stream index, never by arrival order, so
// worker death, retries, and scheduling cannot perturb the estimate.
//
// # Protocol
//
// The coordinator serves:
//
//	POST /v1/runs            serialized request in, NDJSON envelope
//	                         stream out: progress events, then the final
//	                         report (or an error) as the last record.
//	POST /v1/register        worker announces its base URL and optional
//	                         heartbeat interval.
//	POST /v1/heartbeat       worker liveness beat; a worker that
//	                         announced an interval and then stays silent
//	                         for three intervals leaves the dispatch set
//	                         until it beats again.
//	POST /v1/claims          fleet-wide sweep singleflight (see below).
//	GET  /v1/sweeps/{hash}   fetch a captured sweep, encoded in the
//	                         checkpoint store's format-v3 byte stream.
//	PUT  /v1/sweeps/{hash}   upload a freshly captured sweep.
//	GET  /v1/partials/{hash} fetch the sweep's current partial journal
//	                         (404 = sweep cold).
//	PUT  /v1/partials/{hash} upload a sweep owner's partial journal
//	                         (the store's format-v3 partial record;
//	                         validated against the run's key, rejected
//	                         if corrupt).
//	GET  /v1/healthz         readiness.
//
// Workers serve:
//
//	POST /v1/shards        shard assignment in, NDJSON record stream
//	                       out: sweep-progress records while capturing,
//	                       one record per replayed unit in ascending
//	                       stream order, then a trailer with the sweep
//	                       accounting (or an error record).
//	GET  /v1/healthz       readiness.
//
// Sweeps travel in the exact bytes Store.Save writes to disk
// (checkpoint.EncodeSet/DecodeSet), so the wire format is the store
// format and decoding validates the content-addressed key end to end.
// Both sides resolve the plan independently with sim.ResolvePlan and
// derive the same checkpoint.Key, so only the request travels — never
// the plan, the program, or unit indices.
//
// # Fleet-wide sweep singleflight
//
// The functional sweep is the one sequential, whole-stream cost; it
// must be paid once per (workload, plan, warm geometry) key across the
// fleet, not once per shard. Before sweeping, a worker claims the key
// at the coordinator: the reply is "ready" (a sweep is cached or
// stored — fetch it), "owner" (you sweep; upload when done), or "wait"
// (another worker is sweeping — poll). Claims carry a lease: the owner
// renews it by re-claiming every LeaseTTL/3 while it sweeps, so if the
// owner dies mid-sweep the claim expires after LeaseTTL and the next
// poller takes ownership. The uploaded sweep lands in the
// coordinator's bounded MemCache and (unless the request opts out) its
// on-disk store, so later runs skip the sweep entirely.
//
// # Crash-safe sweeps
//
// A sweep owner journals its progress: every ResumeInterval keyframes
// it uploads a partial record (checkpoint.EncodePartial — the same
// bytes Store.PartialWriter journals locally) to the coordinator,
// which keeps it in memory and, with a store attached, as a *.partial
// file that survives coordinator restarts. A worker that wins the
// claim after the owner died fetches the journal and resumes the sweep
// from its last keyframe (checkpoint Params.Resume) instead of
// restarting at instruction zero; the continued unit stream is
// bit-identical to an uninterrupted sweep. Corruption never poisons a
// run: a journal that fails validation is rejected at upload, and one
// that fails resume-replay on the worker degrades to a cold sweep. The
// journal is deleted when the completed sweep arrives.
//
// # Failure and retry
//
// A worker that dies mid-shard is marked dead and its range is
// requeued for the surviving workers. Workers stream units in
// ascending stream order, so the received prefix of a broken stream is
// contiguous; the requeued range resumes exactly after it, and every
// stream position is still offered to the aggregator exactly once.
// Errors the simulation itself reports (as opposed to transport
// failure) abort the run — they are deterministic and would fail on
// any worker. If every worker dies, the run fails with an error
// rather than hanging.
//
// Worker→coordinator RPCs (register, claim, sweep and journal
// transfer) retry transient failures with capped exponential backoff
// plus deterministic jitter; each retried attempt surfaces to the run
// as a sim.EventRetry progress event naming the operation and attempt.
// dist.Client retries its initial run request the same way and, when a
// Fallback session is configured, degrades to an in-process run (after
// a sim.EventFallback event) if the coordinator stays unreachable —
// bit-identical by construction, since local and distributed runs
// share the engine. Deterministic rejections (4xx) neither retry nor
// fall back.
//
// The crash/resume matrix is tested through a deterministic
// fault-injection harness (Faults): kill-the-owner-mid-sweep,
// kill-mid-stream, drop/delay RPC, and expire-lease trigger at exact
// occurrence counts, so lease handoff and journaled resume run as
// ordinary unit tests instead of wall-clock races.
//
// # Early termination and admission
//
// The coordinator folds in-order prefixes as shard streams arrive;
// when the target confidence interval is met it fixes the same cutoff
// a local run would (StreamAggregator.DoneAt) and broadcasts a stop by
// cancelling all in-flight shard requests. Admission control bounds
// concurrent runs (MaxActive) with a bounded wait queue (MaxQueue)
// honoring context deadlines; beyond both, runs fail fast with
// ErrBusy.
package dist
