// Package dist turns the sampling service into a distributed one: a
// coordinator shards a sim.Request's sampled units into contiguous
// ranges, dispatches them to workers over HTTP/JSON (stdlib only), and
// merges the shard streams through the same deterministic stream-order
// aggregation a single machine uses — so the final report is
// bit-identical to a local engine run at any (machine × worker) count,
// including under confidence-targeted early termination.
//
// # Why sharding is free
//
// SMARTS sampling units are statistically independent, and the
// checkpointed engine (internal/engine) makes them computationally
// independent too: each unit's measurement is a pure function of its
// captured launch snapshot. A shard therefore needs nothing from its
// neighbors — only the shared snapshot Set and its [lo, hi) range of
// stream positions — and the merge is a pure reordering problem,
// solved by stats.StreamAggregator exactly as it is for local worker
// pools. Units are merged by stream index, never by arrival order, so
// worker death, retries, and scheduling cannot perturb the estimate.
//
// # Protocol
//
// The coordinator serves:
//
//	POST /v1/runs            serialized request in; replies 202 with the
//	                         run's stable ID and the coordinator epoch.
//	                         The run executes asynchronously — its
//	                         lifetime is the coordinator's, not the
//	                         connection's.
//	GET  /v1/runs/{id}/stream?from=N&epoch=E
//	                         NDJSON envelope stream out: every event
//	                         carries a sequence number, and ?from=N
//	                         resumes after the last envelope the client
//	                         received — progress events, then the final
//	                         report (or an error) as the last record.
//	DELETE /v1/runs/{id}     cancel the run.
//	POST /v1/register        worker announces its base URL and optional
//	                         heartbeat interval.
//	POST /v1/heartbeat       worker liveness beat; a worker that
//	                         announced an interval and then stays silent
//	                         for three intervals leaves the dispatch set
//	                         until it beats again.
//	POST /v1/claims          fleet-wide sweep singleflight (see below).
//	GET  /v1/sweeps/{hash}   fetch a captured sweep, encoded in the
//	                         checkpoint store's format-v3 byte stream.
//	PUT  /v1/sweeps/{hash}   upload a freshly captured sweep.
//	GET  /v1/partials/{hash} fetch the sweep's current partial journal
//	                         (404 = sweep cold).
//	PUT  /v1/partials/{hash} upload a sweep owner's partial journal
//	                         (the store's format-v3 partial record;
//	                         validated against the run's key, rejected
//	                         if corrupt).
//	GET  /v1/healthz         readiness.
//
// Workers serve:
//
//	POST /v1/shards        shard assignment in, NDJSON record stream
//	                       out: sweep-progress records while capturing,
//	                       one record per replayed unit in ascending
//	                       stream order, then a trailer with the sweep
//	                       accounting (or an error record).
//	GET  /v1/healthz       readiness.
//
// Sweeps travel in the exact bytes Store.Save writes to disk
// (checkpoint.EncodeSet/DecodeSet), so the wire format is the store
// format and decoding validates the content-addressed key end to end.
// Both sides resolve the plan independently with sim.ResolvePlan and
// derive the same checkpoint.Key, so only the request travels — never
// the plan, the program, or unit indices.
//
// # Fleet-wide sweep singleflight
//
// The functional sweep is the one sequential, whole-stream cost; it
// must be paid once per (workload, plan, warm geometry) key across the
// fleet, not once per shard. Before sweeping, a worker claims the key
// at the coordinator: the reply is "ready" (a sweep is cached or
// stored — fetch it), "owner" (you sweep; upload when done), or "wait"
// (another worker is sweeping — poll). Claims carry a lease: the owner
// renews it by re-claiming every LeaseTTL/3 while it sweeps, so if the
// owner dies mid-sweep the claim expires after LeaseTTL and the next
// poller takes ownership. The uploaded sweep lands in the
// coordinator's bounded MemCache and (unless the request opts out) its
// on-disk store, so later runs skip the sweep entirely.
//
// # Crash-safe sweeps
//
// A sweep owner journals its progress: every ResumeInterval keyframes
// it uploads a partial record (checkpoint.EncodePartial — the same
// bytes Store.PartialWriter journals locally) to the coordinator,
// which keeps it in memory and, with a store attached, as a *.partial
// file that survives coordinator restarts. A worker that wins the
// claim after the owner died fetches the journal and resumes the sweep
// from its last keyframe (checkpoint Params.Resume) instead of
// restarting at instruction zero; the continued unit stream is
// bit-identical to an uninterrupted sweep. Corruption never poisons a
// run: a journal that fails validation is rejected at upload, and one
// that fails resume-replay on the worker degrades to a cold sweep. The
// journal is deleted when the completed sweep arrives.
//
// # Failure and retry
//
// A worker that dies mid-shard is marked dead and its range is
// requeued for the surviving workers. Workers stream units in
// ascending stream order, so the received prefix of a broken stream is
// contiguous; the requeued range resumes exactly after it, and every
// stream position is still offered to the aggregator exactly once.
// Errors the simulation itself reports (as opposed to transport
// failure) abort the run — they are deterministic and would fail on
// any worker. If every worker dies, the run fails with an error
// rather than hanging.
//
// Worker→coordinator RPCs (register, claim, sweep and journal
// transfer) retry transient failures with capped exponential backoff
// plus deterministic jitter; each retried attempt surfaces to the run
// as a sim.EventRetry progress event naming the operation and attempt.
// dist.Client retries its initial run request the same way and, when a
// Fallback session is configured, degrades to an in-process run (after
// a sim.EventFallback event) if the coordinator stays unreachable —
// bit-identical by construction, since local and distributed runs
// share the engine. Deterministic rejections (4xx) neither retry nor
// fall back.
//
// The crash/resume matrix is tested through a deterministic
// fault-injection harness (Faults): kill-the-owner-mid-sweep,
// kill-mid-stream, kill-the-coordinator, corrupt-frame, drop/delay
// RPC, and expire-lease trigger at exact occurrence counts, so lease
// handoff, journaled resume, coordinator recovery, and quarantine run
// as ordinary unit tests instead of wall-clock races.
//
// # Surviving the coordinator
//
// With a store attached, the coordinator is no longer a single point
// of run loss. Every accepted run writes a write-ahead journal
// (runs/<id>.runj under the store directory, installed by atomic
// temp+rename): the serialized request, the resolved spec (so recovery
// never re-resolves against drifted defaults), the exact shard split,
// then one checksummed line per merged unit and per completed shard
// trailer, flushed as they land. A restarted coordinator replays each
// journal's longest valid prefix: merged units are re-offered to a
// fresh stream-order merge (offer order is irrelevant — the merge is a
// pure function of the offered set), finished shards are absorbed from
// their trailers, and each surviving shard is requeued from the first
// stream position after its journaled contiguous prefix. Exactly-once
// offer semantics hold across the crash: a journaled unit is never
// re-dispatched, an unjournaled one is never skipped, and the final
// report is bit-identical to an uninterrupted run. The journal is
// removed before the terminal event is published, so a finished run
// can never be resurrected.
//
// A run's lifecycle through a crash, client-side: POST /v1/runs
// returns {ID, Epoch}; the client follows GET /v1/runs/{id}/stream.
// When the coordinator dies the stream breaks; the client re-attaches
// with backoff (surfacing each attempt as a sim.EventReattach progress
// event), presenting its last received sequence number and the old
// epoch. The restarted coordinator has a new epoch, so the sequence
// numbers do not line up — it streams the recovered run from zero, and
// the terminal record is still delivered exactly once, because only
// the terminal record decides the run. Re-attach never degrades to a
// local rerun: once the coordinator accepted the run it may still be
// executing, and a silent local redo could double the work. Only run
// creation falls back (dist.Client.Fallback); a 404 on attach means
// the run is truly lost (no store, or terminal before the journal
// existed) and surfaces as a permanent error.
//
// Recovery state machine, coordinator-side:
//
//	accepted   → journal header written; run registered; waits for a
//	             MaxActive slot (queue rules unchanged).
//	running    → shard split journaled, then one line per merged unit
//	             (journal before offer: write-ahead), one per trailer.
//	crashed    → whatever the kernel kept of the journal is the truth.
//	recovered  → journal compacted to its verified prefix, spec rebuilt
//	             from the header, merged prefix re-offered, shard
//	             suffixes requeued; waits for workers to re-register
//	             (heartbeats 404 on the new incarnation, so live
//	             workers come back within a poll interval).
//	terminal   → journal removed, then the report/error envelope is
//	             published and the run's event history is pruned to it.
//
// # End-to-end result integrity
//
// Every measurement crosses the wire sealed: workers stamp each unit
// record with a CRC-32C digest over its measurement fields, the
// coordinator verifies the digest before the unit may enter the merge
// or the journal, and the journal loader re-verifies it at recovery —
// so a flipped bit in transit, in memory, or on disk cannot silently
// perturb the estimate. A digest mismatch quarantines the worker
// (sticky: heartbeats do not un-quarantine it; sim.EventQuarantine
// surfaces the eviction), requeues the shard's unverified suffix to
// the surviving workers, and the run completes bit-identical. The
// checkpoint store applies the same discipline to sweeps at rest:
// format v4 seals every record and partial frame with CRC-32C, and
// checkpoint.Store.Verify (the simd fsck subcommand) scrubs a store
// offline.
//
// # Early termination and admission
//
// The coordinator folds in-order prefixes as shard streams arrive;
// when the target confidence interval is met it fixes the same cutoff
// a local run would (StreamAggregator.DoneAt) and broadcasts a stop by
// cancelling all in-flight shard requests. Admission control bounds
// concurrent runs (MaxActive) with a bounded wait queue (MaxQueue)
// honoring context deadlines; beyond both, runs fail fast with
// ErrBusy.
package dist
