package dist

import (
	"bytes"
	"testing"
)

// journalCorpus renders a small valid run journal — header, shard
// split, one unit line, one done line — through the real encoder.
func journalCorpus(f *testing.F) []byte {
	f.Helper()
	lines := []journalLine{
		{Run: &journalRun{
			ID:    "fuzz-run",
			Req:   wireRequest{Workload: "gccx", Length: 120_000},
			Spec:  runSpec{},
			Total: 4,
			Pop:   120,
		}},
		{Shards: []journalShard{{Lo: 0, Hi: 2, Idx: 0}, {Lo: 2, Hi: 4, Idx: 1}}},
		{Unit: func() *wireUnit {
			u := &wireUnit{Seq: 0, CPI: 1.25, EPI: 9.5}
			u.Digest = u.digest()
			return u
		}()},
		{Done: &journalDone{Idx: 0, Done: shardDone{}}},
	}
	var buf bytes.Buffer
	for _, ln := range lines {
		b, err := encodeJournalLine(ln)
		if err != nil {
			f.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

// FuzzParseRunJournal feeds mutated run-journal bytes to the recovery
// loader: it must never panic, and any corruption must degrade to the
// longest valid prefix — ok only when a valid header line exists, and
// every recovered unit line carrying a verified digest.
func FuzzParseRunJournal(f *testing.F) {
	valid := journalCorpus(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte("deadbeef {\"run\":null}\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, ok := parseRunJournal(data)
		if !ok {
			return
		}
		if rec.hdr.ID == "" && len(data) > 0 && rec.hdr.Total == 0 && rec.hdr.Pop == 0 {
			// A header line decoded to the zero value is possible only if
			// the input actually encoded one; nothing further to check.
			_ = rec
		}
		for i := range rec.units {
			if rec.units[i].digest() != rec.units[i].Digest {
				t.Fatalf("recovered unit %d with unverified digest", i)
			}
		}
	})
}
