package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/program"
	"repro/internal/uarch"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Self is this worker's advertised base URL — the address the
	// coordinator dispatches shards to (required for Register) and the
	// worker's identity in the sweep claim table.
	Self string
	// Workers is the replay worker-pool size per shard (<= 0: one per
	// core). Purely a throughput knob; results are bit-identical at any
	// value.
	Workers int
	// MemCacheBytes caps the worker's local sweep cache (0 = unbounded).
	// Shards of one run hit this cache after the first fetch.
	MemCacheBytes int64
	// PollInterval is the wait between sweep-claim polls while another
	// worker sweeps (default 50ms).
	PollInterval time.Duration
	// Heartbeat, when positive, is the liveness heartbeat interval
	// announced at registration and driven by Worker.Heartbeat; the
	// coordinator stops dispatching to a worker silent for three
	// intervals. 0 disables heartbeats (the worker is never expired for
	// silence).
	Heartbeat time.Duration
	// Keyframe overrides the snapshot keyframe interval for sweeps this
	// worker runs (0 = checkpoint.DefaultKeyframe). Encoding-only, like
	// sim.WithKeyframe: excluded from the sweep key and from
	// bit-identity.
	Keyframe int
	// ResumeInterval is the sweep-journal upload cadence in keyframes
	// while this worker owns a sweep: every n-th keyframe it uploads its
	// partial journal to the coordinator, bounding the work lost if it
	// dies mid-sweep (the next claim winner resumes from the journal).
	// 0 selects engine.DefaultResumeInterval; negative disables journal
	// uploads.
	ResumeInterval int
	// Retries, RetryBase and RetryMax shape the capped exponential
	// backoff (with jitter) on coordinator RPCs — register, claim,
	// sweep and journal transfer. Zero values select the defaults:
	// 4 attempts, 50ms base, 2s cap.
	Retries             int
	RetryBase, RetryMax time.Duration
	// Faults, when non-nil, arms the deterministic fault-injection
	// harness on this worker's hooks (kill-mid-sweep, kill-mid-stream,
	// drop/delay RPC). Testing only.
	Faults *Faults
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// Worker executes shard ranges for a coordinator: it materializes the
// run's snapshot set (fetching it, or sweeping as the fleet
// singleflight's owner), replays its assigned range through the
// engine, and streams per-unit results back in stream order. All
// methods are safe for concurrent use; concurrent shards of one run
// share the cached set.
type Worker struct {
	opt       WorkerOptions
	policy    retryPolicy
	client    *http.Client
	cache     *checkpoint.MemCache
	sweeps    atomic.Uint64
	sweepExec atomic.Uint64
	replayed  atomic.Uint64

	mu    sync.Mutex
	progs map[progKey]*program.Program
}

// NewWorker builds a worker.
func NewWorker(opt WorkerOptions) *Worker {
	if opt.PollInterval <= 0 {
		opt.PollInterval = 50 * time.Millisecond
	}
	w := &Worker{
		opt:    opt,
		policy: retryPolicy{Attempts: opt.Retries, Base: opt.RetryBase, Max: opt.RetryMax}.withDefaults(),
		client: faultClient(opt.Faults),
		cache:  checkpoint.NewMemCache(),
		progs:  make(map[progKey]*program.Program),
	}
	w.cache.MaxBytes = opt.MemCacheBytes
	return w
}

func (w *Worker) logf(format string, args ...any) {
	if w.opt.Logf != nil {
		w.opt.Logf(format, args...)
	}
}

// SweepCount returns how many functional sweeps this worker has run
// itself (fleet singleflight should keep the fleet-wide sum at one per
// key).
func (w *Worker) SweepCount() uint64 { return w.sweeps.Load() }

// SweepExecInsts returns the functional-warming instructions this
// worker actually executed while sweeping, counted as the sweep runs —
// journaled prefixes resumed from the fleet are excluded, and a sweep
// killed mid-flight still counts what it burned — so the fleet-wide
// sum bounds the sweep work duplicated across a crash/handoff.
func (w *Worker) SweepExecInsts() uint64 { return w.sweepExec.Load() }

// ReplayedUnits returns how many units this worker has replayed across
// all shards. Summed over the fleet it bounds the replay work of a
// run: after a coordinator crash/recovery, the fleet-wide sum must not
// exceed the run's unit count by more than the unjournaled suffix.
func (w *Worker) ReplayedUnits() uint64 { return w.replayed.Load() }

// httpRetryable classifies an HTTP status as transient (worth a
// backoff retry) or deterministic.
func httpRetryable(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// Register announces the worker to its coordinator, retrying transient
// failures with capped exponential backoff.
func (w *Worker) Register(ctx context.Context) error {
	return retry(ctx, w.policy, func(attempt int, err error) {
		w.logf("dist: register with %s failed (attempt %d): %v; retrying", w.opt.Coordinator, attempt, err)
	}, func() error {
		return w.registerOnce(ctx)
	})
}

func (w *Worker) registerOnce(ctx context.Context) error {
	body, err := json.Marshal(registerMsg{URL: w.opt.Self, IntervalNs: int64(w.opt.Heartbeat)})
	if err != nil {
		return permanent(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opt.Coordinator+"/v1/register", bytes.NewReader(body))
	if err != nil {
		return permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("dist: register with %s: %s", w.opt.Coordinator, resp.Status)
		if !httpRetryable(resp.StatusCode) {
			return permanent(err)
		}
		return err
	}
	return nil
}

// Heartbeat beats the coordinator every WorkerOptions.Heartbeat until
// ctx ends, keeping this worker live in the dispatch set. It returns
// immediately when no heartbeat interval is configured. A beat the
// coordinator rejects as unknown (its restart lost the registration)
// re-registers.
func (w *Worker) Heartbeat(ctx context.Context) {
	if w.opt.Heartbeat <= 0 {
		return
	}
	t := time.NewTicker(w.opt.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if err := w.beatOnce(ctx); err != nil && ctx.Err() == nil {
			w.logf("dist: heartbeat: %v", err)
		}
	}
}

func (w *Worker) beatOnce(ctx context.Context) error {
	body, err := json.Marshal(heartbeatMsg{URL: w.opt.Self})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opt.Coordinator+"/v1/heartbeat", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return w.Register(ctx)
	}
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("heartbeat with %s: %s", w.opt.Coordinator, resp.Status)
	}
	return nil
}

// Handler returns the worker's HTTP API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/shards", w.handleShard)
	return mux
}

func (w *Worker) workload(name string, length uint64) (*program.Program, error) {
	key := progKey{name, length}
	w.mu.Lock()
	p, ok := w.progs[key]
	w.mu.Unlock()
	if ok {
		return p, nil
	}
	spec, err := program.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err = program.Generate(spec, length)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.progs[key] = p
	w.mu.Unlock()
	return p, nil
}

func (w *Worker) handleShard(rw http.ResponseWriter, req *http.Request) {
	var msg shardMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil {
		http.Error(rw, "bad shard body", http.StatusBadRequest)
		return
	}
	ctx := req.Context()
	prog, err := w.workload(msg.Spec.Workload, msg.Spec.Length)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	cfg := msg.Spec.Config
	if cfg == (uarch.Config{}) {
		cfg = uarch.Config8Way()
	}
	plan := msg.Spec.Plan.plan()
	if err := plan.Validate(); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	params := plan.CheckpointParams()
	if w.opt.Keyframe != 0 {
		params.Keyframe = w.opt.Keyframe
	}
	key := checkpoint.KeyFor(prog, cfg, params)

	// From here the stream is committed: failures travel as Error
	// records, per-unit results as Unit records, flushed as they
	// happen so the coordinator folds them while the shard still runs.
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	fl, _ := rw.(http.Flusher)
	enc := json.NewEncoder(rw)
	streamErr := false
	send := func(rec shardRecord) bool {
		if streamErr {
			return false
		}
		if err := enc.Encode(rec); err != nil {
			streamErr = true
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}

	onCaptured := func(captured int) bool {
		if ok, _ := w.opt.Faults.fire(FaultKillMidSweep); ok {
			w.opt.Faults.kill()
		}
		return send(shardRecord{Captured: captured})
	}
	onRetry := func(op string, attempt int, err error) {
		send(shardRecord{Retry: &wireRetry{Op: op, Attempt: attempt, Err: err.Error()}})
	}
	set, swept, err := w.ensureSet(ctx, key, prog, cfg, params, onCaptured, onRetry)
	if err != nil {
		send(shardRecord{Error: err.Error()})
		return
	}

	lo, hi := msg.Lo, msg.Hi
	if hi > len(set.Units) {
		// The coordinator sizes shards from the expected unit count;
		// the captured count falls short when the program halts early.
		hi = len(set.Units)
	}
	opt := engine.Options{Workers: w.opt.Workers}
	err = engine.ReplayRange(ctx, prog, cfg, plan.U, set, lo, hi, opt, func(ru engine.RangeUnit) bool {
		if ok, _ := w.opt.Faults.fire(FaultKillMidStream); ok {
			w.opt.Faults.kill()
		}
		w.replayed.Add(1)
		u := &wireUnit{
			Seq:       ru.Seq,
			Index:     ru.Res.Index,
			Cycles:    ru.Res.Cycles,
			EnergyNJ:  ru.Res.EnergyNJ,
			CPI:       ru.Res.CPI,
			EPI:       ru.Res.EPI,
			Warming:   ru.Warming,
			ElapsedNs: int64(ru.Elapsed),
			Partial:   ru.Partial,
		}
		// Seal the measurement end to end: the digest travels with the
		// unit and the coordinator recomputes it before every merge.
		u.Digest = u.digest()
		if ok, _ := w.opt.Faults.fire(FaultCorruptFrame); ok {
			u.Cycles ^= 1 // corrupt a covered field AFTER sealing
		}
		return send(shardRecord{Unit: u})
	})
	if err != nil {
		send(shardRecord{Error: err.Error()})
		return
	}
	send(shardRecord{Done: &shardDone{
		Captured:    len(set.Units),
		Population:  set.PopulationUnits,
		SweepInsts:  set.SweepInsts,
		SweepTimeNs: int64(set.SweepTime),
		Swept:       swept,
	}})
}

// retryNotify observes one RPC attempt that failed and will be
// retried.
type retryNotify func(op string, attempt int, err error)

func (n retryNotify) forOp(op string) func(int, error) {
	if n == nil {
		return nil
	}
	return func(attempt int, err error) { n(op, attempt, err) }
}

// ensureSet materializes the snapshot set for key: the local cache
// first, then the fleet claim protocol — fetch when ready, sweep (and
// upload) when this worker wins ownership, poll while another worker
// sweeps. Coordinator RPCs retry transient failures with backoff;
// onRetry observes each retried attempt. onCaptured observes local
// sweep progress; a false return (the consumer hung up) aborts only
// the shard stream, never the sweep itself — a half-captured set would
// waste the fleet's one sweep.
func (w *Worker) ensureSet(ctx context.Context, key checkpoint.Key, prog *program.Program, cfg uarch.Config, params checkpoint.Params, onCaptured func(int) bool, onRetry retryNotify) (set *checkpoint.Set, swept bool, err error) {
	if set := w.cache.Get(key); set != nil {
		return set, false, nil
	}
	hash := key.Hash()
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		var state string
		var leaseNs int64
		err := retry(ctx, w.policy, onRetry.forOp("sweep claim"), func() error {
			s, l, cerr := w.claim(ctx, hash)
			if cerr != nil {
				return cerr
			}
			state, leaseNs = s, l
			return nil
		})
		if err != nil {
			return nil, false, fmt.Errorf("dist: claim sweep %s: %w", hash, err)
		}
		switch state {
		case claimReady:
			var set *checkpoint.Set
			err := retry(ctx, w.policy, onRetry.forOp("sweep fetch"), func() error {
				s, ferr := w.fetchSet(ctx, key)
				if ferr != nil {
					return ferr
				}
				set = s
				return nil
			})
			if err == nil {
				w.cache.Put(key, set)
				return set, false, nil
			}
			// The cached sweep vanished between the claim and the fetch
			// (eviction) or the transfer broke past the retries: claim
			// again.
			w.logf("dist: sweep fetch %s failed: %v; re-claiming", hash, err)
		case claimOwner:
			set, err := w.ownerSweep(ctx, key, prog, cfg, params, leaseNs, onCaptured, onRetry)
			if err != nil {
				return nil, false, err
			}
			w.sweeps.Add(1)
			w.cache.Put(key, set)
			uerr := retry(ctx, w.policy, onRetry.forOp("sweep upload"), func() error {
				return w.uploadSet(ctx, key, set)
			})
			if uerr != nil {
				// The set is good locally; the fleet just cannot reuse
				// it. The claim lease expires and another worker will
				// re-sweep if needed.
				w.logf("dist: sweep upload %s failed: %v", hash, uerr)
			}
			return set, true, nil
		case claimWait:
			select {
			case <-time.After(w.opt.PollInterval):
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		default:
			return nil, false, fmt.Errorf("dist: unknown claim state %q", state)
		}
	}
}

// resumeInterval resolves WorkerOptions.ResumeInterval to a keyframe
// count (0 = journal uploads disabled).
func (w *Worker) resumeInterval() int {
	switch {
	case w.opt.ResumeInterval < 0:
		return 0
	case w.opt.ResumeInterval == 0:
		return engine.DefaultResumeInterval
	}
	return w.opt.ResumeInterval
}

// ownerSweep runs the functional sweep this worker won the fleet claim
// for. It resumes from the coordinator's partial journal when a dead
// previous owner left one (falling back to a cold sweep if the journal
// does not validate), uploads its own journal every resumeInterval
// keyframes so a successor can do the same, and renews the claim lease
// while it works.
func (w *Worker) ownerSweep(ctx context.Context, key checkpoint.Key, prog *program.Program, cfg uarch.Config, params checkpoint.Params, leaseNs int64, onCaptured func(int) bool, onRetry retryNotify) (*checkpoint.Set, error) {
	hash := key.Hash()
	renewCtx, stopRenew := context.WithCancel(ctx)
	defer stopRenew()
	if lease := time.Duration(leaseNs); lease > 0 {
		go w.renewLease(renewCtx, hash, lease/3)
	}
	rs, err := w.fetchPartial(ctx, key)
	if err != nil {
		w.logf("dist: partial journal fetch %s failed: %v; sweeping cold", hash, err)
		rs = nil
	}
	interval := w.resumeInterval()
	capture := func(rs *checkpoint.ResumeState) (*checkpoint.Set, error) {
		set := &checkpoint.Set{K: params.K}
		params := params
		params.Resume = rs
		var counted uint64 // sweep position already added to sweepExec
		if rs != nil {
			set.Units = append(set.Units, rs.Units...)
			counted = rs.SweepInsts
		}
		kfSince := 0
		params.OnFrame = func(fr checkpoint.ResumeFrame) {
			// Count executed work frame by frame so a sweep killed
			// mid-flight still accounts for what it burned.
			w.sweepExec.Add(fr.SweepInsts - counted)
			counted = fr.SweepInsts
			if interval <= 0 || kfSince < interval {
				return
			}
			kfSince = 0
			st := &checkpoint.ResumeState{
				Units:           set.Units[:fr.Captured],
				PopulationUnits: prog.Length / params.U,
				SweepInsts:      fr.SweepInsts,
				SweepTime:       fr.SweepTime,
				HaveIBlock:      fr.HaveIBlock,
				LastIBlock:      fr.LastIBlock,
			}
			if err := w.uploadPartial(ctx, key, st, onRetry); err != nil {
				// Non-fatal: the fleet just has a staler resume point.
				w.logf("dist: partial journal upload %s failed: %v", hash, err)
			}
		}
		sum, err := checkpoint.CaptureStream(ctx, prog, cfg, params, func(u *checkpoint.Unit) bool {
			set.Units = append(set.Units, u)
			if u.Mem != nil {
				kfSince++ // keyframes mark the journal cadence
			}
			if onCaptured != nil {
				onCaptured(len(set.Units))
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		set.PopulationUnits = sum.PopulationUnits
		set.SweepInsts = sum.SweepInsts
		set.SweepTime = sum.SweepTime
		w.sweepExec.Add(sum.SweepInsts - counted)
		return set, nil
	}
	set, err := capture(rs)
	if err != nil && rs != nil && ctx.Err() == nil {
		// The journal did not validate against this plan (corruption, a
		// stale upload): degrade to a cold sweep rather than fail.
		w.logf("dist: resume from fleet journal %s failed (%v); restarting the sweep cold", hash, err)
		set, err = capture(nil)
	}
	return set, err
}

// renewLease re-claims the sweep as its current owner every `every`,
// refreshing the coordinator's lease so a long sweep survives a short
// LeaseTTL.
func (w *Worker) renewLease(ctx context.Context, hash string, every time.Duration) {
	if every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if _, _, err := w.claim(ctx, hash); err != nil && ctx.Err() == nil {
			w.logf("dist: lease renewal for %s failed: %v", hash, err)
		}
	}
}

func (w *Worker) claim(ctx context.Context, hash string) (string, int64, error) {
	body, err := json.Marshal(claimMsg{Hash: hash, Owner: w.opt.Self})
	if err != nil {
		return "", 0, permanent(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opt.Coordinator+"/v1/claims", bytes.NewReader(body))
	if err != nil {
		return "", 0, permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //simlint:discard best-effort error-body snippet for the message
		err := fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
		if !httpRetryable(resp.StatusCode) {
			return "", 0, permanent(err)
		}
		return "", 0, err
	}
	var reply claimReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return "", 0, err
	}
	return reply.State, reply.LeaseNs, nil
}

// fetchPartial downloads the run's current partial-sweep journal
// (nil when none exists — the caller sweeps cold).
func (w *Worker) fetchPartial(ctx context.Context, key checkpoint.Key) (*checkpoint.ResumeState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.opt.Coordinator+"/v1/partials/"+key.Hash(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("partial download: %s", resp.Status)
	}
	return checkpoint.DecodePartial(resp.Body, key)
}

// uploadPartial ships the owner's current journal to the coordinator,
// retrying transient failures.
func (w *Worker) uploadPartial(ctx context.Context, key checkpoint.Key, rs *checkpoint.ResumeState, onRetry retryNotify) error {
	var buf bytes.Buffer
	if err := checkpoint.EncodePartial(&buf, key, rs); err != nil {
		return err
	}
	return retry(ctx, w.policy, onRetry.forOp("journal upload"), func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut,
			w.opt.Coordinator+"/v1/partials/"+key.Hash(), bytes.NewReader(buf.Bytes()))
		if err != nil {
			return permanent(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := w.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //simlint:discard best-effort error-body snippet for the message //simlint:discard best-effort error-body snippet for the message
			err := fmt.Errorf("partial upload: %s: %s", resp.Status, bytes.TrimSpace(msg))
			if !httpRetryable(resp.StatusCode) {
				return permanent(err)
			}
			return err
		}
		return nil
	})
}

func (w *Worker) fetchSet(ctx context.Context, key checkpoint.Key) (*checkpoint.Set, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.opt.Coordinator+"/v1/sweeps/"+key.Hash(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweep download: %s", resp.Status)
	}
	return checkpoint.DecodeSet(resp.Body, key)
}

func (w *Worker) uploadSet(ctx context.Context, key checkpoint.Key, set *checkpoint.Set) error {
	var buf bytes.Buffer
	if err := checkpoint.EncodeSet(&buf, key, set); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		w.opt.Coordinator+"/v1/sweeps/"+key.Hash(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //simlint:discard best-effort error-body snippet for the message
		return fmt.Errorf("sweep upload: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
