package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/program"
	"repro/internal/uarch"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Self is this worker's advertised base URL — the address the
	// coordinator dispatches shards to (required for Register) and the
	// worker's identity in the sweep claim table.
	Self string
	// Workers is the replay worker-pool size per shard (<= 0: one per
	// core). Purely a throughput knob; results are bit-identical at any
	// value.
	Workers int
	// MemCacheBytes caps the worker's local sweep cache (0 = unbounded).
	// Shards of one run hit this cache after the first fetch.
	MemCacheBytes int64
	// PollInterval is the wait between sweep-claim polls while another
	// worker sweeps (default 50ms).
	PollInterval time.Duration
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// Worker executes shard ranges for a coordinator: it materializes the
// run's snapshot set (fetching it, or sweeping as the fleet
// singleflight's owner), replays its assigned range through the
// engine, and streams per-unit results back in stream order. All
// methods are safe for concurrent use; concurrent shards of one run
// share the cached set.
type Worker struct {
	opt    WorkerOptions
	client *http.Client
	cache  *checkpoint.MemCache
	sweeps atomic.Uint64

	mu    sync.Mutex
	progs map[progKey]*program.Program
}

// NewWorker builds a worker.
func NewWorker(opt WorkerOptions) *Worker {
	if opt.PollInterval <= 0 {
		opt.PollInterval = 50 * time.Millisecond
	}
	w := &Worker{
		opt:    opt,
		client: &http.Client{},
		cache:  checkpoint.NewMemCache(),
		progs:  make(map[progKey]*program.Program),
	}
	w.cache.MaxBytes = opt.MemCacheBytes
	return w
}

func (w *Worker) logf(format string, args ...any) {
	if w.opt.Logf != nil {
		w.opt.Logf(format, args...)
	}
}

// SweepCount returns how many functional sweeps this worker has run
// itself (fleet singleflight should keep the fleet-wide sum at one per
// key).
func (w *Worker) SweepCount() uint64 { return w.sweeps.Load() }

// Register announces the worker to its coordinator.
func (w *Worker) Register(ctx context.Context) error {
	body, err := json.Marshal(registerMsg{URL: w.opt.Self})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opt.Coordinator+"/v1/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: register with %s: %s", w.opt.Coordinator, resp.Status)
	}
	return nil
}

// Handler returns the worker's HTTP API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/shards", w.handleShard)
	return mux
}

func (w *Worker) workload(name string, length uint64) (*program.Program, error) {
	key := progKey{name, length}
	w.mu.Lock()
	p, ok := w.progs[key]
	w.mu.Unlock()
	if ok {
		return p, nil
	}
	spec, err := program.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err = program.Generate(spec, length)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.progs[key] = p
	w.mu.Unlock()
	return p, nil
}

func (w *Worker) handleShard(rw http.ResponseWriter, req *http.Request) {
	var msg shardMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil {
		http.Error(rw, "bad shard body", http.StatusBadRequest)
		return
	}
	ctx := req.Context()
	prog, err := w.workload(msg.Spec.Workload, msg.Spec.Length)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	cfg := msg.Spec.Config
	if cfg == (uarch.Config{}) {
		cfg = uarch.Config8Way()
	}
	plan := msg.Spec.Plan.plan()
	if err := plan.Validate(); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	params := plan.CheckpointParams()
	key := checkpoint.KeyFor(prog, cfg, params)

	// From here the stream is committed: failures travel as Error
	// records, per-unit results as Unit records, flushed as they
	// happen so the coordinator folds them while the shard still runs.
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	fl, _ := rw.(http.Flusher)
	enc := json.NewEncoder(rw)
	streamErr := false
	send := func(rec shardRecord) bool {
		if streamErr {
			return false
		}
		if err := enc.Encode(rec); err != nil {
			streamErr = true
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}

	set, swept, err := w.ensureSet(ctx, key, prog, cfg, params, func(captured int) bool {
		return send(shardRecord{Captured: captured})
	})
	if err != nil {
		send(shardRecord{Error: err.Error()})
		return
	}

	lo, hi := msg.Lo, msg.Hi
	if hi > len(set.Units) {
		// The coordinator sizes shards from the expected unit count;
		// the captured count falls short when the program halts early.
		hi = len(set.Units)
	}
	opt := engine.Options{Workers: w.opt.Workers}
	err = engine.ReplayRange(ctx, prog, cfg, plan.U, set, lo, hi, opt, func(ru engine.RangeUnit) bool {
		return send(shardRecord{Unit: &wireUnit{
			Seq:       ru.Seq,
			Index:     ru.Res.Index,
			Cycles:    ru.Res.Cycles,
			EnergyNJ:  ru.Res.EnergyNJ,
			CPI:       ru.Res.CPI,
			EPI:       ru.Res.EPI,
			Warming:   ru.Warming,
			ElapsedNs: int64(ru.Elapsed),
			Partial:   ru.Partial,
		}})
	})
	if err != nil {
		send(shardRecord{Error: err.Error()})
		return
	}
	send(shardRecord{Done: &shardDone{
		Captured:    len(set.Units),
		Population:  set.PopulationUnits,
		SweepInsts:  set.SweepInsts,
		SweepTimeNs: int64(set.SweepTime),
		Swept:       swept,
	}})
}

// ensureSet materializes the snapshot set for key: the local cache
// first, then the fleet claim protocol — fetch when ready, sweep (and
// upload) when this worker wins ownership, poll while another worker
// sweeps. onCaptured observes local sweep progress; a false return
// (the consumer hung up) aborts only the shard stream, never the
// sweep itself — a half-captured set would waste the fleet's one
// sweep.
func (w *Worker) ensureSet(ctx context.Context, key checkpoint.Key, prog *program.Program, cfg uarch.Config, params checkpoint.Params, onCaptured func(int) bool) (set *checkpoint.Set, swept bool, err error) {
	if set := w.cache.Get(key); set != nil {
		return set, false, nil
	}
	hash := key.Hash()
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		state, err := w.claim(ctx, hash)
		if err != nil {
			return nil, false, fmt.Errorf("dist: claim sweep %s: %w", hash, err)
		}
		switch state {
		case claimReady:
			set, err := w.fetchSet(ctx, key)
			if err == nil {
				w.cache.Put(key, set)
				return set, false, nil
			}
			// The cached sweep vanished between the claim and the fetch
			// (eviction) or the transfer broke: claim again.
			w.logf("dist: sweep fetch %s failed: %v; re-claiming", hash, err)
		case claimOwner:
			set := &checkpoint.Set{K: params.K}
			sum, err := checkpoint.CaptureStream(ctx, prog, cfg, params, func(u *checkpoint.Unit) bool {
				set.Units = append(set.Units, u)
				if onCaptured != nil {
					onCaptured(len(set.Units))
				}
				return true
			})
			if err != nil {
				return nil, false, err
			}
			set.PopulationUnits = sum.PopulationUnits
			set.SweepInsts = sum.SweepInsts
			set.SweepTime = sum.SweepTime
			w.sweeps.Add(1)
			w.cache.Put(key, set)
			if err := w.uploadSet(ctx, key, set); err != nil {
				// The set is good locally; the fleet just cannot reuse
				// it. The claim lease expires and another worker will
				// re-sweep if needed.
				w.logf("dist: sweep upload %s failed: %v", hash, err)
			}
			return set, true, nil
		case claimWait:
			select {
			case <-time.After(w.opt.PollInterval):
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		default:
			return nil, false, fmt.Errorf("dist: unknown claim state %q", state)
		}
	}
}

func (w *Worker) claim(ctx context.Context, hash string) (string, error) {
	body, err := json.Marshal(claimMsg{Hash: hash, Owner: w.opt.Self})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opt.Coordinator+"/v1/claims", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var reply claimReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return "", err
	}
	return reply.State, nil
}

func (w *Worker) fetchSet(ctx context.Context, key checkpoint.Key) (*checkpoint.Set, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.opt.Coordinator+"/v1/sweeps/"+key.Hash(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweep download: %s", resp.Status)
	}
	return checkpoint.DecodeSet(resp.Body, key)
}

func (w *Worker) uploadSet(ctx context.Context, key checkpoint.Key, set *checkpoint.Set) error {
	var buf bytes.Buffer
	if err := checkpoint.EncodeSet(&buf, key, set); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		w.opt.Coordinator+"/v1/sweeps/"+key.Hash(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("sweep upload: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
