package dist

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/smarts"
)

// synthUnits builds a synthetic replay stream of n units with randomized
// observations; partialAt (when >= 0) marks that position as the
// program-ended-inside-it partial unit.
func synthUnits(rng *rand.Rand, n, partialAt int) []wireUnit {
	units := make([]wireUnit, n)
	for i := range units {
		cpi := 0.8 + rng.Float64()
		u := wireUnit{
			Seq:       i,
			Index:     uint64(i) * 7,
			Cycles:    uint64(1000 * cpi),
			EnergyNJ:  500 + rng.Float64()*100,
			CPI:       cpi,
			EPI:       0.5 + rng.Float64()*0.1,
			Warming:   uint64(rng.Intn(5000)),
			ElapsedNs: int64(rng.Intn(1_000_000)),
		}
		if i == partialAt {
			u = wireUnit{Seq: i, Partial: true}
		}
		units[i] = u
	}
	return units
}

// TestMergeOrderInvariance is the shard-merge property test: splitting a
// replay stream into K contiguous ranges and merging the units in any
// interleaved arrival order reproduces the unsharded (single-range,
// in-order) fold byte for byte — including the early-termination cutoff
// and partial-unit truncation.
func TestMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	plan := smarts.Plan{U: 1000, W: 2000, K: 10, J: 3}
	trailer := shardDone{Captured: 140, Population: 600, SweepInsts: 600_000, SweepTimeNs: 12345}

	for trial := 0; trial < 300; trial++ {
		n := 20 + rng.Intn(120)
		partialAt := -1
		if rng.Intn(3) == 0 {
			partialAt = rng.Intn(n)
		}
		var eps float64
		var minUnits uint64
		if rng.Intn(2) == 0 {
			eps = 0.02 + rng.Float64()*0.3
			minUnits = uint64(2 + rng.Intn(10))
		}
		units := synthUnits(rng, n, partialAt)

		// Unsharded reference: one range covering the whole stream,
		// offered strictly in stream order.
		ref := newMerger(plan.U, 0, eps, minUnits, n)
		for _, u := range units {
			ref.offer(u)
		}
		want := ref.finalize(plan, trailer, false)

		// Sharded: K contiguous ranges, units arriving in a random
		// interleaving that preserves only per-shard order (exactly what
		// concurrent shard streams deliver).
		shards := splitRange(n, 1+rng.Intn(8))
		next := make([]int, len(shards))
		m := newMerger(plan.U, 0, eps, minUnits, n)
		for remaining := n; remaining > 0; {
			s := rng.Intn(len(shards))
			sr := shards[s]
			if next[s] >= sr.hi-sr.lo {
				continue
			}
			m.offer(units[sr.lo+next[s]])
			next[s]++
			remaining--
		}
		got := m.finalize(plan, trailer, false)

		if m.earlyStopped() != ref.earlyStopped() {
			t.Fatalf("trial %d: early-stop disagreement (sharded %v, unsharded %v)",
				trial, m.earlyStopped(), ref.earlyStopped())
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d shards=%d eps=%g partial=%d): sharded merge diverged:\n got %+v\nwant %+v",
				trial, n, len(shards), eps, partialAt, got, want)
		}
	}
}

// TestSplitRange: shard ranges tile [0, n) contiguously, are near-even,
// and never exceed the unit count.
func TestSplitRange(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for parts := -1; parts <= n+3; parts++ {
			shards := splitRange(n, parts)
			if n <= 0 {
				if shards != nil {
					t.Fatalf("splitRange(%d,%d) = %v, want nil", n, parts, shards)
				}
				continue
			}
			lo := 0
			for _, sr := range shards {
				if sr.lo != lo || sr.hi <= sr.lo {
					t.Fatalf("splitRange(%d,%d): bad range %+v at lo=%d", n, parts, sr, lo)
				}
				lo = sr.hi
			}
			if lo != n {
				t.Fatalf("splitRange(%d,%d) covers [0,%d), want [0,%d)", n, parts, lo, n)
			}
			want := parts
			if want < 1 {
				want = 1
			}
			if want > n {
				want = n
			}
			if len(shards) != want {
				t.Fatalf("splitRange(%d,%d) produced %d shards, want %d", n, parts, len(shards), want)
			}
		}
	}
}
