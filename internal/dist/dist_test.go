package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/uarch"
	"repro/sim"
)

const (
	testBench = "gzipx"
	testLen   = 600_000
)

var (
	progOnce sync.Once
	progVal  *program.Program
	progErr  error
)

func testProg(t *testing.T) *program.Program {
	t.Helper()
	progOnce.Do(func() {
		spec, err := program.ByName(testBench)
		if err != nil {
			progErr = err
			return
		}
		progVal, progErr = program.Generate(spec, testLen)
	})
	if progErr != nil {
		t.Fatal(progErr)
	}
	return progVal
}

func testRequest(opts ...sim.RequestOption) *sim.Request {
	base := []sim.RequestOption{sim.Length(testLen), sim.Units(60)}
	return sim.NewRequest(testBench, append(base, opts...)...)
}

// baseline runs the request on the local single-process engine — the
// reference every distributed topology must reproduce bit-identically.
func baseline(t *testing.T, req *sim.Request) *smarts.Result {
	t.Helper()
	prog := testProg(t)
	cfg := uarch.Config8Way()
	plan := sim.ResolvePlan(req, prog)
	res, err := smarts.RunSampledContext(context.Background(), prog, cfg, plan, smarts.EngineOptions{
		Workers:   1,
		TargetEps: req.TargetEps,
		MinUnits:  req.MinUnits,
		Alpha:     req.Alpha,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameMeasurement asserts the deterministic halves of two results are
// bit-identical (wall-clock fields legitimately differ).
func sameMeasurement(t *testing.T, label string, got, want *smarts.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Units, want.Units) {
		t.Fatalf("%s: units differ: got %d units, want %d", label, len(got.Units), len(want.Units))
	}
	if got.PopulationUnits != want.PopulationUnits ||
		got.MeasuredInsts != want.MeasuredInsts ||
		got.WarmingInsts != want.WarmingInsts {
		t.Fatalf("%s: accounting differs: got (%d,%d,%d), want (%d,%d,%d)", label,
			got.PopulationUnits, got.MeasuredInsts, got.WarmingInsts,
			want.PopulationUnits, want.MeasuredInsts, want.WarmingInsts)
	}
}

// cluster is a loopback coordinator plus worker fleet.
type cluster struct {
	coord    *Coordinator
	coordURL string
	workers  []*Worker
}

// newCluster wires machines loopback workers (each with workersEach
// replay workers) to a fresh coordinator.
func newCluster(t *testing.T, machines, workersEach int, copt Options) *cluster {
	t.Helper()
	return newClusterWrapped(t, machines, workersEach, copt, nil)
}

// newClusterWrapped is newCluster with an optional per-machine handler
// wrapper (for fault injection).
func newClusterWrapped(t *testing.T, machines, workersEach int, copt Options, wrap func(i int, h http.Handler) http.Handler) *cluster {
	t.Helper()
	coord, err := NewCoordinator(copt)
	if err != nil {
		t.Fatal(err)
	}
	csrv := httptest.NewServer(coord.Handler())
	t.Cleanup(csrv.Close)
	cl := &cluster{coord: coord, coordURL: csrv.URL}
	for i := 0; i < machines; i++ {
		var w *Worker
		var h http.Handler
		wsrv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			h.ServeHTTP(rw, r)
		}))
		t.Cleanup(wsrv.Close)
		w = NewWorker(WorkerOptions{
			Coordinator:  csrv.URL,
			Self:         wsrv.URL,
			Workers:      workersEach,
			PollInterval: 5 * time.Millisecond,
		})
		h = w.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		if err := w.Register(context.Background()); err != nil {
			t.Fatal(err)
		}
		cl.workers = append(cl.workers, w)
	}
	return cl
}

func (cl *cluster) sweepTotal() uint64 {
	var n uint64
	for _, w := range cl.workers {
		n += w.SweepCount()
	}
	return n
}

// TestTopologiesBitIdentical is the end-to-end matrix: every
// (machine × worker) topology reproduces the single-process engine
// baseline bit for bit, and the fleet pays exactly one sweep.
func TestTopologiesBitIdentical(t *testing.T) {
	want := baseline(t, testRequest())
	topologies := []struct{ machines, workers int }{
		{1, 1},
		{1, 4},
		{3, 2},
	}
	for _, topo := range topologies {
		t.Run(fmt.Sprintf("%dx%d", topo.machines, topo.workers), func(t *testing.T) {
			cl := newCluster(t, topo.machines, topo.workers, Options{})
			client := NewClient(cl.coordURL)
			rep, err := client.Run(context.Background(), testRequest())
			if err != nil {
				t.Fatal(err)
			}
			sameMeasurement(t, "distributed run", rep.Result(), want)
			if rep.Result().SweepCached {
				t.Fatal("fresh cluster reports a cached sweep")
			}
			if n := cl.sweepTotal(); n != 1 {
				t.Fatalf("fleet ran %d sweeps, want exactly 1 (fleet singleflight)", n)
			}
			// A second run reuses the coordinator-cached sweep: no new
			// sweep anywhere, same bits.
			rep2, err := client.Run(context.Background(), testRequest())
			if err != nil {
				t.Fatal(err)
			}
			sameMeasurement(t, "cached distributed run", rep2.Result(), want)
			if !rep2.Result().SweepCached {
				t.Fatal("second run did not reuse the cached sweep")
			}
			if n := cl.sweepTotal(); n != 1 {
				t.Fatalf("fleet ran %d sweeps after the cached run, want 1", n)
			}
		})
	}
}

// TestSharedStoreEntry pre-seeds the coordinator's on-disk store via a
// first cluster; a second cluster sharing the directory serves every
// shard from the stored sweep — zero sweeps, identical bits.
func TestSharedStoreEntry(t *testing.T) {
	want := baseline(t, testRequest())
	dir := t.TempDir()

	first := newCluster(t, 1, 2, Options{StoreDir: dir})
	rep, err := NewClient(first.coordURL).Run(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "seeding run", rep.Result(), want)
	if n := first.sweepTotal(); n != 1 {
		t.Fatalf("seeding cluster ran %d sweeps, want 1", n)
	}

	second := newCluster(t, 2, 2, Options{StoreDir: dir})
	rep2, err := NewClient(second.coordURL).Run(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "store-served run", rep2.Result(), want)
	if n := second.sweepTotal(); n != 0 {
		t.Fatalf("second cluster ran %d sweeps despite the store entry, want 0", n)
	}
	if !rep2.Result().SweepCached {
		t.Fatal("store-served run not marked SweepCached")
	}
}

// killingHandler aborts the connection after limit response writes on
// the shard endpoint and refuses everything afterwards — a worker
// process dying mid-shard.
type killingHandler struct {
	h     http.Handler
	limit int

	mu     sync.Mutex
	killed bool
}

func (k *killingHandler) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	k.mu.Lock()
	dead := k.killed
	k.mu.Unlock()
	if dead {
		panic(http.ErrAbortHandler)
	}
	if strings.HasPrefix(r.URL.Path, "/v1/shards") {
		k.mu.Lock()
		k.killed = true
		k.mu.Unlock()
		k.h.ServeHTTP(&cutoffWriter{rw: rw, left: k.limit}, r)
		return
	}
	k.h.ServeHTTP(rw, r)
}

// cutoffWriter aborts the handler after left writes (one write per
// NDJSON record).
type cutoffWriter struct {
	rw   http.ResponseWriter
	left int
}

func (c *cutoffWriter) Header() http.Header { return c.rw.Header() }

func (c *cutoffWriter) WriteHeader(code int) { c.rw.WriteHeader(code) }

func (c *cutoffWriter) Write(p []byte) (int, error) {
	if c.left <= 0 {
		panic(http.ErrAbortHandler)
	}
	c.left--
	return c.rw.Write(p)
}

func (c *cutoffWriter) Flush() {
	if fl, ok := c.rw.(http.Flusher); ok {
		fl.Flush()
	}
}

// TestWorkerKillMidRun kills one of two workers a few records into its
// first shard stream; the survivor absorbs the requeued range (and,
// when the victim owned the sweep, re-sweeps after the claim lease
// expires). The report stays bit-identical.
func TestWorkerKillMidRun(t *testing.T) {
	want := baseline(t, testRequest())
	cl := newClusterWrapped(t, 2, 2, Options{LeaseTTL: 150 * time.Millisecond},
		func(i int, h http.Handler) http.Handler {
			if i == 0 {
				return &killingHandler{h: h, limit: 3}
			}
			return h
		})
	rep, err := NewClient(cl.coordURL).Run(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "run with worker kill", rep.Result(), want)
}

// TestAllWorkersDead: when every worker fails, the run errors out
// instead of hanging.
func TestAllWorkersDead(t *testing.T) {
	cl := newClusterWrapped(t, 1, 1, Options{},
		func(_ int, h http.Handler) http.Handler {
			return &killingHandler{h: h, limit: 0}
		})
	_, err := NewClient(cl.coordURL).Run(context.Background(), testRequest())
	if err == nil {
		t.Fatal("run with only dead workers succeeded")
	}
	if !strings.Contains(err.Error(), "workers failed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCancelMidRun cancels the context after the first folded unit;
// the run tears down promptly and reports the cancellation.
func TestCancelMidRun(t *testing.T) {
	cl := newCluster(t, 1, 2, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := testRequest(sim.OnProgress(func(ev sim.Progress) {
		if ev.Kind == sim.EventUnitReplayed {
			cancel()
		}
	}))
	start := time.Now()
	_, err := NewClient(cl.coordURL).Run(ctx, req)
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestEarlyTermination: a confidence-targeted run stops at the same
// deterministic cutoff as the local engine, at any topology.
func TestEarlyTermination(t *testing.T) {
	req := testRequest(sim.EarlyStop(0.05, 8))
	want := baseline(t, req)
	if uint64(len(want.Units)) >= want.PopulationUnits/10 {
		t.Logf("note: early stop kept %d units (population %d)", len(want.Units), want.PopulationUnits)
	}
	cl := newCluster(t, 3, 2, Options{})
	rep, err := NewClient(cl.coordURL).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "early-terminated distributed run", rep.Result(), want)
}

// TestAdmissionControl: a full slot table with no queue fails fast with
// ErrBusy; a queued run honors its deadline.
func TestAdmissionControl(t *testing.T) {
	cl := newCluster(t, 1, 1, Options{MaxActive: 1, MaxQueue: -1})
	cl.coord.slots <- struct{}{} // occupy the only slot
	defer func() { <-cl.coord.slots }()

	_, err := NewClient(cl.coordURL).Run(context.Background(), testRequest())
	if err == nil || !strings.Contains(err.Error(), ErrBusy.Error()) {
		t.Fatalf("full coordinator returned %v, want ErrBusy", err)
	}

	// Local API reports ErrBusy directly.
	if _, err := cl.coord.Run(context.Background(), testRequest()); !errors.Is(err, ErrBusy) {
		t.Fatalf("local run returned %v, want ErrBusy", err)
	}

	// With a queue, a waiting run respects its context deadline.
	cl2 := newCluster(t, 1, 1, Options{MaxActive: 1, MaxQueue: 4})
	cl2.coord.slots <- struct{}{}
	defer func() { <-cl2.coord.slots }()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl2.coord.Run(ctx, testRequest()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued run returned %v, want DeadlineExceeded", err)
	}
}

// TestRejectsNonDistributable: local-only modes fail before touching
// the network.
func TestRejectsNonDistributable(t *testing.T) {
	client := NewClient("http://127.0.0.1:1") // nothing listens; must not matter
	cases := []*sim.Request{
		sim.NewExperiment("fig5"),
		sim.NewRequest(testBench, sim.SerialLoop()),
		sim.NewRequest(testBench, sim.TwoPhase()),
		sim.NewRequest(testBench, sim.Phases(0, 1)),
		sim.NewRequest(testBench, sim.Calibrate(0)),
		sim.NewRequest(""),
	}
	for i, req := range cases {
		if _, err := client.Run(context.Background(), req); err == nil {
			t.Fatalf("case %d: non-distributable request accepted", i)
		}
	}
}

// TestProgressEvents: a distributed run emits run-start, shard, sweep,
// replay (with population/total/ETA denominators), and run-done events.
func TestProgressEvents(t *testing.T) {
	cl := newCluster(t, 1, 2, Options{})
	var mu sync.Mutex
	kinds := map[sim.EventKind]int{}
	var sawTotals bool
	req := testRequest(sim.OnProgress(func(ev sim.Progress) {
		mu.Lock()
		defer mu.Unlock()
		kinds[ev.Kind]++
		if ev.Kind == sim.EventUnitReplayed && ev.Total > 0 && ev.Population > 0 {
			sawTotals = true
		}
	}))
	if _, err := NewClient(cl.coordURL).Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, k := range []sim.EventKind{sim.EventRunStart, sim.EventUnitCaptured,
		sim.EventUnitReplayed, sim.EventRunDone, sim.EventShardStart, sim.EventShardDone} {
		if kinds[k] == 0 {
			t.Fatalf("no %v events observed (saw %v)", k, kinds)
		}
	}
	if !sawTotals {
		t.Fatal("replay events carried no population/total denominators")
	}
}
