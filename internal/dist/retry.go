package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/wallclock"
)

// retryPolicy shapes the capped exponential backoff the distributed
// endpoints use for transient failures: attempt n (0-based) waits
// Base·2ⁿ, capped at Max, plus a deterministic jitter of up to half the
// backoff so a fleet of workers retrying the same coordinator does not
// hammer it in lockstep.
type retryPolicy struct {
	// Attempts is the total number of tries (default 4; 1 = no retry).
	Attempts int
	// Base is the first backoff (default 50ms); Max caps the growth
	// (default 2s).
	Base, Max time.Duration
}

func (p retryPolicy) withDefaults() retryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	return p
}

// backoff returns the wait before retrying after (1-based) attempt.
func (p retryPolicy) backoff(attempt int) time.Duration {
	d := p.Base
	for i := 1; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	// Deterministic jitter in [0, d/2): a Weyl-style hash of the attempt
	// number — reproducible for tests, decorrelated across attempts.
	j := time.Duration(uint64(attempt)*0x9e3779b97f4a7c15%1000) * d / 2000
	return d + j
}

// permanentError marks an error retrying cannot help with (a rejected
// request, a deterministic simulation failure); retry returns it
// immediately.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// retry runs fn up to p.Attempts times, backing off between failures.
// onRetry (optional) observes each failed attempt that will be retried
// — the hook the progress surfacing hangs off. Permanent errors
// (permanent(...), *appError, context errors) short-circuit.
//
// The loop is bounded by the caller's ctx deadline in TOTAL elapsed
// time, not just per attempt: when the next backoff would sleep past
// the deadline, retry gives up immediately instead of burning the
// remaining budget asleep. Exhaustion — attempts or deadline — wraps
// the last attempt's cause with %w, so callers (and the EventFallback
// note built from this error) see WHY the operation ultimately failed,
// and errors.Is/As still match the underlying cause.
func retry(ctx context.Context, p retryPolicy, onRetry func(attempt int, err error), fn func() error) error {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		var app *appError
		if errors.As(err, &app) || ctx.Err() != nil {
			return err
		}
		if attempt >= p.Attempts {
			return fmt.Errorf("dist: giving up after %d attempt(s): %w", attempt, err)
		}
		wait := p.backoff(attempt)
		if dl, ok := ctx.Deadline(); ok && wallclock.Until(dl) <= wait {
			return fmt.Errorf("dist: retry budget exhausted by context deadline after %d attempt(s): %w", attempt, err)
		}
		if onRetry != nil {
			onRetry(attempt, err)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
