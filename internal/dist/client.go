package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/sim"
)

// Client runs sampling requests on a remote coordinator with the same
// Run(ctx, *Request) → *Report shape as sim.Session — callers swap
// local for distributed execution with one constructor. Progress
// events stream back to Request.Progress; the final report's
// measurement half is bit-identical to the local engine's.
//
// A run is created with POST /v1/runs (which assigns it a stable ID)
// and followed over GET /v1/runs/{id}/stream. When the stream breaks —
// a dropped connection, or the coordinator dying and restarting — the
// client re-attaches from its last received event index instead of
// failing or silently redoing the work locally: the coordinator owns
// the run (journaled on disk when it has a store) and the re-attached
// stream resumes exactly where the old one stopped. Each reconnect
// surfaces as an EventReattach progress event.
type Client struct {
	url    string
	client *http.Client

	// Fallback, when non-nil, is a local session the client degrades to
	// when the coordinator stays unreachable (or at capacity) after the
	// connect retries: the run completes in-process — bit-identical by
	// construction — after an EventFallback progress event carrying the
	// coordinator error. Fallback applies only before the run is
	// created; once the coordinator accepted the run it may keep
	// executing, so the client re-attaches instead (a silent local redo
	// could double the work).
	Fallback *sim.Session
	// Retries, RetryBase and RetryMax shape the capped
	// exponential-backoff retry on the initial run request (zero values
	// select the defaults: 4 attempts, 50ms base, 2s cap). Each retried
	// attempt surfaces as an EventRetry progress event.
	Retries             int
	RetryBase, RetryMax time.Duration
	// ReattachAttempts bounds consecutive failed attempts to re-attach
	// to a created run's stream (default 8; the counter resets whenever
	// an attached stream delivers an event). The wait between attempts
	// follows the retry backoff, so a coordinator restart has several
	// seconds to come back before the client gives up.
	ReattachAttempts int
}

// NewClient builds a client for the coordinator at base URL url.
func NewClient(url string) *Client {
	return &Client{url: url, client: &http.Client{}}
}

// rejectedError marks a deterministic coordinator answer (a 400-class
// rejection, or a run the coordinator no longer knows): retrying
// cannot change it, and neither can falling back — the local session
// would fail or diverge the same way.
type rejectedError struct{ err error }

func (e *rejectedError) Error() string { return e.err.Error() }
func (e *rejectedError) Unwrap() error { return e.err }

// Run executes one request on the coordinator. Requests the service
// does not shard (experiments, procedures, multi-offset runs, the
// serial loop) fail before touching the network. Cancellation sends
// the coordinator a best-effort DELETE so it stops the shards.
func (c *Client) Run(ctx context.Context, req *sim.Request) (*sim.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	wr, err := wireFromRequest(req)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(wr)
	if err != nil {
		return nil, err
	}
	created, connErr := c.createRun(ctx, body, req.Progress)
	if connErr != nil {
		var rej *rejectedError
		rejected := errors.As(connErr, &rej)
		if c.Fallback != nil && !rejected && ctx.Err() == nil {
			if req.Progress != nil {
				req.Progress(sim.Progress{Kind: sim.EventFallback, Stage: "sample",
					Note: connErr.Error()})
			}
			return c.Fallback.Run(ctx, req)
		}
		if rejected {
			return nil, rej.err
		}
		return nil, connErr
	}
	rep, err := c.followRun(ctx, created, req.Progress)
	if err != nil && ctx.Err() != nil {
		// The caller cancelled: tell the coordinator to stop the shards.
		c.cancelRun(created.ID)
		return nil, ctx.Err()
	}
	return rep, err
}

// createRun POSTs the request until the coordinator accepts it,
// retrying transient failures with backoff.
func (c *Client) createRun(ctx context.Context, body []byte, progress sim.ProgressFunc) (runCreated, error) {
	policy := retryPolicy{Attempts: c.Retries, Base: c.RetryBase, Max: c.RetryMax}
	var created runCreated
	err := retry(ctx, policy, func(attempt int, aerr error) {
		if progress != nil {
			progress(sim.Progress{Kind: sim.EventRetry, Stage: "sample",
				Attempt: attempt, Note: "coordinator run: " + aerr.Error()})
		}
	}, func() error {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url+"/v1/runs", bytes.NewReader(body))
		if err != nil {
			return permanent(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		r, err := c.client.Do(hreq)
		if err != nil {
			return err
		}
		defer r.Body.Close()
		switch r.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			if err := json.NewDecoder(r.Body).Decode(&created); err != nil || created.ID == "" {
				return fmt.Errorf("dist: coordinator %s: bad run-created reply", c.url)
			}
			return nil
		case http.StatusTooManyRequests:
			return fmt.Errorf("%w (coordinator %s)", ErrBusy, c.url)
		default:
			msg, _ := io.ReadAll(io.LimitReader(r.Body, 4096)) //simlint:discard best-effort error-body snippet for the message
			err := fmt.Errorf("dist: coordinator %s: %s: %s", c.url, r.Status, bytes.TrimSpace(msg))
			if !httpRetryable(r.StatusCode) {
				return permanent(&rejectedError{err: err})
			}
			return err
		}
	})
	return created, err
}

// followRun streams the run's events, re-attaching from the last
// received Seq whenever the stream breaks, until the terminal record.
// Attaching with ?from and the coordinator epoch gives exactly-once
// event delivery while the coordinator lives; across a restart the
// epoch changes and the coordinator replays its journal-recovered
// history instead, whose terminal record is still delivered exactly
// once.
func (c *Client) followRun(ctx context.Context, created runCreated, progress sim.ProgressFunc) (*sim.Report, error) {
	policy := retryPolicy{Attempts: c.Retries, Base: c.RetryBase, Max: c.RetryMax}.withDefaults()
	maxFails := c.ReattachAttempts
	if maxFails <= 0 {
		maxFails = 8
	}
	var from int64
	epoch := created.Epoch
	fails := 0
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if lastErr != nil {
			fails++
			if fails > maxFails {
				return nil, fmt.Errorf("dist: run %s: re-attach gave up after %d attempt(s): %w",
					created.ID, fails-1, lastErr)
			}
			if progress != nil {
				progress(sim.Progress{Kind: sim.EventReattach, Stage: "sample",
					Attempt: fails, Note: lastErr.Error()})
			}
			select {
			case <-time.After(policy.backoff(fails)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		resp, err := c.attach(ctx, created.ID, from, epoch)
		if err != nil {
			var rej *rejectedError
			if errors.As(err, &rej) {
				return nil, rej.err // the run is gone; reconnecting cannot help
			}
			lastErr = err
			continue
		}
		if e := resp.Header.Get("X-Run-Epoch"); e != "" {
			epoch = e
		}
		dec := json.NewDecoder(resp.Body)
		for {
			var env runEnvelope
			if derr := dec.Decode(&env); derr != nil {
				resp.Body.Close()
				lastErr = fmt.Errorf("dist: run stream from %s broke: %w", c.url, derr)
				break
			}
			fails, lastErr = 0, nil
			if env.Seq > 0 {
				from = env.Seq
			}
			switch {
			case env.Progress != nil:
				if progress != nil {
					progress(env.Progress.progress())
				}
			case env.Error != "":
				resp.Body.Close()
				return nil, fmt.Errorf("dist: %s", env.Error)
			case env.Report != nil:
				resp.Body.Close()
				return reportFrom(env.Report), nil
			}
		}
	}
}

// attach opens (or re-opens) the run's event stream from Seq `from`.
func (c *Client) attach(ctx context.Context, id string, from int64, epoch string) (*http.Response, error) {
	u := fmt.Sprintf("%s/v1/runs/%s/stream?from=%d&epoch=%s", c.url, id, from, url.QueryEscape(epoch))
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, &rejectedError{err: err}
	}
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp, nil
	case http.StatusNotFound:
		resp.Body.Close()
		return nil, &rejectedError{err: fmt.Errorf("dist: run %s lost: the coordinator no longer knows it", id)}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //simlint:discard best-effort error-body snippet for the message
		resp.Body.Close()
		return nil, fmt.Errorf("dist: attach run %s: %s: %s", id, resp.Status, bytes.TrimSpace(msg))
	}
}

// cancelRun tells the coordinator to abort a run the caller no longer
// wants; best-effort with its own short deadline (the caller's context
// is already cancelled).
func (c *Client) cancelRun(id string) {
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second) //simlint:noctx the caller's ctx is already cancelled; detached short deadline
	defer cancel()
	hreq, err := http.NewRequestWithContext(dctx, http.MethodDelete, c.url+"/v1/runs/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := c.client.Do(hreq); err == nil {
		resp.Body.Close()
	}
}
