package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/sim"
)

// Client runs sampling requests on a remote coordinator with the same
// Run(ctx, *Request) → *Report shape as sim.Session — callers swap
// local for distributed execution with one constructor. Progress
// events stream back to Request.Progress; the final report's
// measurement half is bit-identical to the local engine's.
type Client struct {
	url    string
	client *http.Client

	// Fallback, when non-nil, is a local session the client degrades to
	// when the coordinator stays unreachable (or at capacity) after the
	// connect retries: the run completes in-process — bit-identical by
	// construction — after an EventFallback progress event carrying the
	// coordinator error. A run stream that breaks after it started still
	// fails (the coordinator may keep executing; a silent local redo
	// could double the work).
	Fallback *sim.Session
	// Retries, RetryBase and RetryMax shape the capped
	// exponential-backoff retry on the initial run request (zero values
	// select the defaults: 4 attempts, 50ms base, 2s cap). Each retried
	// attempt surfaces as an EventRetry progress event.
	Retries             int
	RetryBase, RetryMax time.Duration
}

// NewClient builds a client for the coordinator at base URL url.
func NewClient(url string) *Client {
	return &Client{url: url, client: &http.Client{}}
}

// Run executes one request on the coordinator. Requests the service
// does not shard (experiments, procedures, multi-offset runs, the
// serial loop) fail before touching the network. Cancellation tears
// down the run stream; the coordinator observes it and stops the
// shards.
func (c *Client) Run(ctx context.Context, req *sim.Request) (*sim.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	wr, err := wireFromRequest(req)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(wr)
	if err != nil {
		return nil, err
	}
	policy := retryPolicy{Attempts: c.Retries, Base: c.RetryBase, Max: c.RetryMax}
	var resp *http.Response
	var rejected bool // deterministic coordinator rejection: no fallback
	connErr := retry(ctx, policy, func(attempt int, aerr error) {
		if req.Progress != nil {
			req.Progress(sim.Progress{Kind: sim.EventRetry, Stage: "sample",
				Attempt: attempt, Note: "coordinator run: " + aerr.Error()})
		}
	}, func() error {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url+"/v1/runs", bytes.NewReader(body))
		if err != nil {
			return permanent(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		r, err := c.client.Do(hreq)
		if err != nil {
			return err
		}
		switch r.StatusCode {
		case http.StatusOK:
			resp = r
			return nil
		case http.StatusTooManyRequests:
			r.Body.Close()
			return fmt.Errorf("%w (coordinator %s)", ErrBusy, c.url)
		default:
			msg, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
			r.Body.Close()
			err := fmt.Errorf("dist: coordinator %s: %s: %s", c.url, r.Status, bytes.TrimSpace(msg))
			if !httpRetryable(r.StatusCode) {
				// Deterministic rejection (a bad request): the local
				// session would fail or diverge the same way. Retrying
				// cannot help and neither can falling back.
				rejected = true
				return permanent(err)
			}
			return err
		}
	})
	if connErr != nil {
		if c.Fallback != nil && !rejected && ctx.Err() == nil {
			if req.Progress != nil {
				req.Progress(sim.Progress{Kind: sim.EventFallback, Stage: "sample",
					Note: connErr.Error()})
			}
			return c.Fallback.Run(ctx, req)
		}
		return nil, connErr
	}
	defer resp.Body.Close()

	dec := json.NewDecoder(resp.Body)
	for {
		var env runEnvelope
		if err := dec.Decode(&env); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("dist: run stream from %s broke: %w", c.url, err)
		}
		switch {
		case env.Error != "":
			return nil, fmt.Errorf("dist: %s", env.Error)
		case env.Progress != nil:
			if req.Progress != nil {
				req.Progress(env.Progress.progress())
			}
		case env.Report != nil:
			wrep := env.Report
			rep := &sim.Report{
				CPI:     wrep.CPI,
				EPI:     wrep.EPI,
				Elapsed: time.Duration(wrep.ElapsedNs),
			}
			if wrep.Result != nil {
				rep.Results = []*sim.Result{wrep.Result}
			}
			return rep, nil
		}
	}
}
