package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/sim"
)

// Client runs sampling requests on a remote coordinator with the same
// Run(ctx, *Request) → *Report shape as sim.Session — callers swap
// local for distributed execution with one constructor. Progress
// events stream back to Request.Progress; the final report's
// measurement half is bit-identical to the local engine's.
type Client struct {
	url    string
	client *http.Client
}

// NewClient builds a client for the coordinator at base URL url.
func NewClient(url string) *Client {
	return &Client{url: url, client: &http.Client{}}
}

// Run executes one request on the coordinator. Requests the service
// does not shard (experiments, procedures, multi-offset runs, the
// serial loop) fail before touching the network. Cancellation tears
// down the run stream; the coordinator observes it and stops the
// shards.
func (c *Client) Run(ctx context.Context, req *sim.Request) (*sim.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	wr, err := wireFromRequest(req)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(wr)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return nil, fmt.Errorf("%w (coordinator %s)", ErrBusy, c.url)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("dist: coordinator %s: %s: %s", c.url, resp.Status, bytes.TrimSpace(msg))
	}

	dec := json.NewDecoder(resp.Body)
	for {
		var env runEnvelope
		if err := dec.Decode(&env); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("dist: run stream from %s broke: %w", c.url, err)
		}
		switch {
		case env.Error != "":
			return nil, fmt.Errorf("dist: %s", env.Error)
		case env.Progress != nil:
			if req.Progress != nil {
				req.Progress(env.Progress.progress())
			}
		case env.Report != nil:
			wrep := env.Report
			rep := &sim.Report{
				CPI:     wrep.CPI,
				EPI:     wrep.EPI,
				Elapsed: time.Duration(wrep.ElapsedNs),
			}
			if wrep.Result != nil {
				rep.Results = []*sim.Result{wrep.Result}
			}
			return rep, nil
		}
	}
}
