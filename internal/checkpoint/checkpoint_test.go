package checkpoint_test

import (
	"context"

	"testing"

	"repro/internal/checkpoint"
	"repro/internal/functional"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/uarch"
)

func genProg(t testing.TB, name string, length uint64) *program.Program {
	t.Helper()
	spec, err := program.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Generate(spec, length)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func capture(t testing.TB, p *program.Program, cfg uarch.Config, params checkpoint.Params) *checkpoint.Set {
	t.Helper()
	set, err := checkpoint.Capture(context.Background(), p, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Units) == 0 {
		t.Fatal("no units captured")
	}
	return set
}

// memEqual compares two memories page by page.
func memEqual(t *testing.T, a, b *mem.Memory) {
	t.Helper()
	pagesA, pagesB := a.Pages(), b.Pages()
	seen := make(map[uint64]bool)
	for _, n := range pagesA {
		seen[n] = true
	}
	for _, n := range pagesB {
		seen[n] = true
	}
	bufA := make([]byte, mem.PageSize)
	bufB := make([]byte, mem.PageSize)
	for n := range seen {
		addr := n * mem.PageSize
		a.ReadBytes(addr, bufA)
		b.ReadBytes(addr, bufB)
		for i := range bufA {
			if bufA[i] != bufB[i] {
				t.Fatalf("memory differs at %#x", addr+uint64(i))
			}
		}
	}
}

// TestRoundTripResume verifies the core checkpoint property: a CPU
// restored from snapshot i and stepped forward reaches snapshot i+1's
// architectural state and memory exactly.
func TestRoundTripResume(t *testing.T) {
	p := genProg(t, "gccx", 300_000)
	cfg := uarch.Config8Way()
	set := capture(t, p, cfg, checkpoint.Params{
		U: 1000, W: 2000, K: 40, J: 0, FunctionalWarm: true,
	})
	if len(set.Units) < 3 {
		t.Fatalf("want >= 3 units, got %d", len(set.Units))
	}
	for i := 0; i+1 < len(set.Units) && i < 4; i++ {
		cur, next := set.Units[i], set.Units[i+1]
		curL, err := cur.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		cpu := functional.NewAt(p, cur.Arch, curL.Mem.NewMemory())
		n, err := cpu.Run(next.LaunchAt - cur.LaunchAt)
		if err != nil {
			t.Fatal(err)
		}
		if n != next.LaunchAt-cur.LaunchAt {
			t.Fatalf("unit %d: resumed CPU halted after %d insts", i, n)
		}
		if got := cpu.Arch(); got != next.Arch {
			t.Fatalf("unit %d: resumed arch state diverged:\n got %+v\nwant %+v", i, got, next.Arch)
		}
		nextL, err := next.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		memEqual(t, cpu.Mem, nextL.Mem.NewMemory())
	}
}

// TestRoundTripIsolation verifies that replaying (and mutating) a
// restored unit does not corrupt the checkpoint: a second restore
// produces an identical subsequent simulation.
func TestRoundTripIsolation(t *testing.T) {
	p := genProg(t, "mcfx", 300_000)
	cfg := uarch.Config8Way()
	set := capture(t, p, cfg, checkpoint.Params{
		U: 1000, W: 2000, K: 50, J: 3, FunctionalWarm: true,
	})
	cu := set.Units[len(set.Units)/2]

	run := func() (functional.ArchState, uint64) {
		machine := uarch.NewMachine(cfg)
		launch, err := cu.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if err := machine.Hier.Restore(launch.Warm.Hier); err != nil {
			t.Fatal(err)
		}
		if err := machine.Pred.Restore(launch.Warm.Pred); err != nil {
			t.Fatal(err)
		}
		cpu := functional.NewAt(p, cu.Arch, launch.Mem.NewMemory())
		src := &uarch.Source{CPU: cpu}
		core := uarch.NewCore(machine)
		n := cu.WarmLen() + 1000
		marks := []uarch.Mark{{At: n}}
		if _, err := core.Run(src, n, marks); err != nil {
			t.Fatal(err)
		}
		return cpu.Arch(), marks[0].Cycle
	}

	arch1, cyc1 := run()
	arch2, cyc2 := run()
	if arch1 != arch2 {
		t.Fatalf("second restore diverged architecturally:\n got %+v\nwant %+v", arch2, arch1)
	}
	if cyc1 != cyc2 {
		t.Fatalf("second restore diverged in timing: %d vs %d cycles", cyc2, cyc1)
	}
}

// TestWarmStateMatchesContinuousSweep verifies that the snapshotted warm
// state reproduces the sweep: warming forward from a restored snapshot
// yields the same structures as the uninterrupted sweep.
func TestWarmStateMatchesContinuousSweep(t *testing.T) {
	p := genProg(t, "gzipx", 200_000)
	cfg := uarch.Config8Way()
	set := capture(t, p, cfg, checkpoint.Params{
		U: 1000, W: 1000, K: 30, J: 0, FunctionalWarm: true,
	})
	if len(set.Units) < 2 {
		t.Fatalf("want >= 2 units, got %d", len(set.Units))
	}
	cur, next := set.Units[0], set.Units[1]

	machine := uarch.NewMachine(cfg)
	curL, err := cur.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.Hier.Restore(curL.Warm.Hier); err != nil {
		t.Fatal(err)
	}
	if err := machine.Pred.Restore(curL.Warm.Pred); err != nil {
		t.Fatal(err)
	}
	warmer := uarch.NewWarmer(machine, cfg)
	cpu := functional.NewAt(p, cur.Arch, curL.Mem.NewMemory())
	if err := warmer.Forward(cpu, next.LaunchAt-cur.LaunchAt); err != nil {
		t.Fatal(err)
	}

	// Compare by probing: every DL1 block valid in the continuation must
	// match the sweep snapshot and vice versa. A direct struct compare
	// of the snapshots is the simplest faithful check.
	nextL, err := next.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	nextWarm := nextL.Warm
	gotH := machine.Hier.Snapshot()
	wantH := nextWarm.Hier
	for name, pair := range map[string][2][]uint64{
		"IL1": {gotH.IL1.Tags, wantH.IL1.Tags},
		"DL1": {gotH.DL1.Tags, wantH.DL1.Tags},
		"L2":  {gotH.L2.Tags, wantH.L2.Tags},
	} {
		got, want := pair[0], pair[1]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s tag %d differs after resumed warming", name, i)
			}
		}
	}
	gotP, wantP := machine.Pred.Snapshot(), nextWarm.Pred
	if gotP.History != wantP.History || gotP.RASTop != wantP.RASTop {
		t.Fatalf("predictor state differs after resumed warming")
	}
	for i := range wantP.Bimodal {
		if gotP.Bimodal[i] != wantP.Bimodal[i] || gotP.Gshare[i] != wantP.Gshare[i] {
			t.Fatalf("predictor counter %d differs after resumed warming", i)
		}
	}
}

// TestNoWarmSnapshots verifies cold-state capture: snapshots carry no
// warm state and launch at the unit start when W is unused.
func TestNoWarmSnapshots(t *testing.T) {
	p := genProg(t, "gzipx", 100_000)
	cfg := uarch.Config8Way()
	set := capture(t, p, cfg, checkpoint.Params{U: 1000, K: 20, J: 0})
	for _, u := range set.Units {
		if u.Warm != nil {
			t.Fatal("cold capture produced warm state")
		}
		if u.LaunchAt != u.Start {
			t.Fatalf("unit %d: launch %d != start %d with W=0", u.Index, u.LaunchAt, u.Start)
		}
		if u.Arch.Count != u.LaunchAt {
			t.Fatalf("unit %d: arch count %d != launch %d", u.Index, u.Arch.Count, u.LaunchAt)
		}
	}
}
