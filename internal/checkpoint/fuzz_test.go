package checkpoint_test

import (
	"bytes"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/uarch"
)

// fuzzWire captures a small real sweep once and returns its key, its
// EncodeSet bytes, and its EncodePartial bytes — the valid corpus the
// fuzzers mutate. Decoders must never panic: any corruption degrades
// to an error (full sets) or to the longest valid-frame prefix
// (partials).
func fuzzWire(f *testing.F) (checkpoint.Key, []byte, []byte) {
	f.Helper()
	p := genProg(f, "gccx", 120_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 20, FunctionalWarm: true}
	set := capture(f, p, cfg, params)
	key := checkpoint.KeyFor(p, cfg, params)

	var wire bytes.Buffer
	if err := checkpoint.EncodeSet(&wire, key, set); err != nil {
		f.Fatal(err)
	}
	last := set.Units[len(set.Units)-1]
	rs := &checkpoint.ResumeState{
		Units:           set.Units,
		PopulationUnits: set.PopulationUnits,
		SweepInsts:      last.Arch.Count,
		SweepTime:       set.SweepTime,
	}
	var partial bytes.Buffer
	if err := checkpoint.EncodePartial(&partial, key, rs); err != nil {
		f.Fatal(err)
	}
	return key, wire.Bytes(), partial.Bytes()
}

// FuzzDecodeSet feeds mutated set streams to DecodeSet: it must never
// panic, and must return either an error or a structurally sound Set.
func FuzzDecodeSet(f *testing.F) {
	key, wire, partial := fuzzWire(f)
	f.Add(wire)
	f.Add(wire[:len(wire)/2])
	f.Add(wire[:16])
	f.Add(partial) // a partial stream is not a valid full set
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := checkpoint.DecodeSet(bytes.NewReader(data), key)
		if err != nil {
			return
		}
		if set == nil {
			t.Fatal("DecodeSet returned nil set without error")
		}
		for i, u := range set.Units {
			if u == nil {
				t.Fatalf("decoded unit %d is nil", i)
			}
		}
	})
}

// FuzzDecodePartial feeds mutated partial-sweep journals to
// DecodePartial: it must never panic, and corruption must degrade to
// an error or to a consistent valid-frame prefix (Units matching the
// frame's captured count).
func FuzzDecodePartial(f *testing.F) {
	key, wire, partial := fuzzWire(f)
	f.Add(partial)
	f.Add(partial[:len(partial)/2])
	f.Add(partial[:16])
	f.Add(wire) // a full set stream has no frame to resume from
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := checkpoint.DecodePartial(bytes.NewReader(data), key)
		if err != nil {
			return
		}
		if rs == nil {
			t.Fatal("DecodePartial returned nil state without error")
		}
		if len(rs.Units) == 0 {
			t.Fatal("DecodePartial returned a frameless state without error")
		}
		for i, u := range rs.Units {
			if u == nil {
				t.Fatalf("decoded unit %d is nil", i)
			}
		}
	})
}
