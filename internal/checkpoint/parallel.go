package checkpoint

// Speculative parallel sweeps.
//
// The serial capture sweep is the one phase of sampled simulation that
// does not scale with workers: functional warming walks the whole
// dynamic stream in order. captureParallel breaks the order dependence
// speculatively. A "pioneer" CPU runs the stream arch-only — no cache,
// TLB, or predictor warming, several times cheaper per instruction —
// and hands each of N contiguous stream segments its starting
// architectural state and memory image the moment it reaches the
// segment's start position. Each segment then runs a normal warming
// sweep over its own span concurrently with the others, capturing its
// share of the launch boundaries, and the per-segment unit streams are
// stitched back together in stream order for the consumer.
//
// Architectural state and memory are exact: warming never alters them,
// so the pioneer's handoff states equal the serial sweep's states at
// the same positions bit for bit, and so do every captured unit's Arch
// and memory image. What speculation loses is warm state: a segment's
// caches and predictor start cold at its start position rather than
// carrying the history of the whole prefix — exactly the paper's
// detailed-warming scenario, whose bias Table 5 measures. Each segment
// therefore begins sweeping SweepOverlap instructions before its first
// boundary, warming (and discarding) the overlap so the first captured
// units are not stone cold; the bias-vs-stride experiment
// (internal/experiments) measures what remains. Captures without
// functional warming carry no warm state at all and are bit-identical
// to the serial sweep at any parallelism.
//
// Wall clock is roughly max over segments of (arch-only prefix +
// segment sweep): with the arch-only walk several times faster than
// warming, N segments approach an N-fold speedup before memory
// bandwidth intervenes.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/functional"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/uarch"
	"repro/internal/wallclock"
)

// DefaultSweepOverlap is the per-segment warm-up length used when
// Params.SweepOverlap is zero: long enough to refill the simulated
// cache hierarchy's working set for the suite workloads — the
// bias-vs-stride experiment (internal/experiments, "stride") measures
// the warm transient at about 500k-1M instructions for the full-scale
// machine configurations, after which parallel-sweep bias returns to
// the serial residual (see doc.go "Parallel sweeps and warming bias").
// On streams shorter than the overlap the segment starts clamp to
// zero and the sweep degenerates to redundant exact serial sweeps, so
// short captures lose speedup, never accuracy.
const DefaultSweepOverlap = 1_000_000

// segPlan is one concurrent segment of a parallel sweep: a contiguous
// run of the plan's launch boundaries (in global order) plus the stream
// position the segment's sweep starts warming from.
type segPlan struct {
	bounds []boundary
	start  uint64 // sweep start: first launch minus the warm-up overlap
}

// planSegments partitions the plan's boundary sequence into at most n
// contiguous runs of near-equal unit count. Boundaries are generated
// exactly as the serial sweep generates them, so concatenating the
// segments' captures reproduces the serial emission order. Segment 0
// always starts at stream position 0 — it is a genuine serial prefix,
// warm state included; later segments start an overlap before their
// first boundary (clamped at 0).
func planSegments(p Params, pop uint64, n int) []segPlan {
	var all []boundary
	gen := newBoundaryGen(p, pop)
	for {
		b, ok := gen.next()
		if !ok {
			break
		}
		all = append(all, b)
	}
	if len(all) == 0 {
		return nil
	}
	if n > len(all) {
		n = len(all)
	}
	overlap := uint64(p.sweepOverlap())
	segs := make([]segPlan, 0, n)
	for s := 0; s < n; s++ {
		sp := segPlan{bounds: all[s*len(all)/n : (s+1)*len(all)/n]}
		if s > 0 {
			sp.start = sp.bounds[0].launch
			if overlap < sp.start {
				sp.start -= overlap
			} else {
				sp.start = 0
			}
		}
		segs = append(segs, sp)
	}
	return segs
}

// ffArch fast-forwards an arch-only CPU to stream position target,
// observing ctx every FFChunk instructions. Early halt returns nil
// with cpu.Count short of target; the caller decides what that means.
func ffArch(ctx context.Context, cpu *functional.CPU, target uint64) error {
	for cpu.Count < target {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		step := target - cpu.Count
		if step > FFChunk {
			step = FFChunk
		}
		if _, err := cpu.Run(step); err != nil {
			return err
		}
		if cpu.Halted {
			return nil
		}
	}
	return nil
}

// runSegment sweeps one segment: a fresh CPU resumed from the
// pioneer's handoff state, a fresh (cold) warmer when the plan warms,
// the segment's boundaries captured exactly as the serial sweep
// captures them — per-segment keyframe cadence, the first unit a full
// keyframe. Units are sent to out, which the caller sized to hold the
// whole segment so this goroutine never blocks on the stitcher.
// Returns the number of instructions the segment executed.
func runSegment(ctx context.Context, prog *program.Program, cfg uarch.Config, p Params, sp segPlan, arch functional.ArchState, img *mem.Image, out chan<- *Unit) (uint64, error) {
	cpu := functional.NewAt(prog, arch, img.NewMemory())
	var warmer *uarch.Warmer
	if p.FunctionalWarm {
		machine := uarch.NewMachine(cfg)
		warmer = uarch.NewWarmer(machine, cfg)
		if p.Components != nil {
			warmer.Components = *p.Components
		}
	}
	kf := p.keyframe()
	var prevUnit *Unit
	var lastSeq, lastMem uint64
	captured := 0
	for _, b := range sp.bounds {
		for cpu.Count < b.launch {
			if cerr := ctx.Err(); cerr != nil {
				return cpu.Count - sp.start, cerr
			}
			step := b.launch - cpu.Count
			if step > FFChunk {
				step = FFChunk
			}
			var err error
			if warmer != nil {
				err = warmer.Forward(cpu, step)
			} else {
				_, err = cpu.Run(step)
			}
			if err != nil {
				return cpu.Count - sp.start, fmt.Errorf("checkpoint: parallel sweep to unit %d: %w", b.unit, err)
			}
			if cpu.Halted {
				break
			}
		}
		if cpu.Count < b.launch {
			break // program ended before this unit's launch point
		}

		u := &Unit{
			Index:    b.unit,
			Start:    b.start,
			LaunchAt: b.launch,
			Arch:     cpu.Arch(),
		}
		if prevUnit == nil || captured%kf == 0 {
			u.Mem = cpu.Mem.Snapshot()
			lastMem = cpu.Mem.Seq()
			if warmer != nil {
				snap := warmer.Snapshot()
				u.Warm = &WarmState{Hier: snap.Hier, Pred: snap.Pred}
				lastSeq = snap.Seq
			}
		} else {
			md, derr := cpu.Mem.Delta(lastMem)
			if derr != nil {
				return cpu.Count - sp.start, fmt.Errorf("checkpoint: unit %d: %w", b.unit, derr)
			}
			u.MemDelta = md
			u.Prev = prevUnit
			lastMem = md.Seq
			if warmer != nil {
				d, derr := warmer.Delta(lastSeq)
				if derr != nil {
					return cpu.Count - sp.start, fmt.Errorf("checkpoint: unit %d: %w", b.unit, derr)
				}
				u.Delta = d
				lastSeq = d.Seq
			}
		}
		prevUnit = u
		captured++
		out <- u
	}
	return cpu.Count - sp.start, nil
}

// captureParallel is CaptureStream's speculative parallel sweep (see
// the package comment at the top of this file). The pioneer goroutine
// walks the stream arch-only, spawning each segment's warming sweep as
// it reaches the segment's start; this goroutine stitches the
// per-segment unit streams back into one ordered stream for emit.
// Summary.SweepInsts totals the functional work actually executed —
// the pioneer's walk plus every segment's sweep — so it exceeds the
// serial sweep's count by the speculation overhead.
func captureParallel(ctx context.Context, prog *program.Program, cfg uarch.Config, p Params, emit func(*Unit) bool) (*Summary, error) {
	sum := &Summary{PopulationUnits: prog.Length / p.U, Complete: true}
	start := wallclock.Now()
	segs := planSegments(p, sum.PopulationUnits, p.sweepSegments())
	if len(segs) == 0 {
		return sum, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chans := make([]chan *Unit, len(segs))
	for i, sp := range segs {
		// Full-segment capacity: segment goroutines run to completion at
		// their own pace, never blocked on the stitcher.
		chans[i] = make(chan *Unit, len(sp.bounds))
	}
	errs := make([]error, len(segs))
	insts := make([]uint64, len(segs))
	var pioneerInsts uint64
	var pioneerErr error
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		spawned := make([]bool, len(segs))
		defer func() {
			// Segments the pioneer never reached still need their channels
			// closed so the stitcher terminates.
			for i := range segs {
				if !spawned[i] {
					close(chans[i])
				}
			}
		}()
		cpu := functional.New(prog)
		for i, sp := range segs {
			if err := ffArch(cctx, cpu, sp.start); err != nil {
				pioneerErr = err
				pioneerInsts = cpu.Count
				return
			}
			if cpu.Count < sp.start {
				break // program ended before this segment's start
			}
			arch := cpu.Arch()
			img := cpu.Mem.Snapshot()
			spawned[i] = true
			wg.Add(1)
			go func(i int, sp segPlan) {
				defer wg.Done()
				defer close(chans[i])
				insts[i], errs[i] = runSegment(cctx, prog, cfg, p, sp, arch, img, chans[i])
			}(i, sp)
		}
		pioneerInsts = cpu.Count
	}()

	// Stitch: drain the segments in stream order. Boundaries were
	// partitioned contiguously from the globally ordered sequence, so
	// concatenation preserves the serial sweep's nondecreasing launch
	// order. A consumer stop or a segment error cancels the rest;
	// already-filled channels are still drained so every goroutine
	// finishes before we return.
	stopped := false
	var segErr error
	for i := range segs {
		for u := range chans[i] {
			if stopped || segErr != nil {
				continue
			}
			sum.Captured++
			if !emit(u) {
				stopped = true
				sum.Complete = false
				cancel()
			}
		}
		if segErr == nil && errs[i] != nil {
			segErr = errs[i]
			cancel()
		}
	}
	wg.Wait()

	sum.SweepInsts = pioneerInsts
	for _, n := range insts {
		sum.SweepInsts += n
	}
	sum.SweepTime = wallclock.Since(start)
	if cerr := ctx.Err(); cerr != nil {
		sum.Complete = false
		return sum, cerr
	}
	if stopped {
		return sum, nil
	}
	if segErr != nil {
		return sum, segErr
	}
	if pioneerErr != nil {
		return sum, pioneerErr
	}
	return sum, nil
}
