package checkpoint

// Offline store scrub. Load and LoadPartial already treat corruption
// as a miss at use time; Verify surfaces it ahead of time — walk every
// committed entry and partial journal, decode it end to end (format-v4
// checksums included), and report what would not survive a load. The
// `simd fsck` subcommand is the CLI face of this.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// VerifyProblem describes one file Verify could not validate.
type VerifyProblem struct {
	// File is the offending file's name inside the store directory.
	File string
	// Err is the defect, phrased as the load path would report it.
	Err error
}

// VerifyReport summarizes one Verify pass.
type VerifyReport struct {
	// Entries and Partials count the files scanned of each kind.
	Entries, Partials int
	// Problems lists every file that failed validation, in name order.
	Problems []VerifyProblem
	// Evicted lists the problem files removed (evict mode only).
	Evicted []string
}

// Clean reports whether the scan found no problems.
func (r *VerifyReport) Clean() bool { return len(r.Problems) == 0 }

// Verify scrubs every committed entry (*.ckpt) and partial journal
// (*.partial) in the store: each file must decode end to end under the
// same validation the load path applies — magic, version, manifest,
// record structure, chain geometry, and (format v4) the CRC-32C seals
// — and its name must match its manifest key's content address. When
// evict is true, files that fail are removed; the advisory index
// reconciles itself on the next scan. Partial journals are considered
// valid when any resumable frame prefix survives, mirroring
// LoadPartial: a truncated journal is degraded work, not corruption.
func (s *Store) Verify(evict bool) (*VerifyReport, error) {
	rep := &VerifyReport{}
	names, err := filepath.Glob(filepath.Join(s.dir, "*"))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: verify: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		base := filepath.Base(path)
		var verr error
		switch {
		case strings.HasSuffix(base, storeExt):
			rep.Entries++
			verr = verifyEntry(path)
		case strings.HasSuffix(base, partialExt):
			rep.Partials++
			verr = verifyPartial(path)
		default:
			// index.json, orphaned temp files, foreign files: not ours to
			// judge.
			continue
		}
		if verr == nil {
			continue
		}
		rep.Problems = append(rep.Problems, VerifyProblem{File: base, Err: verr})
		if evict {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return rep, fmt.Errorf("checkpoint: verify: evict %s: %w", base, err)
			}
			s.Log("checkpoint store: evicted corrupt %s: %v", base, verr)
			rep.Evicted = append(rep.Evicted, base)
		}
	}
	return rep, nil
}

// verifyEntry decodes one committed entry against its own manifest key
// and checks the file sits at that key's content address.
func verifyEntry(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cr, man, version, err := readHeader(f)
	if err != nil {
		return err
	}
	if want := man.Key.Hash() + storeExt; filepath.Base(path) != want {
		return fmt.Errorf("filename does not match manifest key (want %s)", want)
	}
	if _, err := readRecords(cr, version, man); err != nil {
		return err
	}
	return nil
}

// verifyPartial checks a partial journal holds at least one resumable
// frame, under the same longest-valid-prefix rules LoadPartial applies.
func verifyPartial(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	man, err := func() (*storeManifest, error) {
		defer f.Close()
		_, man, _, err := readHeader(f)
		return man, err
	}()
	if err != nil {
		return err
	}
	if want := man.Key.Hash() + partialExt; filepath.Base(path) != want {
		return fmt.Errorf("filename does not match manifest key (want %s)", want)
	}
	// Re-open and run the real load path against the manifest's own key:
	// a journal is usable exactly when readPartial finds a valid frame.
	f, err = os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := readPartial(f, man.Key); err != nil {
		return err
	}
	return nil
}
