package checkpoint

import "sync"

// MemCache is an in-memory analogue of Store: completed capture Sets
// keyed by the same content-addressed Key. The sim session attaches one
// to storeless sessions so repeated (and singleflight-deduplicated
// concurrent) requests for the same sweep reuse the captured launch
// states instead of re-sweeping — the on-disk store's sharing semantics
// without touching disk. The distributed service's coordinator and
// workers use it as their fleet sweep cache.
//
// Entries hold their full delta-chained snapshot payload alive; with
// MaxBytes unset that lasts for the cache's lifetime (the owner bounds
// it), with MaxBytes set the cache evicts least-recently-used entries
// on insert, mirroring the on-disk store's LRU discipline — including
// never evicting the entry being inserted, so the run that paid for a
// sweep can always reuse it at least once. All methods are safe for
// concurrent use.
type MemCache struct {
	// MaxBytes, when positive, caps the total approximate snapshot
	// payload (Set.WarmBytes + Set.MemBytes, the same quantities the
	// byte-count benchmarks track) held across entries. Set it before
	// sharing the cache across goroutines.
	MaxBytes int64

	mu    sync.Mutex
	sets  map[string]*memEntry
	bytes int64
	tick  uint64 // logical clock driving LRU recency

	hits, misses, evictions uint64
}

// memEntry is one cached Set with its accounted payload size and
// last-use stamp.
type memEntry struct {
	set   *Set
	bytes int64
	used  uint64
}

// NewMemCache returns an empty cache.
func NewMemCache() *MemCache {
	return &MemCache{sets: make(map[string]*memEntry)}
}

// Get returns the cached Set for k, or nil. A hit refreshes the entry's
// LRU recency. The returned Set is shared: callers must treat its units
// as read-only (engine.RunSet's copy-and-replay discipline).
func (c *MemCache) Get(k Key) *Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.sets[k.Hash()]
	if e == nil {
		c.misses++
		return nil
	}
	c.hits++
	c.tick++
	e.used = c.tick
	return e.set
}

// Put caches set under k, then — with MaxBytes set — evicts least-
// recently-used entries until the cache fits (the just-inserted entry
// is exempt, so an oversized sweep still serves its own run). Only
// complete sweeps belong here (the caller checks Summary.Complete); an
// early-terminated capture would poison every later request with a
// truncated population.
func (c *MemCache) Put(k Key, set *Set) {
	size := int64(set.WarmBytes()) + int64(set.MemBytes())
	c.mu.Lock()
	defer c.mu.Unlock()
	hash := k.Hash()
	if old := c.sets[hash]; old != nil {
		c.bytes -= old.bytes
	}
	c.tick++
	c.sets[hash] = &memEntry{set: set, bytes: size, used: c.tick}
	c.bytes += size
	if c.MaxBytes <= 0 {
		return
	}
	for c.bytes > c.MaxBytes && len(c.sets) > 1 {
		oldest := ""
		for h, e := range c.sets {
			if h == hash {
				continue // never evict the entry being inserted
			}
			if oldest == "" || e.used < c.sets[oldest].used {
				oldest = h
			}
		}
		if oldest == "" {
			return
		}
		c.bytes -= c.sets[oldest].bytes
		delete(c.sets, oldest)
		c.evictions++
	}
}

// Contains reports whether a set is cached for k without touching the
// hit/miss counters or the LRU recency — the sim session's singleflight
// uses it to decide whether a just-finished concurrent sweep left a
// reusable result.
func (c *MemCache) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.sets[k.Hash()]
	return ok
}

// Bytes returns the accounted snapshot payload currently held.
func (c *MemCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns the lifetime hit/miss/eviction counts.
func (c *MemCache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
