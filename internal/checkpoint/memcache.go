package checkpoint

import "sync"

// MemCache is an in-memory analogue of Store: completed capture Sets
// keyed by the same content-addressed Key. The sim session attaches one
// to storeless sessions so repeated (and singleflight-deduplicated
// concurrent) requests for the same sweep reuse the captured launch
// states instead of re-sweeping — the on-disk store's sharing semantics
// without touching disk.
//
// Entries hold their full delta-chained snapshot payload alive for the
// cache's lifetime; the owner (a sim.Session) bounds that lifetime.
// All methods are safe for concurrent use.
type MemCache struct {
	mu   sync.Mutex
	sets map[string]*Set

	hits, misses uint64
}

// NewMemCache returns an empty cache.
func NewMemCache() *MemCache {
	return &MemCache{sets: make(map[string]*Set)}
}

// Get returns the cached Set for k, or nil. The returned Set is shared:
// callers must treat its units as read-only (engine.RunSet's copy-and-
// replay discipline).
func (c *MemCache) Get(k Key) *Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.sets[k.Hash()]
	if set != nil {
		c.hits++
	} else {
		c.misses++
	}
	return set
}

// Put caches set under k. Only complete sweeps belong here (the caller
// checks Summary.Complete); an early-terminated capture would poison
// every later request with a truncated population.
func (c *MemCache) Put(k Key, set *Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sets[k.Hash()] = set
}

// Contains reports whether a set is cached for k without touching the
// hit/miss counters — the sim session's singleflight uses it to decide
// whether a just-finished concurrent sweep left a reusable result.
func (c *MemCache) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.sets[k.Hash()]
	return ok
}

// Stats returns the lifetime hit/miss counts.
func (c *MemCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
