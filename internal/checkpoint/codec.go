package checkpoint

// Raw little-endian record codec for the checkpoint store. Snapshots
// are dominated by fixed-width arrays (cache tag/LRU arrays, predictor
// tables, 4KiB memory pages), so the store writes them as raw
// little-endian runs instead of a reflective encoding: loading a warm
// set must beat re-running the functional sweep even at small workload
// scales, and generic codecs (gob, even with fast compression) lose
// that race by an order of magnitude on these shapes.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Record tags.
const (
	recPage = 1 // one 4KiB page, referenced by arrival order
	recUnit = 2 // one captured unit
	recEnd  = 3 // terminator carrying the sweep totals
)

// codecWriter wraps the output stream with the scratch buffer the
// fixed-width runs are staged through.
type codecWriter struct {
	w       *bufio.Writer
	scratch []byte
}

func newCodecWriter(w io.Writer) *codecWriter {
	return &codecWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (c *codecWriter) u64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := c.w.Write(b[:])
	return err
}

func (c *codecWriter) u64s(v []uint64) error {
	if err := c.u64(uint64(len(v))); err != nil {
		return err
	}
	need := len(v) * 8
	if cap(c.scratch) < need {
		c.scratch = make([]byte, need)
	}
	buf := c.scratch[:need]
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], x)
	}
	_, err := c.w.Write(buf)
	return err
}

func (c *codecWriter) bytes(v []byte) error {
	if err := c.u64(uint64(len(v))); err != nil {
		return err
	}
	_, err := c.w.Write(v)
	return err
}

func (c *codecWriter) bools(v []bool) error {
	if err := c.u64(uint64(len(v))); err != nil {
		return err
	}
	need := len(v)
	if cap(c.scratch) < need {
		c.scratch = make([]byte, need)
	}
	buf := c.scratch[:need]
	for i, x := range v {
		if x {
			buf[i] = 1
		} else {
			buf[i] = 0
		}
	}
	_, err := c.w.Write(buf)
	return err
}

// codecReader mirrors codecWriter. maxLen bounds every length prefix
// in BYTES of decoded payload so corrupt files fail fast instead of
// attempting huge allocations.
type codecReader struct {
	r       *bufio.Reader
	scratch []byte
}

const maxLen = 1 << 28

func newCodecReader(r io.Reader) *codecReader {
	return &codecReader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (c *codecReader) u64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// length reads a count prefix whose elements are elemBytes wide each,
// rejecting counts whose decoded payload would exceed maxLen bytes.
func (c *codecReader) length(elemBytes int) (int, error) {
	n, err := c.u64()
	if err != nil {
		return 0, err
	}
	if n > maxLen/uint64(elemBytes) {
		return 0, fmt.Errorf("unreasonable length %d", n)
	}
	return int(n), nil
}

func (c *codecReader) u64s() ([]uint64, error) {
	n, err := c.length(8)
	if err != nil {
		return nil, err
	}
	need := n * 8
	if cap(c.scratch) < need {
		c.scratch = make([]byte, need)
	}
	buf := c.scratch[:need]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return v, nil
}

func (c *codecReader) bytes() ([]byte, error) {
	n, err := c.length(1)
	if err != nil {
		return nil, err
	}
	v := make([]byte, n)
	if _, err := io.ReadFull(c.r, v); err != nil {
		return nil, err
	}
	return v, nil
}

func (c *codecReader) bools() ([]bool, error) {
	n, err := c.length(1)
	if err != nil {
		return nil, err
	}
	if cap(c.scratch) < n {
		c.scratch = make([]byte, n)
	}
	buf := c.scratch[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = buf[i] != 0
	}
	return v, nil
}

// writeCacheState emits one cache/TLB snapshot.
func (c *codecWriter) cacheState(s *cache.State) error {
	if err := c.u64(s.Stamp); err != nil {
		return err
	}
	if err := c.u64s(s.Tags); err != nil {
		return err
	}
	if err := c.bools(s.Valid); err != nil {
		return err
	}
	if err := c.bools(s.Dirty); err != nil {
		return err
	}
	return c.u64s(s.LastUsed)
}

func (c *codecReader) cacheState() (*cache.State, error) {
	s := &cache.State{}
	var err error
	if s.Stamp, err = c.u64(); err != nil {
		return nil, err
	}
	if s.Tags, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.Valid, err = c.bools(); err != nil {
		return nil, err
	}
	if s.Dirty, err = c.bools(); err != nil {
		return nil, err
	}
	if s.LastUsed, err = c.u64s(); err != nil {
		return nil, err
	}
	return s, nil
}

func (c *codecWriter) predState(s *bpred.State) error {
	for _, b := range [][]uint8{s.Bimodal, s.Gshare, s.Chooser} {
		if err := c.bytes(b); err != nil {
			return err
		}
	}
	if err := c.u64(s.History); err != nil {
		return err
	}
	for _, u := range [][]uint64{s.BTBTags, s.BTBTgts, s.BTBLRU, s.RAS} {
		if err := c.u64s(u); err != nil {
			return err
		}
	}
	if err := c.bools(s.BTBValid); err != nil {
		return err
	}
	if err := c.u64(s.BTBStamp); err != nil {
		return err
	}
	return c.u64(uint64(int64(s.RASTop)))
}

func (c *codecReader) predState() (*bpred.State, error) {
	s := &bpred.State{}
	var err error
	if s.Bimodal, err = c.bytes(); err != nil {
		return nil, err
	}
	if s.Gshare, err = c.bytes(); err != nil {
		return nil, err
	}
	if s.Chooser, err = c.bytes(); err != nil {
		return nil, err
	}
	if s.History, err = c.u64(); err != nil {
		return nil, err
	}
	if s.BTBTags, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.BTBTgts, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.BTBLRU, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.RAS, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.BTBValid, err = c.bools(); err != nil {
		return nil, err
	}
	if s.BTBStamp, err = c.u64(); err != nil {
		return nil, err
	}
	top, err := c.u64()
	if err != nil {
		return nil, err
	}
	s.RASTop = int(int64(top))
	return s, nil
}

// unit emits one captured unit record (tag already written by the
// caller alongside any new page records).
func (c *codecWriter) unit(u *Unit, nums []uint64, refs []uint64) error {
	for _, v := range []uint64{u.Index, u.Start, u.LaunchAt} {
		if err := c.u64(v); err != nil {
			return err
		}
	}
	arch := u.Arch
	if err := c.u64s(arch.Regs[:]); err != nil {
		return err
	}
	if err := c.u64(u.Arch.PC); err != nil {
		return err
	}
	if err := c.u64(u.Arch.Count); err != nil {
		return err
	}
	halted := uint64(0)
	if u.Arch.Halted {
		halted = 1
	}
	if err := c.u64(halted); err != nil {
		return err
	}
	if err := c.u64s(nums); err != nil {
		return err
	}
	if err := c.u64s(refs); err != nil {
		return err
	}
	warm := uint64(0)
	if u.Warm != nil {
		warm = 1
	}
	if err := c.u64(warm); err != nil {
		return err
	}
	if u.Warm == nil {
		return nil
	}
	for _, s := range []*cache.State{
		u.Warm.Hier.IL1, u.Warm.Hier.DL1, u.Warm.Hier.L2,
		u.Warm.Hier.ITLB, u.Warm.Hier.DTLB,
	} {
		if err := c.cacheState(s); err != nil {
			return err
		}
	}
	return c.predState(u.Warm.Pred)
}

func (c *codecReader) unit(pages []*[mem.PageSize]byte) (*Unit, error) {
	u := &Unit{}
	var err error
	if u.Index, err = c.u64(); err != nil {
		return nil, err
	}
	if u.Start, err = c.u64(); err != nil {
		return nil, err
	}
	if u.LaunchAt, err = c.u64(); err != nil {
		return nil, err
	}
	var arch functional.ArchState
	regs, err := c.u64s()
	if err != nil {
		return nil, err
	}
	if len(regs) != isa.NumRegs {
		return nil, fmt.Errorf("unit %d: %d registers, want %d", u.Index, len(regs), isa.NumRegs)
	}
	copy(arch.Regs[:], regs)
	if arch.PC, err = c.u64(); err != nil {
		return nil, err
	}
	if arch.Count, err = c.u64(); err != nil {
		return nil, err
	}
	halted, err := c.u64()
	if err != nil {
		return nil, err
	}
	arch.Halted = halted != 0
	u.Arch = arch

	nums, err := c.u64s()
	if err != nil {
		return nil, err
	}
	refs, err := c.u64s()
	if err != nil {
		return nil, err
	}
	if len(nums) != len(refs) {
		return nil, fmt.Errorf("unit %d: page table mismatch", u.Index)
	}
	pm := make(map[uint64]*[mem.PageSize]byte, len(nums))
	for i, num := range nums {
		ref := refs[i]
		if ref >= uint64(len(pages)) {
			return nil, fmt.Errorf("unit %d: page ref %d out of range", u.Index, ref)
		}
		pm[num] = pages[ref]
	}
	u.Mem = mem.ImageFromPages(pm)

	warm, err := c.u64()
	if err != nil {
		return nil, err
	}
	if warm == 0 {
		return u, nil
	}
	hier := &cache.HierarchyState{}
	for _, dst := range []**cache.State{&hier.IL1, &hier.DL1, &hier.L2, &hier.ITLB, &hier.DTLB} {
		if *dst, err = c.cacheState(); err != nil {
			return nil, err
		}
	}
	pred, err := c.predState()
	if err != nil {
		return nil, err
	}
	u.Warm = &WarmState{Hier: hier, Pred: pred}
	return u, nil
}
