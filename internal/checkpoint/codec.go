package checkpoint

// Raw little-endian record codec for the checkpoint store. Snapshots
// are dominated by fixed-width arrays (cache tag/LRU arrays, predictor
// tables, 4KiB memory pages), so the store writes them as raw
// little-endian runs instead of a reflective encoding: loading a warm
// set must beat re-running the functional sweep even at small workload
// scales, and generic codecs (gob, even with fast compression) lose
// that race by an order of magnitude on these shapes.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/uarch"
)

// Record tags.
const (
	recPage   = 1 // one 4KiB page, referenced by arrival order
	recUnit   = 2 // one captured unit
	recEnd    = 3 // terminator carrying the sweep totals
	recKeyIdx = 4 // keyframe index (v2+): ordinals of keyframe units
	recFrame  = 5 // resume frame sealing a partial-sweep journal prefix (resume.go)
)

// Warm-state encodings inside a v2+ unit record. Version-1 files carry
// only a 0/1 presence flag, which maps onto warmNone/warmFull.
const (
	warmNone  = 0 // cold capture: no warm state
	warmFull  = 1 // full snapshot (keyframe)
	warmDelta = 2 // dirty-block delta against the previous warm unit
)

// Memory encodings inside a v3 unit record. Pre-v3 files always carry a
// full page table (memFull's layout, without the kind byte).
const (
	memFull  = 1 // full page table (keyframe)
	memDelta = 2 // dirty-page delta against the previous unit
)

// Dirty-block granularities of pre-v3 delta records, which predate the
// self-describing grain fields: the constants the v2 writer compiled in.
const (
	v2CacheGrain = 5
	v2TblGrain   = 6
	v2BTBGrain   = 5
)

// castagnoli is the CRC-32C polynomial table shared by the store
// checksums (format v4+) and the dist layer's wire digests. Castagnoli
// has hardware support on every platform Go targets seriously, so the
// checksum costs a fraction of the I/O it guards.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// codecWriter wraps the output stream with the scratch buffer the
// fixed-width runs are staged through. Every record byte flows through
// the five primitives below, which fold it into a running CRC-32C; the
// store seals each record span (committed set, resume frame) with the
// running sum so single-bit corruption anywhere in the payload —
// including inside a 4KiB page, which structural validation cannot
// see — surfaces as a decode error instead of a wrong result.
type codecWriter struct {
	w       *bufio.Writer
	scratch []byte
	crc     uint32
}

func newCodecWriter(w io.Writer) *codecWriter {
	return &codecWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// sum returns the CRC-32C of every byte written through the primitives
// so far. The sealed checksum field is itself written via u64, so it
// folds into the running sum identically on both sides — required for
// partial journals, whose frames checksum a cumulative prefix.
func (c *codecWriter) sum() uint32 { return c.crc }

func (c *codecWriter) u64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.crc = crc32.Update(c.crc, castagnoli, b[:])
	_, err := c.w.Write(b[:])
	return err
}

func (c *codecWriter) u64s(v []uint64) error {
	if err := c.u64(uint64(len(v))); err != nil {
		return err
	}
	need := len(v) * 8
	if cap(c.scratch) < need {
		c.scratch = make([]byte, need)
	}
	buf := c.scratch[:need]
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], x)
	}
	c.crc = crc32.Update(c.crc, castagnoli, buf)
	_, err := c.w.Write(buf)
	return err
}

func (c *codecWriter) u32s(v []uint32) error {
	if err := c.u64(uint64(len(v))); err != nil {
		return err
	}
	need := len(v) * 4
	if cap(c.scratch) < need {
		c.scratch = make([]byte, need)
	}
	buf := c.scratch[:need]
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[i*4:], x)
	}
	c.crc = crc32.Update(c.crc, castagnoli, buf)
	_, err := c.w.Write(buf)
	return err
}

func (c *codecWriter) bytes(v []byte) error {
	if err := c.u64(uint64(len(v))); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, castagnoli, v)
	_, err := c.w.Write(v)
	return err
}

func (c *codecWriter) bools(v []bool) error {
	if err := c.u64(uint64(len(v))); err != nil {
		return err
	}
	need := len(v)
	if cap(c.scratch) < need {
		c.scratch = make([]byte, need)
	}
	buf := c.scratch[:need]
	for i, x := range v {
		if x {
			buf[i] = 1
		} else {
			buf[i] = 0
		}
	}
	c.crc = crc32.Update(c.crc, castagnoli, buf)
	_, err := c.w.Write(buf)
	return err
}

// codecReader mirrors codecWriter — including the running CRC-32C over
// every byte read through the primitives. maxLen bounds every length
// prefix in BYTES of decoded payload so corrupt files fail fast instead
// of attempting huge allocations.
type codecReader struct {
	r       *bufio.Reader
	scratch []byte
	crc     uint32
}

const maxLen = 1 << 28

func newCodecReader(r io.Reader) *codecReader {
	return &codecReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// sum mirrors codecWriter.sum: the CRC-32C of every byte consumed so
// far. Snapshot it immediately before reading a sealed checksum field
// to get the value the writer sealed.
func (c *codecReader) sum() uint32 { return c.crc }

func (c *codecReader) u64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		return 0, err
	}
	c.crc = crc32.Update(c.crc, castagnoli, b[:])
	return binary.LittleEndian.Uint64(b[:]), nil
}

// length reads a count prefix whose elements are elemBytes wide each,
// rejecting counts whose decoded payload would exceed maxLen bytes.
func (c *codecReader) length(elemBytes int) (int, error) {
	n, err := c.u64()
	if err != nil {
		return 0, err
	}
	if n > maxLen/uint64(elemBytes) {
		return 0, fmt.Errorf("unreasonable length %d", n)
	}
	return int(n), nil
}

func (c *codecReader) u64s() ([]uint64, error) {
	n, err := c.length(8)
	if err != nil {
		return nil, err
	}
	need := n * 8
	if cap(c.scratch) < need {
		c.scratch = make([]byte, need)
	}
	buf := c.scratch[:need]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	c.crc = crc32.Update(c.crc, castagnoli, buf)
	v := make([]uint64, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return v, nil
}

func (c *codecReader) u32s() ([]uint32, error) {
	n, err := c.length(4)
	if err != nil {
		return nil, err
	}
	need := n * 4
	if cap(c.scratch) < need {
		c.scratch = make([]byte, need)
	}
	buf := c.scratch[:need]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	c.crc = crc32.Update(c.crc, castagnoli, buf)
	v := make([]uint32, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	return v, nil
}

func (c *codecReader) bytes() ([]byte, error) {
	n, err := c.length(1)
	if err != nil {
		return nil, err
	}
	v := make([]byte, n)
	if _, err := io.ReadFull(c.r, v); err != nil {
		return nil, err
	}
	c.crc = crc32.Update(c.crc, castagnoli, v)
	return v, nil
}

func (c *codecReader) bools() ([]bool, error) {
	n, err := c.length(1)
	if err != nil {
		return nil, err
	}
	if cap(c.scratch) < n {
		c.scratch = make([]byte, n)
	}
	buf := c.scratch[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	c.crc = crc32.Update(c.crc, castagnoli, buf)
	v := make([]bool, n)
	for i := range v {
		v[i] = buf[i] != 0
	}
	return v, nil
}

// writeCacheState emits one cache/TLB snapshot.
func (c *codecWriter) cacheState(s *cache.State) error {
	if err := c.u64(s.Stamp); err != nil {
		return err
	}
	if err := c.u64s(s.Tags); err != nil {
		return err
	}
	if err := c.bools(s.Valid); err != nil {
		return err
	}
	if err := c.bools(s.Dirty); err != nil {
		return err
	}
	return c.u64s(s.LastUsed)
}

func (c *codecReader) cacheState() (*cache.State, error) {
	s := &cache.State{}
	var err error
	if s.Stamp, err = c.u64(); err != nil {
		return nil, err
	}
	if s.Tags, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.Valid, err = c.bools(); err != nil {
		return nil, err
	}
	if s.Dirty, err = c.bools(); err != nil {
		return nil, err
	}
	if s.LastUsed, err = c.u64s(); err != nil {
		return nil, err
	}
	return s, nil
}

func (c *codecWriter) predState(s *bpred.State) error {
	for _, b := range [][]uint8{s.Bimodal, s.Gshare, s.Chooser} {
		if err := c.bytes(b); err != nil {
			return err
		}
	}
	if err := c.u64(s.History); err != nil {
		return err
	}
	for _, u := range [][]uint64{s.BTBTags, s.BTBTgts, s.BTBLRU, s.RAS} {
		if err := c.u64s(u); err != nil {
			return err
		}
	}
	if err := c.bools(s.BTBValid); err != nil {
		return err
	}
	if err := c.u64(s.BTBStamp); err != nil {
		return err
	}
	return c.u64(uint64(int64(s.RASTop)))
}

func (c *codecReader) predState() (*bpred.State, error) {
	s := &bpred.State{}
	var err error
	if s.Bimodal, err = c.bytes(); err != nil {
		return nil, err
	}
	if s.Gshare, err = c.bytes(); err != nil {
		return nil, err
	}
	if s.Chooser, err = c.bytes(); err != nil {
		return nil, err
	}
	if s.History, err = c.u64(); err != nil {
		return nil, err
	}
	if s.BTBTags, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.BTBTgts, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.BTBLRU, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.RAS, err = c.u64s(); err != nil {
		return nil, err
	}
	if s.BTBValid, err = c.bools(); err != nil {
		return nil, err
	}
	if s.BTBStamp, err = c.u64(); err != nil {
		return nil, err
	}
	top, err := c.u64()
	if err != nil {
		return nil, err
	}
	s.RASTop = int(int64(top))
	// Bound the stack pointer here so a corrupt entry degrades to a
	// load-time decode error (a store miss), not a replay-time failure.
	if s.RASTop < 0 || s.RASTop > len(s.RAS) {
		return nil, fmt.Errorf("RAS top %d out of range (%d entries)", s.RASTop, len(s.RAS))
	}
	return s, nil
}

// unit emits one captured unit record (tag already written by the
// caller alongside any new page records). memKind selects the memory
// encoding of the nums/refs page table (full table or dirty-page
// delta); warm, when non-nil, is written as a full snapshot, warmD as a
// dirty-block delta, neither as a cold unit. The store writer resolves
// which combination a unit gets — including re-keyframing delta units
// whose predecessor is not the previously written unit (a chain the
// reader could not rebuild).
func (c *codecWriter) unit(u *Unit, memKind uint64, nums, refs []uint64, warm *WarmState, warmD *uarch.WarmDelta) error {
	for _, v := range []uint64{u.Index, u.Start, u.LaunchAt} {
		if err := c.u64(v); err != nil {
			return err
		}
	}
	arch := u.Arch
	if err := c.u64s(arch.Regs[:]); err != nil {
		return err
	}
	if err := c.u64(u.Arch.PC); err != nil {
		return err
	}
	if err := c.u64(u.Arch.Count); err != nil {
		return err
	}
	halted := uint64(0)
	if u.Arch.Halted {
		halted = 1
	}
	if err := c.u64(halted); err != nil {
		return err
	}
	if err := c.u64(memKind); err != nil {
		return err
	}
	if err := c.u64s(nums); err != nil {
		return err
	}
	if err := c.u64s(refs); err != nil {
		return err
	}
	switch {
	case warm != nil:
		if err := c.u64(warmFull); err != nil {
			return err
		}
		return c.warmState(warm)
	case warmD != nil:
		if err := c.u64(warmDelta); err != nil {
			return err
		}
		return c.warmDelta(warmD)
	}
	return c.u64(warmNone)
}

// warmState emits one full warm snapshot.
func (c *codecWriter) warmState(w *WarmState) error {
	for _, s := range []*cache.State{
		w.Hier.IL1, w.Hier.DL1, w.Hier.L2,
		w.Hier.ITLB, w.Hier.DTLB,
	} {
		if err := c.cacheState(s); err != nil {
			return err
		}
	}
	return c.predState(w.Pred)
}

// cacheDelta emits one dirty-block cache/TLB delta (v3 layout: the
// grain is serialized, so stored chains survive granularity retuning).
func (c *codecWriter) cacheDelta(d *cache.Delta) error {
	if err := c.u64(uint64(d.N)); err != nil {
		return err
	}
	if err := c.u64(uint64(d.Grain)); err != nil {
		return err
	}
	if err := c.u64(d.Stamp); err != nil {
		return err
	}
	if err := c.u32s(d.Blocks); err != nil {
		return err
	}
	if err := c.u64s(d.Tags); err != nil {
		return err
	}
	if err := c.bools(d.Valid); err != nil {
		return err
	}
	if err := c.bools(d.Dirty); err != nil {
		return err
	}
	return c.u64s(d.LastUsed)
}

func (c *codecReader) cacheDelta(version uint32) (*cache.Delta, error) {
	d := &cache.Delta{}
	n, err := c.u64()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("unreasonable delta geometry %d", n)
	}
	d.N = int(n)
	if version >= 3 {
		grain, err := c.u64()
		if err != nil {
			return nil, err
		}
		if grain > 30 {
			return nil, fmt.Errorf("unreasonable delta grain %d", grain)
		}
		d.Grain = uint8(grain)
	} else {
		d.Grain = v2CacheGrain
	}
	if d.Stamp, err = c.u64(); err != nil {
		return nil, err
	}
	if d.Blocks, err = c.u32s(); err != nil {
		return nil, err
	}
	if d.Tags, err = c.u64s(); err != nil {
		return nil, err
	}
	if d.Valid, err = c.bools(); err != nil {
		return nil, err
	}
	if d.Dirty, err = c.bools(); err != nil {
		return nil, err
	}
	if d.LastUsed, err = c.u64s(); err != nil {
		return nil, err
	}
	return d, nil
}

// predDelta emits one dirty-block predictor delta (v3 layout with
// serialized grains).
func (c *codecWriter) predDelta(d *bpred.Delta) error {
	if err := c.u64(uint64(d.N)); err != nil {
		return err
	}
	if err := c.u64(uint64(d.BTBN)); err != nil {
		return err
	}
	if err := c.u64(uint64(d.TblGrain)); err != nil {
		return err
	}
	if err := c.u64(uint64(d.BTBGrain)); err != nil {
		return err
	}
	if err := c.u32s(d.TblBlocks); err != nil {
		return err
	}
	for _, b := range [][]uint8{d.Bimodal, d.Gshare, d.Chooser} {
		if err := c.bytes(b); err != nil {
			return err
		}
	}
	if err := c.u64(d.History); err != nil {
		return err
	}
	if err := c.u32s(d.BTBBlocks); err != nil {
		return err
	}
	for _, u := range [][]uint64{d.BTBTags, d.BTBTgts, d.BTBLRU} {
		if err := c.u64s(u); err != nil {
			return err
		}
	}
	if err := c.bools(d.BTBValid); err != nil {
		return err
	}
	if err := c.u64(d.BTBStamp); err != nil {
		return err
	}
	if err := c.u64s(d.RAS); err != nil {
		return err
	}
	return c.u64(uint64(int64(d.RASTop)))
}

func (c *codecReader) predDelta(version uint32) (*bpred.Delta, error) {
	d := &bpred.Delta{}
	n, err := c.u64()
	if err != nil {
		return nil, err
	}
	btbn, err := c.u64()
	if err != nil {
		return nil, err
	}
	if n > maxLen || btbn > maxLen {
		return nil, fmt.Errorf("unreasonable delta geometry %d/%d", n, btbn)
	}
	d.N, d.BTBN = int(n), int(btbn)
	if version >= 3 {
		tg, err := c.u64()
		if err != nil {
			return nil, err
		}
		bg, err := c.u64()
		if err != nil {
			return nil, err
		}
		if tg > 30 || bg > 30 {
			return nil, fmt.Errorf("unreasonable delta grains %d/%d", tg, bg)
		}
		d.TblGrain, d.BTBGrain = uint8(tg), uint8(bg)
	} else {
		d.TblGrain, d.BTBGrain = v2TblGrain, v2BTBGrain
	}
	if d.TblBlocks, err = c.u32s(); err != nil {
		return nil, err
	}
	if d.Bimodal, err = c.bytes(); err != nil {
		return nil, err
	}
	if d.Gshare, err = c.bytes(); err != nil {
		return nil, err
	}
	if d.Chooser, err = c.bytes(); err != nil {
		return nil, err
	}
	if d.History, err = c.u64(); err != nil {
		return nil, err
	}
	if d.BTBBlocks, err = c.u32s(); err != nil {
		return nil, err
	}
	if d.BTBTags, err = c.u64s(); err != nil {
		return nil, err
	}
	if d.BTBTgts, err = c.u64s(); err != nil {
		return nil, err
	}
	if d.BTBLRU, err = c.u64s(); err != nil {
		return nil, err
	}
	if d.BTBValid, err = c.bools(); err != nil {
		return nil, err
	}
	if d.BTBStamp, err = c.u64(); err != nil {
		return nil, err
	}
	if d.RAS, err = c.u64s(); err != nil {
		return nil, err
	}
	top, err := c.u64()
	if err != nil {
		return nil, err
	}
	d.RASTop = int(int64(top))
	return d, nil
}

// warmDelta emits one dirty-block warm delta (hierarchy + predictor).
// The chain linkage (Since/Seq) is implicit in record order and not
// serialized: the reader rebuilds Prev links as it goes.
func (c *codecWriter) warmDelta(d *uarch.WarmDelta) error {
	for _, cd := range []*cache.Delta{d.Hier.IL1, d.Hier.DL1, d.Hier.L2, d.Hier.ITLB, d.Hier.DTLB} {
		if err := c.cacheDelta(cd); err != nil {
			return err
		}
	}
	return c.predDelta(d.Pred)
}

func (c *codecReader) warmDelta(version uint32) (*uarch.WarmDelta, error) {
	hier := &cache.HierarchyDelta{}
	var err error
	for _, dst := range []**cache.Delta{&hier.IL1, &hier.DL1, &hier.L2, &hier.ITLB, &hier.DTLB} {
		if *dst, err = c.cacheDelta(version); err != nil {
			return nil, err
		}
	}
	pred, err := c.predDelta(version)
	if err != nil {
		return nil, err
	}
	return &uarch.WarmDelta{Hier: hier, Pred: pred}, nil
}

// warmGeom records the structure geometry of the last full snapshot so
// subsequent delta records can be validated at load time: a corrupt
// delta must surface as a decode error (and therefore a store miss),
// never as an out-of-range panic or silently wrong state at replay.
type warmGeom struct {
	il1, dl1, l2, itlb, dtlb int
	tbl, btb, ras            int
}

func geomOf(w *WarmState) warmGeom {
	return warmGeom{
		il1:  len(w.Hier.IL1.Tags),
		dl1:  len(w.Hier.DL1.Tags),
		l2:   len(w.Hier.L2.Tags),
		itlb: len(w.Hier.ITLB.Tags),
		dtlb: len(w.Hier.DTLB.Tags),
		tbl:  len(w.Pred.Bimodal),
		btb:  len(w.Pred.BTBTags),
		ras:  len(w.Pred.RAS),
	}
}

// validate checks a decoded warm delta against the chain's geometry.
func (g warmGeom) validate(d *uarch.WarmDelta) error {
	for _, pair := range []struct {
		d *cache.Delta
		n int
	}{
		{d.Hier.IL1, g.il1}, {d.Hier.DL1, g.dl1}, {d.Hier.L2, g.l2},
		{d.Hier.ITLB, g.itlb}, {d.Hier.DTLB, g.dtlb},
	} {
		if err := pair.d.Validate(pair.n); err != nil {
			return err
		}
	}
	return d.Pred.Validate(g.tbl, g.btb, g.ras)
}

// unit decodes one unit record. version selects the layout: v1 carries
// a full page table and a warm presence flag; v2 adds the warm
// delta/full/none kind; v3 adds the memory full/delta kind and
// serialized grains. prev is the previously decoded unit (the v3 delta
// chain predecessor), prevWarm the last warm-carrying unit (the pre-v3
// warm chain predecessor), and geom the geometry established by the
// chain's keyframe; geom is updated when this record carries a full
// snapshot.
func (c *codecReader) unit(version uint32, pages []*[mem.PageSize]byte, prev, prevWarm *Unit, geom *warmGeom) (*Unit, error) {
	u := &Unit{}
	var err error
	if u.Index, err = c.u64(); err != nil {
		return nil, err
	}
	if u.Start, err = c.u64(); err != nil {
		return nil, err
	}
	if u.LaunchAt, err = c.u64(); err != nil {
		return nil, err
	}
	var arch functional.ArchState
	regs, err := c.u64s()
	if err != nil {
		return nil, err
	}
	if len(regs) != isa.NumRegs {
		return nil, fmt.Errorf("unit %d: %d registers, want %d", u.Index, len(regs), isa.NumRegs)
	}
	copy(arch.Regs[:], regs)
	if arch.PC, err = c.u64(); err != nil {
		return nil, err
	}
	if arch.Count, err = c.u64(); err != nil {
		return nil, err
	}
	halted, err := c.u64()
	if err != nil {
		return nil, err
	}
	arch.Halted = halted != 0
	u.Arch = arch

	mKind := uint64(memFull)
	if version >= 3 {
		if mKind, err = c.u64(); err != nil {
			return nil, err
		}
	}
	nums, err := c.u64s()
	if err != nil {
		return nil, err
	}
	refs, err := c.u64s()
	if err != nil {
		return nil, err
	}
	if len(nums) != len(refs) {
		return nil, fmt.Errorf("unit %d: page table mismatch", u.Index)
	}
	resolve := func() ([]*[mem.PageSize]byte, error) {
		out := make([]*[mem.PageSize]byte, len(refs))
		for i, ref := range refs {
			if ref >= uint64(len(pages)) {
				return nil, fmt.Errorf("unit %d: page ref %d out of range", u.Index, ref)
			}
			out[i] = pages[ref]
		}
		return out, nil
	}
	switch mKind {
	case memFull:
		resolved, err := resolve()
		if err != nil {
			return nil, err
		}
		pm := make(map[uint64]*[mem.PageSize]byte, len(nums))
		for i, num := range nums {
			pm[num] = resolved[i]
		}
		u.Mem = mem.ImageFromPages(pm)
	case memDelta:
		if prev == nil {
			return nil, fmt.Errorf("unit %d: memory delta with no preceding keyframe", u.Index)
		}
		resolved, err := resolve()
		if err != nil {
			return nil, err
		}
		d := &mem.Delta{Nums: nums, Pages: resolved}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("unit %d: %w", u.Index, err)
		}
		u.MemDelta = d
		u.Prev = prev
	default:
		return nil, fmt.Errorf("unit %d: unknown memory encoding %d", u.Index, mKind)
	}

	kind, err := c.u64()
	if err != nil {
		return nil, err
	}
	switch kind {
	case warmNone:
		return u, nil
	case warmFull:
		if version >= 3 && u.MemDelta != nil {
			// The v3 writer keyframes memory and warm state together; a
			// mixed unit means records were spliced.
			return nil, fmt.Errorf("unit %d: full warm state on a memory-delta unit", u.Index)
		}
		hier := &cache.HierarchyState{}
		for _, dst := range []**cache.State{&hier.IL1, &hier.DL1, &hier.L2, &hier.ITLB, &hier.DTLB} {
			if *dst, err = c.cacheState(); err != nil {
				return nil, err
			}
		}
		pred, err := c.predState()
		if err != nil {
			return nil, err
		}
		u.Warm = &WarmState{Hier: hier, Pred: pred}
		*geom = geomOf(u.Warm)
		return u, nil
	case warmDelta:
		if version < 2 {
			return nil, fmt.Errorf("unit %d: delta record in version-%d file", u.Index, version)
		}
		if version >= 3 && u.MemDelta == nil {
			return nil, fmt.Errorf("unit %d: warm delta on a memory-keyframe unit", u.Index)
		}
		if prevWarm == nil {
			return nil, fmt.Errorf("unit %d: delta with no preceding keyframe", u.Index)
		}
		d, err := c.warmDelta(version)
		if err != nil {
			return nil, err
		}
		if err := geom.validate(d); err != nil {
			return nil, fmt.Errorf("unit %d: %w", u.Index, err)
		}
		u.Delta = d
		if u.Prev == nil {
			u.Prev = prevWarm
		} else if u.Prev != prevWarm {
			return nil, fmt.Errorf("unit %d: warm and memory chains diverge", u.Index)
		}
		return u, nil
	}
	return nil, fmt.Errorf("unit %d: unknown warm encoding %d", u.Index, kind)
}
