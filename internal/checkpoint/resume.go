package checkpoint

// Resumable sweeps: the partial-sweep record and the resume path.
//
// A functional sweep is the one serial, unsharded cost of a sampled
// run, and before this file it was all-or-nothing: a cancelled run, an
// expired sweep lease, or a killed process threw the whole sweep away.
// CaptureStream therefore journals its progress as a *partial sweep
// record* — the store's format-v3 byte stream (header, manifest, page
// and unit records) interleaved with Frame records (recFrame) that pin
// the exact sweep state after a captured unit: the captured-unit count,
// the stream position, the accumulated sweep time, and the warmer's
// fetch-dedup block. Everything else a resume needs is already in the
// last captured unit: capturing a unit snapshots (or delta-snapshots)
// memory and warm state and resets both dirty journals, so the unit's
// materialization IS the sweep state at its launch point.
//
// Store.PartialWriter stages the journal next to the committed entries
// (<hash>.partial): records stream into a temp file and the first
// Checkpoint atomically renames it into place, so a crash at any byte
// leaves either no journal or one whose valid-frame prefix is intact.
// Later Checkpoints append in place and re-flush; readers accept the
// longest prefix ending in a frame that is consistent with the decoded
// units, so truncation or bit corruption degrades to an earlier frame
// or a cold start — never to a wrong resume (the same discipline the
// committed-entry reader applies, swept by the corruption suite).
//
// Resume(store, key) reconstructs a ResumeState from the journal, and
// CaptureStream (Params.Resume) continues from it: it replays the
// boundary generator over the journaled units (validating each against
// the plan), rebuilds the sweep CPU from the last unit's arch state and
// materialized memory, restores the warmed structures, and carries on
// fast-forward + capture from the journaled instruction count. The
// continued unit stream is bit-identical to the tail of an
// uninterrupted sweep.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/functional"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/uarch"
)

// partialExt names the on-disk partial-sweep journal of a key; the
// committed entry keeps storeExt, and the index/LRU (which glob only
// storeExt) never see journals.
const partialExt = ".partial"

// ResumeFrame is the sweep-side state pinned immediately after one
// captured unit: together with the units captured so far it is
// everything a resumed CaptureStream needs to continue bit-identically.
// Params.OnFrame observes one per captured unit; PartialWriter.
// Checkpoint persists the frames a journal commits.
type ResumeFrame struct {
	// Captured is the number of units captured up to and including this
	// frame's unit.
	Captured int
	// SweepInsts is the stream position at the frame — the last unit's
	// launch point, where the resumed CPU restarts.
	SweepInsts uint64
	// SweepTime is the wall-clock sweep cost accumulated so far.
	SweepTime time.Duration
	// HaveIBlock/LastIBlock journal the warmer's consecutive-fetch dedup
	// state (uarch.Warmer.FetchBlock); restoring warm state without it
	// would issue one extra warm fetch after resume and skew the warmed
	// LRU stamps off the uninterrupted sweep.
	HaveIBlock bool
	LastIBlock uint64
}

// ResumeState is a reconstructed partial sweep: the journaled units
// plus the frame they were journaled at. Feed it to CaptureStream via
// Params.Resume; the already-captured units are not re-emitted, so the
// consumer must account for them itself (the engine feeds them straight
// into its replay pipeline).
type ResumeState struct {
	// Units holds the journaled units in capture order, delta chains
	// intact.
	Units []*Unit
	// PopulationUnits echoes the journal's manifest.
	PopulationUnits uint64
	// SweepInsts, SweepTime, HaveIBlock, and LastIBlock mirror the
	// ResumeFrame the journal was cut at (Captured == len(Units)).
	SweepInsts uint64
	SweepTime  time.Duration
	HaveIBlock bool
	LastIBlock uint64
}

// resumeSweep rebuilds the sweep execution state from a journaled
// partial: it replays gen over the journaled units (validating that the
// journal belongs to exactly this plan) and returns the CPU positioned
// at the journaled instruction count, with machine/warmer (when
// warming) restored to the last unit's warm state.
func resumeSweep(prog *program.Program, machine *uarch.Machine, warmer *uarch.Warmer, gen *boundaryGen, rs *ResumeState) (*functional.CPU, error) {
	for i, u := range rs.Units {
		b, ok := gen.next()
		if !ok || b.unit != u.Index || b.start != u.Start || b.launch != u.LaunchAt {
			return nil, fmt.Errorf("checkpoint: resume: journaled unit %d (population unit %d @%d) does not match the plan", i, u.Index, u.LaunchAt)
		}
	}
	last := rs.Units[len(rs.Units)-1]
	if last.Arch.Count != rs.SweepInsts {
		return nil, fmt.Errorf("checkpoint: resume: journaled position %d does not match last unit's launch %d", rs.SweepInsts, last.Arch.Count)
	}
	launch, err := last.Materialize()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: resume: %w", err)
	}
	if machine != nil {
		if launch.Warm == nil {
			return nil, fmt.Errorf("checkpoint: resume: journal carries no warm state for a warmed plan")
		}
		if err := machine.Hier.Restore(launch.Warm.Hier); err != nil {
			return nil, fmt.Errorf("checkpoint: resume: %w", err)
		}
		if err := machine.Pred.Restore(launch.Warm.Pred); err != nil {
			return nil, fmt.Errorf("checkpoint: resume: %w", err)
		}
		warmer.SetFetchBlock(rs.LastIBlock, rs.HaveIBlock)
	}
	// NewMemory shares the materialized image copy-on-write with the
	// journaled units, exactly as the uninterrupted sweep's memory
	// shared pages with the units it had captured.
	return functional.NewAt(prog, last.Arch, launch.Mem.NewMemory()), nil
}

// Resume loads the partial-sweep journal stored under k and
// reconstructs the sweep state to continue from, or nil when the store
// holds no usable journal (absent or corrupt — corruption degrades to
// the journal's last valid frame before giving up entirely, and is
// logged, never an error). Pass the result to CaptureStream via
// Params.Resume.
func Resume(s *Store, k Key) (*ResumeState, error) {
	return s.LoadPartial(k)
}

func (s *Store) partialPath(k Key) string {
	return filepath.Join(s.dir, k.Hash()+partialExt)
}

// LoadPartial returns the partial sweep journaled under k, or nil when
// no usable journal exists. See Resume.
//
//simlint:noctx bounded single-file metadata read; no long blocking
func (s *Store) LoadPartial(k Key) (*ResumeState, error) {
	path := s.partialPath(k)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: load partial: %w", err)
	}
	defer f.Close()
	rs, err := readPartial(f, k)
	if err != nil {
		s.Log("checkpoint store: discarding unusable partial %s: %v", filepath.Base(path), err)
		return nil, nil
	}
	s.Log("checkpoint store: partial hit %s (%s: %d units, resume at inst %d)",
		k.Hash(), k.Workload, len(rs.Units), rs.SweepInsts)
	return rs, nil
}

// DropPartial removes k's partial-sweep journal, if any — called once
// the completed sweep commits and the journal has nothing left to add.
func (s *Store) DropPartial(k Key) {
	os.Remove(s.partialPath(k))
}

// SavePartial atomically installs rs as k's partial-sweep journal,
// replacing any previous journal. It is the whole-state counterpart of
// PartialWriter — used when a ready-made ResumeState arrives (the
// distributed coordinator receiving a worker's journal upload) rather
// than streaming out of a live sweep.
//
//simlint:noctx bounded single-file atomic install; no long blocking
func (s *Store) SavePartial(k Key, rs *ResumeState) error {
	tmp, err := os.CreateTemp(s.dir, k.Hash()+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: save partial: %w", err)
	}
	defer func() {
		if tmp != nil {
			name := tmp.Name()
			tmp.Close()
			os.Remove(name)
		}
	}()
	if err := EncodePartial(tmp, k, rs); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: save partial: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, s.partialPath(k)); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: save partial: %w", err)
	}
	return nil
}

// PartialWriter streams a sweep's units into a crash-safe journal
// alongside the committed store entries. Add appends each unit as it is
// captured (the same delta-or-keyframe records SetWriter writes);
// Checkpoint seals the records so far under a frame and makes the
// journal durable — the first Checkpoint atomically renames the staged
// temp file into place, later ones append and flush. A journal with no
// Checkpoint is never installed. Close keeps the installed journal for
// a future resume; Discard removes everything the writer created.
type PartialWriter struct {
	store     *Store
	key       Key
	f         *os.File
	enc       *setEncoder
	installed bool
	err       error
}

// PartialWriter stages a partial-sweep journal for k. pop is the
// workload's population size in units.
//
//simlint:noctx opens a staging temp file; writes stream under the caller's ctx
func (s *Store) PartialWriter(k Key, pop uint64) (*PartialWriter, error) {
	tmp, err := os.CreateTemp(s.dir, k.Hash()+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: partial writer: %w", err)
	}
	w := &PartialWriter{store: s, key: k, f: tmp}
	enc, err := newSetEncoder(tmp, k, pop)
	if err != nil {
		w.fail(err)
		return nil, w.err
	}
	w.enc = enc
	return w, nil
}

func (w *PartialWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.cleanup()
}

// cleanup closes the file and removes whatever path it lives at.
func (w *PartialWriter) cleanup() {
	if w.f == nil {
		return
	}
	name := w.f.Name()
	if w.installed {
		name = w.store.partialPath(w.key)
	}
	w.f.Close()
	os.Remove(name)
	w.f = nil
}

// Add appends one unit's records. Errors are sticky.
func (w *PartialWriter) Add(u *Unit) error {
	if w.err != nil {
		return w.err
	}
	if err := w.enc.add(u); err != nil {
		w.fail(err)
	}
	return w.err
}

// Checkpoint commits the journal through fr: every record written so
// far plus the frame is flushed, and on the first call the journal is
// atomically installed under the key's partial path. fr must describe
// exactly the units added so far.
func (w *PartialWriter) Checkpoint(fr ResumeFrame) error {
	if w.err != nil {
		return w.err
	}
	if fr.Captured != w.enc.units {
		w.fail(fmt.Errorf("checkpoint: partial frame at %d units, %d written", fr.Captured, w.enc.units))
		return w.err
	}
	if err := w.enc.frame(fr); err != nil {
		w.fail(err)
		return w.err
	}
	if err := w.enc.cw.w.Flush(); err != nil {
		w.fail(err)
		return w.err
	}
	if !w.installed {
		if err := os.Rename(w.f.Name(), w.store.partialPath(w.key)); err != nil {
			w.fail(err)
			return w.err
		}
		w.installed = true
	}
	return nil
}

// Close flushes and closes the journal, keeping it on disk when at
// least one Checkpoint installed it (a journal with no frames is
// removed — there is nothing to resume from).
func (w *PartialWriter) Close() error {
	if w.f == nil {
		return w.err
	}
	if !w.installed {
		w.cleanup()
		return w.err
	}
	ferr := w.enc.cw.w.Flush()
	cerr := w.f.Close()
	w.f = nil
	if w.err == nil {
		if ferr != nil {
			w.err = ferr
		} else if cerr != nil {
			w.err = cerr
		}
	}
	if w.err == nil {
		w.store.Log("checkpoint store: journaled partial %s (%s: %d units)",
			w.key.Hash(), w.key.Workload, w.enc.units)
	}
	return w.err
}

// Discard removes the journal — staged or installed — because the
// completed sweep made it redundant (or the caller is abandoning it).
func (w *PartialWriter) Discard() {
	w.cleanup()
	w.store.DropPartial(w.key)
	if w.err == nil {
		w.err = fmt.Errorf("checkpoint: partial journal discarded")
	}
}

// frame appends one recFrame record sealing the units written so far:
// the resume frame's scalars plus the keyframe ordinals accumulated to
// this point — the same index the committed entry's recKeyIdx carries,
// validated by the reader against the units it actually decoded.
func (e *setEncoder) frame(fr ResumeFrame) error {
	have := uint64(0)
	if fr.HaveIBlock {
		have = 1
	}
	for _, v := range []uint64{recFrame, uint64(fr.Captured), fr.SweepInsts,
		uint64(int64(fr.SweepTime)), have, fr.LastIBlock} {
		if err := e.cw.u64(v); err != nil {
			return err
		}
	}
	if err := e.cw.u64s(e.keyframes); err != nil {
		return err
	}
	// Seal the cumulative journal prefix under this frame. Each frame's
	// checksum covers every byte since the manifest — including earlier
	// frames and their checksums, which folded into the running sum as
	// ordinary u64 fields — so a reader verifying frame n has verified
	// the whole prefix it would resume from.
	return e.cw.u64(uint64(e.cw.sum()))
}

// EncodePartial writes rs, keyed by k, as one partial-sweep byte stream
// — the journal format with a single frame at the end. It is the wire
// form the distributed service hands partial sweeps across workers
// with, exactly as EncodeSet is for completed sweeps.
func EncodePartial(w io.Writer, k Key, rs *ResumeState) error {
	enc, err := newSetEncoder(w, k, rs.PopulationUnits)
	if err != nil {
		return fmt.Errorf("checkpoint: encode partial: %w", err)
	}
	for _, u := range rs.Units {
		if err := enc.add(u); err != nil {
			return fmt.Errorf("checkpoint: encode partial: %w", err)
		}
	}
	fr := ResumeFrame{
		Captured:   len(rs.Units),
		SweepInsts: rs.SweepInsts,
		SweepTime:  rs.SweepTime,
		HaveIBlock: rs.HaveIBlock,
		LastIBlock: rs.LastIBlock,
	}
	if err := enc.frame(fr); err != nil {
		return fmt.Errorf("checkpoint: encode partial: %w", err)
	}
	if err := enc.cw.w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: encode partial: %w", err)
	}
	return nil
}

// DecodePartial reads one EncodePartial (or journal-file) byte stream
// and reconstructs the ResumeState, guarded by the expected key like
// DecodeSet. Corruption degrades to the longest valid-frame prefix; a
// stream with no valid frame is an error.
func DecodePartial(r io.Reader, k Key) (*ResumeState, error) {
	rs, err := readPartial(r, k)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode partial: %w", err)
	}
	return rs, nil
}

// readPartial scans a partial-sweep byte stream and returns the state
// at the last frame consistent with the records before it. Unlike
// readSet — where any defect fails the whole entry — a defect here
// (truncation mid-record, a frame disagreeing with the decoded units,
// an unknown tag) only ends the scan: the journal is by construction a
// prefix of a crashed write, so everything before the last good frame
// is still a correct, older resume point.
func readPartial(r io.Reader, k Key) (*ResumeState, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("short header: %w", err)
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("bad magic %q", magic[:])
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	// Partial journals have no pre-v3 history to stay loadable for; v3
	// journals (pre-checksum) still resume so an upgrade mid-sweep does
	// not throw away journaled work.
	if version != storeVersion && version != storeVersionV3 {
		return nil, fmt.Errorf("partial format version %d, want %d or %d", version, storeVersionV3, storeVersion)
	}
	cr := newCodecReader(r)
	man, err := readManifest(cr)
	if err != nil {
		return nil, err
	}
	if man.Key.String() != k.String() {
		return nil, fmt.Errorf("key mismatch: stored %s", man.Key)
	}

	var (
		pages     []*[mem.PageSize]byte
		units     []*Unit
		prev      *Unit
		prevWarm  *Unit
		geom      warmGeom
		keyframes []uint64
		good      *ResumeState
	)
scan:
	for {
		tag, err := cr.u64()
		if err != nil {
			break // truncated at a record boundary: keep the last frame
		}
		switch tag {
		case recPage:
			page, err := cr.bytes()
			if err != nil || len(page) != mem.PageSize {
				break scan
			}
			pages = append(pages, (*[mem.PageSize]byte)(page))
		case recUnit:
			u, err := cr.unit(version, pages, prev, prevWarm, &geom)
			if err != nil {
				break scan
			}
			if u.Mem != nil {
				keyframes = append(keyframes, uint64(len(units)))
			}
			if u.Warm != nil || u.Delta != nil {
				prevWarm = u
			}
			prev = u
			units = append(units, u)
		case recFrame:
			var vals [5]uint64
			for i := range vals {
				if vals[i], err = cr.u64(); err != nil {
					break scan
				}
			}
			keyIdx, err := cr.u64s()
			if err != nil {
				break scan
			}
			if version >= 4 {
				// Verify the frame's seal over the whole journal prefix;
				// a mismatch means bit rot somewhere before this point, so
				// nothing from here on is trustworthy.
				expect := cr.sum()
				stored, err := cr.u64()
				if err != nil || uint32(stored) != expect {
					break scan
				}
			}
			// A frame must describe exactly the units decoded before it;
			// anything else means records were lost or spliced — stop
			// trusting the stream, keep the previous good frame.
			if vals[0] != uint64(len(units)) || len(keyIdx) != len(keyframes) {
				break scan
			}
			for i, ord := range keyIdx {
				if ord != keyframes[i] {
					break scan
				}
			}
			good = &ResumeState{
				Units:           append([]*Unit(nil), units...),
				PopulationUnits: man.PopulationUnits,
				SweepInsts:      vals[1],
				SweepTime:       time.Duration(int64(vals[2])),
				HaveIBlock:      vals[3] != 0,
				LastIBlock:      vals[4],
			}
		default:
			break scan
		}
	}
	if good == nil || len(good.Units) == 0 {
		return nil, fmt.Errorf("no usable frame")
	}
	return good, nil
}
