package checkpoint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/uarch"
)

// TestStoreChecksumDetectsBitFlips is the format-v4 guarantee the
// pre-checksum corruption sweep could not give: EVERY single-byte flip
// past the header — including flips inside opaque content (4KiB pages,
// predictor tables, LRU stamps) that still parse structurally — must
// degrade to a store miss, never load.
func TestStoreChecksumDetectsBitFlips(t *testing.T) {
	p := genProg(t, "gccx", 400_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 8, FunctionalWarm: true, Keyframe: 4}
	set := capture(t, p, cfg, params)

	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	if err := store.Save(key, set); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Hash()+".ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 80; i++ {
		off := 12 + (len(data)-13)*i/80 // past magic+version
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5a
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := store.Load(key)
		if err != nil {
			t.Fatalf("flip at %d: got error %v, want miss", off, err)
		}
		if got != nil {
			t.Fatalf("flip at %d loaded despite the checksum", off)
		}
	}

	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Load(key); err != nil || got == nil {
		t.Fatalf("intact entry failed to load after flip sweep: %v", err)
	}
}

// TestStoreVerify covers the offline scrub: a clean store verifies
// clean, payload corruption in a committed entry or a partial journal
// is reported (with the file kept in report-only mode), a misnamed
// entry is caught by the content-address check, and evict mode removes
// exactly the problem files while the good ones keep loading.
func TestStoreVerify(t *testing.T) {
	p := genProg(t, "gzipx", 200_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 10, FunctionalWarm: true, Keyframe: 4}
	set := capture(t, p, cfg, params)

	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	if err := store.Save(key, set); err != nil {
		t.Fatal(err)
	}
	// A second, good entry that must survive the eviction below.
	p2 := genProg(t, "mcfx", 200_000)
	key2 := checkpoint.KeyFor(p2, cfg, params)
	if err := store.Save(key2, capture(t, p2, cfg, params)); err != nil {
		t.Fatal(err)
	}
	// A partial journal, cut mid-sweep.
	p3 := genProg(t, "gccx", 300_000)
	params3 := checkpoint.Params{U: 1000, W: 1000, K: 8, FunctionalWarm: true, Keyframe: 4}
	key3 := checkpoint.KeyFor(p3, cfg, params3)
	journalSweep(t, p3, cfg, params3, store, key3, nil, 5)

	rep, err := store.Verify(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Entries != 2 || rep.Partials != 1 {
		t.Fatalf("clean store: %+v", rep)
	}

	// Corrupt the first entry's payload and truncate the journal to
	// before its first frame (leaving it with no resumable prefix).
	entryPath := filepath.Join(dir, key.Hash()+".ckpt")
	data, err := os.ReadFile(entryPath)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x5a
	if err := os.WriteFile(entryPath, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	partialPath := filepath.Join(dir, key3.Hash()+".partial")
	pdata, err := os.ReadFile(partialPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(partialPath, pdata[:200], 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = store.Verify(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 2 || len(rep.Evicted) != 0 {
		t.Fatalf("report-only scrub: %+v", rep)
	}
	if _, err := os.Stat(entryPath); err != nil {
		t.Fatal("report-only scrub must not remove files")
	}

	rep, err = store.Verify(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Evicted) != 2 {
		t.Fatalf("evict scrub: %+v", rep)
	}
	if _, err := os.Stat(entryPath); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not evicted")
	}
	if _, err := os.Stat(partialPath); !os.IsNotExist(err) {
		t.Fatal("corrupt partial not evicted")
	}
	// The untouched entry survives and still loads.
	if got, err := store.Load(key2); err != nil || got == nil {
		t.Fatalf("good entry lost after eviction: %v", err)
	}

	// A file sitting at the wrong content address is a problem even when
	// its bytes are intact.
	if err := os.WriteFile(filepath.Join(dir, "0123456789abcdef0123456789abcdef.ckpt"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = store.Verify(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("misnamed entry must be reported")
	}
}
