package checkpoint_test

import (
	"context"

	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/program"
	"repro/internal/uarch"
)

// TestStoreRoundTrip saves a captured set and reloads it, requiring the
// reloaded units to be indistinguishable from the originals (geometry,
// arch state, memory contents, warm state).
func TestStoreRoundTrip(t *testing.T) {
	p := genProg(t, "gccx", 300_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 2000, K: 40, J: 0, FunctionalWarm: true}
	set := capture(t, p, cfg, params)

	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	if err := store.Save(key, set); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("saved set not found")
	}
	if len(loaded.Units) != len(set.Units) {
		t.Fatalf("loaded %d units, saved %d", len(loaded.Units), len(set.Units))
	}
	if loaded.PopulationUnits != set.PopulationUnits || loaded.SweepInsts != set.SweepInsts {
		t.Fatalf("sweep accounting lost: %+v vs %+v", loaded.PopulationUnits, set.PopulationUnits)
	}
	for i := range set.Units {
		unitsEqual(t, "roundtrip", loaded.Units[i], set.Units[i])
	}
	if hits, misses := store.Stats(); hits != 1 || misses != 0 {
		t.Fatalf("stats: %d hits %d misses, want 1/0", hits, misses)
	}
}

// TestStoreKeyDiscrimination verifies that every key ingredient
// invalidates: a different plan geometry, warming mode, or hierarchy
// shape misses, while a machine config differing only in timing/width
// hits the same entry.
func TestStoreKeyDiscrimination(t *testing.T) {
	p := genProg(t, "gzipx", 100_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 20, J: 0, FunctionalWarm: true}
	key := checkpoint.KeyFor(p, cfg, params)

	// Same plan on a timing-only variant of the machine: same key.
	timingOnly := cfg
	timingOnly.Lat.Mem = 300
	timingOnly.FetchWidth = 4
	timingOnly.MispredictPenalty = 20
	if got := checkpoint.KeyFor(p, timingOnly, params); got.Hash() != key.Hash() {
		t.Fatal("timing-only config change must not invalidate checkpoints")
	}

	// Different hierarchy geometry: different key.
	if got := checkpoint.KeyFor(p, uarch.Config16Way(), params); got.Hash() == key.Hash() {
		t.Fatal("hierarchy geometry change must invalidate checkpoints")
	}

	// Plan variations: different keys.
	for _, vary := range []func(*checkpoint.Params){
		func(q *checkpoint.Params) { q.U = 500 },
		func(q *checkpoint.Params) { q.W = 2000 },
		func(q *checkpoint.Params) { q.K = 10 },
		func(q *checkpoint.Params) { q.J = 1 },
		func(q *checkpoint.Params) { q.Offsets = []uint64{0, 1} },
		func(q *checkpoint.Params) { q.FunctionalWarm = false },
		func(q *checkpoint.Params) { q.MaxUnits = 5 },
	} {
		q := params
		vary(&q)
		if checkpoint.KeyFor(p, cfg, q).Hash() == key.Hash() {
			t.Fatalf("plan variation %+v did not change the key", q)
		}
	}

	// Cold captures carry no warm signature: any two configs share.
	cold := params
	cold.FunctionalWarm = false
	a := checkpoint.KeyFor(p, uarch.Config8Way(), cold)
	b := checkpoint.KeyFor(p, uarch.Config16Way(), cold)
	if a.Hash() != b.Hash() {
		t.Fatal("cold captures must reuse across all machine configs")
	}

	// Different workload content: different key.
	p2 := genProg(t, "gzipx", 200_000)
	if checkpoint.KeyFor(p2, cfg, params).Hash() == key.Hash() {
		t.Fatal("program content change must invalidate checkpoints")
	}
}

// TestStoreVersionAndCorruption verifies unusable files degrade to
// misses, never errors.
func TestStoreVersionAndCorruption(t *testing.T) {
	p := genProg(t, "gzipx", 100_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, K: 20, J: 0}
	set := capture(t, p, cfg, params)

	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	if err := store.Save(key, set); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want 1 store file, got %v (%v)", entries, err)
	}

	// Truncate the file: load must report a miss.
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(key)
	if err != nil {
		t.Fatalf("corrupt entry must be a miss, got error %v", err)
	}
	if got != nil {
		t.Fatal("corrupt entry must be a miss, got a set")
	}

	// Bad magic: also a miss.
	bad := append([]byte("XXXXXXXX"), data[8:]...)
	if err := os.WriteFile(entries[0], bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Load(key); err != nil || got != nil {
		t.Fatalf("bad-magic entry must be a miss (got set=%v err=%v)", got != nil, err)
	}
}

// TestStoreCorruptDeltaChains sweeps truncation points and single-byte
// flips across a delta-encoded entry — including points inside delta
// records and the keyframe index. Truncations and splices must degrade
// to a store miss (no error, no panic, never a silently short set);
// byte flips must either miss or load into a set whose every unit
// still materializes without panicking (content flips are undetectable
// without checksums, but structural corruption must never escape the
// decoder).
func TestStoreCorruptDeltaChains(t *testing.T) {
	p := genProg(t, "gccx", 400_000)
	cfg := uarch.Config8Way()
	// Small keyframe interval so the file interleaves keyframes and
	// delta chains; K=8 gives ~50 units.
	params := checkpoint.Params{U: 1000, W: 1000, K: 8, FunctionalWarm: true, Keyframe: 4}
	set := capture(t, p, cfg, params)
	if len(set.Units) < 10 {
		t.Fatalf("want >= 10 units, got %d", len(set.Units))
	}

	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	if err := store.Save(key, set); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Hash()+".ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at 40 points through the file (mid-chain truncation
	// lands inside delta records for most of them).
	for i := 1; i < 40; i++ {
		cut := len(data) * i / 40
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := store.Load(key)
		if err != nil {
			t.Fatalf("truncation at %d bytes: got error %v, want miss", cut, err)
		}
		if got != nil {
			t.Fatalf("truncation at %d bytes: got a set, want miss", cut)
		}
	}

	// Deleting a span from the middle (splicing records) must miss too —
	// the unit count or keyframe index will disagree.
	spliced := append(append([]byte(nil), data[:len(data)/3]...), data[len(data)/3+1024:]...)
	if err := os.WriteFile(path, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Load(key); err != nil || got != nil {
		t.Fatalf("spliced entry: (set=%v err=%v), want miss", got != nil, err)
	}

	// Byte flips at 60 points through the file, including inside intact
	// delta records. A flip in structural fields (lengths, block
	// indices, RAS top) must be rejected at load; a flip in content
	// bytes (tags, counters, page data) is undetectable without
	// checksums and may load — but whatever Load returns, materializing
	// every unit must never panic or index out of range.
	for i := 0; i < 60; i++ {
		off := 12 + (len(data)-13)*i/60 // past magic+version: header flips are covered above
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5a
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := store.Load(key)
		if err != nil {
			t.Fatalf("flip at %d: got error %v, want miss or load", off, err)
		}
		if got == nil {
			continue
		}
		for u := range got.Units {
			if _, err := got.Materialize(u); err != nil {
				t.Fatalf("flip at %d: loaded set failed to materialize unit %d: %v", off, u, err)
			}
		}
	}

	// Restore the intact file: it must load again (the sweep above must
	// not have poisoned anything).
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(key)
	if err != nil || loaded == nil {
		t.Fatalf("intact entry failed to load after corruption sweep: %v", err)
	}
	for i := range set.Units {
		unitsEqual(t, "post-sweep", loaded.Units[i], set.Units[i])
	}
}

// TestStoreIndexAndEviction covers the store lifecycle satellite: the
// index enumerates committed entries with sizes and keys, Load hits
// refresh recency, and an LRU byte cap evicts the oldest entries on
// commit — never the entry just committed.
func TestStoreIndexAndEviction(t *testing.T) {
	cfg := uarch.Config8Way()
	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	progs := []*program.Program{
		genProg(t, "gzipx", 100_000),
		genProg(t, "mcfx", 100_000),
		genProg(t, "gccx", 100_000),
	}
	params := checkpoint.Params{U: 1000, K: 50, FunctionalWarm: true}
	keys := make([]checkpoint.Key, len(progs))
	var entrySize int64
	for i, p := range progs {
		set := capture(t, p, cfg, params)
		keys[i] = checkpoint.KeyFor(p, cfg, params)
		if err := store.Save(keys[i], set); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // order LastUsed stamps
	}
	idx, err := store.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 {
		t.Fatalf("index lists %d entries, want 3", len(idx))
	}
	for _, e := range idx {
		if e.Bytes <= 0 || e.Key == "" || e.Units == 0 {
			t.Fatalf("incomplete index entry: %+v", e)
		}
		entrySize = e.Bytes
	}

	// Touch the oldest entry so it becomes the most recently used.
	if set, err := store.Load(keys[0]); err != nil || set == nil {
		t.Fatalf("reload failed: %v", err)
	}
	time.Sleep(10 * time.Millisecond)

	// Cap the store at roughly two entries and commit a fourth: the two
	// least recently used (keys[1], keys[2]) must be evicted.
	store.MaxBytes = 2*entrySize + entrySize/2
	p4 := genProg(t, "ammpx", 100_000)
	set4 := capture(t, p4, cfg, params)
	key4 := checkpoint.KeyFor(p4, cfg, params)
	if err := store.Save(key4, set4); err != nil {
		t.Fatal(err)
	}

	idx, err = store.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("index lists %d entries after eviction, want 2", len(idx))
	}
	for _, want := range []struct {
		key checkpoint.Key
		hit bool
	}{
		{keys[0], true}, {keys[1], false}, {keys[2], false}, {key4, true},
	} {
		set, err := store.Load(want.key)
		if err != nil {
			t.Fatal(err)
		}
		if got := set != nil; got != want.hit {
			t.Fatalf("entry %s: hit=%v, want %v", want.key.Hash(), got, want.hit)
		}
	}

	// A rebuilt index (file deleted) still sees the surviving entries.
	if err := os.Remove(filepath.Join(dir, checkpoint.IndexName)); err != nil {
		t.Fatal(err)
	}
	idx, err = store.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("rebuilt index lists %d entries, want 2", len(idx))
	}
	for _, e := range idx {
		if e.Key == "" {
			t.Fatalf("rebuilt index entry lost its key: %+v", e)
		}
	}
}

// TestStoreStreamingWriter exercises the SetWriter path the pipelined
// engine uses: units are added one at a time during the sweep and the
// entry becomes visible only after Commit.
func TestStoreStreamingWriter(t *testing.T) {
	p := genProg(t, "mcfx", 200_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 25, J: 2, FunctionalWarm: true}
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)

	var w *checkpoint.SetWriter
	sum, err := checkpoint.CaptureStream(context.Background(), p, cfg, params, func(u *checkpoint.Unit) bool {
		if w == nil {
			var werr error
			w, werr = store.Writer(key, p.Length/params.U)
			if werr != nil {
				t.Fatal(werr)
			}
			// Entry must not be visible while staged.
			if got, _ := store.Load(key); got != nil {
				t.Fatal("staged entry visible before Commit")
			}
		}
		if err := w.Add(u); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Complete || w == nil {
		t.Fatalf("sweep incomplete (%+v)", sum)
	}
	if err := w.Commit(sum.SweepInsts, sum.SweepTime); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || len(loaded.Units) != sum.Captured {
		t.Fatalf("reload after streamed save failed (%v)", loaded)
	}

	// Aborted writers leave nothing behind.
	w2, err := store.Writer(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	leftovers, _ := filepath.Glob(filepath.Join(store.Dir(), "*.tmp-*"))
	if len(leftovers) != 0 {
		t.Fatalf("aborted writer left temp files: %v", leftovers)
	}
}
