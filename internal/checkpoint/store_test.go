package checkpoint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/uarch"
)

// TestStoreRoundTrip saves a captured set and reloads it, requiring the
// reloaded units to be indistinguishable from the originals (geometry,
// arch state, memory contents, warm state).
func TestStoreRoundTrip(t *testing.T) {
	p := genProg(t, "gccx", 300_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 2000, K: 40, J: 0, FunctionalWarm: true}
	set := capture(t, p, cfg, params)

	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	if err := store.Save(key, set); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("saved set not found")
	}
	if len(loaded.Units) != len(set.Units) {
		t.Fatalf("loaded %d units, saved %d", len(loaded.Units), len(set.Units))
	}
	if loaded.PopulationUnits != set.PopulationUnits || loaded.SweepInsts != set.SweepInsts {
		t.Fatalf("sweep accounting lost: %+v vs %+v", loaded.PopulationUnits, set.PopulationUnits)
	}
	for i := range set.Units {
		unitsEqual(t, "roundtrip", loaded.Units[i], set.Units[i])
	}
	if hits, misses := store.Stats(); hits != 1 || misses != 0 {
		t.Fatalf("stats: %d hits %d misses, want 1/0", hits, misses)
	}
}

// TestStoreKeyDiscrimination verifies that every key ingredient
// invalidates: a different plan geometry, warming mode, or hierarchy
// shape misses, while a machine config differing only in timing/width
// hits the same entry.
func TestStoreKeyDiscrimination(t *testing.T) {
	p := genProg(t, "gzipx", 100_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 20, J: 0, FunctionalWarm: true}
	key := checkpoint.KeyFor(p, cfg, params)

	// Same plan on a timing-only variant of the machine: same key.
	timingOnly := cfg
	timingOnly.Lat.Mem = 300
	timingOnly.FetchWidth = 4
	timingOnly.MispredictPenalty = 20
	if got := checkpoint.KeyFor(p, timingOnly, params); got.Hash() != key.Hash() {
		t.Fatal("timing-only config change must not invalidate checkpoints")
	}

	// Different hierarchy geometry: different key.
	if got := checkpoint.KeyFor(p, uarch.Config16Way(), params); got.Hash() == key.Hash() {
		t.Fatal("hierarchy geometry change must invalidate checkpoints")
	}

	// Plan variations: different keys.
	for _, vary := range []func(*checkpoint.Params){
		func(q *checkpoint.Params) { q.U = 500 },
		func(q *checkpoint.Params) { q.W = 2000 },
		func(q *checkpoint.Params) { q.K = 10 },
		func(q *checkpoint.Params) { q.J = 1 },
		func(q *checkpoint.Params) { q.Offsets = []uint64{0, 1} },
		func(q *checkpoint.Params) { q.FunctionalWarm = false },
		func(q *checkpoint.Params) { q.MaxUnits = 5 },
	} {
		q := params
		vary(&q)
		if checkpoint.KeyFor(p, cfg, q).Hash() == key.Hash() {
			t.Fatalf("plan variation %+v did not change the key", q)
		}
	}

	// Cold captures carry no warm signature: any two configs share.
	cold := params
	cold.FunctionalWarm = false
	a := checkpoint.KeyFor(p, uarch.Config8Way(), cold)
	b := checkpoint.KeyFor(p, uarch.Config16Way(), cold)
	if a.Hash() != b.Hash() {
		t.Fatal("cold captures must reuse across all machine configs")
	}

	// Different workload content: different key.
	p2 := genProg(t, "gzipx", 200_000)
	if checkpoint.KeyFor(p2, cfg, params).Hash() == key.Hash() {
		t.Fatal("program content change must invalidate checkpoints")
	}
}

// TestStoreVersionAndCorruption verifies unusable files degrade to
// misses, never errors.
func TestStoreVersionAndCorruption(t *testing.T) {
	p := genProg(t, "gzipx", 100_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, K: 20, J: 0}
	set := capture(t, p, cfg, params)

	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	if err := store.Save(key, set); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want 1 store file, got %v (%v)", entries, err)
	}

	// Truncate the file: load must report a miss.
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(key)
	if err != nil {
		t.Fatalf("corrupt entry must be a miss, got error %v", err)
	}
	if got != nil {
		t.Fatal("corrupt entry must be a miss, got a set")
	}

	// Bad magic: also a miss.
	bad := append([]byte("XXXXXXXX"), data[8:]...)
	if err := os.WriteFile(entries[0], bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Load(key); err != nil || got != nil {
		t.Fatalf("bad-magic entry must be a miss (got set=%v err=%v)", got != nil, err)
	}
}

// TestStoreStreamingWriter exercises the SetWriter path the pipelined
// engine uses: units are added one at a time during the sweep and the
// entry becomes visible only after Commit.
func TestStoreStreamingWriter(t *testing.T) {
	p := genProg(t, "mcfx", 200_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 25, J: 2, FunctionalWarm: true}
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)

	var w *checkpoint.SetWriter
	sum, err := checkpoint.CaptureStream(p, cfg, params, func(u *checkpoint.Unit) bool {
		if w == nil {
			var werr error
			w, werr = store.Writer(key, p.Length/params.U)
			if werr != nil {
				t.Fatal(werr)
			}
			// Entry must not be visible while staged.
			if got, _ := store.Load(key); got != nil {
				t.Fatal("staged entry visible before Commit")
			}
		}
		if err := w.Add(u); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Complete || w == nil {
		t.Fatalf("sweep incomplete (%+v)", sum)
	}
	if err := w.Commit(sum.SweepInsts, sum.SweepTime); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || len(loaded.Units) != sum.Captured {
		t.Fatalf("reload after streamed save failed (%v)", loaded)
	}

	// Aborted writers leave nothing behind.
	w2, err := store.Writer(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	leftovers, _ := filepath.Glob(filepath.Join(store.Dir(), "*.tmp-*"))
	if len(leftovers) != 0 {
		t.Fatalf("aborted writer left temp files: %v", leftovers)
	}
}
