package checkpoint_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/uarch"
)

// TestParallelCaptureMatchesSerial verifies the speculative sweep's
// exactness claim: at any parallelism, every captured unit's identity
// (index, start, launch point), architectural state, and materialized
// memory image are bit-identical to the serial sweep's. Only warm
// state may differ (segments start cold); unwarmed captures have none,
// so they must match completely.
func TestParallelCaptureMatchesSerial(t *testing.T) {
	p := genProg(t, "gccx", 300_000)
	cfg := uarch.Config8Way()
	cases := []struct {
		name   string
		params checkpoint.Params
	}{
		{"warm", checkpoint.Params{U: 1000, W: 2000, K: 20, FunctionalWarm: true}},
		{"cold", checkpoint.Params{U: 1000, W: 2000, K: 20}},
		{"offsets-maxunits", checkpoint.Params{
			U: 1000, W: 500, K: 20, Offsets: []uint64{0, 7}, MaxUnits: 5, FunctionalWarm: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := capture(t, p, cfg, tc.params)
			par := tc.params
			par.SweepParallelism = 4
			par.SweepOverlap = 10_000
			parallel := capture(t, p, cfg, par)

			if len(parallel.Units) != len(serial.Units) {
				t.Fatalf("parallel captured %d units, serial %d", len(parallel.Units), len(serial.Units))
			}
			for i, su := range serial.Units {
				pu := parallel.Units[i]
				if pu.Index != su.Index || pu.Start != su.Start || pu.LaunchAt != su.LaunchAt {
					t.Fatalf("unit %d: parallel (idx=%d start=%d launch=%d) vs serial (idx=%d start=%d launch=%d)",
						i, pu.Index, pu.Start, pu.LaunchAt, su.Index, su.Start, su.LaunchAt)
				}
				if pu.Arch != su.Arch {
					t.Fatalf("unit %d (index %d): architectural state differs from serial sweep", i, su.Index)
				}
			}
			// Materialized memory must match bit for bit, through whatever
			// keyframe/delta encoding each sweep chose (cadence restarts per
			// segment, so the encodings legitimately differ).
			for _, i := range []int{0, 1, len(serial.Units) / 2, len(serial.Units) - 1} {
				sl, err := serial.Materialize(i)
				if err != nil {
					t.Fatal(err)
				}
				pl, err := parallel.Materialize(i)
				if err != nil {
					t.Fatal(err)
				}
				memEqual(t, pl.Mem.NewMemory(), sl.Mem.NewMemory())
				if tc.params.FunctionalWarm {
					if pl.Warm == nil {
						t.Fatalf("unit %d: parallel warmed capture missing warm state", i)
					}
				} else if pl.Warm != nil {
					t.Fatalf("unit %d: cold capture carries warm state", i)
				}
			}
		})
	}
}

// TestParallelCaptureStreamStop verifies a consumer stop mid-stream:
// the sweep cancels its segments, drains cleanly, and reports an
// incomplete summary — no goroutine leaks, no deadlock.
func TestParallelCaptureStreamStop(t *testing.T) {
	p := genProg(t, "gccx", 300_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{
		U: 1000, W: 1000, K: 10, FunctionalWarm: true,
		SweepParallelism: 4, SweepOverlap: -1,
	}
	emitted := 0
	sum, err := checkpoint.CaptureStream(context.Background(), p, cfg, params, func(u *checkpoint.Unit) bool {
		emitted++
		return emitted < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Complete {
		t.Fatal("summary claims completion after consumer stop")
	}
	if emitted != 3 {
		t.Fatalf("emit called %d times, want 3", emitted)
	}
}

// TestParallelCaptureCancel verifies context cancellation surfaces and
// leaves the sweep incomplete.
func TestParallelCaptureCancel(t *testing.T) {
	p := genProg(t, "gccx", 300_000)
	cfg := uarch.Config8Way()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	params := checkpoint.Params{
		U: 1000, K: 10, FunctionalWarm: true, SweepParallelism: 4,
	}
	sum, err := checkpoint.CaptureStream(ctx, p, cfg, params, func(u *checkpoint.Unit) bool { return true })
	if err == nil {
		t.Fatal("cancelled parallel sweep returned nil error")
	}
	if sum == nil || sum.Complete {
		t.Fatal("cancelled parallel sweep claims completion")
	}
}

// TestParallelKeySeparation pins the store-key discipline: warmed
// parallel sweeps key separately from serial (cold segment starts
// change the captured warm state), unwarmed ones share the serial
// entry (they are bit-identical), and the serial key text itself is
// unchanged by the new fields (existing stores stay valid).
func TestParallelKeySeparation(t *testing.T) {
	p := genProg(t, "gccx", 100_000)
	cfg := uarch.Config8Way()
	warm := checkpoint.Params{U: 1000, W: 1000, K: 10, FunctionalWarm: true}
	warmPar := warm
	warmPar.SweepParallelism = 4

	serialKey := checkpoint.KeyFor(p, cfg, warm)
	parKey := checkpoint.KeyFor(p, cfg, warmPar)
	if serialKey.String() == parKey.String() {
		t.Fatal("warmed parallel sweep shares the serial store key")
	}
	otherOverlap := warmPar
	otherOverlap.SweepOverlap = 12_345
	if parKey.String() == checkpoint.KeyFor(p, cfg, otherOverlap).String() {
		t.Fatal("different overlaps share a store key")
	}

	cold := checkpoint.Params{U: 1000, K: 10}
	coldPar := cold
	coldPar.SweepParallelism = 4
	if checkpoint.KeyFor(p, cfg, cold).String() != checkpoint.KeyFor(p, cfg, coldPar).String() {
		t.Fatal("unwarmed parallel sweep (bit-identical to serial) does not share the serial store key")
	}
}

// TestParallelValidate pins the parameter errors.
func TestParallelValidate(t *testing.T) {
	bad := checkpoint.Params{U: 1000, K: 10, SweepParallelism: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative SweepParallelism accepted")
	}
	resume := checkpoint.Params{
		U: 1000, K: 10, SweepParallelism: 2,
		Resume: &checkpoint.ResumeState{},
	}
	if err := resume.Validate(); err == nil {
		t.Fatal("parallel sweep with Resume accepted")
	}
}

// TestParallelCaptureStoreRoundTrip verifies a parallel capture's unit
// stream survives the store: the per-segment keyframe cadence produces
// chains the streaming writer can encode, and the loaded set
// materializes bit-identically.
func TestParallelCaptureStoreRoundTrip(t *testing.T) {
	p := genProg(t, "gccx", 200_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{
		U: 1000, W: 1000, K: 10, FunctionalWarm: true,
		SweepParallelism: 3, SweepOverlap: 5_000, Keyframe: 4,
	}
	set := capture(t, p, cfg, params)
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	if err := store.Save(key, set); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("store miss for just-saved parallel capture")
	}
	if len(loaded.Units) != len(set.Units) {
		t.Fatalf("loaded %d units, saved %d", len(loaded.Units), len(set.Units))
	}
	for _, i := range []int{0, len(set.Units) / 2, len(set.Units) - 1} {
		want, err := set.Materialize(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Materialize(i)
		if err != nil {
			t.Fatal(err)
		}
		memEqual(t, got.Mem.NewMemory(), want.Mem.NewMemory())
	}
}

// TestParallelMoreSegmentsThanUnits clamps gracefully: parallelism far
// above the unit count still captures every unit exactly once.
func TestParallelMoreSegmentsThanUnits(t *testing.T) {
	p := genProg(t, "gccx", 100_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, K: 30, FunctionalWarm: true, SweepParallelism: 64}
	set := capture(t, p, cfg, params)
	serial := params
	serial.SweepParallelism = 0
	want := capture(t, p, cfg, serial)
	if len(set.Units) != len(want.Units) {
		t.Fatalf("got %d units, want %d", len(set.Units), len(want.Units))
	}
	for i := range want.Units {
		if set.Units[i].Index != want.Units[i].Index || set.Units[i].Arch != want.Units[i].Arch {
			t.Fatalf("unit %d differs from serial", i)
		}
	}
}

// captureMallocs runs one capture and returns the total heap
// allocations it performed.
func captureMallocs(t *testing.T, params checkpoint.Params) uint64 {
	t.Helper()
	p := genProg(t, "gccx", 300_000)
	cfg := uarch.Config8Way()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	set := capture(t, p, cfg, params)
	runtime.ReadMemStats(&after)
	if len(set.Units) == 0 {
		t.Fatal("no units captured")
	}
	return after.Mallocs - before.Mallocs
}

// TestParallelCaptureAllocDiscipline guards the segment-stitch path's
// allocation behavior: a parallel capture may allocate a bounded
// multiple of the serial capture (per-segment machines, warmers,
// channels, and goroutines are legitimate fixed costs), but nothing
// per instruction — the pioneer's fast-forward and each segment's
// sweep run the same zero-alloc hot loops as the serial sweep. An
// accidental per-instruction allocation would add at least one malloc
// per pioneer instruction (~300k here), far beyond the bound.
func TestParallelCaptureAllocDiscipline(t *testing.T) {
	serialParams := checkpoint.Params{U: 1000, W: 2000, K: 10, FunctionalWarm: true}
	parParams := serialParams
	parParams.SweepParallelism = 4
	parParams.SweepOverlap = -1

	serial := captureMallocs(t, serialParams)
	parallel := captureMallocs(t, parParams)
	if bound := 2*serial + 20_000; parallel > bound {
		t.Fatalf("parallel capture made %d allocations, serial %d; bound %d — per-instruction allocation crept into the speculative sweep",
			parallel, serial, bound)
	}
}
