package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/uarch"
)

// Store file format: an 8-byte magic, a little-endian uint32 format
// version, a length-prefixed gob-encoded storeManifest, then a sequence
// of raw little-endian records (see codec.go) terminated by an End
// record carrying the sweep totals. Files whose magic, version, or
// manifest key do not match the request are treated as misses (never as
// errors), so bumping storeVersion — or any change to the key
// derivation — safely invalidates every existing checkpoint file.
// Entries are uncompressed by design: loading must beat re-sweeping,
// and the dominant payloads (tag arrays, LRU stamps, memory pages) are
// cheap to rewrite but expensive to push through a codec.
//
// Version 2 added delta-encoded warm snapshots: unit records carry a
// warm-encoding kind (none/full/delta), delta units hold dirty-block
// deltas chained off the preceding full "keyframe" unit, and a keyframe
// index record before the End record enumerates the keyframe ordinals
// so truncated or spliced chains are detected at load.
//
// Version 3 extends the same delta discipline to memory, collapsing the
// codec's ad-hoc per-unit page table into the shared chain code path:
// unit records carry a memory-encoding kind (full/delta), delta units
// list only the pages dirtied since the preceding unit (mem.Delta from
// the dirty-page journal), keyframes carry the full page table, and
// memory and warm state keyframe together — the keyframe index now
// guards both chains. Delta records also serialize their dirty-block
// grain, so retuning the granularity never invalidates stored chains.
// Version 4 seals every entry with a CRC-32C: the codec primitives
// fold each record byte into a running checksum (codec.go) and the end
// record is followed by the writer's final sum as a trailing uint64.
// Resume frames in partial journals seal their cumulative prefix the
// same way (resume.go). The magic and version themselves stay outside
// the sum — they are validated byte-for-byte instead. Structural
// validation catches truncation and splicing; the checksum closes the
// remaining gap — single-bit rot inside an opaque payload (a 4KiB
// page, a predictor table) that still parses. Pre-v4 files (v1: every
// unit a full snapshot; v2: full page tables, warm deltas; v3: delta
// memory) still load, without checksum protection; writers always emit
// v4. Corruption anywhere — including mid-chain — degrades to a miss.
const (
	storeVersion   = 4
	storeVersionV3 = 3
	storeVersionV2 = 2
	storeVersionV1 = 1
	storeExt       = ".ckpt"
)

// knownVersion reports whether a file format version can be decoded:
// every version from the first release through the current writer.
func knownVersion(v uint32) bool {
	return v >= storeVersionV1 && v <= storeVersion
}

var storeMagic = [8]byte{'S', 'M', 'R', 'T', 'C', 'K', 'P', 'T'}

// Key identifies one captured Set on disk. Two runs share a key — and
// therefore a functional sweep — exactly when they execute the same
// workload under the same sampling geometry and the same warm-relevant
// machine shape. Timing, pipeline-width, and energy parameters are
// deliberately excluded: they change what the detailed replay measures,
// not what the sweep captures, so machine configs differing only in
// those reuse one sweep.
//
//simlint:keystruct String
type Key struct {
	// Workload is the program name; ProgramHash fingerprints its exact
	// code, initial image, entry, and length, so regenerating a workload
	// differently invalidates its checkpoints.
	Workload    string
	ProgramHash string
	// U, W, K, Offsets, and MaxUnits fix the launch boundaries.
	U, W, K  uint64
	Offsets  []uint64
	MaxUnits int
	// FunctionalWarm, Components, and WarmSig fix what the sweep warms
	// and the geometry of the warmed structures. WarmSig is empty for
	// cold captures, which therefore reuse across every machine config.
	FunctionalWarm bool
	Components     uarch.WarmComponents
	WarmSig        string
	// SweepSegments and SweepOverlap identify a speculative parallel
	// sweep's cold-start geometry: segments after the first carry warm
	// state accumulated only over their own span plus the overlap, so
	// warmed parallel captures are not interchangeable with serial ones
	// (or with different segmentations) and key separately. Both are
	// zero for serial or unwarmed captures — unwarmed parallel sweeps
	// are bit-identical to serial, so they share the serial entry.
	SweepSegments int
	SweepOverlap  int64
}

// KeyFor derives the store key for capturing prog with p on cfg.
func KeyFor(prog *program.Program, cfg uarch.Config, p Params) Key {
	k := Key{
		Workload:       prog.Name,
		ProgramHash:    programHash(prog),
		U:              p.U,
		W:              p.W,
		K:              p.K,
		Offsets:        p.offsets(),
		MaxUnits:       p.MaxUnits,
		FunctionalWarm: p.FunctionalWarm,
	}
	if p.FunctionalWarm {
		k.Components = uarch.AllComponents
		if p.Components != nil {
			k.Components = *p.Components
		}
		k.WarmSig = WarmSignature(cfg)
		if p.sweepSegments() > 1 {
			k.SweepSegments = p.sweepSegments()
			k.SweepOverlap = p.sweepOverlap()
		}
	}
	return k
}

// WarmSignature summarizes the machine-config fields a functional sweep
// depends on: cache, TLB, and predictor geometry. Configs with equal
// signatures observe identical warm state from one stream, so their
// checkpoints are interchangeable.
func WarmSignature(cfg uarch.Config) string {
	return fmt.Sprintf("il1=%dx%db%d dl1=%dx%db%d l2=%dx%db%d itlb=%d dtlb=%d tlbw=%d bp=%d/%d/%dx%d/%d",
		cfg.IL1.Sets, cfg.IL1.Ways, cfg.IL1.BlockBits,
		cfg.DL1.Sets, cfg.DL1.Ways, cfg.DL1.BlockBits,
		cfg.L2.Sets, cfg.L2.Ways, cfg.L2.BlockBits,
		cfg.ITLBEntries, cfg.DTLBEntries, cfg.TLBWays,
		cfg.BPred.TableEntries, cfg.BPred.HistoryBits,
		cfg.BPred.BTBSets, cfg.BPred.BTBWays, cfg.BPred.RASEntries)
}

// programHash fingerprints the program via its canonical serialization.
func programHash(prog *program.Program) string {
	h := sha256.New()
	if err := prog.Save(h); err != nil {
		// Save into a hash cannot fail for a valid program; fall back to
		// a name-only fingerprint that still keys distinct workloads.
		return "unsaved:" + prog.Name
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// String renders the canonical key text the content address is derived
// from.
func (k Key) String() string {
	s := fmt.Sprintf("%s@%s u=%d w=%d k=%d j=%v max=%d warm=%v comp=%+v sig=%q",
		k.Workload, k.ProgramHash, k.U, k.W, k.K, k.Offsets, k.MaxUnits,
		k.FunctionalWarm, k.Components, k.WarmSig)
	// Appended only for warmed parallel sweeps, so every pre-existing
	// serial key text — and therefore every stored entry's content
	// address — is unchanged.
	if k.SweepSegments > 1 {
		s += fmt.Sprintf(" pseg=%d pov=%d", k.SweepSegments, k.SweepOverlap)
	}
	return s
}

// Hash returns the content address: the hex SHA-256 of the canonical
// key text, truncated to 32 characters for filename friendliness.
func (k Key) Hash() string {
	sum := sha256.Sum256([]byte(k.String()))
	return hex.EncodeToString(sum[:])[:32]
}

// Store is an on-disk checkpoint cache: captured Sets keyed by Key,
// one file per key under dir. All methods are safe for concurrent use;
// writers stage into a temp file and commit with an atomic rename.
type Store struct {
	dir string

	// Logf, when set, receives one line per store event (hit, miss,
	// save, discard) so sweep reuse is observable from the CLIs.
	Logf func(format string, args ...any)

	// MaxBytes, when positive, caps the total size of committed entries:
	// each commit evicts least-recently-used entries (per the index's
	// LastUsed, refreshed on hits) until the store fits. Set it before
	// sharing the store across goroutines. See index.go.
	MaxBytes int64

	mu           sync.Mutex
	hits, misses uint64
}

// OpenStore opens (creating if needed) a checkpoint store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the lifetime hit/miss counts.
func (s *Store) Stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Log emits one line through Logf when set, so logging stays optional.
func (s *Store) Log(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.Hash()+storeExt)
}

// Contains reports whether a committed entry file exists for k. It does
// not validate the entry (Load still treats corruption as a miss); the
// sim session's sweep deduplication uses it to decide whether a just-
// finished concurrent sweep left a reusable entry behind.
func (s *Store) Contains(k Key) bool {
	_, err := os.Stat(s.path(k))
	return err == nil
}

func (s *Store) countHit(hit bool) {
	s.mu.Lock()
	if hit {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
}

// storeManifest opens a checkpoint file; the embedded key guards
// against hash collisions and stale derivations.
type storeManifest struct {
	Key             Key
	PopulationUnits uint64
}

// readManifest decodes the length-prefixed gob manifest that follows
// the file header.
func readManifest(cr *codecReader) (*storeManifest, error) {
	blob, err := cr.bytes()
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var man storeManifest
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&man); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	return &man, nil
}

// Load returns the Set stored under k, or nil when the store has no
// usable entry (absent, format-version mismatch, key mismatch, or
// corruption — all count as misses; corruption is logged). The returned
// Set's SweepInsts/SweepTime echo the original sweep's cost; the caller
// decides how to account for having skipped it.
//
//simlint:noctx bounded single-file read; a hit is far cheaper than the sweep it replaces
func (s *Store) Load(k Key) (*Set, error) {
	path := s.path(k)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.countHit(false)
			s.Log("checkpoint store: miss %s (%s)", k.Hash(), k.Workload)
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: store load: %w", err)
	}
	defer f.Close()

	set, err := readSet(f, k)
	if err != nil {
		s.countHit(false)
		s.Log("checkpoint store: discarding unusable entry %s: %v", filepath.Base(path), err)
		return nil, nil
	}
	s.countHit(true)
	s.noteUse(k.Hash())
	s.Log("checkpoint store: hit %s (%s: %d units, %d sweep insts reused)",
		k.Hash(), k.Workload, len(set.Units), set.SweepInsts)
	return set, nil
}

// readHeader consumes an entry's magic, version, and manifest,
// returning the codec reader positioned at the first record. The magic
// and version are read directly (outside the CRC), so a v4 checksum
// covers exactly the bytes the codec primitives produced.
func readHeader(r io.Reader) (*codecReader, *storeManifest, uint32, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, nil, 0, fmt.Errorf("short header: %w", err)
	}
	if magic != storeMagic {
		return nil, nil, 0, fmt.Errorf("bad magic %q", magic[:])
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, nil, 0, err
	}
	if !knownVersion(version) {
		return nil, nil, 0, fmt.Errorf("format version %d, want %d..%d", version, storeVersionV1, storeVersion)
	}
	cr := newCodecReader(r)
	man, err := readManifest(cr)
	if err != nil {
		return nil, nil, 0, err
	}
	return cr, man, version, nil
}

func readSet(r io.Reader, k Key) (*Set, error) {
	cr, man, version, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if man.Key.String() != k.String() {
		return nil, fmt.Errorf("key mismatch: stored %s", man.Key)
	}
	return readRecords(cr, version, man)
}

// readRecords decodes the record stream of a committed entry whose
// header was already consumed by readHeader.
func readRecords(cr *codecReader, version uint32, man *storeManifest) (*Set, error) {
	set := &Set{K: man.Key.K, PopulationUnits: man.PopulationUnits}
	var pages []*[mem.PageSize]byte
	var prev *Unit        // previously decoded unit (v3 chain predecessor)
	var prevWarm *Unit    // warm chain predecessor (pre-v3 files)
	var geom warmGeom     // geometry established by the last keyframe
	var keyframes []int64 // ordinals of keyframe units, for index validation
	var keyIdx []uint64   // the file's keyframe index record, when present
	sawKeyIdx := false
	for {
		tag, err := cr.u64()
		if err != nil {
			return nil, fmt.Errorf("record: %w", err)
		}
		switch tag {
		case recPage:
			page, err := cr.bytes()
			if err != nil {
				return nil, err
			}
			if len(page) != mem.PageSize {
				return nil, fmt.Errorf("page record of %d bytes", len(page))
			}
			pages = append(pages, (*[mem.PageSize]byte)(page))
		case recUnit:
			u, err := cr.unit(version, pages, prev, prevWarm, &geom)
			if err != nil {
				return nil, err
			}
			// The keyframe index lists full-snapshot units: memory
			// keyframes in v3 (warm state keyframes with them), warm
			// keyframes in v2.
			if version >= 3 {
				if u.Mem != nil {
					keyframes = append(keyframes, int64(len(set.Units)))
				}
			} else if u.Warm != nil {
				keyframes = append(keyframes, int64(len(set.Units)))
			}
			if u.Warm != nil || u.Delta != nil {
				prevWarm = u
			}
			prev = u
			set.Units = append(set.Units, u)
		case recKeyIdx:
			if version < 2 || sawKeyIdx {
				return nil, fmt.Errorf("unexpected keyframe index record")
			}
			if keyIdx, err = cr.u64s(); err != nil {
				return nil, err
			}
			sawKeyIdx = true
		case recEnd:
			units, err := cr.u64()
			if err != nil {
				return nil, err
			}
			if units != uint64(len(set.Units)) {
				return nil, fmt.Errorf("truncated: %d of %d units", len(set.Units), units)
			}
			if version >= 2 {
				// The keyframe index must agree with the units actually
				// decoded; a mismatch means records were lost or spliced.
				if !sawKeyIdx {
					return nil, fmt.Errorf("missing keyframe index")
				}
				if len(keyIdx) != len(keyframes) {
					return nil, fmt.Errorf("keyframe index lists %d keyframes, decoded %d", len(keyIdx), len(keyframes))
				}
				for i, ord := range keyIdx {
					if ord != uint64(keyframes[i]) {
						return nil, fmt.Errorf("keyframe index mismatch at %d: %d vs %d", i, ord, keyframes[i])
					}
				}
			}
			if set.SweepInsts, err = cr.u64(); err != nil {
				return nil, err
			}
			nanos, err := cr.u64()
			if err != nil {
				return nil, err
			}
			set.SweepTime = time.Duration(int64(nanos))
			if version >= 4 {
				// The trailing checksum seals every byte the codec read;
				// snapshot the running sum before consuming the field itself.
				expect := cr.sum()
				stored, err := cr.u64()
				if err != nil {
					return nil, fmt.Errorf("checksum: %w", err)
				}
				if uint32(stored) != expect {
					return nil, fmt.Errorf("checksum mismatch: stored %08x, computed %08x", uint32(stored), expect)
				}
			}
			return set, nil
		default:
			return nil, fmt.Errorf("unknown record tag %d", tag)
		}
	}
}

// setEncoder writes one entry's byte stream (header, manifest, page and
// unit records, keyframe index, end record) to any io.Writer. It is the
// shared encoding core of the store's SetWriter and of EncodeSet, the
// wire form the distributed service ships sweeps with — both produce
// the identical format-v3 byte stream.
type setEncoder struct {
	cw *codecWriter
	// table is the running reconstruction of the stream's current page
	// table (page number → array) and ids maps its arrays to their page-
	// record ids. Keyframes replace the table; deltas overlay it. Pages
	// the stream has replaced drop out, so the encoder's footprint stays
	// bounded by the live footprint — it must not pin the whole stream
	// in the pipelined engine — while pages shared copy-on-write across
	// any span of units are written exactly once (sharing is contiguous
	// in stream time).
	table    map[uint64]*[mem.PageSize]byte
	ids      map[*[mem.PageSize]byte]uint64
	nextPage uint64
	units    int
	// prevUnit is the last unit written: a delta unit is only encodable
	// as a delta when its chain predecessor is exactly this unit (the
	// reader rebuilds chains from record order). Units arriving out of
	// chain order — e.g. an offset sub-set whose deltas point at units
	// of other offsets — are materialized and written as full keyframes
	// instead.
	prevUnit *Unit
	// keyframes holds the ordinals of full-snapshot units for the
	// keyframe index record finish emits.
	keyframes []uint64
}

// newSetEncoder writes the header and manifest for an entry keyed by k
// and returns the encoder for its records.
func newSetEncoder(w io.Writer, k Key, pop uint64) (*setEncoder, error) {
	if _, err := w.Write(storeMagic[:]); err != nil {
		return nil, err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(storeVersion)); err != nil {
		return nil, err
	}
	e := &setEncoder{
		cw:    newCodecWriter(w),
		table: make(map[uint64]*[mem.PageSize]byte),
		ids:   make(map[*[mem.PageSize]byte]uint64),
	}
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(storeManifest{Key: k, PopulationUnits: pop}); err != nil {
		return nil, err
	}
	if err := e.cw.bytes(blob.Bytes()); err != nil {
		return nil, err
	}
	return e, nil
}

// SetWriter streams a capture into the store as units are emitted, so
// saving adds no memory footprint to the pipelined engine. Commit
// finalizes the entry atomically; Abort discards it. Exactly one of the
// two must be called.
type SetWriter struct {
	store *Store
	key   Key
	tmp   *os.File
	enc   *setEncoder
	err   error
}

// Writer stages a new store entry for k. pop is the workload's
// population size in units (Summary.PopulationUnits).
//
//simlint:noctx opens a staging temp file; writes stream under the caller's ctx
func (s *Store) Writer(k Key, pop uint64) (*SetWriter, error) {
	tmp, err := os.CreateTemp(s.dir, k.Hash()+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: store writer: %w", err)
	}
	w := &SetWriter{store: s, key: k, tmp: tmp}
	enc, err := newSetEncoder(tmp, k, pop)
	if err != nil {
		w.fail(err)
		return nil, w.err
	}
	w.enc = enc
	return w, nil
}

func (w *SetWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.cleanup()
}

func (w *SetWriter) cleanup() {
	if w.tmp != nil {
		name := w.tmp.Name()
		w.tmp.Close()
		os.Remove(name)
		w.tmp = nil
	}
}

// page ensures data has a page record, writing one on first sight, and
// returns its id.
func (e *setEncoder) page(data *[mem.PageSize]byte) (uint64, error) {
	if id, ok := e.ids[data]; ok {
		return id, nil
	}
	id := e.nextPage
	e.nextPage++
	if err := e.cw.u64(recPage); err != nil {
		return 0, err
	}
	if err := e.cw.bytes(data[:]); err != nil {
		return 0, err
	}
	e.ids[data] = id
	return id, nil
}

// add appends one unit's records.
//
// A unit is written as a delta exactly when it carries a memory delta
// extending the previously written unit — the only chain shape the
// reader can rebuild from record order. Anything else (keyframes,
// out-of-order units from an offset sub-set, units loaded from pre-v3
// entries whose memory is full but warm state delta-encoded) is
// materialized and written as a full keyframe.
func (e *setEncoder) add(u *Unit) error {
	if u.MemDelta != nil && u.Warm == nil && u.Prev == e.prevUnit && e.prevUnit != nil {
		// Chain-aligned delta unit: write only the dirty pages.
		nums := u.MemDelta.Nums
		refs := make([]uint64, len(nums))
		for i, data := range u.MemDelta.Pages {
			id, err := e.page(data)
			if err != nil {
				return err
			}
			refs[i] = id
			if old, ok := e.table[nums[i]]; ok && old != data {
				delete(e.ids, old)
			}
			e.table[nums[i]] = data
		}
		if err := e.cw.u64(recUnit); err != nil {
			return err
		}
		if err := e.cw.unit(u, memDelta, nums, refs, nil, u.Delta); err != nil {
			return err
		}
		e.prevUnit = u
		e.units++
		return nil
	}

	// Full keyframe: the unit's own snapshots, or — for delta units that
	// cannot extend the written chain — their materialization.
	img, warm := u.Mem, u.Warm
	if img == nil || (u.Warm == nil && u.Delta != nil) {
		launch, err := u.Materialize()
		if err != nil {
			return err
		}
		img, warm = launch.Mem, launch.Warm
	}
	var nums, refs []uint64
	var encErr error
	table := make(map[uint64]*[mem.PageSize]byte, img.PageCount())
	ids := make(map[*[mem.PageSize]byte]uint64, img.PageCount())
	img.VisitPages(func(num uint64, data *[mem.PageSize]byte) {
		if encErr != nil {
			return
		}
		id, err := e.page(data)
		if err != nil {
			encErr = err
			return
		}
		table[num] = data
		ids[data] = id
		nums = append(nums, num)
		refs = append(refs, id)
	})
	if encErr != nil {
		return encErr
	}
	// Replace the running table: pages the stream no longer maps drop
	// their ids, keeping the dedup window at the live footprint.
	e.table, e.ids = table, ids
	if err := e.cw.u64(recUnit); err != nil {
		return err
	}
	if err := e.cw.unit(u, memFull, nums, refs, warm, nil); err != nil {
		return err
	}
	e.keyframes = append(e.keyframes, uint64(e.units))
	e.prevUnit = u
	e.units++
	return nil
}

// finish seals the record stream with the keyframe index, the end
// record carrying the sweep totals, and a flush of the encoder's
// buffer.
func (e *setEncoder) finish(sweepInsts uint64, sweepTime time.Duration) error {
	if err := e.cw.u64(recKeyIdx); err != nil {
		return err
	}
	if err := e.cw.u64s(e.keyframes); err != nil {
		return err
	}
	for _, v := range []uint64{recEnd, uint64(e.units), sweepInsts, uint64(int64(sweepTime))} {
		if err := e.cw.u64(v); err != nil {
			return err
		}
	}
	// Seal the entry: snapshot the running CRC before writing the field,
	// so the reader's pre-field snapshot computes the same sum.
	if err := e.cw.u64(uint64(e.cw.sum())); err != nil {
		return err
	}
	return e.cw.w.Flush()
}

// Add appends one unit. Errors are sticky; after the first, Add becomes
// a no-op returning the same error, and Commit will refuse. See
// setEncoder.add for the delta-versus-keyframe discipline.
func (w *SetWriter) Add(u *Unit) error {
	if w.err != nil {
		return w.err
	}
	if err := w.enc.add(u); err != nil {
		w.fail(err)
	}
	return w.err
}

// Commit seals the entry with the sweep totals and atomically installs
// it under the key's content address.
func (w *SetWriter) Commit(sweepInsts uint64, sweepTime time.Duration) error {
	if w.err != nil {
		return w.err
	}
	if err := w.enc.finish(sweepInsts, sweepTime); err != nil {
		w.fail(err)
		return w.err
	}
	name := w.tmp.Name()
	if err := w.tmp.Close(); err != nil {
		w.tmp = nil
		os.Remove(name)
		w.err = err
		return err
	}
	w.tmp = nil
	final := w.store.path(w.key)
	if err := os.Rename(name, final); err != nil {
		os.Remove(name)
		w.err = err
		return err
	}
	w.store.Log("checkpoint store: saved %s (%s: %d units)", w.key.Hash(), w.key.Workload, w.enc.units)
	w.store.noteCommit(w.key.Hash(), w.key.String(), w.enc.units)
	return nil
}

// Abort discards the staged entry.
func (w *SetWriter) Abort() {
	w.cleanup()
	if w.err == nil {
		w.err = fmt.Errorf("checkpoint: store write aborted")
	}
}

// Save writes an already-collected Set under k (the streaming path uses
// Writer directly).
func (s *Store) Save(k Key, set *Set) error {
	w, err := s.Writer(k, set.PopulationUnits)
	if err != nil {
		return err
	}
	for _, u := range set.Units {
		if err := w.Add(u); err != nil {
			return err
		}
	}
	return w.Commit(set.SweepInsts, set.SweepTime)
}
