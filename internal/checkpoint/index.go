package checkpoint

// Store lifecycle: an on-disk index of entries plus an LRU size cap.
//
// index.json in the store directory enumerates every committed entry
// with its key text, size, unit count, and timestamps, so operators
// (and the eviction policy) can see what a checkpoint directory holds
// without parsing entry files. The index is advisory: it is rebuilt
// from a directory scan whenever it is missing, unreadable, or
// disagrees with the files actually present, so external deletions or
// concurrent writers degrade it gracefully rather than corrupting the
// store. Entries whose manifests cannot be read (foreign or stale
// files) are listed with an empty key and zero units.
//
// When Store.MaxBytes is positive, each commit evicts
// least-recently-used entries (by the index's LastUsed, refreshed on
// every Load hit) until the total entry size fits the cap; the entry
// just committed is never evicted, so a single oversized sweep still
// lands and is usable by the run that paid for it.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// IndexName is the store index's file name inside the store directory.
const IndexName = "index.json"

// IndexEntry describes one committed store entry.
type IndexEntry struct {
	// Hash is the entry's content address (the file is Hash + ".ckpt").
	Hash string `json:"hash"`
	// Key is the canonical key text (Key.String()); empty when the
	// entry was indexed by a directory rescan that could not read its
	// manifest.
	Key string `json:"key,omitempty"`
	// Bytes is the entry file's size.
	Bytes int64 `json:"bytes"`
	// Units is the number of captured units the entry holds (0 when
	// unknown).
	Units int `json:"units,omitempty"`
	// Created is when the entry was committed, LastUsed when it last
	// served a hit (commit time initially).
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
}

// storeIndex is the serialized form of index.json.
type storeIndex struct {
	Entries []IndexEntry `json:"entries"`
}

func (ix *storeIndex) find(hash string) *IndexEntry {
	for i := range ix.Entries {
		if ix.Entries[i].Hash == hash {
			return &ix.Entries[i]
		}
	}
	return nil
}

func (ix *storeIndex) totalBytes() int64 {
	var n int64
	for i := range ix.Entries {
		n += ix.Entries[i].Bytes
	}
	return n
}

// Index returns the store's entries, least-recently-used first,
// reconciled against the files actually on disk.
func (s *Store) Index() ([]IndexEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, err := s.loadIndexLocked()
	if err != nil {
		return nil, err
	}
	sort.Slice(ix.Entries, func(i, j int) bool {
		return ix.Entries[i].LastUsed.Before(ix.Entries[j].LastUsed)
	})
	return ix.Entries, nil
}

// loadIndexLocked reads index.json and reconciles it with the *.ckpt
// files present: stale index rows are dropped, unindexed files are
// added (reading their manifests when possible). Callers hold s.mu.
func (s *Store) loadIndexLocked() (*storeIndex, error) {
	ix := &storeIndex{}
	if data, err := os.ReadFile(filepath.Join(s.dir, IndexName)); err == nil {
		if jerr := json.Unmarshal(data, ix); jerr != nil {
			s.Log("checkpoint store: rebuilding unreadable index: %v", jerr)
			ix = &storeIndex{}
		}
	}
	paths, err := filepath.Glob(filepath.Join(s.dir, "*"+storeExt))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: index scan: %w", err)
	}
	present := make(map[string]int64, len(paths))
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			continue
		}
		hash := filepath.Base(p)
		hash = hash[:len(hash)-len(storeExt)]
		present[hash] = st.Size()
	}
	kept := ix.Entries[:0]
	for _, e := range ix.Entries {
		if size, ok := present[e.Hash]; ok {
			e.Bytes = size
			kept = append(kept, e)
			delete(present, e.Hash)
		}
	}
	ix.Entries = kept
	// Adopt untracked store files in sorted-hash order: ranging over
	// the map directly would append them in randomized order, so two
	// rebuilds of the same directory would disagree on entry order
	// (and on eviction tie-breaks downstream).
	orphans := make([]string, 0, len(present))
	for hash := range present {
		orphans = append(orphans, hash)
	}
	sort.Strings(orphans)
	for _, hash := range orphans {
		e := IndexEntry{Hash: hash, Bytes: present[hash]}
		path := filepath.Join(s.dir, hash+storeExt)
		if st, err := os.Stat(path); err == nil {
			e.Created, e.LastUsed = st.ModTime(), st.ModTime()
		}
		if key, err := readEntryKey(path); err == nil {
			e.Key = key
		}
		ix.Entries = append(ix.Entries, e)
	}
	return ix, nil
}

// saveIndexLocked writes index.json atomically; failures are logged,
// not fatal (the index is advisory and will be rebuilt).
func (s *Store) saveIndexLocked(ix *storeIndex) {
	sort.Slice(ix.Entries, func(i, j int) bool {
		return ix.Entries[i].LastUsed.Before(ix.Entries[j].LastUsed)
	})
	data, err := json.MarshalIndent(ix, "", "  ")
	if err != nil {
		s.Log("checkpoint store: index save failed: %v", err)
		return
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(s.dir, "index.tmp-*")
	if err != nil {
		s.Log("checkpoint store: index save failed: %v", err)
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		s.Log("checkpoint store: index save failed: %v", err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		s.Log("checkpoint store: index save failed: %v", err)
		return
	}
	if err := os.Rename(name, filepath.Join(s.dir, IndexName)); err != nil {
		os.Remove(name)
		s.Log("checkpoint store: index save failed: %v", err)
	}
}

// noteCommit records a freshly committed entry in the index and applies
// the LRU size cap, evicting the oldest entries (never the new one)
// until the store fits MaxBytes.
func (s *Store) noteCommit(hash, key string, units int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, err := s.loadIndexLocked()
	if err != nil {
		s.Log("checkpoint store: index update failed: %v", err)
		return
	}
	now := time.Now() //simlint:ordered LRU recency stamp; never read by the sweep
	size := int64(0)
	if st, err := os.Stat(filepath.Join(s.dir, hash+storeExt)); err == nil {
		size = st.Size()
	}
	if e := ix.find(hash); e != nil {
		e.Key, e.Units, e.Bytes, e.LastUsed = key, units, size, now
		if e.Created.IsZero() {
			e.Created = now
		}
	} else {
		ix.Entries = append(ix.Entries, IndexEntry{
			Hash: hash, Key: key, Units: units, Bytes: size,
			Created: now, LastUsed: now,
		})
	}
	if s.MaxBytes > 0 {
		s.evictLocked(ix, hash)
	}
	s.saveIndexLocked(ix)
}

// evictLocked removes least-recently-used entries until the total size
// fits s.MaxBytes, keeping the entry named keep.
func (s *Store) evictLocked(ix *storeIndex, keep string) {
	order := make([]int, len(ix.Entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return ix.Entries[order[a]].LastUsed.Before(ix.Entries[order[b]].LastUsed)
	})
	total := ix.totalBytes()
	evicted := make(map[string]bool)
	for _, i := range order {
		if total <= s.MaxBytes {
			break
		}
		e := ix.Entries[i]
		if e.Hash == keep {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, e.Hash+storeExt)); err != nil && !os.IsNotExist(err) {
			s.Log("checkpoint store: evict %s failed: %v", e.Hash, err)
			continue
		}
		s.Log("checkpoint store: evicted %s (%d bytes, last used %s)",
			e.Hash, e.Bytes, e.LastUsed.Format(time.RFC3339))
		total -= e.Bytes
		evicted[e.Hash] = true
	}
	if len(evicted) > 0 {
		kept := ix.Entries[:0]
		for _, e := range ix.Entries {
			if !evicted[e.Hash] {
				kept = append(kept, e)
			}
		}
		ix.Entries = kept
	}
}

// noteUse refreshes an entry's LastUsed after a hit (best-effort).
// Unlike commits, hits are frequent, so this reads index.json as-is —
// no directory reconciliation — and touches only the one row; a
// missing or stale index is simply left for the next commit or Index
// call to rebuild.
func (s *Store) noteUse(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(s.dir, IndexName))
	if err != nil {
		return
	}
	ix := &storeIndex{}
	if err := json.Unmarshal(data, ix); err != nil {
		return
	}
	e := ix.find(hash)
	if e == nil {
		return
	}
	e.LastUsed = time.Now() //simlint:ordered LRU recency stamp; never read by the sweep
	s.saveIndexLocked(ix)
}

// readEntryKey opens a store file just far enough to recover its key
// text (manifest only, no unit decoding). The captured-unit count is
// not in the manifest, so rescan-built index rows report Units as 0.
func readEntryKey(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	_, man, _, err := readHeader(f)
	if err != nil {
		return "", err
	}
	return man.Key.String(), nil
}
