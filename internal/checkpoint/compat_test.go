package checkpoint

// In-package test of version-1 read compatibility: the old writer's
// byte layout — full page tables on every unit, a warm presence flag
// coinciding with warmFull/warmNone, no keyframe index record — is
// reproduced by hand so the current reader is exercised against real
// v1 bytes. (See compat_v2_test.go for the v2 equivalent.)

import (
	"context"

	"bytes"
	"encoding/binary"
	"encoding/gob"
	"os"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/uarch"
)

// writeV1 serializes set exactly as the version-1 writer did. Every
// unit must carry a full snapshot (or none): v1 had no delta encoding.
func writeV1(t *testing.T, path string, k Key, set *Set) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(storeMagic[:]); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(f, binary.LittleEndian, uint32(storeVersionV1)); err != nil {
		t.Fatal(err)
	}
	cw := newCodecWriter(f)
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(storeManifest{Key: k, PopulationUnits: set.PopulationUnits}); err != nil {
		t.Fatal(err)
	}
	if err := cw.bytes(blob.Bytes()); err != nil {
		t.Fatal(err)
	}
	prevPages := make(map[*[mem.PageSize]byte]uint64)
	var nextPage uint64
	for _, u := range set.Units {
		if u.Delta != nil || u.MemDelta != nil {
			t.Fatal("writeV1 given a delta-encoded unit")
		}
		var nums, refs []uint64
		cur := make(map[*[mem.PageSize]byte]uint64)
		u.Mem.VisitPages(func(num uint64, data *[mem.PageSize]byte) {
			id, ok := prevPages[data]
			if !ok {
				id = nextPage
				nextPage++
				if err := cw.u64(recPage); err != nil {
					t.Fatal(err)
				}
				if err := cw.bytes(data[:]); err != nil {
					t.Fatal(err)
				}
			}
			cur[data] = id
			nums = append(nums, num)
			refs = append(refs, id)
		})
		prevPages = cur
		if err := cw.u64(recUnit); err != nil {
			t.Fatal(err)
		}
		writeUnitPreV3(t, cw, u, nums, refs)
	}
	for _, v := range []uint64{recEnd, uint64(len(set.Units)), set.SweepInsts, uint64(int64(set.SweepTime))} {
		if err := cw.u64(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreReadsV1Entries verifies the current reader loads entries the
// version-1 writer produced (all units full snapshots, no keyframe
// index) and that the loaded units match the captured ones exactly.
func TestStoreReadsV1Entries(t *testing.T) {
	spec, err := program.ByName("gzipx")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Generate(spec, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.Config8Way()
	// Keyframe=1 captures full snapshots only — the v1 shape.
	params := Params{U: 1000, W: 1000, K: 20, FunctionalWarm: true, Keyframe: 1}
	set, err := Capture(context.Background(), p, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Units) == 0 {
		t.Fatal("no units captured")
	}

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor(p, cfg, params)
	writeV1(t, store.path(key), key, set)

	loaded, err := store.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("v1 entry not loaded")
	}
	if len(loaded.Units) != len(set.Units) {
		t.Fatalf("loaded %d units, saved %d", len(loaded.Units), len(set.Units))
	}
	for i, u := range loaded.Units {
		want := set.Units[i]
		if u.Index != want.Index || u.Arch != want.Arch {
			t.Fatalf("unit %d differs after v1 load", i)
		}
		if u.Warm == nil || !reflect.DeepEqual(u.Warm, want.Warm) {
			t.Fatalf("unit %d warm state differs after v1 load", i)
		}
	}
}
