package checkpoint_test

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/uarch"
)

// TestDeltaCaptureMatchesFull is the tentpole's bit-identity bar at the
// capture layer: a delta-encoded sweep (default keyframe interval) must
// materialize every unit to exactly the launch state a full-snapshot
// sweep (Keyframe=1) captures, while actually carrying less snapshot
// payload and a mix of keyframe and delta units.
func TestDeltaCaptureMatchesFull(t *testing.T) {
	p := genProg(t, "gccx", 400_000)
	cfg := uarch.Config8Way()
	base := checkpoint.Params{U: 1000, W: 2000, K: 8, J: 0, FunctionalWarm: true}

	fullParams := base
	fullParams.Keyframe = 1
	full := capture(t, p, cfg, fullParams)

	delta := capture(t, p, cfg, base)

	if len(full.Units) != len(delta.Units) {
		t.Fatalf("unit counts differ: %d full, %d delta", len(full.Units), len(delta.Units))
	}
	keyframes, deltas := 0, 0
	for _, u := range delta.Units {
		switch {
		case u.Warm != nil:
			keyframes++
		case u.Delta != nil:
			deltas++
		}
	}
	if keyframes == 0 || deltas == 0 {
		t.Fatalf("delta capture carried %d keyframes and %d deltas; want both > 0", keyframes, deltas)
	}
	for _, u := range full.Units {
		if u.Warm == nil {
			t.Fatalf("unit %d of Keyframe=1 capture is not a full snapshot", u.Index)
		}
	}
	for i := range full.Units {
		unitsEqual(t, "delta-vs-full", delta.Units[i], full.Units[i])
	}
	if db, fb := delta.WarmBytes(), full.WarmBytes(); db >= fb {
		t.Fatalf("delta capture carries %d warm bytes, full %d; want a reduction", db, fb)
	} else {
		t.Logf("warm payload: full %d bytes/unit, delta %d bytes/unit (%.1fx)",
			fb/len(full.Units), db/len(delta.Units), float64(fb)/float64(db))
	}
}

// TestSetMaterialize exercises the Set-level accessor, including the
// out-of-range error path.
func TestSetMaterialize(t *testing.T) {
	p := genProg(t, "gzipx", 200_000)
	cfg := uarch.Config8Way()
	set := capture(t, p, cfg, checkpoint.Params{U: 1000, W: 1000, K: 5, FunctionalWarm: true})
	for i := range set.Units {
		launch, err := set.Materialize(i)
		if err != nil {
			t.Fatal(err)
		}
		if launch.Warm == nil {
			t.Fatalf("unit %d materialized to nil warm state", i)
		}
		if launch.Mem == nil {
			t.Fatalf("unit %d materialized to nil memory", i)
		}
	}
	if _, err := set.Materialize(len(set.Units)); err == nil {
		t.Fatal("out-of-range Materialize did not error")
	}
	// Cold captures materialize with a nil Warm (memory delta chains are
	// still resolved).
	cold := capture(t, p, cfg, checkpoint.Params{U: 1000, K: 5})
	coldDeltas := 0
	for i := range cold.Units {
		launch, err := cold.Materialize(i)
		if err != nil {
			t.Fatal(err)
		}
		if launch.Warm != nil {
			t.Fatalf("cold unit %d materialized warm state", i)
		}
		if launch.Mem == nil {
			t.Fatalf("cold unit %d materialized to nil memory", i)
		}
		if cold.Units[i].MemDelta != nil {
			coldDeltas++
		}
	}
	if coldDeltas == 0 {
		t.Fatal("cold capture carried no memory-delta units; the cold chain path was not exercised")
	}
}

// TestKeyframeExcludedFromKey pins the store-key property the delta
// encoding relies on: Keyframe changes the entry's layout, never its
// materialized content, so it must not invalidate existing entries.
func TestKeyframeExcludedFromKey(t *testing.T) {
	p := genProg(t, "gzipx", 100_000)
	cfg := uarch.Config8Way()
	base := checkpoint.Params{U: 1000, W: 1000, K: 20, FunctionalWarm: true}
	k0 := checkpoint.KeyFor(p, cfg, base)
	for _, kf := range []int{1, 4, 64} {
		q := base
		q.Keyframe = kf
		if got := checkpoint.KeyFor(p, cfg, q); got.Hash() != k0.Hash() {
			t.Fatalf("Keyframe=%d changed the store key", kf)
		}
	}
}

// TestBrokenChainMaterializeErrors verifies a unit whose chain was
// severed reports an error instead of panicking or fabricating state.
func TestBrokenChainMaterializeErrors(t *testing.T) {
	p := genProg(t, "mcfx", 200_000)
	cfg := uarch.Config8Way()
	set := capture(t, p, cfg, checkpoint.Params{U: 1000, W: 1000, K: 5, FunctionalWarm: true})
	var du *checkpoint.Unit
	for _, u := range set.Units {
		if u.Delta != nil {
			du = u
			break
		}
	}
	if du == nil {
		t.Fatal("no delta unit captured")
	}
	du.Prev = nil
	if _, err := du.Materialize(); err == nil {
		t.Fatal("severed chain materialized without error")
	}
}
