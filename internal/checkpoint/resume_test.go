package checkpoint_test

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/program"
	"repro/internal/uarch"
)

// journalSweep runs one CaptureStream journaling every captured unit
// into a fresh partial writer for key, re-adding the units of rs (the
// journal being resumed) first, exactly as the engine's sweep goroutine
// does. stopAfter > 0 cuts the sweep (emit returns false) after that
// many new units. A complete sweep discards the journal; an interrupted
// one keeps it for the next round.
func journalSweep(t *testing.T, prog *program.Program, cfg uarch.Config, params checkpoint.Params,
	store *checkpoint.Store, key checkpoint.Key, rs *checkpoint.ResumeState, stopAfter int,
) ([]*checkpoint.Unit, *checkpoint.Summary) {
	t.Helper()
	pw, err := store.PartialWriter(key, prog.Length/params.U)
	if err != nil {
		t.Fatal(err)
	}
	if rs != nil {
		for _, u := range rs.Units {
			if err := pw.Add(u); err != nil {
				t.Fatal(err)
			}
		}
		params.Resume = rs
	}
	params.OnFrame = func(fr checkpoint.ResumeFrame) {
		if err := pw.Checkpoint(fr); err != nil {
			t.Fatal(err)
		}
	}
	var units []*checkpoint.Unit
	sum, err := checkpoint.CaptureStream(context.Background(), prog, cfg, params, func(u *checkpoint.Unit) bool {
		if err := pw.Add(u); err != nil {
			t.Fatal(err)
		}
		units = append(units, u)
		return stopAfter == 0 || len(units) < stopAfter
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Complete {
		pw.Discard()
	} else {
		if err := pw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return units, sum
}

// TestResumeMatchesUninterruptedSweep is the resume property test: a
// sweep interrupted at randomized kill points — repeatedly, each round
// resuming from the crash-safe journal — must produce exactly the unit
// stream of an uninterrupted sweep: same launch geometry, arch state,
// memory, and warm state, and the same total sweep-instruction
// accounting. Runs warmed and cold.
func TestResumeMatchesUninterruptedSweep(t *testing.T) {
	for _, warm := range []bool{true, false} {
		name := "warm"
		if !warm {
			name = "cold"
		}
		t.Run(name, func(t *testing.T) {
			p := genProg(t, "gccx", 300_000)
			cfg := uarch.Config8Way()
			params := checkpoint.Params{U: 1000, W: 2000, K: 10, FunctionalWarm: warm, Keyframe: 4}
			whole := capture(t, p, cfg, params)
			want := whole.Units
			if len(want) < 10 {
				t.Fatalf("plan too small for kill points: %d units", len(want))
			}

			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 3; trial++ {
				store, err := checkpoint.OpenStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				key := checkpoint.KeyFor(p, cfg, params)
				var rs *checkpoint.ResumeState
				for round := 0; ; round++ {
					if round > 3*len(want) {
						t.Fatal("resume never converged to a complete sweep")
					}
					prior := 0
					if rs != nil {
						prior = len(rs.Units)
					}
					stop := 0
					if remaining := len(want) - prior; remaining > 2 && rng.Intn(3) > 0 {
						stop = 1 + rng.Intn(remaining-1)
					}
					units, sum := journalSweep(t, p, cfg, params, store, key, rs, stop)

					// Every round's journal+emission must be a prefix of the
					// uninterrupted stream, bit for bit.
					combined := units
					if rs != nil {
						combined = append(append([]*checkpoint.Unit(nil), rs.Units...), units...)
					}
					if len(combined) > len(want) {
						t.Fatalf("round %d: %d units, uninterrupted sweep has %d", round, len(combined), len(want))
					}
					for i, u := range combined {
						unitsEqual(t, "resumed stream", u, want[i])
					}
					if sum.Complete {
						if len(combined) != len(want) || sum.Captured != len(want) {
							t.Fatalf("complete resumed sweep captured %d/%d units", len(combined), len(want))
						}
						if sum.SweepInsts != whole.SweepInsts {
							t.Fatalf("resumed sweep accounts %d insts, uninterrupted %d", sum.SweepInsts, whole.SweepInsts)
						}
						if rs != nil && sum.ResumedAt != rs.SweepInsts {
							t.Fatalf("ResumedAt %d, journal frame at %d", sum.ResumedAt, rs.SweepInsts)
						}
						// The journal is gone once the sweep completed.
						if left, err := store.LoadPartial(key); err != nil || left != nil {
							t.Fatalf("journal survived completion (rs=%v err=%v)", left != nil, err)
						}
						break
					}
					if rs, err = checkpoint.Resume(store, key); err != nil {
						t.Fatal(err)
					}
					if rs == nil {
						t.Fatalf("round %d: interrupted sweep left no usable journal", round)
					}
				}
			}
		})
	}
}

// TestResumeRejectsInconsistentJournal: a journal that disagrees with
// the plan must fail the resume loudly — never continue from a wrong
// position.
func TestResumeRejectsInconsistentJournal(t *testing.T) {
	p := genProg(t, "gzipx", 200_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 10, FunctionalWarm: true}
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	journalSweep(t, p, cfg, params, store, key, nil, 5)
	rs, err := checkpoint.Resume(store, key)
	if err != nil || rs == nil {
		t.Fatalf("no journal to corrupt (rs=%v err=%v)", rs != nil, err)
	}
	rs.Units[0].Index++ // journal from a different plan geometry
	params.Resume = rs
	_, err = checkpoint.CaptureStream(context.Background(), p, cfg, params,
		func(*checkpoint.Unit) bool { t.Fatal("emitted a unit from an inconsistent journal"); return false })
	if err == nil {
		t.Fatal("inconsistent journal resumed without error")
	}
}

// TestPartialCorruptionDegrades sweeps truncation points and byte flips
// across a multi-frame journal. Truncation — the crash shape the
// journal exists for — must degrade to an earlier frame whose units are
// bit-identical to the uninterrupted sweep's prefix, or to no journal
// at all; never to a wrong resume. Byte flips must never panic: they
// load into a structurally sound prefix (whose units all materialize)
// or degrade to nothing, as in the committed-entry corruption suite —
// content flips are undetectable without checksums, but the resume
// path's plan validation still fences them off the boundary stream.
func TestPartialCorruptionDegrades(t *testing.T) {
	p := genProg(t, "gccx", 400_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 8, FunctionalWarm: true, Keyframe: 4}
	whole := capture(t, p, cfg, params)
	want := whole.Units

	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := checkpoint.KeyFor(p, cfg, params)
	journalSweep(t, p, cfg, params, store, key, nil, len(want)-2)
	path := filepath.Join(dir, key.Hash()+".partial")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	checkPrefix := func(what string, rs *checkpoint.ResumeState) {
		t.Helper()
		if len(rs.Units) == 0 || len(rs.Units) > len(want) {
			t.Fatalf("%s: journal has %d units, sweep has %d", what, len(rs.Units), len(want))
		}
		for i, u := range rs.Units {
			unitsEqual(t, what, u, want[i])
		}
		if last := rs.Units[len(rs.Units)-1]; rs.SweepInsts != last.Arch.Count {
			t.Fatalf("%s: frame position %d, last unit launch %d", what, rs.SweepInsts, last.Arch.Count)
		}
	}

	// The intact journal must be a clean prefix.
	rs, err := store.LoadPartial(key)
	if err != nil || rs == nil {
		t.Fatalf("intact journal unusable (rs=%v err=%v)", rs != nil, err)
	}
	checkPrefix("intact", rs)
	full := len(rs.Units)

	// Truncations at 50 points: every cut degrades to an earlier frame
	// (or none), still a bit-identical prefix.
	sawShorter := false
	for i := 1; i < 50; i++ {
		cut := len(data) * i / 50
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := store.LoadPartial(key)
		if err != nil {
			t.Fatalf("truncation at %d bytes: %v", cut, err)
		}
		if rs == nil {
			continue
		}
		checkPrefix("truncated", rs)
		if len(rs.Units) < full {
			sawShorter = true
		}
	}
	if !sawShorter {
		t.Fatal("no truncation point degraded to an earlier frame — the sweep is not exercising the prefix recovery")
	}

	// Byte flips at 60 points: no panics, every survivor materializes.
	for i := 0; i < 60; i++ {
		off := 12 + (len(data)-13)*i/60
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5a
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := store.LoadPartial(key)
		if err != nil {
			t.Fatalf("flip at %d: %v", off, err)
		}
		if rs == nil {
			continue
		}
		for _, u := range rs.Units {
			if _, err := u.Materialize(); err != nil {
				t.Fatalf("flip at %d: journal unit %d failed to materialize: %v", off, u.Index, err)
			}
		}
	}

	// Restore the intact journal and finish the sweep from it: the
	// corruption sweep must not have poisoned the real resume.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err = checkpoint.Resume(store, key)
	if err != nil || rs == nil {
		t.Fatalf("intact journal unusable after sweep (rs=%v err=%v)", rs != nil, err)
	}
	units, sum := journalSweep(t, p, cfg, params, store, key, rs, 0)
	if !sum.Complete {
		t.Fatal("resumed sweep did not complete")
	}
	combined := append(append([]*checkpoint.Unit(nil), rs.Units...), units...)
	if len(combined) != len(want) {
		t.Fatalf("resumed sweep produced %d units, want %d", len(combined), len(want))
	}
	for i, u := range combined {
		unitsEqual(t, "post-corruption resume", u, want[i])
	}
}
