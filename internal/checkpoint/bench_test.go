package checkpoint_test

import (
	"context"

	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/program"
	"repro/internal/uarch"
)

// BenchmarkCaptureDense tracks the delta-snapshot win on the workload
// it exists for: a dense sampling plan (every second unit checkpointed)
// where snapshot capture, not functional execution, dominates the
// sweep. The timed loop runs the delta-encoded capture (the default);
// the reported metrics compare its in-memory warm and memory payloads
// and its on-disk entry size against a full-snapshot capture
// (Keyframe=1, the pre-delta encoding) of the same plan:
//
//	snapshotBytes/unit      in-memory warm payload, delta encoding
//	fullSnapshotBytes/unit  same plan, full snapshots
//	snapshotShrinkX         fullSnapshotBytes / snapshotBytes
//	memBytes/unit           in-memory memory payload (distinct pages +
//	                        page tables/dirty-page deltas), delta encoding
//	fullMemBytes/unit       same plan, full page table every unit
//	storeBytes/unit         on-disk entry bytes per unit, delta encoding
//	fullStoreBytes/unit     on-disk entry bytes per unit, full snapshots
//	units/s                 delta-encoded capture throughput
//	sweepNsPerInst          sweep cost per functionally warmed instruction
//	sweepSpeedupX@N=4       serial sweep time / 4-segment parallel sweep
//	                        time, overlap disabled (pure sweep scaling;
//	                        at most ~1 on a single-core runner)
//
// CI gates snapshotBytes/unit, memBytes/unit, and storeBytes/unit
// against the committed BENCH_pipeline.json baseline (see cmd/benchjson
// -regress): all are deterministic byte counts, so any >10% regression
// is a real encoding change, not runner noise. Capture throughput
// (units/s) is gated the other way (-regress-min) so interpreter or
// sweep regressions fail loudly; sweepSpeedupX is reported but not
// gated — it measures the runner's cores as much as the code.
func BenchmarkCaptureDense(b *testing.B) {
	spec, err := program.ByName("gccx")
	if err != nil {
		b.Fatal(err)
	}
	p, err := program.Generate(spec, 400_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.Config8Way()
	dense := checkpoint.Params{U: 1000, W: 2000, K: 2, J: 0, FunctionalWarm: true}

	var set *checkpoint.Set
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set, err = checkpoint.Capture(context.Background(), p, cfg, dense); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(set.Units) == 0 {
		b.Fatal("no units captured")
	}
	b.ReportMetric(float64(len(set.Units))/b.Elapsed().Seconds()*float64(b.N), "units/s")

	units := float64(len(set.Units))
	deltaBytes := float64(set.WarmBytes())

	fullParams := dense
	fullParams.Keyframe = 1
	full, err := checkpoint.Capture(context.Background(), p, cfg, fullParams)
	if err != nil {
		b.Fatal(err)
	}
	fullBytes := float64(full.WarmBytes())

	entrySize := func(set *checkpoint.Set, params checkpoint.Params) float64 {
		store, err := checkpoint.OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		key := checkpoint.KeyFor(p, cfg, params)
		if err := store.Save(key, set); err != nil {
			b.Fatal(err)
		}
		st, err := os.Stat(filepath.Join(store.Dir(), key.Hash()+".ckpt"))
		if err != nil {
			b.Fatal(err)
		}
		return float64(st.Size())
	}
	deltaStore := entrySize(set, dense)
	fullStore := entrySize(full, fullParams)

	b.ReportMetric(b.Elapsed().Seconds()*1e9/(float64(b.N)*float64(set.SweepInsts)), "sweepNsPerInst")

	// Parallel-sweep scaling, untimed: one 4-segment capture with the
	// warm-up overlap disabled, against the timed loop's serial per-op
	// time. Overlap must be off here — this stream is shorter than
	// DefaultSweepOverlap, so the default would clamp every segment
	// start to zero and measure N redundant serial sweeps instead of
	// sweep scaling.
	parParams := dense
	parParams.SweepParallelism = 4
	parParams.SweepOverlap = -1
	parStart := time.Now()
	if _, err := checkpoint.Capture(context.Background(), p, cfg, parParams); err != nil {
		b.Fatal(err)
	}
	parDur := time.Since(parStart)
	serialPerOp := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(serialPerOp)/float64(parDur), "sweepSpeedupX@N=4")

	b.ReportMetric(deltaBytes/units, "snapshotBytes/unit")
	b.ReportMetric(fullBytes/units, "fullSnapshotBytes/unit")
	b.ReportMetric(fullBytes/deltaBytes, "snapshotShrinkX")
	b.ReportMetric(float64(set.MemBytes())/units, "memBytes/unit")
	b.ReportMetric(float64(full.MemBytes())/units, "fullMemBytes/unit")
	b.ReportMetric(deltaStore/units, "storeBytes/unit")
	b.ReportMetric(fullStore/units, "fullStoreBytes/unit")
}
