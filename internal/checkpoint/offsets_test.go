package checkpoint_test

import (
	"context"

	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/uarch"
)

// unitsEqual compares two captured units including warm state and the
// memory image contents. Both halves are compared after
// materialization, so a delta-encoded unit and a full-snapshot unit are
// equal exactly when their launch states are bit-identical.
func unitsEqual(t *testing.T, what string, a, b *checkpoint.Unit) {
	t.Helper()
	if a.Index != b.Index || a.Start != b.Start || a.LaunchAt != b.LaunchAt {
		t.Fatalf("%s: unit geometry differs: {%d %d %d} vs {%d %d %d}",
			what, a.Index, a.Start, a.LaunchAt, b.Index, b.Start, b.LaunchAt)
	}
	if a.Arch != b.Arch {
		t.Fatalf("%s unit %d: arch state differs", what, a.Index)
	}
	al, err := a.Materialize()
	if err != nil {
		t.Fatalf("%s unit %d: %v", what, a.Index, err)
	}
	bl, err := b.Materialize()
	if err != nil {
		t.Fatalf("%s unit %d: %v", what, b.Index, err)
	}
	memEqual(t, al.Mem.NewMemory(), bl.Mem.NewMemory())
	if (al.Warm == nil) != (bl.Warm == nil) {
		t.Fatalf("%s unit %d: warm presence differs", what, a.Index)
	}
	if al.Warm == nil {
		return
	}
	if !reflect.DeepEqual(al.Warm.Hier, bl.Warm.Hier) {
		t.Fatalf("%s unit %d: hierarchy state differs", what, a.Index)
	}
	if !reflect.DeepEqual(al.Warm.Pred, bl.Warm.Pred) {
		t.Fatalf("%s unit %d: predictor state differs", what, a.Index)
	}
}

// TestMultiOffsetMatchesSingleSweeps is the multi-offset capture
// guarantee: one sweep over several phase offsets produces, per offset,
// exactly the units a dedicated single-offset sweep produces — launch
// points, architectural state, memory, and warm state all identical.
// The offsets are deliberately 1 unit apart (closer than W) to exercise
// the per-offset warming-window clamp.
func TestMultiOffsetMatchesSingleSweeps(t *testing.T) {
	p := genProg(t, "gccx", 300_000)
	cfg := uarch.Config8Way()
	offsets := []uint64{0, 1, 5}
	base := checkpoint.Params{U: 1000, W: 2000, K: 10, FunctionalWarm: true}

	multi := base
	multi.Offsets = offsets
	mset, err := checkpoint.Capture(context.Background(), p, cfg, multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(mset.Units) == 0 {
		t.Fatal("no units captured")
	}

	total := 0
	for _, j := range offsets {
		single := base
		single.J = j
		sset, err := checkpoint.Capture(context.Background(), p, cfg, single)
		if err != nil {
			t.Fatal(err)
		}
		sub := mset.Offset(j)
		if len(sub.Units) != len(sset.Units) {
			t.Fatalf("offset %d: %d units from multi-sweep, %d from single", j, len(sub.Units), len(sset.Units))
		}
		for i := range sub.Units {
			unitsEqual(t, "offset", sub.Units[i], sset.Units[i])
		}
		total += len(sub.Units)
	}
	if total != len(mset.Units) {
		t.Fatalf("offset partition lost units: %d vs %d", total, len(mset.Units))
	}
}

// TestMultiOffsetMaxUnitsPerOffset verifies the MaxUnits cap applies
// per offset in a multi-offset sweep.
func TestMultiOffsetMaxUnitsPerOffset(t *testing.T) {
	p := genProg(t, "gzipx", 200_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{
		U: 1000, W: 1000, K: 10, Offsets: []uint64{0, 3}, MaxUnits: 4,
	}
	set, err := checkpoint.Capture(context.Background(), p, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range params.Offsets {
		if n := len(set.Offset(j).Units); n != 4 {
			t.Fatalf("offset %d captured %d units, want 4", j, n)
		}
	}
	if len(set.Units) != 8 {
		t.Fatalf("total %d units, want 8", len(set.Units))
	}
}

// TestCaptureStreamEarlyStop verifies a consumer can stop the sweep and
// the summary reflects the truncation.
func TestCaptureStreamEarlyStop(t *testing.T) {
	p := genProg(t, "gzipx", 200_000)
	cfg := uarch.Config8Way()
	var got int
	sum, err := checkpoint.CaptureStream(context.Background(), p, cfg,
		checkpoint.Params{U: 1000, W: 1000, K: 5, FunctionalWarm: true},
		func(u *checkpoint.Unit) bool {
			got++
			return got < 3
		})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 || sum.Captured != 3 {
		t.Fatalf("emitted %d units (summary %d), want 3", got, sum.Captured)
	}
	if sum.Complete {
		t.Fatal("truncated sweep reported complete")
	}
	full, err := checkpoint.Capture(context.Background(), p, cfg, checkpoint.Params{U: 1000, W: 1000, K: 5, FunctionalWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Units) <= 3 {
		t.Fatalf("full capture only has %d units", len(full.Units))
	}
	if full.SweepInsts == 0 {
		t.Fatal("missing sweep accounting")
	}
}
