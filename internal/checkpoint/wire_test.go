package checkpoint_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/uarch"
)

// TestWireRoundTrip: EncodeSet's byte stream decodes to an
// indistinguishable Set, and re-encoding the decoded set reproduces the
// bytes exactly — the distributed service ships sweeps with this codec,
// so the transfer must be lossless and deterministic.
func TestWireRoundTrip(t *testing.T) {
	p := genProg(t, "gccx", 300_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 2000, K: 40, J: 0, FunctionalWarm: true}
	set := capture(t, p, cfg, params)
	key := checkpoint.KeyFor(p, cfg, params)

	var buf bytes.Buffer
	if err := checkpoint.EncodeSet(&buf, key, set); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	got, err := checkpoint.DecodeSet(bytes.NewReader(wire), key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Units) != len(set.Units) {
		t.Fatalf("decoded %d units, encoded %d", len(got.Units), len(set.Units))
	}
	if got.PopulationUnits != set.PopulationUnits || got.SweepInsts != set.SweepInsts ||
		got.SweepTime != set.SweepTime || got.K != set.K {
		t.Fatalf("sweep accounting lost: got %+v, want %+v",
			[]any{got.PopulationUnits, got.SweepInsts, got.SweepTime, got.K},
			[]any{set.PopulationUnits, set.SweepInsts, set.SweepTime, set.K})
	}
	for i := range set.Units {
		unitsEqual(t, fmt.Sprintf("wire unit %d", i), got.Units[i], set.Units[i])
	}

	var again bytes.Buffer
	if err := checkpoint.EncodeSet(&again, key, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), wire) {
		t.Fatalf("re-encoding the decoded set changed the bytes (%d vs %d)",
			again.Len(), len(wire))
	}
}

// TestWireKeyValidation: a stream decoded against the wrong key fails
// loudly instead of materializing foreign launch states, and a
// truncated transfer errors rather than yielding a partial set.
func TestWireKeyValidation(t *testing.T) {
	p := genProg(t, "gzipx", 100_000)
	cfg := uarch.Config8Way()
	params := checkpoint.Params{U: 1000, W: 1000, K: 20, J: 0, FunctionalWarm: true}
	set := capture(t, p, cfg, params)
	key := checkpoint.KeyFor(p, cfg, params)

	var buf bytes.Buffer
	if err := checkpoint.EncodeSet(&buf, key, set); err != nil {
		t.Fatal(err)
	}

	other := params
	other.K = 10
	wrong := checkpoint.KeyFor(p, cfg, other)
	if _, err := checkpoint.DecodeSet(bytes.NewReader(buf.Bytes()), wrong); err == nil {
		t.Fatal("decode with mismatched key succeeded")
	}

	for _, cut := range []int{1, buf.Len() / 2, buf.Len() - 1} {
		if _, err := checkpoint.DecodeSet(bytes.NewReader(buf.Bytes()[:cut]), key); err == nil {
			t.Fatalf("decode of %d/%d-byte truncated stream succeeded", cut, buf.Len())
		}
	}
}

// TestExpectedUnits: the up-front unit count matches the boundary
// generator's actual captures across offsets and caps — the distributed
// coordinator sizes shard ranges from it before any worker runs.
func TestExpectedUnits(t *testing.T) {
	p := genProg(t, "gzipx", 150_000)
	cfg := uarch.Config8Way()
	cases := []checkpoint.Params{
		{U: 1000, K: 10, J: 0},
		{U: 1000, W: 1000, K: 7, J: 3, FunctionalWarm: true},
		{U: 500, K: 20, J: 19},
		{U: 1000, K: 10, J: 0, MaxUnits: 4},
		{U: 1000, K: 10, Offsets: []uint64{0, 2, 5}},
	}
	for _, params := range cases {
		set := capture(t, p, cfg, params)
		pop := set.PopulationUnits
		if want := params.ExpectedUnits(pop); len(set.Units) != want {
			t.Errorf("params %+v: captured %d units, ExpectedUnits(%d) = %d",
				params, len(set.Units), pop, want)
		}
	}
	// Offsets at or beyond the population contribute nothing.
	if got := (checkpoint.Params{U: 1000, K: 5, J: 0}).ExpectedUnits(0); got != 0 {
		t.Errorf("ExpectedUnits over empty population = %d, want 0", got)
	}
	if got := (checkpoint.Params{U: 1000, K: 5, J: 40}).ExpectedUnits(30); got != 0 {
		t.Errorf("ExpectedUnits with offset past population = %d, want 0", got)
	}
}

// TestMemCacheLRU: the byte cap evicts least-recently-used entries on
// insert, a Get refreshes recency, the just-inserted entry is never
// evicted, and the stats counters track it all.
func TestMemCacheLRU(t *testing.T) {
	p := genProg(t, "gzipx", 100_000)
	cfg := uarch.Config8Way()
	params := func(j uint64) checkpoint.Params {
		return checkpoint.Params{U: 1000, K: 20, J: j}
	}
	sets := make([]*checkpoint.Set, 4)
	keys := make([]checkpoint.Key, 4)
	size := make([]int64, 4)
	for j := range sets {
		sets[j] = capture(t, p, cfg, params(uint64(j)))
		keys[j] = checkpoint.KeyFor(p, cfg, params(uint64(j)))
		size[j] = int64(sets[j].WarmBytes()) + int64(sets[j].MemBytes())
		if size[j] == 0 {
			t.Fatal("captured set accounts zero payload bytes")
		}
	}

	c := checkpoint.NewMemCache()
	// Room for entries 0 and 1, or 0 and 2 — but not all three, so the
	// third insert evicts exactly one entry.
	c.MaxBytes = size[0] + size[1] + size[2] - 1

	c.Put(keys[0], sets[0])
	c.Put(keys[1], sets[1])
	if c.Bytes() > c.MaxBytes {
		t.Fatalf("cache holds %d bytes over the %d cap", c.Bytes(), c.MaxBytes)
	}
	// Touch 0 so 1 is the LRU entry, then insert 2: 1 must go.
	if c.Get(keys[0]) == nil {
		t.Fatal("entry 0 missing before eviction pressure")
	}
	c.Put(keys[2], sets[2])
	if c.Get(keys[1]) != nil {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if c.Get(keys[0]) == nil || c.Get(keys[2]) == nil {
		t.Fatal("recently-used entries were evicted")
	}

	// An entry bigger than the whole cap still serves its own run: the
	// just-inserted entry is exempt from eviction.
	tiny := checkpoint.NewMemCache()
	tiny.MaxBytes = 1
	tiny.Put(keys[3], sets[3])
	if tiny.Get(keys[3]) == nil {
		t.Fatal("oversized just-inserted entry was evicted")
	}

	hits, misses, evictions := c.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if hits != 3 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", hits, misses)
	}

	// Unbounded cache never evicts.
	free := checkpoint.NewMemCache()
	for j := range sets {
		free.Put(keys[j], sets[j])
	}
	if _, _, ev := free.Stats(); ev != 0 {
		t.Fatalf("unbounded cache evicted %d entries", ev)
	}
	if want := size[0] + size[1] + size[2] + size[3]; free.Bytes() != want {
		t.Fatalf("unbounded cache accounts %d bytes, want %d", free.Bytes(), want)
	}
}
