// Package checkpoint turns a SMARTS sampling plan into a set of
// independently replayable per-unit launch states.
//
// A single functional sweep walks the benchmark's dynamic instruction
// stream once, in order. At each selected sampling unit's launch
// boundary (W instructions before the unit for warmed plans, the unit
// start otherwise) it captures a Unit snapshot: the architectural
// registers and PC, a copy-on-write image of memory, and — when the
// sweep runs with functional warming — the cache, TLB, and
// branch-predictor tag state accumulated by replaying the in-order
// stream (paper Section 3.1's "functional warming" made restorable, the
// organization the paper's checkpointed descendants such as TurboSMARTS
// adopt). Because each snapshot fully determines the subsequent
// detailed simulation of its unit, the units become independent jobs
// the parallel engine can run in any order on any number of workers
// with bit-identical results.
//
// # Streaming capture
//
// The sweep is a producer, not a pre-pass: CaptureStream hands each
// Unit to its caller the moment the unit's launch state is captured, so
// the parallel engine's workers begin detailed replay while the sweep
// is still walking the rest of the stream. Capture is the buffered
// convenience wrapper that collects the stream into a Set.
//
// # Multi-offset capture
//
// Because a snapshot's contents depend only on the stream position —
// functional warming replays every instruction from the start
// regardless of which units are selected — one sweep can capture the
// launch boundaries of several systematic phase offsets j at once
// (Params.Offsets). Each offset's launch positions are computed exactly
// as its own single-offset sweep would compute them, so the units of
// Set.Offset(j) are bit-identical to a dedicated sweep at phase j. The
// bias experiments, which average over several phases, pay one sweep
// instead of one per phase.
//
// # Delta-encoded snapshots
//
// Neighbouring checkpoints along one sweep differ only in the cache
// lines, TLB entries, predictor counters, and memory pages touched
// between them, so copying full state per unit makes snapshot capture
// the dominant cost of dense plans. Every checkpointable structure
// therefore implements one shared snapshot/delta-chain contract
// (internal/delta): dirty tracking maintained inside the update fast
// paths (still zero allocations per instruction — dirty-block bitmaps
// in the warmed structures, a dirty-page journal in mem.Memory), full
// keyframes every Params.Keyframe-th captured unit, and sequence-
// checked deltas against the predecessor on the units between
// (uarch.Warmer.Delta for warm state, mem.Memory.Delta for memory).
// Consumers reconstruct any unit's full launch state on demand with
// Unit.Materialize / Set.Materialize — a clone of the nearest keyframe
// plus at most Keyframe-1 delta applications, read-only on shared
// state and so safe from any number of replay workers at once.
// Materialized states are bit-identical to full snapshots; the encoding
// is invisible to every schedule.
//
// # On-disk store
//
// Store persists captured Sets, content-addressed by a key derived from
// the workload, the sampling geometry, and the warm-relevant machine
// configuration; see store.go. A functional sweep is then paid once per
// (workload, plan, hierarchy shape) and shared across machine configs
// that differ only in timing, width, or energy parameters. The file
// format (v3) persists the keyframe+delta structure directly — for
// memory as well as warm state, collapsing what used to be an ad-hoc
// per-unit page table into the same delta code path — so dense entries
// shrink with the in-memory encoding; v1 (full snapshots only) and v2
// (warm deltas, full page tables) entries remain loadable. The store
// keeps an index.json of its entries and, with MaxBytes set, evicts
// least-recently-used entries on commit.
package checkpoint

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/functional"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/uarch"
	"repro/internal/wallclock"
)

// Params selects the units to checkpoint. It mirrors the SMARTS plan
// fields (U, W, K, J) without importing the smarts package.
//
//simlint:keystruct KeyFor offsets sweepSegments sweepOverlap
type Params struct {
	// U is the sampling unit size in instructions.
	U uint64
	// W is the detailed-warming length in instructions; each snapshot is
	// taken W instructions before its unit (clamped at stream start).
	W uint64
	// K is the systematic sampling interval in units, J the phase offset.
	K, J uint64
	// Offsets, when non-empty, selects several phase offsets captured in
	// the same sweep (J is then ignored). Every offset must be below K
	// and distinct. Set.Offset extracts one offset's units afterwards;
	// each is bit-identical to a dedicated single-offset sweep.
	Offsets []uint64
	// FunctionalWarm selects whether the sweep maintains cache/TLB/
	// predictor state and stores it in each snapshot. When false,
	// snapshots carry architectural state only and units launch with
	// cold microarchitectural state (plus their W detailed-warming
	// instructions).
	FunctionalWarm bool
	// Components restricts which structures functional warming maintains
	// (nil = all).
	Components *uarch.WarmComponents
	// MaxUnits, when nonzero, caps the number of captured units per
	// offset.
	MaxUnits int
	// SweepParallelism, when above 1, runs the capture as a speculative
	// parallel sweep (see parallel.go): the selected boundaries are
	// partitioned into that many contiguous stream segments, each swept
	// concurrently from an arch-state handoff fast-forwarded without
	// warming. Architectural state and memory of every unit stay
	// bit-identical to the serial sweep; warm state in segments after the
	// first starts cold (the paper's detailed-warming scenario) plus
	// SweepOverlap instructions of warming, so warmed captures carry a
	// measured bias (experiments/stride.go quantifies it) and key
	// separately in the store. 0 and 1 select the serial sweep,
	// bit-identical to previous releases.
	SweepParallelism int
	// SweepOverlap is the per-segment warm-up length of a parallel sweep:
	// each segment after the first begins warming this many instructions
	// before its first launch boundary, trading sweep time for cold-start
	// bias. 0 selects DefaultSweepOverlap; negative disables the overlap
	// (segments start stone cold). Ignored by serial sweeps and by
	// captures without functional warming (which are bit-identical at any
	// parallelism, so no overlap is needed).
	SweepOverlap int64
	// Keyframe is the keyframe interval of delta-encoded snapshots:
	// every Keyframe-th captured unit (in capture order, across offsets)
	// carries a full snapshot — warm state and memory page table — and
	// the units between carry deltas against their predecessor
	// (dirty-block warm deltas, dirty-page memory deltas), shrinking
	// both the in-memory footprint of a dense sweep and the store
	// entries. 0 selects DefaultKeyframe; 1 disables deltas (every unit
	// a full snapshot). The encoding never changes the materialized
	// launch states — Materialize reproduces the full snapshot bit for
	// bit — so Keyframe is deliberately excluded from the store Key.
	// Cold captures delta-encode memory the same way (they have no warm
	// state).
	//simlint:nonkey encoding-only knob; materialized launch states are bit-identical
	Keyframe int
	// OnFrame, when non-nil, observes the sweep's resumable state after
	// each captured unit is emitted: the ResumeFrame pinpoints the exact
	// sweep position a later CaptureStream can continue from given the
	// units captured so far (see resume.go). Called from the sweep
	// goroutine, after emit returned true. Serial sweeps only: a parallel
	// sweep has no single resumable position, so it never invokes
	// OnFrame (and Validate rejects Resume with parallelism). Like
	// Keyframe, OnFrame is an execution-side knob excluded from the
	// store Key.
	//simlint:nonkey execution-side observer; never changes captured state
	OnFrame func(ResumeFrame)
	// Resume, when non-nil, continues a previously journaled sweep of
	// this same plan instead of starting at instruction zero: the
	// boundary generator is replayed over the already-captured units
	// (each validated against the plan — a mismatched journal is an
	// error, never a wrong resume), the sweep CPU, memory, and warm
	// state are reconstructed from the last captured unit, and only new
	// units are emitted. The continued unit stream is bit-identical to
	// the tail of an uninterrupted sweep; the first resumed capture is a
	// fresh keyframe (an encoding-only divergence, like Keyframe itself
	// excluded from bit-identity and from the store Key).
	//simlint:nonkey resume point of the same sweep; the unit stream is bit-identical
	Resume *ResumeState
}

// DefaultKeyframe is the keyframe interval used when Params.Keyframe is
// zero: one full snapshot per 64 captured units bounds any unit's
// materialization walk at 63 delta applications while keeping the full
// copies a small minority of a dense sweep's snapshot volume. (The
// interval grew from 16 when deltas moved to near-entry dirty grains
// and took over the memory half: with deltas several times cheaper,
// amortizing the keyframe further is the better trade — on the dense
// benchmark plan the keyframes would otherwise dominate the entry.)
const DefaultKeyframe = 64

// keyframe returns the effective keyframe interval.
func (p Params) keyframe() int {
	if p.Keyframe <= 0 {
		return DefaultKeyframe
	}
	return p.Keyframe
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.U == 0 {
		return fmt.Errorf("checkpoint: zero sampling unit size")
	}
	if p.K == 0 {
		return fmt.Errorf("checkpoint: zero sampling interval")
	}
	if p.J >= p.K {
		return fmt.Errorf("checkpoint: phase offset %d must be below interval %d", p.J, p.K)
	}
	if p.Keyframe < 0 {
		return fmt.Errorf("checkpoint: negative keyframe interval %d", p.Keyframe)
	}
	if p.SweepParallelism < 0 {
		return fmt.Errorf("checkpoint: negative sweep parallelism %d", p.SweepParallelism)
	}
	if p.SweepParallelism > 1 && p.Resume != nil {
		return fmt.Errorf("checkpoint: a parallel sweep cannot resume a journaled sweep")
	}
	seen := make(map[uint64]bool, len(p.Offsets))
	for _, j := range p.Offsets {
		if j >= p.K {
			return fmt.Errorf("checkpoint: phase offset %d must be below interval %d", j, p.K)
		}
		if seen[j] {
			return fmt.Errorf("checkpoint: duplicate phase offset %d", j)
		}
		seen[j] = true
	}
	return nil
}

// sweepSegments returns the effective segment count of the capture
// sweep: SweepParallelism, with 0 (the default) and 1 both meaning the
// serial sweep.
func (p Params) sweepSegments() int {
	if p.SweepParallelism <= 1 {
		return 1
	}
	return p.SweepParallelism
}

// sweepOverlap returns the effective per-segment warm-up length: zero
// whenever the sweep is serial or unwarmed (overlap buys nothing
// there), DefaultSweepOverlap when the field is unset, zero again when
// it is negative (explicitly stone-cold segments).
func (p Params) sweepOverlap() int64 {
	if p.sweepSegments() <= 1 || !p.FunctionalWarm || p.SweepOverlap < 0 {
		return 0
	}
	if p.SweepOverlap == 0 {
		return DefaultSweepOverlap
	}
	return p.SweepOverlap
}

// offsets returns the effective phase offsets, sorted ascending.
func (p Params) offsets() []uint64 {
	if len(p.Offsets) == 0 {
		return []uint64{p.J}
	}
	js := append([]uint64(nil), p.Offsets...)
	sort.Slice(js, func(i, k int) bool { return js[i] < js[k] })
	return js
}

// WarmState is the microarchitectural half of a snapshot: everything
// functional warming maintains.
type WarmState struct {
	Hier *cache.HierarchyState
	Pred *bpred.State
}

// Clone returns a deep copy — the scratch state delta chains are
// materialized into.
func (w *WarmState) Clone() *WarmState {
	return &WarmState{Hier: w.Hier.Clone(), Pred: w.Pred.Clone()}
}

// Apply patches the state forward by one warm delta.
func (w *WarmState) Apply(d *uarch.WarmDelta) error {
	if err := w.Hier.Apply(d.Hier); err != nil {
		return err
	}
	return w.Pred.Apply(d.Pred)
}

// Bytes returns the approximate in-memory payload size of the full
// snapshot.
func (w *WarmState) Bytes() int { return w.Hier.Bytes() + w.Pred.Bytes() }

// Unit is the launch state of one sampling unit: everything needed to
// simulate its W+U instructions in detail, independent of every other
// unit.
type Unit struct {
	// Index is the unit's position in the population (unit number).
	Index uint64
	// Start is the stream position of the unit's first instruction.
	Start uint64
	// LaunchAt is the stream position of the snapshot: Start-W clamped
	// to zero for warmed plans, Start otherwise. The detailed replay
	// runs Start-LaunchAt warming instructions, then U measured ones.
	LaunchAt uint64
	// Arch is the architectural register state at LaunchAt. It is tiny
	// and carried in full on every unit.
	Arch functional.ArchState
	// Mem is the memory image at LaunchAt (copy-on-write, shared with
	// neighbouring checkpoints). It is populated only on keyframe units
	// (and on every unit of sets loaded from pre-v3 store entries); nil
	// when this unit's memory is delta-encoded.
	Mem *mem.Image
	// MemDelta, on delta-encoded units, is the dirty-page change from
	// Prev's memory to this unit's; Mem is then nil.
	MemDelta *mem.Delta
	// Warm is the functionally warmed cache/TLB/predictor state at
	// LaunchAt. It is populated only on keyframe units (and on every
	// unit when deltas are disabled); nil when the sweep ran without
	// functional warming or when this unit is delta-encoded. Consumers
	// that need the launch state call Materialize, which handles every
	// encoding.
	Warm *WarmState
	// Delta, on delta-encoded units, is the dirty-block change from
	// Prev's warm state to this unit's; Warm is then nil.
	Delta *uarch.WarmDelta
	// Prev links a delta-encoded unit to its predecessor in capture
	// order — the chain Materialize walks back to the nearest keyframe
	// (memory and warm deltas share the cadence, so one link serves
	// both). The links keep at most one keyframe interval of deltas
	// (plus the keyframe) alive per retained unit.
	Prev *Unit
}

// WarmLen returns the number of detailed-warming instructions the
// unit's replay executes before measurement begins.
func (u *Unit) WarmLen() uint64 { return u.Start - u.LaunchAt }

// Launch is a unit's fully materialized launch state: the memory image
// and — for warmed sweeps — the cache/TLB/predictor state at LaunchAt.
// (The architectural registers live on the Unit itself; they are carried
// in full on every unit.) On keyframe units the fields alias the unit's
// own shared snapshots — treat them as read-only; NewMemory and Restore
// only read them.
type Launch struct {
	Mem  *mem.Image
	Warm *WarmState // nil when the sweep ran without functional warming
}

// Materialize reconstructs the unit's full launch state: a keyframe
// returns its snapshots directly (shared — treat as read-only), a
// delta-encoded unit clones the nearest keyframe and applies the chain
// of deltas up to itself — memory and warm state alike — and a cold
// unit materializes with a nil Warm. Materialization never mutates
// shared state, so any number of goroutines may materialize units of
// the same chain concurrently — this is how the engine's workers
// reconstruct launch states on demand.
func (u *Unit) Materialize() (*Launch, error) {
	m, err := u.materializeMem()
	if err != nil {
		return nil, err
	}
	w, err := u.materializeWarm()
	if err != nil {
		return nil, err
	}
	return &Launch{Mem: m, Warm: w}, nil
}

// materializeMem resolves the memory half of the launch state through
// its delta chain. It walks the chain independently of the warm half:
// sets loaded from pre-v3 store entries carry full memory on every unit
// but delta-encoded warm state, and cold sweeps the reverse.
func (u *Unit) materializeMem() (*mem.Image, error) {
	if u.Mem != nil {
		return u.Mem, nil
	}
	var chain []*Unit
	cur := u
	for cur.Mem == nil {
		if cur.MemDelta == nil || cur.Prev == nil {
			return nil, fmt.Errorf("checkpoint: unit %d: broken memory delta chain at unit %d", u.Index, cur.Index)
		}
		chain = append(chain, cur)
		cur = cur.Prev
	}
	img := cur.Mem.Clone()
	for i := len(chain) - 1; i >= 0; i-- {
		if err := img.Apply(chain[i].MemDelta); err != nil {
			return nil, fmt.Errorf("checkpoint: unit %d: materialize memory at unit %d: %w", u.Index, chain[i].Index, err)
		}
	}
	return img, nil
}

// materializeWarm resolves the warm half of the launch state through
// its delta chain; cold units resolve to nil.
func (u *Unit) materializeWarm() (*WarmState, error) {
	if u.Warm != nil {
		return u.Warm, nil
	}
	if u.Delta == nil {
		return nil, nil // cold capture
	}
	// Walk back to the keyframe, collecting the delta chain.
	var chain []*Unit
	cur := u
	for cur.Warm == nil {
		if cur.Delta == nil || cur.Prev == nil {
			return nil, fmt.Errorf("checkpoint: unit %d: broken delta chain at unit %d", u.Index, cur.Index)
		}
		chain = append(chain, cur)
		cur = cur.Prev
	}
	w := cur.Warm.Clone()
	for i := len(chain) - 1; i >= 0; i-- {
		if err := w.Apply(chain[i].Delta); err != nil {
			return nil, fmt.Errorf("checkpoint: unit %d: materialize at unit %d: %w", u.Index, chain[i].Index, err)
		}
	}
	return w, nil
}

// WarmBytes returns the approximate in-memory warm payload the unit
// itself carries: the full snapshot for keyframes, the delta for
// delta-encoded units, zero for cold captures. Summed over a set it is
// the snapshotBytes the delta encoding exists to shrink.
func (u *Unit) WarmBytes() int {
	switch {
	case u.Warm != nil:
		return u.Warm.Bytes()
	case u.Delta != nil:
		return u.Delta.Bytes()
	}
	return 0
}

// MemTableBytes returns the unit's own memory bookkeeping payload — 16
// bytes (number + reference) per page the unit lists, i.e. the full
// page table on keyframes and only the dirty pages on delta units. Page
// contents are shared with neighbouring units and accounted separately
// (see Set.MemBytes).
func (u *Unit) MemTableBytes() int {
	switch {
	case u.Mem != nil:
		return 16 * u.Mem.PageCount()
	case u.MemDelta != nil:
		return 16 * u.MemDelta.Len()
	}
	return 0
}

// Summary describes one capture sweep's cost and extent.
type Summary struct {
	// PopulationUnits is the benchmark length in units (the paper's N).
	PopulationUnits uint64
	// SweepInsts is the number of instructions the sweep executed
	// functionally (the engine's fast-forward cost).
	SweepInsts uint64
	// SweepTime is the wall-clock cost of the sweep.
	SweepTime time.Duration
	// Captured is the number of units emitted — including, on a resumed
	// sweep, the units the journal already held (which are not
	// re-emitted; see Params.Resume).
	Captured int
	// ResumedAt is the journaled instruction position a resumed sweep
	// continued from (0 for a cold sweep): SweepInsts - ResumedAt is the
	// functional work this sweep actually executed.
	ResumedAt uint64
	// Complete reports that the sweep visited every selected boundary:
	// it was not cut short by the consumer (a false return from emit).
	// Reaching program end before the last boundary still counts as
	// complete — rerunning the sweep could not produce more units.
	Complete bool
}

// Set is the result of one capture sweep, collected in launch order.
type Set struct {
	// Units holds the captured launch states in stream order.
	Units []*Unit
	// K is the sampling interval the set was captured with; a unit's
	// phase offset is Index mod K.
	K uint64
	// PopulationUnits is the benchmark length in units (the paper's N).
	PopulationUnits uint64
	// SweepInsts is the number of instructions the sweep executed
	// functionally (the engine's fast-forward cost).
	SweepInsts uint64
	// SweepTime is the wall-clock cost of the sweep.
	SweepTime time.Duration
}

// Materialize reconstructs the full launch state of the i-th unit in
// the set (in stream order), resolving delta chains through their
// keyframes; see Unit.Materialize.
func (s *Set) Materialize(i int) (*Launch, error) {
	if i < 0 || i >= len(s.Units) {
		return nil, fmt.Errorf("checkpoint: materialize unit %d of %d", i, len(s.Units))
	}
	return s.Units[i].Materialize()
}

// WarmBytes sums the warm payload carried by the set's units — full
// snapshots on keyframes plus deltas elsewhere.
func (s *Set) WarmBytes() int {
	total := 0
	for _, u := range s.Units {
		total += u.WarmBytes()
	}
	return total
}

// MemBytes approximates the in-memory (and, closely, on-disk) memory
// payload of the set: every distinct page array counted once — pages
// are shared copy-on-write along the stream, and the store writes each
// version once — plus each unit's page table or dirty-page delta
// bookkeeping. With delta encoding the per-unit tables collapse to the
// dirty pages, which is the quantity the memBytes/unit benchmark metric
// tracks.
func (s *Set) MemBytes() int {
	seen := make(map[*[mem.PageSize]byte]struct{})
	total := 0
	for _, u := range s.Units {
		total += u.MemTableBytes()
		visit := func(data *[mem.PageSize]byte) {
			if _, ok := seen[data]; !ok {
				seen[data] = struct{}{}
				total += mem.PageSize
			}
		}
		switch {
		case u.Mem != nil:
			u.Mem.VisitPages(func(_ uint64, data *[mem.PageSize]byte) { visit(data) })
		case u.MemDelta != nil:
			for _, p := range u.MemDelta.Pages {
				visit(p)
			}
		}
	}
	return total
}

// Offset returns the sub-set holding only phase offset j's units (in
// stream order, sharing the snapshots). The sweep accounting is carried
// over unchanged: the sweep was paid once for all offsets.
func (s *Set) Offset(j uint64) *Set {
	sub := &Set{
		K:               s.K,
		PopulationUnits: s.PopulationUnits,
		SweepInsts:      s.SweepInsts,
		SweepTime:       s.SweepTime,
	}
	for _, u := range s.Units {
		if s.K != 0 && u.Index%s.K == j {
			sub.Units = append(sub.Units, u)
		}
	}
	return sub
}

// boundary is one selected launch point of the sweep.
type boundary struct {
	unit   uint64 // unit index in the population
	start  uint64 // stream position of the unit's first instruction
	launch uint64 // stream position of the snapshot
}

// boundaryGen merges the per-offset launch sequences into one
// nondecreasing stream of boundaries. Each offset's launches are
// computed exactly as its own single-offset sweep would: launch_i =
// max(start_i - W, launch_{i-1}) with launch_{-1} = 0, so overlapping
// warming windows shorten within an offset but never across offsets —
// the property that makes multi-offset capture bit-identical to
// separate sweeps.
type boundaryGen struct {
	p       Params
	pop     uint64
	offsets []uint64
	nextIdx []uint64 // next unit index per offset
	prev    []uint64 // previous launch per offset
	emitted []int    // units emitted per offset (for MaxUnits)
}

func newBoundaryGen(p Params, pop uint64) *boundaryGen {
	offs := p.offsets()
	g := &boundaryGen{
		p:       p,
		pop:     pop,
		offsets: offs,
		nextIdx: append([]uint64(nil), offs...),
		prev:    make([]uint64, len(offs)),
		emitted: make([]int, len(offs)),
	}
	return g
}

// peek computes offset o's next boundary without committing it.
func (g *boundaryGen) peek(o int) (boundary, bool) {
	if g.nextIdx[o] >= g.pop {
		return boundary{}, false
	}
	if g.p.MaxUnits > 0 && g.emitted[o] >= g.p.MaxUnits {
		return boundary{}, false
	}
	start := g.nextIdx[o] * g.p.U
	launch := start
	if g.p.W > 0 {
		if g.p.W > start {
			launch = 0
		} else {
			launch = start - g.p.W
		}
	}
	if launch < g.prev[o] {
		launch = g.prev[o] // units closer together than W: shorten warming
	}
	return boundary{unit: g.nextIdx[o], start: start, launch: launch}, true
}

// next returns the globally earliest pending boundary (ties broken by
// unit index) and advances past it.
func (g *boundaryGen) next() (boundary, bool) {
	best := -1
	var bb boundary
	for o := range g.offsets {
		b, ok := g.peek(o)
		if !ok {
			continue
		}
		if best < 0 || b.launch < bb.launch || (b.launch == bb.launch && b.unit < bb.unit) {
			best, bb = o, b
		}
	}
	if best < 0 {
		return boundary{}, false
	}
	g.prev[best] = bb.launch
	g.nextIdx[best] += g.p.K
	g.emitted[best]++
	return bb, true
}

// FFChunk bounds how many instructions a fast-forward loop runs
// between cancellation checks — here in the capture sweep, and in the
// serial loop of internal/smarts, which shares the constant so the two
// paths keep matched cancellation latency. At functional-warming speed
// (~20ns/inst) one chunk is a couple of milliseconds, so a cancelled
// context stops the sweep promptly even inside a long fast-forward
// gap, while the per-chunk check cost is amortized to nothing.
const FFChunk = 1 << 16

// CaptureStream runs the functional sweep over prog, calling emit for
// each selected unit's launch state the moment it is captured, in
// nondecreasing launch order. emit returning false stops the sweep
// early (Summary.Complete will be false); the returned Summary always
// describes what actually ran. cfg sizes the warmed structures; it is
// only consulted when p.FunctionalWarm is set.
//
// The sweep honors ctx: cancellation (or deadline expiry) is observed
// between boundaries and, within long fast-forward gaps, every FFChunk
// instructions; the sweep then stops where it is and returns ctx.Err()
// with Summary.Complete false, so a store writer layered on the stream
// aborts instead of committing a partial entry.
//
// The consumer owns each emitted Unit. Snapshots share memory pages
// copy-on-write with their neighbours, so holding one unit alive does
// not pin the whole stream's footprint.
func CaptureStream(ctx context.Context, prog *program.Program, cfg uarch.Config, p Params, emit func(*Unit) bool) (*Summary, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if p.sweepSegments() > 1 {
		return captureParallel(ctx, prog, cfg, p, emit)
	}
	cpu := functional.New(prog)
	var warmer *uarch.Warmer
	var machine *uarch.Machine
	if p.FunctionalWarm {
		machine = uarch.NewMachine(cfg)
		warmer = uarch.NewWarmer(machine, cfg)
		if p.Components != nil {
			warmer.Components = *p.Components
		}
	}

	sum := &Summary{PopulationUnits: prog.Length / p.U}
	start := wallclock.Now()
	gen := newBoundaryGen(p, sum.PopulationUnits)
	var pos uint64 // instructions consumed from the stream so far

	if rs := p.Resume; rs != nil && len(rs.Units) > 0 {
		var err error
		cpu, err = resumeSweep(prog, machine, warmer, gen, rs)
		if err != nil {
			return nil, err
		}
		pos = cpu.Count
		sum.Captured = len(rs.Units)
		sum.ResumedAt = rs.SweepInsts
		// Backdate start so wallclock.Since(start) — used by every exit path —
		// accumulates on top of the journaled sweep time.
		start = start.Add(-rs.SweepTime)
	}

	// Delta-encoded snapshots: every kf-th captured unit is a full
	// keyframe, the units between carry deltas chained off it — dirty
	// memory pages always, dirty warm blocks when warming (see
	// Params.Keyframe).
	kf := p.keyframe()
	var prevUnit *Unit // last captured unit (the chain predecessor)
	var lastSeq uint64 // the warmer's snapshot sequence number
	var lastMem uint64 // the memory's snapshot sequence number

	sum.Complete = true
	for {
		if cerr := ctx.Err(); cerr != nil {
			sum.Complete = false
			sum.SweepInsts = cpu.Count
			sum.SweepTime = wallclock.Since(start)
			return sum, cerr
		}
		b, ok := gen.next()
		if !ok {
			break
		}
		for pos < b.launch {
			step := b.launch - pos
			if step > FFChunk {
				step = FFChunk
			}
			target := pos + step
			var err error
			if warmer != nil {
				err = warmer.Forward(cpu, step)
			} else {
				_, err = cpu.Run(step)
			}
			if err != nil {
				sum.SweepInsts = cpu.Count
				sum.SweepTime = wallclock.Since(start)
				return sum, fmt.Errorf("checkpoint: sweep to unit %d: %w", b.unit, err)
			}
			pos = cpu.Count
			if cpu.Halted || pos < target {
				break
			}
			if cerr := ctx.Err(); cerr != nil {
				sum.Complete = false
				sum.SweepInsts = cpu.Count
				sum.SweepTime = wallclock.Since(start)
				return sum, cerr
			}
		}
		if cpu.Halted || cpu.Count < b.launch {
			break // program ended before this unit's launch point
		}

		u := &Unit{
			Index:    b.unit,
			Start:    b.start,
			LaunchAt: b.launch,
			Arch:     cpu.Arch(),
		}
		if prevUnit == nil || sum.Captured%kf == 0 {
			// Keyframe: full memory image and (when warming) warm state.
			u.Mem = cpu.Mem.Snapshot()
			lastMem = cpu.Mem.Seq()
			if machine != nil {
				snap := warmer.Snapshot()
				u.Warm = &WarmState{Hier: snap.Hier, Pred: snap.Pred}
				lastSeq = snap.Seq
			}
		} else {
			md, derr := cpu.Mem.Delta(lastMem)
			if derr != nil {
				sum.SweepInsts = cpu.Count
				sum.SweepTime = wallclock.Since(start)
				return sum, fmt.Errorf("checkpoint: unit %d: %w", b.unit, derr)
			}
			u.MemDelta = md
			u.Prev = prevUnit
			lastMem = md.Seq
			if machine != nil {
				d, derr := warmer.Delta(lastSeq)
				if derr != nil {
					sum.SweepInsts = cpu.Count
					sum.SweepTime = wallclock.Since(start)
					return sum, fmt.Errorf("checkpoint: unit %d: %w", b.unit, derr)
				}
				u.Delta = d
				lastSeq = d.Seq
			}
		}
		prevUnit = u
		sum.Captured++
		if !emit(u) {
			sum.Complete = false
			break
		}
		if p.OnFrame != nil {
			// At capture time the stream position equals the unit's launch
			// point, so the frame pins exactly the state a resumed sweep
			// reconstructs from this unit.
			fr := ResumeFrame{
				Captured:   sum.Captured,
				SweepInsts: cpu.Count,
				SweepTime:  wallclock.Since(start),
			}
			if warmer != nil {
				fr.LastIBlock, fr.HaveIBlock = warmer.FetchBlock()
			}
			p.OnFrame(fr)
		}
	}
	sum.SweepInsts = cpu.Count
	sum.SweepTime = wallclock.Since(start)
	return sum, nil
}

// Capture runs the functional sweep over prog and collects every
// selected unit's launch state into a Set. It is CaptureStream with a
// buffering consumer.
func Capture(ctx context.Context, prog *program.Program, cfg uarch.Config, p Params) (*Set, error) {
	set := &Set{K: p.K}
	sum, err := CaptureStream(ctx, prog, cfg, p, func(u *Unit) bool {
		set.Units = append(set.Units, u)
		return true
	})
	if err != nil {
		return nil, err
	}
	set.PopulationUnits = sum.PopulationUnits
	set.SweepInsts = sum.SweepInsts
	set.SweepTime = sum.SweepTime
	return set, nil
}
