// Package checkpoint turns a SMARTS sampling plan into a set of
// independently replayable per-unit launch states.
//
// A single functional sweep walks the benchmark's dynamic instruction
// stream once, in order. At each selected sampling unit's launch
// boundary (W instructions before the unit for warmed plans, the unit
// start otherwise) it captures a Unit snapshot: the architectural
// registers and PC, a copy-on-write image of memory, and — when the
// sweep runs with functional warming — the cache, TLB, and
// branch-predictor tag state accumulated by replaying the in-order
// stream (paper Section 3.1's "functional warming" made restorable, the
// organization the paper's checkpointed descendants such as TurboSMARTS
// adopt). Because each snapshot fully determines the subsequent
// detailed simulation of its unit, the units become independent jobs
// the parallel engine can run in any order on any number of workers
// with bit-identical results.
package checkpoint

import (
	"fmt"
	"time"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/functional"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/uarch"
)

// Params selects the units to checkpoint. It mirrors the SMARTS plan
// fields (U, W, K, J) without importing the smarts package.
type Params struct {
	// U is the sampling unit size in instructions.
	U uint64
	// W is the detailed-warming length in instructions; each snapshot is
	// taken W instructions before its unit (clamped at stream start).
	W uint64
	// K is the systematic sampling interval in units, J the phase offset.
	K, J uint64
	// FunctionalWarm selects whether the sweep maintains cache/TLB/
	// predictor state and stores it in each snapshot. When false,
	// snapshots carry architectural state only and units launch with
	// cold microarchitectural state (plus their W detailed-warming
	// instructions).
	FunctionalWarm bool
	// Components restricts which structures functional warming maintains
	// (nil = all).
	Components *uarch.WarmComponents
	// MaxUnits, when nonzero, caps the number of captured units.
	MaxUnits int
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.U == 0 {
		return fmt.Errorf("checkpoint: zero sampling unit size")
	}
	if p.K == 0 {
		return fmt.Errorf("checkpoint: zero sampling interval")
	}
	if p.J >= p.K {
		return fmt.Errorf("checkpoint: phase offset %d must be below interval %d", p.J, p.K)
	}
	return nil
}

// WarmState is the microarchitectural half of a snapshot: everything
// functional warming maintains.
type WarmState struct {
	Hier *cache.HierarchyState
	Pred *bpred.State
}

// Unit is the launch state of one sampling unit: everything needed to
// simulate its W+U instructions in detail, independent of every other
// unit.
type Unit struct {
	// Index is the unit's position in the population (unit number).
	Index uint64
	// Start is the stream position of the unit's first instruction.
	Start uint64
	// LaunchAt is the stream position of the snapshot: Start-W clamped
	// to zero for warmed plans, Start otherwise. The detailed replay
	// runs Start-LaunchAt warming instructions, then U measured ones.
	LaunchAt uint64
	// Arch is the architectural register state at LaunchAt.
	Arch functional.ArchState
	// Mem is the memory image at LaunchAt (copy-on-write, shared with
	// neighbouring checkpoints).
	Mem *mem.Image
	// Warm is the functionally warmed cache/TLB/predictor state at
	// LaunchAt; nil when the sweep ran without functional warming.
	Warm *WarmState
}

// WarmLen returns the number of detailed-warming instructions the
// unit's replay executes before measurement begins.
func (u *Unit) WarmLen() uint64 { return u.Start - u.LaunchAt }

// Set is the result of one capture sweep.
type Set struct {
	// Units holds the captured launch states in stream order.
	Units []*Unit
	// PopulationUnits is the benchmark length in units (the paper's N).
	PopulationUnits uint64
	// SweepInsts is the number of instructions the sweep executed
	// functionally (the engine's fast-forward cost).
	SweepInsts uint64
	// SweepTime is the wall-clock cost of the sweep.
	SweepTime time.Duration
}

// Capture runs the functional sweep over prog and snapshots every
// selected unit's launch state. cfg sizes the warmed structures; it is
// only consulted when p.FunctionalWarm is set.
func Capture(prog *program.Program, cfg uarch.Config, p Params) (*Set, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cpu := functional.New(prog)
	var warmer *uarch.Warmer
	var machine *uarch.Machine
	if p.FunctionalWarm {
		machine = uarch.NewMachine(cfg)
		warmer = uarch.NewWarmer(machine, cfg)
		if p.Components != nil {
			warmer.Components = *p.Components
		}
	}

	set := &Set{PopulationUnits: prog.Length / p.U}
	start := time.Now()
	var pos uint64 // instructions consumed from the stream so far

	for unit := p.J; unit < set.PopulationUnits; unit += p.K {
		if p.MaxUnits > 0 && len(set.Units) >= p.MaxUnits {
			break
		}
		unitStart := unit * p.U
		launchAt := unitStart
		if p.W > 0 {
			if p.W > unitStart {
				launchAt = 0
			} else {
				launchAt = unitStart - p.W
			}
		}
		if launchAt < pos {
			launchAt = pos // units closer together than W: shorten warming
		}

		if ff := launchAt - pos; ff > 0 {
			var err error
			if warmer != nil {
				err = warmer.Forward(cpu, ff)
			} else {
				_, err = cpu.Run(ff)
			}
			if err != nil {
				return nil, fmt.Errorf("checkpoint: sweep to unit %d: %w", unit, err)
			}
			pos = cpu.Count
		}
		if cpu.Halted || cpu.Count < launchAt {
			break // program ended before this unit's launch point
		}

		u := &Unit{
			Index:    unit,
			Start:    unitStart,
			LaunchAt: launchAt,
			Arch:     cpu.Arch(),
			Mem:      cpu.Mem.Snapshot(),
		}
		if machine != nil {
			u.Warm = &WarmState{
				Hier: machine.Hier.Snapshot(),
				Pred: machine.Pred.Snapshot(),
			}
		}
		set.Units = append(set.Units, u)
	}
	set.SweepInsts = cpu.Count
	set.SweepTime = time.Since(start)
	return set, nil
}
