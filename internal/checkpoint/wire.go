package checkpoint

import (
	"fmt"
	"io"
)

// EncodeSet writes set, keyed by k, to w in the store's format-v3 byte
// stream — the exact bytes Store.Save would put on disk. It is the wire
// form the distributed sampling service (internal/dist) ships captured
// sweeps with: a worker that swept uploads the encoding, the
// coordinator caches it, and every other worker decodes an identical
// Set, so fleet-wide sweep sharing reuses the store codec instead of
// inventing a second serialization.
func EncodeSet(w io.Writer, k Key, set *Set) error {
	enc, err := newSetEncoder(w, k, set.PopulationUnits)
	if err != nil {
		return fmt.Errorf("checkpoint: encode set: %w", err)
	}
	for _, u := range set.Units {
		if err := enc.add(u); err != nil {
			return fmt.Errorf("checkpoint: encode set: %w", err)
		}
	}
	if err := enc.finish(set.SweepInsts, set.SweepTime); err != nil {
		return fmt.Errorf("checkpoint: encode set: %w", err)
	}
	return nil
}

// DecodeSet reads one EncodeSet (or store-file) byte stream from r and
// reconstructs the Set. The expected key k guards the transfer the same
// way the store's manifest check guards a load: a stream whose embedded
// key does not match k (stale derivation, wrong entry, corruption)
// fails loudly rather than materializing foreign launch states.
func DecodeSet(r io.Reader, k Key) (*Set, error) {
	set, err := readSet(r, k)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode set: %w", err)
	}
	return set, nil
}

// ExpectedUnits returns the number of units a capture sweep with p
// selects from a population of pop units (Summary.PopulationUnits /
// prog.Length/U) — the boundary generator's count without running the
// sweep. Per offset j the selected unit indices are j, j+K, j+2K, ...
// below pop, capped at MaxUnits. The engine's progress totals and the
// distributed coordinator's shard ranges are sized from it up front;
// the actual captured count can only fall short when the program halts
// before a launch boundary, which consumers clamp against.
func (p Params) ExpectedUnits(pop uint64) int {
	total := 0
	for _, j := range p.offsets() {
		if pop <= j {
			continue
		}
		n := int((pop-1-j)/p.K) + 1
		if p.MaxUnits > 0 && n > p.MaxUnits {
			n = p.MaxUnits
		}
		total += n
	}
	return total
}
