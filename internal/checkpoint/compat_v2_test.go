package checkpoint

// In-package test of version-2 read compatibility against a hand-
// written v2 file. The v2 layout differs from v3 in three ways the
// helpers here reproduce byte for byte: unit records carry no memory-
// encoding kind (the page table is always full), delta records carry no
// grain fields (the granularities were compile-time constants — 32
// cache entries, 64 direction-table entries, 32 BTB entries per dirty
// block), and the keyframe index lists warm-keyframe ordinals.

import (
	"context"

	"bytes"
	"encoding/binary"
	"encoding/gob"
	"os"
	"reflect"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/delta"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/uarch"
)

// writeUnitPreV3 emits one unit record in the v1/v2 layout: no memory
// kind, full page table, then the warm state (full or none — the v1
// presence flag and the v2 kind coincide for these).
func writeUnitPreV3(t *testing.T, cw *codecWriter, u *Unit, nums, refs []uint64) {
	t.Helper()
	for _, v := range []uint64{u.Index, u.Start, u.LaunchAt} {
		if err := cw.u64(v); err != nil {
			t.Fatal(err)
		}
	}
	arch := u.Arch
	if err := cw.u64s(arch.Regs[:]); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{arch.PC, arch.Count} {
		if err := cw.u64(v); err != nil {
			t.Fatal(err)
		}
	}
	halted := uint64(0)
	if arch.Halted {
		halted = 1
	}
	if err := cw.u64(halted); err != nil {
		t.Fatal(err)
	}
	if err := cw.u64s(nums); err != nil {
		t.Fatal(err)
	}
	if err := cw.u64s(refs); err != nil {
		t.Fatal(err)
	}
	if u.Warm == nil {
		if err := cw.u64(warmNone); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err := cw.u64(warmFull); err != nil {
		t.Fatal(err)
	}
	if err := cw.warmState(u.Warm); err != nil {
		t.Fatal(err)
	}
}

// diffCacheState computes the v2-grain dirty-block delta between two
// full snapshots: every 32-entry block in which any array differs is
// carried. This is exactly the shape the v2 writer persisted (its
// dirty tracking over-approximated to touched blocks; a differing-block
// delta is a valid, minimal instance of it).
func diffCacheState(prev, cur *cache.State) *cache.Delta {
	n := len(cur.Tags)
	d := &cache.Delta{N: n, Grain: v2CacheGrain, Stamp: cur.Stamp}
	nBlocks := (n + (1 << v2CacheGrain) - 1) >> v2CacheGrain
	for b := 0; b < nBlocks; b++ {
		lo, hi := delta.Span(uint32(b), v2CacheGrain, n)
		changed := false
		for i := lo; i < hi; i++ {
			if prev.Tags[i] != cur.Tags[i] || prev.Valid[i] != cur.Valid[i] ||
				prev.Dirty[i] != cur.Dirty[i] || prev.LastUsed[i] != cur.LastUsed[i] {
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		d.Blocks = append(d.Blocks, uint32(b))
		d.Tags = append(d.Tags, cur.Tags[lo:hi]...)
		d.Valid = append(d.Valid, cur.Valid[lo:hi]...)
		d.Dirty = append(d.Dirty, cur.Dirty[lo:hi]...)
		d.LastUsed = append(d.LastUsed, cur.LastUsed[lo:hi]...)
	}
	return d
}

// diffPredState computes the v2-grain predictor delta between two full
// snapshots.
func diffPredState(prev, cur *bpred.State) *bpred.Delta {
	n, btbn := len(cur.Bimodal), len(cur.BTBTags)
	d := &bpred.Delta{
		N: n, BTBN: btbn,
		TblGrain: v2TblGrain, BTBGrain: v2BTBGrain,
		History:  cur.History,
		BTBStamp: cur.BTBStamp,
		RAS:      append([]uint64(nil), cur.RAS...),
		RASTop:   cur.RASTop,
	}
	nBlocks := (n + (1 << v2TblGrain) - 1) >> v2TblGrain
	for b := 0; b < nBlocks; b++ {
		lo, hi := delta.Span(uint32(b), v2TblGrain, n)
		changed := false
		for i := lo; i < hi; i++ {
			if prev.Bimodal[i] != cur.Bimodal[i] || prev.Gshare[i] != cur.Gshare[i] || prev.Chooser[i] != cur.Chooser[i] {
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		d.TblBlocks = append(d.TblBlocks, uint32(b))
		d.Bimodal = append(d.Bimodal, cur.Bimodal[lo:hi]...)
		d.Gshare = append(d.Gshare, cur.Gshare[lo:hi]...)
		d.Chooser = append(d.Chooser, cur.Chooser[lo:hi]...)
	}
	bBlocks := (btbn + (1 << v2BTBGrain) - 1) >> v2BTBGrain
	for b := 0; b < bBlocks; b++ {
		lo, hi := delta.Span(uint32(b), v2BTBGrain, btbn)
		changed := false
		for i := lo; i < hi; i++ {
			if prev.BTBTags[i] != cur.BTBTags[i] || prev.BTBTgts[i] != cur.BTBTgts[i] ||
				prev.BTBLRU[i] != cur.BTBLRU[i] || prev.BTBValid[i] != cur.BTBValid[i] {
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		d.BTBBlocks = append(d.BTBBlocks, uint32(b))
		d.BTBTags = append(d.BTBTags, cur.BTBTags[lo:hi]...)
		d.BTBTgts = append(d.BTBTgts, cur.BTBTgts[lo:hi]...)
		d.BTBLRU = append(d.BTBLRU, cur.BTBLRU[lo:hi]...)
		d.BTBValid = append(d.BTBValid, cur.BTBValid[lo:hi]...)
	}
	return d
}

// writeV2CacheDelta emits a cache delta in the v2 layout (no grain
// field).
func writeV2CacheDelta(t *testing.T, cw *codecWriter, d *cache.Delta) {
	t.Helper()
	for _, v := range []uint64{uint64(d.N), d.Stamp} {
		if err := cw.u64(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.u32s(d.Blocks); err != nil {
		t.Fatal(err)
	}
	if err := cw.u64s(d.Tags); err != nil {
		t.Fatal(err)
	}
	if err := cw.bools(d.Valid); err != nil {
		t.Fatal(err)
	}
	if err := cw.bools(d.Dirty); err != nil {
		t.Fatal(err)
	}
	if err := cw.u64s(d.LastUsed); err != nil {
		t.Fatal(err)
	}
}

// writeV2PredDelta emits a predictor delta in the v2 layout (no grain
// fields).
func writeV2PredDelta(t *testing.T, cw *codecWriter, d *bpred.Delta) {
	t.Helper()
	for _, v := range []uint64{uint64(d.N), uint64(d.BTBN)} {
		if err := cw.u64(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.u32s(d.TblBlocks); err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]uint8{d.Bimodal, d.Gshare, d.Chooser} {
		if err := cw.bytes(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.u64(d.History); err != nil {
		t.Fatal(err)
	}
	if err := cw.u32s(d.BTBBlocks); err != nil {
		t.Fatal(err)
	}
	for _, u := range [][]uint64{d.BTBTags, d.BTBTgts, d.BTBLRU} {
		if err := cw.u64s(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.bools(d.BTBValid); err != nil {
		t.Fatal(err)
	}
	if err := cw.u64(d.BTBStamp); err != nil {
		t.Fatal(err)
	}
	if err := cw.u64s(d.RAS); err != nil {
		t.Fatal(err)
	}
	if err := cw.u64(uint64(int64(d.RASTop))); err != nil {
		t.Fatal(err)
	}
}

// writeV2 serializes set exactly as the version-2 writer did: full page
// tables on every unit, unit 0 a warm keyframe, subsequent units warm
// deltas at the v2 granularities, and a warm-keyframe index record.
// set must hold full snapshots (Keyframe=1) so the deltas can be
// derived by diffing.
func writeV2(t *testing.T, path string, k Key, set *Set) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(storeMagic[:]); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(f, binary.LittleEndian, uint32(storeVersionV2)); err != nil {
		t.Fatal(err)
	}
	cw := newCodecWriter(f)
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(storeManifest{Key: k, PopulationUnits: set.PopulationUnits}); err != nil {
		t.Fatal(err)
	}
	if err := cw.bytes(blob.Bytes()); err != nil {
		t.Fatal(err)
	}

	prevPages := make(map[*[mem.PageSize]byte]uint64)
	var nextPage uint64
	var keyframes []uint64
	for i, u := range set.Units {
		if u.Warm == nil || u.Mem == nil {
			t.Fatal("writeV2 needs full snapshots (capture with Keyframe=1)")
		}
		var nums, refs []uint64
		cur := make(map[*[mem.PageSize]byte]uint64)
		u.Mem.VisitPages(func(num uint64, data *[mem.PageSize]byte) {
			id, ok := prevPages[data]
			if !ok {
				id = nextPage
				nextPage++
				if err := cw.u64(recPage); err != nil {
					t.Fatal(err)
				}
				if err := cw.bytes(data[:]); err != nil {
					t.Fatal(err)
				}
			}
			cur[data] = id
			nums = append(nums, num)
			refs = append(refs, id)
		})
		prevPages = cur
		if err := cw.u64(recUnit); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			keyframes = append(keyframes, uint64(i))
			writeUnitPreV3(t, cw, u, nums, refs)
			continue
		}
		// Delta unit: the v1/v2 header fields, then the v2 warm delta.
		for _, v := range []uint64{u.Index, u.Start, u.LaunchAt} {
			if err := cw.u64(v); err != nil {
				t.Fatal(err)
			}
		}
		arch := u.Arch
		if err := cw.u64s(arch.Regs[:]); err != nil {
			t.Fatal(err)
		}
		for _, v := range []uint64{arch.PC, arch.Count} {
			if err := cw.u64(v); err != nil {
				t.Fatal(err)
			}
		}
		halted := uint64(0)
		if arch.Halted {
			halted = 1
		}
		if err := cw.u64(halted); err != nil {
			t.Fatal(err)
		}
		if err := cw.u64s(nums); err != nil {
			t.Fatal(err)
		}
		if err := cw.u64s(refs); err != nil {
			t.Fatal(err)
		}
		if err := cw.u64(warmDelta); err != nil {
			t.Fatal(err)
		}
		prev, cur2 := set.Units[i-1].Warm, u.Warm
		for _, pair := range [][2]*cache.State{
			{prev.Hier.IL1, cur2.Hier.IL1}, {prev.Hier.DL1, cur2.Hier.DL1},
			{prev.Hier.L2, cur2.Hier.L2}, {prev.Hier.ITLB, cur2.Hier.ITLB},
			{prev.Hier.DTLB, cur2.Hier.DTLB},
		} {
			writeV2CacheDelta(t, cw, diffCacheState(pair[0], pair[1]))
		}
		writeV2PredDelta(t, cw, diffPredState(prev.Pred, cur2.Pred))
	}
	if err := cw.u64(recKeyIdx); err != nil {
		t.Fatal(err)
	}
	if err := cw.u64s(keyframes); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{recEnd, uint64(len(set.Units)), set.SweepInsts, uint64(int64(set.SweepTime))} {
		if err := cw.u64(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreReadsV2Entries verifies the current reader loads a
// hand-written version-2 entry — full page tables, warm delta chains at
// the old compiled-in granularities, warm-keyframe index — and that
// every loaded unit materializes to exactly the captured launch state.
func TestStoreReadsV2Entries(t *testing.T) {
	spec, err := program.ByName("gccx")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Generate(spec, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.Config8Way()
	// Keyframe=1 captures full snapshots; writeV2 derives the deltas.
	params := Params{U: 1000, W: 1000, K: 10, FunctionalWarm: true, Keyframe: 1}
	set, err := Capture(context.Background(), p, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Units) < 5 {
		t.Fatalf("want >= 5 units, got %d", len(set.Units))
	}

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor(p, cfg, params)
	writeV2(t, store.path(key), key, set)

	loaded, err := store.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("v2 entry not loaded")
	}
	if len(loaded.Units) != len(set.Units) {
		t.Fatalf("loaded %d units, saved %d", len(loaded.Units), len(set.Units))
	}
	sawDelta := false
	for i, u := range loaded.Units {
		want := set.Units[i]
		if u.Index != want.Index || u.Arch != want.Arch {
			t.Fatalf("unit %d differs after v2 load", i)
		}
		if u.Mem == nil {
			t.Fatalf("unit %d: v2 units carry full page tables", i)
		}
		if u.Delta != nil {
			sawDelta = true
		}
		launch, err := u.Materialize()
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		if launch.Warm == nil || !reflect.DeepEqual(launch.Warm.Hier, want.Warm.Hier) ||
			!reflect.DeepEqual(launch.Warm.Pred, want.Warm.Pred) {
			t.Fatalf("unit %d warm state differs after v2 load + materialize", i)
		}
	}
	if !sawDelta {
		t.Fatal("hand-written v2 entry decoded no delta units; the compat path was not exercised")
	}

	// A v2 entry round-trips through Save (re-keyframed to v3) without
	// losing state.
	store2, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store2.Save(key, loaded); err != nil {
		t.Fatal(err)
	}
	reloaded, err := store2.Load(key)
	if err != nil || reloaded == nil {
		t.Fatalf("resave of v2-loaded set failed: %v", err)
	}
	for i := range set.Units {
		launch, err := reloaded.Units[i].Materialize()
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		if !reflect.DeepEqual(launch.Warm.Hier, set.Units[i].Warm.Hier) {
			t.Fatalf("unit %d hierarchy differs after v2→v3 resave", i)
		}
	}
}
