package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runHotpath turns the runtime AllocsPerRun pins on the sweep fast
// paths into compile-time diagnostics. A function annotated
// //simlint:hotpath must contain no construct that can allocate or
// add dynamic dispatch on the per-instruction path:
//
//   - closures, defer, go statements;
//   - map and slice literals, &composite{} heap literals, make/new;
//   - append;
//   - any fmt.* call;
//   - conversions of concrete values to interface types (boxing);
//   - calls to functions that are not themselves //simlint:hotpath,
//     not declared //simlint:coldpath <reason> (a rare path the hot
//     function amortizes away), and not in a small intrinsic
//     allowlist (builtins, encoding/binary loads, math bit casts,
//     math/bits).
//
// Plain struct-value composite literals are allowed: they live on the
// stack unless some other flagged construct makes them escape.
// A statement inside a hot function may be marked //simlint:coldpath
// <reason> to declare an explicit rare path (e.g. an architectural
// fault return); its subtree is then exempt.
func runHotpath(m *Module, cfg Config, pkg *Package) []Diag {
	var diags []Diag
	for fi, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			dir := pkg.funcDirective(m.Fset, fi, fd)
			if dir == nil || dir.Verb != "hotpath" {
				continue
			}
			hc := &hotChecker{m: m, pkg: pkg, fi: fi, fd: fd}
			hc.stmt(fd.Body)
			diags = append(diags, hc.diags...)
		}
	}
	return diags
}

type hotChecker struct {
	m     *Module
	pkg   *Package
	fi    int
	fd    *ast.FuncDecl
	diags []Diag
}

func (hc *hotChecker) report(pos token.Pos, msg string) {
	hc.diags = append(hc.diags, Diag{
		Pos:      hc.m.Fset.Position(pos),
		Analyzer: "hotpath",
		Message:  msg + " in hot-path function " + hc.fd.Name.Name,
	})
}

// stmt walks one statement, honoring statement-level coldpath
// directives.
func (hc *hotChecker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	if hc.pkg.directiveAt(hc.m.Fset, hc.fi, s.Pos(), "coldpath") != nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			hc.stmt(sub)
		}
	case *ast.IfStmt:
		hc.stmt(s.Init)
		hc.expr(s.Cond)
		hc.stmt(s.Body)
		hc.stmt(s.Else)
	case *ast.ForStmt:
		hc.stmt(s.Init)
		hc.expr(s.Cond)
		hc.stmt(s.Post)
		hc.stmt(s.Body)
	case *ast.RangeStmt:
		hc.expr(s.X)
		hc.stmt(s.Body)
	case *ast.SwitchStmt:
		hc.stmt(s.Init)
		hc.expr(s.Tag)
		hc.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		hc.stmt(s.Init)
		hc.stmt(s.Assign)
		hc.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			hc.expr(e)
		}
		for _, sub := range s.Body {
			hc.stmt(sub)
		}
	case *ast.DeferStmt:
		hc.report(s.Pos(), "defer")
	case *ast.GoStmt:
		hc.report(s.Pos(), "go statement")
	case *ast.SendStmt:
		hc.expr(s.Chan)
		hc.expr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			hc.expr(e)
		}
		for i, lhs := range s.Lhs {
			hc.expr(lhs)
			if i < len(s.Rhs) {
				hc.checkBoxing(lhs, s.Rhs[i])
			}
		}
	case *ast.ReturnStmt:
		results := hc.fd.Type.Results
		for i, e := range s.Results {
			hc.expr(e)
			if results != nil && len(s.Results) == countFields(results) {
				if rt := fieldTypeAt(hc.pkg, results, i); rt != nil {
					hc.checkBoxingType(rt, e)
				}
			}
		}
	case *ast.ExprStmt:
		hc.expr(s.X)
	case *ast.IncDecStmt:
		hc.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						hc.expr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		hc.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	case *ast.SelectStmt:
		hc.report(s.Pos(), "select")
	default:
		// Conservative: walk any unhandled statement's expressions.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				hc.expr(e)
				return false
			}
			return true
		})
	}
}

func (hc *hotChecker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		hc.report(e.Pos(), "closure")
	case *ast.CompositeLit:
		hc.compositeLit(e, false)
	case *ast.UnaryExpr:
		if cl, ok := e.X.(*ast.CompositeLit); ok && e.Op == token.AND {
			hc.compositeLit(cl, true)
			return
		}
		hc.expr(e.X)
	case *ast.CallExpr:
		hc.call(e)
	case *ast.BinaryExpr:
		hc.expr(e.X)
		hc.expr(e.Y)
	case *ast.ParenExpr:
		hc.expr(e.X)
	case *ast.SelectorExpr:
		hc.expr(e.X)
	case *ast.IndexExpr:
		hc.expr(e.X)
		hc.expr(e.Index)
	case *ast.SliceExpr:
		hc.expr(e.X)
		hc.expr(e.Low)
		hc.expr(e.High)
		hc.expr(e.Max)
	case *ast.StarExpr:
		hc.expr(e.X)
	case *ast.TypeAssertExpr:
		hc.expr(e.X)
	}
}

func (hc *hotChecker) compositeLit(cl *ast.CompositeLit, addressed bool) {
	tv, ok := hc.pkg.Info.Types[cl]
	if ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			hc.report(cl.Pos(), "map literal")
		case *types.Slice:
			hc.report(cl.Pos(), "slice literal")
		default:
			if addressed {
				hc.report(cl.Pos(), "&composite literal (heap allocation)")
			}
		}
	}
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			hc.expr(kv.Value)
			continue
		}
		hc.expr(el)
	}
}

func (hc *hotChecker) call(call *ast.CallExpr) {
	for _, a := range call.Args {
		hc.expr(a)
	}
	// Type conversion?
	if tv, ok := hc.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			hc.checkBoxingType(tv.Type, call.Args[0])
		}
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := hc.pkg.Info.Uses[fun]
		if b, ok := obj.(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "copy", "min", "max", "real", "imag":
			case "append":
				hc.report(call.Pos(), "append")
			case "make", "new":
				hc.report(call.Pos(), b.Name()+" (heap allocation)")
			default:
				hc.report(call.Pos(), "builtin "+b.Name())
			}
			return
		}
		hc.callee(call, obj)
	case *ast.SelectorExpr:
		hc.expr(fun.X)
		obj := hc.pkg.Info.Uses[fun.Sel]
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			hc.report(call.Pos(), "fmt."+fun.Sel.Name+" call")
			return
		}
		hc.callee(call, obj)
	case *ast.FuncLit:
		hc.report(call.Pos(), "closure call")
	default:
		hc.report(call.Pos(), "dynamic call")
	}
	// Boxing at the call boundary: concrete arguments passed to
	// interface parameters.
	if sig, ok := callSignature(hc.pkg, call); ok && sig != nil {
		params := sig.Params()
		for i, arg := range call.Args {
			pi := i
			if sig.Variadic() && pi >= params.Len()-1 {
				pi = params.Len() - 1
				if st, ok := params.At(pi).Type().(*types.Slice); ok {
					hc.checkBoxingType(st.Elem(), arg)
					continue
				}
			}
			if pi < params.Len() {
				hc.checkBoxingType(params.At(pi).Type(), arg)
			}
		}
	}
}

// callee checks that a resolved call target is admissible on the hot
// path: another hotpath function, a declared coldpath function, or an
// intrinsic.
func (hc *hotChecker) callee(call *ast.CallExpr, obj types.Object) {
	fn, ok := obj.(*types.Func)
	if !ok {
		hc.report(call.Pos(), "dynamic call through "+describeCallTarget(obj))
		return
	}
	if intrinsicFunc(fn) {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			hc.report(call.Pos(), "interface method call "+fn.Name())
			return
		}
	}
	if d := hc.m.funcDirectives[fn]; d != nil {
		return // hotpath or coldpath callee — both admissible
	}
	hc.report(call.Pos(), "call to non-hot-path function "+fn.Name()+" (annotate it //simlint:hotpath or //simlint:coldpath <reason>)")
}

func describeCallTarget(obj types.Object) string {
	if obj == nil {
		return "unresolved target"
	}
	return "function value " + obj.Name()
}

// intrinsicFunc is the allowlist of stdlib helpers the compiler
// reliably inlines or that never allocate: binary loads, float bit
// casts, and math/bits.
func intrinsicFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "encoding/binary":
		return true // LittleEndian/BigEndian fixed-width loads and stores
	case "math/bits":
		return true
	case "math":
		switch fn.Name() {
		case "Float64bits", "Float64frombits", "Float32bits", "Float32frombits", "Abs":
			return true
		}
	}
	return false
}

// checkBoxing flags an assignment of a concrete value into an
// interface-typed destination.
func (hc *hotChecker) checkBoxing(lhs, rhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	tv, ok := hc.pkg.Info.Types[lhs]
	if !ok || tv.Type == nil {
		return
	}
	hc.checkBoxingType(tv.Type, rhs)
}

func (hc *hotChecker) checkBoxingType(dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := hc.pkg.Info.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return // interface-to-interface, no boxing of a new value
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	hc.report(src.Pos(), "conversion of "+tv.Type.String()+" to interface (boxing)")
}

// callSignature resolves the signature of a (non-conversion,
// non-builtin) call expression.
func callSignature(pkg *Package, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

func countFields(fl *ast.FieldList) int {
	n := 0
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// fieldTypeAt returns the type of result i in a result list.
func fieldTypeAt(pkg *Package, fl *ast.FieldList, i int) types.Type {
	idx := 0
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		if i < idx+n {
			if tv, ok := pkg.Info.Types[f.Type]; ok {
				return tv.Type
			}
			return nil
		}
		idx += n
	}
	return nil
}
