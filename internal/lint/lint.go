// Package lint implements simlint, the project-invariant static
// analyzer suite behind `go run ./cmd/simlint ./...`.
//
// The repository's value proposition rests on invariants the compiler
// does not check: reports must be bit-identical at any (machine ×
// worker) count, the warming sweep must run at zero allocations per
// instruction, every blocking layer must thread context.Context, and
// the content-addressed checkpoint store key must cover every field
// that changes what a sweep captures. Each analyzer here turns one of
// those invariants into a build-time diagnostic:
//
//   - determinism: in bit-identity-critical packages, flags map
//     iteration that folds into order-sensitive results, wall-clock
//     reads (time.Now/Since), and the global math/rand source.
//   - hotpath: functions annotated //simlint:hotpath must stay
//     allocation-free — no closures, defer, heap composites, append,
//     fmt, or calls outside the hot-path/intrinsic set.
//   - ctx: exported functions in the blocking layers must take
//     context.Context first, never mint context.Background(), and
//     check ctx inside long loops.
//   - storekey: every field of a struct annotated //simlint:keystruct
//     must be referenced by the named key-hash function(s) or carry a
//     //simlint:nonkey reason — so growing the plan or the warm
//     geometry without extending the store key fails the build
//     instead of silently poisoning the checkpoint cache.
//   - errwrap: fmt.Errorf with an error operand must use %w, and the
//     store/journal/dist code must not discard error returns with
//     `_ =`.
//
// The suite is stdlib-only: packages are parsed with go/parser and
// type-checked with go/types using the source importer, so the module
// stays dependency-free. See the package doc of the repository root
// (doc.go) for the annotation grammar and when a suppression reason
// is acceptable.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config scopes a lint run. The zero value of the package lists
// selects the repository defaults; tests override them to point the
// analyzers at synthetic testdata packages.
type Config struct {
	// Dir is any directory inside the target module.
	Dir string

	// DeterminismPkgs lists the bit-identity-critical package import
	// paths the determinism analyzer covers.
	DeterminismPkgs []string
	// CtxPkgs lists the blocking-layer package import paths the ctx
	// analyzer covers.
	CtxPkgs []string
	// ErrDiscardPkgs lists the package import paths where discarding
	// an error return with a blank identifier is flagged.
	ErrDiscardPkgs []string
}

// Repository defaults for the analyzer package scopes.
var (
	defaultDeterminismPkgs = []string{
		"repro/internal/engine",
		"repro/internal/dist",
		"repro/internal/checkpoint",
		"repro/internal/stats",
		"repro/sim",
	}
	defaultCtxPkgs = []string{
		"repro/sim",
		"repro/internal/engine",
		"repro/internal/checkpoint",
		"repro/internal/dist",
	}
	defaultErrDiscardPkgs = []string{
		"repro/internal/checkpoint",
		"repro/internal/dist",
	}
)

// Diag is one diagnostic: a position, the analyzer that produced it,
// and the message.
type Diag struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	FileNames  []string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	imports []string
	// directives maps file index -> line -> directive parsed from that
	// file's //simlint: comments.
	directives []map[int]*Directive
}

// Module is a loaded, type-checked module: every non-test package
// under the module root.
type Module struct {
	Path string
	Root string
	Fset *token.FileSet
	Pkgs map[string]*Package

	// funcDirectives maps a function object to the simlint directive
	// on its declaration (hotpath/coldpath), for cross-package callee
	// checks.
	funcDirectives map[*types.Func]*Directive
	// funcDecls indexes every function declaration in the module by
	// bare name, for the storekey analyzer's hash-function lookup.
	funcDecls map[string][]funcDecl
}

type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Load parses and type-checks every non-test package in the module
// containing cfg.Dir. Type errors are returned as diagnostics: the
// analyzers require compile-clean input.
func Load(cfg Config) (*Module, []Diag, error) {
	root, modPath, err := findModule(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	m := &Module{
		Path:           modPath,
		Root:           root,
		Fset:           token.NewFileSet(),
		Pkgs:           map[string]*Package{},
		funcDirectives: map[*types.Func]*Directive{},
		funcDecls:      map[string][]funcDecl{},
	}
	if err := m.parseTree(); err != nil {
		return nil, nil, err
	}
	diags, err := m.typeCheck()
	if err != nil {
		return nil, nil, err
	}
	m.indexDecls()
	return m, diags, nil
}

// findModule walks upward from dir to the enclosing go.mod and
// returns the module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// parseTree walks the module root and parses every non-test package.
func (m *Module) parseTree() error {
	return filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// A nested module is a separate unit; skip it.
		if path != m.Root {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		return m.parseDir(path)
	})
}

func (m *Module) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		full := filepath.Join(dir, n)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		names = append(names, full)
	}
	if len(files) == 0 {
		return nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	imp := m.Path
	if rel != "." {
		imp = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{ImportPath: imp, Dir: dir, Files: files, FileNames: names}
	for _, f := range files {
		for _, is := range f.Imports {
			p := strings.Trim(is.Path.Value, `"`)
			if p == m.Path || strings.HasPrefix(p, m.Path+"/") {
				pkg.imports = append(pkg.imports, p)
			}
		}
		pkg.directives = append(pkg.directives, parseDirectives(m.Fset, f))
	}
	m.Pkgs[imp] = pkg
	return nil
}

// typeCheck type-checks the module packages in dependency order. The
// source importer supplies stdlib packages; module-internal imports
// resolve to already-checked packages.
func (m *Module) typeCheck() ([]Diag, error) {
	order, err := m.topoOrder()
	if err != nil {
		return nil, err
	}
	src := importer.ForCompiler(m.Fset, "source", nil).(types.ImporterFrom)
	var diags []Diag
	for _, imp := range order {
		pkg := m.Pkgs[imp]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{
			Importer: &moduleImporter{mod: m, fallback: src},
			Error: func(err error) {
				if te, ok := err.(types.Error); ok {
					diags = append(diags, Diag{
						Pos:      te.Fset.Position(te.Pos),
						Analyzer: "typecheck",
						Message:  te.Msg,
					})
				}
			},
		}
		tp, _ := conf.Check(imp, m.Fset, pkg.Files, info)
		pkg.Types = tp
		pkg.Info = info
	}
	return diags, nil
}

func (m *Module) topoOrder() ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(string) error
	visit = func(imp string) error {
		switch state[imp] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", imp)
		case 2:
			return nil
		}
		state[imp] = 1
		if pkg := m.Pkgs[imp]; pkg != nil {
			for _, dep := range pkg.imports {
				if err := visit(dep); err != nil {
					return err
				}
			}
			order = append(order, imp)
		}
		state[imp] = 2
		return nil
	}
	var all []string
	for imp := range m.Pkgs {
		all = append(all, imp)
	}
	sort.Strings(all)
	for _, imp := range all {
		if err := visit(imp); err != nil {
			return nil, err
		}
	}
	return order, nil
}

type moduleImporter struct {
	mod      *Module
	fallback types.ImporterFrom
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := mi.mod.Pkgs[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: internal import %s not yet checked", path)
		}
		return pkg.Types, nil
	}
	return mi.fallback.ImportFrom(path, dir, mode)
}

// indexDecls builds the module-wide function directive and name
// indexes the analyzers consult across package boundaries.
func (m *Module) indexDecls() {
	for _, pkg := range m.Pkgs {
		for fi, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				m.funcDecls[fd.Name.Name] = append(m.funcDecls[fd.Name.Name], funcDecl{pkg: pkg, decl: fd})
				dir := pkg.funcDirective(m.Fset, fi, fd)
				if dir == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && obj != nil {
					m.funcDirectives[obj] = dir
				}
			}
		}
	}
}

// An Analyzer checks one package of a loaded module.
type Analyzer struct {
	Name string
	Run  func(m *Module, cfg Config, pkg *Package) []Diag
}

// Analyzers is the simlint suite in reporting order.
var Analyzers = []*Analyzer{
	{Name: "directive", Run: runDirectiveCheck},
	{Name: "determinism", Run: runDeterminism},
	{Name: "hotpath", Run: runHotpath},
	{Name: "ctx", Run: runCtx},
	{Name: "storekey", Run: runStorekey},
	{Name: "errwrap", Run: runErrwrap},
}

// Run loads the module around cfg.Dir and applies the full analyzer
// suite, returning diagnostics sorted by position.
func Run(cfg Config) ([]Diag, error) {
	if len(cfg.DeterminismPkgs) == 0 {
		cfg.DeterminismPkgs = defaultDeterminismPkgs
	}
	if len(cfg.CtxPkgs) == 0 {
		cfg.CtxPkgs = defaultCtxPkgs
	}
	if len(cfg.ErrDiscardPkgs) == 0 {
		cfg.ErrDiscardPkgs = defaultErrDiscardPkgs
	}
	mod, diags, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	if len(diags) > 0 {
		// Type errors poison analysis; report them alone.
		sortDiags(diags)
		return diags, nil
	}
	var imps []string
	for imp := range mod.Pkgs {
		imps = append(imps, imp)
	}
	sort.Strings(imps)
	for _, imp := range imps {
		pkg := mod.Pkgs[imp]
		for _, a := range Analyzers {
			diags = append(diags, a.Run(mod, cfg, pkg)...)
		}
	}
	sortDiags(diags)
	return diags, nil
}

func sortDiags(diags []Diag) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
