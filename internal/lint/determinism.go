package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runDeterminism enforces bit-identity discipline in the critical
// packages: reports folded from map iteration depend on Go's
// randomized iteration order, and wall-clock or global-PRNG reads
// inject machine-local state. Three checks:
//
//  1. `range` over a map whose body appends to a slice, sends on a
//     channel, writes output, or accumulates into an order-sensitive
//     (float or string) outer variable — except the collect-then-sort
//     idiom, where the appended slice is passed to a sort/slices
//     ordering call later in the same function;
//  2. time.Now / time.Since / time.Until calls;
//  3. package-level math/rand functions (the global source).
//
// Suppress intentional sites with //simlint:ordered <reason> on the
// statement or the enclosing function: valid reasons are outputs that
// are sorted before use, wall-clock telemetry never folded into
// estimates, and lease/retry timers.
func runDeterminism(m *Module, cfg Config, pkg *Package) []Diag {
	if !contains(cfg.DeterminismPkgs, pkg.ImportPath) {
		return nil
	}
	var diags []Diag
	report := func(pos token.Pos, f *ast.File, msg string) {
		if pkg.suppressedAt(m.Fset, pos, enclosingFunc(f, pos), "ordered") {
			return
		}
		diags = append(diags, Diag{Pos: m.Fset.Position(pos), Analyzer: "determinism", Message: msg})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						if msg := orderSensitiveFold(pkg, n, enclosingFunc(f, n.Pos())); msg != "" {
							report(n.Pos(), f, "map iteration "+msg+" (iteration order is randomized; sort keys first or restructure)")
						}
					}
				}
			case *ast.CallExpr:
				if name, ok := stdlibCall(pkg, n, "time"); ok {
					switch name {
					case "Now", "Since", "Until":
						report(n.Pos(), f, "time."+name+" in a determinism-critical package (wall clock must not shape results)")
					}
				}
				if name, ok := stdlibCall(pkg, n, "math/rand"); ok {
					switch name {
					case "New", "NewSource", "NewZipf":
						// Constructing an explicitly seeded local source is
						// the sanctioned pattern.
					default:
						report(n.Pos(), f, "global math/rand."+name+" (seed a local rand.New(rand.NewSource(...)) instead)")
					}
				}
			}
			return true
		})
	}
	return diags
}

// orderSensitiveFold inspects a range-over-map body and returns a
// description of the first order-sensitive fold it finds, or "".
func orderSensitiveFold(pkg *Package, rng *ast.RangeStmt, fd *ast.FuncDecl) string {
	var msg string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					if len(n.Args) > 0 && sortedAfter(pkg, fd, rootObj(pkg, n.Args[0]), rng.End()) {
						return true // collect-then-sort idiom
					}
					msg = "appends into a result"
					return false
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isOutputCall(pkg, sel) {
					msg = "writes output via " + sel.Sel.Name
					return false
				}
			}
		case *ast.SendStmt:
			msg = "sends on a channel"
			return false
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				// `x = x <op> v` self-accumulation on order-sensitive types.
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && orderSensitiveType(pkg, lhs) &&
						outerVar(pkg, lhs, rng) && mentions(n.Rhs[i], lhs) {
						msg = "accumulates into " + exprString(lhs)
						return false
					}
				}
				return true
			}
			// Compound assignment (+=, -=, ...).
			for _, lhs := range n.Lhs {
				if orderSensitiveType(pkg, lhs) && outerVar(pkg, lhs, rng) {
					msg = "accumulates into " + exprString(lhs)
					return false
				}
			}
		}
		return true
	})
	return msg
}

// rootObj resolves the base object of an ident/selector/index chain,
// or nil.
func rootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		default:
			return nil
		}
	}
}

// sortedAfter reports whether obj is passed to a sort/slices ordering
// call after pos inside fd — the collect-then-sort idiom that makes a
// map-fold append deterministic again.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	if fd == nil || fd.Body == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee, ok := pkg.Info.Uses[sel.Sel]
		if !ok || callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObj(pkg, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// orderSensitiveType reports whether accumulating into e across an
// unordered iteration can change the result bits: floating point
// (non-associative) and strings (concatenation order).
func orderSensitiveType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// outerVar reports whether the root object of e is declared outside
// the range statement (an accumulator that survives the loop).
func outerVar(pkg *Package, e ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		default:
			return false
		}
	}
}

// mentions reports whether expr syntactically contains a reference to
// the same identifier chain as target.
func mentions(expr, target ast.Expr) bool {
	want := exprString(target)
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && exprString(e) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprString renders simple identifier/selector chains for messages
// and structural comparison; other shapes render as "".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// isOutputCall reports whether sel is a write to an output sink:
// fmt print family or a Write*/Print* method.
func isOutputCall(pkg *Package, sel *ast.SelectorExpr) bool {
	if obj, ok := pkg.Info.Uses[sel.Sel]; ok && obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Println", "Print":
		// A method write on an io.Writer-ish receiver inside a map fold
		// emits in iteration order.
		if _, ok := pkg.Info.Selections[sel]; ok {
			return true
		}
	}
	return false
}

// stdlibCall resolves a call expression to (name, true) when it calls
// the package-level function name of the stdlib package path.
func stdlibCall(pkg *Package, call *ast.CallExpr, path string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pkg.Info.Uses[sel.Sel]
	if !ok || obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != path {
		return "", false
	}
	if _, isSelection := pkg.Info.Selections[sel]; isSelection {
		return "", false // method call, not a package-level function
	}
	return sel.Sel.Name, true
}
