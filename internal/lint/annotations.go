package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //simlint:<verb> [args...] comment. The
// grammar (documented in the repository root doc.go):
//
//	//simlint:hotpath
//	//simlint:coldpath <reason>
//	//simlint:ordered <reason>
//	//simlint:noctx <reason>
//	//simlint:nonkey <reason>
//	//simlint:keystruct <Func> [<Func>...]
//	//simlint:nowrap <reason>
//	//simlint:discard <reason>
//
// Every suppression verb requires a reason string; hotpath marks an
// obligation rather than a suppression and takes none; keystruct
// names the key-hash function(s) its struct must be covered by.
type Directive struct {
	Verb string
	// Args is the remainder after the verb: a reason string, or for
	// keystruct the hash-function names.
	Args string
	Pos  token.Pos
	Line int
}

const directivePrefix = "//simlint:"

// reasonRequired reports whether the verb demands a non-empty reason.
func reasonRequired(verb string) bool {
	switch verb {
	case "hotpath", "keystruct":
		return false
	}
	return true
}

func knownVerb(verb string) bool {
	switch verb {
	case "hotpath", "coldpath", "ordered", "noctx", "nonkey", "keystruct", "nowrap", "discard":
		return true
	}
	return false
}

// parseDirectives extracts every simlint directive in f, keyed by the
// line the comment sits on.
func parseDirectives(fset *token.FileSet, f *ast.File) map[int]*Directive {
	out := map[int]*Directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, args, _ := strings.Cut(text, " ")
			line := fset.Position(c.Pos()).Line
			out[line] = &Directive{
				Verb: verb,
				Args: strings.TrimSpace(args),
				Pos:  c.Pos(),
				Line: line,
			}
		}
	}
	return out
}

// fileIndex returns the index of the file containing pos, or -1.
func (p *Package) fileIndex(fset *token.FileSet, pos token.Pos) int {
	name := fset.Position(pos).Filename
	for i, fn := range p.FileNames {
		if fn == name {
			return i
		}
	}
	return -1
}

// directiveAt returns a directive attached to the node starting at
// pos: on the same line, or alone on the line immediately above.
func (p *Package) directiveAt(fset *token.FileSet, fi int, pos token.Pos, verb string) *Directive {
	if fi < 0 || fi >= len(p.directives) {
		return nil
	}
	line := fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		if d := p.directives[fi][l]; d != nil && d.Verb == verb {
			return d
		}
	}
	return nil
}

// funcDirective returns the hotpath or coldpath directive on a
// function declaration: in its doc comment or on its first line.
func (p *Package) funcDirective(fset *token.FileSet, fi int, fd *ast.FuncDecl) *Directive {
	for _, verb := range [2]string{"hotpath", "coldpath"} {
		if d := p.directiveAt(fset, fi, fd.Pos(), verb); d != nil {
			return d
		}
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if text, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
					v, args, _ := strings.Cut(text, " ")
					if v == verb {
						return &Directive{Verb: v, Args: strings.TrimSpace(args), Pos: c.Pos(), Line: fset.Position(c.Pos()).Line}
					}
				}
			}
		}
	}
	return nil
}

// suppressedAt reports whether a diagnostic at pos is suppressed by a
// directive with the given verb on the same line, the line above, or
// the enclosing function declaration (fd may be nil).
func (p *Package) suppressedAt(fset *token.FileSet, pos token.Pos, fd *ast.FuncDecl, verb string) bool {
	fi := p.fileIndex(fset, pos)
	if d := p.directiveAt(fset, fi, pos, verb); d != nil {
		return true
	}
	if fd != nil {
		if d := p.directiveAt(fset, fi, fd.Pos(), verb); d != nil {
			return true
		}
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if text, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
					v, _, _ := strings.Cut(text, " ")
					if v == verb {
						return true
					}
				}
			}
		}
	}
	return false
}

// runDirectiveCheck validates the directives themselves: unknown
// verbs and missing reasons are diagnostics, so a suppression can
// never silently misfire.
func runDirectiveCheck(m *Module, cfg Config, pkg *Package) []Diag {
	var diags []Diag
	for _, fileDirs := range pkg.directives {
		for _, d := range fileDirs {
			switch {
			case !knownVerb(d.Verb):
				diags = append(diags, Diag{
					Pos:      m.Fset.Position(d.Pos),
					Analyzer: "directive",
					Message:  "unknown simlint directive " + d.Verb,
				})
			case reasonRequired(d.Verb) && d.Args == "":
				diags = append(diags, Diag{
					Pos:      m.Fset.Position(d.Pos),
					Analyzer: "directive",
					Message:  "simlint:" + d.Verb + " requires a reason",
				})
			case d.Verb == "keystruct" && d.Args == "":
				diags = append(diags, Diag{
					Pos:      m.Fset.Position(d.Pos),
					Analyzer: "directive",
					Message:  "simlint:keystruct must name the key-hash function(s)",
				})
			}
		}
	}
	return diags
}

// enclosingFunc returns the function declaration in f whose body
// spans pos, or nil.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
