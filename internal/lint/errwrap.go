package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// runErrwrap enforces error-chain hygiene:
//
//  1. module-wide, fmt.Errorf with an error operand must wrap it with
//     %w — a %v/%s severs the chain, breaking errors.Is/As matching
//     that the store's corruption-degrades-to-miss paths and the dist
//     retry policy rely on (suppress with //simlint:nowrap <reason>
//     when flattening is intended, e.g. log-only rendering);
//  2. in the store/journal and fleet packages, assigning an error
//     return to the blank identifier is flagged — those layers must
//     either handle, wrap, or explicitly justify dropping an error
//     with //simlint:discard <reason>.
func runErrwrap(m *Module, cfg Config, pkg *Package) []Diag {
	var diags []Diag
	strict := contains(cfg.ErrDiscardPkgs, pkg.ImportPath)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if msg := errorfViolation(pkg, n); msg != "" {
					if !pkg.suppressedAt(m.Fset, n.Pos(), enclosingFunc(f, n.Pos()), "nowrap") {
						diags = append(diags, Diag{Pos: m.Fset.Position(n.Pos()), Analyzer: "errwrap", Message: msg})
					}
				}
			case *ast.AssignStmt:
				if !strict {
					return true
				}
				for _, msg := range discardedErrors(pkg, n) {
					if !pkg.suppressedAt(m.Fset, n.Pos(), enclosingFunc(f, n.Pos()), "discard") {
						diags = append(diags, Diag{Pos: m.Fset.Position(n.Pos()), Analyzer: "errwrap", Message: msg})
					}
				}
			}
			return true
		})
	}
	return diags
}

// errorfViolation checks a fmt.Errorf call: every error-typed operand
// must be formatted with %w.
func errorfViolation(pkg *Package, call *ast.CallExpr) string {
	name, ok := stdlibCall(pkg, call, "fmt")
	if !ok || name != "Errorf" || len(call.Args) < 2 {
		return ""
	}
	format, ok := stringConstant(pkg, call.Args[0])
	if !ok {
		return ""
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		tv, ok := pkg.Info.Types[arg]
		if !ok || tv.Type == nil || !implementsError(tv.Type) {
			continue
		}
		switch verbs[i] {
		case 'w':
			// correct
		case 'v', 's':
			return "fmt.Errorf formats an error operand with %" + string(verbs[i]) +
				"; use %w so errors.Is/As keep matching the cause"
		}
	}
	return ""
}

func stringConstant(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs extracts the argument-consuming verb letters of a
// format string, in order.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision, argument indexes.
		for i < len(format) && strings.IndexByte("+-# 0123456789.[]*", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}

// discardedErrors flags `_ = f()` / `x, _ := f()` where the blank
// position is an error return.
func discardedErrors(pkg *Package, assign *ast.AssignStmt) []string {
	var msgs []string
	blankAt := func(i int) bool {
		id, ok := assign.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// Tuple assignment from one call.
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		tv, ok := pkg.Info.Types[call]
		if !ok {
			return nil
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return nil
		}
		for i := 0; i < tuple.Len() && i < len(assign.Lhs); i++ {
			if blankAt(i) && implementsError(tuple.At(i).Type()) {
				msgs = append(msgs, "error return discarded with _ (handle it, or annotate //simlint:discard <reason>)")
			}
		}
		return msgs
	}
	for i := range assign.Lhs {
		if i >= len(assign.Rhs) || !blankAt(i) {
			continue
		}
		if _, ok := assign.Rhs[i].(*ast.CallExpr); !ok {
			continue
		}
		tv, ok := pkg.Info.Types[assign.Rhs[i]]
		if !ok || tv.Type == nil {
			continue
		}
		if implementsError(tv.Type) {
			msgs = append(msgs, "error return discarded with _ (handle it, or annotate //simlint:discard <reason>)")
		}
	}
	return msgs
}
