package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches expectation comments in testdata sources:
//
//	// want determinism `appends into a result`
//	// want-1 storekey `unknown key-hash function`
//
// The optional -N offset anchors the expectation N lines above the
// comment, for diagnostics that land on directive lines where no
// trailing comment can go.
var wantRe = regexp.MustCompile("// want(-[0-9]+)? ([a-z]+) `([^`]+)`")

type expectation struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
}

// loadExpectations scans every .go file under dir for want comments.
func loadExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	var wants []expectation
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for n := 1; sc.Scan(); n++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				line := n
				if m[1] != "" {
					off, _ := strconv.Atoi(m[1])
					line += off
				}
				wants = append(wants, expectation{
					file: filepath.Base(path), line: line, analyzer: m[2], substr: m[3],
				})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments found under %s", dir)
	}
	return wants
}

// TestAnalyzersOnTestdata runs the full suite over the seeded testmod
// module and requires an exact match between produced diagnostics and
// want comments: every seeded violation fires, every fixed or
// annotated twin stays silent.
func TestAnalyzersOnTestdata(t *testing.T) {
	dir := filepath.Join("testdata", "src", "testmod")
	diags, err := Run(Config{
		Dir:             dir,
		DeterminismPkgs: []string{"testmod/det"},
		CtxPkgs:         []string{"testmod/ctxcheck"},
		ErrDiscardPkgs:  []string{"testmod/errw"},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wants := loadExpectations(t, dir)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				matched[i], found = true, true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic: %s:%d [%s] containing %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
}

// TestPerAnalyzerFires runs each analyzer in isolation over testmod
// and checks it produces at least one diagnostic from its own seed
// package — guarding against an analyzer being silently disabled.
func TestPerAnalyzerFires(t *testing.T) {
	dir := filepath.Join("testdata", "src", "testmod")
	cfg := Config{
		Dir:             dir,
		DeterminismPkgs: []string{"testmod/det"},
		CtxPkgs:         []string{"testmod/ctxcheck"},
		ErrDiscardPkgs:  []string{"testmod/errw"},
	}
	diags, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	for _, a := range []string{"determinism", "hotpath", "ctx", "storekey", "errwrap", "directive"} {
		if byAnalyzer[a] == 0 {
			t.Errorf("analyzer %s produced no diagnostics on its seed package", a)
		}
	}
}

// TestRealModuleClean type-checks and lints the enclosing repository
// module — the same invocation CI runs — and requires zero
// diagnostics. Skipped in -short mode (the source importer compiles
// every dependency from source).
func TestRealModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("source-importer load of the full module is slow")
	}
	diags, err := Run(Config{Dir: filepath.Join("..", "..")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("real module violation: %s", d.String())
	}
	if len(diags) > 0 {
		t.Log("the tree must stay simlint-clean; fix or annotate with a reasoned //simlint directive")
	}
}

// TestDiagString pins the file:line:col rendering format CI greps.
func TestDiagString(t *testing.T) {
	d := Diag{Analyzer: "determinism", Message: "boom"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "x.go", 3, 7
	if got, want := d.String(), "x.go:3:7: [determinism] boom"; got != want {
		t.Fatalf("Diag.String() = %q, want %q", got, want)
	}
}

// TestStorekeyDetectsDroppedReference is the acceptance check from the
// issue: deleting a field reference from a key-hash function must
// produce a storekey diagnostic. It rewrites the testmod hash function
// in a temp copy and re-runs the suite.
func TestStorekeyDetectsDroppedReference(t *testing.T) {
	src := filepath.Join("testdata", "src", "testmod")
	tmp := t.TempDir()
	if err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(tmp, rel)
		if info.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if rel == filepath.Join("storekey", "storekey.go") {
			// Drop the k.A reference from KeyText.
			data = []byte(strings.Replace(string(data),
				`return fmt.Sprintf("a=%s", k.A)`,
				`return fmt.Sprintf("a=%s", "")`, 1))
		}
		return os.WriteFile(dst, data, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	diags, err := Run(Config{
		Dir:             tmp,
		DeterminismPkgs: []string{"testmod/det"},
		CtxPkgs:         []string{"testmod/ctxcheck"},
		ErrDiscardPkgs:  []string{"testmod/errw"},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "field Key.A is not folded into the store key"
	for _, d := range diags {
		if d.Analyzer == "storekey" && strings.Contains(d.Message, want) {
			return
		}
	}
	t.Fatalf("dropping a key-hash field reference produced no storekey diagnostic; got:\n%s", diagDump(diags))
}

func diagDump(diags []Diag) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d.String())
	}
	return b.String()
}
