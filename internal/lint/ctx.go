package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runCtx enforces context discipline in the blocking layers (sim, the
// engine, the checkpoint store, the fleet): every run can be
// cancelled promptly at any depth, which the cancellation matrix
// tests only spot-check. Four rules:
//
//  1. context.Background()/context.TODO() are forbidden outside main
//     packages — a layer that mints its own root context detaches
//     itself from the caller's cancellation. One idiom is exempt: the
//     guarded compatibility default
//
//     if ctx == nil {
//     ctx = context.Background()
//     }
//
//     which only fires when the caller explicitly opted out of
//     cancellation by passing nil;
//
//  2. a function that takes a context.Context must take it first;
//
//  3. an exported function that takes a ctx and loops over work
//     (units, shards, RPCs) must reference the ctx inside the loop —
//     either a ctx.Err()/ctx.Done() check or passing it to a callee;
//
//  4. an exported function that performs file or network I/O must
//     take a context.
//
// Suppress with //simlint:noctx <reason> on the function (or the
// offending statement for rule 1): acceptable reasons are bounded
// single-file metadata operations and detached lifecycle owners
// (servers that outlive any one request).
func runCtx(m *Module, cfg Config, pkg *Package) []Diag {
	if !contains(cfg.CtxPkgs, pkg.ImportPath) {
		return nil
	}
	var diags []Diag
	report := func(n ast.Node, f *ast.File, msg string) {
		if pkg.suppressedAt(m.Fset, n.Pos(), enclosingFunc(f, n.Pos()), "noctx") {
			return
		}
		diags = append(diags, Diag{Pos: m.Fset.Position(n.Pos()), Analyzer: "ctx", Message: msg})
	}
	for _, f := range pkg.Files {
		// Rule 1: no minted root contexts anywhere in the package,
		// except the guarded nil-default idiom.
		allowed := guardedNilDefaults(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := stdlibCall(pkg, call, "context"); ok && (name == "Background" || name == "TODO") {
				if !allowed[call] {
					report(call, f, "context."+name+"() detaches from the caller's cancellation; accept a ctx instead")
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam, ctxIndex := ctxParamOf(pkg, fd)
			// Rule 2: ctx must be the first parameter.
			if ctxParam != nil && ctxIndex != 0 {
				report(fd, f, "context.Context must be the first parameter of "+fd.Name.Name)
			}
			if !fd.Name.IsExported() {
				continue
			}
			if ctxParam != nil {
				// Rule 3: loops in exported ctx-taking functions must
				// observe the ctx.
				checkLoops(m, pkg, f, fd, ctxParam, report)
			} else if ctxIndex == -1 {
				// Rule 4: direct blocking I/O wants a ctx.
				if call, kind := firstIOCall(pkg, fd); call != nil {
					report(call, f, "exported "+fd.Name.Name+" performs "+kind+" but takes no context.Context")
				}
			}
		}
	}
	return diags
}

// guardedNilDefaults collects the context.Background() calls that
// appear as `x = context.Background()` inside an `if x == nil` guard —
// the compatibility default for callers that pass a nil ctx.
func guardedNilDefaults(f *ast.File) map[*ast.CallExpr]bool {
	allowed := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		var guarded string
		for _, pair := range [][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
			id, okID := pair[0].(*ast.Ident)
			nilID, okNil := pair[1].(*ast.Ident)
			if okID && okNil && nilID.Name == "nil" {
				guarded = id.Name
			}
		}
		if guarded == "" {
			return true
		}
		for _, stmt := range ifs.Body.List {
			assign, ok := stmt.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				continue
			}
			lhs, ok := assign.Lhs[0].(*ast.Ident)
			if !ok || lhs.Name != guarded {
				continue
			}
			if call, ok := assign.Rhs[0].(*ast.CallExpr); ok {
				allowed[call] = true
			}
		}
		return true
	})
	return allowed
}

// ctxParamOf returns the object and position of fd's context.Context
// parameter, or (nil, -1).
func ctxParamOf(pkg *Package, fd *ast.FuncDecl) (types.Object, int) {
	if fd.Type.Params == nil {
		return nil, -1
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		isCtx := ok && tv.Type != nil && tv.Type.String() == "context.Context"
		names := field.Names
		if len(names) == 0 {
			if isCtx {
				return nil, idx // unnamed ctx param: position known, no object
			}
			idx++
			continue
		}
		for _, name := range names {
			if isCtx {
				return pkg.Info.Defs[name], idx
			}
			idx++
		}
	}
	return nil, -1
}

// checkLoops flags for/range loops that call functions without ever
// observing cancellation. A loop is cancellation-aware when it
// mentions ctx (a ctx.Err() check, a select on ctx.Done(), passing
// ctx to a callee) or when it is channel-driven — a select statement,
// a receive, or ranging over a channel: in this codebase those
// channels are wired to ctx by a watcher goroutine, so the loop
// unblocks when the ctx does. Loops nested inside an aware loop are
// covered by the outer check; a loop whose only calls are sync
// bookkeeping, goroutine spawns, or builtins is exempt (it cannot run
// long).
func checkLoops(m *Module, pkg *Package, f *ast.File, fd *ast.FuncDecl, ctxObj types.Object, report func(ast.Node, *ast.File, string)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		isRange := false
		var rangeX ast.Expr
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body, isRange, rangeX = loop.Body, true, loop.X
		default:
			return true
		}
		aware := false
		if isRange {
			if tv, ok := pkg.Info.Types[rangeX]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					aware = true // driven by a channel that closes on cancel
				}
			}
		}
		hasCall := false
		ast.Inspect(body, func(sub ast.Node) bool {
			switch sub := sub.(type) {
			case *ast.GoStmt:
				return false // spawned work runs concurrently, not in the loop
			case *ast.SelectStmt:
				aware = true
			case *ast.UnaryExpr:
				if sub.Op == token.ARROW {
					aware = true // blocking receive: unblocks on close
				}
			case *ast.CallExpr:
				if !isTrivialCall(pkg, sub) {
					hasCall = true
				}
			case *ast.Ident:
				if ctxObj != nil && pkg.Info.Uses[sub] == ctxObj {
					aware = true
				} else if ctxObj == nil && sub.Name == "ctx" {
					aware = true
				}
			}
			return true
		})
		if aware {
			return false // nested loops are covered by this loop's check
		}
		if hasCall {
			report(n, f, "loop in exported "+fd.Name.Name+" never checks its context (add a ctx.Err() check or pass ctx to the work)")
			return false // don't cascade into nested loops
		}
		return true
	})
}

// isTrivialCall reports calls that cannot block or do meaningful
// work: builtins, type conversions, and sync bookkeeping
// (WaitGroup/Mutex methods).
func isTrivialCall(pkg *Package, call *ast.CallExpr) bool {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				return true
			}
		}
	}
	return false
}

// firstIOCall returns the first direct file/network call in fd and a
// description, or (nil, "").
func firstIOCall(pkg *Package, fd *ast.FuncDecl) (*ast.CallExpr, string) {
	var found *ast.CallExpr
	var kind string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := stdlibCall(pkg, call, "os"); ok {
			switch name {
			case "Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile", "ReadDir":
				found, kind = call, "file I/O (os."+name+")"
			}
		}
		if name, ok := stdlibCall(pkg, call, "net"); ok {
			switch name {
			case "Dial", "DialTimeout", "Listen":
				found, kind = call, "network I/O (net."+name+")"
			}
		}
		if name, ok := stdlibCall(pkg, call, "net/http"); ok {
			switch name {
			case "Get", "Post", "PostForm", "Head", "NewRequest":
				found, kind = call, "network I/O (http."+name+"; use NewRequestWithContext)"
			}
		}
		return true
	})
	return found, kind
}
