package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// runStorekey enforces store-key exhaustiveness: the checkpoint store
// shares one functional sweep across every run whose key matches, so
// a struct field that changes what the sweep captures but is not
// folded into the key silently poisons the cache.
//
// A struct annotated //simlint:keystruct <Func> [<Func>...] declares
// that every one of its fields is either
//
//   - referenced (as a selection resolving to that exact field) inside
//     the body of one of the named key-hash functions, anywhere in the
//     module, or
//   - annotated //simlint:nonkey <reason> documenting why it cannot
//     change captured state (encoding knobs, execution hooks, timing
//     parameters the sweep never observes).
//
// Adding a field — a future trace or co-run dimension, a prefetcher
// geometry knob — without extending the key is therefore a build
// failure instead of a wrong-result bug. Deleting a field reference
// from the hash function fails the same way.
func runStorekey(m *Module, cfg Config, pkg *Package) []Diag {
	var diags []Diag
	for fi, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				dir := keystructDirective(m, pkg, fi, gd, ts)
				if dir == nil {
					continue
				}
				diags = append(diags, checkKeyStruct(m, pkg, fi, ts, st, dir)...)
			}
		}
	}
	return diags
}

// keystructDirective finds a keystruct annotation on the type spec or
// its declaration's doc comment.
func keystructDirective(m *Module, pkg *Package, fi int, gd *ast.GenDecl, ts *ast.TypeSpec) *Directive {
	for _, doc := range []*ast.CommentGroup{ts.Doc, ts.Comment, gd.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if text, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
				verb, args, _ := strings.Cut(text, " ")
				if verb == "keystruct" {
					return &Directive{Verb: verb, Args: strings.TrimSpace(args), Pos: c.Pos()}
				}
			}
		}
	}
	return pkg.directiveAt(m.Fset, fi, gd.Pos(), "keystruct")
}

func checkKeyStruct(m *Module, pkg *Package, fi int, ts *ast.TypeSpec, st *ast.StructType, dir *Directive) []Diag {
	var diags []Diag
	funcNames := strings.Fields(dir.Args)
	var bodies []funcDecl
	for _, name := range funcNames {
		decls := m.funcDecls[name]
		if len(decls) == 0 {
			diags = append(diags, Diag{
				Pos:      m.Fset.Position(dir.Pos),
				Analyzer: "storekey",
				Message:  "keystruct on " + ts.Name.Name + " names unknown key-hash function " + name,
			})
			continue
		}
		bodies = append(bodies, decls...)
	}
	if len(bodies) == 0 {
		return diags
	}
	for _, field := range st.Fields.List {
		if fieldNonKey(m, pkg, fi, field) {
			continue
		}
		for _, name := range field.Names {
			obj, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if !fieldReferenced(obj, bodies) {
				diags = append(diags, Diag{
					Pos:      m.Fset.Position(name.Pos()),
					Analyzer: "storekey",
					Message: "field " + ts.Name.Name + "." + name.Name + " is not folded into the store key by " +
						strings.Join(funcNames, "/") + " (reference it there or annotate //simlint:nonkey <reason>)",
				})
			}
		}
		if len(field.Names) == 0 {
			// Embedded field: require the embedded type itself to be
			// referenced or annotated.
			diags = append(diags, Diag{
				Pos:      m.Fset.Position(field.Pos()),
				Analyzer: "storekey",
				Message:  "embedded field in keystruct " + ts.Name.Name + " needs //simlint:nonkey <reason> or explicit key coverage",
			})
		}
	}
	return diags
}

// fieldNonKey reports whether a struct field carries a nonkey
// directive in its doc comment, its trailing comment, or the line
// above it.
func fieldNonKey(m *Module, pkg *Package, fi int, field *ast.Field) bool {
	for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if text, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
				verb, _, _ := strings.Cut(text, " ")
				if verb == "nonkey" {
					return true
				}
			}
		}
	}
	return pkg.directiveAt(m.Fset, fi, field.Pos(), "nonkey") != nil
}

// fieldReferenced reports whether any selection inside the hash
// function bodies resolves to exactly this field object.
func fieldReferenced(field *types.Var, bodies []funcDecl) bool {
	for _, fd := range bodies {
		if fd.decl.Body == nil {
			continue
		}
		found := false
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := fd.pkg.Info.Selections[sel]; ok && s.Obj() == field {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
