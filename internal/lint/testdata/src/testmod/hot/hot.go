// Package hot seeds hotpath-analyzer cases: allocation and dynamic
// dispatch inside //simlint:hotpath functions, each next to its
// allowed form.
package hot

import "fmt"

// Fast calls another hot-path function and does arithmetic: clean.
//
//simlint:hotpath
func Fast(x uint64) uint64 {
	return helper(x) + 1
}

//simlint:hotpath
func helper(x uint64) uint64 { return x << 1 }

// Alloc makes a slice on the hot path: flagged.
//
//simlint:hotpath
func Alloc(n int) []int {
	return make([]int, n) // want hotpath `make (heap allocation)`
}

// Append grows a slice on the hot path: flagged.
//
//simlint:hotpath
func Append(dst []int, v int) []int {
	return append(dst, v) // want hotpath `append`
}

// Print formats on the hot path: flagged.
//
//simlint:hotpath
func Print(x int) {
	fmt.Println(x) // want hotpath `fmt.Println call`
}

// Defers on the hot path: flagged.
//
//simlint:hotpath
func Defers(x uint64) uint64 {
	defer helper(x) // want hotpath `defer`
	return x
}

// Closes over x on the hot path: flagged.
//
//simlint:hotpath
func Closes(x uint64) uint64 {
	f := func() uint64 { return x } // want hotpath `closure`
	return f()                      // want hotpath `dynamic call through function value f`
}

// CallsCold calls an unannotated function: flagged.
//
//simlint:hotpath
func CallsCold(x uint64) uint64 {
	return slow(x) // want hotpath `call to non-hot-path function slow`
}

func slow(x uint64) uint64 { return x * 3 }

// UsesCold calls a declared cold path: clean (the annotation asserts
// the call is rare and amortized).
//
//simlint:hotpath
func UsesCold(x uint64) uint64 { return Cold(x) }

// Cold is a declared rare path; its own body is unconstrained.
//
//simlint:coldpath rare path by design; exercised once per run
func Cold(x uint64) uint64 { return x + uint64(len(fmt.Sprint(x))) }

// FaultOK takes an error exit under a statement-level coldpath
// annotation: clean.
//
//simlint:hotpath
func FaultOK(x int) error {
	if x < 0 {
		//simlint:coldpath architectural fault; never taken on the measured path
		return fmt.Errorf("bad %d", x)
	}
	return nil
}

// Boxer is a minimal interface for the boxing case.
type Boxer interface{ Box() int }

// Val is a concrete Boxer.
type Val struct{ N int }

// Box implements Boxer.
func (v Val) Box() int { return v.N }

// ToIface boxes a concrete value into an interface return: flagged.
//
//simlint:hotpath
func ToIface(v Val) Boxer {
	return v // want hotpath `boxing`
}

// StructValue builds a plain struct value (stack-allocated): clean.
//
//simlint:hotpath
func StructValue(n int) Val {
	return Val{N: n}
}
