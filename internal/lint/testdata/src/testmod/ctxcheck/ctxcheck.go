// Package ctxcheck seeds ctx-analyzer cases: minted root contexts,
// misplaced ctx parameters, ctx-blind loops, and context-free I/O.
package ctxcheck

import (
	"context"
	"os"
)

// Mint returns a fresh root context: flagged.
func Mint() context.Context {
	return context.Background() // want ctx `context.Background`
}

// NilDefault uses the guarded compatibility idiom: clean.
func NilDefault(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// Wrong takes its context second: flagged.
func Wrong(name string, ctx context.Context) error { // want ctx `must be the first parameter`
	_ = name
	return ctx.Err()
}

// Work loops over items without ever observing ctx: flagged.
func Work(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items { // want ctx `never checks its context`
		total += process(it)
	}
	return total
}

// WorkOK checks ctx.Err inside the loop: clean.
func WorkOK(ctx context.Context, items []int) (int, error) {
	total := 0
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += process(it)
	}
	return total, nil
}

// Drain ranges over a channel: clean (the channel closes when the
// producer observes cancellation).
func Drain(ctx context.Context, ch chan int) int {
	total := 0
	for v := range ch {
		total += process(v)
	}
	return total
}

func process(i int) int { return i * i }

// ReadAll performs file I/O without a context: flagged.
func ReadAll(path string) ([]byte, error) {
	return os.ReadFile(path) // want ctx `file I/O`
}

// ReadAllOK performs the same I/O under a reasoned annotation: clean.
//
//simlint:noctx bounded single-file metadata read; no long blocking
func ReadAllOK(path string) ([]byte, error) {
	return os.ReadFile(path)
}
