// Package dircheck seeds directive-grammar cases: unknown verbs and
// missing reasons.
package dircheck

//simlint:frobnicate whatever
func A() {} // want-1 directive `unknown simlint directive frobnicate`

//simlint:ordered
func B() {} // want-1 directive `requires a reason`

//simlint:keystruct
type C struct{ X int } // want-1 directive `must name the key-hash function`

//simlint:ordered keys are sorted upstream
func D() {}
