// Package det seeds determinism-analyzer cases: map-iteration folds,
// wall-clock reads, and global PRNG use, each next to its fixed or
// annotated twin.
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Fold appends map keys in iteration order: flagged.
func Fold(m map[string]int) []string {
	var out []string
	for k := range m { // want determinism `appends into a result`
		out = append(out, k)
	}
	return out
}

// FoldSorted uses the collect-then-sort idiom: clean.
func FoldSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum folds floats across randomized iteration order: flagged
// (floating-point addition is not associative).
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want determinism `accumulates into s`
		s += v
	}
	return s
}

// SumInt folds integers: clean (integer addition commutes).
func SumInt(m map[string]int) int {
	var s int
	for _, v := range m {
		s += v
	}
	return s
}

// Send streams map keys on a channel in iteration order: flagged.
func Send(m map[string]int, ch chan string) {
	for k := range m { // want determinism `sends on a channel`
		ch <- k
	}
}

// Emit prints map entries in iteration order: flagged.
func Emit(m map[string]int) {
	for k, v := range m { // want determinism `writes output`
		fmt.Println(k, v)
	}
}

// Stamp reads the wall clock: flagged.
func Stamp() time.Time {
	return time.Now() // want determinism `time.Now`
}

// StampOK reads the wall clock under an annotation: clean.
func StampOK() time.Time {
	return time.Now() //simlint:ordered telemetry only; never folded into results
}

// Elapsed reads the wall clock via Since: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism `time.Since`
}

// Roll uses the global math/rand source: flagged.
func Roll() int {
	return rand.Intn(6) // want determinism `global math/rand`
}

// RollOK seeds a local source: clean.
func RollOK() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}
