// Package storekey seeds storekey-analyzer cases: a key struct with a
// covered field, an uncovered field, an annotated non-key field, an
// embedded field, and a directive naming an unknown hash function.
package storekey

import "fmt"

// Key folds A into the key text; B is uncovered, C is declared
// non-key.
//
//simlint:keystruct KeyText
type Key struct {
	A string
	B int // want storekey `field Key.B is not folded into the store key`
	//simlint:nonkey presentation only; never observed by the sweep
	C bool
}

// KeyText is the hash function named by the keystruct directive.
func KeyText(k Key) string {
	return fmt.Sprintf("a=%s", k.A)
}

// Base is embedded below.
type Base struct{ Y int }

// Embed embeds Base without coverage: flagged.
//
//simlint:keystruct KeyText2
type Embed struct {
	Base // want storekey `embedded field`
	Z    int
}

// KeyText2 covers Z but not the embedded Base.
func KeyText2(e Embed) string {
	return fmt.Sprintf("z=%d", e.Z)
}

// Embed2 declares the embedded field non-key: clean.
//
//simlint:keystruct KeyText3
type Embed2 struct {
	//simlint:nonkey carried for display only
	Base
	W int
}

// KeyText3 covers W.
func KeyText3(e Embed2) string {
	return fmt.Sprintf("w=%d", e.W)
}

// Orphan names a hash function that does not exist: flagged on the
// directive line.
//
//simlint:keystruct Missing
type Orphan struct { // want-1 storekey `unknown key-hash function Missing`
	X int
}
