// Package errw seeds errwrap-analyzer cases: flattened error wraps
// and discarded error returns (this package path is listed in
// Config.ErrDiscardPkgs).
package errw

import (
	"fmt"
	"os"
)

// Wrap flattens the cause with %v: flagged.
func Wrap(err error) error {
	return fmt.Errorf("op failed: %v", err) // want errwrap `use %w`
}

// WrapOK wraps with %w: clean.
func WrapOK(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

// WrapString formats a plain string with %v: clean (no error
// operand).
func WrapString(name string) error {
	return fmt.Errorf("op %v failed", name)
}

// Flatten renders an error to text under a reasoned annotation:
// clean.
func Flatten(err error) string {
	//simlint:nowrap log-only rendering; the chain is not propagated
	return fmt.Errorf("log: %v", err).Error()
}

// Discard drops an error return: flagged.
func Discard() {
	_ = os.Remove("x") // want errwrap `error return discarded`
}

// DiscardOK drops an error under a reasoned annotation: clean.
func DiscardOK() {
	_ = os.Remove("x") //simlint:discard best-effort cleanup of a temp file
}

// DiscardTuple drops the error position of a tuple: flagged.
func DiscardTuple() string {
	wd, _ := os.Getwd() // want errwrap `error return discarded`
	return wd
}
