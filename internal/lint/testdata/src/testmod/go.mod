module testmod

go 1.24
