package uarch

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/functional"
	"repro/internal/isa"
)

// InstSource supplies the committed-order dynamic instruction stream the
// core simulates timing for. The functional CPU (wrapped by Source) is
// the production implementation; tests use synthetic streams.
type InstSource interface {
	// Next fills d with the next dynamic instruction and reports whether
	// one was available.
	Next(d *functional.DynInst) bool
}

// Source adapts a functional CPU to InstSource.
type Source struct {
	CPU *functional.CPU
	// Err records the first architectural fault encountered, if any.
	Err error
}

// Next implements InstSource.
func (s *Source) Next(d *functional.DynInst) bool {
	if s.Err != nil {
		return false
	}
	if err := s.CPU.Step(d); err != nil {
		if err != functional.ErrHalted {
			s.Err = err
		}
		return false
	}
	return true
}

// Entry states.
const (
	stDispatched uint8 = iota
	stIssued
)

// tombstoneSeq marks freed ROB slots so stale producer references
// (slot, seq) from the register rename table never validate.
const tombstoneSeq = ^uint64(0)

type robEntry struct {
	d       functional.DynInst
	state   uint8
	mispred bool
	isLoad  bool
	isStore bool

	doneCycle uint64

	// Producer references: slot into the ROB plus the producer's Seq for
	// validation (slots are recycled). Slot -1 means the operand was
	// ready at dispatch.
	src1Slot, src2Slot, memSlot int32
	src1Seq, src2Seq, memSeq    uint64
}

type fetchEntry struct {
	d       functional.DynInst
	readyAt uint64 // earliest dispatch cycle (fetch + decode depth)
	mispred bool
}

type storeRef struct {
	slot int32
	seq  uint64
	ea   uint64
}

type mshr struct {
	block   uint64
	release uint64
}

type sbEntry struct {
	ea       uint64
	draining bool
	release  uint64
}

// Mark requests measurement at a commit boundary: when the At'th
// instruction of a Run commits, Cycle and EnergyNJ are filled with the
// core's absolute cycle counter and energy meter reading.
type Mark struct {
	At       uint64
	Cycle    uint64
	EnergyNJ float64
}

// RunStats summarizes one Run call.
type RunStats struct {
	// Insts is the number of instructions committed.
	Insts uint64
	// Cycles is the number of cycles simulated by this run.
	Cycles uint64
	// EnergyNJ is the energy accumulated during this run.
	EnergyNJ float64
	// HaltSeen reports that the program's halt instruction committed.
	HaltSeen bool
}

// Core is the cycle-driven out-of-order pipeline. It owns only pipeline
// state; warmable structures (caches, predictor, energy meter) live in
// the Machine and persist across ResetPipeline.
type Core struct {
	cfg   Config
	hier  *cache.Hierarchy
	pred  *bpred.Unit
	meter *energy.Meter

	cycle uint64

	// ROB ring buffer.
	rob        []robEntry
	head, tail int // slot indices; count tracks occupancy
	robCount   int
	lsqCount   int

	// Rename table: last writer of each register.
	lastWriterSlot [isa.NumRegs]int32
	lastWriterSeq  [isa.NumRegs]uint64

	// In-flight stores for load forwarding, ordered by age; storesHead
	// indexes the oldest live entry (popped at commit).
	stores     []storeRef
	storesHead int

	// unissued lists ROB slots awaiting issue, in age order. The issue
	// stage scans only this list instead of the whole window, which is
	// what keeps memory-bound regions (high CPI, full ROB, tiny ready
	// set) fast to simulate.
	unissued []int32

	// Fetch state.
	fetchQ       []fetchEntry
	fetchHead    int
	fetchCount   int
	lastIBlock   uint64
	haveIBlock   bool
	icacheStall  uint64 // fetch blocked until this cycle (I-miss)
	redirectAt   uint64 // fetch blocked until this cycle (mispredict resolution + penalty)
	blockedSeq   uint64 // seq of the unresolved mispredicted control inst
	blockedValid bool

	// Memory structures.
	mshrs []mshr
	sb    []sbEntry
	sbLen int

	// Stream state.
	pending      functional.DynInst
	havePending  bool
	srcExhausted bool
	haltSeen     bool
}

// NewCore builds a core bound to a machine's warmable state.
func NewCore(m *Machine) *Core {
	c := &Core{
		cfg:      m.Cfg,
		hier:     m.Hier,
		pred:     m.Pred,
		meter:    m.Meter,
		rob:      make([]robEntry, m.Cfg.RUUSize),
		fetchQ:   make([]fetchEntry, m.Cfg.FetchWidth*4),
		mshrs:    make([]mshr, m.Cfg.MSHRs),
		sb:       make([]sbEntry, m.Cfg.StoreBufEntries),
		stores:   make([]storeRef, 0, m.Cfg.LSQSize),
		unissued: make([]int32, 0, m.Cfg.RUUSize),
	}
	c.ResetPipeline()
	return c
}

// Cycle returns the core's absolute cycle counter.
func (c *Core) Cycle() uint64 { return c.cycle }

// ResetPipeline empties all pipeline state (ROB, LSQ, fetch queue, store
// buffer, MSHRs) without touching warmable structures or the cycle
// counter. The SMARTS controller calls it at each fast-forward boundary.
func (c *Core) ResetPipeline() {
	c.head, c.tail, c.robCount, c.lsqCount = 0, 0, 0, 0
	for i := range c.lastWriterSlot {
		c.lastWriterSlot[i] = -1
	}
	c.stores = c.stores[:0]
	c.storesHead = 0
	c.unissued = c.unissued[:0]
	c.fetchHead, c.fetchCount = 0, 0
	c.haveIBlock = false
	c.icacheStall, c.redirectAt = 0, 0
	c.blockedValid = false
	for i := range c.mshrs {
		c.mshrs[i] = mshr{}
	}
	for i := range c.sb {
		c.sb[i] = sbEntry{}
	}
	c.sbLen = 0
	c.havePending = false
	c.srcExhausted = false
	c.haltSeen = false
}

// Run fetches up to n instructions from src, simulates until every
// fetched instruction has committed, and returns run statistics. Marks
// (sorted ascending by At) are filled at their commit boundaries.
//
// The instruction budget bounds *fetches*, so the architectural stream
// position after Run is exactly n instructions further along (unless the
// program halted first): the SMARTS controller relies on this to resume
// functional fast-forwarding at the sampling-unit boundary.
func (c *Core) Run(src InstSource, n uint64, marks []Mark) (RunStats, error) {
	startCycle := c.cycle
	startEnergy := c.meter.Snapshot()
	var fetched, committed uint64
	markIdx := 0
	for markIdx < len(marks) && marks[markIdx].At == 0 {
		marks[markIdx].Cycle = c.cycle
		marks[markIdx].EnergyNJ = c.meter.TotalNJ()
		markIdx++
	}

	const stallLimit = 2_000_000 // cycles without commit => deadlock guard
	lastCommitCycle := c.cycle

	for {
		// Retire.
		nCommitted := c.commit()
		if nCommitted > 0 {
			lastCommitCycle = c.cycle
		}
		for i := uint64(0); i < nCommitted; i++ {
			committed++
			for markIdx < len(marks) && marks[markIdx].At == committed {
				marks[markIdx].Cycle = c.cycle
				marks[markIdx].EnergyNJ = c.meter.TotalNJ()
				markIdx++
			}
		}

		if committed >= n || (c.srcExhausted && c.robCount == 0 && c.fetchCount == 0 && !c.havePending) {
			break
		}
		if c.cycle-lastCommitCycle > stallLimit {
			return RunStats{}, fmt.Errorf("uarch: no commit for %d cycles at cycle %d (pipeline deadlock)", stallLimit, c.cycle)
		}

		c.drainStoreBuffer()
		c.issue()
		c.dispatch()
		if fetched < n {
			fetched += c.fetch(src, n-fetched)
		}

		c.cycle++
		c.meter.Tick(1)
	}

	// Unfilled marks (program ended early) get the final state.
	for ; markIdx < len(marks); markIdx++ {
		marks[markIdx].Cycle = c.cycle
		marks[markIdx].EnergyNJ = c.meter.TotalNJ()
	}

	if s, ok := src.(*Source); ok && s.Err != nil {
		return RunStats{}, s.Err
	}
	return RunStats{
		Insts:    committed,
		Cycles:   c.cycle - startCycle,
		EnergyNJ: c.meter.Since(startEnergy),
		HaltSeen: c.haltSeen,
	}, nil
}

// fetch brings up to budget instructions into the fetch queue and
// returns how many were consumed from the source.
func (c *Core) fetch(src InstSource, budget uint64) uint64 {
	if c.blockedValid || c.cycle < c.redirectAt || c.cycle < c.icacheStall {
		return 0
	}
	var consumed uint64
	width := c.cfg.FetchWidth
	preds := c.cfg.PredsPerCycle
	for i := 0; i < width && consumed < budget; i++ {
		if c.fetchCount == len(c.fetchQ) {
			break
		}
		if !c.havePending {
			if c.srcExhausted || !src.Next(&c.pending) {
				c.srcExhausted = true
				break
			}
			c.havePending = true
		}
		d := &c.pending

		// Instruction cache: one access per new block.
		iaddr := d.PC * isa.InstBytes
		iblock := iaddr >> c.cfg.IL1.BlockBits
		if !c.haveIBlock || iblock != c.lastIBlock {
			lat, lvl := c.hier.FetchAccess(iaddr)
			c.haveIBlock, c.lastIBlock = true, iblock
			c.meter.Add(energy.EvIL1, 1)
			c.chargeLevel(lvl)
			if lat > c.cfg.Lat.L1 {
				// Miss (or TLB walk): fetch stalls; the instruction is
				// consumed when the stall clears (block is now resident).
				c.icacheStall = c.cycle + uint64(lat-c.cfg.Lat.L1)
				break
			}
		}

		mispred := false
		isControl := d.Inst.Op.IsControl()
		if isControl {
			if preds == 0 {
				break // prediction bandwidth exhausted this cycle
			}
			preds--
			p := c.pred.Predict(d.PC, d.Inst.Op)
			c.meter.Add(energy.EvBPred, 1)
			mispred = c.pred.CheckMispredict(p, bpred.Outcome{
				Op: d.Inst.Op, PC: d.PC, Taken: d.Taken,
				Target: d.NextPC, NextPC: d.PC + 1,
			})
			c.pred.Update(bpred.Outcome{
				Op: d.Inst.Op, PC: d.PC, Taken: d.Taken,
				Target: d.NextPC, NextPC: d.PC + 1,
			})
		}

		slot := (c.fetchHead + c.fetchCount) % len(c.fetchQ)
		c.fetchQ[slot] = fetchEntry{
			d:       *d,
			readyAt: c.cycle + uint64(c.cfg.DecodeDepth),
			mispred: mispred,
		}
		c.fetchCount++
		c.havePending = false
		consumed++
		c.meter.Add(energy.EvFetch, 1)

		if mispred {
			// Front end follows the wrong path: model as bubbles until
			// the control instruction resolves at issue.
			c.blockedValid = true
			c.blockedSeq = d.Seq
			break
		}
		if isControl && d.Taken {
			// Redirected fetch: the group ends at a taken control.
			break
		}
	}
	return consumed
}

// dispatch moves decoded instructions into the ROB/LSQ.
func (c *Core) dispatch() {
	for n := 0; n < c.cfg.DecodeWidth && c.fetchCount > 0; n++ {
		fe := &c.fetchQ[c.fetchHead]
		if fe.readyAt > c.cycle {
			break
		}
		if c.robCount == len(c.rob) {
			break
		}
		cls := fe.d.Inst.Op.Class()
		isMem := cls == isa.ClassLoad || cls == isa.ClassStore
		if isMem && c.lsqCount == c.cfg.LSQSize {
			break
		}

		slot := int32(c.tail)
		e := &c.rob[c.tail]
		*e = robEntry{
			d:        fe.d,
			state:    stDispatched,
			mispred:  fe.mispred,
			isLoad:   cls == isa.ClassLoad,
			isStore:  cls == isa.ClassStore,
			src1Slot: -1, src2Slot: -1, memSlot: -1,
		}

		// Register dependences via the rename table.
		s1, s2 := fe.d.Inst.Reads()
		if s1 != isa.RegZero {
			if ps := c.lastWriterSlot[s1]; ps >= 0 && c.rob[ps].d.Seq == c.lastWriterSeq[s1] {
				e.src1Slot, e.src1Seq = ps, c.lastWriterSeq[s1]
			}
		}
		if s2 != isa.RegZero {
			if ps := c.lastWriterSlot[s2]; ps >= 0 && c.rob[ps].d.Seq == c.lastWriterSeq[s2] {
				e.src2Slot, e.src2Seq = ps, c.lastWriterSeq[s2]
			}
		}
		if d := fe.d.Inst.Writes(); d != isa.RegZero {
			c.lastWriterSlot[d] = slot
			c.lastWriterSeq[d] = fe.d.Seq
		}

		// Memory dependence: youngest older store overlapping this load.
		if e.isLoad {
			for i := len(c.stores) - 1; i >= c.storesHead; i-- {
				st := c.stores[i]
				if absDiff(st.ea, fe.d.EA) < 8 {
					e.memSlot, e.memSeq = st.slot, st.seq
					break
				}
			}
		}
		if e.isStore {
			c.stores = append(c.stores, storeRef{slot: slot, seq: fe.d.Seq, ea: fe.d.EA})
		}
		if isMem {
			c.lsqCount++
		}

		c.unissued = append(c.unissued, slot)
		c.tail = (c.tail + 1) % len(c.rob)
		c.robCount++
		c.fetchHead = (c.fetchHead + 1) % len(c.fetchQ)
		c.fetchCount--
		c.meter.Add(energy.EvDispatch, 1)
	}
}

// ready reports whether the producer referenced by (slot, seq) has
// produced its value by the current cycle.
func (c *Core) ready(slot int32, seq uint64) bool {
	if slot < 0 {
		return true
	}
	p := &c.rob[slot]
	if p.d.Seq != seq {
		return true // producer committed; value long available
	}
	return p.state == stIssued && p.doneCycle <= c.cycle
}

// issue selects ready instructions oldest-first and begins execution.
// It walks the unissued-slot list (age ordered), compacting out the
// entries that issue this cycle.
func (c *Core) issue() {
	issued := 0
	ports := c.cfg.DL1Ports
	fu := [4]int{c.cfg.IntALU, c.cfg.IntMulDiv, c.cfg.FPALU, c.cfg.FPMulDiv}

	w := 0
	for _, slot := range c.unissued {
		e := &c.rob[slot]
		if !c.tryIssue(e, &issued, &ports, &fu) {
			c.unissued[w] = slot
			w++
		}
	}
	c.unissued = c.unissued[:w]
}

// tryIssue attempts to issue one entry, reporting success.
func (c *Core) tryIssue(e *robEntry, issued, ports *int, fu *[4]int) bool {
	if *issued >= c.cfg.IssueWidth {
		return false
	}
	if !c.ready(e.src1Slot, e.src1Seq) || !c.ready(e.src2Slot, e.src2Seq) {
		return false
	}
	if e.isLoad && !c.ready(e.memSlot, e.memSeq) {
		return false
	}

	cls := e.d.Inst.Op.Class()
	pool := fuPool(cls)
	if pool >= 0 && fu[pool] == 0 {
		return false
	}

	var lat int
	switch {
	case e.isLoad:
		if *ports == 0 {
			return false
		}
		if e.memSlot >= 0 {
			// Store-to-load forwarding: value bypasses the cache.
			lat = 1
			*ports--
		} else {
			l, ok := c.loadAccess(e.d.EA, ports)
			if !ok {
				return false // no MSHR free: retry next cycle
			}
			lat = l
		}
	case e.isStore:
		lat = c.cfg.OpLat[isa.ClassStore] // address generation only
	default:
		lat = c.cfg.OpLat[cls]
	}

	if pool >= 0 {
		fu[pool]--
	}
	e.state = stIssued
	e.doneCycle = c.cycle + uint64(lat)
	*issued++

	c.meter.Add(energy.EvIssue, 1)
	c.meter.Add(energy.EvRegRead, 2)
	c.chargeFU(cls)
	if e.mispred && c.blockedValid && c.blockedSeq == e.d.Seq {
		// Resolution: front end restarts after the redirect penalty.
		c.redirectAt = e.doneCycle + uint64(c.cfg.MispredictPenalty)
		c.blockedValid = false
		c.meter.Add(energy.EvFlush, 1)
	}
	return true
}

// loadAccess performs the timed D-cache access for a load, honoring MSHR
// occupancy and merging with outstanding misses to the same block. It
// reports (latency, ok); ok=false means issue must retry (MSHRs full).
func (c *Core) loadAccess(ea uint64, ports *int) (int, bool) {
	block := ea >> c.cfg.DL1.BlockBits
	// Merge with an outstanding miss to the same block: the load waits
	// for the in-flight fill rather than allocating a new MSHR.
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.release > c.cycle && m.block == block {
			*ports--
			c.meter.Add(energy.EvDL1, 1)
			return int(m.release - c.cycle), true
		}
	}
	// A genuine miss needs a free MSHR; find one before touching state.
	freeMSHR := -1
	for i := range c.mshrs {
		if c.mshrs[i].release <= c.cycle {
			freeMSHR = i
			break
		}
	}
	willMiss := !c.hier.DL1.Probe(ea)
	if willMiss && freeMSHR < 0 {
		return 0, false
	}
	*ports--
	lat, lvl := c.hier.DataAccess(ea, false)
	c.meter.Add(energy.EvDL1, 1)
	c.chargeLevel(lvl)
	if willMiss {
		c.mshrs[freeMSHR] = mshr{block: block, release: c.cycle + uint64(lat)}
	}
	return lat, true
}

// commit retires completed instructions in order, returning how many.
func (c *Core) commit() uint64 {
	var n uint64
	for int(n) < c.cfg.CommitWidth && c.robCount > 0 {
		e := &c.rob[c.head]
		if e.state != stIssued || e.doneCycle > c.cycle {
			break
		}
		if e.isStore {
			if c.sbLen == len(c.sb) {
				break // store buffer full: commit stalls (paper Sec 4.4)
			}
			c.sb[c.sbLen] = sbEntry{ea: e.d.EA}
			c.sbLen++
		}
		if e.d.Inst.Op == isa.OpHalt {
			c.haltSeen = true
		}
		cls := e.d.Inst.Op.Class()
		if cls == isa.ClassLoad || cls == isa.ClassStore {
			c.lsqCount--
		}
		if e.isStore && c.storesHead < len(c.stores) && c.stores[c.storesHead].seq == e.d.Seq {
			c.storesHead++
			if c.storesHead == len(c.stores) {
				c.stores = c.stores[:0]
				c.storesHead = 0
			}
		}
		c.meter.Add(energy.EvCommit, 1)
		if e.d.Inst.Writes() != isa.RegZero {
			c.meter.Add(energy.EvRegWrite, 1)
		}
		e.d.Seq = tombstoneSeq
		c.head = (c.head + 1) % len(c.rob)
		c.robCount--
		n++
	}
	return n
}

// drainStoreBuffer writes the oldest committed store to the cache, one
// new drain per cycle, and frees completed entries.
func (c *Core) drainStoreBuffer() {
	// Free the head once its write completes.
	for c.sbLen > 0 && c.sb[0].draining && c.sb[0].release <= c.cycle {
		copy(c.sb[:c.sbLen-1], c.sb[1:c.sbLen])
		c.sbLen--
		c.sb[c.sbLen] = sbEntry{}
	}
	if c.sbLen == 0 || c.sb[0].draining {
		return
	}
	// Begin draining the head: the write shares D-cache bandwidth but is
	// modelled on its own port (write buffer port).
	ea := c.sb[0].ea
	block := ea >> c.cfg.DL1.BlockBits
	var lat int
	merged := false
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.release > c.cycle && m.block == block {
			lat = int(m.release - c.cycle)
			merged = true
			break
		}
	}
	if !merged {
		l, lvl := c.hier.DataAccess(ea, true)
		lat = l
		c.chargeLevel(lvl)
	}
	c.meter.Add(energy.EvDL1, 1)
	c.sb[0].draining = true
	c.sb[0].release = c.cycle + uint64(lat)
}

// chargeLevel records the energy of a hierarchy access beyond L1.
func (c *Core) chargeLevel(lvl cache.Level) {
	switch lvl {
	case cache.LevelL2:
		c.meter.Add(energy.EvL2, 1)
	case cache.LevelMem:
		c.meter.Add(energy.EvL2, 1)
		c.meter.Add(energy.EvMem, 1)
	}
}

// chargeFU records functional-unit energy by class.
func (c *Core) chargeFU(cls isa.Class) {
	switch cls {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassRet, isa.ClassStore:
		c.meter.Add(energy.EvIntALU, 1)
	case isa.ClassIntMul, isa.ClassIntDiv:
		c.meter.Add(energy.EvIntMul, 1)
	case isa.ClassFPALU:
		c.meter.Add(energy.EvFPALU, 1)
	case isa.ClassFPMul, isa.ClassFPDiv:
		c.meter.Add(energy.EvFPMul, 1)
	}
}

// fuPool maps an instruction class to its functional-unit pool index:
// 0 integer ALU (also control and store address generation), 1 integer
// multiply/divide, 2 FP ALU, 3 FP multiply/divide, -1 none required.
func fuPool(cls isa.Class) int {
	switch cls {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassRet, isa.ClassStore:
		return 0
	case isa.ClassIntMul, isa.ClassIntDiv:
		return 1
	case isa.ClassFPALU:
		return 2
	case isa.ClassFPMul, isa.ClassFPDiv:
		return 3
	}
	return -1
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
