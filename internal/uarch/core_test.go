package uarch_test

import (
	"testing"

	"repro/internal/functional"
	"repro/internal/program"
	"repro/internal/uarch"
)

// runWorkload simulates n instructions of the named workload in detail
// from a cold machine and returns the stats.
func runWorkload(t *testing.T, name string, cfg uarch.Config, length, n uint64) uarch.RunStats {
	t.Helper()
	spec, err := program.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := program.MustGenerate(spec, length)
	m := uarch.NewMachine(cfg)
	core := uarch.NewCore(m)
	src := &uarch.Source{CPU: functional.New(p)}
	stats, err := core.Run(src, n, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

// TestCoreRunsAllWorkloads checks the detailed model completes every
// suite workload end to end with a sane CPI.
func TestCoreRunsAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed full runs are slow")
	}
	for _, spec := range program.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := program.MustGenerate(spec, 150_000)
			m := uarch.NewMachine(uarch.Config8Way())
			core := uarch.NewCore(m)
			src := &uarch.Source{CPU: functional.New(p)}
			stats, err := core.Run(src, p.Length, nil)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if stats.Insts != p.Length {
				t.Errorf("committed %d of %d instructions", stats.Insts, p.Length)
			}
			if !stats.HaltSeen {
				t.Error("halt did not commit")
			}
			cpi := float64(stats.Cycles) / float64(stats.Insts)
			if cpi < 0.1 || cpi > 50 {
				t.Errorf("implausible CPI %.3f", cpi)
			}
			if stats.EnergyNJ <= 0 {
				t.Errorf("no energy accumulated")
			}
			t.Logf("%s: CPI %.3f, EPI %.2f nJ", spec.Name, cpi, stats.EnergyNJ/float64(stats.Insts))
		})
	}
}

// TestCPIOrdering checks the model produces the CPI relationships the
// workloads are designed for: pointer chasing beyond L2 is much slower
// than cache-resident compute.
func TestCPIOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed runs are slow")
	}
	cfg := uarch.Config8Way()
	mcf := runWorkload(t, "mcfx", cfg, 150_000, 100_000)
	eon := runWorkload(t, "eonx", cfg, 150_000, 100_000)
	mcfCPI := float64(mcf.Cycles) / float64(mcf.Insts)
	eonCPI := float64(eon.Cycles) / float64(eon.Insts)
	if mcfCPI < 2*eonCPI {
		t.Errorf("expected memory-bound mcfx CPI (%.2f) >> compute-bound eonx CPI (%.2f)", mcfCPI, eonCPI)
	}
}

// TestSixteenWayFaster checks the wider machine is at least as fast on
// compute-bound code.
func TestSixteenWayFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed runs are slow")
	}
	e8 := runWorkload(t, "eonx", uarch.Config8Way(), 150_000, 100_000)
	e16 := runWorkload(t, "eonx", uarch.Config16Way(), 150_000, 100_000)
	cpi8 := float64(e8.Cycles) / float64(e8.Insts)
	cpi16 := float64(e16.Cycles) / float64(e16.Insts)
	if cpi16 > cpi8*1.1 {
		t.Errorf("16-way CPI %.3f worse than 8-way %.3f on compute-bound code", cpi16, cpi8)
	}
}

// TestMarks checks commit-boundary marks are filled monotonically.
func TestMarks(t *testing.T) {
	spec, err := program.ByName("gzipx")
	if err != nil {
		t.Fatal(err)
	}
	p := program.MustGenerate(spec, 100_000)
	m := uarch.NewMachine(uarch.Config8Way())
	core := uarch.NewCore(m)
	src := &uarch.Source{CPU: functional.New(p)}
	marks := []uarch.Mark{{At: 0}, {At: 1000}, {At: 2000}, {At: 5000}}
	if _, err := core.Run(src, 5000, marks); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < len(marks); i++ {
		if marks[i].Cycle <= marks[i-1].Cycle {
			t.Errorf("mark %d cycle %d not after mark %d cycle %d",
				i, marks[i].Cycle, i-1, marks[i-1].Cycle)
		}
		if marks[i].EnergyNJ <= marks[i-1].EnergyNJ {
			t.Errorf("mark %d energy not increasing", i)
		}
	}
}

// TestRunBudgetExact checks Run consumes exactly n instructions from the
// source, the invariant the sampling controller depends on.
func TestRunBudgetExact(t *testing.T) {
	spec, err := program.ByName("craftyx")
	if err != nil {
		t.Fatal(err)
	}
	p := program.MustGenerate(spec, 100_000)
	cpu := functional.New(p)
	m := uarch.NewMachine(uarch.Config8Way())
	core := uarch.NewCore(m)
	src := &uarch.Source{CPU: cpu}
	const n = 7777
	stats, err := core.Run(src, n, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Insts != n {
		t.Errorf("committed %d, want %d", stats.Insts, n)
	}
	if cpu.Count != n {
		t.Errorf("functional stream advanced to %d, want exactly %d", cpu.Count, n)
	}
	// A second run must resume seamlessly.
	core.ResetPipeline()
	stats2, err := core.Run(src, n, nil)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if stats2.Insts != n || cpu.Count != 2*n {
		t.Errorf("second run: committed %d, stream at %d", stats2.Insts, cpu.Count)
	}
}
