package uarch_test

import (
	"testing"

	"repro/internal/functional"
	"repro/internal/program"
	"repro/internal/uarch"
)

// TestWarmerForwardZeroAllocs pins the functional-warming loop — the
// capture sweep's entire per-instruction cost — to zero steady-state
// heap allocations.
func TestWarmerForwardZeroAllocs(t *testing.T) {
	spec, err := program.ByName("gccx")
	if err != nil {
		t.Fatal(err)
	}
	p := program.MustGenerate(spec, 400_000)
	cfg := uarch.Config8Way()
	m := uarch.NewMachine(cfg)
	w := uarch.NewWarmer(m, cfg)
	cpu := functional.New(p)
	if err := w.Forward(cpu, 100_000); err != nil {
		t.Fatal(err) // reach steady state first
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := w.Forward(cpu, 1000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Warmer.Forward allocates %.4f objects per 1000 instructions; want 0", allocs)
	}
}

// BenchmarkWarmerForward measures functional warming throughput in
// instructions (b.N = warmed instructions) — the speed of the capture
// sweep that bounds the pipelined engine's wall clock.
func BenchmarkWarmerForward(b *testing.B) {
	spec, err := program.ByName("gccx")
	if err != nil {
		b.Fatal(err)
	}
	p := program.MustGenerate(spec, 4_000_000)
	cfg := uarch.Config8Way()
	m := uarch.NewMachine(cfg)
	w := uarch.NewWarmer(m, cfg)
	cpu := functional.New(p)
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := b.N - done
		if n > 100_000 {
			n = 100_000
		}
		if cpu.Halted {
			b.StopTimer()
			cpu = functional.New(p)
			m = uarch.NewMachine(cfg)
			w = uarch.NewWarmer(m, cfg)
			b.StartTimer()
		}
		if err := w.Forward(cpu, uint64(n)); err != nil {
			b.Fatal(err)
		}
		done += n
	}
}
