package uarch

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/delta"
	"repro/internal/functional"
	"repro/internal/isa"
)

// The warmer implements the shared snapshot/delta contract for the
// warmed ensemble (hierarchy + predictor).
var _ delta.Source[*WarmSnapshot, *WarmDelta] = (*Warmer)(nil)

// WarmComponents selects which microarchitectural structures functional
// warming maintains. The paper's functional warming maintains all of
// them (its sim-cache + sim-bpred analogue); partial selections support
// the ablation experiment asking which state actually carries the bias.
type WarmComponents struct {
	ICache    bool
	DCache    bool // includes the L2 and TLBs on the data path
	Predictor bool
}

// AllComponents is the paper's full functional warming.
var AllComponents = WarmComponents{ICache: true, DCache: true, Predictor: true}

// Warmer replays the committed instruction stream into a machine's
// warmable structures (caches, TLBs, branch predictor) — the functional
// warming mode. It lives here, beside the Machine whose structures it
// drives, so both the SMARTS controller and the checkpoint capture
// sweep share the exact warming semantics.
type Warmer struct {
	machine    *Machine
	blockBits  uint
	lastIBlock uint64
	haveIBlock bool
	// ring is the batch buffer ForwardBatch hands to the CPU's batch
	// interpreter: one RunDyn call fills it with up to warmBatch dynamic
	// records, and the warming loop replays them into the structures —
	// amortizing interpreter dispatch and warming dispatch over the
	// batch instead of alternating per instruction. Warmers are few (one
	// per capture sweep), so the buffer is kept inline rather than
	// allocated per call.
	ring [warmBatch]functional.DynRec

	// chain numbers the snapshots taken through Snapshot/Delta so delta
	// chains can assert they extend the latest baseline. The warmed
	// structures each keep their own chain, advanced in lockstep by the
	// warmer; a structure snapshotted out-of-band desynchronizes and the
	// next Delta fails rather than silently dropping updates.
	chain delta.Chain

	// Components selects the warmed structures; zero value warms nothing,
	// NewWarmer initializes it to AllComponents.
	Components WarmComponents
}

// NewWarmer builds a full warmer bound to m's structures.
func NewWarmer(m *Machine, cfg Config) *Warmer {
	return &Warmer{machine: m, blockBits: cfg.IL1.BlockBits, Components: AllComponents}
}

// WarmSnapshot is a full snapshot of the warmed structures — cache/TLB
// hierarchy and branch predictor — tagged with its sequence number, the
// baseline identity subsequent Delta calls key off.
type WarmSnapshot struct {
	Hier *cache.HierarchyState
	Pred *bpred.State
	// Seq identifies this snapshot within the warmer's chain; pass it to
	// Delta to capture the changes since this point.
	Seq uint64
}

// WarmDelta is a dirty-block delta between two consecutive warm
// snapshots: applying it to (a copy of) snapshot Since yields snapshot
// Seq exactly.
type WarmDelta struct {
	Hier *cache.HierarchyDelta
	Pred *bpred.Delta
	// Since is the sequence number of the baseline snapshot, Seq the
	// number this delta advances the chain to.
	Since, Seq uint64
}

// Bytes returns the approximate in-memory payload size of the delta.
func (d *WarmDelta) Bytes() int { return d.Hier.Bytes() + d.Pred.Bytes() }

// Snapshot captures the machine's full warm state and resets dirty
// tracking, making this snapshot the baseline for the next Delta — the
// keyframe of a delta chain.
func (w *Warmer) Snapshot() *WarmSnapshot {
	return &WarmSnapshot{
		Hier: w.machine.Hier.Snapshot(),
		Pred: w.machine.Pred.Snapshot(),
		Seq:  w.chain.Keyframe(),
	}
}

// Seq returns the warmer's current snapshot-chain link (0 before the
// first Snapshot).
func (w *Warmer) Seq() uint64 { return w.chain.Seq() }

// Delta captures only the state dirtied since the snapshot numbered
// since, which must be the warmer's most recent snapshot (full or
// delta) — deltas chain strictly; skipping a link would silently drop
// updates, so that is an error (enforced here and again by each
// structure's own chain).
func (w *Warmer) Delta(since uint64) (*WarmDelta, error) {
	seq, err := w.chain.Next(since)
	if err != nil {
		return nil, fmt.Errorf("uarch: %w", err)
	}
	hier, err := w.machine.Hier.Delta(since)
	if err != nil {
		return nil, fmt.Errorf("uarch: %w", err)
	}
	pred, err := w.machine.Pred.Delta(since)
	if err != nil {
		return nil, fmt.Errorf("uarch: %w", err)
	}
	return &WarmDelta{Hier: hier, Pred: pred, Since: since, Seq: seq}, nil
}

// FetchBlock returns the I-cache block of the last warmed fetch and
// whether one exists — the dedup state Forward keys consecutive-fetch
// suppression off. A resumable sweep journals it alongside the warm
// snapshot: restoring warm state without it would re-warm the first
// fetched block after resume and skew the LRU stamps off the
// uninterrupted sweep.
func (w *Warmer) FetchBlock() (block uint64, ok bool) {
	return w.lastIBlock, w.haveIBlock
}

// SetFetchBlock restores the fetch-dedup state captured by FetchBlock.
func (w *Warmer) SetFetchBlock(block uint64, ok bool) {
	w.lastIBlock, w.haveIBlock = block, ok
}

// warmBatch is the ForwardBatch ring size: large enough to amortize
// the per-batch interpreter entry/exit and warming-loop setup to
// nothing, small enough (32 bytes per record) to stay resident in L1
// while the warming loop re-reads what the interpreter just wrote.
const warmBatch = 256

// Forward advances the CPU by n instructions with functional warming.
//
//simlint:hotpath
func (w *Warmer) Forward(cpu *functional.CPU, n uint64) error {
	return w.ForwardBatch(cpu, n)
}

// ForwardBatch advances the CPU by up to n instructions with functional
// warming, in batches: the CPU's batch interpreter (RunDyn) fills the
// warmer's record ring, then the warming loop replays the ring into the
// selected structures, reading each record's pre-decoded class instead
// of re-deriving it per dynamic instruction. Warming consumes only the
// recorded outcomes (fetch PCs, effective addresses, branch results),
// never live architectural state, so deferring it by a batch leaves the
// warmed state bit-identical to instruction-at-a-time warming. A halt
// inside the batch warms every record through the Halt itself and
// returns nil, exactly as the per-instruction loop did.
//
//simlint:hotpath
func (w *Warmer) ForwardBatch(cpu *functional.CPU, n uint64) error {
	h := w.machine.Hier
	p := w.machine.Pred
	for n > 0 {
		batch := n
		if batch > warmBatch {
			batch = warmBatch
		}
		k, err := cpu.RunDyn(w.ring[:batch], batch)
		if err != nil {
			return err
		}
		if k == 0 {
			return nil // already halted
		}
		for i := uint64(0); i < k; i++ {
			d := &w.ring[i]
			if w.Components.ICache {
				iblock := d.PC * isa.InstBytes >> w.blockBits
				if !w.haveIBlock || iblock != w.lastIBlock {
					h.WarmFetch(d.PC * isa.InstBytes)
					w.haveIBlock, w.lastIBlock = true, iblock
				}
			}
			switch d.Class {
			case isa.ClassLoad:
				if w.Components.DCache {
					h.WarmData(d.EA, false)
				}
			case isa.ClassStore:
				if w.Components.DCache {
					h.WarmData(d.EA, true)
				}
			case isa.ClassBranch, isa.ClassJump, isa.ClassRet:
				if w.Components.Predictor {
					p.Warm(bpred.Outcome{
						Op: d.Op, PC: d.PC, Taken: d.Taken,
						Target: d.NextPC, NextPC: d.PC + 1,
					})
				}
			}
		}
		n -= k
		if cpu.Halted {
			return nil
		}
	}
	return nil
}
