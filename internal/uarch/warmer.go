package uarch

import (
	"repro/internal/bpred"
	"repro/internal/functional"
	"repro/internal/isa"
)

// WarmComponents selects which microarchitectural structures functional
// warming maintains. The paper's functional warming maintains all of
// them (its sim-cache + sim-bpred analogue); partial selections support
// the ablation experiment asking which state actually carries the bias.
type WarmComponents struct {
	ICache    bool
	DCache    bool // includes the L2 and TLBs on the data path
	Predictor bool
}

// AllComponents is the paper's full functional warming.
var AllComponents = WarmComponents{ICache: true, DCache: true, Predictor: true}

// Warmer replays the committed instruction stream into a machine's
// warmable structures (caches, TLBs, branch predictor) — the functional
// warming mode. It lives here, beside the Machine whose structures it
// drives, so both the SMARTS controller and the checkpoint capture
// sweep share the exact warming semantics.
type Warmer struct {
	machine    *Machine
	blockBits  uint
	lastIBlock uint64
	haveIBlock bool
	rec        functional.DynInst

	// Components selects the warmed structures; zero value warms nothing,
	// NewWarmer initializes it to AllComponents.
	Components WarmComponents
}

// NewWarmer builds a full warmer bound to m's structures.
func NewWarmer(m *Machine, cfg Config) *Warmer {
	return &Warmer{machine: m, blockBits: cfg.IL1.BlockBits, Components: AllComponents}
}

// Forward advances the CPU by n instructions with functional warming.
func (w *Warmer) Forward(cpu *functional.CPU, n uint64) error {
	h := w.machine.Hier
	p := w.machine.Pred
	for i := uint64(0); i < n; i++ {
		if err := cpu.Step(&w.rec); err != nil {
			if err == functional.ErrHalted {
				return nil
			}
			return err
		}
		d := &w.rec
		if w.Components.ICache {
			iblock := d.PC * isa.InstBytes >> w.blockBits
			if !w.haveIBlock || iblock != w.lastIBlock {
				h.WarmFetch(d.PC * isa.InstBytes)
				w.haveIBlock, w.lastIBlock = true, iblock
			}
		}
		switch d.Inst.Op.Class() {
		case isa.ClassLoad:
			if w.Components.DCache {
				h.WarmData(d.EA, false)
			}
		case isa.ClassStore:
			if w.Components.DCache {
				h.WarmData(d.EA, true)
			}
		case isa.ClassBranch, isa.ClassJump, isa.ClassRet:
			if w.Components.Predictor {
				p.Warm(bpred.Outcome{
					Op: d.Inst.Op, PC: d.PC, Taken: d.Taken,
					Target: d.NextPC, NextPC: d.PC + 1,
				})
			}
		}
	}
	return nil
}
