package uarch_test

// Mechanism-level tests: each drives the core with a hand-built dynamic
// instruction stream (no functional simulator) and checks that one
// microarchitectural mechanism — width limits, dependence stalls, cache
// misses, MSHR limits, store-buffer backpressure, mispredict penalties,
// store-to-load forwarding — has its intended timing effect.

import (
	"testing"

	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/uarch"
)

// streamSource replays a pre-built DynInst slice.
type streamSource struct {
	insts []functional.DynInst
	pos   int
}

func (s *streamSource) Next(d *functional.DynInst) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*d = s.insts[s.pos]
	s.pos++
	return true
}

// stream builds DynInst sequences with consistent Seq/PC/NextPC. PCs
// wrap modulo pcWrap so the instruction footprint is loop-like and
// I-cache resident, as in real code; tests about the data side would
// otherwise drown in compulsory instruction misses.
type stream struct {
	insts []functional.DynInst
	pc    uint64
}

const pcWrap = 64

func (b *stream) add(in isa.Inst, ea uint64, taken bool, next uint64) {
	d := functional.DynInst{
		Seq:    uint64(len(b.insts)),
		PC:     b.pc,
		Inst:   in,
		EA:     ea,
		Taken:  taken,
		NextPC: next,
	}
	b.insts = append(b.insts, d)
	b.pc = next
}

func (b *stream) next() uint64 { return (b.pc + 1) % pcWrap }

func (b *stream) alu(dst, s1, s2 isa.Reg) {
	b.add(isa.Inst{Op: isa.OpAdd, Dst: dst, Src1: s1, Src2: s2}, 0, false, b.next())
}

func (b *stream) load(dst isa.Reg, ea uint64) {
	b.add(isa.Inst{Op: isa.OpLoad, Dst: dst, Src1: isa.RegZero}, ea, false, b.next())
}

func (b *stream) store(ea uint64) {
	b.add(isa.Inst{Op: isa.OpStore, Src1: isa.RegZero, Src2: isa.RegZero}, ea, false, b.next())
}

func (b *stream) branch(taken bool, target uint64) {
	next := b.next()
	if taken {
		next = target % pcWrap
	}
	b.add(isa.Inst{Op: isa.OpBne, Src1: 1, Src2: isa.RegZero, Target: uint32(target % pcWrap)}, 0, taken, next)
}

func (b *stream) source() *streamSource { return &streamSource{insts: b.insts} }

// run simulates the stream to completion on a fresh machine.
func run(t *testing.T, cfg uarch.Config, b *stream) uarch.RunStats {
	t.Helper()
	m := uarch.NewMachine(cfg)
	core := uarch.NewCore(m)
	stats, err := core.Run(b.source(), uint64(len(b.insts)), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Insts != uint64(len(b.insts)) {
		t.Fatalf("committed %d of %d", stats.Insts, len(b.insts))
	}
	return stats
}

// TestWidthBoundsIPC: fully independent ALU ops reach an IPC near the
// machine width.
func TestWidthBoundsIPC(t *testing.T) {
	cfg := uarch.Config8Way()
	b := &stream{}
	for i := 0; i < 60000; i++ {
		b.alu(isa.Reg(1+i%8), isa.RegZero, isa.RegZero)
	}
	stats := run(t, cfg, b)
	ipc := float64(stats.Insts) / float64(stats.Cycles)
	// The front end sustains FetchWidth; allow pipeline fill slack. With
	// 4 IntALUs the sustained bound is IntALU=4, not the full width.
	if ipc < 3.0 || ipc > 4.5 {
		t.Errorf("independent-ALU IPC %.2f, want ~4 (IntALU pool)", ipc)
	}
}

// TestDependenceChainSerializes: a serial chain commits ~1 per cycle.
func TestDependenceChainSerializes(t *testing.T) {
	cfg := uarch.Config8Way()
	b := &stream{}
	for i := 0; i < 30000; i++ {
		b.alu(1, 1, 1) // r1 = r1 + r1, fully serial
	}
	stats := run(t, cfg, b)
	cpi := float64(stats.Cycles) / float64(stats.Insts)
	if cpi < 0.95 || cpi > 1.15 {
		t.Errorf("serial-chain CPI %.2f, want ~1", cpi)
	}
}

// TestColdLoadPaysMemoryLatency: one dependent load chain over cold,
// conflict-free blocks pays roughly the memory latency per load.
func TestColdLoadPaysMemoryLatency(t *testing.T) {
	cfg := uarch.Config8Way()
	b := &stream{}
	const n = 500
	for i := 0; i < n; i++ {
		// Dependent chain: each load's result feeds an ALU op feeding the
		// next load's (nominal) address — model with a serial register.
		b.load(1, uint64(i)*4096+uint64(i/512)*64) // distinct pages: TLB pressure too
		b.alu(1, 1, 1)
	}
	// Serialize loads by making each ALU depend on the load and the next
	// load read r1 (our builder uses RegZero base, so serialize manually):
	for i := range b.insts {
		if b.insts[i].Inst.Op == isa.OpLoad {
			b.insts[i].Inst.Src1 = 1 // depends on previous ALU result
		}
	}
	stats := run(t, cfg, b)
	cyclesPerPair := float64(stats.Cycles) / n
	// Each pair costs ≥ memory latency (100) and typically a TLB walk
	// every new page; well under 2x that with overheads.
	if cyclesPerPair < 90 || cyclesPerPair > 700 {
		t.Errorf("cycles per dependent cold load %.1f, want O(mem latency)", cyclesPerPair)
	}
}

// TestMSHRLimitBoundsMLP: independent cold misses overlap up to the MSHR
// count; halving MSHRs should visibly increase runtime.
func TestMSHRLimitBoundsMLP(t *testing.T) {
	mkStream := func() *stream {
		b := &stream{}
		for i := 0; i < 4000; i++ {
			b.load(isa.Reg(1+i%8), uint64(i)*64) // distinct blocks, independent
		}
		return b
	}
	wide := uarch.Config8Way()
	wide.MSHRs = 8
	narrow := uarch.Config8Way()
	narrow.MSHRs = 1
	cWide := run(t, wide, mkStream())
	cNarrow := run(t, narrow, mkStream())
	if float64(cNarrow.Cycles) < 2*float64(cWide.Cycles) {
		t.Errorf("MSHR=1 (%d cycles) not much slower than MSHR=8 (%d cycles)",
			cNarrow.Cycles, cWide.Cycles)
	}
}

// TestStoreBufferBackpressure: a burst of cold-miss stores stalls commit
// when the store buffer is tiny.
func TestStoreBufferBackpressure(t *testing.T) {
	// Bursts of cold-miss stores separated by long compute stretches: a
	// deep store buffer absorbs each burst while a 1-entry buffer stalls
	// commit for the drain latency of every store. (Under *sustained*
	// store overload both sizes converge to the drain rate, so the burst
	// structure is what isolates the buffer's effect.)
	mkStream := func() *stream {
		b := &stream{}
		for burst := 0; burst < 20; burst++ {
			for s := 0; s < 8; s++ {
				b.store(uint64(burst*8+s) * 64) // distinct cold blocks
			}
			for a := 0; a < 4000; a++ {
				b.alu(isa.Reg(1+a%8), isa.RegZero, isa.RegZero)
			}
		}
		return b
	}
	big := uarch.Config8Way()
	big.StoreBufEntries = 64
	small := uarch.Config8Way()
	small.StoreBufEntries = 1
	cBig := run(t, big, mkStream())
	cSmall := run(t, small, mkStream())
	if float64(cSmall.Cycles) < 1.5*float64(cBig.Cycles) {
		t.Errorf("SB=1 (%d cycles) not slower than SB=64 (%d cycles)",
			cSmall.Cycles, cBig.Cycles)
	}
}

// TestMispredictPenaltyCharged: alternating branches on a cold predictor
// cost more than a monomorphic trained branch stream.
func TestMispredictPenaltyCharged(t *testing.T) {
	cfg := uarch.Config8Way()
	mono := &stream{}
	alt := &stream{}
	for i := 0; i < 3000; i++ {
		mono.alu(1, isa.RegZero, isa.RegZero)
		mono.branch(false, 0) // never taken: trivially predictable
		alt.alu(1, isa.RegZero, isa.RegZero)
		// Data-random direction defeats both predictor components.
		taken := (i*2654435761)%97 < 48
		alt.branch(taken, alt.pc+1) // target = fall-through either way
	}
	cMono := run(t, cfg, mono)
	cAlt := run(t, cfg, alt)
	if float64(cAlt.Cycles) < 1.3*float64(cMono.Cycles) {
		t.Errorf("hard branches (%d cycles) not slower than easy (%d cycles)",
			cAlt.Cycles, cMono.Cycles)
	}
}

// TestStoreToLoadForwarding: a load of a just-stored address bypasses
// the cache, so it runs much faster than the same pattern loading a
// different (cold) block each iteration.
func TestStoreToLoadForwarding(t *testing.T) {
	cfg := uarch.Config8Way()
	fwd := &stream{}
	nofwd := &stream{}
	for i := 0; i < 4000; i++ {
		ea := uint64(1 << 30)
		fwd.store(ea)
		fwd.load(1, ea) // forwarded from the in-flight store
		fwd.alu(2, 1, 1)
		nofwd.store(ea)
		nofwd.load(1, uint64(i)*64) // distinct cold block: no forwarding
		nofwd.alu(2, 1, 1)
	}
	f := run(t, cfg, fwd)
	n := run(t, cfg, nofwd)
	if float64(n.Cycles) < 1.5*float64(f.Cycles) {
		t.Errorf("cold loads (%d cycles) not slower than forwarded loads (%d cycles)",
			n.Cycles, f.Cycles)
	}
	// And the forwarded loop itself stays near pipeline speed (bounded by
	// store-buffer drain, far from the 100-cycle miss latency).
	if cpi := float64(f.Cycles) / float64(f.Insts); cpi > 4 {
		t.Errorf("forwarding CPI %.2f, want < 4", cpi)
	}
}

// TestROBLimitsOverlap: a window-sized block of independent work behind
// a long-latency load overlaps; beyond the window it cannot.
func TestROBLimitsOverlap(t *testing.T) {
	small := uarch.Config8Way()
	small.RUUSize = 16
	big := uarch.Config8Way()
	big.RUUSize = 256
	mkStream := func() *stream {
		b := &stream{}
		for i := 0; i < 200; i++ {
			b.load(1, uint64(i)*64+(1<<28)) // cold miss, 100 cycles
			for j := 0; j < 60; j++ {
				b.alu(isa.Reg(2+j%6), isa.RegZero, isa.RegZero) // independent filler
			}
		}
		return b
	}
	cSmall := run(t, small, mkStream())
	cBig := run(t, big, mkStream())
	if float64(cSmall.Cycles) < 1.2*float64(cBig.Cycles) {
		t.Errorf("RUU=16 (%d cycles) not slower than RUU=256 (%d cycles)",
			cSmall.Cycles, cBig.Cycles)
	}
}

// TestEnergyTracksActivity: memory-heavy streams burn more energy per
// instruction than ALU streams.
func TestEnergyTracksActivity(t *testing.T) {
	cfg := uarch.Config8Way()
	aluS := &stream{}
	memS := &stream{}
	for i := 0; i < 2000; i++ {
		aluS.alu(1, isa.RegZero, isa.RegZero)
		memS.load(1, uint64(i)*64)
	}
	a := run(t, cfg, aluS)
	m := run(t, cfg, memS)
	epiALU := a.EnergyNJ / float64(a.Insts)
	epiMem := m.EnergyNJ / float64(m.Insts)
	if epiMem < 2*epiALU {
		t.Errorf("memory EPI %.2f not >> ALU EPI %.2f", epiMem, epiALU)
	}
}

// TestResetPipelinePreservesWarmState: pipeline reset must not disturb
// caches or predictor (the property SMARTS mode-switching relies on).
func TestResetPipelinePreservesWarmState(t *testing.T) {
	cfg := uarch.Config8Way()
	m := uarch.NewMachine(cfg)
	core := uarch.NewCore(m)
	b := &stream{}
	for i := 0; i < 100; i++ {
		b.load(1, uint64(i)*64)
	}
	if _, err := core.Run(b.source(), 100, nil); err != nil {
		t.Fatal(err)
	}
	if !m.Hier.DL1.Probe(0) {
		t.Fatal("block 0 not resident after run")
	}
	core.ResetPipeline()
	if !m.Hier.DL1.Probe(0) {
		t.Error("ResetPipeline flushed the data cache")
	}
	// A rerun of the same addresses is now much faster (warm hits).
	b2 := &stream{}
	for i := 0; i < 100; i++ {
		b2.load(1, uint64(i)*64)
	}
	stats, err := core.Run(b2.source(), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cpi := float64(stats.Cycles) / 100; cpi > 10 {
		t.Errorf("warm rerun CPI %.1f, want small", cpi)
	}
}
