// Package uarch implements the detailed cycle-driven out-of-order
// superscalar timing model — the substrate the SMARTS paper's SMARTSim
// wraps with sampling. The organization follows SimpleScalar's
// sim-outorder (the paper's base simulator): an oracle functional core
// (internal/functional) resolves instruction semantics, and this package
// models timing around the resulting dynamic instruction stream with a
// register update unit (RUU), a load/store queue, per-class functional
// unit pools, a combining branch predictor, a multi-level cache
// hierarchy with MSHRs, and a committed-store buffer.
//
// Wrong-path instructions are not executed; a mispredicted control
// instruction stalls fetch until it resolves and then charges the
// configured redirect penalty. This is the one organizational deviation
// from sim-outorder and is a documented source of the (measured,
// bounded) residual warming bias in the Table 5 experiment.
package uarch

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/isa"
)

// Config describes one simulated machine (paper Table 3). Fields the
// functional sweep observes are folded into checkpoint.WarmSignature;
// the rest shape detailed replay only and are marked nonkey so
// machine variants differing in timing/width share one sweep.
//
//simlint:keystruct WarmSignature
type Config struct {
	//simlint:nonkey display label; never observed by the sweep
	Name string

	// Pipeline widths.
	//simlint:nonkey detailed-replay timing; the sweep never fetches in widths
	FetchWidth, DecodeWidth, IssueWidth, CommitWidth int
	// DecodeDepth is the front-end depth in cycles between fetch and
	// earliest dispatch.
	//simlint:nonkey detailed-replay timing
	DecodeDepth int

	// Window sizes.
	//simlint:nonkey detailed-replay structures; not warmed by the sweep
	RUUSize, LSQSize int

	// Memory system.
	//simlint:nonkey detailed-replay structure; not warmed by the sweep
	StoreBufEntries int
	//simlint:nonkey detailed-replay structure; not warmed by the sweep
	MSHRs int
	//simlint:nonkey detailed-replay bandwidth; not warmed by the sweep
	DL1Ports     int
	IL1, DL1, L2 cache.Config
	ITLBEntries  int
	DTLBEntries  int
	TLBWays      int
	//simlint:nonkey access latencies shape replay cycle counts, not warm contents
	Lat cache.Latencies

	// Functional units.
	//simlint:nonkey detailed-replay resources; not warmed by the sweep
	IntALU, IntMulDiv, FPALU, FPMulDiv int

	// Branch prediction.
	BPred bpred.Config
	//simlint:nonkey replay penalty cycles; prediction contents are keyed via BPred
	MispredictPenalty int
	//simlint:nonkey replay bandwidth; prediction contents are keyed via BPred
	PredsPerCycle int

	// Execution latencies by instruction class (loads use the hierarchy).
	//simlint:nonkey detailed-replay timing
	OpLat [isa.NumClasses]int

	// EnergyScale scales the Wattch-like event energies for this width.
	//simlint:nonkey energy accounting; never observed by the sweep
	EnergyScale float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("uarch %s: pipeline widths must be positive", c.Name)
	}
	if c.RUUSize <= 0 || c.LSQSize <= 0 {
		return fmt.Errorf("uarch %s: window sizes must be positive", c.Name)
	}
	if c.StoreBufEntries <= 0 || c.MSHRs <= 0 || c.DL1Ports <= 0 {
		return fmt.Errorf("uarch %s: memory resources must be positive", c.Name)
	}
	if c.IntALU <= 0 || c.IntMulDiv <= 0 || c.FPALU <= 0 || c.FPMulDiv <= 0 {
		return fmt.Errorf("uarch %s: functional unit counts must be positive", c.Name)
	}
	for _, cc := range []cache.Config{c.IL1, c.DL1, c.L2} {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("uarch %s: %w", c.Name, err)
		}
	}
	return c.BPred.Validate()
}

// defaultOpLat returns the per-class execution latencies shared by both
// configurations (SimpleScalar defaults).
func defaultOpLat() [isa.NumClasses]int {
	var l [isa.NumClasses]int
	l[isa.ClassNop] = 1
	l[isa.ClassIntALU] = 1
	l[isa.ClassIntMul] = 3
	l[isa.ClassIntDiv] = 20
	l[isa.ClassFPALU] = 2
	l[isa.ClassFPMul] = 4
	l[isa.ClassFPDiv] = 12
	l[isa.ClassLoad] = 1 // address generation; memory latency added by the hierarchy
	l[isa.ClassStore] = 1
	l[isa.ClassBranch] = 1
	l[isa.ClassJump] = 1
	l[isa.ClassRet] = 1
	l[isa.ClassHalt] = 1
	return l
}

// Config8Way returns the paper's baseline 8-way machine (Table 3, left
// column): 128-entry RUU, 64-entry LSQ, 32KB 2-way L1s, 1MB 4-way L2,
// 16-entry store buffer, 8 MSHRs, 2 D-cache ports, combined predictor
// with 2K tables and a 7-cycle mispredict penalty.
func Config8Way() Config {
	return Config{
		Name:            "8-way",
		FetchWidth:      8,
		DecodeWidth:     8,
		IssueWidth:      8,
		CommitWidth:     8,
		DecodeDepth:     2,
		RUUSize:         128,
		LSQSize:         64,
		StoreBufEntries: 16,
		MSHRs:           8,
		DL1Ports:        2,
		IL1:             cache.Config{Name: "IL1", Sets: 256, Ways: 2, BlockBits: 6}, // 32KB
		DL1:             cache.Config{Name: "DL1", Sets: 256, Ways: 2, BlockBits: 6}, // 32KB
		L2:              cache.Config{Name: "L2", Sets: 4096, Ways: 4, BlockBits: 6}, // 1MB
		ITLBEntries:     128,
		DTLBEntries:     256,
		TLBWays:         4,
		Lat:             cache.Latencies{L1: 1, L2: 12, Mem: 100, TLB: 200},
		IntALU:          4,
		IntMulDiv:       2,
		FPALU:           2,
		FPMulDiv:        1,
		BPred: bpred.Config{
			TableEntries: 2048,
			HistoryBits:  11,
			BTBSets:      512,
			BTBWays:      4,
			RASEntries:   8,
		},
		MispredictPenalty: 7,
		PredsPerCycle:     1,
		OpLat:             defaultOpLat(),
		EnergyScale:       1.0,
	}
}

// Config16Way returns the paper's aggressive 16-way machine (Table 3,
// right column): 256-entry RUU, 128-entry LSQ, 64KB 2-way L1s, 2MB 8-way
// L2, 32-entry store buffer, 16 MSHRs, 4 D-cache ports, 8K predictor
// tables, 10-cycle mispredict penalty, 2 predictions per cycle.
func Config16Way() Config {
	return Config{
		Name:            "16-way",
		FetchWidth:      16,
		DecodeWidth:     16,
		IssueWidth:      16,
		CommitWidth:     16,
		DecodeDepth:     2,
		RUUSize:         256,
		LSQSize:         128,
		StoreBufEntries: 32,
		MSHRs:           16,
		DL1Ports:        4,
		IL1:             cache.Config{Name: "IL1", Sets: 512, Ways: 2, BlockBits: 6}, // 64KB
		DL1:             cache.Config{Name: "DL1", Sets: 512, Ways: 2, BlockBits: 6}, // 64KB
		L2:              cache.Config{Name: "L2", Sets: 4096, Ways: 8, BlockBits: 6}, // 2MB
		ITLBEntries:     128,
		DTLBEntries:     256,
		TLBWays:         4,
		Lat:             cache.Latencies{L1: 2, L2: 16, Mem: 100, TLB: 200},
		IntALU:          16,
		IntMulDiv:       8,
		FPALU:           8,
		FPMulDiv:        4,
		BPred: bpred.Config{
			TableEntries: 8192,
			HistoryBits:  13,
			BTBSets:      1024,
			BTBWays:      4,
			RASEntries:   16,
		},
		MispredictPenalty: 10,
		PredsPerCycle:     2,
		OpLat:             defaultOpLat(),
		EnergyScale:       1.6,
	}
}

// ConfigByName returns the named standard configuration.
func ConfigByName(name string) (Config, error) {
	switch name {
	case "8-way", "8way", "8":
		return Config8Way(), nil
	case "16-way", "16way", "16":
		return Config16Way(), nil
	}
	return Config{}, fmt.Errorf("uarch: unknown config %q", name)
}

// Machine bundles the warmable structures of one simulated processor:
// the cache hierarchy, the branch prediction unit, and the energy meter.
// These persist across simulation-mode switches; the pipeline (inside
// Core) is the only state that detailed warming has to rebuild.
type Machine struct {
	Cfg   Config
	Hier  *cache.Hierarchy
	Pred  *bpred.Unit
	Meter *energy.Meter
}

// NewMachine builds the warmable state for cfg.
func NewMachine(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	hier := &cache.Hierarchy{
		IL1:  cache.New(cfg.IL1),
		DL1:  cache.New(cfg.DL1),
		L2:   cache.New(cfg.L2),
		ITLB: cache.NewTLB("ITLB", cfg.ITLBEntries, cfg.TLBWays, 12),
		DTLB: cache.NewTLB("DTLB", cfg.DTLBEntries, cfg.TLBWays, 12),
		Lat:  cfg.Lat,
	}
	return &Machine{
		Cfg:   cfg,
		Hier:  hier,
		Pred:  bpred.New(cfg.BPred),
		Meter: energy.NewMeter(energy.DefaultModel(cfg.EnergyScale)),
	}
}

// FlushWarmState resets caches, TLBs, and predictor to cold.
func (m *Machine) FlushWarmState() {
	m.Hier.FlushAll()
	m.Pred.Flush()
}
