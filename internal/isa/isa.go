// Package isa defines the synthetic 64-bit RISC instruction set used by
// every simulator in this repository.
//
// The ISA is deliberately small — large enough to express the memory,
// compute, and control behaviour of the synthetic SPEC2K-like workload
// suite (see internal/program), small enough that the functional and
// detailed simulators share one unambiguous semantics.
//
// Machine model:
//
//   - 32 integer registers R0..R31. R0 is hardwired to zero; writes to it
//     are discarded. By convention R30 is a stack/frame pointer and R31 is
//     the link register written by Call and read by Ret.
//   - 32 floating-point registers F0..F31, stored as IEEE-754 float64 bit
//     patterns in the shared 64-entry register file.
//   - A flat little-endian byte-addressed memory (see internal/mem).
//   - The program counter indexes instructions (PC increments by exactly 1
//     for sequential flow). For the purposes of instruction-cache and
//     I-TLB modelling an instruction occupies InstBytes bytes at byte
//     address PC*InstBytes.
package isa

import "fmt"

// Reg identifies one of the 64 architectural registers. Values 0..31 are
// the integer registers; values 32..63 are the floating-point registers.
type Reg uint8

// Register file layout.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// RegZero is the hardwired zero register.
	RegZero Reg = 0
	// RegSP is the conventional stack pointer (software convention only).
	RegSP Reg = 30
	// RegLR is the link register written by Call and consumed by Ret.
	RegLR Reg = 31
	// FP returns the i'th floating point register via FP(i).
	fpBase Reg = NumIntRegs
)

// FP returns the register name of floating-point register i (0..31).
func FP(i int) Reg { return fpBase + Reg(i) }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= fpBase }

// String implements fmt.Stringer.
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", int(r-fpBase))
	}
	return fmt.Sprintf("r%d", int(r))
}

// InstBytes is the architectural size of one instruction in memory, used
// to derive byte addresses for instruction fetch (I-cache, I-TLB).
const InstBytes = 8

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. The comment gives the semantics using d = Dst, a = Src1,
// b = Src2, imm = Imm, tgt = Target.
const (
	OpNop Op = iota // no operation

	// Integer ALU, register-register.
	OpAdd // d = a + b
	OpSub // d = a - b
	OpAnd // d = a & b
	OpOr  // d = a | b
	OpXor // d = a ^ b
	OpShl // d = a << (b & 63)
	OpShr // d = a >> (b & 63) (logical)
	OpSlt // d = (int64(a) < int64(b)) ? 1 : 0

	// Integer ALU, register-immediate.
	OpAddI // d = a + imm
	OpAndI // d = a & imm
	OpOrI  // d = a | imm
	OpXorI // d = a ^ imm
	OpShlI // d = a << (imm & 63)
	OpShrI // d = a >> (imm & 63) (logical)
	OpSltI // d = (int64(a) < imm) ? 1 : 0

	// Integer multiply / divide.
	OpMul // d = a * b
	OpDiv // d = int64(a) / int64(b); b==0 yields 0
	OpRem // d = int64(a) % int64(b); b==0 yields 0

	// Floating point (operands are FP registers holding float64 bits).
	OpFAdd  // d = a + b
	OpFSub  // d = a - b
	OpFMul  // d = a * b
	OpFDiv  // d = a / b; b==0 yields +Inf per IEEE
	OpFNeg  // d = -a
	OpCvtIF // d(fp) = float64(int64(a))
	OpCvtFI // d(int) = int64(float64(a))

	// Memory. Effective address EA = a + imm.
	OpLoad    // d = mem64[EA]
	OpLoad32  // d = zext(mem32[EA])
	OpStore   // mem64[EA] = b
	OpStore32 // mem32[EA] = uint32(b)
	OpFLoad   // d(fp) = mem64[EA] (raw bits)
	OpFStore  // mem64[EA] = b(fp raw bits)

	// Control. Targets are absolute instruction indices.
	OpBeq  // if a == b: PC = tgt
	OpBne  // if a != b: PC = tgt
	OpBlt  // if int64(a) < int64(b): PC = tgt
	OpBge  // if int64(a) >= int64(b): PC = tgt
	OpJmp  // PC = tgt
	OpJr   // PC = a (indirect jump)
	OpCall // LR = PC + 1; PC = tgt
	OpRet  // PC = LR

	// OpHalt terminates the program.
	OpHalt

	numOps = int(OpHalt) + 1
)

// Class groups opcodes by the functional unit and pipeline treatment they
// receive in the detailed model, and by the warming action they require.
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPALU
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional direct jumps and calls
	ClassRet    // returns and indirect jumps
	ClassHalt

	NumClasses = int(ClassHalt) + 1
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "ialu"
	case ClassIntMul:
		return "imul"
	case ClassIntDiv:
		return "idiv"
	case ClassFPALU:
		return "falu"
	case ClassFPMul:
		return "fmul"
	case ClassFPDiv:
		return "fdiv"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassRet:
		return "ret"
	case ClassHalt:
		return "halt"
	}
	return "unknown"
}

var opClass = [numOps]Class{
	OpNop: ClassNop,

	OpAdd: ClassIntALU, OpSub: ClassIntALU, OpAnd: ClassIntALU,
	OpOr: ClassIntALU, OpXor: ClassIntALU, OpShl: ClassIntALU,
	OpShr: ClassIntALU, OpSlt: ClassIntALU,
	OpAddI: ClassIntALU, OpAndI: ClassIntALU, OpOrI: ClassIntALU,
	OpXorI: ClassIntALU, OpShlI: ClassIntALU, OpShrI: ClassIntALU,
	OpSltI: ClassIntALU,

	OpMul: ClassIntMul, OpDiv: ClassIntDiv, OpRem: ClassIntDiv,

	OpFAdd: ClassFPALU, OpFSub: ClassFPALU, OpFNeg: ClassFPALU,
	OpCvtIF: ClassFPALU, OpCvtFI: ClassFPALU,
	OpFMul: ClassFPMul, OpFDiv: ClassFPDiv,

	OpLoad: ClassLoad, OpLoad32: ClassLoad, OpFLoad: ClassLoad,
	OpStore: ClassStore, OpStore32: ClassStore, OpFStore: ClassStore,

	OpBeq: ClassBranch, OpBne: ClassBranch, OpBlt: ClassBranch,
	OpBge: ClassBranch,
	OpJmp: ClassJump, OpCall: ClassJump,
	OpJr: ClassRet, OpRet: ClassRet,

	OpHalt: ClassHalt,
}

var opNames = [numOps]string{
	OpNop: "nop",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSlt: "slt",
	OpAddI: "addi", OpAndI: "andi", OpOrI: "ori", OpXorI: "xori",
	OpShlI: "shli", OpShrI: "shri", OpSltI: "slti",
	OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpLoad: "ld", OpLoad32: "ld32", OpStore: "st", OpStore32: "st32",
	OpFLoad: "fld", OpFStore: "fst",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJmp: "jmp", OpJr: "jr", OpCall: "call", OpRet: "ret",
	OpHalt: "halt",
}

// Class returns the instruction class of op.
//
//simlint:hotpath
func (o Op) Class() Class {
	if int(o) >= numOps {
		return ClassNop
	}
	return opClass[o]
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return int(o) < numOps }

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) >= numOps {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opNames[o]
}

// IsMem reports whether o is a load or store.
func (o Op) IsMem() bool {
	c := o.Class()
	return c == ClassLoad || c == ClassStore
}

// IsControl reports whether o can change the PC non-sequentially.
func (o Op) IsControl() bool {
	switch o.Class() {
	case ClassBranch, ClassJump, ClassRet:
		return true
	}
	return false
}

// Inst is one static instruction.
//
// Not every field is meaningful for every opcode; unused fields must be
// zero (Encode/Decode round-trips rely on it and the assembler in
// internal/program guarantees it).
type Inst struct {
	Op     Op
	Dst    Reg    // destination register (loads, ALU, call writes LR implicitly)
	Src1   Reg    // first source (base register for memory ops)
	Src2   Reg    // second source (store data register)
	Imm    int64  // immediate / memory offset
	Target uint32 // absolute instruction index for direct control flow
}

// DecInst is the pre-decoded dense form of one static instruction, the
// representation the functional interpreter's batch loop executes from:
// the class resolved and the immediate and target widened once per
// static instruction instead of once per dynamic one. It is derived
// state only — Inst remains the canonical encoding.
type DecInst struct {
	// Imm is the immediate, widened once (two's complement preserved).
	Imm uint64
	// Target is the absolute instruction index for direct control flow.
	Target uint64
	// Op is the opcode; Class caches Op.Class().
	Op    Op
	Class Class
	// Dst, Src1, Src2 are the operand registers, as on Inst.
	Dst, Src1, Src2 Reg
}

// Predecode resolves code into its dense pre-decoded form. One pass at
// interpreter construction replaces the per-dynamic-instruction class
// lookups and immediate widenings of instruction-at-a-time execution.
func Predecode(code []Inst) []DecInst {
	dec := make([]DecInst, len(code))
	for i, in := range code {
		dec[i] = DecInst{
			Imm:    uint64(in.Imm),
			Target: uint64(in.Target),
			Op:     in.Op,
			Class:  in.Op.Class(),
			Dst:    in.Dst,
			Src1:   in.Src1,
			Src2:   in.Src2,
		}
	}
	return dec
}

// String renders the instruction in a readable assembly-like form.
func (i Inst) String() string {
	switch i.Op.Class() {
	case ClassNop, ClassHalt:
		return i.Op.String()
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Dst, i.Imm, i.Src1)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Src2, i.Imm, i.Src1)
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, @%d", i.Op, i.Src1, i.Src2, i.Target)
	case ClassJump:
		return fmt.Sprintf("%s @%d", i.Op, i.Target)
	case ClassRet:
		if i.Op == OpJr {
			return fmt.Sprintf("jr %s", i.Src1)
		}
		return "ret"
	default:
		if i.hasImm() {
			return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Dst, i.Src1, i.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Dst, i.Src1, i.Src2)
	}
}

func (i Inst) hasImm() bool {
	switch i.Op {
	case OpAddI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpSltI:
		return true
	}
	return i.Op.IsMem()
}

// Reads returns the architectural source registers read by the
// instruction. Registers that are not read are returned as RegZero, which
// the pipeline treats as always-ready.
func (i Inst) Reads() (s1, s2 Reg) {
	switch i.Op {
	case OpNop, OpHalt, OpJmp, OpCall:
		return RegZero, RegZero
	case OpRet:
		return RegLR, RegZero
	case OpJr:
		return i.Src1, RegZero
	case OpLoad, OpLoad32, OpFLoad:
		return i.Src1, RegZero
	case OpStore, OpStore32, OpFStore:
		return i.Src1, i.Src2
	case OpAddI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpSltI,
		OpFNeg, OpCvtIF, OpCvtFI:
		return i.Src1, RegZero
	default:
		return i.Src1, i.Src2
	}
}

// Writes returns the architectural destination register, or RegZero when
// the instruction writes no register. Call writes RegLR.
func (i Inst) Writes() Reg {
	switch i.Op.Class() {
	case ClassStore, ClassBranch, ClassRet, ClassNop, ClassHalt:
		return RegZero
	case ClassJump:
		if i.Op == OpCall {
			return RegLR
		}
		return RegZero
	}
	return i.Dst
}
