package isa

import (
	"encoding/binary"
	"fmt"
)

// EncodedSize is the number of bytes one instruction occupies in the
// serialized program format (not the architectural InstBytes; the
// serialized format is wider so the full 64-bit immediate survives a
// round-trip).
const EncodedSize = 16

// Encode serializes the instruction into buf, which must be at least
// EncodedSize bytes long. The layout is little-endian:
//
//	byte 0      Op
//	byte 1      Dst
//	byte 2      Src1
//	byte 3      Src2
//	bytes 4-7   Target (uint32)
//	bytes 8-15  Imm (int64)
func (i Inst) Encode(buf []byte) {
	_ = buf[EncodedSize-1]
	buf[0] = byte(i.Op)
	buf[1] = byte(i.Dst)
	buf[2] = byte(i.Src1)
	buf[3] = byte(i.Src2)
	binary.LittleEndian.PutUint32(buf[4:8], i.Target)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(i.Imm))
}

// Decode deserializes one instruction from buf (at least EncodedSize
// bytes). It returns an error if the opcode or register fields are out of
// range.
func Decode(buf []byte) (Inst, error) {
	if len(buf) < EncodedSize {
		return Inst{}, fmt.Errorf("isa: decode: short buffer (%d bytes)", len(buf))
	}
	i := Inst{
		Op:     Op(buf[0]),
		Dst:    Reg(buf[1]),
		Src1:   Reg(buf[2]),
		Src2:   Reg(buf[3]),
		Target: binary.LittleEndian.Uint32(buf[4:8]),
		Imm:    int64(binary.LittleEndian.Uint64(buf[8:16])),
	}
	if !i.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d", buf[0])
	}
	if i.Dst >= NumRegs || i.Src1 >= NumRegs || i.Src2 >= NumRegs {
		return Inst{}, fmt.Errorf("isa: decode: register out of range in %v", buf[:4])
	}
	return i, nil
}
