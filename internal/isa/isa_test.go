package isa_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// TestEncodeDecodeRoundTrip property-checks the instruction serialization.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, dst, s1, s2 uint8, imm int64, tgt uint32) bool {
		in := isa.Inst{
			Op:     isa.Op(op % 45), // stay within or near the valid range
			Dst:    isa.Reg(dst % isa.NumRegs),
			Src1:   isa.Reg(s1 % isa.NumRegs),
			Src2:   isa.Reg(s2 % isa.NumRegs),
			Imm:    imm,
			Target: tgt,
		}
		if !in.Op.Valid() {
			return true // Decode rejects invalid opcodes; skip
		}
		var buf [isa.EncodedSize]byte
		in.Encode(buf[:])
		out, err := isa.Decode(buf[:])
		if err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestDecodeRejectsInvalid checks error paths.
func TestDecodeRejectsInvalid(t *testing.T) {
	var buf [isa.EncodedSize]byte
	buf[0] = 0xFF // invalid opcode
	if _, err := isa.Decode(buf[:]); err == nil {
		t.Error("Decode accepted invalid opcode")
	}
	buf[0] = byte(isa.OpAdd)
	buf[1] = 200 // register out of range
	if _, err := isa.Decode(buf[:]); err == nil {
		t.Error("Decode accepted out-of-range register")
	}
	if _, err := isa.Decode(buf[:4]); err == nil {
		t.Error("Decode accepted short buffer")
	}
}

// TestOpClassTotal ensures every opcode has a class and a name.
func TestOpClassTotal(t *testing.T) {
	for op := isa.OpNop; op.Valid(); op++ {
		if op != isa.OpNop && op.Class() == isa.ClassNop {
			t.Errorf("opcode %d (%v) has no class", op, op)
		}
		if op.String() == "" || op.String()[0] == 'o' && op.String()[1] == 'p' {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

// TestReadsWrites spot-checks dependence metadata used by the pipeline.
func TestReadsWrites(t *testing.T) {
	cases := []struct {
		in     isa.Inst
		s1, s2 isa.Reg
		d      isa.Reg
	}{
		{isa.Inst{Op: isa.OpAdd, Dst: 3, Src1: 1, Src2: 2}, 1, 2, 3},
		{isa.Inst{Op: isa.OpAddI, Dst: 3, Src1: 1, Imm: 7}, 1, isa.RegZero, 3},
		{isa.Inst{Op: isa.OpLoad, Dst: 4, Src1: 5, Imm: 8}, 5, isa.RegZero, 4},
		{isa.Inst{Op: isa.OpStore, Src1: 5, Src2: 6}, 5, 6, isa.RegZero},
		{isa.Inst{Op: isa.OpCall, Target: 9}, isa.RegZero, isa.RegZero, isa.RegLR},
		{isa.Inst{Op: isa.OpRet}, isa.RegLR, isa.RegZero, isa.RegZero},
		{isa.Inst{Op: isa.OpJr, Src1: 7}, 7, isa.RegZero, isa.RegZero},
		{isa.Inst{Op: isa.OpBeq, Src1: 1, Src2: 2}, 1, 2, isa.RegZero},
	}
	for _, c := range cases {
		s1, s2 := c.in.Reads()
		if s1 != c.s1 || s2 != c.s2 {
			t.Errorf("%v: Reads() = %v,%v want %v,%v", c.in, s1, s2, c.s1, c.s2)
		}
		if d := c.in.Writes(); d != c.d {
			t.Errorf("%v: Writes() = %v want %v", c.in, d, c.d)
		}
	}
}
