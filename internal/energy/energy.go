// Package energy implements a Wattch-style activity-based energy model.
//
// Wattch (Brooks et al., ISCA 2000) estimates power by attributing a
// per-access energy to each microarchitectural structure and summing
// activity; with conditional clocking, idle structures still draw a
// fraction of their peak power. This package reproduces that accounting
// shape: the detailed core reports events (fetches, window operations,
// register-file ports, functional-unit operations, cache accesses,
// predictor lookups), the meter integrates event energies plus a
// per-cycle baseline, and energy-per-instruction (EPI) falls out as
// total energy over committed instructions.
//
// Absolute values are loosely calibrated to Wattch-era 0.18um numbers
// (a few nJ per instruction overall); the SMARTS experiments only rely
// on EPI being an additive per-unit metric with somewhat lower relative
// variance than CPI, which this model yields by construction (much of
// EPI is per-instruction event energy, while CPI also absorbs stall
// cycles).
package energy

// Event identifies one energy-consuming activity.
type Event int

// Events reported by the detailed core.
const (
	EvFetch    Event = iota // one instruction fetched (I-cache read port)
	EvBPred                 // one predictor lookup or update
	EvDispatch              // rename + window write for one instruction
	EvIssue                 // window wakeup/select + operand read
	EvRegRead               // one register file read port use
	EvRegWrite              // one register file write port use
	EvIntALU                // integer ALU operation
	EvIntMul                // integer multiply/divide operation
	EvFPALU                 // FP add/compare operation
	EvFPMul                 // FP multiply/divide operation
	EvDL1                   // L1 data cache access
	EvIL1                   // L1 instruction cache access
	EvL2                    // unified L2 access
	EvMem                   // main memory access
	EvCommit                // ROB retire for one instruction
	EvFlush                 // pipeline flush (mispredict recovery)

	NumEvents = int(EvFlush) + 1
)

// String implements fmt.Stringer.
func (e Event) String() string {
	names := [...]string{
		"fetch", "bpred", "dispatch", "issue", "regread", "regwrite",
		"intalu", "intmul", "fpalu", "fpmul", "dl1", "il1", "l2", "mem",
		"commit", "flush",
	}
	if int(e) < len(names) {
		return names[e]
	}
	return "unknown"
}

// Model holds per-event energies in nanojoules and the per-cycle
// baseline (clock tree + conditional-clocking floor).
type Model struct {
	// PerEvent is the energy in nJ charged per event occurrence.
	PerEvent [NumEvents]float64
	// PerCycle is the baseline energy in nJ charged every cycle.
	PerCycle float64
}

// DefaultModel returns energies for the 8-way baseline machine, scaled
// by width so the 16-way machine draws proportionally more per event
// (wider structures have longer bitlines and more ports).
func DefaultModel(widthScale float64) Model {
	m := Model{PerCycle: 2.0 * widthScale}
	e := &m.PerEvent
	e[EvFetch] = 0.30 * widthScale
	e[EvBPred] = 0.15
	e[EvDispatch] = 0.40 * widthScale
	e[EvIssue] = 0.50 * widthScale
	e[EvRegRead] = 0.12
	e[EvRegWrite] = 0.15
	e[EvIntALU] = 0.25
	e[EvIntMul] = 0.90
	e[EvFPALU] = 0.60
	e[EvFPMul] = 1.20
	e[EvDL1] = 0.55
	e[EvIL1] = 0.45
	e[EvL2] = 2.50
	e[EvMem] = 12.0
	e[EvCommit] = 0.20 * widthScale
	e[EvFlush] = 3.0 * widthScale
	return m
}

// Meter accumulates energy. The zero value with a zero Model accumulates
// nothing; build one with NewMeter.
type Meter struct {
	model  Model
	counts [NumEvents]uint64
	cycles uint64
	total  float64
}

// NewMeter returns a meter using the given model.
func NewMeter(model Model) *Meter {
	return &Meter{model: model}
}

// Add records n occurrences of event e.
func (m *Meter) Add(e Event, n uint64) {
	m.counts[e] += n
	m.total += float64(n) * m.model.PerEvent[e]
}

// Tick records elapsed cycles (baseline energy).
func (m *Meter) Tick(cycles uint64) {
	m.cycles += cycles
	m.total += float64(cycles) * m.model.PerCycle
}

// TotalNJ returns the accumulated energy in nanojoules.
func (m *Meter) TotalNJ() float64 { return m.total }

// Cycles returns the accumulated cycle count.
func (m *Meter) Cycles() uint64 { return m.cycles }

// Count returns the number of occurrences recorded for e.
func (m *Meter) Count(e Event) uint64 { return m.counts[e] }

// Snapshot captures the current total for later differencing.
type Snapshot struct {
	total  float64
	cycles uint64
}

// Snapshot returns the current accumulation state.
func (m *Meter) Snapshot() Snapshot {
	return Snapshot{total: m.total, cycles: m.cycles}
}

// Since returns the energy in nJ accumulated since the snapshot.
func (m *Meter) Since(s Snapshot) float64 { return m.total - s.total }

// CyclesSince returns the cycles accumulated since the snapshot.
func (m *Meter) CyclesSince(s Snapshot) uint64 { return m.cycles - s.cycles }
