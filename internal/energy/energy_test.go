package energy_test

import (
	"math"
	"testing"

	"repro/internal/energy"
)

// TestMeterAccumulates checks event and cycle accounting.
func TestMeterAccumulates(t *testing.T) {
	model := energy.DefaultModel(1.0)
	m := energy.NewMeter(model)
	m.Add(energy.EvIntALU, 10)
	m.Tick(5)
	want := 10*model.PerEvent[energy.EvIntALU] + 5*model.PerCycle
	if math.Abs(m.TotalNJ()-want) > 1e-12 {
		t.Errorf("TotalNJ = %v, want %v", m.TotalNJ(), want)
	}
	if m.Count(energy.EvIntALU) != 10 || m.Cycles() != 5 {
		t.Error("counters wrong")
	}
}

// TestSnapshotDiff checks per-unit differencing.
func TestSnapshotDiff(t *testing.T) {
	m := energy.NewMeter(energy.DefaultModel(1.0))
	m.Add(energy.EvMem, 3)
	s := m.Snapshot()
	m.Add(energy.EvMem, 2)
	m.Tick(7)
	model := energy.DefaultModel(1.0)
	want := 2*model.PerEvent[energy.EvMem] + 7*model.PerCycle
	if math.Abs(m.Since(s)-want) > 1e-12 {
		t.Errorf("Since = %v, want %v", m.Since(s), want)
	}
	if m.CyclesSince(s) != 7 {
		t.Errorf("CyclesSince = %d", m.CyclesSince(s))
	}
}

// TestWidthScaling checks the 16-way model draws more per wide event.
func TestWidthScaling(t *testing.T) {
	m8 := energy.DefaultModel(1.0)
	m16 := energy.DefaultModel(1.6)
	if m16.PerEvent[energy.EvDispatch] <= m8.PerEvent[energy.EvDispatch] {
		t.Error("width scaling missing on dispatch")
	}
	if m16.PerEvent[energy.EvIntALU] != m8.PerEvent[energy.EvIntALU] {
		t.Error("per-ALU-op energy should not scale with width")
	}
	if m16.PerCycle <= m8.PerCycle {
		t.Error("baseline should scale with width")
	}
}

// TestEventNames checks every event has a distinct name.
func TestEventNames(t *testing.T) {
	seen := map[string]bool{}
	for e := energy.Event(0); int(e) < energy.NumEvents; e++ {
		name := e.String()
		if name == "" || name == "unknown" {
			t.Errorf("event %d unnamed", e)
		}
		if seen[name] {
			t.Errorf("duplicate event name %q", name)
		}
		seen[name] = true
	}
}
