package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/checkpoint"
	"repro/internal/smarts"
	"repro/internal/uarch"
)

// ParallelSweepBiasThreshold is the documented ceiling on the worst
// per-benchmark |CPI bias| a speculative parallel sweep may add at the
// default warm-up overlap: the paper's Table 5 envelope (±2%) for
// functional warming with minimal detailed warming. The bias-vs-stride
// experiment measures the actual value; stride_test.go asserts it
// stays under this threshold, so raising sweep parallelism never
// silently degrades accuracy past what the paper already accepts for
// its warming configuration.
const ParallelSweepBiasThreshold = 0.02

// StrideCell is one grid point of the bias-vs-stride experiment: the
// worst per-benchmark bias magnitude at a segment count and overlap.
type StrideCell struct {
	Segments  int
	Overlap   int64 // as passed: 0 = default, negative = none
	WorstBias float64
	WorstOf   string // benchmark exhibiting the worst bias
}

// StrideRow is one segment count's cells across the overlap values.
type StrideRow struct {
	Segments int
	Cells    []StrideCell
}

// StrideResult reports the speculative parallel sweep's cold-start
// bias surface: for each (segment count, warm-up overlap) grid point,
// the worst per-benchmark |CPI bias| of sampled measurement against
// matched-unit ground truth (the Table 5 measurement, driven over the
// sweep-partitioning knob instead of the warming mode). Segment count
// 1 is the serial sweep — its row is the residual functional-warming
// bias every other row should be compared against.
type StrideResult struct {
	Config   string
	W        uint64
	Overlaps []int64
	Rows     []StrideRow
}

// Stride measures the bias-vs-stride grid. segments and overlaps
// default to {1, 2, 4, 8} and {negative (none), 0 (default)} when nil.
// Parallel sweeps exist only on the engine path, so a Context with the
// classic serial loop selected (Parallelism 0) runs these measurements
// with one worker per core; the Context's sweep knobs are restored on
// return.
func Stride(ctx context.Context, ec *Context, cfg uarch.Config, segments []int, overlaps []int64) (*StrideResult, error) {
	if segments == nil {
		segments = []int{1, 2, 4, 8}
	}
	if overlaps == nil {
		overlaps = []int64{-1, 0}
	}
	defer func(par, sp int, so int64) {
		ec.Parallelism, ec.SweepParallelism, ec.SweepOverlap = par, sp, so
	}(ec.Parallelism, ec.SweepParallelism, ec.SweepOverlap)
	if ec.Parallelism == 0 {
		ec.Parallelism = -1
	}

	w := smarts.RecommendedW(cfg)
	res := &StrideResult{Config: cfg.Name, W: w, Overlaps: overlaps}
	for _, segs := range segments {
		row := StrideRow{Segments: segs}
		for _, ov := range overlaps {
			ec.SweepParallelism = segs
			ec.SweepOverlap = ov
			cell := StrideCell{Segments: segs, Overlap: ov}
			for _, bench := range ec.Scale.BenchNames() {
				b, err := MeasureBias(ctx, ec, bench, cfg, 1000, w,
					smarts.FunctionalWarming, ec.Scale.NInit, ec.Scale.BiasPhases)
				if err != nil {
					return nil, fmt.Errorf("experiments: stride segs=%d overlap=%d: %w", segs, ov, err)
				}
				if abs(b) > cell.WorstBias {
					cell.WorstBias = abs(b)
					cell.WorstOf = bench
				}
			}
			row.Cells = append(row.Cells, cell)
			if segs == 1 {
				// The serial sweep ignores the overlap; one measurement
				// serves every column.
				for len(row.Cells) < len(overlaps) {
					c := cell
					c.Overlap = overlaps[len(row.Cells)]
					row.Cells = append(row.Cells, c)
				}
				break
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WorstAtDefaultOverlap returns the largest worst-bias over all
// parallel rows (segments > 1) at the default overlap (the 0 column),
// the quantity the documented threshold bounds. Zero when the grid has
// no such cells.
func (r *StrideResult) WorstAtDefaultOverlap() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.Segments <= 1 {
			continue
		}
		for _, c := range row.Cells {
			if c.Overlap == 0 && c.WorstBias > worst {
				worst = c.WorstBias
			}
		}
	}
	return worst
}

// overlapLabel renders an overlap column header.
func overlapLabel(ov int64) string {
	switch {
	case ov < 0:
		return "ov=none"
	case ov == 0:
		return fmt.Sprintf("ov=%d", int64(checkpoint.DefaultSweepOverlap))
	}
	return fmt.Sprintf("ov=%d", ov)
}

// Format renders the grid, segment counts down, overlaps across.
func (r *StrideResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Bias vs stride: worst |CPI bias| of the speculative parallel sweep, functional warming W=%d (%s)\n", r.W, r.Config)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "segments")
	for _, ov := range r.Overlaps {
		fmt.Fprintf(tw, "\t%s", overlapLabel(ov))
	}
	fmt.Fprintln(tw)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d", row.Segments)
		for _, c := range row.Cells {
			fmt.Fprintf(tw, "\t%.2f%% (%s)", c.WorstBias*100, c.WorstOf)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
