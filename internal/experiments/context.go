// Package experiments regenerates every table and figure of the SMARTS
// paper's evaluation (Figures 2-8, Tables 4-6) against the synthetic
// benchmark suite and the from-scratch simulator substrate.
//
// Each experiment has a Run function returning a typed result with a
// Format method that prints rows in the shape the paper reports. A
// process-wide Context caches generated programs and full-stream
// detailed reference runs (the expensive ground truth) so that a bench
// session touching many experiments pays for each reference once.
//
// Scales: the paper's benchmarks are 2-547 billion instructions; a full
// detailed reference at that size is exactly the cost the paper exists
// to avoid. The Small scale shrinks benchmark length ~1000x while
// keeping the machine configuration (cache sizes, predictor sizes) at
// full scale, and shrinks n_init proportionally so the sampled fraction
// and the dimensionless results (CV, CI, bias, error) remain
// commensurate with the paper's. EXPERIMENTS.md tabulates paper-vs-
// measured for every experiment.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/uarch"
)

// Scale fixes the experiment sizing knobs.
type Scale struct {
	Name string
	// BenchLen is the target dynamic length of each workload.
	BenchLen uint64
	// Chunk is the reference-run measurement granularity (and the
	// smallest sampling-unit size derivable from a reference).
	Chunk uint64
	// NInit is the initial sample size of the SMARTS procedure (the
	// paper's 10,000 at full SPEC2K scale).
	NInit uint64
	// Eps is the target relative confidence interval (paper: 0.03).
	Eps float64
	// BiasPhases is the number of systematic phases averaged for bias
	// measurements (paper Section 4.3 uses 5).
	BiasPhases int
	// SPInterval and SPMaxK configure the SimPoint baseline.
	SPInterval uint64
	SPMaxK     int
	// Benches restricts the suite (nil = every workload).
	Benches []string
}

// Small is the default scale used by tests and benches.
var Small = Scale{
	Name:       "small",
	BenchLen:   2_000_000,
	Chunk:      10,
	NInit:      400,
	Eps:        0.03,
	BiasPhases: 5,
	SPInterval: 50_000,
	SPMaxK:     10,
}

// Medium exercises longer streams (for overnight runs).
var Medium = Scale{
	Name:       "medium",
	BenchLen:   20_000_000,
	Chunk:      100,
	NInit:      2000,
	Eps:        0.03,
	BiasPhases: 5,
	SPInterval: 500_000,
	SPMaxK:     10,
}

// Tiny is for fast tests only.
var Tiny = Scale{
	Name:       "tiny",
	BenchLen:   400_000,
	Chunk:      10,
	NInit:      100,
	Eps:        0.05,
	BiasPhases: 3,
	SPInterval: 20_000,
	SPMaxK:     6,
	Benches:    []string{"gzipx", "gccx", "parserx", "eonx"},
}

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "tiny":
		return Tiny, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q", name)
}

// BenchNames returns the workload names this scale covers.
func (s Scale) BenchNames() []string {
	if s.Benches != nil {
		return s.Benches
	}
	return program.Names()
}

// Context caches programs and reference runs across experiments.
type Context struct {
	Scale Scale

	// Parallelism is copied into every sampling plan the experiments
	// build: 0 keeps the classic serial loop (and the historical
	// figures/tables exactly), n >= 1 runs sampling on the checkpointed
	// parallel engine with n workers, negative uses one worker per core
	// (see smarts.Plan.Parallelism for the semantic difference).
	Parallelism int

	// Ckpt, when non-nil and the engine is selected, is copied into
	// every sampling plan so functional sweeps are persisted to disk and
	// reused across experiments, phases, and smartsweep invocations (see
	// smarts.Plan.Store). Results are bit-identical with or without it.
	Ckpt *checkpoint.Store

	// SweepParallelism and SweepOverlap are copied into every sampling
	// plan on the engine path (see smarts.Plan.SweepParallelism): the
	// bias-vs-stride experiment varies them to measure the speculative
	// parallel sweep's cold-start bias. Like Parallelism, they are plain
	// fields set before runs, not concurrency-safe knobs.
	SweepParallelism int
	SweepOverlap     int64

	mu    sync.Mutex
	progs map[string]*program.Program
	refs  map[string]*smarts.Reference
}

// NewContext builds an empty cache for the scale.
func NewContext(scale Scale) *Context {
	return &Context{
		Scale: scale,
		progs: make(map[string]*program.Program),
		refs:  make(map[string]*smarts.Reference),
	}
}

// Program returns the generated workload, building it on first use.
func (c *Context) Program(name string) (*program.Program, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.progs[name]; ok {
		return p, nil
	}
	spec, err := program.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := program.Generate(spec, c.Scale.BenchLen)
	if err != nil {
		return nil, err
	}
	c.progs[name] = p
	return p, nil
}

// Reference returns the full-stream detailed reference for bench on cfg,
// running it on first use. This is the expensive ground-truth pass; a
// cached reference returns regardless of ctx, and a fresh one is only
// started while ctx is alive (the detailed run itself is not
// interruptible — cancellation takes effect at the next sampling step).
func (c *Context) Reference(ctx context.Context, bench string, cfg uarch.Config) (*smarts.Reference, error) {
	key := bench + "/" + cfg.Name
	c.mu.Lock()
	if r, ok := c.refs[key]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	p, err := c.Program(bench)
	if err != nil {
		return nil, err
	}
	ref, err := smarts.FullRun(p, cfg, c.Scale.Chunk)
	if err != nil {
		return nil, fmt.Errorf("experiments: reference %s: %w", key, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.refs[key]; ok {
		return r, nil // lost a benign race; keep the first
	}
	c.refs[key] = ref
	return ref, nil
}

// Preload builds references for every benchmark of the scale in
// parallel, bounded by par workers. Experiments that consume many
// references call it first so wall-clock cost is amortized.
func (c *Context) Preload(ctx context.Context, cfg uarch.Config, par int) error {
	names := c.Scale.BenchNames()
	if par < 1 {
		par = 1
	}
	sem := make(chan struct{}, par)
	errs := make(chan error, len(names))
	for _, name := range names {
		name := name
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			_, err := c.Reference(ctx, name, cfg)
			errs <- err
		}()
	}
	for range names {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}
