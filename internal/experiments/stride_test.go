package experiments_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/smarts"
	"repro/internal/uarch"
)

// TestStrideBiasUnderThreshold runs the bias-vs-stride grid at the
// fast scale and asserts the property the parallel sweep documents:
// with the default warm-up overlap, the worst per-benchmark bias of a
// parallel sweep stays under ParallelSweepBiasThreshold. It also pins
// the grid's serial row to an unmodified serial-sweep measurement
// (SweepParallelism 0) bit for bit, so stride's baseline is exactly
// the pre-existing engine-path bias.
func TestStrideBiasUnderThreshold(t *testing.T) {
	cfg := uarch.Config8Way()
	ec := freshTinyCtx()
	ec.Scale.Benches = []string{"gzipx", "gccx"}

	r, err := experiments.Stride(context.Background(), ec, cfg, []int{1, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ec.Parallelism != 0 || ec.SweepParallelism != 0 || ec.SweepOverlap != 0 {
		t.Fatalf("Stride did not restore context knobs: par=%d sp=%d so=%d",
			ec.Parallelism, ec.SweepParallelism, ec.SweepOverlap)
	}
	if len(r.Rows) != 2 || len(r.Rows[0].Cells) != 2 {
		t.Fatalf("grid shape %d rows x %d cells, want 2x2", len(r.Rows), len(r.Rows[0].Cells))
	}

	worst := r.WorstAtDefaultOverlap()
	if worst == 0 {
		t.Fatal("no parallel default-overlap cell measured")
	}
	if worst > experiments.ParallelSweepBiasThreshold {
		t.Errorf("worst parallel bias at default overlap %.4f exceeds documented threshold %.4f",
			worst, experiments.ParallelSweepBiasThreshold)
	}

	// The serial row must be bit-identical to a plain engine-path bias
	// measurement with the sweep-parallelism knob left at zero.
	w := smarts.RecommendedW(cfg)
	for _, bench := range ec.Scale.BenchNames() {
		base := freshTinyCtx()
		base.Scale.Benches = ec.Scale.Benches
		base.Parallelism = -1
		b, err := experiments.MeasureBias(context.Background(), base, bench, cfg, 1000, w,
			smarts.FunctionalWarming, ec.Scale.NInit, ec.Scale.BiasPhases)
		if err != nil {
			t.Fatal(err)
		}
		serial := r.Rows[0].Cells[0]
		if serial.WorstOf == bench && math.Float64bits(math.Abs(b)) != math.Float64bits(serial.WorstBias) {
			t.Errorf("serial stride cell %v != direct serial bias %v for %s",
				serial.WorstBias, math.Abs(b), bench)
		}
	}

	var sb strings.Builder
	r.Format(&sb)
	out := sb.String()
	for _, want := range []string{"segments", "ov=none", "ov=1000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted stride report missing %q:\n%s", want, out)
		}
	}
}

// TestStrideBiasThresholdSmallScale measures the real cold-start bias
// at a scale where segments are longer than the default overlap (so
// segment starts do not all clamp to zero, unlike the tiny scale) and
// asserts the documented guarantee: a 4-way parallel sweep at the
// default overlap keeps the worst per-benchmark bias under
// ParallelSweepBiasThreshold. This is the measurement that tuned
// checkpoint.DefaultSweepOverlap — shrinking the overlap to 100k
// raises this bias past 20%.
func TestStrideBiasThresholdSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("small-scale bias grid runs full 2M-instruction references")
	}
	cfg := uarch.Config8Way()
	ec := experiments.NewContext(experiments.Small)
	ec.Scale.Benches = []string{"gzipx", "gccx", "eonx", "parserx"}

	r, err := experiments.Stride(context.Background(), ec, cfg, []int{4}, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	worst := r.WorstAtDefaultOverlap()
	if worst == 0 {
		t.Fatal("no parallel default-overlap cell measured")
	}
	if worst > experiments.ParallelSweepBiasThreshold {
		t.Errorf("worst 4-segment bias at default overlap %.4f exceeds documented threshold %.4f",
			worst, experiments.ParallelSweepBiasThreshold)
	}
	t.Logf("worst 4-segment bias at default overlap: %.4f (%s)", worst, r.Rows[0].Cells[0].WorstOf)
}
