package experiments

import (
	"context"

	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/simpoint"
	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// Fig8Row compares the estimators on one benchmark.
type Fig8Row struct {
	Bench       string
	TrueCPI     float64
	SimPointCPI float64
	SimPointErr float64 // signed relative, cold-state (published config)
	// SimPointWarmErr is the warmed-fast-forward SimPoint variant's
	// error, isolating representativeness error from cold start.
	SimPointWarmErr float64
	SimPointK       int
	SMARTSCPI       float64
	SMARTSErr       float64 // signed relative
}

// Fig8Result reproduces Figure 8: per-benchmark CPI error of SimPoint
// versus SMARTS on the same machine. The claims to reproduce: SimPoint's
// average error is several times SMARTS's (paper: 3.7% vs 0.6%), with a
// much worse tail (paper: -14.3% on gcc-2), because SimPoint weights a
// single instance of each behaviour cluster and offers no confidence
// bound.
type Fig8Result struct {
	Config              string
	Rows                []Fig8Row // sorted by |SimPoint error| descending
	MeanSimPointErr     float64
	MeanSimPointWarmErr float64
	MeanSMARTSErr       float64
}

// Fig8 runs both estimators per benchmark.
func Fig8(ctx context.Context, ec *Context, cfg uarch.Config, benches []string) (*Fig8Result, error) {
	if benches == nil {
		benches = ec.Scale.BenchNames()
	}
	res := &Fig8Result{Config: cfg.Name}
	var spSum, spwSum, smSum float64
	for _, bench := range benches {
		ref, err := ec.Reference(ctx, bench, cfg)
		if err != nil {
			return nil, err
		}
		p, err := ec.Program(bench)
		if err != nil {
			return nil, err
		}
		truth := ref.TrueCPI()

		spRes, sel, err := simpoint.Run(p, cfg, ec.Scale.SPInterval, ec.Scale.SPMaxK, 42)
		if err != nil {
			return nil, fmt.Errorf("experiments: simpoint %s: %w", bench, err)
		}
		spWarm, err := simpoint.EstimateWarmed(p, cfg, sel)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmed simpoint %s: %w", bench, err)
		}
		plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), ec.Scale.NInit,
			smarts.FunctionalWarming, 0)
		plan.Parallelism = ec.Parallelism
		plan.Store = ec.Ckpt
		smRun, err := smarts.RunContext(ctx, p, cfg, plan)
		if err != nil {
			return nil, err
		}
		smCPI := smRun.CPIEstimate(stats.Alpha997).Mean

		row := Fig8Row{
			Bench:           bench,
			TrueCPI:         truth,
			SimPointCPI:     spRes.CPI,
			SimPointErr:     (spRes.CPI - truth) / truth,
			SimPointWarmErr: (spWarm.CPI - truth) / truth,
			SimPointK:       sel.K,
			SMARTSCPI:       smCPI,
			SMARTSErr:       (smCPI - truth) / truth,
		}
		spSum += abs(row.SimPointErr)
		spwSum += abs(row.SimPointWarmErr)
		smSum += abs(row.SMARTSErr)
		res.Rows = append(res.Rows, row)
	}
	res.MeanSimPointErr = spSum / float64(len(res.Rows))
	res.MeanSimPointWarmErr = spwSum / float64(len(res.Rows))
	res.MeanSMARTSErr = smSum / float64(len(res.Rows))
	sort.Slice(res.Rows, func(i, j int) bool {
		return abs(res.Rows[i].SimPointErr) > abs(res.Rows[j].SimPointErr)
	})
	return res, nil
}

// Format renders the comparison.
func (r *Fig8Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: SimPoint vs SMARTS CPI error (%s)\n", r.Config)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\ttrue CPI\tSimPoint\terr(cold)\terr(warmed)\tK\tSMARTS\terr")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%+.1f%%\t%+.1f%%\t%d\t%.4f\t%+.2f%%\n",
			row.Bench, row.TrueCPI, row.SimPointCPI, row.SimPointErr*100,
			row.SimPointWarmErr*100, row.SimPointK, row.SMARTSCPI, row.SMARTSErr*100)
	}
	tw.Flush()
	fmt.Fprintf(w, "mean |error|: SimPoint(cold) %.1f%%, SimPoint(warmed ff) %.1f%%, SMARTS %.2f%%\n",
		r.MeanSimPointErr*100, r.MeanSimPointWarmErr*100, r.MeanSMARTSErr*100)
}
