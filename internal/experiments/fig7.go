package experiments

import (
	"context"

	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// Fig7Row is one benchmark's EPI estimation outcome.
type Fig7Row struct {
	Bench     string
	TrueEPI   float64
	Est       stats.Estimate
	ActualErr float64
}

// Fig7Result reproduces Figure 7: per-benchmark energy-per-instruction
// error and 99.7% confidence interval with n_init units on the 8-way
// machine. The claims to reproduce: EPI confidence intervals are tighter
// than CPI's (energy varies less than cycles), and actual errors stay
// within CI plus the warming-bias allowance.
type Fig7Result struct {
	Config     string
	NInit      uint64
	Rows       []Fig7Row
	MeanAbsErr float64
	// MeanCIRatio is mean(EPI CI)/mean(CPI CI), expected < 1.
	MeanCIRatio float64
}

// Fig7 runs the sampling runs and compares EPI confidence to CPI's.
func Fig7(ctx context.Context, ec *Context, cfg uarch.Config) (*Fig7Result, error) {
	res := &Fig7Result{Config: cfg.Name, NInit: ec.Scale.NInit}
	var errSum, epiCISum, cpiCISum float64
	for _, bench := range ec.Scale.BenchNames() {
		ref, err := ec.Reference(ctx, bench, cfg)
		if err != nil {
			return nil, err
		}
		p, err := ec.Program(bench)
		if err != nil {
			return nil, err
		}
		plan := smarts.PlanForN(p.Length, 1000, smarts.RecommendedW(cfg), ec.Scale.NInit,
			smarts.FunctionalWarming, 0)
		plan.Parallelism = ec.Parallelism
		plan.Store = ec.Ckpt
		run, err := smarts.RunContext(ctx, p, cfg, plan)
		if err != nil {
			return nil, err
		}
		est := run.EPIEstimate(stats.Alpha997)
		truth := ref.TrueEPI()
		row := Fig7Row{
			Bench:     bench,
			TrueEPI:   truth,
			Est:       est,
			ActualErr: (est.Mean - truth) / truth,
		}
		errSum += abs(row.ActualErr)
		epiCISum += est.RelCI
		cpiCISum += run.CPIEstimate(stats.Alpha997).RelCI
		res.Rows = append(res.Rows, row)
	}
	res.MeanAbsErr = errSum / float64(len(res.Rows))
	if cpiCISum > 0 {
		res.MeanCIRatio = epiCISum / cpiCISum
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return res.Rows[i].Est.RelCI > res.Rows[j].Est.RelCI
	})
	return res, nil
}

// Format renders the figure as a table.
func (r *Fig7Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: SMARTS EPI estimation with n_init=%d (%s), worst CI first\n", r.NInit, r.Config)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\ttrue EPI(nJ)\test EPI(nJ)\tactual err\tCI(99.7%)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%+.2f%%\t±%.2f%%\n",
			row.Bench, row.TrueEPI, row.Est.Mean, row.ActualErr*100, row.Est.RelCI*100)
	}
	tw.Flush()
	fmt.Fprintf(w, "mean |EPI error|: %.2f%%; mean EPI-CI / CPI-CI ratio: %.2f\n",
		r.MeanAbsErr*100, r.MeanCIRatio)
}
