package experiments

import (
	"context"

	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/uarch"
)

// Fig2Result reproduces Figure 2: the coefficient of variation of
// per-unit CPI as a function of sampling-unit size U, per benchmark.
// The paper's observations to reproduce: curves fall steeply until
// U ≈ 1000 and level off; V is non-negligible even at very large U for
// some benchmarks; the knee motivates U = 1000.
type Fig2Result struct {
	Config string
	Us     []uint64
	// CV[bench][i] is V_CPI at Us[i]; NaN-free (missing points omitted
	// by using -1).
	Benches []string
	CV      [][]float64
}

// Fig2 computes the V_CPI(U) curves for every benchmark at the scale's
// feasible U range (chunk … N/20).
func Fig2(ctx context.Context, ec *Context, cfg uarch.Config) (*Fig2Result, error) {
	res := &Fig2Result{Config: cfg.Name}
	// U sweep: decade steps from the chunk size up to 1/20 of the
	// benchmark (below that there are too few units for a stable CV).
	for u := ec.Scale.Chunk; u <= ec.Scale.BenchLen/20; u *= 10 {
		res.Us = append(res.Us, u)
	}
	for _, bench := range ec.Scale.BenchNames() {
		ref, err := ec.Reference(ctx, bench, cfg)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(res.Us))
		for i, u := range res.Us {
			cv, err := ref.CVAtU(u)
			if err != nil {
				row[i] = -1
				continue
			}
			row[i] = cv
		}
		res.Benches = append(res.Benches, bench)
		res.CV = append(res.CV, row)
	}
	return res, nil
}

// Format renders the curves as a table, one row per benchmark.
func (r *Fig2Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 2: coefficient of variation of CPI vs sampling unit size U (%s)\n", r.Config)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "bench")
	for _, u := range r.Us {
		fmt.Fprintf(tw, "\tU=%d", u)
	}
	fmt.Fprintln(tw)
	for i, b := range r.Benches {
		fmt.Fprintf(tw, "%s", b)
		for _, cv := range r.CV[i] {
			if cv < 0 {
				fmt.Fprintf(tw, "\t-")
			} else {
				fmt.Fprintf(tw, "\t%.3f", cv)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// KneeCheck reports, for each benchmark, the ratio CV(U=chunk)/CV(U=1000)
// (steep initial drop) — used by tests asserting the Figure 2 shape.
func (r *Fig2Result) KneeCheck(u uint64) map[string]float64 {
	out := make(map[string]float64)
	idxOf := func(u uint64) int {
		for i, x := range r.Us {
			if x == u {
				return i
			}
		}
		return -1
	}
	first := 0
	knee := idxOf(u)
	if knee < 0 {
		return out
	}
	for i, b := range r.Benches {
		if r.CV[i][first] > 0 && r.CV[i][knee] > 0 {
			out[b] = r.CV[i][first] / r.CV[i][knee]
		}
	}
	return out
}
