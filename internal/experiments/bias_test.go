package experiments_test

import (
	"context"

	"math"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/smarts"
	"repro/internal/uarch"
)

// freshTinyCtx builds a private context at the fast test scale (the
// shared tinyCtx must not have its Parallelism mutated).
func freshTinyCtx() *experiments.Context {
	return experiments.NewContext(experiments.Tiny)
}

// TestMeasureBiasEngineMatchesPerPhase verifies the shared-sweep phase
// path the engine contexts now take: the bias measured through one
// multi-offset sweep must be bit-identical to the bias measured by
// dedicated per-phase engine runs (which the engine path computed
// before this optimization).
func TestMeasureBiasEngineMatchesPerPhase(t *testing.T) {
	cfg := uarch.Config8Way()
	const bench = "gzipx"
	const u, w, n, phases = 1000, 2000, 60, 3

	shared := freshTinyCtx()
	shared.Parallelism = 2
	got, err := experiments.MeasureBias(context.Background(), shared, bench, cfg, u, w, smarts.FunctionalWarming, n, phases)
	if err != nil {
		t.Fatal(err)
	}

	// Recompute with dedicated per-phase engine runs.
	ref := freshTinyCtx()
	refRuns, err := ref.Reference(context.Background(), bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trueUnits, err := refRuns.UnitCPIs(u)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ref.Program(bench)
	if err != nil {
		t.Fatal(err)
	}
	base := smarts.PlanForN(p.Length, u, w, n, smarts.FunctionalWarming, 0)
	var want float64
	for ph := 0; ph < phases; ph++ {
		plan := base
		plan.J = uint64(ph) * base.K / uint64(phases)
		plan.Parallelism = 2
		res, err := smarts.Run(p, cfg, plan)
		if err != nil {
			t.Fatal(err)
		}
		var measured, truth float64
		for _, unit := range res.Units {
			if unit.Index >= uint64(len(trueUnits)) {
				continue
			}
			measured += unit.CPI
			truth += trueUnits[unit.Index]
		}
		want += (measured - truth) / truth
	}
	want /= phases

	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("shared-sweep bias %v != per-phase bias %v", got, want)
	}
}

// TestMeasureBiasStoreReuse verifies a context-attached store carries
// the phase sweep across repeated measurements.
func TestMeasureBiasStoreReuse(t *testing.T) {
	cfg := uarch.Config8Way()
	store, err := checkpoint.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := freshTinyCtx()
	ctx.Parallelism = 2
	ctx.Ckpt = store

	first, err := experiments.MeasureBias(context.Background(), ctx, "gzipx", cfg, 1000, 2000, smarts.FunctionalWarming, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	second, err := experiments.MeasureBias(context.Background(), ctx, "gzipx", cfg, 1000, 2000, smarts.FunctionalWarming, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(first) != math.Float64bits(second) {
		t.Fatalf("bias changed across store reuse: %v vs %v", first, second)
	}
	hits, misses := store.Stats()
	if hits == 0 {
		t.Fatalf("store never hit (hits %d, misses %d)", hits, misses)
	}
}
