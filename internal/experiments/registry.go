package experiments

import (
	"context"

	"fmt"
	"io"
	"sort"

	"repro/internal/uarch"
)

// Runner executes one experiment end to end and writes its formatted
// result.
type Runner func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error

// Registry maps experiment identifiers (the paper's figure/table
// numbers) to runners.
var Registry = map[string]Runner{
	"fig2": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig2(ctx, ec, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig3": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig3(ctx, ec, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig4": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig4(ctx, ec)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig5": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig5(ctx, ec, cfg, nil, nil)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"table4": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Table4(ctx, ec, cfg, nil)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"table5": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Table5(ctx, ec, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig6": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig6(ctx, ec, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig7": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig7(ctx, ec, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"table6": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Table6(ctx, ec, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig8": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig8(ctx, ec, cfg, nil)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"ablation": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := AblationWarming(ctx, ec, cfg, nil)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"stride": func(ctx context.Context, ec *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Stride(ctx, ec, cfg, nil, nil)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
}

// Names returns the registered experiment ids in order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment. ctx is honored by the experiment's
// sampling runs (reference ground-truth passes are checked between,
// not interrupted mid-run).
func Run(ctx context.Context, name string, ec *Context, cfg uarch.Config, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(ctx, ec, cfg, w)
}
