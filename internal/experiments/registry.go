package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/uarch"
)

// Runner executes one experiment end to end and writes its formatted
// result.
type Runner func(ctx *Context, cfg uarch.Config, w io.Writer) error

// Registry maps experiment identifiers (the paper's figure/table
// numbers) to runners.
var Registry = map[string]Runner{
	"fig2": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig2(ctx, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig3": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig3(ctx, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig4": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig4(ctx)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig5": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig5(ctx, cfg, nil, nil)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"table4": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Table4(ctx, cfg, nil)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"table5": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Table5(ctx, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig6": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig6(ctx, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig7": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig7(ctx, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"table6": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Table6(ctx, cfg)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"fig8": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := Fig8(ctx, cfg, nil)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
	"ablation": func(ctx *Context, cfg uarch.Config, w io.Writer) error {
		r, err := AblationWarming(ctx, cfg, nil)
		if err != nil {
			return err
		}
		r.Format(w)
		return nil
	},
}

// Names returns the registered experiment ids in order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment.
func Run(name string, ctx *Context, cfg uarch.Config, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(ctx, cfg, w)
}
