package experiments

import (
	"context"

	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/smarts"
	"repro/internal/uarch"
)

// Table4Row records the detailed-warming requirement of one benchmark.
type Table4Row struct {
	Bench string
	// BiasAtW[i] is the phase-averaged relative CPI bias with detailed
	// warming W = Table4Result.Ws[i] and no functional warming.
	BiasAtW []float64
	// RequiredW is the smallest swept W achieving |bias| < the threshold,
	// or 0 when even the largest W fails (the paper's ">500k" bucket).
	RequiredW uint64
}

// Table4Result reproduces Table 4: the detailed warming needed, without
// functional warming, to push microarchitectural-state bias below 1.5%.
// The shape to reproduce: requirements vary wildly across benchmarks —
// some need almost nothing, some are not fixed even by the largest W —
// which is the unpredictability that motivates functional warming.
type Table4Result struct {
	Config    string
	Ws        []uint64
	Threshold float64
	Rows      []Table4Row
}

// Table4 sweeps W for each benchmark. The sweep must keep W below the
// inter-unit gap or consecutive warming windows merge into contiguous
// detailed simulation and the experiment degenerates; Table4 therefore
// uses a dedicated, smaller n (wider gaps) than the estimation
// experiments, and a W ladder that is a scaled-down analogue of the
// paper's 50k/250k/500k buckets. Matched-unit bias measurement (see
// MeasureBias) keeps the result precise despite the small n.
func Table4(ctx context.Context, ec *Context, cfg uarch.Config, ws []uint64) (*Table4Result, error) {
	// Gap target: units spaced ~N/n apart with n chosen so the largest
	// swept W stays under half the gap.
	n := ec.Scale.NInit / 8
	if n < 10 {
		n = 10
	}
	gap := ec.Scale.BenchLen / n
	if ws == nil {
		maxW := gap / 2
		ws = []uint64{0}
		for w := maxW / 64; w <= maxW; w *= 4 {
			ws = append(ws, w)
		}
	}
	res := &Table4Result{Config: cfg.Name, Ws: ws, Threshold: 0.015}
	for _, bench := range ec.Scale.BenchNames() {
		row := Table4Row{Bench: bench, BiasAtW: make([]float64, len(ws))}
		for i, w := range ws {
			b, err := MeasureBias(ctx, ec, bench, cfg, 1000, w,
				smarts.DetailedWarming, n, ec.Scale.BiasPhases)
			if err != nil {
				return nil, err
			}
			row.BiasAtW[i] = b
		}
		// RequiredW is the smallest swept W from which every larger W
		// also meets the threshold (warming is not always monotonic —
		// the paper notes such counterexamples in Section 4.3 — and a W
		// that "passes" while larger ones fail is a coincidence, not a
		// requirement met).
		for i := len(ws) - 1; i >= 0; i-- {
			if abs(row.BiasAtW[i]) >= res.Threshold {
				break
			}
			row.RequiredW = ws[i]
			if ws[i] == 0 {
				row.RequiredW = 1 // distinguish "W=0 suffices" from "never"
			}
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Bench < res.Rows[j].Bench })
	return res, nil
}

// Buckets groups benchmarks by required W, mirroring the paper's table
// layout. The map key is the W bucket edge; key 0 holds the ">max"
// bucket.
func (r *Table4Result) Buckets() map[uint64][]string {
	out := make(map[uint64][]string)
	for _, row := range r.Rows {
		key := row.RequiredW
		if key == 1 {
			key = r.Ws[0]
		}
		out[key] = append(out[key], row.Bench)
	}
	return out
}

// Format renders the sweep and the bucket summary.
func (r *Table4Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Table 4: detailed warming requirements without functional warming (%s, |bias| < %.1f%%)\n",
		r.Config, r.Threshold*100)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "bench")
	for _, ww := range r.Ws {
		fmt.Fprintf(tw, "\tbias@W=%d", ww)
	}
	fmt.Fprintln(tw, "\trequired W")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s", row.Bench)
		for _, b := range row.BiasAtW {
			fmt.Fprintf(tw, "\t%+.2f%%", b*100)
		}
		switch row.RequiredW {
		case 0:
			fmt.Fprintf(tw, "\t> %d\n", r.Ws[len(r.Ws)-1])
		case 1:
			fmt.Fprintf(tw, "\tnone\n")
		default:
			fmt.Fprintf(tw, "\t<= %d\n", row.RequiredW)
		}
	}
	tw.Flush()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
