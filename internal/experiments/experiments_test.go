package experiments_test

import (
	"context"

	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/uarch"
)

// tinyCtx is shared across tests in this package so the expensive
// reference runs happen once.
var tinyCtx = experiments.NewContext(experiments.Tiny)

func cfg8() uarch.Config { return uarch.Config8Way() }

// TestFig2Shape checks Figure 2's qualitative content: V_CPI is
// non-increasing in U and drops steeply from the smallest unit size.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("needs references")
	}
	r, err := experiments.Fig2(context.Background(), tinyCtx, cfg8())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benches) == 0 {
		t.Fatal("no benchmarks")
	}
	for i, bench := range r.Benches {
		prev := -1.0
		violations := 0
		for _, cv := range r.CV[i] {
			if cv < 0 {
				continue
			}
			if prev >= 0 && cv > prev*1.15 {
				violations++ // allow small non-monotonic wiggle
			}
			prev = cv
		}
		if violations > 1 {
			t.Errorf("%s: V_CPI not non-increasing in U: %v", bench, r.CV[i])
		}
	}
	knee := r.KneeCheck(1000)
	for b, ratio := range knee {
		if ratio < 1.0 {
			t.Errorf("%s: no CV drop from U=%d to U=1000 (ratio %.2f)", b, tinyCtx.Scale.Chunk, ratio)
		}
	}
}

// TestFig3Invariants checks Figure 3's scale-independent structure: the
// required measurement n·U is an absolute quantity in the paper's range
// (the benchmark length N does not enter), tighter intervals cost 9x,
// and higher confidence costs more.
func TestFig3Invariants(t *testing.T) {
	if testing.Short() {
		t.Skip("needs references")
	}
	r, err := experiments.Fig3(context.Background(), tinyCtx, cfg8())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		m := row.MinInsts
		// ±1% (index 1) needs exactly 9x the sample of ±3% (index 0)
		// modulo ceiling effects.
		if m[1] < 8*m[0] || m[1] > 10*m[0] {
			t.Errorf("%s: ±1%% (%d) not ~9x ±3%% (%d)", row.Bench, m[1], m[0])
		}
		// 99.7% confidence (z=2.97) needs more than 95% (z=1.96).
		if m[0] <= m[2] || m[1] <= m[3] {
			t.Errorf("%s: 99.7%% targets not costlier than 95%%: %v", row.Bench, m)
		}
		// Absolute scale: the paper's U=10 requirements land between
		// thousands and tens of millions of instructions.
		if m[0] < 1000 || m[0] > 100_000_000 {
			t.Errorf("%s: ±3%%@99.7%% requirement %d outside plausible band", row.Bench, m[0])
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("Format output missing header")
	}
}

// TestFig4Shape checks the analytic model's monotonic collapse and the
// flatness of the functional-warming curve.
func TestFig4Shape(t *testing.T) {
	r, err := experiments.Fig4(context.Background(), tinyCtx)
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].SD60 > pts[i-1].SD60 || pts[i].SD600 > pts[i-1].SD600 {
			t.Errorf("modelled rate not non-increasing in W at %d", pts[i].W)
		}
	}
	if pts[0].SD600 > pts[0].SD60 {
		t.Error("slower detailed simulator should not model faster")
	}
	// Functional warming at small W stays near S_FW.
	if pts[0].FW < 0.5*0.55 {
		t.Errorf("functional warming rate at W=0 is %.3f, want near 0.55", pts[0].FW)
	}
}

// TestRegistryNames checks every paper artifact has a runner.
func TestRegistryNames(t *testing.T) {
	want := []string{"ablation", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "stride", "table4", "table5", "table6"}
	have := experiments.Names()
	if len(have) != len(want) {
		t.Fatalf("registry has %v, want %v", have, want)
	}
	for i := range want {
		if have[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, have[i], want[i])
		}
	}
}

// TestScaleByName checks scale resolution.
func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium"} {
		s, err := experiments.ScaleByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := experiments.ScaleByName("bogus"); err == nil {
		t.Error("ScaleByName accepted bogus scale")
	}
}
