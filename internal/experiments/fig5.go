package experiments

import (
	"context"

	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/stats"
	"repro/internal/uarch"
)

// Fig5Row gives, for one benchmark and one detailed-warming length W,
// the fraction of the stream that must be simulated in detail —
// n(W+U)/N with n sized from the measured V_CPI(U) — across the U sweep.
type Fig5Row struct {
	Bench    string
	W        uint64
	Fraction []float64 // aligned with Fig5Result.Us
	OptimalU uint64    // U minimizing the fraction
}

// Fig5Result reproduces Figure 5: the detail-simulated fraction as a
// function of U for several W, locating the optimal unit size. The
// shapes to reproduce: with W=0 the smallest U wins; with nonzero W the
// optimum moves into the 100..10,000 range; U=1000 is a near-optimal
// fixed choice across benchmarks and W.
type Fig5Result struct {
	Config string
	Us     []uint64
	Rows   []Fig5Row
	Alpha  float64
	Eps    float64
}

// Fig5 computes the detailed-fraction curves for the given benchmarks
// (the paper plots gcc-1 on the left, and gcc-3/bzip2/mesa on the
// right); pass nil for the scale's default subset.
func Fig5(ctx context.Context, ec *Context, cfg uarch.Config, benches []string, ws []uint64) (*Fig5Result, error) {
	if benches == nil {
		benches = []string{"gccx", "bzip2x", "mcfx", "eonx"}
	}
	if ws == nil {
		// The paper plots W=1000 and W=100,000 as the magnitudes needed
		// with and without functional warming, plus the ideal W=0.
		ws = []uint64{0, 1000, 100_000}
	}
	res := &Fig5Result{Config: cfg.Name, Alpha: stats.Alpha997, Eps: ec.Scale.Eps}
	for u := ec.Scale.Chunk; u <= ec.Scale.BenchLen/20; u *= 10 {
		res.Us = append(res.Us, u)
	}
	for _, bench := range benches {
		ref, err := ec.Reference(ctx, bench, cfg)
		if err != nil {
			return nil, err
		}
		for _, w := range ws {
			row := Fig5Row{Bench: bench, W: w, Fraction: make([]float64, len(res.Us))}
			best := -1.0
			for i, u := range res.Us {
				cv, err := ref.CVAtU(u)
				if err != nil {
					row.Fraction[i] = -1
					continue
				}
				n := stats.RequiredN(cv, res.Alpha, res.Eps)
				frac := float64(n) * float64(w+u) / float64(ref.Insts)
				if frac > 1 {
					frac = 1
				}
				row.Fraction[i] = frac
				if best < 0 || frac < best {
					best = frac
					row.OptimalU = u
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Format renders the fraction table.
func (r *Fig5Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: detail-simulated fraction n(W+U)/N vs U (%s, ±%.0f%% @%.1f%%)\n",
		r.Config, r.Eps*100, (1-r.Alpha)*100)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "bench\tW")
	for _, u := range r.Us {
		fmt.Fprintf(tw, "\tU=%d", u)
	}
	fmt.Fprintln(tw, "\toptimal U")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d", row.Bench, row.W)
		for _, f := range row.Fraction {
			if f < 0 {
				fmt.Fprintf(tw, "\t-")
			} else {
				fmt.Fprintf(tw, "\t%.5f", f)
			}
		}
		fmt.Fprintf(tw, "\t%d\n", row.OptimalU)
	}
	tw.Flush()
}
