package experiments

import (
	"context"

	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/smarts"
	"repro/internal/uarch"
)

// Table6Row compares simulation runtimes for one benchmark.
type Table6Row struct {
	Bench      string
	Detailed   time.Duration // full-stream detailed (sim-outorder analogue)
	Functional time.Duration // full-stream functional (sim-fast analogue)
	SMARTS     time.Duration // sampling run with functional warming
	Speedup    float64       // Detailed / SMARTS
	// SMARTSvsFunctional is the SMARTS-to-functional slowdown (the paper
	// reports SMARTS at ~50% of functional-only speed).
	SMARTSvsFunctional float64
}

// Table6Result reproduces Table 6: measured wall-clock runtimes of
// detailed, functional, and SMARTS simulation, plus the derived
// speedups. The claims to reproduce: SMARTS runs orders of magnitude
// faster than full detailed simulation (paper: average 35x on 8-way) and
// at roughly half the speed of pure functional simulation.
type Table6Result struct {
	Config     string
	Rows       []Table6Row // sorted by Detailed descending, as the paper
	AvgSpeedup float64
	// ModelSpeedup is the speedup the Section 3.4 analytic model
	// predicts with the paper's constants (S_D=1/60, S_FW=0.55) at this
	// scale's sampling parameters — the scale-independent comparison.
	ModelSpeedup float64
}

// Table6 measures runtimes for every benchmark of the scale.
//
// The SMARTS run uses a dedicated n sized so the detailed fraction
// n(U+W)/N stays at a few percent — the regime the paper operates in
// (at full SPEC2K scale n=10,000 detail-simulates only ~0.03% of the
// stream). Reusing the estimation n at reduced benchmark length would
// detail-simulate most of the stream and measure nothing but the
// detailed simulator.
func Table6(ctx context.Context, ec *Context, cfg uarch.Config) (*Table6Result, error) {
	res := &Table6Result{Config: cfg.Name}
	w := smarts.RecommendedW(cfg)
	n := ec.Scale.BenchLen / (1000 + w) / 25 // ~4% detailed fraction
	if n < 10 {
		n = 10
	}
	var speedupSum float64
	for _, bench := range ec.Scale.BenchNames() {
		p, err := ec.Program(bench)
		if err != nil {
			return nil, err
		}
		ref, err := ec.Reference(ctx, bench, cfg) // cached detailed run
		if err != nil {
			return nil, err
		}
		fnTime, _, err := smarts.FunctionalRunTime(p)
		if err != nil {
			return nil, err
		}
		plan := smarts.PlanForN(p.Length, 1000, w, n, smarts.FunctionalWarming, 0)
		plan.Parallelism = ec.Parallelism
		plan.Store = ec.Ckpt
		start := time.Now()
		if _, err := smarts.RunContext(ctx, p, cfg, plan); err != nil {
			return nil, err
		}
		smartsTime := time.Since(start)

		row := Table6Row{
			Bench:      bench,
			Detailed:   ref.DetailedTime,
			Functional: fnTime,
			SMARTS:     smartsTime,
		}
		if smartsTime > 0 {
			row.Speedup = float64(ref.DetailedTime) / float64(smartsTime)
			row.SMARTSvsFunctional = float64(fnTime) / float64(smartsTime)
		}
		speedupSum += row.Speedup
		res.Rows = append(res.Rows, row)
	}
	res.AvgSpeedup = speedupSum / float64(len(res.Rows))
	sort.Slice(res.Rows, func(i, j int) bool {
		return res.Rows[i].Detailed > res.Rows[j].Detailed
	})

	// Analytic model with the paper's constants.
	detFrac := float64(n) * float64(1000+w) / float64(ec.Scale.BenchLen)
	if detFrac > 1 {
		detFrac = 1
	}
	sd := 1.0 / 60
	rate := 0.55*(1-detFrac) + sd*detFrac
	res.ModelSpeedup = rate / sd
	return res, nil
}

// Format renders the runtimes.
func (r *Table6Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Table 6: measured runtimes (%s)\n", r.Config)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tdetailed\tfunctional\tSMARTS\tspeedup\tfunc/SMARTS")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%.1fx\t%.2f\n",
			row.Bench, row.Detailed.Round(time.Millisecond),
			row.Functional.Round(time.Millisecond),
			row.SMARTS.Round(time.Millisecond),
			row.Speedup, row.SMARTSvsFunctional)
	}
	tw.Flush()
	fmt.Fprintf(w, "average speedup: %.1fx (analytic model with paper constants: %.1fx)\n",
		r.AvgSpeedup, r.ModelSpeedup)
}
