package experiments

import (
	"context"

	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/smarts"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// Fig6Row is one benchmark's estimation outcome with n_init units.
type Fig6Row struct {
	Bench string
	// TrueCPI is the full-stream reference.
	TrueCPI float64
	// Est is the sampled estimate at 99.7% confidence.
	Est stats.Estimate
	// ActualErr is the signed relative error of the estimate.
	ActualErr float64
	// NTuned is the follow-up sample size when the CI missed the target
	// (0 when the initial run sufficed).
	NTuned uint64
	// TunedErr and TunedCI report the follow-up run when it happened.
	TunedErr float64
	TunedCI  float64
}

// Fig6Result reproduces Figure 6: per-benchmark CPI error and 99.7%
// confidence interval with the generic initial sample size, worst CI
// first. The claims to reproduce: actual error is generally well inside
// the predicted CI; benchmarks whose CI misses ±3% are fixed by
// rerunning with n_tuned.
type Fig6Result struct {
	Config string
	NInit  uint64
	Eps    float64
	Rows   []Fig6Row
	// MeanAbsErr is the mean |error| across benchmarks (the paper's
	// headline 0.64% average CPI error).
	MeanAbsErr float64
}

// Fig6 runs the full procedure per benchmark.
func Fig6(ctx context.Context, ec *Context, cfg uarch.Config) (*Fig6Result, error) {
	res := &Fig6Result{Config: cfg.Name, NInit: ec.Scale.NInit, Eps: ec.Scale.Eps}
	var errSum float64
	var nFinal int
	for _, bench := range ec.Scale.BenchNames() {
		ref, err := ec.Reference(ctx, bench, cfg)
		if err != nil {
			return nil, err
		}
		p, err := ec.Program(bench)
		if err != nil {
			return nil, err
		}
		pc := smarts.DefaultProcedure(cfg, ec.Scale.NInit)
		pc.Eps = ec.Scale.Eps
		pc.Parallelism = ec.Parallelism
		pc.Store = ec.Ckpt
		pr, err := smarts.RunProcedureContext(ctx, p, cfg, pc)
		if err != nil {
			return nil, err
		}
		truth := ref.TrueCPI()
		row := Fig6Row{
			Bench:     bench,
			TrueCPI:   truth,
			Est:       pr.InitialCPI,
			ActualErr: (pr.InitialCPI.Mean - truth) / truth,
			NTuned:    pr.NTuned,
		}
		if pr.Tuned != nil {
			row.TunedErr = (pr.TunedCPI.Mean - truth) / truth
			row.TunedCI = pr.TunedCPI.RelCI
		}
		final := pr.Final()
		errSum += abs((final.Mean - truth) / truth)
		nFinal++
		res.Rows = append(res.Rows, row)
	}
	res.MeanAbsErr = errSum / float64(nFinal)
	sort.Slice(res.Rows, func(i, j int) bool {
		return res.Rows[i].Est.RelCI > res.Rows[j].Est.RelCI
	})
	return res, nil
}

// Format renders the figure as a table.
func (r *Fig6Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: SMARTS CPI estimation with n_init=%d (%s), worst CI first\n", r.NInit, r.Config)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\ttrue CPI\test CPI\tactual err\tCI(99.7%)\tn_tuned\ttuned err\ttuned CI")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%+.2f%%\t±%.2f%%", row.Bench, row.TrueCPI, row.Est.Mean,
			row.ActualErr*100, row.Est.RelCI*100)
		if row.NTuned > 0 {
			fmt.Fprintf(tw, "\t%d\t%+.2f%%\t±%.2f%%\n", row.NTuned, row.TunedErr*100, row.TunedCI*100)
		} else {
			fmt.Fprintf(tw, "\t-\t-\t-\n")
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "mean |CPI error| (final estimates): %.2f%%\n", r.MeanAbsErr*100)
}
