package experiments

import (
	"context"

	"fmt"

	"repro/internal/program"
	"repro/internal/smarts"
	"repro/internal/uarch"
)

// MeasureBias estimates the warming-induced bias of a SMARTS
// configuration: the relative CPI error of the sampled measurement
// against the reference truth *on the same sampling units*, averaged
// over `phases` evenly spaced systematic phase offsets j (the paper's
// Section 4.3 approximation of true bias with 5 of the k phases).
//
// Comparing matched units cancels unit-selection variance exactly, so
// the result isolates microarchitectural-state error — the quantity
// Tables 4 and 5 of the paper report — even at modest n. (The paper
// achieves the same isolation with enormous n; at reduced scale the
// matched-unit form is the statistically equivalent measurement.)
func MeasureBias(ctx context.Context, ec *Context, bench string, cfg uarch.Config, u, w uint64,
	mode smarts.WarmingMode, n uint64, phases int) (float64, error) {

	ref, err := ec.Reference(ctx, bench, cfg)
	if err != nil {
		return 0, err
	}
	p, err := ec.Program(bench)
	if err != nil {
		return 0, err
	}
	trueUnits, err := ref.UnitCPIs(u)
	if err != nil {
		return 0, err
	}

	base := smarts.PlanForN(p.Length, u, w, n, mode, 0)
	base.Parallelism = ec.Parallelism
	base.SweepParallelism = ec.SweepParallelism
	base.SweepOverlap = ec.SweepOverlap
	base.Store = ec.Ckpt
	if phases < 1 {
		phases = 1
	}
	if uint64(phases) > base.K {
		phases = int(base.K)
	}
	runs, err := runPhases(ctx, p, cfg, base, phases)
	if err != nil {
		return 0, fmt.Errorf("experiments: bias runs %s: %w", bench, err)
	}
	var total float64
	for _, res := range runs {
		var measured, truth float64
		var counted int
		for _, unit := range res.Units {
			if unit.Index >= uint64(len(trueUnits)) {
				continue
			}
			measured += unit.CPI
			truth += trueUnits[unit.Index]
			counted++
		}
		if counted == 0 || truth == 0 {
			return 0, fmt.Errorf("experiments: bias run %s j=%d measured no comparable units", bench, res.Plan.J)
		}
		total += (measured - truth) / truth
	}
	return total / float64(phases), nil
}

// runPhases executes plan at `phases` evenly spaced offsets. On the
// classic serial path each phase runs its own sweep (preserving the
// historical execution exactly); on the engine path every phase's
// launch boundaries are captured in one multi-offset sweep and replayed
// from shared snapshots — bit-identical per phase to dedicated runs,
// at one sweep's cost instead of `phases`.
func runPhases(ctx context.Context, p *program.Program, cfg uarch.Config, plan smarts.Plan, phases int) ([]*smarts.Result, error) {
	js := make([]uint64, phases)
	for ph := range js {
		js[ph] = uint64(ph) * plan.K / uint64(phases)
	}
	if plan.Parallelism != 0 {
		return smarts.RunSampledPhasesContext(ctx, p, cfg, plan, js, smarts.EngineOptions{
			Workers: plan.Parallelism,
			Store:   plan.Store,
		})
	}
	runs := make([]*smarts.Result, len(js))
	for i, j := range js {
		pj := plan
		pj.J = j
		res, err := smarts.RunContext(ctx, p, cfg, pj)
		if err != nil {
			return nil, fmt.Errorf("j=%d: %w", j, err)
		}
		runs[i] = res
	}
	return runs, nil
}
