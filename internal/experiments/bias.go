package experiments

import (
	"fmt"

	"repro/internal/smarts"
	"repro/internal/uarch"
)

// MeasureBias estimates the warming-induced bias of a SMARTS
// configuration: the relative CPI error of the sampled measurement
// against the reference truth *on the same sampling units*, averaged
// over `phases` evenly spaced systematic phase offsets j (the paper's
// Section 4.3 approximation of true bias with 5 of the k phases).
//
// Comparing matched units cancels unit-selection variance exactly, so
// the result isolates microarchitectural-state error — the quantity
// Tables 4 and 5 of the paper report — even at modest n. (The paper
// achieves the same isolation with enormous n; at reduced scale the
// matched-unit form is the statistically equivalent measurement.)
func MeasureBias(ctx *Context, bench string, cfg uarch.Config, u, w uint64,
	mode smarts.WarmingMode, n uint64, phases int) (float64, error) {

	ref, err := ctx.Reference(bench, cfg)
	if err != nil {
		return 0, err
	}
	p, err := ctx.Program(bench)
	if err != nil {
		return 0, err
	}
	trueUnits, err := ref.UnitCPIs(u)
	if err != nil {
		return 0, err
	}

	base := smarts.PlanForN(p.Length, u, w, n, mode, 0)
	base.Parallelism = ctx.Parallelism
	if phases < 1 {
		phases = 1
	}
	if uint64(phases) > base.K {
		phases = int(base.K)
	}
	var total float64
	for ph := 0; ph < phases; ph++ {
		plan := base
		plan.J = uint64(ph) * base.K / uint64(phases)
		res, err := smarts.Run(p, cfg, plan)
		if err != nil {
			return 0, fmt.Errorf("experiments: bias run %s j=%d: %w", bench, plan.J, err)
		}
		var measured, truth float64
		var counted int
		for _, unit := range res.Units {
			if unit.Index >= uint64(len(trueUnits)) {
				continue
			}
			measured += unit.CPI
			truth += trueUnits[unit.Index]
			counted++
		}
		if counted == 0 || truth == 0 {
			return 0, fmt.Errorf("experiments: bias run %s j=%d measured no comparable units", bench, plan.J)
		}
		total += (measured - truth) / truth
	}
	return total / float64(phases), nil
}
