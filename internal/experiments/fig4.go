package experiments

import (
	"context"

	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/perfmodel"
)

// Fig4Point is the modelled relative simulation rate at one W.
type Fig4Point struct {
	W     uint64
	SD60  float64 // detailed-warming only, S_D = 1/60
	SD600 float64 // detailed-warming only, S_D = 1/600
	FW    float64 // functional warming (S_FW = 0.55), S_D = 1/60
}

// Fig4Result reproduces Figure 4: the modelled SMARTS simulation rate as
// a function of detailed warming W, for the paper's three parameter
// sets. The shapes to reproduce: rate collapses from S_F toward S_D as W
// grows (earlier and sharper for slower detailed simulators), while the
// functional-warming curve stays flat near S_FW because W is bounded
// small.
type Fig4Result struct {
	Bench  string
	N      uint64
	NUnits uint64
	U      uint64
	Points []Fig4Point
}

// Fig4 evaluates the analytic model for the gcc-archetype benchmark, as
// the paper does for gcc-1.
func Fig4(ctx context.Context, ec *Context) (*Fig4Result, error) {
	p, err := ec.Program("gccx")
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{
		Bench:  p.Name,
		N:      p.Length,
		NUnits: ec.Scale.NInit,
		U:      1000,
	}
	base := perfmodel.Params{
		N:      float64(p.Length),
		NUnits: float64(ec.Scale.NInit),
		U:      1000,
		SFW:    0.55,
	}
	// W sweep 0 .. 10M as in the paper's x-axis (log scale), clipped to
	// the benchmark length (beyond that the model saturates at S_D).
	ws := []uint64{0, 100, 1000, 10_000, 100_000, 1_000_000, 10_000_000}
	for _, w := range ws {
		p60 := base
		p60.SD = 1.0 / 60
		p600 := base
		p600.SD = 1.0 / 600
		res.Points = append(res.Points, Fig4Point{
			W:     w,
			SD60:  p60.RateDetailedWarming(float64(w)),
			SD600: p600.RateDetailedWarming(float64(w)),
			FW:    p60.RateFunctionalWarming(float64(w)),
		})
	}
	return res, nil
}

// Format renders the modelled rates.
func (r *Fig4Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: modelled SMARTS simulation rate vs W (%s, N=%d, n=%d, U=%d; S_F=1)\n",
		r.Bench, r.N, r.NUnits, r.U)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "W\tS_D=1/60\tS_D=1/600\tS_FW=0.55,S_D=1/60")
	for _, pt := range r.Points {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n", pt.W, pt.SD60, pt.SD600, pt.FW)
	}
	tw.Flush()
}
