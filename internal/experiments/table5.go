package experiments

import (
	"context"

	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/smarts"
	"repro/internal/uarch"
)

// Table5Row is one benchmark's residual bias under functional warming.
type Table5Row struct {
	Bench string
	Bias  float64
}

// Table5Result reproduces Table 5: the residual CPI bias when functional
// warming is combined with minimal detailed warming (W = 2000 on the
// 8-way machine, 4000 on the 16-way). The claims to reproduce: all
// benchmarks stay within ±2%, and only a handful exceed ±1%.
type Table5Result struct {
	Config  string
	W       uint64
	Rows    []Table5Row // sorted by |bias| descending
	AvgRest float64     // mean |bias| of the rows after the worst 10
}

// Table5 measures the phase-averaged bias for every benchmark.
func Table5(ctx context.Context, ec *Context, cfg uarch.Config) (*Table5Result, error) {
	w := smarts.RecommendedW(cfg)
	res := &Table5Result{Config: cfg.Name, W: w}
	for _, bench := range ec.Scale.BenchNames() {
		b, err := MeasureBias(ctx, ec, bench, cfg, 1000, w,
			smarts.FunctionalWarming, ec.Scale.NInit, ec.Scale.BiasPhases)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table5Row{Bench: bench, Bias: b})
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return abs(res.Rows[i].Bias) > abs(res.Rows[j].Bias)
	})
	if len(res.Rows) > 10 {
		var sum float64
		for _, r := range res.Rows[10:] {
			sum += abs(r.Bias)
		}
		res.AvgRest = sum / float64(len(res.Rows)-10)
	}
	return res, nil
}

// WorstBias returns the largest |bias|.
func (r *Table5Result) WorstBias() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return abs(r.Rows[0].Bias)
}

// Format renders the table in the paper's worst-first layout.
func (r *Table5Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Table 5: CPI bias with functional warming and W=%d (%s)\n", r.W, r.Config)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	n := len(r.Rows)
	if n > 10 {
		n = 10
	}
	for _, row := range r.Rows[:n] {
		fmt.Fprintf(tw, "%s\t%+.2f%%\n", row.Bench, row.Bias*100)
	}
	if len(r.Rows) > 10 {
		fmt.Fprintf(tw, "avg. rest (abs)\t%.2f%%\n", r.AvgRest*100)
	}
	tw.Flush()
}
