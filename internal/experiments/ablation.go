package experiments

import (
	"context"

	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/smarts"
	"repro/internal/uarch"
)

// AblationRow reports one benchmark's bias under each warming variant.
type AblationRow struct {
	Bench string
	// Bias per variant, aligned with AblationResult.Variants.
	Bias []float64
}

// AblationResult is an extension study beyond the paper's tables: which
// warmed structure actually carries functional warming's benefit? For
// each benchmark it measures the matched-unit CPI bias with W fixed at
// the recommended value and functional warming restricted to subsets of
// {I-cache, D-side hierarchy, predictor}. The expectation (implicit in
// the paper's Section 4.5 attribution of residual bias to caches and
// predictor) is that memory-bound workloads need the D-side warmed,
// branchy workloads need the predictor, and the full combination
// dominates everything.
type AblationResult struct {
	Config   string
	W        uint64
	Variants []string
	Rows     []AblationRow
}

// ablationVariants enumerates the warming subsets in presentation order.
var ablationVariants = []struct {
	Name string
	Comp smarts.WarmComponents
}{
	{"none", smarts.WarmComponents{}},
	{"icache", smarts.WarmComponents{ICache: true}},
	{"dcache", smarts.WarmComponents{DCache: true}},
	{"bpred", smarts.WarmComponents{Predictor: true}},
	{"all", smarts.AllComponents},
}

// AblationWarming measures the component ablation for the given
// benchmarks (nil = a representative subset spanning memory-bound,
// branchy, and compute-bound behaviour).
func AblationWarming(ctx context.Context, ec *Context, cfg uarch.Config, benches []string) (*AblationResult, error) {
	if benches == nil {
		benches = []string{"mcfx", "parserx", "craftyx", "gccx", "eonx", "swimx"}
	}
	res := &AblationResult{Config: cfg.Name, W: smarts.RecommendedW(cfg)}
	for _, v := range ablationVariants {
		res.Variants = append(res.Variants, v.Name)
	}

	// Wide gaps so stale state has time to rot between units, as in the
	// Table 4 setup.
	n := ec.Scale.NInit / 8
	if n < 10 {
		n = 10
	}
	for _, bench := range benches {
		row := AblationRow{Bench: bench}
		for _, v := range ablationVariants {
			comp := v.Comp
			b, err := measureBiasComponents(ctx, ec, bench, cfg, 1000, res.W, n,
				ec.Scale.BiasPhases, &comp)
			if err != nil {
				return nil, err
			}
			row.Bias = append(row.Bias, b)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// measureBiasComponents is MeasureBias with a warming-component override
// (always in FunctionalWarming mode).
func measureBiasComponents(ctx context.Context, ec *Context, bench string, cfg uarch.Config,
	u, w, n uint64, phases int, comp *smarts.WarmComponents) (float64, error) {

	ref, err := ec.Reference(ctx, bench, cfg)
	if err != nil {
		return 0, err
	}
	p, err := ec.Program(bench)
	if err != nil {
		return 0, err
	}
	trueUnits, err := ref.UnitCPIs(u)
	if err != nil {
		return 0, err
	}
	base := smarts.PlanForN(p.Length, u, w, n, smarts.FunctionalWarming, 0)
	base.Parallelism = ec.Parallelism
	base.Store = ec.Ckpt
	base.Components = comp
	if phases < 1 {
		phases = 1
	}
	if uint64(phases) > base.K {
		phases = int(base.K)
	}
	runs, err := runPhases(ctx, p, cfg, base, phases)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, run := range runs {
		var measured, truth float64
		for _, unit := range run.Units {
			if unit.Index >= uint64(len(trueUnits)) {
				continue
			}
			measured += unit.CPI
			truth += trueUnits[unit.Index]
		}
		if truth == 0 {
			return 0, fmt.Errorf("experiments: ablation %s j=%d measured nothing", bench, run.Plan.J)
		}
		total += (measured - truth) / truth
	}
	return total / float64(phases), nil
}

// Format renders the ablation table.
func (r *AblationResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Ablation: CPI bias by warmed component (functional warming, W=%d, %s)\n", r.W, r.Config)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "bench")
	for _, v := range r.Variants {
		fmt.Fprintf(tw, "\t%s", v)
	}
	fmt.Fprintln(tw)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s", row.Bench)
		for _, b := range row.Bias {
			fmt.Fprintf(tw, "\t%+.2f%%", b*100)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
