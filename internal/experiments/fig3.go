package experiments

import (
	"context"

	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/stats"
	"repro/internal/uarch"
)

// Fig3Row is one benchmark's minimum measurement requirement.
type Fig3Row struct {
	Bench string
	// CV is V_CPI at the smallest unit size (the paper plots U=10).
	CV float64
	// MinInsts[i] is n·U for the confidence target i (see Fig3Targets).
	MinInsts [4]uint64
	// PctOfBench[i] is MinInsts[i] as a percentage of the benchmark.
	PctOfBench [4]float64
}

// Fig3Targets are the paper's four confidence targets, in presentation
// order: ±3%@99.7%, ±1%@99.7%, ±3%@95%, ±1%@95%.
var Fig3Targets = [4]struct {
	Alpha float64
	Eps   float64
	Label string
}{
	{stats.Alpha997, 0.03, "±3% @99.7%"},
	{stats.Alpha997, 0.01, "±1% @99.7%"},
	{stats.Alpha95, 0.03, "±3% @95%"},
	{stats.Alpha95, 0.01, "±1% @95%"},
}

// Fig3Result reproduces Figure 3: minimum instructions which must be
// measured (n·U at U = chunk size, the paper's U=10) to reach common
// confidence targets, per benchmark. The headline number to reproduce:
// even ±1%@99.7% needs only a tiny fraction (paper: < 0.1%) of the
// stream measured.
type Fig3Result struct {
	Config string
	U      uint64
	Rows   []Fig3Row
}

// Fig3 computes the minimum-measurement table.
func Fig3(ctx context.Context, ec *Context, cfg uarch.Config) (*Fig3Result, error) {
	u := ec.Scale.Chunk
	res := &Fig3Result{Config: cfg.Name, U: u}
	for _, bench := range ec.Scale.BenchNames() {
		ref, err := ec.Reference(ctx, bench, cfg)
		if err != nil {
			return nil, err
		}
		cv, err := ref.CVAtU(u)
		if err != nil {
			return nil, err
		}
		row := Fig3Row{Bench: bench, CV: cv}
		for i, tgt := range Fig3Targets {
			n := stats.RequiredN(cv, tgt.Alpha, tgt.Eps)
			row.MinInsts[i] = n * u
			row.PctOfBench[i] = 100 * float64(n*u) / float64(ref.Insts)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the table.
func (r *Fig3Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: minimum measured instructions (n·U at U=%d) per confidence target (%s)\n", r.U, r.Config)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "bench\tV_CPI")
	for _, tgt := range Fig3Targets {
		fmt.Fprintf(tw, "\t%s\t(%%bench)", tgt.Label)
	}
	fmt.Fprintln(tw)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f", row.Bench, row.CV)
		for i := range Fig3Targets {
			fmt.Fprintf(tw, "\t%d\t%.4f%%", row.MinInsts[i], row.PctOfBench[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// WorstPct returns the largest percentage-of-benchmark across rows for
// target index i — the paper's headline is that even the worst case is
// below 0.1% at full scale.
func (r *Fig3Result) WorstPct(i int) float64 {
	var worst float64
	for _, row := range r.Rows {
		if row.PctOfBench[i] > worst {
			worst = row.PctOfBench[i]
		}
	}
	return worst
}
