package mem_test

import (
	"testing"

	"repro/internal/mem"
)

// TestAccessorsZeroAllocSteadyState pins the 64-bit accessors to zero
// heap allocations once the touched pages exist (the functional
// simulator's steady state).
func TestAccessorsZeroAllocSteadyState(t *testing.T) {
	m := mem.New()
	m.Write64(0x1000, 1) // allocate the page
	allocs := testing.AllocsPerRun(1000, func() {
		m.Write64(0x1008, 42)
		if m.Read64(0x1008) != 42 {
			t.Fatal("readback mismatch")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Read64/Write64 allocate %.1f objects/op; want 0", allocs)
	}
}

// BenchmarkMemRead64SamePage measures the same-page fast path — the
// dominant access pattern in simulator workloads.
func BenchmarkMemRead64SamePage(b *testing.B) {
	m := mem.New()
	m.Write64(0x1000, 7)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Read64(0x1000 + uint64(i&255)*8)
	}
	_ = sink
}

// BenchmarkMemWrite64SamePage measures the private-page write fast path.
func BenchmarkMemWrite64SamePage(b *testing.B) {
	m := mem.New()
	m.Write64(0x1000, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Write64(0x1000+uint64(i&255)*8, uint64(i))
	}
}

// BenchmarkMemRead64CrossPage alternates pages so every access misses
// the last-page cache, exercising the slow path's map lookup.
func BenchmarkMemRead64CrossPage(b *testing.B) {
	m := mem.New()
	m.Write64(0x1000, 1)
	m.Write64(0x2000, 2)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Read64(0x1000 + uint64(i&1)<<12)
	}
	_ = sink
}
