// Package mem provides the sparse, paged, little-endian byte-addressable
// memory shared by the functional and detailed simulators.
//
// The address space is the full 64 bits; pages are allocated lazily on
// first touch so multi-gigabyte working-set layouts cost only what they
// touch. Reads of unallocated memory return zero without allocating.
package mem

import (
	"encoding/binary"
	"sort"

	"repro/internal/delta"
)

// Page geometry.
const (
	PageBits = 12
	PageSize = 1 << PageBits
	pageMask = PageSize - 1
)

// Memory is a sparse paged memory. The zero value is not usable; call New.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// shared holds page numbers whose backing arrays are aliased by a
	// Snapshot Image (or by the Image this memory was built from); they
	// are copied on first write. Nil when no snapshot is outstanding.
	shared map[uint64]struct{}

	// lastPageNum/lastPage cache the most recently touched page, which
	// captures nearly all locality in simulator workloads. lastWritable
	// records whether the cached page is known private (safe to write
	// without a copy-on-write check).
	lastPageNum  uint64
	lastPage     *[PageSize]byte
	lastWritable bool

	// journal lists the pages made writable since the last snapshot
	// point, and chain numbers the snapshot points — the dirty-page
	// journal behind the delta contract (see delta.go in this package).
	journal []uint64
	chain   delta.Chain
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

// page returns the page containing addr for reading, or nil when absent.
//
//simlint:coldpath page-table walk; amortized over the page's lifetime
func (m *Memory) page(addr uint64, allocate bool) *[PageSize]byte {
	if allocate {
		return m.wpage(addr)
	}
	num := addr >> PageBits
	if m.lastPage != nil && m.lastPageNum == num {
		return m.lastPage
	}
	p, ok := m.pages[num]
	if !ok {
		return nil
	}
	m.lastPageNum, m.lastPage = num, p
	m.lastWritable = !m.isShared(num)
	return p
}

// wpage returns a writable page containing addr, allocating or
// copy-on-writing it as needed.
//
//simlint:coldpath copy-on-write materialization; once per page per snapshot
func (m *Memory) wpage(addr uint64) *[PageSize]byte {
	num := addr >> PageBits
	if m.lastPage != nil && m.lastPageNum == num && m.lastWritable {
		return m.lastPage
	}
	p, ok := m.pages[num]
	switch {
	case !ok:
		p = new([PageSize]byte)
		m.pages[num] = p
		m.record(num)
	case m.isShared(num):
		cp := new([PageSize]byte)
		*cp = *p
		m.pages[num] = cp
		delete(m.shared, num)
		p = cp
		m.record(num)
	}
	m.lastPageNum, m.lastPage, m.lastWritable = num, p, true
	return p
}

func (m *Memory) isShared(num uint64) bool {
	if m.shared == nil {
		return false
	}
	_, ok := m.shared[num]
	return ok
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint64) uint8 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint64, v uint8) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read32 returns the little-endian 32-bit value at addr. The access may
// straddle a page boundary.
//
// The fast path exploits one identity: when addr lies on the cached
// page, addr XOR (lastPageNum << PageBits) equals the in-page offset;
// when it does not, the XOR has bits set above the page mask and the
// single unsigned comparison against PageSize-width rejects it. That
// folds the page-match and bounds checks into one branch, so the
// overwhelmingly common same-page access costs one compare and one
// fixed-width load/store — no page-map lookup, no inner call.
//
//simlint:hotpath
func (m *Memory) Read32(addr uint64) uint32 {
	if p, off := m.lastPage, addr^(m.lastPageNum<<PageBits); p != nil && off <= PageSize-4 {
		return binary.LittleEndian.Uint32(p[off:])
	}
	return m.read32Slow(addr)
}

//simlint:coldpath page-crossing or first-touch access; off the cached-page fast path
func (m *Memory) read32Slow(addr uint64) uint32 {
	off := addr & pageMask
	if off <= PageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[off:])
	}
	var v uint32
	for i := uint64(0); i < 4; i++ {
		v |= uint32(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write32 stores v little-endian at addr. The access may straddle a page
// boundary.
//
//simlint:hotpath
func (m *Memory) Write32(addr uint64, v uint32) {
	if p, off := m.lastPage, addr^(m.lastPageNum<<PageBits); m.lastWritable && p != nil && off <= PageSize-4 {
		binary.LittleEndian.PutUint32(p[off:], v)
		return
	}
	m.write32Slow(addr, v)
}

//simlint:coldpath page-crossing or copy-on-write access; off the cached-page fast path
func (m *Memory) write32Slow(addr uint64, v uint32) {
	off := addr & pageMask
	if off <= PageSize-4 {
		p := m.page(addr, true)
		binary.LittleEndian.PutUint32(p[off:], v)
		return
	}
	for i := uint64(0); i < 4; i++ {
		m.Write8(addr+i, uint8(v>>(8*i)))
	}
}

// Read64 returns the little-endian 64-bit value at addr. The access may
// straddle a page boundary. See Read32 for the fast-path shape.
//
//simlint:hotpath
func (m *Memory) Read64(addr uint64) uint64 {
	if p, off := m.lastPage, addr^(m.lastPageNum<<PageBits); p != nil && off <= PageSize-8 {
		return binary.LittleEndian.Uint64(p[off:])
	}
	return m.read64Slow(addr)
}

//simlint:coldpath page-crossing or first-touch access; off the cached-page fast path
func (m *Memory) read64Slow(addr uint64) uint64 {
	off := addr & pageMask
	if off <= PageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off:])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores v little-endian at addr. The access may straddle a page
// boundary.
//
//simlint:hotpath
func (m *Memory) Write64(addr uint64, v uint64) {
	if p, off := m.lastPage, addr^(m.lastPageNum<<PageBits); m.lastWritable && p != nil && off <= PageSize-8 {
		binary.LittleEndian.PutUint64(p[off:], v)
		return
	}
	m.write64Slow(addr, v)
}

//simlint:coldpath page-crossing or copy-on-write access; off the cached-page fast path
func (m *Memory) write64Slow(addr uint64, v uint64) {
	off := addr & pageMask
	if off <= PageSize-8 {
		p := m.page(addr, true)
		binary.LittleEndian.PutUint64(p[off:], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Write8(addr+i, uint8(v>>(8*i)))
	}
}

// WriteBytes copies data into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	for len(data) > 0 {
		p := m.page(addr, true)
		off := addr & pageMask
		n := copy(p[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		n := PageSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		p := m.page(addr, false)
		if p == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], p[off:off+uint64(n)])
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// PageCount returns the number of allocated pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// Footprint returns the number of bytes of allocated backing store.
func (m *Memory) Footprint() uint64 { return uint64(len(m.pages)) * PageSize }

// Reset discards all contents. It also invalidates any delta chain in
// progress: pages vanish here, which a dirty-page delta cannot express,
// so the next chain must start with a fresh Snapshot.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*[PageSize]byte)
	m.shared = nil
	m.lastPage = nil
	m.lastPageNum = 0
	m.lastWritable = false
	m.journal = m.journal[:0]
	m.chain.Invalidate()
}

// Clone returns a deep copy of the memory. Simulators use it to rerun a
// workload from an identical initial image.
func (m *Memory) Clone() *Memory {
	c := New()
	for num, p := range m.pages {
		cp := new([PageSize]byte)
		*cp = *p
		c.pages[num] = cp
	}
	return c
}

// Pages returns the sorted list of allocated page numbers; used by tests
// and tools that need a deterministic traversal order.
func (m *Memory) Pages() []uint64 {
	nums := make([]uint64, 0, len(m.pages))
	for n := range m.pages {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums
}
