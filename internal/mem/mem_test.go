package mem_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// TestReadWriteRoundTrip property-checks 64-bit accesses at arbitrary
// addresses, including page-straddling ones.
func TestReadWriteRoundTrip(t *testing.T) {
	m := mem.New()
	f := func(addr, v uint64) bool {
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// TestRead32Write32 checks 32-bit accesses including straddles.
func TestRead32Write32(t *testing.T) {
	m := mem.New()
	for _, addr := range []uint64{0, 1, 4093, 4094, 4095, 1 << 40} {
		m.Write32(addr, 0xDEADBEEF)
		if got := m.Read32(addr); got != 0xDEADBEEF {
			t.Errorf("Read32(%#x) = %#x", addr, got)
		}
	}
}

// TestUnwrittenReadsZero checks reads never allocate and return zero.
func TestUnwrittenReadsZero(t *testing.T) {
	m := mem.New()
	if m.Read64(12345) != 0 || m.Read8(1<<50) != 0 {
		t.Error("unwritten memory not zero")
	}
	if m.PageCount() != 0 {
		t.Errorf("reads allocated %d pages", m.PageCount())
	}
}

// TestPageStraddle writes across a page boundary byte by byte and reads
// back as a word.
func TestPageStraddle(t *testing.T) {
	m := mem.New()
	base := uint64(mem.PageSize - 3)
	const word = uint64(0x0102030405060708)
	m.Write64(base, word)
	for i := uint64(0); i < 8; i++ {
		want := uint8(word >> (8 * i))
		if got := m.Read8(base + i); got != want {
			t.Errorf("byte %d = %#x, want %#x", i, got, want)
		}
	}
}

// TestWriteReadBytes checks bulk transfers across pages.
func TestWriteReadBytes(t *testing.T) {
	m := mem.New()
	data := make([]byte, 3*mem.PageSize)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	const base = 555
	m.WriteBytes(base, data)
	got := make([]byte, len(data))
	m.ReadBytes(base, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

// TestClone checks deep copying.
func TestClone(t *testing.T) {
	m := mem.New()
	m.Write64(100, 42)
	c := m.Clone()
	c.Write64(100, 99)
	if m.Read64(100) != 42 {
		t.Error("clone aliases original")
	}
	if c.Read64(100) != 99 {
		t.Error("clone lost write")
	}
}

// TestResetAndFootprint checks accounting.
func TestResetAndFootprint(t *testing.T) {
	m := mem.New()
	m.Write8(0, 1)
	m.Write8(mem.PageSize*10, 1)
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
	if m.Footprint() != 2*mem.PageSize {
		t.Errorf("Footprint = %d", m.Footprint())
	}
	pages := m.Pages()
	if len(pages) != 2 || pages[0] != 0 || pages[1] != 10 {
		t.Errorf("Pages = %v", pages)
	}
	m.Reset()
	if m.PageCount() != 0 || m.Read8(0) != 0 {
		t.Error("Reset did not clear")
	}
}
