package mem

import "sort"

// Image is an immutable point-in-time snapshot of a Memory, produced by
// Memory.Snapshot. Pages are shared by reference between the image, the
// snapshotted memory, and every Memory materialized from the image;
// copy-on-write in Memory keeps each view isolated. Images are safe for
// concurrent use: NewMemory may be called from many goroutines at once,
// which is how the parallel sampling engine hands one checkpointed
// memory state to each worker.
type Image struct {
	pages map[uint64]*[PageSize]byte
}

// Snapshot freezes the current contents into an Image. The receiver
// stays usable; its subsequent writes copy pages privately and do not
// leak into the image (nor into memories built from it). The snapshot
// itself is O(allocated pages) in time and shares all page storage.
//
// Snapshot is also the keyframe of the memory's delta chain: it resets
// the dirty-page journal, so the next Delta carries exactly the pages
// written from here on (see delta.go in this package).
func (m *Memory) Snapshot() *Image {
	img := &Image{pages: make(map[uint64]*[PageSize]byte, len(m.pages))}
	if m.shared == nil {
		m.shared = make(map[uint64]struct{}, len(m.pages))
	}
	for num, p := range m.pages {
		img.pages[num] = p
		m.shared[num] = struct{}{}
	}
	m.lastWritable = false
	m.journal = m.journal[:0]
	m.chain.Keyframe()
	return img
}

// NewMemory materializes a fresh Memory with the image's contents. The
// result shares page storage with the image until first write to each
// page (copy-on-write), so per-worker restoration is O(pages) map work,
// not a byte copy of the footprint.
func (img *Image) NewMemory() *Memory {
	m := &Memory{
		pages:  make(map[uint64]*[PageSize]byte, len(img.pages)),
		shared: make(map[uint64]struct{}, len(img.pages)),
	}
	for num, p := range img.pages {
		m.pages[num] = p
		m.shared[num] = struct{}{}
	}
	return m
}

// PageCount returns the number of pages the image holds.
func (img *Image) PageCount() int { return len(img.pages) }

// VisitPages calls f for every page in ascending page-number order. The
// page arrays are the image's own shared storage: callers must treat
// them as read-only. Serializers (the checkpoint store) use the pointer
// identity to deduplicate pages shared copy-on-write between
// neighbouring snapshots.
func (img *Image) VisitPages(f func(num uint64, data *[PageSize]byte)) {
	nums := make([]uint64, 0, len(img.pages))
	for n := range img.pages {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, n := range nums {
		f(n, img.pages[n])
	}
}

// ImageFromPages builds an image over the given page arrays without
// copying them. The caller must not mutate the arrays afterwards; every
// Memory materialized from the image copies shared pages on write, so
// handing the same arrays to several images (deserialized checkpoint
// sets do this) is safe.
func ImageFromPages(pages map[uint64]*[PageSize]byte) *Image {
	img := &Image{pages: make(map[uint64]*[PageSize]byte, len(pages))}
	for n, p := range pages {
		img.pages[n] = p
	}
	return img
}

// Read64 returns the little-endian 64-bit value at addr in the image
// (zero for unallocated addresses). It exists for tests and checkpoint
// inspection; simulation restores a full Memory via NewMemory.
func (img *Image) Read64(addr uint64) uint64 {
	off := addr & pageMask
	if off <= PageSize-8 {
		p := img.pages[addr>>PageBits]
		if p == nil {
			return 0
		}
		return uint64(p[off]) | uint64(p[off+1])<<8 |
			uint64(p[off+2])<<16 | uint64(p[off+3])<<24 |
			uint64(p[off+4])<<32 | uint64(p[off+5])<<40 |
			uint64(p[off+6])<<48 | uint64(p[off+7])<<56
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		p := img.pages[(addr+i)>>PageBits]
		if p != nil {
			v |= uint64(p[(addr+i)&pageMask]) << (8 * i)
		}
	}
	return v
}
