package mem

import "testing"

func TestSnapshotIsolation(t *testing.T) {
	m := New()
	m.Write64(0x1000, 111)
	m.Write64(0x200000, 222)

	img := m.Snapshot()

	// Writes after the snapshot must not leak into the image.
	m.Write64(0x1000, 999)
	m.Write64(0x300000, 333)
	if got := img.Read64(0x1000); got != 111 {
		t.Fatalf("image sees post-snapshot write: got %d, want 111", got)
	}
	if got := img.Read64(0x300000); got != 0 {
		t.Fatalf("image sees post-snapshot page: got %d, want 0", got)
	}
	if got := m.Read64(0x1000); got != 999 {
		t.Fatalf("original lost its own write: got %d, want 999", got)
	}

	// Memories restored from the image see snapshot-time contents and are
	// isolated from each other and from the original.
	r1 := img.NewMemory()
	r2 := img.NewMemory()
	if got := r1.Read64(0x1000); got != 111 {
		t.Fatalf("restored memory: got %d, want 111", got)
	}
	r1.Write64(0x200000, 777)
	if got := r2.Read64(0x200000); got != 222 {
		t.Fatalf("restored memories not isolated: got %d, want 222", got)
	}
	if got := img.Read64(0x200000); got != 222 {
		t.Fatalf("image corrupted by restored write: got %d, want 222", got)
	}
	if got := m.Read64(0x200000); got != 222 {
		t.Fatalf("original corrupted by restored write: got %d, want 222", got)
	}
}

func TestSnapshotReadCacheInvalidation(t *testing.T) {
	m := New()
	m.Write64(0x40, 1)
	// Prime the read cache on the page, snapshot, then write through the
	// same cached page: the write must trigger copy-on-write despite the
	// cache, and the read cache must follow the private copy.
	_ = m.Read64(0x40)
	img := m.Snapshot()
	m.Write64(0x48, 2)
	if got := img.Read64(0x48); got != 0 {
		t.Fatalf("cached write leaked into image: got %d, want 0", got)
	}
	if got := m.Read64(0x48); got != 2 {
		t.Fatalf("write lost after COW: got %d, want 2", got)
	}
}

func TestRepeatedSnapshots(t *testing.T) {
	m := New()
	var imgs []*Image
	for i := uint64(0); i < 8; i++ {
		m.Write64(0x1000+8*i, i+1)
		imgs = append(imgs, m.Snapshot())
	}
	for i, img := range imgs {
		for j := uint64(0); j < 8; j++ {
			want := uint64(0)
			if j <= uint64(i) {
				want = j + 1
			}
			if got := img.Read64(0x1000 + 8*j); got != want {
				t.Fatalf("snapshot %d slot %d: got %d, want %d", i, j, got, want)
			}
		}
	}
}
