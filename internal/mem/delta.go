package mem

// Dirty-page journal: the memory's implementation of the delta contract
// (internal/delta). Between snapshot points the Memory records which
// pages became writable — exactly the pages whose contents can differ
// from the previous snapshot, because a snapshot point marks every
// (delta: every dirtied) page copy-on-write, so the first subsequent
// write to a page must pass through wpage, where the journal is
// maintained. The write fast paths (Write64/Write32 on an
// already-private page) are untouched: they can only hit pages the
// journal already lists, so journaling costs nothing per instruction —
// the zero-allocations-per-instruction property the functional sweep
// depends on, pinned in bench_test.go.
//
// Snapshot (the keyframe) and Delta(since) form sequence-checked chains
// exactly like the warmed structures': applying a chain of deltas to a
// clone of its keyframe reproduces the full Image bit for bit
// (property-tested in delta_test.go). The checkpoint layer uses this to
// store per-unit memory as dirty-page deltas between keyframes instead
// of one full page table per unit.

import (
	"fmt"
	"sort"

	"repro/internal/delta"
)

// The memory implements the shared snapshot/delta-chain contract.
var (
	_ delta.Source[*Image, *Delta] = (*Memory)(nil)
	_ delta.State[*Delta]          = (*Image)(nil)
)

// Delta is a dirty-page delta between two snapshot points of one
// Memory: the pages written (or newly allocated) in between, with their
// full contents. Pages are never deallocated, so a delta only ever adds
// or replaces pages. The page arrays are shared, copy-on-write-
// protected storage: treat them as read-only.
type Delta struct {
	// Since is the sequence number of the baseline snapshot, Seq the
	// number this delta advances the chain to (not serialized; the
	// checkpoint codec rebuilds chains from record order).
	Since, Seq uint64
	// Nums holds the dirtied page numbers, strictly ascending; Pages the
	// corresponding page arrays.
	Nums  []uint64
	Pages []*[PageSize]byte
}

// Validate checks the delta's internal consistency.
func (d *Delta) Validate() error {
	if len(d.Nums) != len(d.Pages) {
		return fmt.Errorf("mem delta: %d page numbers, %d pages", len(d.Nums), len(d.Pages))
	}
	for i, num := range d.Nums {
		if i > 0 && num <= d.Nums[i-1] {
			return fmt.Errorf("mem delta: page numbers not ascending at %#x", num)
		}
		if d.Pages[i] == nil {
			return fmt.Errorf("mem delta: nil page %#x", num)
		}
	}
	return nil
}

// Bytes returns the approximate in-memory payload size of the delta:
// the page contents plus the page-number table.
func (d *Delta) Bytes() int { return 8*len(d.Nums) + PageSize*len(d.Pages) }

// Len returns the number of dirtied pages the delta carries.
func (d *Delta) Len() int { return len(d.Nums) }

// record notes that the page numbered num just became writable — wpage
// calls it when allocating a fresh page or copying a shared one. A page
// enters at most once per snapshot interval (it stays private, and
// therefore off this path, until the next snapshot point).
func (m *Memory) record(num uint64) {
	m.journal = append(m.journal, num)
}

// Seq returns the memory's current snapshot-chain link (0 before the
// first Snapshot).
func (m *Memory) Seq() uint64 { return m.chain.Seq() }

// Delta captures the pages dirtied since the snapshot point numbered
// since — which must be the memory's latest (Snapshot or Delta); deltas
// chain strictly. Like Snapshot, taking a delta is a snapshot point:
// the dirtied pages become copy-on-write, so the returned page arrays
// are immutable from here on, and the journal restarts empty.
func (m *Memory) Delta(since uint64) (*Delta, error) {
	seq, err := m.chain.Next(since)
	if err != nil {
		return nil, fmt.Errorf("mem: %w", err)
	}
	d := &Delta{Since: since, Seq: seq}
	if len(m.journal) > 0 {
		sort.Slice(m.journal, func(i, j int) bool { return m.journal[i] < m.journal[j] })
		if m.shared == nil {
			m.shared = make(map[uint64]struct{}, len(m.journal))
		}
		d.Nums = make([]uint64, 0, len(m.journal))
		d.Pages = make([]*[PageSize]byte, 0, len(m.journal))
		for i, num := range m.journal {
			if i > 0 && num == m.journal[i-1] {
				continue
			}
			p, ok := m.pages[num]
			if !ok {
				// Journaled pages are never removed; reaching here means
				// the journal and page map diverged.
				return nil, fmt.Errorf("mem: journaled page %#x missing", num)
			}
			d.Nums = append(d.Nums, num)
			d.Pages = append(d.Pages, p)
			m.shared[num] = struct{}{}
		}
		m.journal = m.journal[:0]
		m.lastWritable = false
	}
	return d, nil
}

// Clone returns a new Image over the same (immutable, shared) page
// arrays. The clone's page table is private, so Apply may patch it
// without affecting the original — the first step of materializing a
// delta chain.
func (img *Image) Clone() *Image {
	c := &Image{pages: make(map[uint64]*[PageSize]byte, len(img.pages))}
	for n, p := range img.pages {
		c.pages[n] = p
	}
	return c
}

// Apply patches the image forward by one delta: after Apply, the image
// equals the full Snapshot taken at the point the delta was captured.
// The receiver must be a private copy (Clone) of the snapshot the delta
// was taken against — images are shared between checkpoints, so
// patching a shared one would corrupt its other holders.
func (img *Image) Apply(d *Delta) error {
	if err := d.Validate(); err != nil {
		return err
	}
	for i, num := range d.Nums {
		img.pages[num] = d.Pages[i]
	}
	return nil
}
